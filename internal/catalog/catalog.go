// Package catalog defines the four edge services of the paper's
// evaluation (Table I): the asmttpd Assembler web server, Nginx,
// TensorFlow Serving with a ResNet50 model, and the Nginx + Python
// two-container combination. Each service carries its image layout
// (size and layer count as published), its runtime behaviour model
// (readiness delay, request handling), the lean YAML definition a
// developer would register, and the client workload that exercises it.
package catalog

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Registry hosts for the images.
const (
	RegistryHub = "hub"
	RegistryGCR = "gcr"
)

// Image references exactly as in Table I.
const (
	ImageAsm    = "josefhammer/web-asm:amd64"
	ImageNginx  = "nginx:1.23.2"
	ImageResNet = "gcr.io/tensorflow-serving/resnet"
	ImagePy     = "josefhammer/env-writer-py"
)

// Service is one evaluated edge service.
type Service struct {
	// Key is the short identifier used across experiments
	// ("asm", "nginx", "resnet", "nginxpy").
	Key string
	// DisplayName is the row label of Table I.
	DisplayName string
	// Images lists the image manifests the service needs.
	Images []registry.Image
	// RegistryHost says which upstream hosts the images.
	RegistryHost string
	// Containers is the number of containers per instance.
	Containers int
	// HTTPMethod is the verb the clients use.
	HTTPMethod string
	// RequestPayload is the client request body size in bytes
	// (83 KiB cat picture for ResNet).
	RequestPayload int
	// ResponseSize is the typical response body size in bytes.
	ResponseSize int
	// Definition is the lean YAML the developer registers; the
	// controller's annotation engine completes it.
	Definition string
}

// TotalImageBytes sums all image sizes (the Table I "Size" column).
func (s Service) TotalImageBytes() int64 {
	var total int64
	for _, im := range s.Images {
		total += im.TotalSize()
	}
	return total
}

// TotalLayers counts layers across images (the Table I "Layers" column).
func (s Service) TotalLayers() int {
	n := 0
	for _, im := range s.Images {
		n += len(im.Layers)
	}
	return n
}

// nginxLayers builds the shared Nginx image manifest: 135 MiB across
// 6 layers. Nginx+Py reuses these exact digests, so the containerd
// store deduplicates them — the paper's layer-sharing observation.
func nginxImage() registry.Image {
	sizes := []int64{55, 25, 20, 15, 12, 8} // MiB, sums to 135
	im := registry.Image{Ref: ImageNginx}
	for i, mb := range sizes {
		im.Layers = append(im.Layers, registry.Layer{
			Digest: registry.LayerDigest("nginx-1.23.2", i),
			Size:   mb * registry.MiB,
		})
	}
	return im
}

func asmImage() registry.Image {
	return registry.Image{Ref: ImageAsm, Layers: []registry.Layer{{
		Digest: registry.LayerDigest("web-asm", 0),
		Size:   6330, // 6.18 KiB
	}}}
}

func resnetImage() registry.Image {
	sizes := []int64{80, 60, 50, 40, 30, 20, 15, 8, 5} // MiB, sums to 308
	im := registry.Image{Ref: ImageResNet}
	for i, mb := range sizes {
		im.Layers = append(im.Layers, registry.Layer{
			Digest: registry.LayerDigest("tf-serving-resnet", i),
			Size:   mb * registry.MiB,
		})
	}
	return im
}

func pyImage() registry.Image {
	// Nginx+Py totals 181 MiB / 7 layers: nginx (135/6) + this 46 MiB layer.
	return registry.Image{Ref: ImagePy, Layers: []registry.Layer{{
		Digest: registry.LayerDigest("env-writer-py", 0),
		Size:   46 * registry.MiB,
	}}}
}

// Services returns the Table I catalog in row order.
func Services() []Service {
	return []Service{
		{
			Key:            "asm",
			DisplayName:    "Asm",
			Images:         []registry.Image{asmImage()},
			RegistryHost:   RegistryHub,
			Containers:     1,
			HTTPMethod:     "GET",
			RequestPayload: 90,
			ResponseSize:   64,
			Definition: `apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: web
        image: josefhammer/web-asm:amd64
        ports:
        - containerPort: 80
`,
		},
		{
			Key:            "nginx",
			DisplayName:    "Nginx",
			Images:         []registry.Image{nginxImage()},
			RegistryHost:   RegistryHub,
			Containers:     1,
			HTTPMethod:     "GET",
			RequestPayload: 110,
			ResponseSize:   612,
			Definition: `apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
`,
		},
		{
			Key:            "resnet",
			DisplayName:    "ResNet",
			Images:         []registry.Image{resnetImage()},
			RegistryHost:   RegistryGCR,
			Containers:     1,
			HTTPMethod:     "POST",
			RequestPayload: 83 * 1024, // the 83 KiB cat picture
			ResponseSize:   280,
			Definition: `apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: serving
        image: gcr.io/tensorflow-serving/resnet
        ports:
        - containerPort: 8501
`,
		},
		{
			Key:            "nginxpy",
			DisplayName:    "Nginx+Py",
			Images:         []registry.Image{nginxImage(), pyImage()},
			RegistryHost:   RegistryHub,
			Containers:     2,
			HTTPMethod:     "GET",
			RequestPayload: 110,
			ResponseSize:   330,
			Definition: `apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      volumes:
      - name: www
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
        volumeMounts:
        - name: www
          mountPath: /usr/share/nginx/html
      - name: app
        image: josefhammer/env-writer-py
        volumeMounts:
        - name: www
          mountPath: /www
`,
		},
	}
}

// ByKey returns the catalog service with the given key.
func ByKey(key string) (Service, error) {
	for _, s := range Services() {
		if s.Key == key {
			return s, nil
		}
	}
	return Service{}, fmt.Errorf("catalog: unknown service %q", key)
}

// PushAll publishes every catalog image to its home registry.
func PushAll(hub, gcr *registry.Registry) {
	for _, s := range Services() {
		target := hub
		if s.RegistryHost == RegistryGCR {
			target = gcr
		}
		for _, im := range s.Images {
			target.Push(im)
		}
	}
}

// PushAllTo publishes every catalog image to one registry (the private
// registry scenario of Fig. 13 mirrors everything locally).
func PushAllTo(reg *registry.Registry) {
	for _, s := range Services() {
		for _, im := range s.Images {
			reg.Push(im)
		}
	}
}

// Resolver returns the AppResolver covering all catalog images.
func Resolver() containerd.AppResolver { return appResolver{} }

type appResolver struct{}

func (appResolver) Resolve(image string) (containerd.AppModel, error) {
	switch image {
	case ImageAsm:
		return containerd.AppModel{
			Port:       80,
			ReadyDelay: 2 * time.Millisecond, // negligible launch time
			ReadySigma: 0.2,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				return containerd.AppInstance{Handler: staticFile("asmttpd ok\n", 64, 100*time.Microsecond)}
			},
		}, nil
	case ImageNginx:
		return containerd.AppModel{
			Port:       80,
			ReadyDelay: 45 * time.Millisecond, // config parse + workers
			ReadySigma: 0.2,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				if www, ok := vols["www"]; ok {
					return containerd.AppInstance{Handler: volumeFile(www, "index.html", 200*time.Microsecond)}
				}
				return containerd.AppInstance{Handler: staticFile("<html>nginx</html>\n", 612, 200*time.Microsecond)}
			},
		}, nil
	case ImageResNet:
		return containerd.AppModel{
			Port:       8501,
			ReadyDelay: 1400 * time.Millisecond, // ResNet50 model load
			ReadySigma: 0.20,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				return containerd.AppInstance{Handler: inference(70*time.Millisecond, 0.25, 280)}
			},
		}, nil
	case ImagePy:
		return containerd.AppModel{
			ReadyDelay: 260 * time.Millisecond, // CPython interpreter start
			ReadySigma: 0.2,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				www := vols["www"]
				return containerd.AppInstance{Background: envWriter(www)}
			},
		}, nil
	}
	return containerd.AppModel{}, fmt.Errorf("catalog: no model for image %q", image)
}

// staticFile serves a fixed short document, padded to size bytes.
func staticFile(content string, size int, proc time.Duration) containerd.Handler {
	body := make([]byte, size)
	copy(body, content)
	return containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
		clk.Sleep(proc)
		return body
	})
}

// volumeFile serves a file from the shared volume (the Nginx side of
// Nginx+Py).
func volumeFile(vol *containerd.Volume, path string, proc time.Duration) containerd.Handler {
	return containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
		clk.Sleep(proc)
		if data, ok := vol.Read(path); ok {
			return data
		}
		return []byte("503 index.html not written yet\n")
	})
}

// inference models TensorFlow Serving classification: a log-normal
// processing delay and a short JSON response.
func inference(median time.Duration, sigma float64, respSize int) containerd.Handler {
	rng := vclock.NewRand(int64(median))
	resp := make([]byte, respSize)
	copy(resp, `{"predictions":[{"label":"tabby cat","score":0.82}]}`)
	return containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
		clk.Sleep(rng.LogNormal(median, sigma))
		return resp
	})
}

// envWriter is the Python application: once per second it writes the
// gathered environment info and current timestamp to index.html on the
// shared volume.
func envWriter(www *containerd.Volume) func(clk vclock.Clock, stop *vclock.Gate) {
	return func(clk vclock.Clock, stop *vclock.Gate) {
		if www == nil {
			return
		}
		n := 0
		for {
			n++
			page := fmt.Sprintf("<html><body>env-writer tick %d at %s</body></html>",
				n, clk.Now().Format(time.RFC3339))
			www.Write("index.html", []byte(page))
			if stop.WaitTimeout(clk, time.Second) {
				return
			}
		}
	}
}
