package catalog

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/registry"
)

// Serverless (WebAssembly) variants of the single-container catalog
// services, for the paper's future-work evaluation: same request
// behaviour, but shipped as one small AOT-compilable module instead of
// a layered container image. Nginx+Py has no variant — serverless
// functions are single units, which is itself one of the trade-offs the
// future work wants to surface.

// WasmModuleRef returns the module reference for a service key.
func WasmModuleRef(key string) string { return "fn/" + key + ".wasm" }

// wasmModuleSizes are the module artifact sizes: orders of magnitude
// below the container images of Table I.
var wasmModuleSizes = map[string]int64{
	"asm":    64 * registry.KiB,
	"nginx":  1536 * registry.KiB, // a static file server module
	"resnet": 45 * registry.MiB,   // model weights embedded
}

// WasmService returns the serverless variant of a catalog service. Only
// single-container services have one.
func WasmService(key string) (Service, error) {
	base, err := ByKey(key)
	if err != nil {
		return Service{}, err
	}
	if base.Containers != 1 {
		return Service{}, fmt.Errorf("catalog: %s has %d containers; serverless variants are single functions", key, base.Containers)
	}
	ref := WasmModuleRef(key)
	return Service{
		Key:            key + "-wasm",
		DisplayName:    base.DisplayName + " (Wasm)",
		Images:         []registry.Image{{Ref: ref, Layers: []registry.Layer{{Digest: registry.LayerDigest(key+"-wasm", 0), Size: wasmModuleSizes[key]}}}},
		RegistryHost:   base.RegistryHost,
		Containers:     1,
		HTTPMethod:     base.HTTPMethod,
		RequestPayload: base.RequestPayload,
		ResponseSize:   base.ResponseSize,
		Definition: fmt.Sprintf(`apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: fn
        image: %s
        ports:
        - containerPort: 80
`, ref),
	}, nil
}

// PushWasm publishes all serverless modules to reg.
func PushWasm(reg *registry.Registry) {
	for _, key := range []string{"asm", "nginx", "resnet"} {
		s, err := WasmService(key)
		if err != nil {
			continue
		}
		for _, im := range s.Images {
			reg.Push(im)
		}
	}
}

// wasmResolver resolves module references to the same request behaviour
// as the container variants, minus container-style startup: isolates
// have no separate app initialization.
type wasmResolver struct{}

// WasmResolver returns the resolver for serverless modules.
func WasmResolver() containerd.AppResolver { return wasmResolver{} }

func (wasmResolver) Resolve(module string) (containerd.AppModel, error) {
	switch module {
	case WasmModuleRef("asm"):
		return containerd.AppModel{
			Port: 80,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				return containerd.AppInstance{Handler: staticFile("asmttpd ok\n", 64, 120*time.Microsecond)}
			},
		}, nil
	case WasmModuleRef("nginx"):
		return containerd.AppModel{
			Port: 80,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				return containerd.AppInstance{Handler: staticFile("<html>nginx</html>\n", 612, 250*time.Microsecond)}
			},
		}, nil
	case WasmModuleRef("resnet"):
		return containerd.AppModel{
			Port: 80,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				// Inference inside the sandbox runs somewhat slower than
				// native TensorFlow Serving.
				return containerd.AppInstance{Handler: inference(95*time.Millisecond, 0.25, 280)}
			},
		}, nil
	}
	return containerd.AppModel{}, fmt.Errorf("catalog: no model for module %q", module)
}

// CombinedResolver resolves both container images and wasm modules —
// the side-by-side deployment needs one resolver covering both worlds.
type CombinedResolver struct{}

// Resolve implements containerd.AppResolver.
func (CombinedResolver) Resolve(image string) (containerd.AppModel, error) {
	if m, err := (wasmResolver{}).Resolve(image); err == nil {
		return m, nil
	}
	return appResolver{}.Resolve(image)
}
