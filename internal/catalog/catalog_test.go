package catalog

import (
	"strings"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
	"github.com/c3lab/transparentedge/internal/yaml"
)

func TestTableIShape(t *testing.T) {
	services := Services()
	if len(services) != 4 {
		t.Fatalf("catalog has %d services, Table I lists 4", len(services))
	}
	want := []struct {
		key        string
		sizeLow    int64
		sizeHigh   int64
		layers     int
		containers int
		method     string
	}{
		{"asm", 6000, 6500, 1, 1, "GET"},                                 // 6.18 KiB / 1
		{"nginx", 135 * registry.MiB, 135 * registry.MiB, 6, 1, "GET"},   // 135 MiB / 6
		{"resnet", 308 * registry.MiB, 308 * registry.MiB, 9, 1, "POST"}, // 308 MiB / 9
		{"nginxpy", 181 * registry.MiB, 181 * registry.MiB, 7, 2, "GET"}, // 181 MiB / 7
	}
	for i, w := range want {
		s := services[i]
		if s.Key != w.key {
			t.Errorf("row %d key = %q, want %q", i, s.Key, w.key)
		}
		if size := s.TotalImageBytes(); size < w.sizeLow || size > w.sizeHigh {
			t.Errorf("%s size = %d, want in [%d,%d]", s.Key, size, w.sizeLow, w.sizeHigh)
		}
		if got := s.TotalLayers(); got != w.layers {
			t.Errorf("%s layers = %d, want %d", s.Key, got, w.layers)
		}
		if s.Containers != w.containers {
			t.Errorf("%s containers = %d, want %d", s.Key, s.Containers, w.containers)
		}
		if s.HTTPMethod != w.method {
			t.Errorf("%s method = %q, want %q", s.Key, s.HTTPMethod, w.method)
		}
	}
}

func TestResNetPayloadIs83KiB(t *testing.T) {
	s, err := ByKey("resnet")
	if err != nil {
		t.Fatal(err)
	}
	if s.RequestPayload != 83*1024 {
		t.Errorf("payload = %d, want 83 KiB", s.RequestPayload)
	}
	if s.RegistryHost != RegistryGCR {
		t.Error("ResNet must come from GCR")
	}
}

func TestByKeyUnknown(t *testing.T) {
	if _, err := ByKey("zzz"); err == nil {
		t.Error("unknown key resolved")
	}
}

func TestDefinitionsAreValidLeanYAML(t *testing.T) {
	for _, s := range Services() {
		v, err := yaml.Unmarshal(s.Definition)
		if err != nil {
			t.Errorf("%s definition does not parse: %v", s.Key, err)
			continue
		}
		m := v.(map[string]any)
		if m["kind"] != "Deployment" {
			t.Errorf("%s definition kind = %v", s.Key, m["kind"])
		}
		// Lean: the developer writes no name, labels, or replica count;
		// the annotation engine supplies them.
		if meta, ok := m["metadata"]; ok {
			if mm, ok := meta.(map[string]any); ok {
				if _, named := mm["name"]; named {
					t.Errorf("%s definition already carries a name", s.Key)
				}
			}
		}
		if !strings.Contains(s.Definition, "image:") {
			t.Errorf("%s definition is missing the one mandatory field", s.Key)
		}
	}
}

func TestNginxPyReusesNginxLayers(t *testing.T) {
	nginx, _ := ByKey("nginx")
	combo, _ := ByKey("nginxpy")
	nginxDigests := make(map[registry.Digest]bool)
	for _, l := range nginx.Images[0].Layers {
		nginxDigests[l.Digest] = true
	}
	shared := 0
	for _, im := range combo.Images {
		for _, l := range im.Layers {
			if nginxDigests[l.Digest] {
				shared++
			}
		}
	}
	if shared != len(nginxDigests) {
		t.Errorf("Nginx+Py shares %d/%d nginx layers; dedup broken", shared, len(nginxDigests))
	}
}

func TestPushAllRouting(t *testing.T) {
	clk := vclock.New()
	hub := registry.New(clk, 1, registry.DockerHub())
	gcr := registry.New(clk, 2, registry.GCR())
	PushAll(hub, gcr)
	if !hub.Has(ImageNginx) || !hub.Has(ImageAsm) || !hub.Has(ImagePy) {
		t.Error("hub images missing")
	}
	if !gcr.Has(ImageResNet) {
		t.Error("GCR image missing")
	}
	if hub.Has(ImageResNet) {
		t.Error("ResNet leaked onto Docker Hub")
	}
	private := registry.New(clk, 3, registry.Private())
	PushAllTo(private)
	for _, ref := range []string{ImageNginx, ImageAsm, ImagePy, ImageResNet} {
		if !private.Has(ref) {
			t.Errorf("private registry missing %s", ref)
		}
	}
}

func TestResolverCoversAllImagesAndRejectsOthers(t *testing.T) {
	r := Resolver()
	for _, s := range Services() {
		for _, im := range s.Images {
			if _, err := r.Resolve(im.Ref); err != nil {
				t.Errorf("Resolve(%s): %v", im.Ref, err)
			}
		}
	}
	if _, err := r.Resolve("unknown:latest"); err == nil {
		t.Error("unknown image resolved")
	}
}

func TestHandlerEdgeBehaviours(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		// Nginx without the shared volume serves its static page.
		model, _ := Resolver().Resolve(ImageNginx)
		inst := model.Instantiate(nil)
		resp := inst.Handler.Serve(clk, []byte("GET /"))
		if len(resp) != 612 {
			t.Errorf("nginx static page = %d bytes, want 612 (Table I-ish default page)", len(resp))
		}
		// Nginx with an empty volume reports the missing index.html.
		vols := map[string]*containerd.Volume{"www": containerd.NewVolume("www")}
		inst = model.Instantiate(vols)
		resp = inst.Handler.Serve(clk, []byte("GET /"))
		if !strings.Contains(string(resp), "503") {
			t.Errorf("empty-volume response = %q", resp[:24])
		}
		// The env-writer tolerates a missing volume (exits immediately).
		py, _ := Resolver().Resolve(ImagePy)
		bg := py.Instantiate(nil)
		if bg.Background == nil {
			t.Fatal("env-writer has no background process")
		}
		stop := vclock.NewGate()
		bg.Background(clk, stop) // must return, not hang
	})
}

func TestWasmModuleRefShape(t *testing.T) {
	if WasmModuleRef("nginx") != "fn/nginx.wasm" {
		t.Errorf("module ref = %q", WasmModuleRef("nginx"))
	}
	if _, err := WasmResolver().Resolve("fn/ghost.wasm"); err == nil {
		t.Error("unknown module resolved")
	}
}

// runService boots one catalog service on a containerd runtime and
// returns its endpoint plus container handles.
func runService(t *testing.T, clk *vclock.Virtual, key string) (addr netem.HostPort, client *netem.Host) {
	t.Helper()
	n := netem.NewNetwork(clk, 1)
	host := n.NewHost("egs", netem.ParseIP("10.0.0.2"))
	client = n.NewHost("client", netem.ParseIP("192.168.1.10"))
	n.Connect(host.NIC(), client.NIC(), netem.LinkConfig{Latency: time.Millisecond})
	rt := containerd.NewRuntime(clk, 2, host, containerd.DefaultTiming())
	reg := registry.New(clk, 3, registry.Private())
	PushAllTo(reg)
	svc, err := ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	vols := map[string]*containerd.Volume{"www": containerd.NewVolume("www")}
	var serving *containerd.Container
	for i, im := range svc.Images {
		if _, err := rt.Pull(reg, im.Ref); err != nil {
			t.Fatal(err)
		}
		model, err := Resolver().Resolve(im.Ref)
		if err != nil {
			t.Fatal(err)
		}
		spec := model.BuildSpec(key+"-"+string(rune('a'+i)), im.Ref, nil, vols)
		ctr, err := rt.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctr.Start(); err != nil {
			t.Fatal(err)
		}
		if model.Port != 0 && serving == nil {
			serving = ctr
		}
	}
	if serving == nil {
		t.Fatal("no serving container")
	}
	if !serving.WaitReady(30 * time.Second) {
		t.Fatal("service never ready")
	}
	return serving.Addr(), client
}

func TestAsmAndNginxServeQuickly(t *testing.T) {
	for _, key := range []string{"asm", "nginx"} {
		clk := vclock.New()
		clk.Run(func() {
			addr, client := runService(t, clk, key)
			conn, err := client.Dial(addr)
			if err != nil {
				t.Fatalf("%s dial: %v", key, err)
			}
			start := clk.Now()
			conn.Send([]byte("GET / HTTP/1.1"))
			resp, err := conn.Recv()
			if err != nil || len(resp) == 0 {
				t.Fatalf("%s: %q, %v", key, resp, err)
			}
			// Warm request on a local link: around a millisecond
			// (Fig. 16's short-response services).
			if d := clk.Since(start); d > 20*time.Millisecond {
				t.Errorf("%s warm request = %v, want ≈ms", key, d)
			}
		})
	}
}

func TestResNetInferenceSlow(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		addr, client := runService(t, clk, "resnet")
		conn, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		start := clk.Now()
		conn.Send(make([]byte, 83*1024)) // the cat picture
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(resp), "predictions") {
			t.Errorf("resp = %q", resp[:40])
		}
		// Fig. 16: ResNet requests take significantly longer than the
		// ≈1 ms static services.
		if d := clk.Since(start); d < 20*time.Millisecond {
			t.Errorf("resnet request = %v, want ≫1ms", d)
		}
	})
}

func TestNginxPyServesLiveVolumeContent(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		addr, client := runService(t, clk, "nginxpy")
		clk.Sleep(3 * time.Second) // let env-writer tick
		conn, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("GET /index.html"))
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(resp), "env-writer tick") {
			t.Errorf("index.html not written by sidecar: %q", resp)
		}
		// The page updates once per second.
		clk.Sleep(2 * time.Second)
		conn.Send([]byte("GET /index.html"))
		resp2, _ := conn.Recv()
		if string(resp) == string(resp2) {
			t.Error("index.html static; env-writer not ticking")
		}
	})
}
