package faas

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

type mapResolver map[string]containerd.AppModel

func (m mapResolver) Resolve(image string) (containerd.AppModel, error) {
	model, ok := m[image]
	if !ok {
		return containerd.AppModel{}, fmt.Errorf("unknown module %q", image)
	}
	return model, nil
}

type faasEnv struct {
	clk    *vclock.Virtual
	rt     *Runtime
	cl     *Cluster
	client *netem.Host
	reg    *registry.Registry
}

func newFaasEnv(clk *vclock.Virtual) *faasEnv {
	n := netem.NewNetwork(clk, 1)
	node := n.NewHost("edge", netem.ParseIP("10.0.0.2"))
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	n.Connect(node.NIC(), client.NIC(), netem.LinkConfig{Latency: time.Millisecond})
	reg := registry.New(clk, 2, registry.Private())
	reg.Push(registry.Image{Ref: "fn/echo.wasm", Layers: []registry.Layer{
		{Digest: "sha256:echo-wasm", Size: 2 * registry.MiB},
	}})
	rt := NewRuntime(clk, 3, node, DefaultTiming())
	resolver := mapResolver{"fn/echo.wasm": {
		Port: 80,
		Instantiate: func(map[string]*containerd.Volume) containerd.AppInstance {
			return containerd.AppInstance{Handler: containerd.HandlerFunc(
				func(clk vclock.Clock, req []byte) []byte {
					return append([]byte("wasm:"), req...)
				})}
		},
	}}
	cl := NewCluster("edge-faas", rt, reg, resolver, cluster.Location{Tier: 0, Latency: time.Millisecond})
	return &faasEnv{clk: clk, rt: rt, cl: cl, client: client, reg: reg}
}

func echoSpec() cluster.Spec {
	return cluster.Spec{
		Name:        "fn-echo",
		Containers:  []cluster.ContainerDef{{Name: "fn", Image: "fn/echo.wasm", Port: 80}},
		ServicePort: 80,
	}
}

func TestFetchAndInstantiate(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		if e.rt.HasModule("fn/echo.wasm") {
			t.Error("module cached before fetch")
		}
		if err := e.rt.Fetch(e.reg, "fn/echo.wasm"); err != nil {
			t.Fatal(err)
		}
		if !e.rt.HasModule("fn/echo.wasm") {
			t.Error("module missing after fetch")
		}
		// Cached fetch is free.
		start := clk.Now()
		e.rt.Fetch(e.reg, "fn/echo.wasm")
		if clk.Since(start) != 0 {
			t.Error("cached fetch cost time")
		}
		start = clk.Now()
		inst, err := e.rt.Instantiate(InstanceSpec{
			Name:   "echo-1",
			Module: "fn/echo.wasm",
			Handler: containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
				return req
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		coldStart := clk.Since(start)
		// The headline: cold start in single-digit milliseconds.
		if coldStart > 10*time.Millisecond {
			t.Errorf("wasm cold start = %v, want ≈4ms", coldStart)
		}
		conn, err := e.client.Dial(inst.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("x"))
		if resp, err := conn.Recv(); err != nil || string(resp) != "x" {
			t.Errorf("resp = %q, %v", resp, err)
		}
	})
}

func TestInstantiateErrors(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		h := containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte { return req })
		if _, err := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm", Handler: h}); err == nil {
			t.Error("instantiate without fetched module succeeded")
		}
		e.rt.Fetch(e.reg, "fn/echo.wasm")
		if _, err := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm"}); err == nil {
			t.Error("instantiate without handler succeeded")
		}
		if _, err := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm", Handler: h}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm", Handler: h}); err == nil {
			t.Error("duplicate instance name accepted")
		}
		if err := e.rt.Fetch(e.reg, "fn/ghost.wasm"); err == nil {
			t.Error("fetch of unpublished module succeeded")
		}
	})
}

func TestStopClosesPortAndFreesName(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		e.rt.Fetch(e.reg, "fn/echo.wasm")
		h := containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte { return req })
		inst, _ := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm", Handler: h})
		addr := inst.Addr()
		inst.Stop()
		inst.Stop() // idempotent
		if _, err := e.client.Dial(addr); err == nil {
			t.Error("stopped instance still accepts connections")
		}
		if e.rt.Get("x") != nil {
			t.Error("stopped instance still registered")
		}
		if _, err := e.rt.Instantiate(InstanceSpec{Name: "x", Module: "fn/echo.wasm", Handler: h}); err != nil {
			t.Errorf("name not freed: %v", err)
		}
	})
}

func TestClusterPhases(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		spec := echoSpec()
		if e.cl.HasImages(spec) {
			t.Error("module cached before pull")
		}
		if err := e.cl.Pull(spec); err != nil {
			t.Fatal(err)
		}
		if err := e.cl.Create(spec); err != nil {
			t.Fatal(err)
		}
		if err := e.cl.Create(spec); err == nil {
			t.Error("duplicate create accepted")
		}
		if !e.cl.Created(spec.Name) {
			t.Error("Created = false")
		}
		if got := e.cl.Instances(spec.Name); len(got) != 0 {
			t.Error("instances before scale-up")
		}
		start := clk.Now()
		if err := e.cl.ScaleUp(spec.Name); err != nil {
			t.Fatal(err)
		}
		scaleUp := clk.Since(start)
		if scaleUp > 15*time.Millisecond {
			t.Errorf("serverless scale-up = %v, want ms", scaleUp)
		}
		insts := e.cl.Instances(spec.Name)
		if len(insts) != 1 || insts[0].Cluster != "edge-faas" {
			t.Fatalf("instances = %v", insts)
		}
		conn, err := e.client.Dial(insts[0].Addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("hi"))
		if resp, err := conn.Recv(); err != nil || string(resp) != "wasm:hi" {
			t.Errorf("resp = %q, %v", resp, err)
		}
		// Idempotent scale-up.
		if err := e.cl.ScaleUp(spec.Name); err != nil {
			t.Errorf("re-scale-up: %v", err)
		}
		if err := e.cl.ScaleDown(spec.Name); err != nil {
			t.Fatal(err)
		}
		if len(e.cl.Instances(spec.Name)) != 0 {
			t.Error("instance survives scale-down")
		}
		if err := e.cl.Remove(spec.Name); err != nil {
			t.Fatal(err)
		}
		if e.cl.Created(spec.Name) {
			t.Error("created after remove")
		}
		if err := e.cl.DeleteImages(spec); err != nil || e.cl.HasImages(spec) {
			t.Error("modules survive deletion")
		}
	})
}

func TestClusterRejectsMultiContainer(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		spec := echoSpec()
		spec.Containers = append(spec.Containers, cluster.ContainerDef{Name: "side", Image: "fn/echo.wasm"})
		if err := e.cl.Create(spec); err == nil {
			t.Error("multi-container serverless spec accepted")
		}
	})
}

func TestClusterErrorsOnUnknownService(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFaasEnv(clk)
		if err := e.cl.ScaleUp("ghost"); err == nil {
			t.Error("scale-up of unknown service succeeded")
		}
		if err := e.cl.Remove("ghost"); err == nil {
			t.Error("remove of unknown service succeeded")
		}
		if err := e.cl.ScaleDown("ghost"); err != nil {
			t.Errorf("scale-down should be a no-op: %v", err)
		}
	})
}
