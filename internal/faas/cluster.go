package faas

import (
	"fmt"
	"strings"
	"sync"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/registry"
)

// Cluster adapts the serverless runtime to the dispatcher's cluster
// interface, so the SDN controller deploys Wasm services exactly like
// containerized ones — the side-by-side operation the paper's future
// work asks for. Phase mapping: Pull = fetch+compile the module,
// Create = register the function (metadata only), Scale Up =
// instantiate an isolate.
type Cluster struct {
	name     string
	rt       *Runtime
	upstream registry.Remote
	resolver containerd.AppResolver
	location cluster.Location

	mu      sync.Mutex
	created map[string]cluster.Spec
	running map[string]*Instance
}

// NewCluster wraps rt as an edge cluster pulling modules from upstream;
// resolver supplies per-module request handlers.
func NewCluster(name string, rt *Runtime, upstream registry.Remote, resolver containerd.AppResolver, loc cluster.Location) *Cluster {
	return &Cluster{
		name:     name,
		rt:       rt,
		upstream: upstream,
		resolver: resolver,
		location: loc,
		created:  make(map[string]cluster.Spec),
		running:  make(map[string]*Instance),
	}
}

// Name implements cluster.Cluster.
func (c *Cluster) Name() string { return c.name }

// Kind implements cluster.Cluster.
func (c *Cluster) Kind() cluster.Kind { return "faas" }

// Location implements cluster.Cluster.
func (c *Cluster) Location() cluster.Location { return c.location }

// CanHost implements cluster.Cluster: the serverless runtime hosts
// single-function services shipped as WebAssembly modules only.
func (c *Cluster) CanHost(spec cluster.Spec) bool {
	if len(spec.Containers) != 1 {
		return false
	}
	return strings.HasSuffix(spec.Containers[0].Image, ".wasm")
}

// Runtime exposes the wrapped serverless runtime.
func (c *Cluster) Runtime() *Runtime { return c.rt }

// HasImages implements cluster.Cluster (modules play the image role).
func (c *Cluster) HasImages(spec cluster.Spec) bool {
	for _, ref := range spec.Images() {
		if !c.rt.HasModule(ref) {
			return false
		}
	}
	return true
}

// Pull implements cluster.Cluster: download + AOT-compile the modules.
func (c *Cluster) Pull(spec cluster.Spec) error {
	for _, ref := range spec.Images() {
		if err := c.rt.Fetch(c.upstream, ref); err != nil {
			return fmt.Errorf("cluster %s: %w", c.name, err)
		}
	}
	return nil
}

// Created implements cluster.Cluster.
func (c *Cluster) Created(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.created[name]
	return ok
}

// Create implements cluster.Cluster: function registration is a pure
// metadata operation — serverless has no container to pre-create.
func (c *Cluster) Create(spec cluster.Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if !c.CanHost(spec) {
		return fmt.Errorf("cluster %s: service %q is not a single-function Wasm service", c.name, spec.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.created[spec.Name]; dup {
		return fmt.Errorf("cluster %s: service %q already created", c.name, spec.Name)
	}
	c.created[spec.Name] = spec
	return nil
}

// ScaleUp implements cluster.Cluster: instantiate one isolate. The
// call returns with the instance already serving — isolates have no
// separate readiness phase.
func (c *Cluster) ScaleUp(name string) error {
	c.mu.Lock()
	spec, ok := c.created[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster %s: service %q not created", c.name, name)
	}
	if _, up := c.running[name]; up {
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	def := spec.Containers[0]
	model, err := c.resolver.Resolve(def.Image)
	if err != nil {
		return fmt.Errorf("cluster %s: %w", c.name, err)
	}
	app := model.Instantiate(nil)
	inst, err := c.rt.Instantiate(InstanceSpec{
		Name:    name,
		Module:  def.Image,
		Handler: app.Handler,
	})
	if err != nil {
		return fmt.Errorf("cluster %s: %w", c.name, err)
	}
	c.mu.Lock()
	c.running[name] = inst
	c.mu.Unlock()
	return nil
}

// ScaleDown implements cluster.Cluster.
func (c *Cluster) ScaleDown(name string) error {
	c.mu.Lock()
	inst := c.running[name]
	delete(c.running, name)
	c.mu.Unlock()
	if inst != nil {
		inst.Stop()
	}
	return nil
}

// Remove implements cluster.Cluster: unregister the function.
func (c *Cluster) Remove(name string) error {
	if err := c.ScaleDown(name); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.created[name]; !ok {
		return fmt.Errorf("cluster %s: service %q not created", c.name, name)
	}
	delete(c.created, name)
	return nil
}

// DeleteImages implements cluster.Cluster: drop compiled modules.
func (c *Cluster) DeleteImages(spec cluster.Spec) error {
	for _, ref := range spec.Images() {
		c.rt.DropModule(ref)
	}
	return nil
}

// Instances implements cluster.Cluster.
func (c *Cluster) Instances(name string) []cluster.Instance {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.running[name]
	if !ok {
		return nil
	}
	return []cluster.Instance{{Addr: inst.Addr(), Cluster: c.name}}
}
