// Package faas implements the paper's future-work direction (§VIII):
// "enabling the side-by-side operation of containers and serverless
// applications" — a WebAssembly-style serverless runtime whose
// instances cold-start in milliseconds because they skip exactly the
// cost that dominates container startup: network-namespace creation
// (Mohan et al. [23]) and image unpacking. The runtime plugs into the
// same cluster abstraction the SDN controller already dispatches to, so
// transparent access needs no changes — which is the point the future
// work wants evaluated.
//
// The cold-start advantage modelled here follows Gackstatter et al.
// [7]: Wasm instantiation in the low milliseconds versus hundreds of
// milliseconds for containers.
package faas

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Timing is the serverless runtime cost model.
type Timing struct {
	// FetchOverhead is the fixed per-module download overhead from the
	// module store (modules are single small artifacts, not layered
	// images).
	FetchOverhead time.Duration
	// CompileBandwidth is the AOT-compile/validate rate in bytes/s,
	// paid once per cached module.
	CompileBandwidth float64
	// Instantiate is the per-instance cold start: create a fresh
	// isolate, link imports, open the socket. No network namespace.
	Instantiate time.Duration
	// CallOverhead is the per-request sandbox-boundary cost.
	CallOverhead time.Duration
	// JitterFrac scales uniform jitter on all of the above.
	JitterFrac float64
}

// DefaultTiming returns a cost model in line with published Wasm
// cold-start measurements: instantiation in single-digit milliseconds.
func DefaultTiming() Timing {
	return Timing{
		FetchOverhead:    40 * time.Millisecond,
		CompileBandwidth: 64 << 20, // 64 MiB/s AOT compile
		Instantiate:      4 * time.Millisecond,
		CallOverhead:     150 * time.Microsecond,
		JitterFrac:       0.15,
	}
}

// Runtime hosts WebAssembly service instances on one edge node.
type Runtime struct {
	clk    vclock.Clock
	rng    *vclock.Rand
	host   *netem.Host
	timing Timing

	mu        sync.Mutex
	modules   map[string]registry.Image
	instances map[string]*Instance
	nextPort  uint16
}

// NewRuntime returns an empty serverless runtime on host.
func NewRuntime(clk vclock.Clock, seed int64, host *netem.Host, timing Timing) *Runtime {
	return &Runtime{
		clk:       clk,
		rng:       vclock.NewRand(seed),
		host:      host,
		timing:    timing,
		modules:   make(map[string]registry.Image),
		instances: make(map[string]*Instance),
		nextPort:  40000,
	}
}

// Host returns the node the runtime serves ports on.
func (r *Runtime) Host() *netem.Host { return r.host }

// HasModule reports whether ref is fetched and compiled.
func (r *Runtime) HasModule(ref string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.modules[ref]
	return ok
}

// Fetch downloads and AOT-compiles a module — the serverless analogue
// of the Pull phase ("with serverless computing, download the source
// code from the cloud", §IV-C).
func (r *Runtime) Fetch(reg registry.Remote, ref string) error {
	if r.HasModule(ref) {
		return nil
	}
	im, err := reg.FetchManifest(ref)
	if err != nil {
		return fmt.Errorf("faas: %w", err)
	}
	reg.DownloadLayersFor(ref, im.Layers)
	compile := time.Duration(0)
	if r.timing.CompileBandwidth > 0 {
		compile = time.Duration(float64(im.TotalSize()) / r.timing.CompileBandwidth * float64(time.Second))
	}
	r.clk.Sleep(r.rng.Jitter(r.timing.FetchOverhead+compile, r.timing.JitterFrac))
	r.mu.Lock()
	r.modules[ref] = im
	r.mu.Unlock()
	return nil
}

// DropModule removes a compiled module from the cache.
func (r *Runtime) DropModule(ref string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.modules, ref)
}

// InstanceSpec describes one serverless instance to start.
type InstanceSpec struct {
	// Name must be unique within the runtime.
	Name string
	// Module is the fetched module reference.
	Module string
	// Handler serves requests.
	Handler containerd.Handler
}

// Instance is one running isolate.
type Instance struct {
	rt       *Runtime
	spec     InstanceSpec
	hostPort uint16

	mu       sync.Mutex
	listener *netem.Listener
	stopped  bool
}

// Instantiate cold-starts an isolate: the module must be fetched. The
// call returns once the instance's port answers — there is no separate
// create/start split, which is exactly the operational simplification
// serverless buys.
func (r *Runtime) Instantiate(spec InstanceSpec) (*Instance, error) {
	r.mu.Lock()
	if _, ok := r.modules[spec.Module]; !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("faas: module %q not fetched", spec.Module)
	}
	if _, dup := r.instances[spec.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("faas: instance %q already running", spec.Name)
	}
	if spec.Handler == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("faas: instance %q without a handler", spec.Name)
	}
	port := r.nextPort
	r.nextPort++
	inst := &Instance{rt: r, spec: spec, hostPort: port}
	r.instances[spec.Name] = inst
	r.mu.Unlock()

	r.clk.Sleep(r.rng.Jitter(r.timing.Instantiate, r.timing.JitterFrac))
	ln, err := r.host.Listen(port)
	if err != nil {
		r.forget(inst)
		return nil, err
	}
	inst.mu.Lock()
	inst.listener = ln
	inst.mu.Unlock()
	r.clk.Go(func() { inst.serve(ln) })
	return inst, nil
}

// Get returns the named running instance, or nil.
func (r *Runtime) Get(name string) *Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.instances[name]
}

func (r *Runtime) forget(inst *Instance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.instances[inst.spec.Name] == inst {
		delete(r.instances, inst.spec.Name)
	}
}

// Addr returns the instance's reachable endpoint.
func (i *Instance) Addr() netem.HostPort {
	return netem.HostPort{IP: i.rt.host.IP(), Port: i.hostPort}
}

// Name returns the instance name.
func (i *Instance) Name() string { return i.spec.Name }

func (i *Instance) serve(ln *netem.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		i.rt.clk.Go(func() {
			defer conn.Close()
			for {
				req, err := conn.Recv()
				if err != nil {
					return
				}
				i.rt.clk.Sleep(i.rt.rng.Jitter(i.rt.timing.CallOverhead, i.rt.timing.JitterFrac))
				i.mu.Lock()
				dead := i.stopped
				i.mu.Unlock()
				if dead {
					conn.Abort()
					return
				}
				if err := conn.Send(i.spec.Handler.Serve(i.rt.clk, req)); err != nil {
					return
				}
			}
		})
	}
}

// Stop tears the isolate down; serverless instances have no stopped
// state worth keeping, so Stop also removes.
func (i *Instance) Stop() {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	i.stopped = true
	ln := i.listener
	i.listener = nil
	i.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	i.rt.forget(i)
}
