package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/docker"
	"github.com/c3lab/transparentedge/internal/kube"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

type mapResolver map[string]containerd.AppModel

func (m mapResolver) Resolve(image string) (containerd.AppModel, error) {
	model, ok := m[image]
	if !ok {
		return containerd.AppModel{}, fmt.Errorf("unknown image %q", image)
	}
	return model, nil
}

func testResolver() mapResolver {
	return mapResolver{
		"web": {
			Port:       80,
			ReadyDelay: 40 * time.Millisecond,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				return containerd.AppInstance{Handler: containerd.HandlerFunc(
					func(clk vclock.Clock, req []byte) []byte { return []byte("hello") })}
			},
		},
		"side": {ReadyDelay: 10 * time.Millisecond},
	}
}

func testRegistry(clk vclock.Clock) *registry.Registry {
	reg := registry.New(clk, 3, registry.Private())
	reg.Push(registry.Image{Ref: "web", Layers: []registry.Layer{{Digest: "sha256:web", Size: 10 * registry.MiB}}})
	reg.Push(registry.Image{Ref: "side", Layers: []registry.Layer{{Digest: "sha256:side", Size: registry.MiB}}})
	return reg
}

func webSpec(name string) Spec {
	return Spec{
		Name:        name,
		Labels:      map[string]string{"app": name},
		Containers:  []ContainerDef{{Name: "web", Image: "web", Port: 80}},
		ServicePort: 80,
	}
}

// both builds a docker cluster and a kube cluster on one network so the
// adapter tests run identical scenarios against both kinds.
func both(t *testing.T, clk *vclock.Virtual) (*DockerCluster, *KubeCluster, *netem.Host) {
	t.Helper()
	n := netem.NewNetwork(clk, 1)
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	dockerHost := n.NewHost("docker0", netem.ParseIP("10.0.0.2"))
	kubeHost := n.NewHost("kube0", netem.ParseIP("10.0.0.3"))
	r := netem.NewRouter(n, "r", 3)
	n.Connect(client.NIC(), r.Port(0), netem.LinkConfig{Latency: time.Millisecond})
	n.Connect(dockerHost.NIC(), r.Port(1), netem.LinkConfig{Latency: time.Millisecond})
	n.Connect(kubeHost.NIC(), r.Port(2), netem.LinkConfig{Latency: time.Millisecond})
	r.AddRoute(client.IP(), r.Port(0))
	r.AddRoute(dockerHost.IP(), r.Port(1))
	r.AddRoute(kubeHost.IP(), r.Port(2))

	reg := testRegistry(clk)
	resolver := testResolver()

	dockerRT := containerd.NewRuntime(clk, 10, dockerHost, containerd.DefaultTiming())
	engine := docker.NewEngine(clk, 11, dockerRT, resolver, docker.DefaultTiming())
	dc := NewDockerCluster("edge-docker", engine, reg, Location{Tier: 0, Latency: 2 * time.Millisecond})

	kubeRT := containerd.NewRuntime(clk, 12, kubeHost, containerd.DefaultTiming())
	kc, err := kube.NewCluster(clk, kube.Config{
		Name:     "edge-k8s",
		Timing:   kube.DefaultTiming(),
		Registry: reg,
		Resolver: resolver,
		Nodes:    []kube.NodeConfig{{Name: "node0", Runtime: kubeRT}},
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	kub := NewKubeCluster("edge-k8s", kc, []*containerd.Runtime{kubeRT}, reg, Location{Tier: 1, Latency: 5 * time.Millisecond})
	return dc, kub, client
}

// clusters returns both adapters as the generic interface.
func clusters(t *testing.T, clk *vclock.Virtual) []Cluster {
	d, k, _ := both(t, clk)
	return []Cluster{d, k}
}

func TestSpecValidate(t *testing.T) {
	valid := webSpec("s")
	if err := valid.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for name, spec := range map[string]Spec{
		"no name":       {Containers: []ContainerDef{{Name: "c", Image: "i", Port: 80}}},
		"no containers": {Name: "s"},
		"no image":      {Name: "s", Containers: []ContainerDef{{Name: "c", Port: 80}}},
		"no port":       {Name: "s", Containers: []ContainerDef{{Name: "c", Image: "i"}}},
	} {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSpecImagesDedup(t *testing.T) {
	s := Spec{Containers: []ContainerDef{
		{Name: "a", Image: "x"}, {Name: "b", Image: "y"}, {Name: "c", Image: "x"},
	}}
	imgs := s.Images()
	if len(imgs) != 2 || imgs[0] != "x" || imgs[1] != "y" {
		t.Errorf("Images = %v", imgs)
	}
}

func TestPhasesOnBothKinds(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		for _, c := range clusters(t, clk) {
			spec := webSpec("svc")
			if c.HasImages(spec) {
				t.Errorf("%s: images cached before pull", c.Name())
			}
			if err := c.Pull(spec); err != nil {
				t.Fatalf("%s pull: %v", c.Name(), err)
			}
			if !c.HasImages(spec) {
				t.Errorf("%s: images missing after pull", c.Name())
			}
			if c.Created("svc") {
				t.Errorf("%s: created before Create", c.Name())
			}
			if err := c.Create(spec); err != nil {
				t.Fatalf("%s create: %v", c.Name(), err)
			}
			clk.Sleep(2 * time.Second)
			if !c.Created("svc") {
				t.Errorf("%s: not created after Create", c.Name())
			}
			if got := c.Instances("svc"); len(got) != 0 {
				t.Errorf("%s: %d instances before scale-up (scale-to-zero violated)", c.Name(), len(got))
			}
			if err := c.ScaleUp("svc"); err != nil {
				t.Fatalf("%s scale up: %v", c.Name(), err)
			}
			deadline := clk.Now().Add(30 * time.Second)
			for len(c.Instances("svc")) == 0 {
				if clk.Now().After(deadline) {
					t.Fatalf("%s: no instance after scale-up", c.Name())
				}
				clk.Sleep(100 * time.Millisecond)
			}
			inst := c.Instances("svc")[0]
			if inst.Cluster != c.Name() || inst.Addr.IsZero() {
				t.Errorf("%s: instance = %+v", c.Name(), inst)
			}
			if err := c.ScaleDown("svc"); err != nil {
				t.Fatalf("%s scale down: %v", c.Name(), err)
			}
			deadline = clk.Now().Add(30 * time.Second)
			for len(c.Instances("svc")) != 0 {
				if clk.Now().After(deadline) {
					t.Fatalf("%s: instance survives scale-down", c.Name())
				}
				clk.Sleep(100 * time.Millisecond)
			}
			if err := c.Remove("svc"); err != nil {
				t.Fatalf("%s remove: %v", c.Name(), err)
			}
			clk.Sleep(2 * time.Second)
			if c.Created("svc") {
				t.Errorf("%s: still created after Remove", c.Name())
			}
			if err := c.DeleteImages(spec); err != nil {
				t.Fatalf("%s delete images: %v", c.Name(), err)
			}
			if c.HasImages(spec) {
				t.Errorf("%s: images cached after delete", c.Name())
			}
		}
	})
}

func TestDockerScaleUpFasterThanKube(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		d, k, _ := both(t, clk)
		measure := func(c Cluster) time.Duration {
			spec := webSpec("svc-" + string(c.Kind()))
			if err := c.Pull(spec); err != nil {
				t.Fatal(err)
			}
			if err := c.Create(spec); err != nil {
				t.Fatal(err)
			}
			clk.Sleep(2 * time.Second)
			start := clk.Now()
			if err := c.ScaleUp(spec.Name); err != nil {
				t.Fatal(err)
			}
			for len(c.Instances(spec.Name)) == 0 {
				clk.Sleep(50 * time.Millisecond)
			}
			return clk.Since(start)
		}
		dockerTime := measure(d)
		kubeTime := measure(k)
		if dockerTime >= time.Second {
			t.Errorf("docker scale-up = %v, want <1s", dockerTime)
		}
		if kubeTime < 2*dockerTime {
			t.Errorf("kube (%v) not ≥2× docker (%v); orchestrator overhead missing", kubeTime, dockerTime)
		}
	})
}

func TestDockerErrorsOnUnknownService(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		d, _, _ := both(t, clk)
		for name, fn := range map[string]func() error{
			"scaleUp":   func() error { return d.ScaleUp("nope") },
			"scaleDown": func() error { return d.ScaleDown("nope") },
			"remove":    func() error { return d.Remove("nope") },
		} {
			if fn() == nil {
				t.Errorf("%s on unknown service succeeded", name)
			}
		}
		if d.Created("nope") {
			t.Error("unknown service reported created")
		}
		if d.Instances("nope") != nil {
			t.Error("unknown service has instances")
		}
	})
}

func TestDockerDuplicateCreateFails(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		d, _, _ := both(t, clk)
		spec := webSpec("svc")
		d.Pull(spec)
		if err := d.Create(spec); err != nil {
			t.Fatal(err)
		}
		if err := d.Create(spec); err == nil {
			t.Error("duplicate create succeeded")
		}
	})
}

func TestKubeErrorsOnUnknownService(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, k, _ := both(t, clk)
		if err := k.ScaleUp("nope"); err == nil {
			t.Error("scale up unknown service succeeded")
		}
		if err := k.ScaleDown("nope"); err == nil {
			t.Error("scale down unknown service succeeded")
		}
	})
}

func TestKubeMultiContainerWithCustomScheduler(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, k, client := both(t, clk)
		spec := Spec{
			Name:   "combo",
			Labels: map[string]string{"app": "combo"},
			Containers: []ContainerDef{
				{Name: "web", Image: "web", Port: 80},
				{Name: "side", Image: "side"},
			},
			Volumes:     []string{"shared"},
			ServicePort: 80,
		}
		if err := k.Pull(spec); err != nil {
			t.Fatal(err)
		}
		if err := k.Create(spec); err != nil {
			t.Fatal(err)
		}
		if err := k.ScaleUp("combo"); err != nil {
			t.Fatal(err)
		}
		deadline := clk.Now().Add(30 * time.Second)
		for len(k.Instances("combo")) == 0 {
			if clk.Now().After(deadline) {
				t.Fatal("no instance")
			}
			clk.Sleep(100 * time.Millisecond)
		}
		conn, err := client.Dial(k.Instances("combo")[0].Addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("x"))
		if resp, err := conn.Recv(); err != nil || string(resp) != "hello" {
			t.Errorf("resp = %q, %v", resp, err)
		}
	})
}

func TestStaticCluster(t *testing.T) {
	s := NewStaticCluster("cloud", Location{Tier: 9, Latency: 40 * time.Millisecond})
	addr := netem.ParseHostPort("203.0.113.1:80")
	if s.Created("svc") {
		t.Error("empty static cluster has service")
	}
	s.SetInstance("svc", addr)
	if !s.Created("svc") {
		t.Error("Created = false after SetInstance")
	}
	insts := s.Instances("svc")
	if len(insts) != 1 || insts[0].Addr != addr || insts[0].Cluster != "cloud" {
		t.Errorf("Instances = %v", insts)
	}
	if err := s.Create(Spec{}); err == nil {
		t.Error("static Create succeeded")
	}
	if err := s.Remove("svc"); err == nil {
		t.Error("static Remove succeeded")
	}
	if err := s.Pull(Spec{}); err != nil || !s.HasImages(Spec{}) {
		t.Error("static pull/images should be no-ops")
	}
	if err := s.ScaleUp("svc"); err != nil {
		t.Error("static scale up should be a no-op")
	}
	if s.Kind() != "static" || s.Location().Tier != 9 {
		t.Error("metadata mismatch")
	}
}
