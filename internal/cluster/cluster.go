// Package cluster abstracts edge clusters behind one interface so the
// SDN controller's dispatcher is independent of the cluster type — the
// paper deploys the same service definitions to both Docker and
// Kubernetes. The deployment phases of Fig. 4 map 1:1 onto the interface:
// Pull, Create, ScaleUp, ScaleDown, Remove, DeleteImages.
package cluster

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

// Kind identifies the cluster implementation.
type Kind string

// Supported cluster kinds.
const (
	Docker     Kind = "docker"
	Kubernetes Kind = "kubernetes"
)

// ContainerDef is one container of a service, cluster-agnostic.
type ContainerDef struct {
	Name  string
	Image string
	// Port is the serving container port; 0 for sidecars.
	Port uint16
}

// Spec is the deployable unit the controller's annotation engine
// produces from a service's YAML definition.
type Spec struct {
	// Name is the worldwide-unique service name assigned by the
	// annotation engine.
	Name string
	// Labels always include the edge.service label.
	Labels map[string]string
	// Containers lists the service's containers (Table I: 1 or 2).
	Containers []ContainerDef
	// Volumes lists shared volumes instantiated per service instance.
	Volumes []string
	// SchedulerName optionally selects a custom Local Scheduler
	// (Kubernetes only).
	SchedulerName string
	// ServicePort is the port exposed by the generated Service.
	ServicePort uint16
}

// Images returns the distinct image references of the spec.
func (s Spec) Images() []string {
	seen := make(map[string]bool, len(s.Containers))
	var out []string
	for _, c := range s.Containers {
		if !seen[c.Image] {
			seen[c.Image] = true
			out = append(out, c.Image)
		}
	}
	return out
}

// Validate checks the invariants the adapters rely on.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("cluster: spec without name")
	}
	if len(s.Containers) == 0 {
		return fmt.Errorf("cluster: service %q has no containers", s.Name)
	}
	serving := 0
	for _, c := range s.Containers {
		if c.Image == "" {
			return fmt.Errorf("cluster: service %q container %q without image", s.Name, c.Name)
		}
		if c.Port != 0 {
			serving++
		}
	}
	if serving == 0 {
		return fmt.Errorf("cluster: service %q exposes no port", s.Name)
	}
	return nil
}

// Instance is one ready service instance.
type Instance struct {
	// Addr is the reachable endpoint the switch redirects clients to.
	Addr netem.HostPort
	// Cluster names the hosting cluster.
	Cluster string
}

// Location places a cluster in the edge hierarchy. Clusters close to
// the users are small (tier 0); size and distance grow toward the cloud.
type Location struct {
	// Tier is the hierarchy level: 0 = on-site edge, larger = closer to
	// the cloud.
	Tier int
	// Latency is the typical one-way delay from the network ingress
	// (gNB) to the cluster.
	Latency time.Duration
}

// Cluster is the dispatcher's view of one edge cluster.
type Cluster interface {
	// Name identifies the cluster.
	Name() string
	// Kind reports the implementation type.
	Kind() Kind
	// Location places the cluster in the hierarchy.
	Location() Location
	// CanHost reports whether this cluster could deploy the spec at all
	// (e.g. a serverless runtime only hosts single-function Wasm
	// services; the static cloud deploys nothing). The Global Scheduler
	// only considers deployable candidates for its BEST choice.
	CanHost(spec Spec) bool

	// HasImages reports whether every image of the spec is cached
	// locally (Pull phase already done).
	HasImages(spec Spec) bool
	// Pull fetches the spec's images from the cluster's upstream
	// registry (Pull phase).
	Pull(spec Spec) error
	// Created reports whether the service objects/containers exist
	// (Create phase already done).
	Created(name string) bool
	// Create materializes the service with zero running instances
	// (Create phase).
	Create(spec Spec) error
	// ScaleUp requests one more instance (Scale Up phase). It returns
	// once the request is accepted; readiness is observed via Instances
	// or the controller's port probing.
	ScaleUp(name string) error
	// ScaleDown requests one fewer instance.
	ScaleDown(name string) error
	// Remove deletes the service's objects/containers (Remove phase).
	Remove(name string) error
	// DeleteImages drops the spec's images from the local cache
	// (Delete phase).
	DeleteImages(spec Spec) error
	// Instances lists the ready instances of a service.
	Instances(name string) []Instance
}
