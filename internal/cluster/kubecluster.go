package cluster

import (
	"fmt"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/kube"
	"github.com/c3lab/transparentedge/internal/registry"
)

// KubeCluster adapts a Kubernetes cluster.
type KubeCluster struct {
	name     string
	cluster  *kube.Cluster
	runtimes []*containerd.Runtime
	upstream registry.Remote
	location Location
}

// NewKubeCluster wraps a kube control plane. runtimes are the per-node
// containerd instances, needed for the Pull and Delete phases.
func NewKubeCluster(name string, c *kube.Cluster, runtimes []*containerd.Runtime, upstream registry.Remote, loc Location) *KubeCluster {
	return &KubeCluster{
		name:     name,
		cluster:  c,
		runtimes: runtimes,
		upstream: upstream,
		location: loc,
	}
}

// Name implements Cluster.
func (k *KubeCluster) Name() string { return k.name }

// Kind implements Cluster.
func (k *KubeCluster) Kind() Kind { return Kubernetes }

// Location implements Cluster.
func (k *KubeCluster) Location() Location { return k.location }

// CanHost implements Cluster: Kubernetes runs any containerized service.
func (k *KubeCluster) CanHost(Spec) bool { return true }

// Kube exposes the wrapped control plane.
func (k *KubeCluster) Kube() *kube.Cluster { return k.cluster }

// HasImages implements Cluster: every node must have every image.
func (k *KubeCluster) HasImages(spec Spec) bool {
	for _, rt := range k.runtimes {
		for _, ref := range spec.Images() {
			if !rt.Store().HasImage(ref) {
				return false
			}
		}
	}
	return true
}

// Pull implements Cluster: pre-pull on every node so the scheduler's
// placement never waits for a download.
func (k *KubeCluster) Pull(spec Spec) error {
	for _, rt := range k.runtimes {
		for _, ref := range spec.Images() {
			if _, err := rt.Pull(k.upstream, ref); err != nil {
				return fmt.Errorf("cluster %s: %w", k.name, err)
			}
		}
	}
	return nil
}

// Created implements Cluster.
func (k *KubeCluster) Created(name string) bool {
	return k.cluster.HasDeployment(name)
}

// Create implements Cluster: a Deployment with zero replicas plus the
// generated Service — exactly what the annotation engine emits.
func (k *KubeCluster) Create(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	labels := map[string]string{"edge.service": spec.Name}
	for k2, v := range spec.Labels {
		labels[k2] = v
	}
	var containers []kube.ContainerSpec
	var targetPort uint16
	for _, c := range spec.Containers {
		containers = append(containers, kube.ContainerSpec{Name: c.Name, Image: c.Image, Port: c.Port})
		if c.Port != 0 && targetPort == 0 {
			targetPort = c.Port
		}
	}
	d := &kube.Deployment{
		ObjectMeta: kube.ObjectMeta{Name: spec.Name, Labels: labels},
		Spec: kube.DeploymentSpec{
			Replicas: 0,
			Selector: labels,
			Template: kube.PodTemplate{
				Labels:        labels,
				Containers:    containers,
				Volumes:       spec.Volumes,
				SchedulerName: spec.SchedulerName,
			},
		},
	}
	if err := k.cluster.CreateDeployment(d); err != nil {
		return fmt.Errorf("cluster %s: %w", k.name, err)
	}
	port := spec.ServicePort
	if port == 0 {
		port = targetPort
	}
	svc := &kube.Service{
		ObjectMeta: kube.ObjectMeta{Name: spec.Name, Labels: labels},
		Spec: kube.ServiceSpec{
			Selector: labels,
			Ports:    []kube.ServicePort{{Port: port, TargetPort: targetPort, Protocol: "TCP"}},
		},
	}
	if err := k.cluster.CreateService(svc); err != nil {
		return fmt.Errorf("cluster %s: %w", k.name, err)
	}
	return nil
}

// ScaleUp implements Cluster: one more replica.
func (k *KubeCluster) ScaleUp(name string) error {
	cur, ok := k.cluster.Replicas(name)
	if !ok {
		return fmt.Errorf("cluster %s: service %q not created", k.name, name)
	}
	return k.cluster.Scale(name, cur+1)
}

// ScaleDown implements Cluster: one fewer replica (not below zero).
func (k *KubeCluster) ScaleDown(name string) error {
	cur, ok := k.cluster.Replicas(name)
	if !ok {
		return fmt.Errorf("cluster %s: service %q not created", k.name, name)
	}
	if cur == 0 {
		return nil
	}
	return k.cluster.Scale(name, cur-1)
}

// Remove implements Cluster: delete the Deployment and Service.
func (k *KubeCluster) Remove(name string) error {
	if err := k.cluster.DeleteDeployment(name); err != nil {
		return fmt.Errorf("cluster %s: %w", k.name, err)
	}
	if err := k.cluster.DeleteService(name); err != nil {
		return fmt.Errorf("cluster %s: %w", k.name, err)
	}
	return nil
}

// DeleteImages implements Cluster.
func (k *KubeCluster) DeleteImages(spec Spec) error {
	for _, rt := range k.runtimes {
		for _, ref := range spec.Images() {
			if err := rt.Store().RemoveImage(ref); err != nil {
				return fmt.Errorf("cluster %s: %w", k.name, err)
			}
		}
	}
	return nil
}

// Instances implements Cluster: the service's ready endpoints.
func (k *KubeCluster) Instances(name string) []Instance {
	var out []Instance
	for _, addr := range k.cluster.ReadyEndpoints(name) {
		out = append(out, Instance{Addr: addr, Cluster: k.name})
	}
	return out
}
