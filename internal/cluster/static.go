package cluster

import (
	"fmt"
	"sync"

	"github.com/c3lab/transparentedge/internal/netem"
)

// StaticCluster represents capacity outside the controller's management
// whose instances are always running — the cloud origin every registered
// service keeps, which the controller falls back to when no edge can
// serve a request.
type StaticCluster struct {
	name     string
	location Location

	mu        sync.Mutex
	instances map[string][]Instance
}

// NewStaticCluster returns an empty always-on cluster.
func NewStaticCluster(name string, loc Location) *StaticCluster {
	return &StaticCluster{
		name:      name,
		location:  loc,
		instances: make(map[string][]Instance),
	}
}

// SetInstance registers the permanently running instance of a service.
func (s *StaticCluster) SetInstance(service string, addr netem.HostPort) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.instances[service] = []Instance{{Addr: addr, Cluster: s.name}}
}

// Name implements Cluster.
func (s *StaticCluster) Name() string { return s.name }

// Kind implements Cluster.
func (s *StaticCluster) Kind() Kind { return "static" }

// Location implements Cluster.
func (s *StaticCluster) Location() Location { return s.location }

// CanHost implements Cluster: static capacity deploys nothing.
func (s *StaticCluster) CanHost(Spec) bool { return false }

// HasImages implements Cluster: the origin always has its artifacts.
func (s *StaticCluster) HasImages(Spec) bool { return true }

// Pull implements Cluster as a no-op.
func (s *StaticCluster) Pull(Spec) error { return nil }

// Created implements Cluster.
func (s *StaticCluster) Created(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.instances[name]
	return ok
}

// Create implements Cluster; static capacity cannot be provisioned.
func (s *StaticCluster) Create(spec Spec) error {
	return fmt.Errorf("cluster %s: static cluster cannot create services", s.name)
}

// ScaleUp implements Cluster as a no-op (always running).
func (s *StaticCluster) ScaleUp(string) error { return nil }

// ScaleDown implements Cluster as a no-op.
func (s *StaticCluster) ScaleDown(string) error { return nil }

// Remove implements Cluster; static capacity cannot be removed.
func (s *StaticCluster) Remove(name string) error {
	return fmt.Errorf("cluster %s: static cluster cannot remove services", s.name)
}

// DeleteImages implements Cluster as a no-op.
func (s *StaticCluster) DeleteImages(Spec) error { return nil }

// Instances implements Cluster.
func (s *StaticCluster) Instances(name string) []Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Instance(nil), s.instances[name]...)
}
