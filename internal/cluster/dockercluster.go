package cluster

import (
	"fmt"
	"sync"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/docker"
	"github.com/c3lab/transparentedge/internal/registry"
)

// DockerCluster adapts a single Docker engine as an edge "cluster". It
// runs at most one instance per service — the paper's Docker setup.
type DockerCluster struct {
	name     string
	engine   *docker.Engine
	upstream registry.Remote
	location Location

	mu    sync.Mutex
	specs map[string]Spec
}

// NewDockerCluster wraps engine as a cluster pulling from upstream.
func NewDockerCluster(name string, engine *docker.Engine, upstream registry.Remote, loc Location) *DockerCluster {
	return &DockerCluster{
		name:     name,
		engine:   engine,
		upstream: upstream,
		location: loc,
		specs:    make(map[string]Spec),
	}
}

// Name implements Cluster.
func (d *DockerCluster) Name() string { return d.name }

// Kind implements Cluster.
func (d *DockerCluster) Kind() Kind { return Docker }

// Location implements Cluster.
func (d *DockerCluster) Location() Location { return d.location }

// CanHost implements Cluster: Docker runs any containerized service.
func (d *DockerCluster) CanHost(Spec) bool { return true }

// Engine exposes the wrapped Docker engine.
func (d *DockerCluster) Engine() *docker.Engine { return d.engine }

// HasImages implements Cluster.
func (d *DockerCluster) HasImages(spec Spec) bool {
	for _, ref := range spec.Images() {
		if !d.engine.Runtime().Store().HasImage(ref) {
			return false
		}
	}
	return true
}

// Pull implements Cluster.
func (d *DockerCluster) Pull(spec Spec) error {
	for _, ref := range spec.Images() {
		if _, err := d.engine.ImagePull(d.upstream, ref); err != nil {
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	return nil
}

// containerName builds the engine-level name of one container.
func (d *DockerCluster) containerName(svc string, c ContainerDef) string {
	return svc + "-" + c.Name
}

// Created implements Cluster.
func (d *DockerCluster) Created(name string) bool {
	d.mu.Lock()
	spec, ok := d.specs[name]
	d.mu.Unlock()
	if !ok {
		return false
	}
	for _, c := range spec.Containers {
		if d.engine.ContainerInspect(d.containerName(name, c)) == nil {
			return false
		}
	}
	return true
}

// Create implements Cluster: create (but do not start) every container,
// sharing the spec's named volumes between them.
func (d *DockerCluster) Create(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	if _, dup := d.specs[spec.Name]; dup {
		d.mu.Unlock()
		return fmt.Errorf("cluster %s: service %q already created", d.name, spec.Name)
	}
	d.specs[spec.Name] = spec
	d.mu.Unlock()

	labels := map[string]string{"edge.service": spec.Name}
	for k, v := range spec.Labels {
		labels[k] = v
	}
	for _, c := range spec.Containers {
		_, err := d.engine.ContainerCreate(docker.CreateOptions{
			Name:            d.containerName(spec.Name, c),
			Image:           c.Image,
			Labels:          labels,
			VolumeNames:     spec.Volumes,
			VolumeNamespace: spec.Name,
			Port:            c.Port,
		})
		if err != nil {
			d.mu.Lock()
			delete(d.specs, spec.Name)
			d.mu.Unlock()
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	return nil
}

// ScaleUp implements Cluster: start all containers of the service.
// Sidecars start first so serving containers find their shared state.
func (d *DockerCluster) ScaleUp(name string) error {
	spec, err := d.spec(name)
	if err != nil {
		return err
	}
	for _, c := range orderSidecarsFirst(spec.Containers) {
		if err := d.engine.ContainerStart(d.containerName(name, c)); err != nil {
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	return nil
}

// ScaleDown implements Cluster: stop all containers.
func (d *DockerCluster) ScaleDown(name string) error {
	spec, err := d.spec(name)
	if err != nil {
		return err
	}
	for _, c := range spec.Containers {
		if err := d.engine.ContainerStop(d.containerName(name, c)); err != nil {
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	return nil
}

// Remove implements Cluster: delete all containers and forget the spec.
func (d *DockerCluster) Remove(name string) error {
	spec, err := d.spec(name)
	if err != nil {
		return err
	}
	for _, c := range spec.Containers {
		if err := d.engine.ContainerRemove(d.containerName(name, c)); err != nil {
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	d.mu.Lock()
	delete(d.specs, name)
	d.mu.Unlock()
	return nil
}

// DeleteImages implements Cluster.
func (d *DockerCluster) DeleteImages(spec Spec) error {
	for _, ref := range spec.Images() {
		if err := d.engine.ImageRemove(ref); err != nil {
			return fmt.Errorf("cluster %s: %w", d.name, err)
		}
	}
	return nil
}

// Instances implements Cluster: one instance when every container runs
// and the serving container is ready.
func (d *DockerCluster) Instances(name string) []Instance {
	d.mu.Lock()
	spec, ok := d.specs[name]
	d.mu.Unlock()
	if !ok {
		return nil
	}
	var serving *containerd.Container
	for _, c := range spec.Containers {
		ctr := d.engine.ContainerInspect(d.containerName(name, c))
		if ctr == nil || ctr.State() != containerd.StateRunning {
			return nil
		}
		if c.Port != 0 && !ctr.Ready() {
			return nil
		}
		if c.Port != 0 && serving == nil {
			serving = ctr
		}
	}
	if serving == nil {
		return nil
	}
	return []Instance{{Addr: serving.Addr(), Cluster: d.name}}
}

func (d *DockerCluster) spec(name string) (Spec, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	spec, ok := d.specs[name]
	if !ok {
		return Spec{}, fmt.Errorf("cluster %s: service %q not created", d.name, name)
	}
	return spec, nil
}

// orderSidecarsFirst starts portless containers before serving ones.
func orderSidecarsFirst(containers []ContainerDef) []ContainerDef {
	out := make([]ContainerDef, 0, len(containers))
	for _, c := range containers {
		if c.Port == 0 {
			out = append(out, c)
		}
	}
	for _, c := range containers {
		if c.Port != 0 {
			out = append(out, c)
		}
	}
	return out
}
