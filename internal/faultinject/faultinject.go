// Package faultinject provides seeded, deterministic fault injection
// for the emulated edge continuum. A Plan wraps the controller-facing
// seams — any cluster.Cluster (per-phase error and latency injection,
// timed cluster outage windows, transient probe refusals) and the
// registry Remote (manifest failures, slow-registry mode) — so every
// failure mode a resilience experiment needs is reproducible from one
// seed.
//
// Determinism does not depend on goroutine interleaving: instead of one
// shared random stream, the Plan derives an independent vclock RNG per
// (phase, cluster, service) key. Each key's draw sequence is consumed
// by the sequential retry/poll loop that owns it, so the set of
// injected faults — and therefore every downstream Stats counter — is
// identical on every run with the same seed.
package faultinject

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Config parameterizes a fault plan. Zero rates and durations inject
// nothing, so the zero Config is a transparent pass-through.
type Config struct {
	// Seed drives every injection decision.
	Seed int64

	// PullFailRate / CreateFailRate / ScaleUpFailRate are the
	// probabilities that one Pull / Create / ScaleUp call fails with an
	// injected error (the inner operation is not performed).
	PullFailRate    float64
	CreateFailRate  float64
	ScaleUpFailRate float64
	// ProbeRefuseRate is the probability that one Instances call hides
	// the cluster's instances — the controller's readiness probe then
	// sees a not-yet-ready instance and keeps polling.
	ProbeRefuseRate float64

	// PullLatency / CreateLatency / ScaleUpLatency are added to every
	// corresponding call before it proceeds (slow control plane).
	PullLatency    time.Duration
	CreateLatency  time.Duration
	ScaleUpLatency time.Duration

	// Outages are timed windows during which a cluster's control plane
	// is unreachable: Pull/Create/ScaleUp fail and Instances reports
	// nothing.
	Outages []Outage

	// ManifestFailRate is the probability that one registry manifest
	// fetch fails after its round trip (registry hiccup).
	ManifestFailRate float64
	// SlowLayerRate is the probability that one layer download enters
	// slow-registry mode and stalls for RegistryDelay on top of the
	// modelled transfer time.
	SlowLayerRate float64
	// RegistryDelay is the extra latency of slow-registry mode; it is
	// also added to every manifest fetch when ManifestFailRate or
	// SlowLayerRate is set and the draw selects slowness.
	RegistryDelay time.Duration
}

// Outage is one cluster unavailability window, expressed as offsets
// from the Plan's creation time.
type Outage struct {
	// Cluster names the affected cluster; empty matches every wrapped
	// cluster.
	Cluster string
	// Start and End delimit the window (Start inclusive, End exclusive).
	Start time.Duration
	End   time.Duration
}

// Stats counts the faults a plan actually injected.
type Stats struct {
	PullFailures    int64
	CreateFailures  int64
	ScaleUpFailures int64
	ProbeRefusals   int64
	OutageErrors    int64
	ManifestErrors  int64
	SlowLayers      int64
}

// Plan is one seeded fault scenario. Wrap the components under test
// with WrapCluster / WrapRemote; the plan tracks what it injected.
type Plan struct {
	clk   vclock.Clock
	cfg   Config
	start time.Time

	mu    sync.Mutex
	rngs  map[string]*vclock.Rand
	stats Stats
}

// NewPlan returns a plan anchored at the clock's current time (outage
// windows are offsets from this instant).
func NewPlan(clk vclock.Clock, cfg Config) *Plan {
	return &Plan{
		clk:   clk,
		cfg:   cfg,
		start: clk.Now(),
		rngs:  make(map[string]*vclock.Rand),
	}
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Stats returns a snapshot of the injected-fault counters.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// count mutates one injection counter under the lock.
func (p *Plan) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// roll draws the next value of key's dedicated stream and reports
// whether the fault fires.
func (p *Plan) roll(rate float64, key string) bool {
	if rate <= 0 {
		return false
	}
	p.mu.Lock()
	rng, ok := p.rngs[key]
	if !ok {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", p.cfg.Seed, key)
		rng = vclock.NewRand(int64(h.Sum64() >> 1))
		p.rngs[key] = rng
	}
	p.mu.Unlock()
	return rng.Float64() < rate
}

// inOutage reports whether cluster is inside any configured outage
// window at the current time.
func (p *Plan) inOutage(cluster string) bool {
	if len(p.cfg.Outages) == 0 {
		return false
	}
	at := p.clk.Since(p.start)
	for _, o := range p.cfg.Outages {
		if o.Cluster != "" && o.Cluster != cluster {
			continue
		}
		if at >= o.Start && at < o.End {
			return true
		}
	}
	return false
}
