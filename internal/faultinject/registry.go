package faultinject

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/registry"
)

// Remote wraps an image source with the plan's registry faults:
// manifest fetches can fail outright, and layer downloads can enter
// slow-registry mode. Layer transfers in the model have no error
// channel — a degraded registry shows up as time, which is exactly how
// containerd experiences one.
type Remote struct {
	inner registry.Remote
	plan  *Plan
}

// WrapRemote returns rem with the plan's registry faults applied. A
// remote already wrapped by this plan is returned as is.
func (p *Plan) WrapRemote(rem registry.Remote) registry.Remote {
	if fr, ok := rem.(*Remote); ok && fr.plan == p {
		return rem
	}
	return &Remote{inner: rem, plan: p}
}

// Unwrap returns the wrapped remote.
func (r *Remote) Unwrap() registry.Remote { return r.inner }

// Name implements registry.Remote.
func (r *Remote) Name() string { return r.inner.Name() }

// FetchManifest implements registry.Remote. An injected failure still
// pays the real round trip first — the client talked to the registry
// and got an error back, it did not skip the wire.
func (r *Remote) FetchManifest(ref string) (registry.Image, error) {
	im, err := r.inner.FetchManifest(ref)
	if err != nil {
		return im, err
	}
	if r.plan.roll(r.plan.cfg.ManifestFailRate, "manifest/"+ref) {
		r.plan.count(func(s *Stats) { s.ManifestErrors++ })
		if r.plan.cfg.RegistryDelay > 0 {
			r.plan.clk.Sleep(r.plan.cfg.RegistryDelay)
		}
		return registry.Image{}, fmt.Errorf("faultinject: manifest fetch for %s failed", ref)
	}
	return im, nil
}

// DownloadLayersFor implements registry.Remote, stalling for
// RegistryDelay on top of the modelled transfer when the draw selects
// slow-registry mode.
func (r *Remote) DownloadLayersFor(ref string, layers []registry.Layer) time.Duration {
	d := r.inner.DownloadLayersFor(ref, layers)
	if len(layers) > 0 && r.plan.roll(r.plan.cfg.SlowLayerRate, "layers/"+ref) {
		r.plan.count(func(s *Stats) { s.SlowLayers++ })
		if r.plan.cfg.RegistryDelay > 0 {
			r.plan.clk.Sleep(r.plan.cfg.RegistryDelay)
			d += r.plan.cfg.RegistryDelay
		}
	}
	return d
}
