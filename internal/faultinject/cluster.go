package faultinject

import (
	"fmt"

	"github.com/c3lab/transparentedge/internal/cluster"
)

// Cluster wraps an edge cluster with the plan's per-phase faults. All
// injected errors fire *instead of* the inner call, modelling a request
// that never reached the cluster; latencies fire before it.
type Cluster struct {
	inner cluster.Cluster
	plan  *Plan
}

// WrapCluster returns cl with the plan's faults applied to its
// deployment phases. A cluster already wrapped by this plan is
// returned as is.
func (p *Plan) WrapCluster(cl cluster.Cluster) cluster.Cluster {
	if fc, ok := cl.(*Cluster); ok && fc.plan == p {
		return cl
	}
	return &Cluster{inner: cl, plan: p}
}

// Unwrap returns the wrapped cluster.
func (c *Cluster) Unwrap() cluster.Cluster { return c.inner }

// Name implements cluster.Cluster.
func (c *Cluster) Name() string { return c.inner.Name() }

// Kind implements cluster.Cluster.
func (c *Cluster) Kind() cluster.Kind { return c.inner.Kind() }

// Location implements cluster.Cluster.
func (c *Cluster) Location() cluster.Location { return c.inner.Location() }

// CanHost implements cluster.Cluster.
func (c *Cluster) CanHost(spec cluster.Spec) bool { return c.inner.CanHost(spec) }

// HasImages implements cluster.Cluster.
func (c *Cluster) HasImages(spec cluster.Spec) bool { return c.inner.HasImages(spec) }

// outageErr reports (and counts) an active outage window.
func (c *Cluster) outageErr(op string) error {
	if !c.plan.inOutage(c.inner.Name()) {
		return nil
	}
	c.plan.count(func(s *Stats) { s.OutageErrors++ })
	return fmt.Errorf("faultinject: cluster %s unreachable (outage) during %s", c.inner.Name(), op)
}

// Pull implements cluster.Cluster with injected latency and failures.
func (c *Cluster) Pull(spec cluster.Spec) error {
	if c.plan.cfg.PullLatency > 0 {
		c.plan.clk.Sleep(c.plan.cfg.PullLatency)
	}
	if err := c.outageErr("pull"); err != nil {
		return err
	}
	if c.plan.roll(c.plan.cfg.PullFailRate, "pull/"+c.inner.Name()+"/"+spec.Name) {
		c.plan.count(func(s *Stats) { s.PullFailures++ })
		return fmt.Errorf("faultinject: pull of %s on %s failed", spec.Name, c.inner.Name())
	}
	return c.inner.Pull(spec)
}

// Created implements cluster.Cluster.
func (c *Cluster) Created(name string) bool { return c.inner.Created(name) }

// Create implements cluster.Cluster with injected latency and failures.
func (c *Cluster) Create(spec cluster.Spec) error {
	if c.plan.cfg.CreateLatency > 0 {
		c.plan.clk.Sleep(c.plan.cfg.CreateLatency)
	}
	if err := c.outageErr("create"); err != nil {
		return err
	}
	if c.plan.roll(c.plan.cfg.CreateFailRate, "create/"+c.inner.Name()+"/"+spec.Name) {
		c.plan.count(func(s *Stats) { s.CreateFailures++ })
		return fmt.Errorf("faultinject: create of %s on %s failed", spec.Name, c.inner.Name())
	}
	return c.inner.Create(spec)
}

// ScaleUp implements cluster.Cluster with injected latency and failures.
func (c *Cluster) ScaleUp(name string) error {
	if c.plan.cfg.ScaleUpLatency > 0 {
		c.plan.clk.Sleep(c.plan.cfg.ScaleUpLatency)
	}
	if err := c.outageErr("scale-up"); err != nil {
		return err
	}
	if c.plan.roll(c.plan.cfg.ScaleUpFailRate, "scaleup/"+c.inner.Name()+"/"+name) {
		c.plan.count(func(s *Stats) { s.ScaleUpFailures++ })
		return fmt.Errorf("faultinject: scale-up of %s on %s failed", name, c.inner.Name())
	}
	return c.inner.ScaleUp(name)
}

// ScaleDown implements cluster.Cluster (no faults: teardown noise is
// not part of any evaluated scenario and would leak instances).
func (c *Cluster) ScaleDown(name string) error { return c.inner.ScaleDown(name) }

// Remove implements cluster.Cluster.
func (c *Cluster) Remove(name string) error { return c.inner.Remove(name) }

// DeleteImages implements cluster.Cluster.
func (c *Cluster) DeleteImages(spec cluster.Spec) error { return c.inner.DeleteImages(spec) }

// Instances implements cluster.Cluster: during an outage the cluster
// reports nothing, and ProbeRefuseRate transiently hides instances so
// the controller's readiness probing sees a refused port.
func (c *Cluster) Instances(name string) []cluster.Instance {
	if c.plan.inOutage(c.inner.Name()) {
		return nil
	}
	if c.plan.roll(c.plan.cfg.ProbeRefuseRate, "probe/"+c.inner.Name()+"/"+name) {
		c.plan.count(func(s *Stats) { s.ProbeRefusals++ })
		return nil
	}
	return c.inner.Instances(name)
}
