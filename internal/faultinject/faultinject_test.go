package faultinject

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// countingCluster records how often each phase reached the real cluster.
type countingCluster struct {
	*cluster.StaticCluster
	pulls, creates, scaleUps int
}

func newCountingCluster(name string) *countingCluster {
	return &countingCluster{
		StaticCluster: cluster.NewStaticCluster(name, cluster.Location{Tier: 0, Latency: time.Millisecond}),
	}
}

func (c *countingCluster) Pull(cluster.Spec) error     { c.pulls++; return nil }
func (c *countingCluster) Create(cluster.Spec) error   { c.creates++; return nil }
func (c *countingCluster) ScaleUp(name string) error   { c.scaleUps++; return nil }
func (c *countingCluster) CanHost(cluster.Spec) bool   { return true }
func (c *countingCluster) HasImages(cluster.Spec) bool { return false }

func spec(name string) cluster.Spec {
	return cluster.Spec{
		Name:       name,
		Containers: []cluster.ContainerDef{{Name: "main", Image: name + ":latest", Port: 80}},
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		plan := NewPlan(clk, Config{Seed: 1})
		cc := newCountingCluster("edge")
		wrapped := plan.WrapCluster(cc)
		for i := 0; i < 50; i++ {
			if err := wrapped.Pull(spec("svc")); err != nil {
				t.Fatalf("unexpected pull error: %v", err)
			}
			if err := wrapped.Create(spec("svc")); err != nil {
				t.Fatalf("unexpected create error: %v", err)
			}
			if err := wrapped.ScaleUp("svc"); err != nil {
				t.Fatalf("unexpected scale-up error: %v", err)
			}
		}
		if cc.pulls != 50 || cc.creates != 50 || cc.scaleUps != 50 {
			t.Fatalf("passthrough miscounted: %d/%d/%d", cc.pulls, cc.creates, cc.scaleUps)
		}
		if s := plan.Stats(); s != (Stats{}) {
			t.Fatalf("zero config injected faults: %+v", s)
		}
	})
}

func TestFailRatesInjectDeterministically(t *testing.T) {
	run := func() (Stats, int) {
		clk := vclock.New()
		var st Stats
		var reached int
		clk.Run(func() {
			plan := NewPlan(clk, Config{Seed: 7, PullFailRate: 0.3, ScaleUpFailRate: 0.3})
			cc := newCountingCluster("edge")
			wrapped := plan.WrapCluster(cc)
			for i := 0; i < 200; i++ {
				_ = wrapped.Pull(spec("svc"))
				_ = wrapped.ScaleUp("svc")
			}
			st = plan.Stats()
			reached = cc.pulls + cc.scaleUps
		})
		return st, reached
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 || r1 != r2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, r1, s2, r2)
	}
	if s1.PullFailures == 0 || s1.ScaleUpFailures == 0 {
		t.Fatalf("30%% rates injected nothing over 200 calls: %+v", s1)
	}
	if s1.PullFailures == 200 || s1.ScaleUpFailures == 200 {
		t.Fatalf("30%% rates failed every call: %+v", s1)
	}
	if int64(r1)+s1.PullFailures+s1.ScaleUpFailures != 400 {
		t.Fatalf("injected + passed != total: reached=%d stats=%+v", r1, s1)
	}
}

func TestIndependentStreamsPerKey(t *testing.T) {
	// Two services draw from independent streams: interleaving calls for
	// svc-b between svc-a's calls must not change svc-a's outcomes.
	outcomes := func(interleave bool) []bool {
		clk := vclock.New()
		var out []bool
		clk.Run(func() {
			plan := NewPlan(clk, Config{Seed: 11, PullFailRate: 0.5})
			wrapped := plan.WrapCluster(newCountingCluster("edge"))
			for i := 0; i < 40; i++ {
				out = append(out, wrapped.Pull(spec("svc-a")) != nil)
				if interleave {
					_ = wrapped.Pull(spec("svc-b"))
				}
			}
		})
		return out
	}
	plain, mixed := outcomes(false), outcomes(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("svc-a outcome %d changed when svc-b interleaved", i)
		}
	}
}

func TestOutageWindow(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		plan := NewPlan(clk, Config{
			Seed:    3,
			Outages: []Outage{{Cluster: "edge", Start: 10 * time.Second, End: 40 * time.Second}},
		})
		cc := newCountingCluster("edge")
		cc.SetInstance("svc", netem.HostPort{IP: netem.ParseIP("10.0.0.9"), Port: 80})
		wrapped := plan.WrapCluster(cc)
		other := plan.WrapCluster(newCountingCluster("other"))

		if err := wrapped.Pull(spec("svc")); err != nil {
			t.Fatalf("pull before outage failed: %v", err)
		}
		clk.Sleep(10 * time.Second)
		if err := wrapped.Pull(spec("svc")); err == nil {
			t.Fatal("pull during outage succeeded")
		}
		if err := wrapped.ScaleUp("svc"); err == nil {
			t.Fatal("scale-up during outage succeeded")
		}
		if got := wrapped.Instances("svc"); len(got) != 0 {
			t.Fatalf("instances visible during outage: %v", got)
		}
		if err := other.Pull(spec("svc")); err != nil {
			t.Fatalf("unaffected cluster failed during another's outage: %v", err)
		}
		clk.Sleep(31 * time.Second)
		if err := wrapped.Pull(spec("svc")); err != nil {
			t.Fatalf("pull after outage failed: %v", err)
		}
		if got := wrapped.Instances("svc"); len(got) != 1 {
			t.Fatalf("instances not restored after outage: %v", got)
		}
		if s := plan.Stats(); s.OutageErrors != 2 {
			t.Fatalf("expected 2 outage errors, got %+v", s)
		}
	})
}

func TestPhaseLatencyInjection(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		plan := NewPlan(clk, Config{Seed: 5, PullLatency: 3 * time.Second})
		wrapped := plan.WrapCluster(newCountingCluster("edge"))
		before := clk.Now()
		if err := wrapped.Pull(spec("svc")); err != nil {
			t.Fatalf("pull failed: %v", err)
		}
		if d := clk.Now().Sub(before); d < 3*time.Second {
			t.Fatalf("pull latency not injected: took %v", d)
		}
	})
}

func TestRegistryFaults(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		reg := registry.New(clk, 1, registry.Private())
		im := registry.Image{Ref: "svc:latest", Layers: []registry.Layer{
			{Digest: registry.LayerDigest("svc", 0), Size: 4 * registry.MiB},
		}}
		reg.Push(im)

		plan := NewPlan(clk, Config{Seed: 9, ManifestFailRate: 0.4, SlowLayerRate: 0.4, RegistryDelay: 2 * time.Second})
		rem := plan.WrapRemote(reg)

		var manifestErrs int
		for i := 0; i < 50; i++ {
			if _, err := rem.FetchManifest("svc:latest"); err != nil {
				manifestErrs++
			}
		}
		if manifestErrs == 0 || manifestErrs == 50 {
			t.Fatalf("manifest fail rate 0.4 produced %d/50 errors", manifestErrs)
		}

		var slow int
		for i := 0; i < 50; i++ {
			before := clk.Now()
			d := rem.DownloadLayersFor("svc:latest", im.Layers)
			if wall := clk.Now().Sub(before); wall >= 2*time.Second {
				slow++
				if d < 2*time.Second {
					t.Fatalf("slow download reported %v, below injected delay", d)
				}
			}
		}
		s := plan.Stats()
		if int64(manifestErrs) != s.ManifestErrors || int64(slow) != s.SlowLayers {
			t.Fatalf("stats disagree with observations: errs=%d slow=%d stats=%+v", manifestErrs, slow, s)
		}
		if s.SlowLayers == 0 || s.SlowLayers == 50 {
			t.Fatalf("slow layer rate 0.4 produced %d/50", s.SlowLayers)
		}
	})
}

func TestDoubleWrapIsIdempotent(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		plan := NewPlan(clk, Config{Seed: 1})
		cc := newCountingCluster("edge")
		w1 := plan.WrapCluster(cc)
		if w2 := plan.WrapCluster(w1); w2 != w1 {
			t.Fatal("re-wrapping by the same plan produced a new layer")
		}
		reg := registry.New(clk, 1, registry.Private())
		r1 := plan.WrapRemote(reg)
		if r2 := plan.WrapRemote(r1); r2 != r1 {
			t.Fatal("re-wrapping remote by the same plan produced a new layer")
		}
	})
}
