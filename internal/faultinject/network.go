package faultinject

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// This file extends deterministic fault injection from the cluster and
// registry layer (faultinject.go) down into the network substrate and
// the OpenFlow control channel: seeded link flap schedules, router
// crash windows, switch restarts, and control-channel loss plans. All
// schedules are precomputed from the seed and posted on the virtual
// clock, so a chaos run is exactly reproducible.

// Window is one absolute fault interval, as offsets from plan start.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// NetworkConfig parameterizes a network/control-plane chaos schedule.
// The zero value schedules nothing.
type NetworkConfig struct {
	// Seed derives every schedule and loss stream.
	Seed int64

	// FlapStart/FlapEnd bound the link-flapping window; within it,
	// flapped links alternate up and down with exponential holding
	// times around MeanUp and MeanDown. At FlapEnd every flapped link
	// is forced up.
	FlapStart time.Duration
	FlapEnd   time.Duration
	MeanUp    time.Duration
	MeanDown  time.Duration
	// FlapLinks is how many access links the scenario flaps (the
	// testbed flaps the first FlapLinks client links; default 3).
	FlapLinks int

	// PacketInLoss, FlowModLoss, FlowRemovedLoss, PacketOutLoss, and
	// ReorderRate/CtrlExtraDelay parameterize the switches' control
	// channels (see openflow.ChannelFaults).
	PacketInLoss    float64
	FlowModLoss     float64
	FlowRemovedLoss float64
	PacketOutLoss   float64
	ReorderRate     float64
	CtrlExtraDelay  time.Duration
	// FaultsEnd, when positive, clears the channel fault model at that
	// offset — the invariant checker measures convergence after it.
	FaultsEnd time.Duration

	// RouterCrashes lists crash/restart windows applied to routers
	// passed to CrashRouter.
	RouterCrashes []Window
	// SwitchRestarts lists instants at which switches passed to
	// RestartSwitch reboot and lose their flow tables.
	SwitchRestarts []time.Duration
}

// NetworkPlan schedules network chaos on a virtual clock.
type NetworkPlan struct {
	clk vclock.Clock
	cfg NetworkConfig
}

// NewNetworkPlan returns a plan applying cfg relative to the current
// virtual instant.
func NewNetworkPlan(clk vclock.Clock, cfg NetworkConfig) *NetworkPlan {
	return &NetworkPlan{clk: clk, cfg: cfg}
}

// Config returns the plan's configuration.
func (p *NetworkPlan) Config() NetworkConfig { return p.cfg }

// rng derives the deterministic stream for one schedule key.
func (p *NetworkPlan) rng(key string) *vclock.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", p.cfg.Seed, key)
	return vclock.NewRand(int64(h.Sum64() >> 1))
}

// FlapLink precomputes and posts an alternating down/up schedule for
// one link: exponential holding times around MeanDown and MeanUp
// inside [FlapStart, FlapEnd], with a forced SetDown(false) at FlapEnd
// so chaos always ends with the link up. name keys the link's RNG
// stream, so adding links to a scenario does not perturb the schedules
// of the others.
func (p *NetworkPlan) FlapLink(name string, l *netem.Link) {
	cfg := p.cfg
	if cfg.FlapEnd <= cfg.FlapStart {
		return
	}
	meanUp, meanDown := cfg.MeanUp, cfg.MeanDown
	if meanUp <= 0 {
		meanUp = 500 * time.Millisecond
	}
	if meanDown <= 0 {
		meanDown = 200 * time.Millisecond
	}
	rng := p.rng("flap/" + name)
	at := cfg.FlapStart
	down := false
	for at < cfg.FlapEnd {
		down = !down
		state := down
		p.clk.Post(at, func() { l.SetDown(state) })
		mean := meanUp
		if down {
			mean = meanDown
		}
		at += time.Duration(rng.ExpFloat64() * float64(mean))
	}
	if down {
		p.clk.Post(cfg.FlapEnd, func() { l.SetDown(false) })
	}
}

// CrashRouter posts crash/restart pairs for every configured window.
func (p *NetworkPlan) CrashRouter(r *netem.Router) {
	for _, w := range p.cfg.RouterCrashes {
		if w.End <= w.Start {
			continue
		}
		p.clk.Post(w.Start, r.Crash)
		p.clk.Post(w.End, r.Restart)
	}
}

// ApplyChannel installs the control-channel fault model on one switch,
// seeded per switch name, and schedules its removal at FaultsEnd.
func (p *NetworkPlan) ApplyChannel(sw *openflow.Switch) {
	cfg := p.cfg
	if cfg.PacketInLoss <= 0 && cfg.FlowModLoss <= 0 && cfg.FlowRemovedLoss <= 0 &&
		cfg.PacketOutLoss <= 0 && cfg.ReorderRate <= 0 {
		return
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/chan/%s", cfg.Seed, sw.DeviceName())
	sw.SetChannelFaults(&openflow.ChannelFaults{
		Seed:            int64(h.Sum64() >> 1),
		PacketInLoss:    cfg.PacketInLoss,
		FlowModLoss:     cfg.FlowModLoss,
		FlowRemovedLoss: cfg.FlowRemovedLoss,
		PacketOutLoss:   cfg.PacketOutLoss,
		ReorderRate:     cfg.ReorderRate,
		ExtraDelay:      cfg.CtrlExtraDelay,
	})
	if cfg.FaultsEnd > 0 {
		p.clk.Post(cfg.FaultsEnd, func() { sw.SetChannelFaults(nil) })
	}
}

// RestartSwitch posts a reboot at every configured instant.
func (p *NetworkPlan) RestartSwitch(sw *openflow.Switch) {
	for _, at := range p.cfg.SwitchRestarts {
		p.clk.Post(at, sw.Restart)
	}
}
