// Package mobility generates deterministic client-movement schedules
// for the emulator: which client moves to which attachment zone, and
// when, all on the virtual clock.
//
// The package is deliberately mechanism-free — it knows nothing about
// netem links, switches, or controllers. A Schedule is just an ordered
// list of handover events; the testbed supplies the apply function that
// re-homes the client's access link and re-steers its flows
// (testbed.RehomeClient). Keeping the model pure makes every run
// replayable: the same seed and config produce the same schedule, byte
// for byte, independent of what the handovers do to the network.
//
// Two models are provided:
//
//   - Waypoints: a trace-driven schedule, events supplied by the caller
//     (e.g. parsed from a mobility trace) and validated/ordered here;
//   - RandomWalk: a seeded generator in which clients hop between zones
//     at jittered intervals — the steady-churn workload the mobility
//     experiment and BenchmarkHandover drive.
package mobility

import (
	"fmt"
	"sort"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Event is one handover: at offset At from the run's start, client
// Client moves to zone To. Client and To are small dense indices whose
// meaning belongs to the caller (the testbed maps Client to a mobile
// host and To to a gNB).
type Event struct {
	Client int
	To     int
	At     time.Duration
}

// Schedule is an ordered list of handover events (non-decreasing At).
type Schedule []Event

// Waypoints builds a trace-driven schedule from caller-supplied events.
// Events are stably sorted by At, so same-instant events keep their
// trace order. Negative offsets are rejected.
func Waypoints(events []Event) (Schedule, error) {
	s := make(Schedule, len(events))
	copy(s, events)
	for i, e := range s {
		if e.At < 0 {
			return nil, fmt.Errorf("mobility: event %d has negative offset %v", i, e.At)
		}
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].At < s[j].At })
	return s, nil
}

// WalkConfig parameterizes RandomWalk.
type WalkConfig struct {
	// Clients is the number of mobile clients (indices 0..Clients-1).
	Clients int
	// Zones is the number of attachment zones (indices 0..Zones-1).
	// Every client starts in zone 0; a hop always targets a zone
	// different from the client's current one.
	Zones int
	// Handovers is the total number of events to generate.
	Handovers int
	// Start is the offset of the first event.
	Start time.Duration
	// Interval is the mean spacing between consecutive events; actual
	// spacing is jittered uniformly in [0.5, 1.5)×Interval.
	Interval time.Duration
	// Seed feeds the deterministic generator.
	Seed int64
}

// RandomWalk generates a seeded random-walk schedule: at each step a
// uniformly chosen client hops to a uniformly chosen zone other than
// its current one. The walk is fully determined by cfg — the generator
// is vclock.Rand, so the schedule is identical across platforms and
// runs.
func RandomWalk(cfg WalkConfig) Schedule {
	if cfg.Clients <= 0 || cfg.Zones < 2 || cfg.Handovers <= 0 {
		return nil
	}
	rng := vclock.NewRand(cfg.Seed)
	zone := make([]int, cfg.Clients) // all start in zone 0
	s := make(Schedule, 0, cfg.Handovers)
	at := cfg.Start
	for i := 0; i < cfg.Handovers; i++ {
		c := int(rng.Float64() * float64(cfg.Clients))
		if c >= cfg.Clients {
			c = cfg.Clients - 1
		}
		// Pick among the Zones-1 zones that are not the current one.
		z := int(rng.Float64() * float64(cfg.Zones-1))
		if z >= cfg.Zones-1 {
			z = cfg.Zones - 2
		}
		if z >= zone[c] {
			z++
		}
		s = append(s, Event{Client: c, To: z, At: at})
		zone[c] = z
		at += time.Duration((0.5 + rng.Float64()) * float64(cfg.Interval))
	}
	return s
}

// Span returns the offset of the last event, or zero for an empty
// schedule.
func (s Schedule) Span() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].At
}

// Run plays the schedule on clk: it sleeps to each event's offset
// (relative to the moment Run is called) and invokes apply. Events are
// applied strictly in order from a single goroutine, so apply needs no
// internal ordering. Run returns after the last event's apply.
func (s Schedule) Run(clk vclock.Clock, apply func(Event)) {
	start := clk.Now()
	for _, e := range s {
		if wait := e.At - clk.Since(start); wait > 0 {
			clk.Sleep(wait)
		}
		apply(e)
	}
}
