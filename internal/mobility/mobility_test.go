package mobility

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestWaypointsSortsAndValidates(t *testing.T) {
	s, err := Waypoints([]Event{
		{Client: 0, To: 1, At: 300 * time.Millisecond},
		{Client: 1, To: 1, At: 100 * time.Millisecond},
		{Client: 2, To: 1, At: 300 * time.Millisecond}, // ties with client 0: stable sort keeps trace order
		{Client: 3, To: 1, At: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(s))
	for i, e := range s {
		order[i] = e.Client
	}
	if fmt.Sprint(order) != "[1 3 0 2]" {
		t.Fatalf("sorted client order = %v, want [1 3 0 2]", order)
	}
	if s.Span() != 300*time.Millisecond {
		t.Fatalf("Span = %v, want 300ms", s.Span())
	}
	if _, err := Waypoints([]Event{{At: -time.Second}}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestRandomWalkDeterministicAndValid(t *testing.T) {
	cfg := WalkConfig{
		Clients:   4,
		Zones:     3,
		Handovers: 64,
		Start:     time.Second,
		Interval:  500 * time.Millisecond,
		Seed:      7,
	}
	a, b := RandomWalk(cfg), RandomWalk(cfg)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different schedules")
	}
	cfg.Seed = 8
	if fmt.Sprint(a) == fmt.Sprint(RandomWalk(cfg)) {
		t.Fatal("different seeds produced the same schedule")
	}

	zone := make([]int, cfg.Clients)
	last := time.Duration(0)
	for i, e := range a {
		if e.Client < 0 || e.Client >= cfg.Clients {
			t.Fatalf("event %d: client %d out of range", i, e.Client)
		}
		if e.To < 0 || e.To >= cfg.Zones {
			t.Fatalf("event %d: zone %d out of range", i, e.To)
		}
		if e.To == zone[e.Client] {
			t.Fatalf("event %d: client %d 'moved' to its current zone %d", i, e.Client, e.To)
		}
		zone[e.Client] = e.To
		if e.At < last {
			t.Fatalf("event %d: offset %v before predecessor %v", i, e.At, last)
		}
		last = e.At
	}
	if a[0].At != cfg.Start {
		t.Fatalf("first event at %v, want %v", a[0].At, cfg.Start)
	}
}

func TestRandomWalkDegenerate(t *testing.T) {
	if s := RandomWalk(WalkConfig{Clients: 0, Zones: 2, Handovers: 1}); s != nil {
		t.Fatal("no clients should yield a nil schedule")
	}
	if s := RandomWalk(WalkConfig{Clients: 1, Zones: 1, Handovers: 1}); s != nil {
		t.Fatal("one zone should yield a nil schedule (nowhere to move)")
	}
}

func TestScheduleRun(t *testing.T) {
	s, err := Waypoints([]Event{
		{Client: 0, To: 1, At: 100 * time.Millisecond},
		{Client: 1, To: 1, At: 100 * time.Millisecond},
		{Client: 0, To: 0, At: 450 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	clk := vclock.New()
	clk.Run(func() {
		start := clk.Now()
		s.Run(clk, func(e Event) {
			got = append(got, fmt.Sprintf("c%d->z%d@%v", e.Client, e.To, clk.Since(start)))
		})
	})
	want := "[c0->z1@100ms c1->z1@100ms c0->z0@450ms]"
	if fmt.Sprint(got) != want {
		t.Fatalf("applied events %v, want %v", got, want)
	}
}
