package pcap

import (
	"errors"
	"io"
	"sort"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

// Conversation is one TCP connection attempt observed in a capture,
// identified by its initial SYN.
type Conversation struct {
	// Start is the capture timestamp of the first SYN.
	Start time.Time
	// Client and Server are the initiating and responding endpoints.
	Client, Server netem.HostPort
	// Packets counts frames observed for this five-tuple.
	Packets int
	// Bytes sums TCP payload bytes in both directions.
	Bytes int
}

type convKey struct {
	a, b netem.HostPort
}

// normalKey builds a direction-independent five-tuple key.
func normalKey(src, dst netem.HostPort) convKey {
	if src.IP < dst.IP || (src.IP == dst.IP && src.Port <= dst.Port) {
		return convKey{a: src, b: dst}
	}
	return convKey{a: dst, b: src}
}

// ExtractConversations reads an entire capture and groups IPv4/TCP
// frames into conversations. Non-TCP frames are skipped. Conversations
// are returned in order of their first SYN; five-tuples whose SYN was
// not captured are ignored, mirroring standard flow analysis.
func ExtractConversations(r *Reader) ([]Conversation, error) {
	convs := make(map[convKey]*Conversation)
	var order []*Conversation
	for {
		ts, frame, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		seg, err := DecodeTCP(frame)
		if errors.Is(err, ErrNotTCPIPv4) {
			continue
		}
		if err != nil {
			return nil, err
		}
		key := normalKey(seg.Src, seg.Dst)
		c := convs[key]
		if c == nil {
			if !seg.SYN || seg.ACK {
				continue // mid-stream traffic without its SYN
			}
			c = &Conversation{Start: ts, Client: seg.Src, Server: seg.Dst}
			convs[key] = c
			order = append(order, c)
		}
		c.Packets++
		c.Bytes += len(seg.Payload)
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].Start.Before(order[j].Start) })
	out := make([]Conversation, len(order))
	for i, c := range order {
		out[i] = *c
	}
	return out, nil
}

// FilterServerPort keeps conversations whose server endpoint uses port.
// The paper filters the capture for requests to port 80.
func FilterServerPort(convs []Conversation, port uint16) []Conversation {
	var out []Conversation
	for _, c := range convs {
		if c.Server.Port == port {
			out = append(out, c)
		}
	}
	return out
}

// ServiceRequests groups conversations by server address and keeps the
// servers with at least minRequests conversations — the paper's rule for
// selecting edge-service addresses ("a minimum of 20 requests").
// The returned slice is sorted by descending request count, then by
// address for determinism.
func ServiceRequests(convs []Conversation, minRequests int) []ServiceCount {
	counts := make(map[netem.HostPort][]Conversation)
	for _, c := range convs {
		counts[c.Server] = append(counts[c.Server], c)
	}
	var out []ServiceCount
	for addr, cs := range counts {
		if len(cs) >= minRequests {
			out = append(out, ServiceCount{Server: addr, Requests: cs})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Requests) != len(out[j].Requests) {
			return len(out[i].Requests) > len(out[j].Requests)
		}
		if out[i].Server.IP != out[j].Server.IP {
			return out[i].Server.IP < out[j].Server.IP
		}
		return out[i].Server.Port < out[j].Server.Port
	})
	return out
}

// ServiceCount is one service address with the conversations it received.
type ServiceCount struct {
	Server   netem.HostPort
	Requests []Conversation
}

// TotalRequests sums conversation counts across services.
func TotalRequests(services []ServiceCount) int {
	total := 0
	for _, s := range services {
		total += len(s.Requests)
	}
	return total
}
