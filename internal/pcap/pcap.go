// Package pcap implements the subset of the libpcap capture format and
// Ethernet/IPv4/TCP packet codecs the evaluation needs.
//
// The paper derives its workload from the public bigFlows.pcap capture by
// extracting TCP conversations to port 80 and keeping destinations with
// at least 20 requests. That capture is not redistributable here, so the
// trace package synthesizes an equivalent capture file; this package
// provides the on-disk format plus the conversation extraction that is
// then applied to it exactly as the paper applies it to the real capture.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Classic pcap constants (microsecond timestamps, Ethernet link type).
const (
	magicMicroseconds = 0xa1b2c3d4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1
	defaultSnapLen    = 65535
	globalHeaderLen   = 24
	recordHeaderLen   = 16
)

// ErrBadMagic indicates the stream is not a little-endian microsecond
// pcap file.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Writer emits a pcap capture stream.
type Writer struct {
	w           io.Writer
	wroteHeader bool
}

// NewWriter returns a Writer targeting w. The file header is written
// lazily before the first packet.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (pw *Writer) writeHeader() error {
	var hdr [globalHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magicMicroseconds)
	le.PutUint16(hdr[4:], versionMajor)
	le.PutUint16(hdr[6:], versionMinor)
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:], defaultSnapLen)
	le.PutUint32(hdr[20:], linkTypeEthernet)
	_, err := pw.w.Write(hdr[:])
	return err
}

// WritePacket appends one captured frame with the given timestamp.
func (pw *Writer) WritePacket(ts time.Time, frame []byte) error {
	if !pw.wroteHeader {
		if err := pw.writeHeader(); err != nil {
			return err
		}
		pw.wroteHeader = true
	}
	var hdr [recordHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(ts.Unix()))
	le.PutUint32(hdr[4:], uint32(ts.Nanosecond()/1000))
	le.PutUint32(hdr[8:], uint32(len(frame)))
	le.PutUint32(hdr[12:], uint32(len(frame)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	return err
}

// Reader parses a pcap capture stream.
type Reader struct {
	r          io.Reader
	readHeader bool
}

// NewReader returns a Reader consuming r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

func (pr *Reader) readGlobalHeader() error {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return err
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magicMicroseconds {
		return ErrBadMagic
	}
	if lt := le.Uint32(hdr[20:]); lt != linkTypeEthernet {
		return fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return nil
}

// ReadPacket returns the next frame and its timestamp, or io.EOF at the
// end of the capture.
func (pr *Reader) ReadPacket() (ts time.Time, frame []byte, err error) {
	if !pr.readHeader {
		if err := pr.readGlobalHeader(); err != nil {
			return time.Time{}, nil, err
		}
		pr.readHeader = true
	}
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return time.Time{}, nil, io.ErrUnexpectedEOF
		}
		return time.Time{}, nil, err
	}
	le := binary.LittleEndian
	sec := le.Uint32(hdr[0:])
	usec := le.Uint32(hdr[4:])
	inclLen := le.Uint32(hdr[8:])
	if inclLen > defaultSnapLen {
		return time.Time{}, nil, fmt.Errorf("pcap: record length %d exceeds snaplen", inclLen)
	}
	frame = make([]byte, inclLen)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return time.Time{}, nil, err
	}
	return time.Unix(int64(sec), int64(usec)*1000), frame, nil
}
