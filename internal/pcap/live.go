package pcap

import (
	"io"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

// SegmentFromPacket converts an emulated packet into a decodable TCP
// segment with equivalent header fields. The emulated reliable
// transport numbers messages rather than bytes; Seq/Ack carry those
// message numbers verbatim, which is what offline analysis of the
// capture needs.
func SegmentFromPacket(p *netem.Packet) *TCPSegment {
	return &TCPSegment{
		Src:     p.Src,
		Dst:     p.Dst,
		Seq:     p.Seq,
		Ack:     p.Ack,
		SYN:     p.Flags.Has(netem.FlagSYN),
		ACK:     p.Flags.Has(netem.FlagACK),
		FIN:     p.Flags.Has(netem.FlagFIN),
		RST:     p.Flags.Has(netem.FlagRST),
		PSH:     p.Flags.Has(netem.FlagPSH),
		Payload: p.Payload,
	}
}

// LiveCapture writes emulated traffic to a pcap stream as it happens:
// plug its Tap into netem.Network.SetCapture and every packet entering
// a link lands in the file, Wireshark-ready.
type LiveCapture struct {
	mu      sync.Mutex
	w       *Writer
	packets int64
	err     error
}

// NewLiveCapture returns a capture sink writing to w.
func NewLiveCapture(w io.Writer) *LiveCapture {
	return &LiveCapture{w: NewWriter(w)}
}

// Tap implements netem.CaptureFunc.
func (lc *LiveCapture) Tap(ts time.Time, pkt *netem.Packet) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.err != nil {
		return
	}
	lc.err = lc.w.WritePacket(ts, EncodeTCP(SegmentFromPacket(pkt)))
	if lc.err == nil {
		lc.packets++
	}
}

// Packets reports how many packets were written.
func (lc *LiveCapture) Packets() int64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.packets
}

// Err reports the first write error, if any.
func (lc *LiveCapture) Err() error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.err
}
