package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

func seg(src, dst string, syn, ack bool, payload []byte) *TCPSegment {
	return &TCPSegment{
		Src:     netem.ParseHostPort(src),
		Dst:     netem.ParseHostPort(dst),
		SYN:     syn,
		ACK:     ack,
		PSH:     len(payload) > 0,
		Payload: payload,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &TCPSegment{
		Src:     netem.ParseHostPort("192.168.1.5:49152"),
		Dst:     netem.ParseHostPort("203.0.113.9:80"),
		Seq:     12345,
		Ack:     67890,
		SYN:     true,
		ACK:     true,
		PSH:     true,
		FIN:     true,
		RST:     false,
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
	frame := EncodeTCP(in)
	out, err := DecodeTCP(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Dst != in.Dst || out.Seq != in.Seq || out.Ack != in.Ack {
		t.Errorf("addressing mismatch: %+v vs %+v", out, in)
	}
	if out.SYN != in.SYN || out.ACK != in.ACK || out.PSH != in.PSH || out.FIN != in.FIN || out.RST != in.RST {
		t.Errorf("flags mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Errorf("payload mismatch: %q vs %q", out.Payload, in.Payload)
	}
}

func TestEncodedChecksumValid(t *testing.T) {
	frame := EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", true, false, nil))
	if !ValidateIPv4Checksum(frame) {
		t.Error("encoder produced invalid IPv4 checksum")
	}
	frame[etherHeaderLen+8]++ // corrupt TTL
	if ValidateIPv4Checksum(frame) {
		t.Error("corrupted header still validates")
	}
}

func TestDecodeRejectsNonIP(t *testing.T) {
	frame := EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", true, false, nil))
	frame[12], frame[13] = 0x08, 0x06 // ARP ethertype
	if _, err := DecodeTCP(frame); !errors.Is(err, ErrNotTCPIPv4) {
		t.Errorf("err = %v, want ErrNotTCPIPv4", err)
	}
}

func TestDecodeRejectsNonTCP(t *testing.T) {
	frame := EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", true, false, nil))
	frame[etherHeaderLen+9] = 17 // UDP
	if _, err := DecodeTCP(frame); !errors.Is(err, ErrNotTCPIPv4) {
		t.Errorf("err = %v, want ErrNotTCPIPv4", err)
	}
}

func TestDecodeTruncatedFrames(t *testing.T) {
	frame := EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", true, false, []byte("x")))
	for _, n := range []int{0, 10, etherHeaderLen + 5, etherHeaderLen + ipv4HeaderLen + 5} {
		if _, err := DecodeTCP(frame[:n]); err == nil {
			t.Errorf("DecodeTCP of %d-byte prefix succeeded", n)
		}
	}
}

func TestSegmentFlagsMapping(t *testing.T) {
	s := &TCPSegment{SYN: true, ACK: true}
	if f := s.Flags(); !f.Has(netem.FlagSYN | netem.FlagACK) {
		t.Errorf("Flags = %v", f)
	}
	s = &TCPSegment{RST: true, FIN: true, PSH: true}
	f := s.Flags()
	if !f.Has(netem.FlagRST) || !f.Has(netem.FlagFIN) || !f.Has(netem.FlagPSH) || f.Has(netem.FlagSYN) {
		t.Errorf("Flags = %v", f)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Unix(1700000000, 123000)
	frames := [][]byte{
		EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", true, false, nil)),
		EncodeTCP(seg("10.0.0.2:80", "10.0.0.1:1000", true, true, nil)),
		EncodeTCP(seg("10.0.0.1:1000", "10.0.0.2:80", false, true, []byte("GET /"))),
	}
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Millisecond), f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i := range frames {
		ts, frame, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Errorf("packet %d frame mismatch", i)
		}
		want := base.Add(time.Duration(i) * time.Millisecond)
		if ts.Unix() != want.Unix() || ts.Nanosecond()/1000 != want.Nanosecond()/1000 {
			t.Errorf("packet %d ts = %v, want %v", i, ts, want)
		}
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader(make([]byte, 24)))
	if _, _, err := r.ReadPacket(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

// writeConversation emits a full request/response conversation.
func writeConversation(t *testing.T, w *Writer, at time.Time, client, server string, reqLen, respLen int) {
	t.Helper()
	c, s := netem.ParseHostPort(client), netem.ParseHostPort(server)
	packets := []*TCPSegment{
		{Src: c, Dst: s, SYN: true},
		{Src: s, Dst: c, SYN: true, ACK: true},
		{Src: c, Dst: s, ACK: true},
		{Src: c, Dst: s, PSH: true, ACK: true, Payload: make([]byte, reqLen)},
		{Src: s, Dst: c, PSH: true, ACK: true, Payload: make([]byte, respLen)},
		{Src: c, Dst: s, FIN: true, ACK: true},
	}
	for i, p := range packets {
		if err := w.WritePacket(at.Add(time.Duration(i)*time.Millisecond), EncodeTCP(p)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtractConversations(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Unix(1700000000, 0)
	writeConversation(t, w, base, "192.168.0.10:50001", "203.0.113.1:80", 100, 5000)
	writeConversation(t, w, base.Add(time.Second), "192.168.0.11:50002", "203.0.113.1:80", 80, 400)
	writeConversation(t, w, base.Add(2*time.Second), "192.168.0.10:50003", "203.0.113.2:443", 60, 0)
	// Mid-stream stray packet without SYN: ignored.
	w.WritePacket(base.Add(3*time.Second), EncodeTCP(seg("192.168.0.99:5000", "203.0.113.9:80", false, false, []byte("x"))))

	convs, err := ExtractConversations(NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if len(convs) != 3 {
		t.Fatalf("got %d conversations, want 3", len(convs))
	}
	if convs[0].Server != netem.ParseHostPort("203.0.113.1:80") {
		t.Errorf("first conversation server = %v", convs[0].Server)
	}
	if convs[0].Packets != 6 {
		t.Errorf("first conversation packets = %d, want 6", convs[0].Packets)
	}
	if convs[0].Bytes != 5100 {
		t.Errorf("first conversation bytes = %d, want 5100", convs[0].Bytes)
	}
	port80 := FilterServerPort(convs, 80)
	if len(port80) != 2 {
		t.Errorf("port-80 conversations = %d, want 2", len(port80))
	}
}

func TestServiceRequestsThreshold(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Unix(1700000000, 0)
	// Service A: 3 requests; service B: 1 request.
	for i := 0; i < 3; i++ {
		writeConversation(t, w, base.Add(time.Duration(i)*time.Second),
			netem.HostPort{IP: netem.ParseIP("192.168.0.10"), Port: uint16(50000 + i)}.String(),
			"203.0.113.1:80", 10, 10)
	}
	writeConversation(t, w, base, "192.168.0.10:51000", "203.0.113.2:80", 10, 10)

	convs, err := ExtractConversations(NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	services := ServiceRequests(FilterServerPort(convs, 80), 2)
	if len(services) != 1 {
		t.Fatalf("services = %d, want 1 (threshold filters B)", len(services))
	}
	if got := services[0].Server; got != netem.ParseHostPort("203.0.113.1:80") {
		t.Errorf("kept service = %v", got)
	}
	if TotalRequests(services) != 3 {
		t.Errorf("total requests = %d, want 3", TotalRequests(services))
	}
}

// Property: encode/decode round-trips arbitrary segments.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		in := &TCPSegment{
			Src:     netem.HostPort{IP: netem.IP(srcIP), Port: srcPort},
			Dst:     netem.HostPort{IP: netem.IP(dstIP), Port: dstPort},
			Seq:     seq,
			Ack:     ack,
			SYN:     flags&1 != 0,
			ACK:     flags&2 != 0,
			FIN:     flags&4 != 0,
			RST:     flags&8 != 0,
			PSH:     flags&16 != 0,
			Payload: payload,
		}
		frame := EncodeTCP(in)
		if !ValidateIPv4Checksum(frame) {
			return false
		}
		out, err := DecodeTCP(frame)
		if err != nil {
			return false
		}
		return out.Src == in.Src && out.Dst == in.Dst &&
			out.Seq == in.Seq && out.Ack == in.Ack &&
			out.SYN == in.SYN && out.ACK == in.ACK &&
			out.FIN == in.FIN && out.RST == in.RST && out.PSH == in.PSH &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
