package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestSegmentFromPacket(t *testing.T) {
	p := &netem.Packet{
		Src:     netem.ParseHostPort("192.168.1.10:50000"),
		Dst:     netem.ParseHostPort("203.0.113.1:80"),
		Flags:   netem.FlagPSH | netem.FlagACK,
		Seq:     3,
		Ack:     2,
		Payload: []byte("GET /"),
	}
	seg := SegmentFromPacket(p)
	if seg.Src != p.Src || seg.Dst != p.Dst || seg.Seq != 3 || seg.Ack != 2 {
		t.Errorf("segment = %+v", seg)
	}
	if !seg.PSH || !seg.ACK || seg.SYN || seg.RST || seg.FIN {
		t.Errorf("flags = %+v", seg)
	}
	// And it survives the wire format.
	back, err := DecodeTCP(EncodeTCP(seg))
	if err != nil || back.Src != p.Src || string(back.Payload) != "GET /" {
		t.Errorf("decode = %+v, %v", back, err)
	}
}

func TestLiveCaptureRecordsTraffic(t *testing.T) {
	clk := vclock.New()
	var buf bytes.Buffer
	lc := NewLiveCapture(&buf)
	clk.Run(func() {
		n := netem.NewNetwork(clk, 1)
		n.SetCapture(lc.Tap)
		a := n.NewHost("a", netem.ParseIP("10.0.0.1"))
		b := n.NewHost("b", netem.ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), b.NIC(), netem.LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if msg, err := c.Recv(); err == nil {
				c.Send(msg)
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		c.Send([]byte("ping"))
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	})
	if lc.Err() != nil {
		t.Fatal(lc.Err())
	}
	// SYN, SYN-ACK, ACK, data, ack, response, ack ≥ 7 packets.
	if lc.Packets() < 7 {
		t.Errorf("captured %d packets, want ≥7", lc.Packets())
	}
	// The capture is a valid pcap stream with matching content.
	r := NewReader(bytes.NewReader(buf.Bytes()))
	var sawSYN, sawPayload bool
	for {
		_, frame, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := DecodeTCP(frame)
		if err != nil {
			t.Fatal(err)
		}
		if seg.SYN && !seg.ACK {
			sawSYN = true
		}
		if string(seg.Payload) == "ping" {
			sawPayload = true
		}
	}
	if !sawSYN || !sawPayload {
		t.Errorf("capture incomplete: SYN=%v payload=%v", sawSYN, sawPayload)
	}
}
