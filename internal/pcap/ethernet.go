package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/c3lab/transparentedge/internal/netem"
)

// Frame layout constants.
const (
	etherHeaderLen = 14
	etherTypeIPv4  = 0x0800
	ipv4HeaderLen  = 20
	tcpHeaderLen   = 20
	protoTCP       = 6
)

// TCP flag bits as they appear in the wire header.
const (
	tcpFIN = 0x01
	tcpSYN = 0x02
	tcpRST = 0x04
	tcpPSH = 0x08
	tcpACK = 0x10
)

// ErrNotTCPIPv4 marks frames that are not IPv4/TCP and should be skipped
// during conversation extraction (the real bigFlows capture is full of
// such traffic).
var ErrNotTCPIPv4 = errors.New("pcap: frame is not IPv4/TCP")

// TCPSegment is the decoded view of one IPv4/TCP frame.
type TCPSegment struct {
	Src, Dst netem.HostPort
	Seq, Ack uint32
	SYN, ACK bool
	FIN, RST bool
	PSH      bool
	Payload  []byte
}

// Flags renders the segment's control bits using netem's flag type.
func (s *TCPSegment) Flags() netem.TCPFlags {
	var f netem.TCPFlags
	if s.SYN {
		f |= netem.FlagSYN
	}
	if s.ACK {
		f |= netem.FlagACK
	}
	if s.FIN {
		f |= netem.FlagFIN
	}
	if s.RST {
		f |= netem.FlagRST
	}
	if s.PSH {
		f |= netem.FlagPSH
	}
	return f
}

// EncodeTCP builds a complete Ethernet/IPv4/TCP frame for the segment.
// MAC addresses are synthesized from the IP addresses; the IPv4 header
// checksum is computed, the TCP checksum is left zero (valid enough for
// offline analysis, which is all this format is used for here).
func EncodeTCP(seg *TCPSegment) []byte {
	totalLen := etherHeaderLen + ipv4HeaderLen + tcpHeaderLen + len(seg.Payload)
	frame := make([]byte, totalLen)
	be := binary.BigEndian

	// Ethernet: locally administered MACs derived from the IPs.
	copy(frame[0:6], macForIP(seg.Dst.IP))
	copy(frame[6:12], macForIP(seg.Src.IP))
	be.PutUint16(frame[12:], etherTypeIPv4)

	// IPv4 header.
	ip := frame[etherHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	be.PutUint16(ip[2:], uint16(ipv4HeaderLen+tcpHeaderLen+len(seg.Payload)))
	ip[8] = 64 // TTL
	ip[9] = protoTCP
	srcOct := seg.Src.IP.Octets()
	dstOct := seg.Dst.IP.Octets()
	copy(ip[12:16], srcOct[:])
	copy(ip[16:20], dstOct[:])
	be.PutUint16(ip[10:], ipv4Checksum(ip[:ipv4HeaderLen]))

	// TCP header.
	tcp := ip[ipv4HeaderLen:]
	be.PutUint16(tcp[0:], seg.Src.Port)
	be.PutUint16(tcp[2:], seg.Dst.Port)
	be.PutUint32(tcp[4:], seg.Seq)
	be.PutUint32(tcp[8:], seg.Ack)
	tcp[12] = (tcpHeaderLen / 4) << 4 // data offset
	var flags byte
	if seg.FIN {
		flags |= tcpFIN
	}
	if seg.SYN {
		flags |= tcpSYN
	}
	if seg.RST {
		flags |= tcpRST
	}
	if seg.PSH {
		flags |= tcpPSH
	}
	if seg.ACK {
		flags |= tcpACK
	}
	tcp[13] = flags
	be.PutUint16(tcp[14:], 65535) // window
	copy(tcp[tcpHeaderLen:], seg.Payload)
	return frame
}

// DecodeTCP parses an Ethernet frame into a TCPSegment. Non-IPv4 and
// non-TCP frames return ErrNotTCPIPv4.
func DecodeTCP(frame []byte) (*TCPSegment, error) {
	if len(frame) < etherHeaderLen {
		return nil, fmt.Errorf("pcap: truncated Ethernet frame (%d bytes)", len(frame))
	}
	be := binary.BigEndian
	if be.Uint16(frame[12:]) != etherTypeIPv4 {
		return nil, ErrNotTCPIPv4
	}
	ip := frame[etherHeaderLen:]
	if len(ip) < ipv4HeaderLen {
		return nil, fmt.Errorf("pcap: truncated IPv4 header")
	}
	if ip[0]>>4 != 4 {
		return nil, ErrNotTCPIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(ip) < ihl {
		return nil, fmt.Errorf("pcap: bad IHL %d", ihl)
	}
	if ip[9] != protoTCP {
		return nil, ErrNotTCPIPv4
	}
	totalLen := int(be.Uint16(ip[2:]))
	if totalLen > len(ip) {
		return nil, fmt.Errorf("pcap: IPv4 total length %d exceeds frame", totalLen)
	}
	tcp := ip[ihl:totalLen]
	if len(tcp) < tcpHeaderLen {
		return nil, fmt.Errorf("pcap: truncated TCP header")
	}
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(tcp) {
		return nil, fmt.Errorf("pcap: bad TCP data offset %d", dataOff)
	}
	seg := &TCPSegment{
		Src: netem.HostPort{
			IP:   netem.IPFromOctets([4]byte(ip[12:16])),
			Port: be.Uint16(tcp[0:]),
		},
		Dst: netem.HostPort{
			IP:   netem.IPFromOctets([4]byte(ip[16:20])),
			Port: be.Uint16(tcp[2:]),
		},
		Seq:     be.Uint32(tcp[4:]),
		Ack:     be.Uint32(tcp[8:]),
		FIN:     tcp[13]&tcpFIN != 0,
		SYN:     tcp[13]&tcpSYN != 0,
		RST:     tcp[13]&tcpRST != 0,
		PSH:     tcp[13]&tcpPSH != 0,
		ACK:     tcp[13]&tcpACK != 0,
		Payload: tcp[dataOff:],
	}
	return seg, nil
}

// ipv4Checksum computes the standard ones-complement header checksum
// over hdr with its checksum field zeroed.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ValidateIPv4Checksum reports whether the frame's IPv4 header checksum
// is correct.
func ValidateIPv4Checksum(frame []byte) bool {
	if len(frame) < etherHeaderLen+ipv4HeaderLen {
		return false
	}
	ip := frame[etherHeaderLen:]
	stored := binary.BigEndian.Uint16(ip[10:])
	return ipv4Checksum(ip[:ipv4HeaderLen]) == stored
}

// macForIP derives a stable locally-administered MAC from an IP.
func macForIP(ip netem.IP) []byte {
	o := ip.Octets()
	return []byte{0x02, 0x00, o[0], o[1], o[2], o[3]}
}
