package vclock

import "math/bits"

// Hierarchical timing wheel (Varghese–Lauck scheme 6/7): the default
// evScheduler. Virtual time is handled as an int64 offset in
// nanoseconds from the clock's base instant (event.atNS). The wheel has
// wheelLevels levels of wheelSlots slots; a level-l slot spans
// 2^(wheelSlotBits·l) ns, so level 0 resolves single nanoseconds and
// the whole wheel covers 2^48 ns ≈ 78 hours ahead of the current time.
// Events past that horizon sit in an unsorted overflow list and are
// re-filed when the wheel reaches them.
//
// Each slot is an intrusive doubly-linked list threaded through the
// pooled event records (event.next/prev), so post, stop, and cascade
// move pointers and never allocate. A level-0 slot holds exactly one
// instant (1 ns wide) and is kept ordered by seq on insert — appending
// at the tail is the common case because seq grows monotonically —
// which is what preserves the engine's deterministic (at, seq) fire
// order. Higher-level slots are unordered; order is restored when their
// contents cascade down into level 0.
const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits // 256 slots per level
	wheelMask     = wheelSlots - 1
	wheelLevels   = 6
	wheelSpanBits = wheelLevels * wheelSlotBits // 48
	wheelSpan     = int64(1) << wheelSpanBits   // ≈ 78 h of lookahead
	wheelWords    = wheelSlots / 64             // occupancy bitmap words per level

	// overflowSlot marks an event parked on the overflow list.
	overflowSlot = int32(wheelLevels << wheelSlotBits)
	// pastSlot marks an event on the behind-cursor heap (see
	// wheelSched.past).
	pastSlot = overflowSlot + 1
)

// wheelList is one slot's intrusive event list.
type wheelList struct {
	head, tail *event
}

func (l *wheelList) append(ev *event) {
	ev.prev = l.tail
	ev.next = nil
	if l.tail != nil {
		l.tail.next = ev
	} else {
		l.head = ev
	}
	l.tail = ev
}

// insertBySeq files ev into a level-0 slot keeping seq order. All
// events in a level-0 slot share one firing instant, so seq order is
// full (at, seq) order. Scanning from the tail makes the monotone
// common case (fresh events have the largest seq) O(1).
func (l *wheelList) insertBySeq(ev *event) {
	p := l.tail
	for p != nil && p.seq > ev.seq {
		p = p.prev
	}
	if p == nil {
		ev.prev = nil
		ev.next = l.head
		if l.head != nil {
			l.head.prev = ev
		} else {
			l.tail = ev
		}
		l.head = ev
		return
	}
	ev.prev = p
	ev.next = p.next
	if p.next != nil {
		p.next.prev = ev
	} else {
		l.tail = ev
	}
	p.next = ev
}

func (l *wheelList) unlink(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		l.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
}

type wheelSched struct {
	// cur is the wheel's notion of "now": the virtual-time offset (ns
	// from the clock base) it has advanced to. Invariants: cur never
	// exceeds the firing time of any queued event, and it never sits
	// strictly inside the time window of an occupied level≥1 slot — pop
	// cascades a slot the moment cur reaches its window start.
	cur int64
	n   int

	slots [wheelLevels][wheelSlots]wheelList
	occ   [wheelLevels][wheelWords]uint64 // per-level slot occupancy bitmaps

	// over holds events beyond the wheel horizon, unsorted. overMin
	// tracks the minimum atNS on the list; removals may leave it stale
	// low, which is harmless — a stale trigger just makes pop rescan
	// the list one time and recompute the true minimum.
	over    wheelList
	overMin int64

	// past holds events filed behind cur, ordered (at, seq). A lone
	// clock never produces them — cur trails the firing point — but a
	// sharded clock can: pop advances cur to the next local event, the
	// horizon gate holds that event aside, and the window merge then
	// delivers cross-shard records at earlier instants (≥ the clock's
	// now, < cur). Every past event is strictly earlier than every
	// wheel-resident event (cur never exceeds a queued wheel event's
	// firing time), so pop drains this heap first without moving cur.
	past eventHeap
}

func newWheelSched(curNS int64) *wheelSched {
	return &wheelSched{cur: curNS}
}

func (w *wheelSched) size() int { return w.n }

func (w *wheelSched) push(ev *event) {
	ev.index = 0 // queued; stopEvent keys off index < 0
	w.n++
	w.file(ev)
}

// file places ev by its delta from cur: the level is the position of
// the delta's top bit divided down by wheelSlotBits, the slot is the
// corresponding bit field of the absolute firing time. A negative
// delta — a cross-shard record merged after cur popped ahead of the
// clock's now — goes to the past heap instead; the slot math assumes
// delta ≥ 0.
func (w *wheelSched) file(ev *event) {
	delta := ev.atNS - w.cur
	if delta < 0 {
		ev.slot = pastSlot
		w.past.push(ev)
		return
	}
	if delta >= wheelSpan {
		ev.slot = overflowSlot
		if w.over.head == nil || ev.atNS < w.overMin {
			w.overMin = ev.atNS
		}
		w.over.append(ev)
		return
	}
	level := 0
	if delta > 0 {
		level = (bits.Len64(uint64(delta)) - 1) / wheelSlotBits
	}
	s := int(uint64(ev.atNS)>>(uint(level)*wheelSlotBits)) & wheelMask
	ev.slot = int32(level<<wheelSlotBits | s)
	w.occ[level][s>>6] |= 1 << (uint(s) & 63)
	if level == 0 {
		w.slots[0][s].insertBySeq(ev)
	} else {
		w.slots[level][s].append(ev)
	}
}

// remove unlinks a queued event in O(1) — this is what makes Stop on a
// pending timer constant-time regardless of how many are queued.
func (w *wheelSched) remove(ev *event) {
	if ev.slot == pastSlot {
		w.past.remove(ev.index)
	} else if ev.slot == overflowSlot {
		w.over.unlink(ev)
		// overMin may now be stale low; see the field comment.
	} else {
		level := int(ev.slot) >> wheelSlotBits
		s := int(ev.slot) & wheelMask
		l := &w.slots[level][s]
		l.unlink(ev)
		if l.head == nil {
			w.occ[level][s>>6] &^= 1 << (uint(s) & 63)
		}
	}
	ev.slot = -1
	ev.index = -1
	w.n--
}

// nextOcc finds the first occupied slot at or circularly after from,
// scanning the occupancy bitmap.
func nextOcc(bm *[wheelWords]uint64, from int) (int, bool) {
	wi := from >> 6
	off := uint(from) & 63
	if word := bm[wi] >> off << off; word != 0 {
		return wi<<6 + bits.TrailingZeros64(word), true
	}
	for k := 1; k <= wheelWords; k++ {
		i := (wi + k) & (wheelWords - 1)
		if bm[i] != 0 {
			return i<<6 + bits.TrailingZeros64(bm[i]), true
		}
	}
	return 0, false
}

// minLevel0 returns the earliest level-0 firing time and its slot.
// Level-0 slots within the live window [cur, cur+256) map uniquely:
// slot index == firing time mod 256, and a slot numerically equal to
// cur's own position can only hold atNS == cur (an event 256 ns out
// would have delta 256 and sit on level 1), so distance 0 is exact.
func (w *wheelSched) minLevel0() (int64, int, bool) {
	idx := int(uint64(w.cur)) & wheelMask
	s, ok := nextOcc(&w.occ[0], idx)
	if !ok {
		return 0, 0, false
	}
	return w.cur + int64((s-idx)&wheelMask), s, true
}

// minHigher returns the earliest window start among occupied level≥1
// slots, with the level and slot index; level < 0 means none.
//
// The subtle case is an occupied slot whose index equals cur's own
// position at that level. If cur sits exactly on the slot's window
// start, the contents belong to the current revolution and must
// cascade now (an event a full revolution out would have had an insert
// delta ≥ 2^(8(l+1)), which files one level up — impossible here). If
// cur is strictly inside the window, the slot was already cascaded
// when cur crossed its start, so anything in it now was inserted later
// with a carry out of the low bits: it is one revolution ahead, and
// the next-earliest occupied slot after it (or itself at distance 256)
// is the real candidate.
func (w *wheelSched) minHigher() (int64, int, int) {
	tH, lH, sH := int64(0), -1, 0
	for level := 1; level < wheelLevels; level++ {
		shift := uint(level) * wheelSlotBits
		idx := int(uint64(w.cur)>>shift) & wheelMask
		s, ok := nextOcc(&w.occ[level], idx)
		if !ok {
			continue
		}
		dist := int64((s - idx) & wheelMask)
		if s == idx && w.cur&(int64(1)<<shift-1) != 0 {
			s2, _ := nextOcc(&w.occ[level], (idx+1)&wheelMask)
			if s2 == idx {
				dist = wheelSlots
			} else {
				s = s2
				dist = int64((s2 - idx) & wheelMask)
			}
		}
		start := (w.cur>>shift + dist) << shift
		if lH < 0 || start < tH {
			tH, lH, sH = start, level, s
		}
	}
	return tH, lH, sH
}

// pop removes and returns the (at, seq)-minimal event. It advances cur
// by jumps: cascade the earliest occupied higher-level slot whenever
// its window start is at or before the earliest level-0 event (so
// same-instant events meet in a seq-ordered level-0 slot before any of
// them fires), re-file the overflow list whenever its minimum is due,
// and otherwise fire the head of the earliest level-0 slot.
func (w *wheelSched) pop() *event {
	if len(w.past) > 0 {
		// Behind-cursor records precede everything on the wheel; cur
		// stays put so wheel-resident deltas keep their meaning.
		ev := w.past.pop()
		ev.slot = -1
		w.n--
		return ev
	}
	for {
		t0, s0, ok0 := w.minLevel0()
		tH, lH, sH := w.minHigher()
		if w.over.head != nil {
			m := w.overMin
			if (!ok0 || m <= t0) && (lH < 0 || m <= tH) {
				if m > w.cur {
					w.cur = m
				}
				w.refileOverflow()
				continue
			}
		}
		if lH >= 0 && (!ok0 || tH <= t0) {
			w.cur = tH
			w.cascade(lH, sH)
			continue
		}
		// pop is only called with n > 0, and every queued event is
		// reachable by one of the three scans, so ok0 holds here.
		l := &w.slots[0][s0]
		ev := l.head
		l.unlink(ev)
		if l.head == nil {
			w.occ[0][s0>>6] &^= 1 << (uint(s0) & 63)
		}
		w.cur = t0
		ev.slot = -1
		ev.index = -1
		w.n--
		return ev
	}
}

// cascade empties one level≥1 slot whose window start cur has reached,
// re-filing each event by its remaining delta. Every event lands at a
// strictly lower level because its delta is now below the slot width.
func (w *wheelSched) cascade(level, s int) {
	l := &w.slots[level][s]
	ev := l.head
	*l = wheelList{}
	w.occ[level][s>>6] &^= 1 << (uint(s) & 63)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.file(ev)
		ev = next
	}
}

// refileOverflow moves every overflow event now within the wheel
// horizon onto the wheel and recomputes overMin for the rest. After a
// pass, anything still on the list is at least wheelSpan past cur, so
// overMin cannot re-trigger before the wheel has work to do.
func (w *wheelSched) refileOverflow() {
	ev := w.over.head
	w.over = wheelList{}
	w.overMin = 0
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		if ev.atNS-w.cur < wheelSpan {
			w.file(ev)
		} else {
			ev.slot = overflowSlot
			if w.over.head == nil || ev.atNS < w.overMin {
				w.overMin = ev.atNS
			}
			w.over.append(ev)
		}
		ev = next
	}
}
