package vclock

import (
	"sync"
	"time"
)

// Mailbox is an unbounded FIFO queue whose blocking receive parks the
// goroutine in a clock-aware way. It is the channel replacement for
// emulated components: packet queues, controller message queues, watch
// streams.
type Mailbox[T any] struct {
	clk     Clock
	mu      sync.Mutex
	queue   []T
	waiters []*mboxWaiter[T]
	closed  bool
}

type mboxWaiter[T any] struct {
	wake    func()
	val     T
	ok      bool
	settled bool // value delivered, timeout fired, or mailbox closed
}

// NewMailbox returns an empty mailbox using clk for blocking.
func NewMailbox[T any](clk Clock) *Mailbox[T] {
	return &Mailbox[T]{clk: clk}
}

// Send enqueues v, waking one blocked receiver if any. Send on a closed
// mailbox panics, mirroring send-on-closed-channel.
func (m *Mailbox[T]) Send(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("vclock: send on closed Mailbox")
	}
	if w := m.popWaiterLocked(); w != nil {
		w.val, w.ok, w.settled = v, true, true
		m.mu.Unlock()
		w.wake()
		return
	}
	m.queue = append(m.queue, v)
	m.mu.Unlock()
}

// popWaiterLocked removes and returns the first unsettled waiter.
func (m *Mailbox[T]) popWaiterLocked() *mboxWaiter[T] {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		if !w.settled {
			return w
		}
	}
	return nil
}

// Recv dequeues the next value, blocking until one arrives. ok is false
// if the mailbox was closed and drained.
func (m *Mailbox[T]) Recv() (v T, ok bool) {
	return m.recv(-1)
}

// RecvTimeout is Recv with a deadline of d clock time. ok is false on
// timeout or on closed-and-drained.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (v T, ok bool) {
	return m.recv(d)
}

// TryRecv dequeues the next value without blocking.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return v, false
	}
	v = m.queue[0]
	m.queue = m.queue[1:]
	return v, true
}

func (m *Mailbox[T]) recv(timeout time.Duration) (v T, ok bool) {
	m.mu.Lock()
	if len(m.queue) > 0 {
		v = m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		return v, true
	}
	if m.closed {
		m.mu.Unlock()
		return v, false
	}
	wait, wake := m.clk.newWaiter()
	w := &mboxWaiter[T]{wake: wake}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()

	var timer *Timer
	if timeout >= 0 {
		timer = m.clk.AfterFunc(timeout, func() {
			m.mu.Lock()
			if w.settled {
				m.mu.Unlock()
				return
			}
			w.settled = true // ok stays false: timed out
			m.mu.Unlock()
			w.wake()
		})
	}
	wait()
	if timer != nil {
		timer.Stop()
	}
	return w.val, w.ok
}

// Close marks the mailbox closed; blocked receivers return ok=false once
// the queue drains. Closing twice is a no-op.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ws := m.waiters
	m.waiters = nil
	var wakes []func()
	for _, w := range ws {
		if !w.settled {
			w.settled = true
			wakes = append(wakes, w.wake)
		}
	}
	m.mu.Unlock()
	for _, wk := range wakes {
		wk()
	}
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}
