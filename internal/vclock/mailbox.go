package vclock

import (
	"sync"
	"time"
)

// Mailbox is an unbounded FIFO queue whose blocking receive parks the
// goroutine in a clock-aware way. It is the channel replacement for
// emulated components: packet queues, controller message queues, watch
// streams. Steady-state Send/Recv pairs allocate nothing: the queue and
// the waiter list use inline backing arrays for the common small case,
// drained queues reuse their backing store, and receivers park on pooled
// waiters. A zero Mailbox plus Init is ready for use, so it embeds by
// value inside connection-like structs.
type Mailbox[T any] struct {
	clk     Clock
	mu      sync.Mutex
	queue   []T
	head    int // queue[head:] holds the pending values
	qbuf    [2]T
	waiters []*mboxWaiter[T]
	wbuf    [2]*mboxWaiter[T]
	free    []*mboxWaiter[T]
	// w0 is the inline waiter record for the common single-receiver
	// case; w0busy guards it. Overflow receivers draw from free or
	// allocate.
	w0     mboxWaiter[T]
	w0busy bool
	closed bool
}

type mboxWaiter[T any] struct {
	w        *waiter
	val      T
	ok       bool
	settled  bool // value delivered, timeout fired, or mailbox closed
	timedOut bool // the timeout callback was the waker
}

// NewMailbox returns an empty mailbox using clk for blocking.
func NewMailbox[T any](clk Clock) *Mailbox[T] {
	m := &Mailbox[T]{}
	m.Init(clk)
	return m
}

// Init prepares a zero Mailbox for use with clk. It must be called (or
// the mailbox built by NewMailbox) before any other method.
func (m *Mailbox[T]) Init(clk Clock) { m.clk = clk }

// Send enqueues v, waking one blocked receiver if any. Send on a closed
// mailbox panics, mirroring send-on-closed-channel.
func (m *Mailbox[T]) Send(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("vclock: send on closed Mailbox")
	}
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters[len(m.waiters)-1] = nil
		m.waiters = m.waiters[:len(m.waiters)-1]
		w.val, w.ok, w.settled = v, true, true
		m.mu.Unlock()
		w.w.wake()
		return
	}
	if m.queue == nil {
		m.queue = m.qbuf[:0]
	} else if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
	}
	m.queue = append(m.queue, v)
	m.mu.Unlock()
}

// Recv dequeues the next value, blocking until one arrives. ok is false
// if the mailbox was closed and drained.
func (m *Mailbox[T]) Recv() (v T, ok bool) {
	return m.recv(-1)
}

// RecvTimeout is Recv with a deadline of d clock time. ok is false on
// timeout or on closed-and-drained.
func (m *Mailbox[T]) RecvTimeout(d time.Duration) (v T, ok bool) {
	return m.recv(d)
}

// TryRecv dequeues the next value without blocking.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.head == len(m.queue) {
		return v, false
	}
	return m.popLocked(), true
}

// popLocked removes and returns the head value. Callers hold m.mu and
// have checked the queue is non-empty.
func (m *Mailbox[T]) popLocked() T {
	var zero T
	v := m.queue[m.head]
	m.queue[m.head] = zero
	m.head++
	return v
}

// getWaiterLocked returns a waiter record: the inline slot if idle, a
// recycled one, or a fresh allocation. Callers hold m.mu.
func (m *Mailbox[T]) getWaiterLocked() *mboxWaiter[T] {
	if !m.w0busy {
		m.w0busy = true
		return &m.w0
	}
	if n := len(m.free); n > 0 {
		w := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return w
	}
	return &mboxWaiter[T]{}
}

// putWaiterLocked recycles a waiter record. Callers hold m.mu and have
// established that no stale timeout callback can still touch it.
func (m *Mailbox[T]) putWaiterLocked(w *mboxWaiter[T]) {
	var zero T
	w.w = nil
	w.val = zero
	w.timedOut = false
	if w == &m.w0 {
		m.w0busy = false
		return
	}
	m.free = append(m.free, w)
}

func (m *Mailbox[T]) recv(timeout time.Duration) (v T, ok bool) {
	m.mu.Lock()
	if m.head != len(m.queue) {
		v = m.popLocked()
		m.mu.Unlock()
		return v, true
	}
	if m.closed {
		m.mu.Unlock()
		return v, false
	}
	w := m.getWaiterLocked()
	w.ok, w.settled = false, false
	w.w = m.clk.newWaiter()
	if m.waiters == nil {
		m.waiters = m.wbuf[:0]
	}
	m.waiters = append(m.waiters, w)
	m.mu.Unlock()

	var pending Pending
	if timeout >= 0 {
		pending = m.clk.Post(timeout, func() {
			m.mu.Lock()
			if w.settled {
				m.mu.Unlock()
				return
			}
			w.settled = true // ok stays false: timed out
			w.timedOut = true
			m.removeWaiterLocked(w)
			m.mu.Unlock()
			w.w.wake()
		})
	}
	w.w.wait()
	stopped := true
	if timeout >= 0 {
		stopped = pending.Stop()
	}
	v, ok = w.val, w.ok

	// The waiter is out of m.waiters on every path (delivery and Close
	// pop it, timeout removes it). It can be recycled unless an already
	// fired timeout callback that was not our waker may still hold a
	// reference; in that rare race the record is retired — the callback
	// will observe settled and never touch it again.
	m.mu.Lock()
	w.w.release()
	if stopped || w.timedOut {
		m.putWaiterLocked(w)
	}
	m.mu.Unlock()
	return v, ok
}

// removeWaiterLocked drops w from the waiting list. Callers hold m.mu.
func (m *Mailbox[T]) removeWaiterLocked(w *mboxWaiter[T]) {
	for i, cur := range m.waiters {
		if cur == w {
			copy(m.waiters[i:], m.waiters[i+1:])
			m.waiters[len(m.waiters)-1] = nil
			m.waiters = m.waiters[:len(m.waiters)-1]
			return
		}
	}
}

// Close marks the mailbox closed; blocked receivers return ok=false once
// the queue drains. Closing twice is a no-op. Waking happens with the
// lock held — wake never blocks — so no waiter-list copy is needed.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for i, w := range m.waiters {
		m.waiters[i] = nil
		if !w.settled {
			w.settled = true
			w.w.wake()
		}
	}
	m.waiters = nil
	m.mu.Unlock()
}

// Len reports the number of queued values.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) - m.head
}
