package vclock

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Rand is a mutex-guarded deterministic random source. Emulated
// components draw jitter from a seeded Rand so that repeated runs of a
// scenario produce identical traces.
type Rand struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (r *Rand) Float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Float64()
}

// Intn returns a uniform value in [0,n).
func (r *Rand) Intn(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Intn(n)
}

// Int63 returns a uniform non-negative 63-bit value.
func (r *Rand) Int63() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.Int63()
}

// NormFloat64 returns a standard-normally distributed value.
func (r *Rand) NormFloat64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.NormFloat64()
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Rand) ExpFloat64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.r.ExpFloat64()
}

// Jitter returns base scaled by a factor drawn uniformly from
// [1-frac, 1+frac]; frac is clamped to [0,1]. Jitter(0, f) is always 0.
func (r *Rand) Jitter(base time.Duration, frac float64) time.Duration {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f := 1 + frac*(2*r.Float64()-1)
	return time.Duration(float64(base) * f)
}

// LogNormal returns a log-normally distributed duration with the given
// median and sigma (shape). Startup and processing latencies in the
// timing model use this: long right tails, never negative.
func (r *Rand) LogNormal(median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	n := r.NormFloat64()
	return time.Duration(float64(median) * math.Exp(sigma*n))
}
