package vclock

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	v := New()
	v.Run(func() {
		start := v.Now()
		v.Sleep(3 * time.Second)
		if got := v.Since(start); got != 3*time.Second {
			t.Errorf("Sleep advanced %v, want 3s", got)
		}
	})
}

func TestVirtualSleepZeroAndNegative(t *testing.T) {
	v := New()
	v.Run(func() {
		start := v.Now()
		v.Sleep(0)
		v.Sleep(-time.Second)
		if got := v.Since(start); got != 0 {
			t.Errorf("zero/negative sleep advanced time by %v", got)
		}
	})
}

func TestVirtualConcurrentSleepsWakeInOrder(t *testing.T) {
	v := New()
	var mu sync.Mutex
	var order []int
	v.Run(func() {
		var g Group
		for i, d := range []time.Duration{30, 10, 20} {
			i, d := i, d
			g.Go(v, func() {
				v.Sleep(d * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		g.Wait(v)
	})
	want := []int{1, 2, 0} // 10ms, 20ms, 30ms
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualSameInstantFIFO(t *testing.T) {
	v := New()
	var mu sync.Mutex
	var order []int
	v.Run(func() {
		var g Group
		for i := 0; i < 5; i++ {
			i := i
			g.Add(1)
			v.AfterFunc(time.Second, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				g.Done()
			})
		}
		g.Wait(v)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestAfterFuncRunsAtDeadline(t *testing.T) {
	v := New()
	v.Run(func() {
		start := v.Now()
		var fired time.Time
		g := NewGate()
		v.AfterFunc(500*time.Millisecond, func() {
			fired = v.Now()
			g.Open()
		})
		g.Wait(v)
		if got := fired.Sub(start); got != 500*time.Millisecond {
			t.Errorf("fired after %v, want 500ms", got)
		}
	})
}

func TestTimerStopPreventsRun(t *testing.T) {
	v := New()
	v.Run(func() {
		ran := false
		tm := v.AfterFunc(time.Second, func() { ran = true })
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
		v.Sleep(2 * time.Second)
		if ran {
			t.Error("stopped timer still ran")
		}
	})
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Error("nil timer Stop returned true")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected deadlock panic")
		}
	}()
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		mb.Recv() // nothing will ever arrive
	})
}

func TestRunStopsPeriodicTimers(t *testing.T) {
	v := New()
	ticks := 0
	v.Run(func() {
		var tick func()
		tick = func() {
			ticks++
			v.AfterFunc(time.Second, tick)
		}
		v.AfterFunc(time.Second, tick)
		v.Sleep(3500 * time.Millisecond)
	})
	// Ticks at 1s, 2s, 3s; the simulation stops at 3.5s.
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
}

func TestMailboxFIFO(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		for i := 0; i < 10; i++ {
			mb.Send(i)
		}
		for i := 0; i < 10; i++ {
			got, ok := mb.Recv()
			if !ok || got != i {
				t.Fatalf("Recv = %d,%v want %d,true", got, ok, i)
			}
		}
	})
}

func TestMailboxBlockingRecv(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[string](v)
		start := v.Now()
		v.AfterFunc(2*time.Second, func() { mb.Send("hello") })
		got, ok := mb.Recv()
		if !ok || got != "hello" {
			t.Fatalf("Recv = %q,%v", got, ok)
		}
		if d := v.Since(start); d != 2*time.Second {
			t.Errorf("Recv returned after %v, want 2s", d)
		}
	})
}

func TestMailboxRecvTimeout(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		start := v.Now()
		_, ok := mb.RecvTimeout(time.Second)
		if ok {
			t.Error("RecvTimeout succeeded on empty mailbox")
		}
		if d := v.Since(start); d != time.Second {
			t.Errorf("timeout after %v, want 1s", d)
		}
		// A value arriving before the deadline is delivered.
		v.AfterFunc(200*time.Millisecond, func() { mb.Send(7) })
		got, ok := mb.RecvTimeout(time.Second)
		if !ok || got != 7 {
			t.Fatalf("RecvTimeout = %d,%v want 7,true", got, ok)
		}
	})
}

func TestMailboxTryRecv(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		if _, ok := mb.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		mb.Send(1)
		if got, ok := mb.TryRecv(); !ok || got != 1 {
			t.Errorf("TryRecv = %d,%v", got, ok)
		}
	})
}

func TestMailboxClose(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		mb.Send(1)
		mb.Close()
		mb.Close() // idempotent
		if got, ok := mb.Recv(); !ok || got != 1 {
			t.Fatalf("Recv after close = %d,%v; queued value lost", got, ok)
		}
		if _, ok := mb.Recv(); ok {
			t.Error("Recv on drained closed mailbox returned ok")
		}
	})
}

func TestMailboxCloseWakesBlockedReceiver(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		var g Group
		g.Go(v, func() {
			if _, ok := mb.Recv(); ok {
				t.Error("Recv returned ok after Close")
			}
		})
		v.Sleep(time.Second)
		mb.Close()
		g.Wait(v)
	})
}

func TestMailboxSendOnClosedPanics(t *testing.T) {
	v := New()
	v.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic sending on closed mailbox")
			}
		}()
		mb := NewMailbox[int](v)
		mb.Close()
		mb.Send(1)
	})
}

func TestMailboxLen(t *testing.T) {
	v := New()
	v.Run(func() {
		mb := NewMailbox[int](v)
		if mb.Len() != 0 {
			t.Error("new mailbox not empty")
		}
		mb.Send(1)
		mb.Send(2)
		if mb.Len() != 2 {
			t.Errorf("Len = %d, want 2", mb.Len())
		}
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	v := New()
	v.Run(func() {
		var mu sync.Mutex
		c := NewCond(v, &mu)
		ready := 0
		var g Group
		for i := 0; i < 3; i++ {
			g.Go(v, func() {
				mu.Lock()
				c.Wait()
				ready++
				mu.Unlock()
			})
		}
		v.Sleep(time.Second) // let all three park
		c.Signal()
		v.Sleep(time.Second)
		mu.Lock()
		got := ready
		mu.Unlock()
		if got != 1 {
			t.Errorf("after Signal ready = %d, want 1", got)
		}
		c.Broadcast()
		g.Wait(v)
		if ready != 3 {
			t.Errorf("after Broadcast ready = %d, want 3", ready)
		}
	})
}

func TestCondWaitTimeout(t *testing.T) {
	v := New()
	v.Run(func() {
		var mu sync.Mutex
		c := NewCond(v, &mu)
		mu.Lock()
		start := v.Now()
		ok := c.WaitTimeout(time.Second)
		mu.Unlock()
		if ok {
			t.Error("WaitTimeout reported signal without one")
		}
		if d := v.Since(start); d != time.Second {
			t.Errorf("WaitTimeout returned after %v, want 1s", d)
		}
	})
}

func TestCondWaitTimeoutSignalled(t *testing.T) {
	v := New()
	v.Run(func() {
		var mu sync.Mutex
		c := NewCond(v, &mu)
		v.AfterFunc(200*time.Millisecond, c.Signal)
		mu.Lock()
		ok := c.WaitTimeout(time.Second)
		mu.Unlock()
		if !ok {
			t.Error("WaitTimeout missed the signal")
		}
	})
}

func TestGate(t *testing.T) {
	v := New()
	v.Run(func() {
		g := NewGate()
		if g.IsOpen() {
			t.Error("new gate is open")
		}
		var grp Group
		woke := 0
		var mu sync.Mutex
		for i := 0; i < 4; i++ {
			grp.Go(v, func() {
				g.Wait(v)
				mu.Lock()
				woke++
				mu.Unlock()
			})
		}
		v.Sleep(time.Second)
		g.Open()
		g.Open() // idempotent
		grp.Wait(v)
		if woke != 4 {
			t.Errorf("woke = %d, want 4", woke)
		}
		// Waiting on an open gate returns immediately.
		start := v.Now()
		g.Wait(v)
		if v.Since(start) != 0 {
			t.Error("Wait on open gate advanced time")
		}
	})
}

func TestGateWaitTimeout(t *testing.T) {
	v := New()
	v.Run(func() {
		g := NewGate()
		if g.WaitTimeout(v, time.Second) {
			t.Error("WaitTimeout true on closed gate")
		}
		v.AfterFunc(100*time.Millisecond, g.Open)
		if !g.WaitTimeout(v, time.Second) {
			t.Error("WaitTimeout false on opened gate")
		}
		if !g.WaitTimeout(v, time.Second) {
			t.Error("WaitTimeout false on already-open gate")
		}
	})
}

func TestGroupWaitImmediateWhenZero(t *testing.T) {
	v := New()
	v.Run(func() {
		var g Group
		g.Wait(v) // must not block
	})
}

func TestGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative counter")
		}
	}()
	var g Group
	g.Done()
}

func TestRealClockBasics(t *testing.T) {
	r := NewScaled(1000)
	start := r.Now()
	r.Sleep(500 * time.Millisecond) // 0.5ms wall time
	if d := r.Since(start); d < 400*time.Millisecond {
		t.Errorf("scaled Sleep advanced only %v", d)
	}
	fired := make(chan struct{})
	r.AfterFunc(100*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Error("scaled AfterFunc never fired")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(1)
	base := time.Second
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.2)
		if j < 800*time.Millisecond || j > 1200*time.Millisecond {
			t.Fatalf("jitter %v outside ±20%% of 1s", j)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Error("jitter of zero base is nonzero")
	}
}

func TestRandLogNormalPositive(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if d := r.LogNormal(100*time.Millisecond, 0.3); d <= 0 {
			t.Fatalf("LogNormal returned %v", d)
		}
	}
	if r.LogNormal(0, 0.3) != 0 {
		t.Error("LogNormal of zero median is nonzero")
	}
}

// Property: for any set of non-negative delays, AfterFunc callbacks fire
// in non-decreasing virtual-time order and each at exactly start+delay.
func TestTimerOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		v := New()
		ok := true
		v.Run(func() {
			start := v.Now()
			var g Group
			var mu sync.Mutex
			var fired []time.Duration
			for _, ms := range raw {
				d := time.Duration(ms) * time.Millisecond
				g.Add(1)
				v.AfterFunc(d, func() {
					mu.Lock()
					fired = append(fired, v.Since(start))
					mu.Unlock()
					g.Done()
				})
			}
			g.Wait(v)
			want := make([]time.Duration, len(raw))
			for i, ms := range raw {
				want[i] = time.Duration(ms) * time.Millisecond
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(fired) != len(want) {
				ok = false
				return
			}
			for i := range want {
				if fired[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a mailbox delivers exactly the multiset of sent values, in
// FIFO order, regardless of interleaved delays.
func TestMailboxFIFOProperty(t *testing.T) {
	f := func(vals []int8) bool {
		v := New()
		ok := true
		v.Run(func() {
			mb := NewMailbox[int8](v)
			var g Group
			g.Go(v, func() {
				for _, x := range vals {
					v.Sleep(time.Millisecond)
					mb.Send(x)
				}
			})
			var got []int8
			g.Go(v, func() {
				for range vals {
					x, recvOK := mb.Recv()
					if !recvOK {
						ok = false
						return
					}
					got = append(got, x)
				}
			})
			g.Wait(v)
			if len(got) != len(vals) {
				ok = false
				return
			}
			for i := range vals {
				if got[i] != vals[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestVirtualDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		v := New()
		var out []time.Duration
		v.Run(func() {
			start := v.Now()
			var g Group
			var mu sync.Mutex
			r := NewRand(99)
			for i := 0; i < 20; i++ {
				g.Go(v, func() {
					v.Sleep(r.Jitter(time.Second, 0.5))
					mu.Lock()
					out = append(out, v.Since(start))
					mu.Unlock()
				})
			}
			g.Wait(v)
		})
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
