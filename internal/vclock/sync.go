package vclock

import (
	"sync"
	"time"
)

// Cond is a clock-aware condition variable. Like sync.Cond it must be
// used with an external mutex held across the predicate check and Wait.
type Cond struct {
	clk     Clock
	L       sync.Locker
	mu      sync.Mutex
	waiters []*condWaiter
}

type condWaiter struct {
	w       *waiter
	settled bool
}

// NewCond returns a condition variable bound to l, using clk to park.
func NewCond(clk Clock, l sync.Locker) *Cond {
	return &Cond{clk: clk, L: l}
}

// Wait atomically releases c.L, parks until Signal/Broadcast, and
// re-acquires c.L before returning.
func (c *Cond) Wait() {
	cw := &condWaiter{w: c.clk.newWaiter()}
	c.mu.Lock()
	c.waiters = append(c.waiters, cw)
	c.mu.Unlock()
	c.L.Unlock()
	cw.w.wait()
	cw.w.release()
	c.L.Lock()
}

// WaitTimeout is Wait with a deadline; it reports false if the deadline
// expired before a Signal/Broadcast reached this waiter.
func (c *Cond) WaitTimeout(d time.Duration) bool {
	cw := &condWaiter{w: c.clk.newWaiter()}
	c.mu.Lock()
	c.waiters = append(c.waiters, cw)
	c.mu.Unlock()

	signalled := true
	pending := c.clk.Post(d, func() {
		c.mu.Lock()
		if cw.settled {
			c.mu.Unlock()
			return
		}
		cw.settled = true
		signalled = false
		c.mu.Unlock()
		cw.w.wake()
	})
	c.L.Unlock()
	cw.w.wait()
	pending.Stop()
	cw.w.release()
	c.L.Lock()
	return signalled
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	c.mu.Lock()
	var wk *waiter
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if !w.settled {
			w.settled = true
			wk = w.w
			break
		}
	}
	c.mu.Unlock()
	if wk != nil {
		wk.wake()
	}
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	var wakes []*waiter
	for _, w := range ws {
		if !w.settled {
			w.settled = true
			wakes = append(wakes, w.w)
		}
	}
	c.mu.Unlock()
	for _, wk := range wakes {
		wk.wake()
	}
}

// Gate is a one-shot latch: goroutines Wait until someone calls Open.
// Opening an already-open gate is a no-op. It replaces the common
// close-a-channel idiom in clock-aware code. The zero value is a closed
// gate ready for use, so a Gate embeds by value without a constructor;
// plain Wait/Open cycles allocate nothing.
type Gate struct {
	mu   sync.Mutex
	open bool
	// waiters holds parked plain Waits; only Open wakes them, so they
	// need no settle flag. wbuf backs the common 1–2 waiter case inline.
	waiters []*waiter
	wbuf    [2]*waiter
	// twaiters holds WaitTimeout parkers, which race Open against their
	// deadline and therefore carry a settle flag.
	twaiters []*gateWaiter
}

type gateWaiter struct {
	w       *waiter
	settled bool
}

// NewGate returns a closed gate. The zero value is also usable.
func NewGate() *Gate { return &Gate{} }

// Open releases all current and future waiters. Waking is done with the
// gate lock held: wake never blocks (buffered channel plus clock
// bookkeeping), and doing it inline avoids copying the waiter list.
func (g *Gate) Open() {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	g.open = true
	for i, w := range g.waiters {
		g.waiters[i] = nil
		w.wake()
	}
	g.waiters = nil
	for _, gw := range g.twaiters {
		if !gw.settled {
			gw.settled = true
			gw.w.wake()
		}
	}
	g.twaiters = nil
	g.mu.Unlock()
}

// IsOpen reports whether the gate has been opened.
func (g *Gate) IsOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

// Wait parks until the gate opens (returns immediately if already open).
func (g *Gate) Wait(clk Clock) {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	w := clk.newWaiter()
	if g.waiters == nil {
		g.waiters = g.wbuf[:0]
	}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	w.wait()
	w.release()
}

// WaitTimeout parks until the gate opens or d elapses; it reports whether
// the gate opened.
func (g *Gate) WaitTimeout(clk Clock, d time.Duration) bool {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return true
	}
	gw := &gateWaiter{w: clk.newWaiter()}
	g.twaiters = append(g.twaiters, gw)
	g.mu.Unlock()

	opened := true
	pending := clk.Post(d, func() {
		g.mu.Lock()
		if gw.settled {
			g.mu.Unlock()
			return
		}
		gw.settled = true
		opened = false
		g.mu.Unlock()
		gw.w.wake()
	})
	gw.w.wait()
	pending.Stop()
	gw.w.release()
	return opened
}

// Group waits for a collection of clock goroutines to finish, mirroring
// sync.WaitGroup.
type Group struct {
	mu    sync.Mutex
	n     int
	gates []*waiter
}

// Add increments the pending-goroutine count by delta.
func (g *Group) Add(delta int) {
	g.mu.Lock()
	g.n += delta
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var wakes []*waiter
	if g.n == 0 {
		wakes = g.gates
		g.gates = nil
	}
	g.mu.Unlock()
	for _, wk := range wakes {
		wk.wake()
	}
}

// Done decrements the pending count by one.
func (g *Group) Done() { g.Add(-1) }

// Go runs fn on clk as a tracked goroutine counted by the group.
func (g *Group) Go(clk Clock, fn func()) {
	g.Add(1)
	clk.Go(func() {
		defer g.Done()
		fn()
	})
}

// Wait parks until the counter reaches zero.
func (g *Group) Wait(clk Clock) {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return
	}
	w := clk.newWaiter()
	g.gates = append(g.gates, w)
	g.mu.Unlock()
	w.wait()
	w.release()
}
