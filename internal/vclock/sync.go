package vclock

import (
	"sync"
	"time"
)

// Cond is a clock-aware condition variable. Like sync.Cond it must be
// used with an external mutex held across the predicate check and Wait.
type Cond struct {
	clk     Clock
	L       sync.Locker
	mu      sync.Mutex
	waiters []*condWaiter
}

type condWaiter struct {
	wake    func()
	settled bool
}

// NewCond returns a condition variable bound to l, using clk to park.
func NewCond(clk Clock, l sync.Locker) *Cond {
	return &Cond{clk: clk, L: l}
}

// Wait atomically releases c.L, parks until Signal/Broadcast, and
// re-acquires c.L before returning.
func (c *Cond) Wait() {
	wait, wake := c.clk.newWaiter()
	w := &condWaiter{wake: wake}
	c.mu.Lock()
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()
	c.L.Unlock()
	wait()
	c.L.Lock()
}

// WaitTimeout is Wait with a deadline; it reports false if the deadline
// expired before a Signal/Broadcast reached this waiter.
func (c *Cond) WaitTimeout(d time.Duration) bool {
	wait, wake := c.clk.newWaiter()
	w := &condWaiter{wake: wake}
	c.mu.Lock()
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	signalled := true
	timer := c.clk.AfterFunc(d, func() {
		c.mu.Lock()
		if w.settled {
			c.mu.Unlock()
			return
		}
		w.settled = true
		signalled = false
		c.mu.Unlock()
		w.wake()
	})
	c.L.Unlock()
	wait()
	timer.Stop()
	c.L.Lock()
	return signalled
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	c.mu.Lock()
	var wk func()
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if !w.settled {
			w.settled = true
			wk = w.wake
			break
		}
	}
	c.mu.Unlock()
	if wk != nil {
		wk()
	}
}

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	var wakes []func()
	for _, w := range ws {
		if !w.settled {
			w.settled = true
			wakes = append(wakes, w.wake)
		}
	}
	c.mu.Unlock()
	for _, wk := range wakes {
		wk()
	}
}

// Gate is a one-shot latch: goroutines Wait until someone calls Open.
// Opening an already-open gate is a no-op. It replaces the common
// close-a-channel idiom in clock-aware code.
type Gate struct {
	mu      sync.Mutex
	open    bool
	waiters []func()
}

// NewGate returns a closed gate. The zero value is also usable.
func NewGate() *Gate { return &Gate{} }

// Open releases all current and future waiters.
func (g *Gate) Open() {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	g.open = true
	ws := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, wk := range ws {
		wk()
	}
}

// IsOpen reports whether the gate has been opened.
func (g *Gate) IsOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

// Wait parks until the gate opens (returns immediately if already open).
func (g *Gate) Wait(clk Clock) {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return
	}
	wait, wake := clk.newWaiter()
	g.waiters = append(g.waiters, wake)
	g.mu.Unlock()
	wait()
}

// WaitTimeout parks until the gate opens or d elapses; it reports whether
// the gate opened.
func (g *Gate) WaitTimeout(clk Clock, d time.Duration) bool {
	g.mu.Lock()
	if g.open {
		g.mu.Unlock()
		return true
	}
	wait, wake := clk.newWaiter()
	settled := false
	opened := true
	g.waiters = append(g.waiters, func() {
		g.mu.Lock()
		if settled {
			g.mu.Unlock()
			return
		}
		settled = true
		g.mu.Unlock()
		wake()
	})
	g.mu.Unlock()

	timer := clk.AfterFunc(d, func() {
		g.mu.Lock()
		if settled {
			g.mu.Unlock()
			return
		}
		settled = true
		opened = false
		g.mu.Unlock()
		wake()
	})
	wait()
	timer.Stop()
	return opened
}

// Group waits for a collection of clock goroutines to finish, mirroring
// sync.WaitGroup.
type Group struct {
	mu    sync.Mutex
	n     int
	gates []func()
}

// Add increments the pending-goroutine count by delta.
func (g *Group) Add(delta int) {
	g.mu.Lock()
	g.n += delta
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	var wakes []func()
	if g.n == 0 {
		wakes = g.gates
		g.gates = nil
	}
	g.mu.Unlock()
	for _, wk := range wakes {
		wk()
	}
}

// Done decrements the pending count by one.
func (g *Group) Done() { g.Add(-1) }

// Go runs fn on clk as a tracked goroutine counted by the group.
func (g *Group) Go(clk Clock, fn func()) {
	g.Add(1)
	clk.Go(func() {
		defer g.Done()
		fn()
	})
}

// Wait parks until the counter reaches zero.
func (g *Group) Wait(clk Clock) {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return
	}
	wait, wake := clk.newWaiter()
	g.gates = append(g.gates, wake)
	g.mu.Unlock()
	wait()
}
