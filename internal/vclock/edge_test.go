package vclock

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimerStopRacesFiring hammers the Stop-vs-fire race: a tracked
// goroutine stops a timer while virtual time is advancing through its
// deadline. Run under -race this exercises the freelist generation
// check; semantically, a Stop that reports true must have prevented the
// callback from running.
func TestTimerStopRacesFiring(t *testing.T) {
	v := New()
	v.Run(func() {
		for i := 0; i < 300; i++ {
			var fired atomic.Int32
			var stopped atomic.Bool
			tm := v.AfterFunc(time.Microsecond, func() { fired.Add(1) })
			late := i%2 == 1
			var g Group
			g.Go(v, func() {
				if late {
					v.Sleep(2 * time.Microsecond) // let the timer win
				}
				if tm.Stop() {
					stopped.Store(true)
				}
			})
			v.Sleep(2 * time.Microsecond)
			g.Wait(v)
			if stopped.Load() && fired.Load() != 0 {
				t.Fatalf("iter %d: Stop returned true but callback fired", i)
			}
			if !stopped.Load() && fired.Load() != 1 {
				t.Fatalf("iter %d: Stop returned false but callback did not fire", i)
			}
		}
	})
}

// TestPendingStopAfterReuse guards the ABA case: once an event has fired
// and its struct has been recycled into a new timer, Stop through the
// stale handle must report false and must not cancel the new timer.
func TestPendingStopAfterReuse(t *testing.T) {
	v := New()
	v.Run(func() {
		stale := v.Post(time.Microsecond, func() {})
		v.Sleep(2 * time.Microsecond) // fires; event returns to the freelist

		fired := false
		v.Post(time.Microsecond, func() { fired = true }) // recycles the struct
		if stale.Stop() {
			t.Error("stale Pending.Stop returned true after event reuse")
		}
		v.Sleep(2 * time.Microsecond)
		if !fired {
			t.Error("stale Stop cancelled a recycled event")
		}
	})
}

// TestDeadlockPanicMessage pins the exact diagnostic: the panic names
// the virtual instant and says why the simulation cannot continue.
func TestDeadlockPanicMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		want := "vclock: deadlock at " + Epoch.Add(time.Second).Format(time.RFC3339Nano) +
			": all goroutines parked and no timers pending"
		if msg != want {
			t.Errorf("panic = %q, want %q", msg, want)
		}
	}()
	v := New()
	v.Run(func() {
		v.Sleep(time.Second)
		var g Gate
		g.Wait(v) // nobody will ever open it
	})
}

// TestSameInstantOrderStableAfterReuse checks that recycling event
// structs through the freelist does not perturb same-instant ordering:
// callbacks scheduled at one instant fire in scheduling order, batch
// after batch, even though later batches reuse earlier batches' events.
func TestSameInstantOrderStableAfterReuse(t *testing.T) {
	v := New()
	v.Run(func() {
		for batch := 0; batch < 5; batch++ {
			var order []int
			for i := 0; i < 8; i++ {
				i := i
				switch i % 3 {
				case 0:
					v.Post(time.Millisecond, func() { order = append(order, i) })
				case 1:
					v.Post2(time.Millisecond, func(a, b any) {
						order = append(order, a.(int))
					}, i, nil)
				default:
					v.AfterFunc(time.Millisecond, func() { order = append(order, i) })
				}
			}
			v.Sleep(2 * time.Millisecond)
			var got strings.Builder
			for _, n := range order {
				fmt.Fprintf(&got, "%d,", n)
			}
			if got.String() != "0,1,2,3,4,5,6,7," {
				t.Fatalf("batch %d: fire order %s, want 0,1,2,3,4,5,6,7,", batch, got.String())
			}
		}
	})
}
