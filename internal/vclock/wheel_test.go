package vclock

import (
	"fmt"
	"testing"
	"time"
)

// runBoth runs fn under a fresh clock per scheduler kind and returns
// the two recorded traces for comparison.
func runBoth(fn func(v *Virtual, log *[]string)) (wheel, heap []string) {
	for _, kind := range []SchedulerKind{SchedulerWheel, SchedulerHeap} {
		v := New()
		v.SetScheduler(kind)
		var log []string
		v.Run(func() { fn(v, &log) })
		if kind == SchedulerWheel {
			wheel = log
		} else {
			heap = log
		}
	}
	return wheel, heap
}

func diffTraces(t *testing.T, wheel, heap []string) {
	t.Helper()
	if len(wheel) != len(heap) {
		t.Fatalf("trace lengths differ: wheel %d, heap %d", len(wheel), len(heap))
	}
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("traces diverge at %d: wheel %q, heap %q", i, wheel[i], heap[i])
		}
	}
}

// TestWheelHeapDifferential replays a seeded random schedule of
// Post/Post2/Stop/AfterFunc/Sleep against both schedulers and asserts
// the fire order (and every Stop outcome) is identical. The matching
// whole-simulator check is `make sched-diff`, which diffs the full
// `edgesim -exp all -n 5 -seed 1` output between -sched wheel and
// -sched heap.
func TestWheelHeapDifferential(t *testing.T) {
	post2 := func(a, b any) {
		log := a.(*[]string)
		*log = append(*log, fmt.Sprintf("post2 %d", b.(int)))
	}
	for seed := int64(1); seed <= 5; seed++ {
		wheel, heap := runBoth(func(v *Virtual, log *[]string) {
			rng := NewRand(seed)
			var pending []Pending
			var timers []*Timer
			// Durations spanning every wheel level plus the overflow
			// list, with a bias toward small deltas so plenty of events
			// collide on the same instants.
			durs := []time.Duration{
				0, 0, 1, 3, 250 * time.Nanosecond, 10 * time.Microsecond,
				3 * time.Millisecond, 800 * time.Millisecond, 40 * time.Second,
				2 * time.Hour, 100 * time.Hour,
			}
			for i := 0; i < 3000; i++ {
				i := i
				d := durs[rng.Intn(len(durs))]
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					pending = append(pending, v.Post(d, func() {
						*log = append(*log, fmt.Sprintf("post %d @%s", i, v.Now().Format(time.RFC3339Nano)))
					}))
				case 4, 5:
					pending = append(pending, v.Post2(d, post2, log, i))
				case 6:
					timers = append(timers, v.AfterFunc(d, func() {
						*log = append(*log, fmt.Sprintf("after %d @%s", i, v.Now().Format(time.RFC3339Nano)))
					}))
				case 7:
					if len(pending) > 0 {
						j := rng.Intn(len(pending))
						*log = append(*log, fmt.Sprintf("stop %d -> %v", j, pending[j].Stop()))
					}
				case 8:
					if len(timers) > 0 {
						j := rng.Intn(len(timers))
						*log = append(*log, fmt.Sprintf("tstop %d -> %v", j, timers[j].Stop()))
					}
				case 9:
					v.Sleep(time.Duration(rng.Intn(int(5 * time.Second))))
				}
			}
			v.Sleep(200 * time.Hour) // drain everything, overflow included
		})
		diffTraces(t, wheel, heap)
	}
}

// TestWheelCancelDuringCascade stops events that share a higher-level
// slot with the timer that fires first at the same instant: the Stop
// runs after the slot has cascaded into level 0, so it exercises
// unlinking freshly re-filed events mid-advance.
func TestWheelCancelDuringCascade(t *testing.T) {
	v := New()
	var fired []string
	v.Run(func() {
		var b, c, d Pending
		// All four land 10ms out: level 3 of the wheel, same slot.
		v.Post(10*time.Millisecond, func() {
			fired = append(fired, "a")
			b.Stop() // same instant, later seq: already in level 0
			d.Stop() // 1ns later: level-0 neighbour slot
		})
		b = v.Post(10*time.Millisecond, func() { fired = append(fired, "b") })
		c = v.Post(10*time.Millisecond, func() { fired = append(fired, "c") })
		d = v.Post(10*time.Millisecond+time.Nanosecond, func() { fired = append(fired, "d") })
		v.Sleep(20 * time.Millisecond)
		_ = c
	})
	if got := fmt.Sprint(fired); got != "[a c]" {
		t.Fatalf("fired %v, want [a c]", fired)
	}
}

// TestWheelOverflowTimers checks timers beyond the 2^48 ns (~78h) wheel
// horizon: they park on the overflow list, re-file when due, interleave
// correctly with near timers, and can be stopped while parked.
func TestWheelOverflowTimers(t *testing.T) {
	v := New()
	var fired []string
	v.Run(func() {
		v.Post(200*time.Hour, func() { fired = append(fired, "far2") })
		v.Post(100*time.Hour, func() { fired = append(fired, "far1") })
		drop := v.Post(150*time.Hour, func() { fired = append(fired, "dropped") })
		v.Post(time.Second, func() { fired = append(fired, "near") })
		if !drop.Stop() {
			t.Error("Stop on parked overflow timer reported false")
		}
		start := v.Now()
		v.Sleep(300 * time.Hour)
		if got := v.Since(start); got != 300*time.Hour {
			t.Errorf("slept %v, want 300h", got)
		}
	})
	if got := fmt.Sprint(fired); got != "[near far1 far2]" {
		t.Fatalf("fired %v, want [near far1 far2]", fired)
	}
}

// TestWheelSameInstantAcrossLevels schedules events for one shared
// instant from different current times, so they enter the wheel at
// different levels (and one from the overflow list) and only meet in a
// level-0 slot after cascading. They must still fire in seq order.
func TestWheelSameInstantAcrossLevels(t *testing.T) {
	v := New()
	var fired []int
	v.Run(func() {
		target := 90 * time.Hour // beyond the horizon at t=0
		start := v.Now()
		until := func() time.Duration { return target - v.Since(start) }
		v.Post(until(), func() { fired = append(fired, 0) }) // overflow
		v.Sleep(40 * time.Hour)
		v.Post(until(), func() { fired = append(fired, 1) }) // high level
		v.Sleep(50*time.Hour - 200*time.Millisecond)
		v.Post(until(), func() { fired = append(fired, 2) }) // mid level
		v.Sleep(200*time.Millisecond - 30*time.Microsecond)
		v.Post(until(), func() { fired = append(fired, 3) }) // low level
		v.Sleep(30 * time.Microsecond)
		v.Post(0, func() { fired = append(fired, 4) }) // level 0 direct
		v.Sleep(time.Second)
	})
	if got := fmt.Sprint(fired); got != "[0 1 2 3 4]" {
		t.Fatalf("fired %v, want [0 1 2 3 4]", fired)
	}
}

// TestWheelRevolutionAmbiguity pins the carry case: an event whose
// delta keeps it on level l but whose absolute slot index wraps to the
// slot the wheel's current time occupies. The wheel must read that slot
// as one revolution ahead — not cascade it early and loop — and must
// not let it shadow nearer slots at the same level.
func TestWheelRevolutionAmbiguity(t *testing.T) {
	v := New()
	var fired []string
	v.Run(func() {
		// Put now at a position with nonzero low bits on several levels.
		v.Sleep(time.Duration(0x1F3)) // cur = 0x1F3
		// delta 0xFFFF stays on level 1; 0x1F3+0xFFFF = 0x101F2, whose
		// level-1 slot index 0x01 equals cur's own (0x1F3>>8 = 0x01).
		v.Post(time.Duration(0xFFFF), func() { fired = append(fired, "wrap") })
		// A nearer level-1 event in a later slot must still fire first.
		v.Post(time.Duration(0x300), func() { fired = append(fired, "near") })
		v.Sleep(time.Duration(0x20000))
	})
	if got := fmt.Sprint(fired); got != "[near wrap]" {
		t.Fatalf("fired %v, want [near wrap]", fired)
	}
}

// TestWheelPendingReuseGuard is the generation-guard ABA check run
// explicitly under the wheel: a stale Pending whose event record was
// recycled for a new timer must not cancel the new timer.
func TestWheelPendingReuseGuard(t *testing.T) {
	v := New()
	v.SetScheduler(SchedulerWheel)
	v.Run(func() {
		fired := false
		stale := v.Post(time.Millisecond, func() {})
		v.Sleep(2 * time.Millisecond) // fires; event returns to freelist
		fresh := v.Post(time.Millisecond, func() { fired = true })
		if stale.Stop() {
			t.Error("stale handle stopped a recycled event")
		}
		v.Sleep(2 * time.Millisecond)
		if !fired {
			t.Error("recycled event did not fire")
		}
		_ = fresh
	})
}

// TestSetSchedulerMigratesPending switches scheduler kinds mid-run with
// timers queued at several levels and checks that order, cancellation
// handles, and far-future timers all survive the migration.
func TestSetSchedulerMigratesPending(t *testing.T) {
	v := New()
	var fired []string
	v.Run(func() {
		v.Post(3*time.Second, func() { fired = append(fired, "c") })
		v.Post(time.Millisecond, func() { fired = append(fired, "a") })
		drop := v.Post(2*time.Second, func() { fired = append(fired, "x") })
		v.Post(100*time.Hour, func() { fired = append(fired, "far") })
		v.Post(time.Second, func() { fired = append(fired, "b") })

		v.SetScheduler(SchedulerHeap)
		if v.Scheduler() != SchedulerHeap {
			t.Fatal("scheduler kind not switched")
		}
		v.Sleep(time.Millisecond) // fire "a" under the heap
		v.SetScheduler(SchedulerWheel)
		if !drop.Stop() {
			t.Error("handle did not survive migration")
		}
		v.Sleep(200 * time.Hour)
	})
	if got := fmt.Sprint(fired); got != "[a b c far]" {
		t.Fatalf("fired %v, want [a b c far]", fired)
	}
}
