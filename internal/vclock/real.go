package vclock

import "time"

// Real is a wall-clock implementation of Clock, optionally time-scaled.
//
// With Scale == 1 it behaves exactly like the time package. With
// Scale == 100, one second of clock time elapses in 10 ms of wall time —
// useful for watching an emulated scenario play out interactively
// without waiting the full five minutes of a trace.
type Real struct {
	// Scale is the speed-up factor; clock durations are divided by Scale
	// when mapped to wall time. Zero means 1 (no scaling).
	Scale float64

	base     time.Time // wall instant the clock was created
	baseSim  time.Time // clock instant corresponding to base
	haveBase bool
}

// NewReal returns an unscaled wall clock.
func NewReal() *Real { return NewScaled(1) }

// NewScaled returns a wall clock sped up by the given factor.
func NewScaled(scale float64) *Real {
	if scale <= 0 {
		scale = 1
	}
	return &Real{Scale: scale, base: time.Now(), baseSim: Epoch, haveBase: true}
}

func (r *Real) scale() float64 {
	if r.Scale <= 0 {
		return 1
	}
	return r.Scale
}

// Now returns the current clock time (scaled wall time since creation).
func (r *Real) Now() time.Time {
	if !r.haveBase {
		return time.Now()
	}
	elapsed := time.Since(r.base)
	return r.baseSim.Add(time.Duration(float64(elapsed) * r.scale()))
}

// Since returns the clock time elapsed since t.
func (r *Real) Since(t time.Time) time.Duration { return r.Now().Sub(t) }

// Sleep pauses for d of clock time (d/Scale of wall time).
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / r.scale()))
}

// AfterFunc schedules fn after d of clock time.
func (r *Real) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(time.Duration(float64(d)/r.scale()), fn)
	return &Timer{stop: t.Stop}
}

// Go starts fn in a plain goroutine.
func (r *Real) Go(fn func()) { go fn() }

// Run simply calls fn; it exists so call sites can treat Real and Virtual
// clocks uniformly.
func (r *Real) Run(fn func()) { fn() }

func (r *Real) newWaiter() (wait func(), wake func()) {
	ch := make(chan struct{}, 1)
	return func() { <-ch }, func() { ch <- struct{}{} }
}
