package vclock

import (
	"sync"
	"time"
)

// Real is a wall-clock implementation of Clock, optionally time-scaled.
//
// With Scale == 1 it behaves exactly like the time package. With
// Scale == 100, one second of clock time elapses in 10 ms of wall time —
// useful for watching an emulated scenario play out interactively
// without waiting the full five minutes of a trace.
type Real struct {
	// Scale is the speed-up factor; clock durations are divided by Scale
	// when mapped to wall time. Zero means 1 (no scaling).
	Scale float64

	base     time.Time // wall instant the clock was created
	baseSim  time.Time // clock instant corresponding to base
	haveBase bool

	wpool sync.Pool // *waiter freelist
}

// NewReal returns an unscaled wall clock.
func NewReal() *Real { return NewScaled(1) }

// NewScaled returns a wall clock sped up by the given factor.
func NewScaled(scale float64) *Real {
	if scale <= 0 {
		scale = 1
	}
	return &Real{Scale: scale, base: time.Now(), baseSim: Epoch, haveBase: true}
}

func (r *Real) scale() float64 {
	if r.Scale <= 0 {
		return 1
	}
	return r.Scale
}

// Now returns the current clock time (scaled wall time since creation).
func (r *Real) Now() time.Time {
	if !r.haveBase {
		return time.Now()
	}
	elapsed := time.Since(r.base)
	return r.baseSim.Add(time.Duration(float64(elapsed) * r.scale()))
}

// Since returns the clock time elapsed since t.
func (r *Real) Since(t time.Time) time.Duration { return r.Now().Sub(t) }

// Sleep pauses for d of clock time (d/Scale of wall time).
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / r.scale()))
}

// AfterFunc schedules fn after d of clock time.
func (r *Real) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(time.Duration(float64(d)/r.scale()), fn)
	return &Timer{p: Pending{rt: t}}
}

// Post schedules fn after d of clock time. Under a wall clock it runs on
// the timer goroutine like AfterFunc; the no-blocking contract only
// constrains virtual-clock call sites.
func (r *Real) Post(d time.Duration, fn func()) Pending {
	if d < 0 {
		d = 0
	}
	return Pending{rt: time.AfterFunc(time.Duration(float64(d)/r.scale()), fn)}
}

// Post2 is Post for a pre-bound callback.
func (r *Real) Post2(d time.Duration, fn func(a, b any), a, b any) Pending {
	return r.Post(d, func() { fn(a, b) })
}

// Go starts fn in a plain goroutine.
func (r *Real) Go(fn func()) { go fn() }

// Run simply calls fn; it exists so call sites can treat Real and Virtual
// clocks uniformly.
func (r *Real) Run(fn func()) { fn() }

func (r *Real) newWaiter() *waiter {
	if w, ok := r.wpool.Get().(*waiter); ok {
		return w
	}
	return &waiter{pool: &r.wpool, ch: make(chan struct{}, 1)}
}
