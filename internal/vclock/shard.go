package vclock

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// ShardGroup runs one simulation across several Virtual clocks — the
// conservative (YAWNS-style) parallel discrete-event engine. Each shard
// owns a clock and drains its scheduler independently up to a horizon;
// the coordinator waits until every shard has blocked, computes the next
// safe window
//
//	B = M + L
//
// where M is the globally earliest pending instant (including records in
// flight) and L the lookahead (the minimum cross-shard delivery delay),
// merges the window's cross-shard records into their destination
// schedulers in canonical (at, originShard, originSeq) order, and
// releases the shards with horizon B. A record sent at time t carries a
// delay ≥ L, so it lands at t+L ≥ M+L = B — never inside a window
// already being executed. That is the whole safety argument: no shard
// ever fires an event that a not-yet-delivered record could precede, so
// the sharded schedule is a deterministic replay.
//
// With no cross-shard edges the lookahead is infinite (the default):
// horizons stay unbounded, shards run fully concurrently with no
// barriers, and Send2 is forbidden. That degenerate mode is what the
// service-sharded load engine uses; the windowed mode serves
// partitioned netem topologies.
//
// The barrier hot path — Send2, the record merge, block/resume — is
// allocation-free in steady state: records accumulate in reusable
// per-shard outboxes, the merge sorts through a persistent sorter, and
// destination events come from each clock's freelist.
type ShardGroup struct {
	shards    []*Virtual
	lookahead int64 // ns; < 0 means infinite (no cross-shard edges)

	msgCh    chan shardMsg
	resumeCh []chan int64

	// Per-origin outboxes: a shard's goroutines append records during its
	// window; the coordinator swaps them out at the barrier. One mutex per
	// origin keeps senders on different shards uncontended.
	outMu  []sync.Mutex
	out    [][]xrec
	outSeq []uint64

	sorter xrecSorter // persistent merge scratch (reused every window)
	ran    bool
}

// xrec is one cross-shard delivery record. origin/seq are the canonical
// tiebreak for records landing at the same instant: every record is
// uniquely identified by (origin, seq), so the merge order is total.
type xrec struct {
	atNS   int64
	origin int32
	to     int32
	seq    uint64
	fn2    func(a, b any)
	a, b   any
}

// xrecSorter sorts records in canonical (atNS, origin, seq) order. A
// persistent struct with pointer-receiver methods so sort.Sort boxes no
// slice header per window.
type xrecSorter struct{ recs []xrec }

func (s *xrecSorter) Len() int      { return len(s.recs) }
func (s *xrecSorter) Swap(i, j int) { s.recs[i], s.recs[j] = s.recs[j], s.recs[i] }
func (s *xrecSorter) Less(i, j int) bool {
	a, b := &s.recs[i], &s.recs[j]
	if a.atNS != b.atNS {
		return a.atNS < b.atNS
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.seq < b.seq
}

// shardMsg is one shard→coordinator state transition.
type shardMsg struct {
	shard  int32
	done   bool  // the shard's main returned; its clock is stopped
	empty  bool  // blocked with no pending events at all
	nextNS int64 // earliest pending instant when blocked non-empty
}

// shard coordinator states.
const (
	stRunning = iota
	stBlocked
	stDone
)

// NewShardGroup returns a group of n fresh Virtual clocks (starting at
// Epoch, using the default scheduler kind) with infinite lookahead.
// Topologies with cross-shard edges must SetLookahead before Run.
func NewShardGroup(n int) *ShardGroup {
	if n < 1 {
		panic("vclock: ShardGroup needs at least one shard")
	}
	g := &ShardGroup{
		shards:    make([]*Virtual, n),
		lookahead: -1,
		msgCh:     make(chan shardMsg, n),
		resumeCh:  make([]chan int64, n),
		outMu:     make([]sync.Mutex, n),
		out:       make([][]xrec, n),
		outSeq:    make([]uint64, n),
	}
	for i := range g.shards {
		g.shards[i] = New()
		g.resumeCh[i] = make(chan int64, 1)
	}
	return g
}

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's clock.
func (g *ShardGroup) Shard(i int) *Virtual { return g.shards[i] }

// Lookahead returns the configured lookahead, or a negative duration
// when infinite.
func (g *ShardGroup) Lookahead() time.Duration { return time.Duration(g.lookahead) }

// SetLookahead declares the minimum cross-shard delivery delay — the
// smallest latency of any link whose endpoints live on different shards.
// It must be positive (zero-latency cross-shard edges admit no safe
// window) and set before Run.
func (g *ShardGroup) SetLookahead(d time.Duration) {
	if d <= 0 {
		panic("vclock: shard lookahead must be positive")
	}
	if g.ran {
		panic("vclock: SetLookahead after Run")
	}
	g.lookahead = int64(d)
}

// Send2 queues a cross-shard delivery: fn2(a, b) fires on shard to's
// clock after d of virtual time, where d must be at least the lookahead.
// Call it only from goroutines of shard from, during from's window. The
// record is merged into the destination at the next barrier; with a
// top-level fn2 and pointer operands the steady-state call allocates
// nothing.
func (g *ShardGroup) Send2(from, to int, d time.Duration, fn2 func(a, b any), a, b any) {
	if g.lookahead < 0 {
		panic("vclock: cross-shard Send2 with infinite lookahead (no cross-shard edges declared)")
	}
	if int64(d) < g.lookahead {
		panic(fmt.Sprintf("vclock: cross-shard delay %v below lookahead %v", d, time.Duration(g.lookahead)))
	}
	atNS := g.shards[from].offNS.Load() + int64(d)
	g.outMu[from].Lock()
	g.outSeq[from]++
	g.out[from] = append(g.out[from], xrec{atNS: atNS, origin: int32(from), to: int32(to), seq: g.outSeq[from], fn2: fn2, a: a, b: b})
	g.outMu[from].Unlock()
}

// Run starts main(i) on every shard's clock and coordinates windows
// until every main has returned. Like Virtual.Run, a group runs once;
// goroutines of a shard that are still parked when its main returns stay
// parked. Run panics on global deadlock: every live shard parked with no
// pending events and no records in flight.
func (g *ShardGroup) Run(main func(shard int)) {
	if g.ran {
		panic("vclock: ShardGroup ran already")
	}
	g.ran = true
	n := len(g.shards)
	states := make([]int8, n)  // all stRunning
	nexts := make([]int64, n)  // earliest pending instant per blocked shard
	empties := make([]bool, n) // blocked-with-nothing flags

	for i := range g.shards {
		i := i
		sh := g.shards[i]
		if g.lookahead >= 0 {
			// Windowed mode bootstraps with a zero horizon: every shard
			// blocks on its very first event, and the first barrier
			// computes the first safe window. No goroutines exist yet, so
			// the bare write is unobserved.
			sh.horizonNS = 0
		}
		sh.setOnBlock(func(nextNS int64, empty bool) {
			g.msgCh <- shardMsg{shard: int32(i), nextNS: nextNS, empty: empty}
		})
		// Driver: resumes the shard after each barrier. The blocked shard
		// is quiescent, so advancing from a dedicated goroutine is safe
		// and keeps the coordinator loop itself off every clock.
		go func() {
			for h := range g.resumeCh[i] {
				sh.resume(h)
			}
		}()
		go func() {
			sh.Run(func() { main(i) })
			g.msgCh <- shardMsg{shard: int32(i), done: true}
		}()
	}
	defer func() {
		for i := range g.resumeCh {
			close(g.resumeCh[i])
		}
	}()

	running, done := n, 0
	for done < n {
		m := <-g.msgCh
		if m.done {
			states[m.shard] = stDone
			done++
		} else {
			states[m.shard] = stBlocked
			nexts[m.shard] = m.nextNS
			empties[m.shard] = m.empty
		}
		running--
		if running > 0 || done == n {
			continue
		}
		running += g.barrier(states, nexts, empties)
	}
}

// barrier runs one window boundary: flush outboxes, compute the next
// safe horizon, merge records canonically, release every blocked shard.
// It returns the number of shards released. The caller has established
// that no shard is running, so all clocks are quiescent.
func (g *ShardGroup) barrier(states []int8, nexts []int64, empties []bool) int {
	recs := g.sorter.recs[:0]
	for i := range g.out {
		g.outMu[i].Lock()
		recs = append(recs, g.out[i]...)
		for j := range g.out[i] {
			g.out[i][j] = xrec{} // drop payload references
		}
		g.out[i] = g.out[i][:0]
		g.outMu[i].Unlock()
	}
	g.sorter.recs = recs

	m := int64(math.MaxInt64)
	blocked := 0
	for i, st := range states {
		if st != stBlocked {
			continue
		}
		blocked++
		if !empties[i] && nexts[i] < m {
			m = nexts[i]
		}
	}
	for i := range recs {
		if recs[i].atNS < m {
			m = recs[i].atNS
		}
	}
	if m == math.MaxInt64 {
		// Every live shard is parked with nothing pending anywhere: the
		// sharded analogue of the single-clock deadlock panic.
		panic(fmt.Sprintf("vclock: sharded deadlock: %d shard(s) parked with no events and no cross-shard records in flight", blocked))
	}
	if g.lookahead < 0 {
		// Infinite lookahead means no cross-shard edges: a blocked shard
		// can never be fed again, and pending events on one shard cannot
		// unpark another. Reaching here with events pending is a shard
		// whose own goroutines deadlocked.
		panic("vclock: shard parked forever: independent shards cannot wake each other (infinite lookahead)")
	}
	b := m + g.lookahead

	if len(recs) > 0 {
		sort.Sort(&g.sorter)
		for i := range recs {
			r := &recs[i]
			g.shards[r.to].postAbs(r.atNS, r.fn2, r.a, r.b)
			r.fn2, r.a, r.b = nil, nil, nil
		}
	}

	released := 0
	for i, st := range states {
		if st != stBlocked {
			continue
		}
		states[i] = stRunning
		released++
		g.resumeCh[i] <- b
	}
	return released
}
