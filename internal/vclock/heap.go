package vclock

// eventHeap is a binary min-heap ordered by (at, seq). The sift routines
// are hand-rolled rather than going through container/heap: before the
// timing wheel this was the single hottest data structure in a
// simulation, and the interface-based API costs an indirect call per
// comparison and swap. It survives behind SchedulerHeap so differential
// tests can replay the same seed through two independent orderings.
type eventHeap []*event

// heapSched adapts eventHeap to the evScheduler interface.
type heapSched struct {
	h eventHeap
}

func (s *heapSched) push(ev *event)   { s.h.push(ev) }
func (s *heapSched) pop() *event      { return s.h.pop() }
func (s *heapSched) remove(ev *event) { s.h.remove(ev.index) }
func (s *heapSched) size() int        { return len(s.h) }

func (h eventHeap) less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

// push appends ev and restores the heap property.
func (h *eventHeap) push(ev *event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.up(ev.index)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *event {
	old := *h
	n := len(old) - 1
	old.swap(0, n)
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	return ev
}

// remove deletes the event at index i. The tail element that replaces
// it needs to sift in exactly one direction: up when it sorts before
// its new parent, down otherwise. Deciding with one comparison keeps
// the invariant visible at the call site — the old shape sifted down
// and then retried upward whenever nothing had moved, paying a wasted
// child scan on every up-bound removal.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.swap(i, n)
	}
	old[n].index = -1
	old[n] = nil
	*h = old[:n]
	if i < n {
		if i > 0 && (*h).less(i, (i-1)/2) {
			(*h).up(i)
		} else {
			(*h).down(i)
		}
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// down reports whether the element moved.
func (h eventHeap) down(i0 int) bool {
	i, n := i0, len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		j := left
		if right := left + 1; right < n && h.less(right, left) {
			j = right
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}
