package vclock

import (
	"testing"
	"time"
)

// BenchmarkTimerThroughput measures raw event-scheduling throughput —
// the emulator's hot loop.
func BenchmarkTimerThroughput(b *testing.B) {
	v := New()
	v.Run(func() {
		for i := 0; i < b.N; i++ {
			v.Sleep(time.Millisecond)
		}
	})
}

// BenchmarkMailboxRoundTrip measures one send/recv pair between two
// tracked goroutines.
func BenchmarkMailboxRoundTrip(b *testing.B) {
	v := New()
	v.Run(func() {
		ping := NewMailbox[int](v)
		pong := NewMailbox[int](v)
		v.Go(func() {
			for {
				x, ok := ping.Recv()
				if !ok {
					return
				}
				pong.Send(x)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			pong.Recv()
		}
		b.StopTimer()
		ping.Close()
	})
}

// benchNop is a top-level callback so posting it allocates nothing.
func benchNop() {}

// millionTimerDurs spreads a pending-timer ballast across the upper
// wheel levels (and deep heap paths): the idle-flow, FlowMemory-expiry,
// and health-probe timers a million-flow run keeps armed for minutes to
// an hour.
var millionTimerDurs = [8]time.Duration{
	2 * time.Minute, 5 * time.Minute, 11 * time.Minute, 17 * time.Minute,
	27 * time.Minute, 40 * time.Minute, 52 * time.Minute, time.Hour,
}

// BenchmarkMillionTimers measures the scheduler at a 1M-pending-timer
// population — the shape of a million-flow run where every flow holds
// retransmit/idle/expiry timers. post-stop is the steady-state churn
// path: schedule a short retransmit-scale timer and cancel it (the ack
// arrived) under the full idle ballast; the short timer sorts before
// ~everything pending, which costs the heap near-full-depth sifts both
// ways and the wheel two O(1) list operations. Must be 0 allocs/op.
// drain fires timers while re-arming each one, so the wheel variant
// pays its cascading costs.
func BenchmarkMillionTimers(b *testing.B) {
	const pending = 1 << 20
	for _, kind := range []SchedulerKind{SchedulerWheel, SchedulerHeap} {
		b.Run(kind.String()+"/post-stop", func(b *testing.B) {
			v := New()
			v.SetScheduler(kind)
			v.Run(func() {
				ring := make([]Pending, pending)
				for i := range ring {
					ring[i] = v.Post(millionTimerDurs[i&7]+time.Duration(i), benchNop)
				}
				shortDurs := [4]time.Duration{300 * time.Microsecond, 2 * time.Millisecond, 20 * time.Millisecond, 500 * time.Millisecond}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := v.Post(shortDurs[i&3]+time.Duration(i&0xFFFF), benchNop)
					p.Stop()
				}
			})
		})
		b.Run(kind.String()+"/drain", func(b *testing.B) {
			v := New()
			v.SetScheduler(kind)
			v.Run(func() {
				// 1M mostly-idle timers sit as ballast across all levels
				// while a 64k active set fires and re-arms at short
				// intervals: each firing pops, cascades (wheel) or sifts
				// (heap), and re-posts, with the full population resident.
				ring := make([]Pending, pending)
				for i := range ring {
					ring[i] = v.Post(millionTimerDurs[i&7]+time.Duration(i), benchNop)
				}
				shortDurs := [4]time.Duration{time.Microsecond, 7 * time.Microsecond, 60 * time.Microsecond, 500 * time.Microsecond}
				rearm := func(a, _ any) {
					s := a.(*drainState)
					s.v.Post2(shortDurs[s.i&3], s.fn, a, nil)
					s.i++
				}
				st := &drainState{v: v, fn: rearm}
				for i := 0; i < 1<<16; i++ {
					v.Post2(shortDurs[i&3]+time.Duration(i), rearm, st, nil)
				}
				b.ReportAllocs()
				b.ResetTimer()
				target := st.i + b.N
				for st.i < target {
					v.Sleep(10 * time.Microsecond)
				}
			})
		})
	}
}

// drainState carries the re-arming loop of BenchmarkMillionTimers'
// drain variant without per-firing closures.
type drainState struct {
	v  *Virtual
	fn func(a, b any)
	i  int
}

// BenchmarkParallelSleepers measures the scheduler with many goroutines
// parked at once (the shape of a testbed run).
func BenchmarkParallelSleepers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := New()
		v.Run(func() {
			var g Group
			for j := 0; j < 100; j++ {
				j := j
				g.Go(v, func() {
					v.Sleep(time.Duration(j) * time.Millisecond)
				})
			}
			g.Wait(v)
		})
	}
}
