package vclock

import (
	"testing"
	"time"
)

// BenchmarkTimerThroughput measures raw event-scheduling throughput —
// the emulator's hot loop.
func BenchmarkTimerThroughput(b *testing.B) {
	v := New()
	v.Run(func() {
		for i := 0; i < b.N; i++ {
			v.Sleep(time.Millisecond)
		}
	})
}

// BenchmarkMailboxRoundTrip measures one send/recv pair between two
// tracked goroutines.
func BenchmarkMailboxRoundTrip(b *testing.B) {
	v := New()
	v.Run(func() {
		ping := NewMailbox[int](v)
		pong := NewMailbox[int](v)
		v.Go(func() {
			for {
				x, ok := ping.Recv()
				if !ok {
					return
				}
				pong.Send(x)
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ping.Send(i)
			pong.Recv()
		}
		b.StopTimer()
		ping.Close()
	})
}

// BenchmarkParallelSleepers measures the scheduler with many goroutines
// parked at once (the shape of a testbed run).
func BenchmarkParallelSleepers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := New()
		v.Run(func() {
			var g Group
			for j := 0; j < 100; j++ {
				j := j
				g.Go(v, func() {
					v.Sleep(time.Duration(j) * time.Millisecond)
				})
			}
			g.Wait(v)
		})
	}
}
