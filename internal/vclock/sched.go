package vclock

import (
	"fmt"
	"sync/atomic"
)

// SchedulerKind selects the pending-event structure behind a Virtual
// clock. Both schedulers fire events in identical (at, seq) order, so a
// simulation's output is byte-for-byte the same under either; the wheel
// is the default because post/stop are O(1) instead of O(log n), which
// is what million-timer populations need.
type SchedulerKind int32

const (
	// SchedulerWheel is the hierarchical timing wheel: wheelLevels
	// levels of wheelSlots slots over the virtual-time axis, intrusive
	// per-slot event lists, O(1) post and stop, cascading on rollover.
	SchedulerWheel SchedulerKind = iota
	// SchedulerHeap is the binary (at, seq) min-heap the engine used
	// before the wheel. It is retained for differential testing: run the
	// same seed under both kinds and the outputs must match exactly.
	SchedulerHeap
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedulerWheel:
		return "wheel"
	case SchedulerHeap:
		return "heap"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int32(k))
}

// ParseSchedulerKind parses "wheel" or "heap" (the -sched flag values).
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "wheel":
		return SchedulerWheel, nil
	case "heap":
		return SchedulerHeap, nil
	}
	return 0, fmt.Errorf("vclock: unknown scheduler %q (want wheel or heap)", s)
}

// defaultSched is the kind new Virtual clocks start with. Atomic so a
// test can flip it while parallel replications construct clocks.
var defaultSched atomic.Int32 // SchedulerKind; zero value = SchedulerWheel

// SetDefaultScheduler sets the scheduler kind used by clocks created
// after the call and returns the previous default. Existing clocks are
// unaffected; use (*Virtual).SetScheduler for those.
func SetDefaultScheduler(k SchedulerKind) SchedulerKind {
	return SchedulerKind(defaultSched.Swap(int32(k)))
}

// DefaultSchedulerKind reports the kind new clocks will use.
func DefaultSchedulerKind() SchedulerKind {
	return SchedulerKind(defaultSched.Load())
}

// evScheduler is the pending-event set of one Virtual clock. Callers
// hold the clock mutex. push and remove take the event itself (events
// carry their own location: heap index or wheel slot links); pop
// returns the (at, seq)-minimal event and must only be called when
// size() > 0.
type evScheduler interface {
	push(ev *event)
	pop() *event
	remove(ev *event)
	size() int
}

// newScheduler builds a scheduler of the given kind. curNS is the
// clock's current offset from its base instant; the wheel needs it so
// deltas of events pushed right after construction are measured from
// now rather than from the clock's birth.
func newScheduler(k SchedulerKind, curNS int64) evScheduler {
	if k == SchedulerHeap {
		return &heapSched{}
	}
	return newWheelSched(curNS)
}

// SetScheduler switches this clock to the given scheduler kind,
// migrating any pending events. Safe mid-run: events are drained from
// the old structure in fire order and re-filed, so ordering and every
// outstanding Pending/Timer handle survive the switch.
func (v *Virtual) SetScheduler(k SchedulerKind) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.kind == k {
		return
	}
	old := v.sched
	v.sched = newScheduler(k, v.offNS.Load())
	v.kind = k
	for old.size() > 0 {
		v.sched.push(old.pop())
	}
}

// Scheduler reports which scheduler kind this clock is running on.
func (v *Virtual) Scheduler() SchedulerKind {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.kind
}
