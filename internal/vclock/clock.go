// Package vclock provides the time substrate for the Transparent Edge
// emulation: a deterministic virtual-time (discrete-event) clock and a
// wall-clock implementation behind a common interface.
//
// All emulated components (network links, container runtimes, control
// loops) sleep and schedule timers exclusively through a Clock. Under the
// Virtual implementation, goroutines park when they wait and simulated
// time jumps straight to the next pending event, so a five-minute
// scenario completes in milliseconds of host time and produces identical
// timings on every run.
package vclock

import (
	"sync"
	"time"
)

// Clock is the time source used by every emulated component.
//
// Goroutines that interact with a Virtual clock must be started through
// Go (or wrapped by Run) so the scheduler can tell runnable goroutines
// from parked ones; blocking through any primitive in this package
// (Sleep, Mailbox, Cond, Gate) parks the goroutine correctly.
type Clock interface {
	// Now returns the current (virtual or wall) time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d of clock time.
	// Non-positive durations yield without advancing time.
	Sleep(d time.Duration)
	// AfterFunc schedules fn to run in its own tracked goroutine after d.
	AfterFunc(d time.Duration, fn func()) *Timer
	// Post schedules fn to run inline on the clock's event loop after d.
	// fn must not block: it may schedule further events, send to
	// mailboxes, and wake waiters, but must never park. Under a Virtual
	// clock this fires with no per-event goroutine; code that blocks
	// belongs in AfterFunc.
	Post(d time.Duration, fn func()) Pending
	// Post2 is Post for a pre-bound callback fn(a, b). With a top-level
	// fn and pointer operands the call allocates nothing.
	Post2(d time.Duration, fn func(a, b any), a, b any) Pending
	// Go starts fn in a goroutine tracked by this clock.
	Go(fn func())
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration

	// newWaiter returns a pooled park/unpark pair: wait() parks the
	// calling goroutine until wake() is called (exactly once each). It
	// backs the blocking primitives in this package and keeps the
	// virtual scheduler's runnable count accurate. Callers release() the
	// waiter once wait has returned and no reference to it remains.
	newWaiter() *waiter
}

// waiter is the parking primitive behind Sleep, Mailbox, Cond, and Gate:
// one reusable buffered channel plus the bookkeeping that tells a
// Virtual clock the goroutine is parked. Waiters are recycled through a
// per-clock pool so steady-state parking allocates nothing.
type waiter struct {
	v    *Virtual // nil when owned by a Real clock
	pool *sync.Pool
	ch   chan struct{}
}

// wait parks the calling goroutine until wake is called.
func (w *waiter) wait() {
	if w.v != nil {
		w.v.mu.Lock()
		w.v.running--
		w.v.maybeAdvanceLocked()
		w.v.mu.Unlock()
	}
	<-w.ch
}

// wake unparks the waiter. It must be called exactly once per wait.
func (w *waiter) wake() {
	if w.v != nil {
		w.v.mu.Lock()
		w.v.running++
		w.v.mu.Unlock()
	}
	w.ch <- struct{}{}
}

// release returns the waiter to its clock's pool. Only call it after
// wait has returned and every party that could wake it has settled.
func (w *waiter) release() {
	if w.pool != nil {
		w.pool.Put(w)
	}
}

// Pending is a handle to one scheduled Post/Post2 (or AfterFunc) call.
// The zero value is valid and refers to nothing; Stop on it reports
// false.
type Pending struct {
	v   *Virtual
	ev  *event
	gen uint64
	rt  *time.Timer // wall-clock backing, for Real
}

// Stop cancels the scheduled call. It reports whether the call was
// prevented from running; false means it already ran, was already
// stopped, or the handle is zero.
func (p Pending) Stop() bool {
	if p.rt != nil {
		return p.rt.Stop()
	}
	if p.v == nil {
		return false
	}
	return p.v.stopEvent(p.ev, p.gen)
}

// A Timer represents a single scheduled call created by AfterFunc.
type Timer struct {
	p Pending
}

// Stop cancels the timer. It reports whether the call was prevented from
// running; false means it already ran or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	return t.p.Stop()
}
