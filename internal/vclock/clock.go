// Package vclock provides the time substrate for the Transparent Edge
// emulation: a deterministic virtual-time (discrete-event) clock and a
// wall-clock implementation behind a common interface.
//
// All emulated components (network links, container runtimes, control
// loops) sleep and schedule timers exclusively through a Clock. Under the
// Virtual implementation, goroutines park when they wait and simulated
// time jumps straight to the next pending event, so a five-minute
// scenario completes in milliseconds of host time and produces identical
// timings on every run.
package vclock

import "time"

// Clock is the time source used by every emulated component.
//
// Goroutines that interact with a Virtual clock must be started through
// Go (or wrapped by Run) so the scheduler can tell runnable goroutines
// from parked ones; blocking through any primitive in this package
// (Sleep, Mailbox, Cond, Gate) parks the goroutine correctly.
type Clock interface {
	// Now returns the current (virtual or wall) time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d of clock time.
	// Non-positive durations yield without advancing time.
	Sleep(d time.Duration)
	// AfterFunc schedules fn to run in its own tracked goroutine after d.
	AfterFunc(d time.Duration, fn func()) *Timer
	// Go starts fn in a goroutine tracked by this clock.
	Go(fn func())
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration

	// newWaiter returns a park/unpark pair. wait parks the calling
	// goroutine until wake is called (exactly once each). It backs the
	// blocking primitives in this package and keeps the virtual
	// scheduler's runnable count accurate.
	newWaiter() (wait func(), wake func())
}

// A Timer represents a single scheduled call created by AfterFunc.
type Timer struct {
	stop func() bool
}

// Stop cancels the timer. It reports whether the call was prevented from
// running; false means it already ran or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	return t.stop()
}
