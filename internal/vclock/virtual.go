package vclock

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Virtual is a deterministic discrete-event clock.
//
// It tracks how many of its goroutines are runnable. Whenever that count
// drops to zero (everyone is sleeping or parked on a primitive from this
// package), the goroutine that parked last advances the clock to the
// earliest pending event and fires it. Events at the same instant fire in
// the order they were scheduled, so runs are reproducible.
//
// The engine is allocation-free on its steady-state paths: event structs
// are recycled through a freelist, waiter park/unpark channels through a
// sync.Pool, and Post/Post2 callbacks run inline on the advancing
// goroutine instead of spawning a goroutine per firing.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	sched   evScheduler // pending events: timing wheel or heap fallback
	kind    SchedulerKind
	running int
	stopped bool
	free    []*event // event freelist, guarded by mu

	// Sharded execution (see ShardGroup). horizonNS is the exclusive
	// upper bound on event firing: an event at or beyond it is parked in
	// held and onBlock reports the stall to the group coordinator instead
	// of firing it. math.MaxInt64 — the default — disables the bound, so
	// standalone clocks never pay more than one comparison per event.
	// blockSent dedupes the report: exactly one per block, reset by
	// resume. All four are guarded by mu.
	horizonNS int64
	held      *event
	onBlock   func(nextNS int64, empty bool)
	blockSent bool

	// base and offNS mirror now for lock-free reads: Now() is an atomic
	// load instead of a mutex acquisition. Time only moves while every
	// goroutine is parked, so the two views can never disagree from a
	// runnable goroutine's perspective.
	base  time.Time
	offNS atomic.Int64

	wpool sync.Pool // *waiter freelist
}

// eventKind selects how a popped event fires.
type eventKind uint8

const (
	// evWake unparks the event's waiter (Sleep wake-ups). Fires with the
	// clock mutex held; only touches scheduler state.
	evWake eventKind = iota
	// evGo spawns a fresh tracked goroutine running fn (AfterFunc).
	evGo
	// evPost runs fn inline on the advancing goroutine, without the
	// clock mutex. fn must not block.
	evPost
	// evPost2 is evPost for a pre-bound fn2(a, b) callback, so call
	// sites avoid a closure allocation.
	evPost2
)

type event struct {
	at time.Time
	// atNS is at expressed as nanoseconds since the clock's base
	// instant: the integer time axis the timing wheel indexes by. It is
	// exactly at.Sub(base), so (atNS, seq) order equals (at, seq) order.
	atNS int64
	seq  uint64
	// index is the heap position under SchedulerHeap; under the wheel
	// it is 0 while queued. Both schedulers set it to -1 when the event
	// pops or is removed, which is what stopEvent keys off.
	index int
	// next/prev/slot are the timing wheel's intrusive slot-list links
	// and location code (level<<wheelSlotBits | slot, or overflowSlot).
	next, prev *event
	slot       int32
	// gen guards Pending handles against freelist reuse: a handle whose
	// generation no longer matches refers to a recycled event.
	gen  uint64
	kind eventKind
	fn   func()
	fn2  func(a, b any)
	a, b any
	w    *waiter
}

// NewVirtual returns a virtual clock whose time starts at start.
func NewVirtual(start time.Time) *Virtual {
	kind := DefaultSchedulerKind()
	return &Virtual{now: start, base: start, kind: kind, sched: newScheduler(kind, 0), horizonNS: math.MaxInt64}
}

// Epoch is the default start instant for simulations: an arbitrary fixed
// time so that absolute timestamps in traces are reproducible.
var Epoch = time.Date(2023, 2, 7, 12, 0, 0, 0, time.UTC)

// New returns a virtual clock starting at Epoch.
func New() *Virtual { return NewVirtual(Epoch) }

// Now returns the current virtual time. It is a single atomic load:
// time only advances while every clock goroutine is parked, so the
// mirror can never be observed mid-update by runnable code.
func (v *Virtual) Now() time.Time {
	return v.base.Add(time.Duration(v.offNS.Load()))
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Run executes fn on the calling goroutine with that goroutine tracked by
// the clock, then stops the clock when fn returns. Goroutines still
// parked at that point stay parked; a finished simulation does not keep
// firing periodic timers. Run is how a test or main function enters a
// simulation.
func (v *Virtual) Run(fn func()) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		panic("vclock: Run on a stopped clock")
	}
	v.running++
	v.mu.Unlock()

	defer func() {
		v.mu.Lock()
		v.running--
		v.stopped = true
		v.mu.Unlock()
	}()
	fn()
}

// reserveStack grows the calling goroutine's stack past the depth of the
// inline event-advance chain in a single newstack step. Any tracked
// goroutine can end up running that chain (device handlers nested inside
// waiter.wait), which is a dozen frames deep; growing the stack while it
// is still nearly empty copies almost nothing, instead of repeatedly
// copying a full call stack every time a fresh goroutine parks last. The
// buffer is pointer-free and never escapes; the dynamic index and the
// write through the caller's slot keep the array from being optimized
// away.
//
//go:noinline
func reserveStack(out *byte, i int) {
	var buf [6 << 10]byte
	buf[i] = 1
	*out = buf[i+1]
}

// Go starts fn in a goroutine tracked by this clock.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.running++
	v.mu.Unlock()
	go func() {
		defer v.exit()
		var sink byte
		reserveStack(&sink, 0)
		fn()
	}()
}

func (v *Virtual) exit() {
	v.mu.Lock()
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Sleep pauses the calling goroutine for d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	w := v.newWaiter()
	v.mu.Lock()
	ev := v.getEventLocked(d, evWake)
	ev.w = w
	v.sched.push(ev)
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-w.ch
	w.release()
}

// AfterFunc schedules fn to run in its own tracked goroutine after d of
// virtual time. Use Post instead when fn does not block: it avoids the
// per-firing goroutine.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ev := v.getEventLocked(d, evGo)
	ev.fn = fn
	v.sched.push(ev)
	return &Timer{p: Pending{v: v, ev: ev, gen: ev.gen}}
}

// Post schedules fn to run inline on the advancing goroutine after d of
// virtual time, with no goroutine spawned per firing. fn must not block:
// it may schedule, send to mailboxes, and wake waiters, but anything
// that parks must go through AfterFunc or Go instead.
func (v *Virtual) Post(d time.Duration, fn func()) Pending {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ev := v.getEventLocked(d, evPost)
	ev.fn = fn
	v.sched.push(ev)
	return Pending{v: v, ev: ev, gen: ev.gen}
}

// Post2 is Post for a pre-bound callback: fn(a, b) fires inline after d.
// With a top-level fn and pointer operands the call site allocates
// nothing, which is what keeps the packet hot path allocation-free.
func (v *Virtual) Post2(d time.Duration, fn func(a, b any), a, b any) Pending {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ev := v.getEventLocked(d, evPost2)
	ev.fn2, ev.a, ev.b = fn, a, b
	v.sched.push(ev)
	return Pending{v: v, ev: ev, gen: ev.gen}
}

// getEventLocked takes an event from the freelist (or allocates one) and
// stamps it with the firing time and sequence number. Callers hold v.mu
// and must push it onto the scheduler.
func (v *Virtual) getEventLocked(d time.Duration, kind eventKind) *event {
	return v.getEventAbsLocked(v.offNS.Load()+int64(d), kind)
}

// getEventAbsLocked is getEventLocked for an absolute firing instant
// (nanoseconds since base) — the form cross-shard records arrive in.
func (v *Virtual) getEventAbsLocked(atNS int64, kind eventKind) *event {
	var ev *event
	if n := len(v.free); n > 0 {
		ev = v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
	} else {
		ev = &event{}
	}
	v.seq++
	ev.at = v.base.Add(time.Duration(atNS))
	ev.atNS = atNS
	ev.seq = v.seq
	ev.kind = kind
	return ev
}

// postAbs schedules a pre-bound callback at an absolute instant: the
// entry path for cross-shard records merged at a window boundary. The
// group coordinator calls it while the shard is quiescent, in canonical
// record order, so the seq stamps preserve that order for same-instant
// ties. Records addressed to a stopped shard are dropped, mirroring how
// a stopped clock abandons its own pending events. A record in the past
// is a lookahead violation: the conservative window invariant guarantees
// merged events land at or beyond the receiving shard's current time.
func (v *Virtual) postAbs(atNS int64, fn2 func(a, b any), a, b any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return
	}
	if atNS < v.offNS.Load() {
		panic(fmt.Sprintf("vclock: cross-shard event at %dns behind shard clock %dns (lookahead violation)", atNS, v.offNS.Load()))
	}
	ev := v.getEventAbsLocked(atNS, evPost2)
	ev.fn2, ev.a, ev.b = fn2, a, b
	v.sched.push(ev)
}

// setOnBlock installs the shard-group block reporter. Must be set before
// the clock runs.
func (v *Virtual) setOnBlock(fn func(nextNS int64, empty bool)) {
	v.mu.Lock()
	v.onBlock = fn
	v.mu.Unlock()
}

// resume raises the firing horizon and drives the clock forward. Called
// on a shard driver goroutine after the group coordinator has merged the
// window's cross-shard records into the scheduler.
func (v *Virtual) resume(horizonNS int64) {
	v.mu.Lock()
	v.horizonNS = horizonNS
	v.blockSent = false
	if !v.stopped {
		v.maybeAdvanceLocked()
	}
	v.mu.Unlock()
}

// reportBlockedLocked tells the group coordinator this shard cannot
// advance: its next event is at or beyond the horizon (or it has none at
// all). Exactly one report per block — the coordinator resumes the shard
// only after receiving it, so blockSent cannot be reset concurrently
// with the callback. The callback runs without the mutex because it
// sends on the coordinator channel.
func (v *Virtual) reportBlockedLocked(nextNS int64, empty bool) {
	if v.blockSent {
		return
	}
	v.blockSent = true
	cb := v.onBlock
	v.mu.Unlock()
	cb(nextNS, empty)
	v.mu.Lock()
}

// putEventLocked recycles a fired or cancelled event. Bumping the
// generation invalidates any outstanding Pending handle.
func (v *Virtual) putEventLocked(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.fn2 = nil
	ev.a, ev.b = nil, nil
	ev.w = nil
	v.free = append(v.free, ev)
}

// stopEvent cancels a scheduled event if its generation still matches.
func (v *Virtual) stopEvent(ev *event, gen uint64) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if ev.gen != gen || ev.index < 0 {
		return false
	}
	v.sched.remove(ev)
	v.putEventLocked(ev)
	return true
}

// maybeAdvanceLocked advances virtual time while no goroutine is
// runnable. Callers hold v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	for v.running == 0 && !v.stopped {
		ev := v.held
		if ev == nil {
			if v.sched.size() == 0 {
				if v.onBlock != nil {
					// Sharded: an idle shard is not a deadlock — another
					// shard's window may still produce records for it. The
					// group coordinator detects the global deadlock case.
					v.reportBlockedLocked(0, true)
					return
				}
				// Release the mutex before panicking so deferred cleanup in
				// callers (e.g. Run) can still acquire it while unwinding.
				now := v.now
				v.mu.Unlock()
				panic(fmt.Sprintf("vclock: deadlock at %s: all goroutines parked and no timers pending", now.Format(time.RFC3339Nano)))
			}
			ev = v.sched.pop()
		} else if v.sched.size() > 0 {
			// A cross-shard record merged at the barrier may precede the
			// event held from the previous window; re-establish the
			// minimum. At most one compare per resume: held clears below.
			if p := v.sched.pop(); p.atNS < ev.atNS || (p.atNS == ev.atNS && p.seq < ev.seq) {
				v.sched.push(ev)
				ev = p
			} else {
				v.sched.push(p)
			}
		}
		if ev.atNS >= v.horizonNS {
			// Conservative bound: firing this event could race with a
			// cross-shard delivery landing before it. Hold it and report.
			v.held = ev
			v.reportBlockedLocked(ev.atNS, false)
			return
		}
		v.held = nil
		if ev.at.After(v.now) {
			v.now = ev.at
			v.offNS.Store(int64(v.now.Sub(v.base)))
		}
		switch ev.kind {
		case evWake:
			w := ev.w
			v.putEventLocked(ev)
			v.running++
			w.ch <- struct{}{}
		case evGo:
			fn := ev.fn
			v.putEventLocked(ev)
			v.running++
			go func() {
				defer v.exit()
				var sink byte
				reserveStack(&sink, 0)
				fn()
			}()
		case evPost:
			fn := ev.fn
			v.putEventLocked(ev)
			// The advancing goroutine counts as runnable while it runs
			// the callback, so a goroutine the callback wakes cannot
			// start a concurrent advance.
			v.running++
			v.mu.Unlock()
			fn()
			v.mu.Lock()
			v.running--
		case evPost2:
			fn2, a, b := ev.fn2, ev.a, ev.b
			v.putEventLocked(ev)
			v.running++
			v.mu.Unlock()
			fn2(a, b)
			v.mu.Lock()
			v.running--
		}
	}
}

// newWaiter returns a pooled waiter implementing the parking protocol
// for blocking primitives.
func (v *Virtual) newWaiter() *waiter {
	if w, ok := v.wpool.Get().(*waiter); ok {
		return w
	}
	return &waiter{v: v, pool: &v.wpool, ch: make(chan struct{}, 1)}
}
