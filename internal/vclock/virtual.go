package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock.
//
// It tracks how many of its goroutines are runnable. Whenever that count
// drops to zero (everyone is sleeping or parked on a primitive from this
// package), the goroutine that parked last advances the clock to the
// earliest pending event and fires it. Events at the same instant fire in
// the order they were scheduled, so runs are reproducible.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	events  eventHeap
	running int
	stopped bool
}

type event struct {
	at    time.Time
	seq   uint64
	index int // heap index; -1 when popped or cancelled
	// fire runs with the clock mutex held; it must only adjust scheduler
	// state and hand wake-ups to goroutines, never block.
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// NewVirtual returns a virtual clock whose time starts at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Epoch is the default start instant for simulations: an arbitrary fixed
// time so that absolute timestamps in traces are reproducible.
var Epoch = time.Date(2023, 2, 7, 12, 0, 0, 0, time.UTC)

// New returns a virtual clock starting at Epoch.
func New() *Virtual { return NewVirtual(Epoch) }

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Run executes fn on the calling goroutine with that goroutine tracked by
// the clock, then stops the clock when fn returns. Goroutines still
// parked at that point stay parked; a finished simulation does not keep
// firing periodic timers. Run is how a test or main function enters a
// simulation.
func (v *Virtual) Run(fn func()) {
	v.mu.Lock()
	if v.stopped {
		v.mu.Unlock()
		panic("vclock: Run on a stopped clock")
	}
	v.running++
	v.mu.Unlock()

	defer func() {
		v.mu.Lock()
		v.running--
		v.stopped = true
		v.mu.Unlock()
	}()
	fn()
}

// Go starts fn in a goroutine tracked by this clock.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.running++
	v.mu.Unlock()
	go func() {
		defer v.exit()
		fn()
	}()
}

func (v *Virtual) exit() {
	v.mu.Lock()
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
}

// Sleep pauses the calling goroutine for d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ch := make(chan struct{}, 1)
	v.mu.Lock()
	v.scheduleLocked(d, func() {
		v.running++
		ch <- struct{}{}
	})
	v.running--
	v.maybeAdvanceLocked()
	v.mu.Unlock()
	<-ch
}

// AfterFunc schedules fn to run in its own tracked goroutine after d of
// virtual time.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ev := v.scheduleLocked(d, func() {
		v.running++
		go func() {
			defer v.exit()
			fn()
		}()
	})
	return &Timer{stop: func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if ev.index < 0 {
			return false
		}
		heap.Remove(&v.events, ev.index)
		return true
	}}
}

// scheduleLocked enqueues fire to run at now+d. Callers hold v.mu.
func (v *Virtual) scheduleLocked(d time.Duration, fire func()) *event {
	v.seq++
	ev := &event{at: v.now.Add(d), seq: v.seq, fire: fire}
	heap.Push(&v.events, ev)
	return ev
}

// maybeAdvanceLocked advances virtual time while no goroutine is
// runnable. Callers hold v.mu.
func (v *Virtual) maybeAdvanceLocked() {
	for v.running == 0 && !v.stopped {
		if v.events.Len() == 0 {
			// Release the mutex before panicking so deferred cleanup in
			// callers (e.g. Run) can still acquire it while unwinding.
			now := v.now
			v.mu.Unlock()
			panic(fmt.Sprintf("vclock: deadlock at %s: all goroutines parked and no timers pending", now.Format(time.RFC3339Nano)))
		}
		ev := heap.Pop(&v.events).(*event)
		if ev.at.After(v.now) {
			v.now = ev.at
		}
		ev.fire()
	}
}

// newWaiter implements the parking protocol for blocking primitives.
func (v *Virtual) newWaiter() (wait func(), wake func()) {
	ch := make(chan struct{}, 1)
	wait = func() {
		v.mu.Lock()
		v.running--
		v.maybeAdvanceLocked()
		v.mu.Unlock()
		<-ch
	}
	wake = func() {
		v.mu.Lock()
		v.running++
		v.mu.Unlock()
		ch <- struct{}{}
	}
	return wait, wake
}
