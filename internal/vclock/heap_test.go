package vclock

import (
	"testing"
	"time"
)

// mkEvents builds standalone events at Epoch+d for direct heap tests.
func mkEvents(ds ...time.Duration) []*event {
	evs := make([]*event, len(ds))
	for i, d := range ds {
		evs[i] = &event{at: Epoch.Add(d), atNS: int64(d), seq: uint64(i + 1)}
	}
	return evs
}

func (h eventHeap) check(t *testing.T) {
	t.Helper()
	for i := range h {
		if h[i].index != i {
			t.Fatalf("h[%d].index = %d", i, h[i].index)
		}
		if i > 0 && h.less(i, (i-1)/2) {
			t.Fatalf("heap property violated at %d: %v < parent %v", i, h[i].at, h[(i-1)/2].at)
		}
	}
}

// TestHeapRemoveSiftsUp pins the up-bound removal case: the tail
// element replacing a removed node can sort before the node's parent,
// so remove must sift it upward (a down-only remove corrupts the heap).
func TestHeapRemoveSiftsUp(t *testing.T) {
	var h eventHeap
	// Push order yields the tree
	//        1
	//     10    2
	//   11  12 30 40
	//  13
	// so removing index 4 (12) promotes the tail 13... build then pick
	// the removal that forces an up-sift: remove 11 at index 3; tail 13
	// stays put; instead craft tail 3 by pushing it last.
	evs := mkEvents(1, 10, 2, 11, 12, 30, 40, 13, 3)
	for _, ev := range evs {
		h.push(ev)
	}
	h.check(t)
	// evs[8] (=3) sits in the left subtree under 10; removing a node in
	// that subtree hands its slot to the current tail. Remove the node
	// holding 11: its replacement must climb above 10.
	h.remove(evs[3].index)
	h.check(t)
	if evs[3].index != -1 {
		t.Fatalf("removed event index = %d, want -1", evs[3].index)
	}
	var got []time.Duration
	for len(h) > 0 {
		got = append(got, time.Duration(h.pop().atNS))
	}
	want := []time.Duration{1, 2, 3, 10, 12, 13, 30, 40}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestHeapRemoveRandomized cross-checks remove against pop order on
// seeded random schedules, covering both sift directions and ties.
func TestHeapRemoveRandomized(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := NewRand(seed)
		var h eventHeap
		live := map[*event]bool{}
		var seq uint64
		for op := 0; op < 2000; op++ {
			if len(h) == 0 || rng.Intn(3) != 0 {
				seq++
				ev := &event{at: Epoch.Add(time.Duration(rng.Intn(50))), seq: seq}
				ev.atNS = int64(ev.at.Sub(Epoch))
				h.push(ev)
				live[ev] = true
			} else {
				victim := h[rng.Intn(len(h))]
				h.remove(victim.index)
				delete(live, victim)
			}
		}
		h.check(t)
		var prev *event
		for len(h) > 0 {
			ev := h.pop()
			if !live[ev] {
				t.Fatal("popped an event that was removed")
			}
			delete(live, ev)
			if prev != nil && (ev.at.Before(prev.at) || (ev.at.Equal(prev.at) && ev.seq < prev.seq)) {
				t.Fatalf("seed %d: pop out of order: (%v,%d) after (%v,%d)", seed, ev.at, ev.seq, prev.at, prev.seq)
			}
			prev = ev
		}
		if len(live) != 0 {
			t.Fatalf("seed %d: %d events lost", seed, len(live))
		}
	}
}
