package vclock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// shardTraceEntry is one fired event in a shard-group test: which shard
// executed it, at what instant, with what label.
type shardTraceEntry struct {
	shard int
	atNS  int64
	label string
}

type shardTrace struct {
	mu      sync.Mutex
	entries []shardTraceEntry
}

func (tr *shardTrace) add(shard int, atNS int64, label string) {
	tr.mu.Lock()
	tr.entries = append(tr.entries, shardTraceEntry{shard, atNS, label})
	tr.mu.Unlock()
}

// perShard returns shard i's entries in execution order.
func (tr *shardTrace) perShard(i int) []shardTraceEntry {
	var out []shardTraceEntry
	for _, e := range tr.entries {
		if e.shard == i {
			out = append(out, e)
		}
	}
	return out
}

// TestShardGroupWindowedDeterminism runs a two-shard ping-pong through
// the windowed engine twice and checks (a) both runs produce identical
// per-shard traces, (b) every cross-shard delivery lands exactly at
// send time + delay, and (c) instants never regress within a shard.
func TestShardGroupWindowedDeterminism(t *testing.T) {
	const rounds = 50
	lookahead := time.Millisecond

	run := func() *shardTrace {
		tr := &shardTrace{}
		g := NewShardGroup(2)
		g.SetLookahead(lookahead)
		deliver := func(a, b any) {
			at := a.(*shardTraceEntry)
			tr.add(at.shard, at.atNS, at.label)
		}
		g.Run(func(shard int) {
			clk := g.Shard(shard)
			other := 1 - shard
			for i := 0; i < rounds; i++ {
				// Local event on our own clock.
				tr.add(shard, clk.Now().Sub(Epoch).Nanoseconds(), fmt.Sprintf("local-%d-%d", shard, i))
				// Cross-shard record: fires on the peer at now + 2·lookahead.
				sendAt := clk.Now().Sub(Epoch).Nanoseconds()
				g.Send2(shard, other, 2*lookahead, deliver,
					&shardTraceEntry{shard: other, atNS: sendAt + int64(2*lookahead), label: fmt.Sprintf("x-%d-%d", shard, i)}, nil)
				clk.Sleep(lookahead)
			}
			// Drain: give in-flight records time to land before this
			// shard's clock stops.
			clk.Sleep(4 * lookahead)
		})
		return tr
	}

	a, b := run(), run()
	for s := 0; s < 2; s++ {
		ea, eb := a.perShard(s), b.perShard(s)
		if len(ea) != len(eb) {
			t.Fatalf("shard %d: run lengths differ: %d vs %d", s, len(ea), len(eb))
		}
		last := int64(-1)
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("shard %d entry %d differs: %+v vs %+v", s, i, ea[i], eb[i])
			}
			if ea[i].atNS < last {
				t.Fatalf("shard %d: time regressed at entry %d: %d after %d", s, i, ea[i].atNS, last)
			}
			last = ea[i].atNS
		}
		// Each shard executes its own locals plus the peer's records
		// (minus any still in flight when the peer stopped — the drain
		// sleep makes that zero here).
		if len(ea) != 2*rounds {
			t.Errorf("shard %d executed %d events, want %d", s, len(ea), 2*rounds)
		}
	}
}

// TestShardGroupCanonicalMergeOrder has two origin shards send records
// that land on shard 0 at the same instant; the merge must order them
// (at, originShard, originSeq), so origin 1's record always executes
// before origin 2's, no matter which shard's outbox flushed first.
func TestShardGroupCanonicalMergeOrder(t *testing.T) {
	const rounds = 30
	lookahead := time.Millisecond

	var mu sync.Mutex
	var order []string
	g := NewShardGroup(3)
	g.SetLookahead(lookahead)
	record := func(a, b any) {
		mu.Lock()
		order = append(order, a.(string))
		mu.Unlock()
	}
	g.Run(func(shard int) {
		clk := g.Shard(shard)
		if shard == 0 {
			// Destination: stay alive past the last delivery.
			clk.Sleep(time.Duration(rounds+4) * lookahead)
			return
		}
		for i := 0; i < rounds; i++ {
			// Both origins send at the same instant with the same delay:
			// the records tie on atNS and must fall back to origin order.
			g.Send2(shard, 0, 2*lookahead, record, fmt.Sprintf("o%d-r%d", shard, i), nil)
			clk.Sleep(lookahead)
		}
	})

	if len(order) != 2*rounds {
		t.Fatalf("delivered %d records, want %d", len(order), 2*rounds)
	}
	for i := 0; i < rounds; i++ {
		a, b := order[2*i], order[2*i+1]
		wantA, wantB := fmt.Sprintf("o1-r%d", i), fmt.Sprintf("o2-r%d", i)
		if a != wantA || b != wantB {
			t.Fatalf("round %d delivered (%s, %s), want (%s, %s) — canonical order violated", i, a, b, wantA, wantB)
		}
	}
}

// TestShardGroupSend2Guards checks the two Send2 misuse panics: sending
// with infinite lookahead (no cross-shard edges declared) and sending
// with a delay below the lookahead.
func TestShardGroupSend2Guards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	g := NewShardGroup(2)
	mustPanic("infinite lookahead", func() {
		g.Send2(0, 1, time.Second, func(a, b any) {}, nil, nil)
	})
	g2 := NewShardGroup(2)
	g2.SetLookahead(time.Millisecond)
	mustPanic("delay below lookahead", func() {
		g2.Send2(0, 1, time.Microsecond, func(a, b any) {}, nil, nil)
	})
	mustPanic("non-positive lookahead", func() {
		NewShardGroup(2).SetLookahead(0)
	})
}

// TestShardGroupDeadlockPanic parks a goroutine on every shard with no
// pending events and no records in flight: the coordinator must panic
// (the sharded analogue of the single-clock deadlock panic).
func TestShardGroupDeadlockPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no deadlock panic")
		}
	}()
	g := NewShardGroup(2)
	g.SetLookahead(time.Millisecond)
	g.Run(func(shard int) {
		NewGate().Wait(g.Shard(shard)) // parks forever
	})
}

// TestShardGroupInfiniteLookahead runs independent shards with no
// cross-shard edges: no barriers, fully concurrent, each clock advances
// on its own schedule.
func TestShardGroupInfiniteLookahead(t *testing.T) {
	const n = 4
	g := NewShardGroup(n)
	spans := make([]time.Duration, n)
	g.Run(func(shard int) {
		clk := g.Shard(shard)
		start := clk.Now()
		// Different shards sleep different amounts: with no barriers
		// nothing forces them into lockstep.
		for i := 0; i <= shard; i++ {
			clk.Sleep(time.Duration(i+1) * time.Millisecond)
		}
		spans[shard] = clk.Since(start)
	})
	for shard, span := range spans {
		want := time.Duration((shard+1)*(shard+2)/2) * time.Millisecond
		if span != want {
			t.Errorf("shard %d advanced %v, want %v", shard, span, want)
		}
	}
}

// TestPostAbsPastPanics checks the lookahead-violation guard: inserting
// an absolute-time event behind a clock's current instant must panic
// loudly rather than silently reorder history.
func TestPostAbsPastPanics(t *testing.T) {
	v := New()
	v.Run(func() {
		v.Sleep(time.Second)
		defer func() {
			if recover() == nil {
				t.Error("postAbs in the past did not panic")
			}
		}()
		v.postAbs(int64(500*time.Millisecond), func(a, b any) {}, nil, nil)
	})
}

// nopXrec is the benchmark's top-level delivery callback: using a named
// function keeps the Send2 call allocation-free.
func nopXrec(a, b any) {}

// BenchmarkShardBarrier measures one windowed round trip per op: both
// shards send one cross-shard record and sleep one lookahead, forcing a
// barrier per round. Gated allocation-free in CI (make bench-load-guard)
// — outboxes, the merge sorter, and destination events are all reused.
func BenchmarkShardBarrier(b *testing.B) {
	g := NewShardGroup(2)
	lookahead := time.Millisecond
	g.SetLookahead(lookahead)
	b.ReportAllocs()
	b.ResetTimer()
	g.Run(func(shard int) {
		clk := g.Shard(shard)
		other := 1 - shard
		for i := 0; i < b.N; i++ {
			g.Send2(shard, other, 2*lookahead, nopXrec, nil, nil)
			clk.Sleep(lookahead)
		}
		clk.Sleep(4 * lookahead)
	})
}
