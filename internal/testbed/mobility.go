package testbed

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/mobility"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// MobileClient returns mobile client host i.
func (tb *Testbed) MobileClient(i int) *netem.Host { return tb.mobiles[i%len(tb.mobiles)] }

// mobileAccess is the access-link shape of a re-homed mobile client —
// identical to wireAccessClients, so moving is latency-neutral.
var mobileAccess = netem.LinkConfig{
	Latency:   500 * time.Microsecond,
	Bandwidth: netem.GbpsToBytes(1),
}

// RehomeClient performs one full handover of mobile client i: toB moves
// it from the primary gNB to gnb2, !toB moves it home. The three layers
// run in datapath-safe order:
//
//  1. physical — Network.Rehome cuts the old access link and attaches
//     the host to the reserved port on the target switch (epoch bumps
//     invalidate compiled plans and microflow caches);
//  2. control — Controller.Handover re-steers the client's redirect
//     flows make-before-break and re-tags its tracked location;
//  3. routing — the target switch learns the direct route, the old
//     switch re-points the client at the trunk (overwriting its stale
//     direct route), so traffic converges on the new attachment point.
//
// Routing deliberately comes LAST: make-before-break must cover routes
// too. If the new switch routed packets straight to the client before
// the make step installed its reverse rewrite rules, an in-flight reply
// could reach the client bearing the instance's raw address — and the
// client's transport would RST the very session the handover is
// preserving. With the old routes in place, such a reply either gets
// rewritten by a switch that still holds the rules or dies on the
// client's cut access link, where retransmission recovers it. The same
// holds outbound: packets entering the new switch before its rules
// exist match the service intercept rule and punt to the controller,
// which re-installs the memorized mapping. Nothing in the window is
// ever delivered unrewritten; everything lost is retransmitted.
func (tb *Testbed) RehomeClient(i int, toB bool) core.HandoverReport {
	h := tb.mobiles[i]
	if toB {
		tb.Net.Rehome(h, tb.SwitchB.Port(tb.mobilePortB[i]), mobileAccess)
		rep := tb.Controller.Handover(h.IP(), tb.SwitchB, tb.mobilePortB[i])
		tb.SwitchB.AddRoute(h.IP(), tb.mobilePortB[i])
		tb.Switch.AddRoute(h.IP(), tb.trunkA)
		return rep
	}
	tb.Net.Rehome(h, tb.Switch.Port(tb.mobilePortA[i]), mobileAccess)
	rep := tb.Controller.Handover(h.IP(), tb.Switch, tb.mobilePortA[i])
	tb.Switch.AddRoute(h.IP(), tb.mobilePortA[i])
	tb.SwitchB.AddRoute(h.IP(), tb.trunkB)
	return rep
}

// MobilityConfig parameterizes RunMobility.
type MobilityConfig struct {
	// Clients is the number of mobile clients with live sessions
	// (default 4).
	Clients int
	// Handovers is the number of random-walk handover events
	// (default 16).
	Handovers int
	// Interval is the mean spacing between handovers (default 2 s).
	Interval time.Duration
	// Migrate enables service migration on handover.
	Migrate bool
	// Seed drives the walk and all emulation jitter.
	Seed int64
}

func (c MobilityConfig) withDefaults() MobilityConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Handovers <= 0 {
		c.Handovers = 16
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// MobilityResult carries the deterministic outcome of one mobility run.
type MobilityResult struct {
	Config MobilityConfig
	// Sessions and Rounds count the persistent client sessions and their
	// completed request/response rounds (every round is verified against
	// the service's fixed body).
	Sessions int
	Rounds   int
	// VerifiedBytes totals the verified response bytes; Checksum is the
	// FNV-1a fingerprint folded over every session's response stream in
	// client order.
	VerifiedBytes int64
	Checksum      uint64
	// HandoverLat is the control-plane handover latency histogram.
	HandoverLat *metrics.Hist
	// AuditA and AuditB are the post-run flow-table audit deltas
	// (desired vs installed) on the two gNBs; both must be zero.
	AuditA, AuditB int
	Stats          core.Stats
}

// fnv1aFold is FNV-1a over b starting from sum h.
func fnv1aFold(h uint64, b []byte) uint64 {
	const prime = 1099511628211
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

const fnv1aOffset = 14695981039346656037

// RunMobility is the client-mobility experiment: persistent sessions on
// mobile clients keep exchanging requests with an edge service while a
// seeded random walk hops the clients between the two gNBs. Every
// response is verified against the service's fixed body, so a single
// lost, duplicated, or corrupted exchange fails the run — the sessions
// themselves are the probe that handovers preserve TCP continuity.
//
// The run uses one virtual clock (handover order is global state, so
// there is nothing to shard) and every reported number is virtual-time
// deterministic: a given config produces byte-identical results
// regardless of host, scheduler kind, or the -parallel worker count.
func RunMobility(cfg MobilityConfig) (*MobilityResult, error) {
	cfg = cfg.withDefaults()
	res := &MobilityResult{Config: cfg, Checksum: fnv1aOffset}

	svc, err := catalog.ByKey("asm")
	if err != nil {
		return nil, err
	}
	// The asm catalog handler serves this fixed 64-byte document; every
	// session round must receive exactly it.
	expected := make([]byte, 64)
	copy(expected, "asmttpd ok\n")

	walk := mobility.RandomWalk(mobility.WalkConfig{
		Clients:   cfg.Clients,
		Zones:     2,
		Handovers: cfg.Handovers,
		Start:     time.Second,
		Interval:  cfg.Interval,
		Seed:      cfg.Seed + 1000,
	})
	// Sessions outlive the walk by a grace period: the rounds after the
	// last handover prove the final attachment points work too.
	const roundEvery = 250 * time.Millisecond
	rounds := int((walk.Span()+2*time.Second)/roundEvery) + 1

	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		tb, err := New(clk, Options{
			TwoZones:          true,
			MobileClients:     cfg.Clients,
			MigrateOnHandover: cfg.Migrate,
			SwitchFlowIdle:    time.Hour, // no expiry churn mid-run
			MemoryIdle:        time.Hour,
			CandidateTTL:      -1, // per-zone decisions, never a stale snapshot
			Seed:              cfg.Seed,
		})
		if err != nil {
			runErr = err
			return
		}
		h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(0))
		if err != nil {
			runErr = err
			return
		}
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			runErr = err
			return
		}
		if _, err := tb.Controller.PreDeploy(h.Addr, "edge-docker"); err != nil {
			runErr = err
			return
		}

		// One persistent session per mobile client. Each goroutine owns
		// its slot in the result arrays; the joins below are the only
		// readers.
		req := []byte(fmt.Sprintf("GET / HTTP/1.1\r\nHost: %s\r\n\r\n", h.Addr))
		done := make([]vclock.Gate, cfg.Clients)
		sums := make([]uint64, cfg.Clients)
		bytesOK := make([]int64, cfg.Clients)
		roundsOK := make([]int, cfg.Clients)
		errs := make([]error, cfg.Clients)
		for i := 0; i < cfg.Clients; i++ {
			i := i
			clk.Go(func() {
				defer done[i].Open()
				conn, err := tb.MobileClient(i).DialTimeout(h.Addr, 30*time.Second)
				if err != nil {
					errs[i] = fmt.Errorf("session %d: dial: %w", i, err)
					return
				}
				defer conn.Close()
				sum := uint64(fnv1aOffset)
				for r := 0; r < rounds; r++ {
					if err := conn.Send(req); err != nil {
						errs[i] = fmt.Errorf("session %d round %d: send: %w", i, r, err)
						return
					}
					resp, err := conn.RecvTimeout(30 * time.Second)
					if err != nil {
						errs[i] = fmt.Errorf("session %d round %d: recv: %w", i, r, err)
						return
					}
					if string(resp) != string(expected) {
						errs[i] = fmt.Errorf("session %d round %d: response %q, want the fixed asm body", i, resp, resp)
						return
					}
					sum = fnv1aFold(sum, resp)
					bytesOK[i] += int64(len(resp))
					roundsOK[i]++
					clk.Sleep(roundEvery)
				}
				sums[i] = sum
			})
		}

		// The walk drives handovers strictly in order while the sessions
		// talk through them.
		walk.Run(clk, func(e mobility.Event) {
			tb.RehomeClient(e.Client, e.To == 1)
		})

		for i := range done {
			done[i].Wait(clk)
		}
		for i := 0; i < cfg.Clients; i++ {
			if errs[i] != nil {
				runErr = errs[i]
				return
			}
			res.Rounds += roundsOK[i]
			res.VerifiedBytes += bytesOK[i]
			var enc [8]byte
			for b := 0; b < 8; b++ {
				enc[b] = byte(sums[i] >> (8 * b))
			}
			res.Checksum = fnv1aFold(res.Checksum, enc[:])
		}
		res.Sessions = cfg.Clients

		// Post-run convergence: one explicit audit per gNB against the
		// controller's desired state. Handovers must leave no orphaned
		// and no missing flows anywhere.
		tb.Controller.ResyncNow()
		res.AuditA = tb.Controller.AuditDiff(tb.Switch)
		res.AuditB = tb.Controller.AuditDiff(tb.SwitchB)
		res.HandoverLat = tb.Controller.HandoverLatency()
		res.Stats = tb.Controller.Stats()
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
