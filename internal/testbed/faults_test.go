package testbed

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/trace"
)

// faultTraceConfig is a reduced bigFlows workload (12 services, 480
// requests over 3 minutes) that still spans the configured outage
// window.
func faultTraceConfig() trace.Config {
	cfg := trace.DefaultBigFlows()
	cfg.HotServices = 12
	cfg.TotalRequests = 480
	cfg.Duration = 3 * time.Minute
	cfg.NoiseServices = 0
	cfg.NonHTTPConversations = 0
	cfg.Seed = 7
	return cfg
}

func TestFaultReplaySurvivesAndReproduces(t *testing.T) {
	cfg := faultTraceConfig()
	faults := DefaultFaultConfig(7)

	a, err := RunFaultReplay("nginx", cfg, faults, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: every client request completes despite 10 % pull and
	// scale-up failures plus a 30 s outage — failover or cloud fallback,
	// zero blackholed flows.
	if a.Errors != 0 {
		t.Fatalf("%d of %d requests failed under fault injection", a.Errors, a.Requests)
	}
	if a.Totals.Len() != a.Requests {
		t.Fatalf("completed %d of %d requests", a.Totals.Len(), a.Requests)
	}
	// The plan really fired: this run is not accidentally fault-free.
	if a.Injected.PullFailures == 0 {
		t.Error("no pull faults injected at a 10% rate")
	}
	if a.Injected.OutageErrors == 0 {
		t.Error("the outage window injected nothing")
	}
	// And the controller actually needed its resilience machinery.
	if a.Stats.Retries == 0 {
		t.Error("no retries recorded despite injected failures")
	}
	if a.Stats.Failovers == 0 && a.Stats.CloudForwards == 0 {
		t.Error("neither failover nor cloud fallback ever engaged")
	}

	// Acceptance: the same seed reproduces identical counters.
	b, err := RunFaultReplay("nginx", cfg, faults, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injected != b.Injected {
		t.Errorf("injected stats diverged:\n  %+v\n  %+v", a.Injected, b.Injected)
	}
	if a.Stats != b.Stats {
		t.Errorf("controller stats diverged:\n  %+v\n  %+v", a.Stats, b.Stats)
	}
	if a.Totals.Len() != b.Totals.Len() || a.Errors != b.Errors {
		t.Errorf("request outcomes diverged: %d/%d vs %d/%d",
			a.Totals.Len(), a.Errors, b.Totals.Len(), b.Errors)
	}
}

func TestFaultFreeBaselineInjectsNothing(t *testing.T) {
	cfg := faultTraceConfig()
	cfg.TotalRequests = 240
	cfg.HotServices = 8
	res, err := RunFaultReplay("nginx", cfg, faultinject.Config{Seed: 7}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d of %d requests failed without faults", res.Errors, res.Requests)
	}
	if res.Injected != (faultinject.Stats{}) {
		t.Errorf("zero-valued fault config injected faults: %+v", res.Injected)
	}
	if res.Stats.Retries != 0 || res.Stats.Failovers != 0 {
		t.Errorf("resilience machinery engaged on a fault-free run: %d retries, %d failovers",
			res.Stats.Retries, res.Stats.Failovers)
	}
}
