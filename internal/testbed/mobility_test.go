package testbed

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/mobility"
)

// TestMobilitySessionContinuity drives the full mobility experiment on
// a small walk and checks the strongest property it offers: every
// session round that was sent came back verified, exactly once — the
// round count matches the schedule-derived expectation, so handovers
// lost nothing and duplicated nothing, through the real SDN datapath.
func TestMobilitySessionContinuity(t *testing.T) {
	cfg := MobilityConfig{Clients: 2, Handovers: 6, Interval: time.Second, Seed: 7}
	res, err := RunMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Recompute the experiment's own round budget from the (public,
	// deterministic) walk: sessions run to span + 2 s grace at one round
	// per 250 ms. Every single round must have been verified.
	walk := mobility.RandomWalk(mobility.WalkConfig{
		Clients: cfg.Clients, Zones: 2, Handovers: cfg.Handovers,
		Start: time.Second, Interval: cfg.Interval, Seed: cfg.Seed + 1000,
	})
	perClient := int((walk.Span()+2*time.Second)/(250*time.Millisecond)) + 1
	if want := cfg.Clients * perClient; res.Rounds != want {
		t.Errorf("verified rounds = %d, want %d (zero lost, zero duplicated)", res.Rounds, want)
	}
	if want := int64(res.Rounds) * 64; res.VerifiedBytes != want {
		t.Errorf("verified bytes = %d, want %d", res.VerifiedBytes, want)
	}
	if res.Sessions != cfg.Clients {
		t.Errorf("sessions = %d, want %d", res.Sessions, cfg.Clients)
	}
	if res.Stats.Handovers != int64(cfg.Handovers) {
		t.Errorf("Handovers = %d, want %d", res.Stats.Handovers, cfg.Handovers)
	}
	if res.Stats.ContinuityBreaks != 0 {
		t.Errorf("ContinuityBreaks = %d, want 0", res.Stats.ContinuityBreaks)
	}
	if res.AuditA != 0 || res.AuditB != 0 {
		t.Errorf("post-run audit deltas = %d/%d, want 0/0", res.AuditA, res.AuditB)
	}
	if c := res.HandoverLat.Count(); c != res.Stats.Handovers {
		t.Errorf("handover latency samples = %d, want %d", c, res.Stats.Handovers)
	}
}

// TestMobilityDeterministic: the same config yields byte-identical
// results — the property the golden edgesim output rests on.
func TestMobilityDeterministic(t *testing.T) {
	cfg := MobilityConfig{Clients: 2, Handovers: 4, Interval: time.Second, Seed: 3}
	a, err := RunMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMobility(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Rounds != b.Rounds || a.VerifiedBytes != b.VerifiedBytes {
		t.Errorf("runs diverge: %x/%d/%d vs %x/%d/%d",
			a.Checksum, a.Rounds, a.VerifiedBytes, b.Checksum, b.Rounds, b.VerifiedBytes)
	}
	if a.Stats != b.Stats {
		t.Errorf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.HandoverLat.Median() != b.HandoverLat.Median() {
		t.Errorf("handover latency medians diverge: %v vs %v", a.HandoverLat.Median(), b.HandoverLat.Median())
	}
}

// TestMobilityMigration: with Migrate, handovers into zone B trigger a
// deploy at edge-zoneb while live sessions keep their instance.
func TestMobilityMigration(t *testing.T) {
	res, err := RunMobility(MobilityConfig{Clients: 2, Handovers: 4, Interval: time.Second, Seed: 3, Migrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MigratedInstances == 0 {
		t.Error("no migration despite Migrate and zone-B handovers")
	}
	if res.Stats.ContinuityBreaks != 0 {
		t.Errorf("ContinuityBreaks = %d, want 0", res.Stats.ContinuityBreaks)
	}
}
