package testbed

import "math"

// Zipf service-popularity sampling for the load engine. The popularity
// CDF is fixed for a whole run, so per-arrival draws go through a
// Walker-style alias table: one uniform draw, one multiply, one
// comparison — O(1) and allocation-free regardless of the service
// count. The table's cells are aligned to the CDF boundaries (each cell
// contains at most one boundary, guaranteed by sizing the cell count
// past the smallest rank probability), which makes the alias draw agree
// with inversion sampling for *every* uniform input, not just in
// distribution: a run keeps the exact service assignment the CDF scan
// produced, draw for draw on the same rng stream. When a distribution
// is too skewed to align within the table cap, the sampler falls back
// to binary-search inversion — still O(log n), still the same mapping.

// zipfCDF precomputes the cumulative Zipf distribution over n ranks
// with exponent s: weight(r) ∝ 1/(r+1)^s.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return cdf
}

// zipfPick maps a uniform draw through the CDF by binary search for the
// first rank with u < cdf[rank] — the same result as a linear scan for
// every u (strict comparison on both sides), in O(log n).
func zipfPick(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if u < cdf[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// zipfSampler maps a uniform draw in [0,1) to a service rank.
type zipfSampler interface {
	pick(u float64) int
}

// searchSampler is the fallback: binary-search inversion over the CDF.
type searchSampler struct{ cdf []float64 }

func (s searchSampler) pick(u float64) int { return zipfPick(s.cdf, u) }

// aliasSampler is the O(1) fast path: cells cells of equal width, each
// holding at most one CDF boundary (cut). A draw scales u by the cell
// count (a power of two, so the scaling and truncation are exact in
// IEEE arithmetic) and picks primary or alias with one comparison.
type aliasSampler struct {
	cells   int
	cut     []float64
	primary []int32
	alias   []int32
}

// aliasMaxCells caps the table at 32 MiB-ish; distributions whose
// smallest rank probability needs more cells than this fall back to
// binary search.
const aliasMaxCells = 1 << 22

// newAliasSampler builds a CDF-aligned alias table, or returns nil when
// the distribution is too skewed to align within aliasMaxCells (the
// caller then uses the binary-search fallback).
func newAliasSampler(cdf []float64) *aliasSampler {
	n := len(cdf)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return &aliasSampler{cells: 1, cut: []float64{2}, primary: []int32{0}, alias: []int32{0}}
	}
	// Cell width must be below the smallest gap between consecutive CDF
	// boundaries so no cell straddles two boundaries.
	minGap := cdf[0]
	for r := 1; r < n; r++ {
		if g := cdf[r] - cdf[r-1]; g < minGap {
			minGap = g
		}
	}
	if minGap <= 0 {
		return nil
	}
	cells := 1
	for float64(cells)*minGap < 2 {
		if cells >= aliasMaxCells {
			return nil
		}
		cells <<= 1
	}
	a := &aliasSampler{
		cells:   cells,
		cut:     make([]float64, cells),
		primary: make([]int32, cells),
		alias:   make([]int32, cells),
	}
	r := 0
	for i := 0; i < cells; i++ {
		left := float64(i) / float64(cells)
		right := float64(i+1) / float64(cells)
		for r < n-1 && cdf[r] <= left {
			r++
		}
		// r is now inversion(left): the rank every u at the cell's left
		// edge maps to.
		if r == n-1 || cdf[r] >= right {
			// No boundary inside the cell: one outcome.
			a.primary[i], a.alias[i], a.cut[i] = int32(r), int32(r), 2
			continue
		}
		if cdf[r+1] < right {
			// Two boundaries in one cell despite the sizing — bail to
			// the exact fallback rather than misalign a draw.
			return nil
		}
		a.primary[i], a.alias[i], a.cut[i] = int32(r), int32(r+1), cdf[r]
	}
	return a
}

func (a *aliasSampler) pick(u float64) int {
	i := int(u * float64(a.cells))
	if i >= a.cells { // u == 1-ε rounding guard
		i = a.cells - 1
	}
	if u < a.cut[i] {
		return int(a.primary[i])
	}
	return int(a.alias[i])
}

// newZipfSampler returns the O(1) alias sampler when the distribution
// aligns, the binary-search inversion otherwise. Both produce identical
// ranks for identical uniform draws.
func newZipfSampler(cdf []float64) zipfSampler {
	if a := newAliasSampler(cdf); a != nil {
		return a
	}
	return searchSampler{cdf: cdf}
}
