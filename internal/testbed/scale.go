package testbed

import (
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// ScaleResult is the outcome of the control-plane scale experiment: per
// client-count request latencies for the two packet-in flavours the
// sharded control plane serves, plus the controller's own accounting.
type ScaleResult struct {
	ServiceKey string
	Clients    int
	// Cold is the time_total of each client's first request: a
	// FlowMemory miss that runs the full dispatch pipeline. All clients
	// fire inside one candidate-cache TTL window, so one client pays the
	// candidate gathering and the rest ride the cached snapshot.
	Cold *metrics.Series
	// Warm is the time_total of each client's second request after its
	// switch flows idled out: a packet-in answered from the FlowMemory.
	Warm *metrics.Series
	// Stats is the controller's view after the run; CandidateHits /
	// CandidateMisses expose the snapshot cache, MemoryHits the warm
	// wave.
	Stats core.Stats
}

// RunScale drives one service with a swarm of clients — the
// packet-in-storm scenario the sharded control plane is built for.
// Every client issues a cold first request inside a short window
// (FlowMemory misses racing through dispatch and the candidate cache),
// then, after the switch flows idle out, a warm second request
// (FlowMemory hits). The instance is pre-deployed: the experiment
// isolates control-plane dispatch from container deployment.
func RunScale(serviceKey string, clients int, seed int64) (*ScaleResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	res := &ScaleResult{
		ServiceKey: serviceKey,
		Clients:    clients,
		Cold:       metrics.NewSeries("cold-dispatch"),
		Warm:       metrics.NewSeries("memory-hit"),
	}
	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		tb, err := New(clk, Options{
			WithDocker:     true,
			Clients:        clients,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     time.Hour,
			Seed:           seed,
		})
		if err != nil {
			runErr = err
			return
		}
		h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(0))
		if err != nil {
			runErr = err
			return
		}
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			runErr = err
			return
		}
		if _, err := tb.Controller.PreDeploy(h.Addr, "edge-docker"); err != nil {
			runErr = err
			return
		}

		// Cold wave: every client's first packet-in misses the FlowMemory
		// and dispatches. The 1 ms stagger keeps all of them inside one
		// candidate-snapshot TTL.
		cold := make([]time.Duration, clients)
		errs := make([]error, clients)
		var g vclock.Group
		for i := 0; i < clients; i++ {
			i := i
			g.Go(clk, func() {
				clk.Sleep(time.Duration(i) * time.Millisecond)
				r, err := tb.Request(i, h)
				if err != nil {
					errs[i] = err
					return
				}
				cold[i] = r.Total
			})
		}
		g.Wait(clk)
		for i := 0; i < clients; i++ {
			if errs[i] != nil {
				runErr = errs[i]
				return
			}
			res.Cold.Add(cold[i])
		}

		// Let every redirect flow idle out; the FlowMemory keeps the
		// instance, so the second wave is pure memory-hit dispatch.
		clk.Sleep(5 * time.Second)
		warm := make([]time.Duration, clients)
		var g2 vclock.Group
		for i := 0; i < clients; i++ {
			i := i
			g2.Go(clk, func() {
				clk.Sleep(time.Duration(i) * time.Millisecond)
				r, err := tb.Request(i, h)
				if err != nil {
					errs[i] = err
					return
				}
				warm[i] = r.Total
			})
		}
		g2.Wait(clk)
		for i := 0; i < clients; i++ {
			if errs[i] != nil {
				runErr = errs[i]
				return
			}
			res.Warm.Add(warm[i])
		}
		res.Stats = tb.Controller.Stats()
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
