package testbed

import (
	"strings"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestServerlessOnDemandMilliseconds deploys a WebAssembly service
// through the unchanged transparent-access pipeline: the first request
// completes in tens of milliseconds instead of ≈0.5 s — the outcome the
// paper's future work hypothesizes (citing the Wasm cold-start
// literature).
func TestServerlessOnDemandMilliseconds(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithFaas: true, WithDocker: true, Seed: 50})
		wasm, err := catalog.WasmService("nginx")
		if err != nil {
			t.Fatal(err)
		}
		h, err := tb.RegisterCatalogService(wasm, trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.PrePull(h, "edge-faas"); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("serverless on-demand request: %v", err)
		}
		// First request, module compiled: instantiate (≈4 ms) + probe +
		// handshake — far below the container path.
		if res.Total > 120*time.Millisecond {
			t.Errorf("wasm first request = %v, want tens of ms", res.Total)
		}
		if !strings.Contains(string(res.Response), "nginx") {
			t.Errorf("response = %q", res.Response[:16])
		}
		if len(tb.Faas.Instances(h.Svc.Name)) != 1 {
			t.Error("no serverless instance running")
		}
	})
}

// TestSideBySideContainersAndServerless registers one containerized and
// one serverless service under different addresses; the same controller
// dispatches both, picking the right cluster for each.
func TestSideBySideContainersAndServerless(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithFaas: true, WithDocker: true, Seed: 51})
		// The faas cluster is "closest", so only register the container
		// service where the wasm runtime cannot host it (multi-container
		// specs are rejected by the faas cluster and the proximity
		// scheduler falls through to Docker).
		nginxpy := mustService(t, "nginxpy")
		containerH, err := tb.RegisterCatalogService(nginxpy, trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		tb.PrePull(containerH, "edge-docker")

		wasm, _ := catalog.WasmService("asm")
		wasmH, err := tb.RegisterCatalogService(wasm, trace.ServiceAddr(1))
		if err != nil {
			t.Fatal(err)
		}
		tb.PrePull(wasmH, "edge-faas")

		wres, err := tb.Request(0, wasmH)
		if err != nil {
			t.Fatal(err)
		}
		if len(tb.Faas.Instances(wasmH.Svc.Name)) != 1 {
			t.Error("wasm service not on the serverless runtime")
		}
		if wres.Total > 120*time.Millisecond {
			t.Errorf("wasm request = %v", wres.Total)
		}
	})
}

// TestFaasScaleDownOnIdle ties the serverless cluster into the idle
// scale-down loop: isolates are cheap to kill and recreate.
func TestFaasScaleDownOnIdle(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{
			WithFaas:       true,
			WithDocker:     true,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     8 * time.Second,
			ScaleDownIdle:  true,
			Seed:           52,
		})
		wasm, _ := catalog.WasmService("asm")
		h, _ := tb.RegisterCatalogService(wasm, trace.ServiceAddr(0))
		tb.PrePull(h, "edge-faas")
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(time.Minute)
		if len(tb.Faas.Instances(h.Svc.Name)) != 0 {
			t.Error("idle isolate survives")
		}
		// Re-deployment is nearly free.
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total > 120*time.Millisecond {
			t.Errorf("wasm redeploy = %v", res.Total)
		}
	})
}

// TestWasmCatalogVariants checks the serverless catalog derivation.
func TestWasmCatalogVariants(t *testing.T) {
	for _, key := range []string{"asm", "nginx", "resnet"} {
		s, err := catalog.WasmService(key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		base, _ := catalog.ByKey(key)
		// Modules are much smaller than the layered images — except for
		// Asm, whose container is itself a 6 KiB binary.
		if key != "asm" && s.TotalImageBytes() >= base.TotalImageBytes()/5 {
			t.Errorf("%s module (%d B) not ≪ image (%d B)", key, s.TotalImageBytes(), base.TotalImageBytes())
		}
		if s.HTTPMethod != base.HTTPMethod || s.RequestPayload != base.RequestPayload {
			t.Errorf("%s wasm variant changed the client workload", key)
		}
		if _, err := catalog.WasmResolver().Resolve(catalog.WasmModuleRef(key)); err != nil {
			t.Errorf("%s module unresolvable: %v", key, err)
		}
	}
	// Multi-container services have no serverless variant.
	if _, err := catalog.WasmService("nginxpy"); err == nil {
		t.Error("nginxpy wasm variant accepted")
	}
	// The combined resolver covers both worlds.
	if _, err := (catalog.CombinedResolver{}).Resolve(catalog.ImageNginx); err != nil {
		t.Error("combined resolver lost containers")
	}
	if _, err := (catalog.CombinedResolver{}).Resolve(catalog.WasmModuleRef("asm")); err != nil {
		t.Error("combined resolver lost modules")
	}
}
