package testbed

import (
	"errors"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// DefaultChaosConfig is the evaluated network chaos scenario: three
// client access links flap between t=20s and t=70s, the cloud uplink
// router crashes for 8 s, the gNB switch reboots (losing its whole
// flow table) at t=55s, and the OpenFlow control channel drops and
// reorders messages until t=90s. The trace outlives every fault
// window, so the invariant checker can measure post-chaos convergence.
func DefaultChaosConfig(seed int64) faultinject.NetworkConfig {
	return faultinject.NetworkConfig{
		Seed:            seed,
		FlapStart:       20 * time.Second,
		FlapEnd:         70 * time.Second,
		MeanUp:          4 * time.Second,
		MeanDown:        300 * time.Millisecond,
		FlapLinks:       3,
		PacketInLoss:    0.05,
		FlowModLoss:     0.10,
		FlowRemovedLoss: 0.20,
		PacketOutLoss:   0.05,
		ReorderRate:     0.10,
		CtrlExtraDelay:  2 * time.Millisecond,
		FaultsEnd:       90 * time.Second,
		RouterCrashes: []faultinject.Window{
			{Start: 40 * time.Second, End: 48 * time.Second},
		},
		SwitchRestarts: []time.Duration{55 * time.Second},
	}
}

// ChaosResult is the outcome of one chaos replay, judged against the
// three invariants of the chaos-hardening work: every request either
// completes or fails with a classified transport error (no silent
// hangs), no pooled packet leaks, and the switch flow tables converge
// to the controller's desired state once the faults stop.
type ChaosResult struct {
	// Requests is the replayed request count; Completed how many
	// succeeded; Failed how many returned a classified transport error.
	Requests  int
	Completed int
	Failed    int
	// Unclassified counts failures that are neither success nor a
	// recognized transport error — each one is an invariant violation.
	Unclassified int
	// LeakedPackets is the pooled-packet population growth across the
	// run after the drain grace: non-zero means a held or in-flight
	// packet was dropped without being released.
	LeakedPackets int64
	// Converged reports whether every switch table matched the desired
	// state after one post-chaos audit; ConvergeDelta is the residual
	// symmetric difference (zero when Converged).
	Converged     bool
	ConvergeDelta int
	// Totals is the client-observed time_total of completed requests.
	Totals *metrics.Series
	// Stats is the controller's view: resync runs, reinstalled flows,
	// orphans removed, degraded-to-cloud falls, channel drops.
	Stats core.Stats
}

// InvariantsOK reports whether the run upheld all three invariants.
func (r *ChaosResult) InvariantsOK() bool {
	return r.Unclassified == 0 && r.LeakedPackets == 0 && r.Converged
}

// classified reports whether err is one of the transport failure
// classes a client can act on.
func classified(err error) bool {
	return errors.Is(err, netem.ErrTimeout) || errors.Is(err, netem.ErrRefused) ||
		errors.Is(err, netem.ErrReset) || errors.Is(err, netem.ErrClosed)
}

// replayTraceClassified replays the trace like ReplayTrace but keeps
// every request's error for invariant classification instead of
// collapsing failures to a count.
func (tb *Testbed) replayTraceClassified(tr *trace.Trace, handles []*ServiceHandle) (*metrics.Series, []error) {
	totals := metrics.NewSeries("time_total")
	var g vclock.Group
	results := make([]time.Duration, len(tr.Requests))
	errs := make([]error, len(tr.Requests))
	for i, req := range tr.Requests {
		i, req := i, req
		g.Go(tb.Clock, func() {
			tb.Clock.Sleep(req.At)
			h := handles[req.Service%len(handles)]
			r, err := tb.Request(req.Client, h)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = r.Total
		})
	}
	g.Wait(tb.Clock)
	for i := range results {
		if errs[i] == nil {
			totals.Add(results[i])
		}
	}
	return totals, errs
}

// RunChaos replays the request trace on a two-edge testbed while the
// given network chaos schedule runs, then checks the invariants:
// after a drain grace and one reconciliation audit, request outcomes
// must all be classified, the pooled-packet population must return to
// its pre-run level, and every switch table must equal the desired
// state. Long idle timeouts keep flow expiry from racing the
// convergence check; the reconciler runs every 5 s during chaos.
func RunChaos(serviceKey string, cfg trace.Config, chaos faultinject.NetworkConfig, seed int64) (*ChaosResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	var res *ChaosResult
	var runErr error
	clk := vclock.New()
	clk.Run(func() {
		before := netem.LivePackets()
		tb, err := New(clk, Options{
			WithDocker:     true,
			WithFarEdge:    true,
			NetChaos:       &chaos,
			ResyncInterval: 5 * time.Second,
			HoldTimeout:    2 * time.Second,
			SwitchFlowIdle: 10 * time.Minute,
			MemoryIdle:     10 * time.Minute,
			Seed:           seed,
		})
		if err != nil {
			runErr = err
			return
		}
		handles, err := tb.RegisterMany(svc, cfg.HotServices)
		if err != nil {
			runErr = err
			return
		}
		tb.ApplyNetChaos()
		tr := trace.Generate(cfg)
		totals, errs := tb.replayTraceClassified(tr, handles)

		r := &ChaosResult{Requests: len(tr.Requests), Totals: totals}
		for _, e := range errs {
			switch {
			case e == nil:
				r.Completed++
			case classified(e):
				r.Failed++
			default:
				r.Unclassified++
			}
		}

		// Drain: let retransmission backoffs and fault windows expire
		// (the longest SYN retry ladder spans ~63 s of virtual time),
		// then run one audit and measure the residual divergence.
		tb.Clock.Sleep(90 * time.Second)
		tb.Controller.ResyncNow()
		r.ConvergeDelta = tb.Controller.AuditDiff(tb.Switch)
		if tb.SwitchB != nil {
			r.ConvergeDelta += tb.Controller.AuditDiff(tb.SwitchB)
		}
		r.Converged = r.ConvergeDelta == 0
		r.LeakedPackets = netem.LivePackets() - before
		r.Stats = tb.Controller.Stats()
		res = r
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
