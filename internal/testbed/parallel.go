package testbed

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunParallel evaluates run(i) for every i in [0, n) across a pool of
// worker goroutines and returns the results in index order, so output
// built from them is byte-identical to a sequential loop regardless of
// worker count. workers <= 0 sizes the pool by GOMAXPROCS; workers == 1
// degenerates to an in-order sequential run through the same code path.
//
// Each invocation must be self-contained — in this package every Run*
// experiment builds its own Virtual clock and testbed, which makes
// replications embarrassingly parallel across OS threads. If any
// invocation fails, the error of the lowest index is returned (again
// independent of scheduling); results of successful invocations are
// still filled in.
func RunParallel[T any](n, workers int, run func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = run(i)
		}
		return results, firstError(errs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
