package testbed

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// loadFingerprint reduces a LoadResult to its deterministic fields —
// everything except wall time.
func loadFingerprint(t *testing.T, res *LoadResult) []int64 {
	t.Helper()
	fp := []int64{
		int64(res.Arrivals),
		int64(res.Punts),
		res.Dispatch.Count(),
		int64(res.Dispatch.Median()),
		int64(res.Dispatch.Percentile(99)),
		int64(res.VirtualDuration),
		res.Stats.PacketIns,
		res.Stats.MemoryHits,
		res.Stats.ScheduleCalls,
		res.Stats.FlowsInstalled,
		res.Stats.CloudForwards,
		res.DroppedReplies,
	}
	for _, n := range res.ServiceArrivals {
		fp = append(fp, int64(n))
	}
	return fp
}

// TestLoadDeterminism runs the same config twice: every deterministic
// field must be identical (wall time is the only run-dependent output).
func TestLoadDeterminism(t *testing.T) {
	cfg := LoadConfig{Flows: 1500, Rate: 3000, Seed: 7}
	a, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := loadFingerprint(t, a), loadFingerprint(t, b)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fingerprint[%d] differs across identical runs: %d vs %d\n%v\n%v", i, fa[i], fb[i], fa, fb)
		}
	}
}

// TestLoadSchedulerDifferential runs the load engine under the timing
// wheel and under the binary heap: the schedulers must be observably
// interchangeable at whole-experiment granularity.
func TestLoadSchedulerDifferential(t *testing.T) {
	cfg := LoadConfig{Flows: 1500, Rate: 3000, Seed: 3}
	run := func(kind vclock.SchedulerKind) []int64 {
		prev := vclock.SetDefaultScheduler(kind)
		defer vclock.SetDefaultScheduler(prev)
		res, err := RunLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return loadFingerprint(t, res)
	}
	wheel := run(vclock.SchedulerWheel)
	heap := run(vclock.SchedulerHeap)
	for i := range wheel {
		if wheel[i] != heap[i] {
			t.Fatalf("fingerprint[%d] differs across schedulers: wheel %d, heap %d\nwheel %v\nheap  %v",
				i, wheel[i], heap[i], wheel, heap)
		}
	}
}

// TestLoadRegimes checks the run exercises all three dispatch regimes:
// a cold punt per flow, in-switch forwarding for fast revisits, and
// FlowMemory hits for revisits after the switch flow idled out. The
// short SwitchFlowIdle forces the third regime inside a small run.
func TestLoadRegimes(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Flows:          2000,
		Rate:           4000,
		SwitchFlowIdle: 200 * time.Millisecond,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 4000 {
		t.Fatalf("arrivals = %d, want 4000", res.Arrivals)
	}
	// Every flow's debut punts; some revisits punt again after their
	// switch flow expired, and those must be FlowMemory hits, not
	// re-dispatches of known flows.
	if res.Punts <= 2000 {
		t.Fatalf("punts = %d, want > flows (2000): expiry-driven re-punts missing", res.Punts)
	}
	if res.Stats.MemoryHits == 0 {
		t.Fatal("no FlowMemory hits: revisit regime not reached")
	}
	// Every packet-in is a memory hit, a dispatch, or a concurrent
	// duplicate the controller deduplicated (a revisit punting while the
	// same flow's earlier punt is still in flight) — never anything else.
	if got := res.Stats.MemoryHits + res.Stats.ScheduleCalls; got > res.Stats.PacketIns {
		t.Fatalf("memory hits (%d) + dispatches (%d) = %d > packet-ins (%d)",
			res.Stats.MemoryHits, res.Stats.ScheduleCalls, got, res.Stats.PacketIns)
	} else if dedups := res.Stats.PacketIns - got; dedups > res.Stats.PacketIns/10 {
		t.Fatalf("%d of %d packet-ins deduplicated: too many to be the in-flight race", dedups, res.Stats.PacketIns)
	}
	if res.Stats.CloudForwards != 0 {
		t.Fatalf("cloud forwards = %d, want 0 (every service pre-deployed)", res.Stats.CloudForwards)
	}
	if res.Dispatch.Count() != int64(res.Punts) {
		t.Fatalf("dispatch samples = %d, want = punts (%d)", res.Dispatch.Count(), res.Punts)
	}
	if res.PeakHeap == 0 {
		t.Fatal("peak heap not sampled")
	}
	// Replies to synthetic sources must terminate at the injection host:
	// one RST per arrival, except deduplicated punts (their held packet
	// is dropped, never forwarded) — no loops, no leaks.
	dedups := res.Stats.PacketIns - res.Stats.MemoryHits - res.Stats.ScheduleCalls
	if want := int64(res.Arrivals) - dedups; res.DroppedReplies != want {
		t.Fatalf("dropped replies = %d, want %d (arrivals %d - dedups %d)",
			res.DroppedReplies, want, res.Arrivals, dedups)
	}
	// The Zipf assignment must actually skew: rank 0 strictly most
	// popular.
	for i := 1; i < len(res.ServiceArrivals); i++ {
		if res.ServiceArrivals[0] <= res.ServiceArrivals[i] {
			t.Fatalf("service 0 (%d arrivals) not the Zipf mode: service %d has %d",
				res.ServiceArrivals[0], i, res.ServiceArrivals[i])
		}
	}
}
