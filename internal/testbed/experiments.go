package testbed

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/timecurl"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// ExperimentDefaults mirror the paper's setup: 42 services receive
// their first requests following the bigFlows deployment distribution.
const (
	// DefaultDeployments is the number of deployments per test run
	// ("We scaled up 42 instances for each test").
	DefaultDeployments = 42
	// DefaultWarmRequests samples the warm path (Fig. 16).
	DefaultWarmRequests = 100
)

// PhaseResult is the outcome of one scale-up / create+scale-up run:
// client-visible totals plus the controller's per-phase timings.
type PhaseResult struct {
	ServiceKey  string
	ClusterName string
	// Totals is the client time_total of each first request
	// (Figs. 11/12).
	Totals *metrics.Series
	// Waits is the controller's wait-until-ready per deployment
	// (Figs. 14/15).
	Waits *metrics.Series
	// Creates and Pulls are the respective phase durations (only
	// populated when the phase ran).
	Creates *metrics.Series
	Pulls   *metrics.Series
	// DeploySeconds bins completed deployments per second (Fig. 10
	// as actually executed).
	DeploySeconds []int
	Errors        int
}

// clusterNameFor maps a cluster kind to the testbed cluster name.
func clusterNameFor(kind cluster.Kind) string {
	if kind == cluster.Kubernetes {
		return "edge-k8s"
	}
	return "edge-docker"
}

// optionsFor builds single-cluster testbed options for a kind.
func optionsFor(kind cluster.Kind, seed int64) Options {
	return Options{
		WithDocker: kind == cluster.Docker,
		WithKube:   kind == cluster.Kubernetes,
		Seed:       seed,
		MemoryIdle: time.Hour, // keep memory out of the measurements
	}
}

// RunScaleUp reproduces one cell of Fig. 11 (and Fig. 14): images
// cached, services created; the first client request triggers the
// Scale Up phase on demand and the total time is measured end to end.
func RunScaleUp(serviceKey string, kind cluster.Kind, n int, seed int64) (*PhaseResult, error) {
	return runPhaseExperiment(serviceKey, kind, n, seed, true)
}

// RunCreateScaleUp reproduces one cell of Fig. 12 (and Fig. 15):
// images cached but services not yet created — the Create phase adds
// its ≈100 ms to the first request.
func RunCreateScaleUp(serviceKey string, kind cluster.Kind, n int, seed int64) (*PhaseResult, error) {
	return runPhaseExperiment(serviceKey, kind, n, seed, false)
}

func runPhaseExperiment(serviceKey string, kind cluster.Kind, n int, seed int64, preCreate bool) (*PhaseResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	res := &PhaseResult{
		ServiceKey:  serviceKey,
		ClusterName: clusterNameFor(kind),
		Totals:      metrics.NewSeries("time_total"),
		Waits:       metrics.NewSeries("wait"),
		Creates:     metrics.NewSeries("create"),
		Pulls:       metrics.NewSeries("pull"),
	}
	var mu sync.Mutex
	var runErr error

	clk := vclock.New()
	clk.Run(func() {
		opts := optionsFor(kind, seed)
		start := clk.Now()
		opts.OnDeploy = func(tr core.DeployTrace) {
			mu.Lock()
			defer mu.Unlock()
			if tr.Err != nil {
				res.Errors++
				return
			}
			res.Waits.Add(tr.Wait)
			if tr.Create > 0 {
				res.Creates.Add(tr.Create)
			}
			if tr.Pull > 0 {
				res.Pulls.Add(tr.Pull)
			}
			sec := int(clk.Since(start) / time.Second)
			for len(res.DeploySeconds) <= sec {
				res.DeploySeconds = append(res.DeploySeconds, 0)
			}
			res.DeploySeconds[sec]++
		}
		tb, err := New(clk, opts)
		if err != nil {
			runErr = err
			return
		}
		handles, err := tb.RegisterMany(svc, n)
		if err != nil {
			runErr = err
			return
		}
		name := clusterNameFor(kind)
		// Pull phase done beforehand: the image store is shared, so one
		// pull warms every service of the run.
		if err := tb.PrePull(handles[0], name); err != nil {
			runErr = err
			return
		}
		if preCreate {
			for _, h := range handles {
				if err := tb.PreCreate(h, name); err != nil {
					runErr = err
					return
				}
			}
			// Let the Kubernetes controller chain settle before the
			// measured phase begins.
			clk.Sleep(3 * time.Second)
		}
		tr := trace.Generate(deployTrace(n, seed))
		replay := tb.ReplayFirstRequests(tr, handles)
		res.Errors += replay.Errors
		for _, d := range replay.Totals.Samples() {
			res.Totals.Add(d)
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// deployTrace builds a workload whose first occurrences drive n
// deployments with the bigFlows-like burst.
func deployTrace(n int, seed int64) trace.Config {
	cfg := trace.DefaultBigFlows()
	cfg.HotServices = n
	if cfg.TotalRequests < n*cfg.MinPerService {
		cfg.TotalRequests = n * cfg.MinPerService
	}
	cfg.Seed = seed
	return cfg
}

// PullResult is one Fig. 13 cell: pull times for a service's images
// from one registry.
type PullResult struct {
	ServiceKey string
	Registry   string
	Times      *metrics.Series
}

// RunPull measures the Pull phase (registry download + unpack) onto the
// EGS from the image's home registry (Docker Hub / GCR) or the private
// registry — Fig. 13. Each sample starts from a cold store.
func RunPull(serviceKey string, private bool, n int, seed int64) (*PullResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	regName := "Docker Hub"
	if svc.RegistryHost == catalog.RegistryGCR {
		regName = "GCR"
	}
	if private {
		regName = "private"
	}
	res := &PullResult{ServiceKey: serviceKey, Registry: regName, Times: metrics.NewSeries("pull")}

	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		hub := registry.New(clk, seed+1, registry.DockerHub())
		gcr := registry.New(clk, seed+2, registry.GCR())
		priv := registry.New(clk, seed+3, registry.Private())
		catalog.PushAll(hub, gcr)
		catalog.PushAllTo(priv)
		var remote registry.Remote = &registry.Federation{
			Default: hub,
			Routes:  map[string]registry.Remote{"gcr.io/": gcr},
		}
		if private {
			remote = priv
		}
		for i := 0; i < n; i++ {
			store := containerd.NewStore(clk, seed+10+int64(i), containerd.DefaultTiming())
			start := clk.Now()
			for _, im := range svc.Images {
				if _, err := store.Pull(remote, im.Ref); err != nil {
					runErr = err
					return
				}
			}
			res.Times.Add(clk.Since(start))
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// WarmResult is one Fig. 16 cell: request totals with the instance
// already running.
type WarmResult struct {
	ServiceKey  string
	ClusterName string
	Totals      *metrics.Series
}

// RunWarm measures client requests once the service instance is up and
// running on the cluster — Fig. 16.
func RunWarm(serviceKey string, kind cluster.Kind, requests int, seed int64) (*WarmResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	res := &WarmResult{
		ServiceKey:  serviceKey,
		ClusterName: clusterNameFor(kind),
		Totals:      metrics.NewSeries("time_total"),
	}
	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		tb, err := New(clk, optionsFor(kind, seed))
		if err != nil {
			runErr = err
			return
		}
		h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(0))
		if err != nil {
			runErr = err
			return
		}
		if err := tb.PrePull(h, res.ClusterName); err != nil {
			runErr = err
			return
		}
		if _, err := tb.Controller.PreDeploy(h.Addr, res.ClusterName); err != nil {
			runErr = err
			return
		}
		// One unmeasured warm-up request installs the redirect flows;
		// the measured requests then see the steady state the figure
		// reports (instance running, flows in the switch).
		if _, err := tb.Request(0, h); err != nil {
			runErr = err
			return
		}
		for i := 0; i < requests; i++ {
			r, err := tb.Request(0, h)
			if err != nil {
				runErr = err
				return
			}
			res.Totals.Add(r.Total)
			clk.Sleep(500 * time.Millisecond) // spaced-out warm requests
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// WorkloadResult carries the Fig. 9 / Fig. 10 series, recovered from a
// synthesized pcap capture exactly as the paper filters bigFlows.pcap.
type WorkloadResult struct {
	Trace             *trace.Trace
	RequestsPerSec    []int
	DeploymentsPerSec []int
}

// RunWorkload builds the synthetic bigFlows capture, applies the
// paper's extraction (TCP conversations → port 80 → ≥20 requests), and
// returns the Fig. 9/10 distributions.
func RunWorkload(cfg trace.Config) (*WorkloadResult, error) {
	generated := trace.Generate(cfg)
	var buf bytes.Buffer
	if err := generated.WritePcap(&buf, vclock.Epoch); err != nil {
		return nil, err
	}
	recovered, err := trace.FromPcap(&buf, cfg.Duration, cfg.MinPerService)
	if err != nil {
		return nil, err
	}
	return &WorkloadResult{
		Trace:             recovered,
		RequestsPerSec:    recovered.RequestsPerSecond(),
		DeploymentsPerSec: recovered.DeploymentsPerSecond(),
	}, nil
}

// TableI renders the service catalog exactly like the paper's Table I.
func TableI() *metrics.Table {
	t := metrics.NewTable("Table I — Edge services used in this work",
		"Service", "Image(s)", "Size", "Layers", "Containers", "HTTP")
	for _, s := range catalog.Services() {
		refs := ""
		for i, im := range s.Images {
			if i > 0 {
				refs += " + "
			}
			refs += im.Ref
		}
		t.AddRow(s.DisplayName, refs, fmtBytes(s.TotalImageBytes()),
			fmt.Sprintf("%d", s.TotalLayers()), fmt.Sprintf("%d", s.Containers), s.HTTPMethod)
	}
	return t
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.0f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// AccessOverheadResult quantifies the transparent-access mechanism
// itself — the focus of the original 2019 paper: what the SDN
// redirection costs on top of a plain network path, per dispatch case.
type AccessOverheadResult struct {
	// Direct is the baseline: the client talks to the instance address
	// without any switch programming.
	Direct *metrics.Series
	// WarmFlow rides installed redirect flows (zero controller
	// involvement).
	WarmFlow *metrics.Series
	// MemoryHit pays one packet-in answered from the FlowMemory.
	MemoryHit *metrics.Series
	// ColdDispatch pays packet-in + candidate gathering + Global
	// Scheduler, with the instance already running.
	ColdDispatch *metrics.Series
}

// RunAccessOverhead measures the three dispatch cases against a running
// instance, plus the no-SDN baseline.
func RunAccessOverhead(serviceKey string, samples int, seed int64) (*AccessOverheadResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	res := &AccessOverheadResult{
		Direct:       metrics.NewSeries("direct"),
		WarmFlow:     metrics.NewSeries("warm-flow"),
		MemoryHit:    metrics.NewSeries("memory-hit"),
		ColdDispatch: metrics.NewSeries("cold-dispatch"),
	}
	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		tb, err := New(clk, Options{
			WithDocker:     true,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     time.Hour,
			Seed:           seed,
		})
		if err != nil {
			runErr = err
			return
		}
		h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(0))
		if err != nil {
			runErr = err
			return
		}
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			runErr = err
			return
		}
		inst, err := tb.Controller.PreDeploy(h.Addr, "edge-docker")
		if err != nil {
			runErr = err
			return
		}

		measure := func(client int, target netem.HostPort) (time.Duration, error) {
			r, err := timecurl.Do(clk, tb.Client(client), timecurl.Request{
				Target:      target,
				Method:      h.Catalog.HTTPMethod,
				PayloadSize: h.Catalog.RequestPayload,
			})
			return r.Total, err
		}

		for i := 0; i < samples; i++ {
			// Baseline: straight to the instance, no interception. A
			// different client measures it — the redirect flows of the
			// SDN client would (correctly) rewrite responses from the
			// instance back to the registered address.
			d, err := measure(1, inst.Addr)
			if err != nil {
				runErr = err
				return
			}
			res.Direct.Add(d)

			// Cold dispatch: drop memory + flows so the packet-in runs
			// the full pipeline of Fig. 7 (instance already running).
			tb.Controller.FlowMemory().Forget(trace.ClientAddr(0), h.Addr)
			clk.Sleep(5 * time.Second) // switch flows idle out
			d, err = measure(0, h.Addr)
			if err != nil {
				runErr = err
				return
			}
			res.ColdDispatch.Add(d)

			// Warm flows: immediately again.
			d, err = measure(0, h.Addr)
			if err != nil {
				runErr = err
				return
			}
			res.WarmFlow.Add(d)

			// Memory hit: let the switch flows expire but keep memory.
			clk.Sleep(5 * time.Second)
			d, err = measure(0, h.Addr)
			if err != nil {
				runErr = err
				return
			}
			res.MemoryHit.Add(d)
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// TraceReplayResult is the full end-to-end replay: all requests of the
// workload against a live testbed.
type TraceReplayResult struct {
	ServiceKey  string
	ClusterName string
	Totals      *metrics.Series
	Stats       core.Stats
}

// RunTraceReplay replays the complete request trace (default: 1708
// requests to 42 services over five minutes) against one cluster kind
// with on-demand deployment — the paper's overall scenario.
func RunTraceReplay(serviceKey string, kind cluster.Kind, cfg trace.Config, seed int64) (*TraceReplayResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	res := &TraceReplayResult{ServiceKey: serviceKey, ClusterName: clusterNameFor(kind)}
	clk := vclock.New()
	var runErr error
	clk.Run(func() {
		tb, err := New(clk, optionsFor(kind, seed))
		if err != nil {
			runErr = err
			return
		}
		handles, err := tb.RegisterMany(svc, cfg.HotServices)
		if err != nil {
			runErr = err
			return
		}
		if err := tb.PrePull(handles[0], res.ClusterName); err != nil {
			runErr = err
			return
		}
		tr := trace.Generate(cfg)
		res.Totals, _ = tb.ReplayTrace(tr, handles)
		res.Stats = tb.Controller.Stats()
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
