package testbed

import (
	"strings"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func mustService(t *testing.T, key string) catalog.Service {
	t.Helper()
	s, err := catalog.ByKey(key)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func build(t *testing.T, clk vclock.Clock, opts Options) *Testbed {
	t.Helper()
	tb, err := New(clk, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestOnDemandWithWaitingDockerUnderOneSecond(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 7})
		h, err := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		// Image cached, service created: the pure Scale-Up case of Fig 11.
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			t.Fatal(err)
		}
		if err := tb.PreCreate(h, "edge-docker"); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("first request: %v", err)
		}
		// Paper: "the waiting time for the initial request ... can be as
		// low as 0.5 seconds" for nginx on Docker.
		if res.Total < 300*time.Millisecond || res.Total >= time.Second {
			t.Errorf("first-request total = %v, want ≈0.5s (<1s)", res.Total)
		}
		if !strings.Contains(string(res.Response), "nginx") {
			t.Errorf("response = %q", res.Response[:20])
		}
		stats := tb.Controller.Stats()
		if stats.DeploysWaiting != 1 || stats.ScaleUps != 1 {
			t.Errorf("stats = %+v, want one waiting deployment", stats)
		}
		if stats.Pulls != 0 || stats.Creates != 0 {
			t.Errorf("stats = %+v; pre-pulled/created service re-ran phases", stats)
		}

		// The second request rides the installed flows: ≈ milliseconds,
		// no new packet-in.
		before := tb.Controller.Stats().PacketIns
		res2, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Total > 20*time.Millisecond {
			t.Errorf("warm request = %v, want ≈ms", res2.Total)
		}
		if tb.Controller.Stats().PacketIns != before {
			t.Error("second request caused a packet-in despite installed flow")
		}
	})
}

func TestOnDemandKubernetesAroundThreeSeconds(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithKube: true, Seed: 8})
		h, err := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		tb.PrePull(h, "edge-k8s")
		tb.PreCreate(h, "edge-k8s")
		clk.Sleep(2 * time.Second) // let the create settle
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("first request via k8s: %v", err)
		}
		// Paper: "around three seconds" for the same container on K8s.
		if res.Total < 1500*time.Millisecond || res.Total > 5*time.Second {
			t.Errorf("k8s first request = %v, want ≈3s", res.Total)
		}
	})
}

func TestTransparencyClientSeesCloudAddress(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 9})
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(3))
		tb.PrePull(h, "edge-docker")
		// The client dials the registered cloud address and the edge
		// answers — netem would drop mismatched responses, so a correct
		// reply proves both rewrite directions work.
		client := tb.Client(2)
		conn, err := client.Dial(h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if conn.RemoteAddr() != h.Addr {
			t.Errorf("client sees %v, want the registered address %v", conn.RemoteAddr(), h.Addr)
		}
		conn.Send([]byte("GET /"))
		resp, err := conn.Recv()
		if err != nil || !strings.HasPrefix(string(resp), "asmttpd") {
			t.Errorf("resp = %q, %v", resp, err)
		}
		// The instance really runs at the edge, not the cloud.
		if len(tb.Docker.Instances(h.Svc.Name)) != 1 {
			t.Error("no edge instance running")
		}
	})
}

func TestWithoutWaitingServesFromFarEdgeThenMigrates(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, WithFarEdge: true, Seed: 10})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		tb.PrePull(h, "edge-far")
		// An instance already runs in the farther edge (Fig. 3).
		if _, err := tb.Controller.PreDeploy(h.Addr, "edge-far"); err != nil {
			t.Fatal(err)
		}
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		// Served by the far instance immediately: tens of ms, not the
		// ≈0.5s a local deployment would take.
		if res.Total > 150*time.Millisecond {
			t.Errorf("first request = %v, want fast redirect to the far edge", res.Total)
		}
		stats := tb.Controller.Stats()
		if stats.DeploysNoWait != 1 {
			t.Errorf("stats = %+v, want one no-wait deployment", stats)
		}
		// The optimal edge deployment proceeds in parallel.
		deadline := clk.Now().Add(30 * time.Second)
		for len(tb.Docker.Instances(h.Svc.Name)) == 0 {
			if clk.Now().After(deadline) {
				t.Fatal("optimal edge never got its instance")
			}
			clk.Sleep(100 * time.Millisecond)
		}
		// Once the near instance runs and the stale memory is dropped, a
		// new client is redirected to the optimal edge.
		clk.Sleep(time.Second)
		res2, err := tb.Request(5, h)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Total > 50*time.Millisecond {
			t.Errorf("post-migration request = %v, want near-edge latency", res2.Total)
		}
	})
}

func TestWaitNeverForwardsToCloudWhileDeploying(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Wait: core.WaitNever, Seed: 11})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		// First request goes to the cloud origin: ≈2×25ms WAN RTT but
		// far below any deployment time.
		if res.Total > 400*time.Millisecond {
			t.Errorf("cloud-served first request = %v", res.Total)
		}
		stats := tb.Controller.Stats()
		if stats.CloudForwards != 1 || stats.DeploysNoWait != 1 {
			t.Errorf("stats = %+v, want cloud forward + background deploy", stats)
		}
		deadline := clk.Now().Add(30 * time.Second)
		for len(tb.Docker.Instances(h.Svc.Name)) == 0 {
			if clk.Now().After(deadline) {
				t.Fatal("background deployment never finished")
			}
			clk.Sleep(100 * time.Millisecond)
		}
	})
}

func TestFlowMemoryHitSkipsScheduler(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{
			WithDocker:     true,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     5 * time.Minute,
			Seed:           12,
		})
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		s1 := tb.Controller.Stats()
		// Wait for the switch flow to idle out, then request again: the
		// packet-in is answered from the FlowMemory without scheduling.
		clk.Sleep(10 * time.Second)
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		s2 := tb.Controller.Stats()
		if s2.PacketIns <= s1.PacketIns {
			t.Error("expected a packet-in after flow expiry")
		}
		if s2.MemoryHits != s1.MemoryHits+1 {
			t.Errorf("memory hits %d → %d, want +1", s1.MemoryHits, s2.MemoryHits)
		}
		if s2.ScheduleCalls != s1.ScheduleCalls {
			t.Errorf("scheduler consulted on memory hit (%d → %d)", s1.ScheduleCalls, s2.ScheduleCalls)
		}
		if s2.FlowRemovedMsgs == 0 {
			t.Error("no FlowRemoved notifications reached the controller")
		}
	})
}

func TestIdleScaleDownAndRedeploy(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{
			WithDocker:     true,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     10 * time.Second,
			ScaleDownIdle:  true,
			Seed:           13,
		})
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		if len(tb.Docker.Instances(h.Svc.Name)) != 1 {
			t.Fatal("no instance after first request")
		}
		// Idle long enough for flow + memory expiry → scale-down.
		clk.Sleep(time.Minute)
		if got := len(tb.Docker.Instances(h.Svc.Name)); got != 0 {
			t.Fatalf("idle instance still running (%d)", got)
		}
		if tb.Controller.Stats().ScaleDowns != 1 {
			t.Errorf("scale downs = %d, want 1", tb.Controller.Stats().ScaleDowns)
		}
		// The next request redeploys on demand (scale-up only: the
		// containers still exist).
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("redeploy request: %v", err)
		}
		if res.Total >= time.Second {
			t.Errorf("redeploy took %v, want <1s (containers already created)", res.Total)
		}
		if len(tb.Docker.Instances(h.Svc.Name)) != 1 {
			t.Error("no instance after redeploy")
		}
	})
}

func TestColdPullDominatesFirstRequest(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 14})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		// No pre-pull: the full Pull → Create → Scale Up pipeline runs.
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total < 2*time.Second {
			t.Errorf("cold first request = %v; pull time missing", res.Total)
		}
		stats := tb.Controller.Stats()
		if stats.Pulls != 1 || stats.Creates != 1 || stats.ScaleUps != 1 {
			t.Errorf("stats = %+v, want all three phases", stats)
		}
	})
}

func TestMultiContainerNginxPyOnDemand(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 15})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginxpy"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total >= 1500*time.Millisecond {
			t.Errorf("two-container first request = %v", res.Total)
		}
		// A beat later the page carries the env-writer's live content.
		clk.Sleep(2 * time.Second)
		res2, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(res2.Response), "env-writer tick") {
			t.Errorf("page = %q; sidecar volume not wired through", res2.Response)
		}
	})
}

func TestUnregisteredTrafficFlowsNormally(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 16})
		// Register one service so the switch has punt rules, then talk
		// to a *different* origin: traffic must pass through untouched.
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		other, err := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(1))
		if err != nil {
			t.Fatal(err)
		}
		_ = h
		// Talk to the nginx origin's address on a port that is NOT
		// registered: no punt rule, NORMAL forwarding to the cloud.
		stats0 := tb.Controller.Stats()
		if _, err := tb.Client(0).DialTimeout(trace.ServiceAddr(1), 5*time.Second); err == nil {
			// Port 80 IS registered for service 1; use the origin with a
			// closed port instead to check pure routing.
			_ = other
		}
		if tb.Controller.Stats().PacketIns < stats0.PacketIns {
			t.Error("stats went backwards")
		}
	})
}

func TestCloudOnlySchedulerBaseline(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, GlobalScheduler: core.SchedulerCloudOnly, Seed: 17})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		// Everything goes to the cloud; nothing is deployed.
		if res.Total > 400*time.Millisecond {
			t.Errorf("cloud-only request = %v", res.Total)
		}
		if len(tb.Docker.Instances(h.Svc.Name)) != 0 {
			t.Error("cloud-only scheduler deployed an instance")
		}
		if tb.Controller.Stats().CloudForwards != 1 {
			t.Errorf("stats = %+v", tb.Controller.Stats())
		}
	})
}

func TestDeployTraceHookReportsPhases(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		var traces []core.DeployTrace
		tb := build(t, clk, Options{
			WithDocker: true,
			OnDeploy:   func(tr core.DeployTrace) { traces = append(traces, tr) },
			Seed:       18,
		})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		if len(traces) != 1 {
			t.Fatalf("deploy traces = %d, want 1", len(traces))
		}
		tr := traces[0]
		if tr.Err != nil {
			t.Fatalf("deploy failed: %v", tr.Err)
		}
		if tr.Pull <= 0 || tr.Create <= 0 || tr.Wait <= 0 {
			t.Errorf("phase durations = %+v, want all positive on cold path", tr)
		}
		if tr.Total < tr.Pull+tr.Create+tr.ScaleUp {
			t.Errorf("total %v < sum of phases", tr.Total)
		}
		// The pull dominates a cold nginx deployment.
		if tr.Pull < tr.Wait {
			t.Errorf("pull (%v) should dominate wait (%v) for a cold 135MiB image", tr.Pull, tr.Wait)
		}
	})
}

func TestConcurrentFirstRequestsCoalesceDeployment(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 19})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		var g vclock.Group
		errs := make([]error, 8)
		for i := 0; i < 8; i++ {
			i := i
			g.Go(clk, func() {
				_, errs[i] = tb.Request(i, h)
			})
		}
		g.Wait(clk)
		for i, err := range errs {
			if err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}
		stats := tb.Controller.Stats()
		if stats.ScaleUps != 1 {
			t.Errorf("scale ups = %d, want 1 (deployments must coalesce)", stats.ScaleUps)
		}
		if stats.Creates != 1 {
			t.Errorf("creates = %d, want 1", stats.Creates)
		}
	})
}
