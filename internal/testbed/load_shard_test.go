package testbed

import (
	"testing"
	"time"
)

// TestShardServicesPartition checks the deterministic balanced service
// assignment: every service owned, owners in range, shards=1 all zero,
// and the most popular service alone on its shard when shards permit.
func TestShardServicesPartition(t *testing.T) {
	if got := shardServices(8, 1.1, 1); len(got) != 8 {
		t.Fatalf("len = %d, want 8", len(got))
	} else {
		for si, s := range got {
			if s != 0 {
				t.Fatalf("shards=1: service %d on shard %d", si, s)
			}
		}
	}
	owner := shardServices(8, 1.1, 4)
	counts := make([]int, 4)
	for si, s := range owner {
		if s < 0 || s >= 4 {
			t.Fatalf("service %d assigned to shard %d", si, s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d owns no services", s)
		}
	}
	// Zipf rank 0 is ~40% of the load at s=1.1: the LPT greedy must not
	// pair it with another service while an emptier shard exists.
	if counts[owner[0]] != 1 {
		t.Errorf("most popular service shares shard %d with %d others",
			owner[0], counts[owner[0]]-1)
	}
	// Determinism: the assignment is a pure function of the config.
	again := shardServices(8, 1.1, 4)
	for si := range owner {
		if owner[si] != again[si] {
			t.Fatalf("assignment not deterministic at service %d", si)
		}
	}
}

// TestShardFingerprintInvariance is the tentpole's correctness gate:
// one load run, sharded {1,2,4,8} ways across three seeds, must produce
// identical LoadResult fingerprints — every deterministic field of the
// merged result is byte-identical to the sequential run.
func TestShardFingerprintInvariance(t *testing.T) {
	cfg := LoadConfig{Flows: 1500, Rate: 5000}
	for _, seed := range []int64{1, 2, 3} {
		cfg.Seed = seed
		cfg.Shards = 1
		base, err := RunLoad(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := base.Fingerprint()
		for _, n := range []int{2, 4, 8} {
			cfg.Shards = n
			r, err := RunLoad(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Fingerprint(); got != want {
				t.Errorf("seed=%d shards=%d fingerprint %s, want %s\nseq:   %+v\nshard: %+v",
					seed, n, got, want, base.Stats, r.Stats)
			}
		}
	}
}

// TestShardMergeInvariants checks the merged result's internal
// relations — the same ones TestLoadRegimes asserts of a sequential
// run — hold after the shard merge, on a config that reaches the
// memory-hit regime.
func TestShardMergeInvariants(t *testing.T) {
	res, err := RunLoad(LoadConfig{
		Flows: 2500, Rate: 2500, Shards: 4, Seed: 7,
		SwitchFlowIdle: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Punts <= res.Config.Flows {
		t.Errorf("punts = %d, want > %d (revisit punts missing)", res.Punts, res.Config.Flows)
	}
	if res.Stats.MemoryHits == 0 {
		t.Error("no memory hits after merge")
	}
	if got := int64(res.Dispatch.Count()); got != int64(res.Punts) {
		t.Errorf("dispatch samples = %d, punts = %d", got, res.Punts)
	}
	arrivals := 0
	for _, n := range res.ServiceArrivals {
		arrivals += n
	}
	if arrivals != res.Arrivals {
		t.Errorf("per-service arrivals sum to %d, want %d", arrivals, res.Arrivals)
	}
	if res.PeakHeap == 0 {
		t.Error("PeakHeap not sampled")
	}
	if res.Config.Shards != 4 {
		t.Errorf("merged result echoes Shards = %d, want 4", res.Config.Shards)
	}
}

// TestShardRaceStress is the -race exercise: a small sharded run with
// every shard's replica, clock, and merge running concurrently. The
// assertions are minimal — the value of the test is the race detector
// sweeping the ShardGroup, per-shard clocks, and merge path.
func TestShardRaceStress(t *testing.T) {
	res, err := RunLoad(LoadConfig{Flows: 800, Rate: 8000, Shards: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Punts == 0 {
		t.Error("no punts recorded")
	}
}
