package testbed

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// RegisterCatalogService registers one catalog service under the given
// public address: the controller annotates its definition and installs
// the intercept rule, and a cloud origin serving the same application
// is brought up behind the WAN so the "perceived cloud" of Fig. 1
// really exists.
func (tb *Testbed) RegisterCatalogService(svc catalog.Service, addr netem.HostPort) (*ServiceHandle, error) {
	coreSvc, err := tb.Controller.RegisterService(addr, svc.Definition)
	if err != nil {
		return nil, err
	}
	if err := tb.startOrigin(svc, addr); err != nil {
		return nil, err
	}
	tb.Cloud.SetInstance(coreSvc.Name, addr)
	h := &ServiceHandle{Svc: coreSvc, Addr: addr, Catalog: svc}
	tb.services = append(tb.services, h)
	return h, nil
}

// RegisterMany registers n services of one catalog type at the standard
// trace addresses (203.0.113.x:80) — "a single service type per test
// run" (§VI).
func (tb *Testbed) RegisterMany(svc catalog.Service, n int) ([]*ServiceHandle, error) {
	handles := make([]*ServiceHandle, 0, n)
	for i := 0; i < n; i++ {
		h, err := tb.RegisterCatalogService(svc, trace.ServiceAddr(i))
		if err != nil {
			return nil, err
		}
		handles = append(handles, h)
	}
	return handles, nil
}

// startOrigin runs the service natively on a cloud host with the
// registered public address.
func (tb *Testbed) startOrigin(svc catalog.Service, addr netem.HostPort) error {
	tb.nextOrigin++
	host := tb.Net.NewHost(fmt.Sprintf("origin-%03d", tb.nextOrigin), addr.IP)
	port := tb.cloudRouter.Port(tb.nextOrigin)
	tb.Net.Connect(host.NIC(), port, netem.LinkConfig{
		Latency:   2 * time.Millisecond,
		Bandwidth: netem.GbpsToBytes(1),
	})
	tb.cloudRouter.AddRoute(host.IP(), port)

	// Instantiate the application natively (no container): the origin
	// has been running in the cloud all along.
	vols := map[string]*containerd.Volume{}
	for _, v := range originVolumes(svc) {
		vols[v] = containerd.NewVolume(host.Name() + "/" + v)
	}
	var serving *containerd.AppModel
	var instances []containerd.AppInstance
	for _, im := range svc.Images {
		model, err := catalog.CombinedResolver{}.Resolve(im.Ref)
		if err != nil {
			return err
		}
		inst := model.Instantiate(vols)
		instances = append(instances, inst)
		if model.Port != 0 && serving == nil {
			m := model
			serving = &m
		}
	}
	if serving == nil {
		return fmt.Errorf("testbed: service %s has no serving container", svc.Key)
	}
	stop := vclock.NewGate() // origins run for the whole simulation
	var handler containerd.Handler
	for _, inst := range instances {
		if inst.Background != nil {
			bg := inst.Background
			tb.Clock.Go(func() { bg(tb.Clock, stop) })
		}
		if inst.Handler != nil && handler == nil {
			handler = inst.Handler
		}
	}
	ln, err := host.Listen(addr.Port)
	if err != nil {
		return err
	}
	tb.Clock.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h := handler
			tb.Clock.Go(func() {
				defer conn.Close()
				for {
					req, err := conn.Recv()
					if err != nil {
						return
					}
					if err := conn.Send(h.Serve(tb.Clock, req)); err != nil {
						return
					}
				}
			})
		}
	})
	return nil
}

// originVolumes returns the volume names a service's containers share.
func originVolumes(svc catalog.Service) []string {
	if svc.Key == "nginxpy" {
		return []string{"www"}
	}
	return nil
}
