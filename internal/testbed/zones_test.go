package testbed

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestDistributedDeploymentPerZone is the "distributed" half of the
// paper's title: clients behind different gNBs request the same
// registered service, and the one controller deploys an instance in
// each zone's optimal edge — zone-A clients get the EGS, zone-B clients
// get their own near edge.
func TestDistributedDeploymentPerZone(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, TwoZones: true, Seed: 60})
		h, err := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		tb.PrePull(h, "edge-docker")
		tb.PrePull(h, "edge-zoneb")

		// Zone A first request → deployed at the EGS.
		resA, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("zone A request: %v", err)
		}
		if len(tb.Docker.Instances(h.Svc.Name)) != 1 {
			t.Fatal("zone A deployment missing at the EGS")
		}
		if len(tb.ZoneB.Instances(h.Svc.Name)) != 0 {
			t.Fatal("zone B instance appeared without any zone B request")
		}

		// Zone B first request: proximity is evaluated from gNB-2, so
		// the zone A instance is "another edge further away" — it serves
		// the request immediately (Fig. 3, without waiting) while the
		// controller deploys at zone B's own edge in the background.
		resB, err := tb.RequestFromZoneB(0, h)
		if err != nil {
			t.Fatalf("zone B request: %v", err)
		}
		if resB.Total >= 200*time.Millisecond {
			t.Errorf("zone B first request = %v; should be served by the running zone A instance", resB.Total)
		}
		deadline := clk.Now().Add(30 * time.Second)
		for len(tb.ZoneB.Instances(h.Svc.Name)) == 0 {
			if clk.Now().After(deadline) {
				t.Fatal("zone B background deployment never finished")
			}
			clk.Sleep(100 * time.Millisecond)
		}
		if resA.Total >= time.Second {
			t.Errorf("zone A first request = %v", resA.Total)
		}

		// Once the zone B instance runs and the old flows idle out, zone
		// B clients are redirected to their own edge — no trunk detour.
		clk.Sleep(15 * time.Second) // switch flows (10s idle) expire
		warmA, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		warmB, err := tb.RequestFromZoneB(0, h)
		if err != nil {
			t.Fatal(err)
		}
		// Both are re-dispatches (packet-in); what matters is that zone
		// B's path stays local: a detour via the trunk costs ≥ 20 ms
		// extra in round trips.
		if warmB.Total > warmA.Total+15*time.Millisecond {
			t.Errorf("zone B request %v detours outside its zone (zone A %v)", warmB.Total, warmA.Total)
		}
		// And the immediate repeats ride local flows at ≈ms.
		repA, _ := tb.Request(0, h)
		repB, _ := tb.RequestFromZoneB(0, h)
		if repA.Total > 20*time.Millisecond || repB.Total > 20*time.Millisecond {
			t.Errorf("warm repeats = %v / %v, want ≈ms", repA.Total, repB.Total)
		}
	})
}

// TestClientLocationTracking verifies the Dispatcher's location record.
func TestClientLocationTracking(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, TwoZones: true, Seed: 61})
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		tb.PrePull(h, "edge-zoneb")

		if _, ok := tb.Controller.ClientLocation(trace.ClientAddr(0)); ok {
			t.Error("location known before any packet-in")
		}
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		if _, err := tb.RequestFromZoneB(0, h); err != nil {
			t.Fatal(err)
		}
		locA, ok := tb.Controller.ClientLocation(trace.ClientAddr(0))
		if !ok || locA.Switch != "ovs" {
			t.Errorf("zone A client location = %+v, %v", locA, ok)
		}
		locB, ok := tb.Controller.ClientLocation(netem.ParseIP("192.168.2.10"))
		if !ok || locB.Switch != "gnb2" {
			t.Errorf("zone B client location = %+v, %v", locB, ok)
		}
		if locA.LastSeen.IsZero() || locB.InPort == 0 {
			t.Errorf("location details incomplete: %+v / %+v", locA, locB)
		}
	})
}

// TestZoneBPuntRulesInstalled checks that registration programs every
// managed switch.
func TestZoneBPuntRulesInstalled(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, TwoZones: true, Seed: 62})
		if _, err := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0)); err != nil {
			t.Fatal(err)
		}
		if len(tb.Switch.Flows()) != 1 {
			t.Errorf("main gNB flows = %d, want 1 punt rule", len(tb.Switch.Flows()))
		}
		if len(tb.SwitchB.Flows()) != 1 {
			t.Errorf("second gNB flows = %d, want 1 punt rule", len(tb.SwitchB.Flows()))
		}
	})
}
