package testbed

import (
	"strings"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/trace"
)

// The experiment tests assert the *shape* of every published result:
// orderings, ratios, and crossovers rather than absolute numbers.

func TestTableIRendering(t *testing.T) {
	out := TableI().String()
	for _, want := range []string{"Asm", "Nginx", "ResNet", "Nginx+Py",
		"6.18 KiB", "135 MiB", "308 MiB", "181 MiB", "POST"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestFig9And10Workload(t *testing.T) {
	res, err := RunWorkload(trace.DefaultBigFlows())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 9: 1708 requests to 42 services over five minutes.
	if got := res.Trace.TotalRequests(); got != 1708 {
		t.Errorf("requests = %d, want 1708", got)
	}
	if got := len(res.Trace.Counts); got != 42 {
		t.Errorf("services = %d, want 42", got)
	}
	sum := 0
	for _, n := range res.RequestsPerSec {
		sum += n
	}
	if sum != 1708 {
		t.Errorf("requests/s histogram sums to %d", sum)
	}
	// Fig. 10: 42 deployments with a burst at the start (paper: up to
	// eight per second in the beginning).
	total := 0
	burst := 0
	for _, n := range res.DeploymentsPerSec {
		total += n
		if n > burst {
			burst = n
		}
	}
	if total != 42 {
		t.Errorf("deployments = %d, want 42", total)
	}
	if burst < 2 {
		t.Errorf("max deployments/s = %d, want a visible burst", burst)
	}
}

func TestFig11ScaleUpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure replication is slow")
	}
	n := 12 // scaled-down replication: shape is invariant in n
	docker := map[string]time.Duration{}
	kube := map[string]time.Duration{}
	for _, key := range []string{"asm", "nginx", "resnet", "nginxpy"} {
		d, err := RunScaleUp(key, cluster.Docker, n, 100)
		if err != nil {
			t.Fatalf("%s docker: %v", key, err)
		}
		if d.Errors > 0 {
			t.Fatalf("%s docker: %d errors", key, d.Errors)
		}
		docker[key] = d.Totals.Median()
		k, err := RunScaleUp(key, cluster.Kubernetes, n, 100)
		if err != nil {
			t.Fatalf("%s k8s: %v", key, err)
		}
		if k.Errors > 0 {
			t.Fatalf("%s k8s: %d errors", key, k.Errors)
		}
		kube[key] = k.Totals.Median()
	}
	// Docker below one second for the small services.
	for _, key := range []string{"asm", "nginx", "nginxpy"} {
		if docker[key] >= time.Second {
			t.Errorf("docker %s scale-up median = %v, want <1s", key, docker[key])
		}
	}
	// Kubernetes around three seconds for the same containers.
	for _, key := range []string{"asm", "nginx"} {
		if kube[key] < 1500*time.Millisecond || kube[key] > 4500*time.Millisecond {
			t.Errorf("k8s %s scale-up median = %v, want ≈3s", key, kube[key])
		}
		if kube[key] < 2*docker[key] {
			t.Errorf("k8s %s (%v) not ≫ docker (%v)", key, kube[key], docker[key])
		}
	}
	// No notable difference between the tiny Assembler server and the
	// far larger Nginx ("interestingly, there is no notable
	// difference").
	ratio := float64(docker["nginx"]) / float64(docker["asm"])
	if ratio < 0.7 || ratio > 1.5 {
		t.Errorf("docker nginx/asm ratio = %.2f, want ≈1 (size-independent start)", ratio)
	}
	// ResNet is the slowest everywhere.
	if docker["resnet"] <= docker["nginx"] || kube["resnet"] <= kube["nginx"] {
		t.Errorf("resnet (%v docker / %v k8s) not slowest (nginx %v / %v)",
			docker["resnet"], kube["resnet"], docker["nginx"], kube["nginx"])
	}
}

func TestFig12CreateOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure replication is slow")
	}
	n := 12
	for _, key := range []string{"nginx", "asm"} {
		up, err := RunScaleUp(key, cluster.Docker, n, 200)
		if err != nil {
			t.Fatal(err)
		}
		both, err := RunCreateScaleUp(key, cluster.Docker, n, 200)
		if err != nil {
			t.Fatal(err)
		}
		delta := both.Totals.Median() - up.Totals.Median()
		// "Creating the containers adds around 100 ms."
		if delta < 30*time.Millisecond || delta > 300*time.Millisecond {
			t.Errorf("%s create overhead = %v, want ≈100ms", key, delta)
		}
		if both.Creates.Len() == 0 {
			t.Errorf("%s: create phase never measured", key)
		}
	}
	// ResNet shows no visible overhead: its jittered startup dwarfs the
	// create cost.
	up, err := RunScaleUp("resnet", cluster.Docker, n, 201)
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunCreateScaleUp("resnet", cluster.Docker, n, 201)
	if err != nil {
		t.Fatal(err)
	}
	delta := both.Totals.Median() - up.Totals.Median()
	if delta > 500*time.Millisecond {
		t.Errorf("resnet create overhead = %v; should disappear in startup noise", delta)
	}
}

func TestFig13PullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure replication is slow")
	}
	n := 10
	med := map[string]time.Duration{}
	for _, key := range []string{"asm", "nginx", "resnet", "nginxpy"} {
		pub, err := RunPull(key, false, n, 300)
		if err != nil {
			t.Fatal(err)
		}
		priv, err := RunPull(key, true, n, 300)
		if err != nil {
			t.Fatal(err)
		}
		med[key] = pub.Times.Median()
		saved := pub.Times.Median() - priv.Times.Median()
		// "Pull times improve by about 1.5 to 2 seconds" from the
		// private registry.
		if key != "asm" && (saved < 800*time.Millisecond || saved > 4*time.Second) {
			t.Errorf("%s: private registry saves %v, want ≈1.5–2s", key, saved)
		}
		if saved <= 0 {
			t.Errorf("%s: private registry slower than WAN", key)
		}
	}
	// The minuscule Assembler image shines in the Pull phase.
	if med["asm"] >= med["nginx"]/2 {
		t.Errorf("asm pull %v not ≪ nginx pull %v", med["asm"], med["nginx"])
	}
	// Pull time grows with size: nginx < nginxpy < resnet.
	if !(med["nginx"] < med["nginxpy"] && med["nginxpy"] < med["resnet"]) {
		t.Errorf("pull ordering wrong: nginx=%v nginxpy=%v resnet=%v",
			med["nginx"], med["nginxpy"], med["resnet"])
	}
}

func TestFig14WaitShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure replication is slow")
	}
	n := 12
	resnet, err := RunScaleUp("resnet", cluster.Docker, n, 400)
	if err != nil {
		t.Fatal(err)
	}
	nginx, err := RunScaleUp("nginx", cluster.Docker, n, 400)
	if err != nil {
		t.Fatal(err)
	}
	// "The waiting time alone accounts for more than a fourth of the
	// total time" for ResNet.
	if w, tot := resnet.Waits.Median(), resnet.Totals.Median(); w*4 < tot {
		t.Errorf("resnet wait %v not > ¼ of total %v", w, tot)
	}
	if resnet.Waits.Median() <= nginx.Waits.Median() {
		t.Errorf("resnet wait %v not above nginx wait %v", resnet.Waits.Median(), nginx.Waits.Median())
	}
}

func TestFig16WarmShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-figure replication is slow")
	}
	n := 30
	warm := map[string]map[cluster.Kind]time.Duration{}
	for _, key := range []string{"asm", "nginx", "resnet"} {
		warm[key] = map[cluster.Kind]time.Duration{}
		for _, kind := range []cluster.Kind{cluster.Docker, cluster.Kubernetes} {
			r, err := RunWarm(key, kind, n, 500)
			if err != nil {
				t.Fatalf("%s %s: %v", key, kind, err)
			}
			warm[key][kind] = r.Totals.Median()
		}
	}
	// Short-response services answer in about a millisecond; no notable
	// difference between the clusters.
	for _, key := range []string{"asm", "nginx"} {
		for kind, med := range warm[key] {
			if med > 20*time.Millisecond {
				t.Errorf("%s on %s warm median = %v, want ≈ms", key, kind, med)
			}
		}
		ratio := float64(warm[key][cluster.Docker]) / float64(warm[key][cluster.Kubernetes])
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%s docker/k8s warm ratio = %.2f, want ≈1", key, ratio)
		}
	}
	// The heavyweight classification service requires significantly
	// longer.
	for _, kind := range []cluster.Kind{cluster.Docker, cluster.Kubernetes} {
		if warm["resnet"][kind] < 10*warm["nginx"][kind] {
			t.Errorf("resnet warm (%v) not ≫ nginx warm (%v) on %s",
				warm["resnet"][kind], warm["nginx"][kind], kind)
		}
	}
}

func TestAccessOverheadOrdering(t *testing.T) {
	res, err := RunAccessOverhead("asm", 10, 700)
	if err != nil {
		t.Fatal(err)
	}
	direct := res.Direct.Median()
	warm := res.WarmFlow.Median()
	memory := res.MemoryHit.Median()
	cold := res.ColdDispatch.Median()
	// Transparent redirection over installed flows costs essentially
	// nothing on top of a direct path — the 2019 paper's core claim.
	if warm > direct*2 {
		t.Errorf("warm flows %v ≫ direct %v; rewriting is not cheap", warm, direct)
	}
	// A memory hit pays one controller round trip but skips scheduling;
	// a cold dispatch pays the full Fig. 7 pipeline.
	if !(warm < memory && memory < cold) {
		t.Errorf("ordering broken: warm=%v memory=%v cold=%v", warm, memory, cold)
	}
	// Even the cold dispatch is far below any deployment time.
	if cold > 200*time.Millisecond {
		t.Errorf("cold dispatch = %v; should be tens of ms", cold)
	}
}

func TestTraceReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-trace replication is slow")
	}
	cfg := trace.DefaultBigFlows()
	cfg.HotServices = 10
	cfg.TotalRequests = 400
	res, err := RunTraceReplay("nginx", cluster.Docker, cfg, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.Len() < 390 {
		t.Errorf("only %d/400 requests succeeded", res.Totals.Len())
	}
	// Ten deployments, one per service; the rest ride installed flows.
	if res.Stats.ScaleUps != 10 {
		t.Errorf("scale ups = %d, want 10", res.Stats.ScaleUps)
	}
	// The long tail (first requests) is deployment-bound; the median
	// request is warm and fast.
	if med := res.Totals.Median(); med > 50*time.Millisecond {
		t.Errorf("median request = %v, want warm-path ms", med)
	}
	if p99 := res.Totals.Percentile(99); p99 < 200*time.Millisecond {
		t.Errorf("p99 = %v; the deployment tail is missing", p99)
	}
}
