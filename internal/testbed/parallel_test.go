package testbed

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/metrics"
)

func TestRunParallelOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		got, err := RunParallel(10, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 10 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	got, err := RunParallel(0, 4, func(i int) (int, error) {
		t.Fatal("run called for n=0")
		return 0, nil
	})
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestRunParallelLowestIndexError(t *testing.T) {
	// Multiple invocations fail; the reported error must be the lowest
	// failing index regardless of scheduling, so error output is as
	// deterministic as success output.
	for _, workers := range []int{1, 4} {
		_, err := RunParallel(20, workers, func(i int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: err = %v, want task 3 failed", workers, err)
		}
	}
}

func TestRunParallelUsesWorkers(t *testing.T) {
	// With 4 workers and tasks that block until all 4 are running, the
	// run can only complete if invocations genuinely overlap.
	var inFlight atomic.Int32
	done := make(chan struct{})
	_, err := RunParallel(4, 4, func(i int) (int, error) {
		if inFlight.Add(1) == 4 {
			close(done)
		}
		select {
		case <-done:
			return i, nil
		case <-time.After(10 * time.Second):
			return 0, errors.New("workers did not overlap")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterminism is the guard for the -parallel flag: one
// experiment replicated sequentially and through a multi-worker pool
// must produce byte-identical formatted medians. Each replication owns
// its Virtual clock and RNG, so worker count must not leak into results.
func TestParallelDeterminism(t *testing.T) {
	kinds := []cluster.Kind{cluster.Docker, cluster.Kubernetes}
	run := func(workers int) []string {
		res, err := RunParallel(len(kinds)*2, workers, func(i int) (*PhaseResult, error) {
			return RunScaleUp("nginx", kinds[i/2], 3, int64(42+i%2))
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res))
		for i, r := range res {
			out[i] = metrics.FmtMS(r.Totals.Median()) + "/" + metrics.FmtMS(r.Waits.Median())
		}
		return out
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("replication %d: sequential %q != parallel %q", i, seq[i], par[i])
		}
	}
}
