package testbed

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/pcap"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestTransparencyVisibleOnTheWire captures the emulated traffic of one
// transparently redirected request and verifies, frame by frame, what
// Fig. 2 promises: on the client side every packet names the registered
// cloud address, while behind the switch the same conversation runs
// against the edge instance.
func TestTransparencyVisibleOnTheWire(t *testing.T) {
	var buf bytes.Buffer
	lc := pcap.NewLiveCapture(&buf)

	var svcAddr, instAddr, clientIP netem.HostPort
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 21})
		h, err := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		tb.PrePull(h, "edge-docker")
		tb.Net.SetCapture(lc.Tap)
		defer tb.Net.SetCapture(nil)
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		insts := tb.Docker.Instances(h.Svc.Name)
		if len(insts) != 1 {
			t.Fatal("no instance")
		}
		svcAddr = h.Addr
		instAddr = insts[0].Addr
		clientIP = netem.HostPort{IP: trace.ClientAddr(0)}
	})
	if lc.Err() != nil || lc.Packets() == 0 {
		t.Fatalf("capture: %d packets, err=%v", lc.Packets(), lc.Err())
	}

	var toRegistered, toInstance, fromInstance, fromRegistered bool
	r := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	for {
		_, frame, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seg, err := pcap.DecodeTCP(frame)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case seg.Src.IP == clientIP.IP && seg.Dst == svcAddr:
			toRegistered = true // client side, pre-rewrite
		case seg.Src.IP == clientIP.IP && seg.Dst == instAddr:
			toInstance = true // edge side, post-rewrite
		case seg.Src == instAddr && seg.Dst.IP == clientIP.IP:
			fromInstance = true // edge side, pre-rewrite
		case seg.Src == svcAddr && seg.Dst.IP == clientIP.IP:
			fromRegistered = true // client side, rewritten back
		}
	}
	if !toRegistered || !toInstance || !fromInstance || !fromRegistered {
		t.Errorf("rewrite evidence incomplete: →registered=%v →instance=%v instance→=%v registered→=%v",
			toRegistered, toInstance, fromInstance, fromRegistered)
	}
}
