package testbed

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// chaosTraceConfig is the reduced workload of faultTraceConfig: 12
// services, 480 requests over 3 minutes — long enough that every
// default chaos window (flaps to 70 s, router crash to 48 s, switch
// restart at 55 s, channel faults to 90 s) sits inside live traffic.
func chaosTraceConfig() trace.Config {
	return faultTraceConfig()
}

// TestChaosInvariants runs the default chaos scenario on three seeds.
// Acceptance for each: every request completes or fails with a
// classified transport error, no pooled packet leaks, and the flow
// tables converge to the controller's desired state after one
// post-chaos audit.
func TestChaosInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		res, err := RunChaos("nginx", chaosTraceConfig(), DefaultChaosConfig(seed), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Unclassified != 0 {
			t.Errorf("seed %d: %d of %d requests failed unclassified",
				seed, res.Unclassified, res.Requests)
		}
		if res.LeakedPackets != 0 {
			t.Errorf("seed %d: %d pooled packets leaked", seed, res.LeakedPackets)
		}
		if !res.Converged {
			t.Errorf("seed %d: flow tables did not converge (residual diff %d)",
				seed, res.ConvergeDelta)
		}
		// The scenario really bit: control-channel drops happened and the
		// reconciler had repairs to make.
		if res.Stats.ChannelDrops == 0 {
			t.Errorf("seed %d: no control-channel messages dropped", seed)
		}
		if res.Stats.ResyncRuns == 0 {
			t.Errorf("seed %d: reconciler never ran", seed)
		}
		if res.Stats.ReinstalledFlows == 0 {
			t.Errorf("seed %d: reconciler never repaired a flow", seed)
		}
	}
}

// TestChaosDeterminism replays one seed twice: identical outcomes and
// controller counters are required — chaos schedules are precomputed
// from the seed, so runs are exactly reproducible.
//
// Three counters are masked before comparing, all fed by same-instant
// racing windows (the clock wakes one goroutine per advance, but a
// goroutine that opens a gate or sends on a mailbox makes another
// runnable alongside it): whether an audit snapshot sees a flow whose
// install completes at the same virtual instant decides "already
// present" vs "reinstalled"/"orphan", and whether a retransmitted SYN
// beats its redirect rule to the switch by a hair decides if a punt —
// and hence one packet-in loss roll — happens at all. All such races
// are behavior-neutral (repairs are idempotent, retransmission absorbs
// the punt), so everything else must match exactly.
func TestChaosDeterminism(t *testing.T) {
	a, err := RunChaos("nginx", chaosTraceConfig(), DefaultChaosConfig(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos("nginx", chaosTraceConfig(), DefaultChaosConfig(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	maskRaced := func(s core.Stats) core.Stats {
		s.ReinstalledFlows = 0
		s.OrphanFlowsRemoved = 0
		s.ChannelDrops = 0
		return s
	}
	if maskRaced(a.Stats) != maskRaced(b.Stats) {
		t.Errorf("controller stats diverged:\n  %+v\n  %+v", a.Stats, b.Stats)
	}
	if a.Completed != b.Completed || a.Failed != b.Failed || a.Unclassified != b.Unclassified {
		t.Errorf("request outcomes diverged: %d/%d/%d vs %d/%d/%d",
			a.Completed, a.Failed, a.Unclassified, b.Completed, b.Failed, b.Unclassified)
	}
}

// randomChaosConfig derives an arbitrary chaos schedule from a seed:
// random flap window, loss rates, router crash, and switch restart,
// all ending before the 3-minute trace does.
func randomChaosConfig(seed int64) faultinject.NetworkConfig {
	rng := vclock.NewRand(seed * 7919)
	cfg := faultinject.NetworkConfig{
		Seed:            seed,
		FlapStart:       10*time.Second + time.Duration(rng.Float64()*float64(20*time.Second)),
		MeanUp:          2*time.Second + time.Duration(rng.Float64()*float64(4*time.Second)),
		MeanDown:        time.Duration(100+rng.Float64()*400) * time.Millisecond,
		FlapLinks:       2 + int(rng.Float64()*3),
		PacketInLoss:    rng.Float64() * 0.10,
		FlowModLoss:     rng.Float64() * 0.15,
		FlowRemovedLoss: rng.Float64() * 0.30,
		PacketOutLoss:   rng.Float64() * 0.10,
		ReorderRate:     rng.Float64() * 0.20,
		CtrlExtraDelay:  time.Duration(rng.Float64() * float64(4*time.Millisecond)),
		FaultsEnd:       80 * time.Second,
	}
	cfg.FlapEnd = cfg.FlapStart + 20*time.Second + time.Duration(rng.Float64()*float64(20*time.Second))
	if rng.Float64() < 0.7 {
		start := 30*time.Second + time.Duration(rng.Float64()*float64(20*time.Second))
		cfg.RouterCrashes = []faultinject.Window{{Start: start, End: start + 5*time.Second}}
	}
	if rng.Float64() < 0.7 {
		cfg.SwitchRestarts = []time.Duration{
			40*time.Second + time.Duration(rng.Float64()*float64(20*time.Second)),
		}
	}
	return cfg
}

// TestChaosConvergenceProperty is the property-style check: whatever
// seeded random chaos schedule runs, once it ends the switch tables
// always converge to the FlowMemory-derived desired state within one
// audit interval, with nothing leaked and nothing unclassified.
func TestChaosConvergenceProperty(t *testing.T) {
	cfg := chaosTraceConfig()
	cfg.TotalRequests = 240
	cfg.HotServices = 8
	for _, seed := range []int64{11, 23, 42} {
		res, err := RunChaos("nginx", cfg, randomChaosConfig(seed), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Errorf("seed %d: residual table diff %d after post-chaos audit",
				seed, res.ConvergeDelta)
		}
		if res.LeakedPackets != 0 {
			t.Errorf("seed %d: %d pooled packets leaked", seed, res.LeakedPackets)
		}
		if res.Unclassified != 0 {
			t.Errorf("seed %d: %d unclassified failures", seed, res.Unclassified)
		}
	}
}
