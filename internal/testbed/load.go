package testbed

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// LoadConfig sizes the open-loop load experiment: an arrival process
// injected straight into the ingress switch, exercising the intercept →
// punt → dispatch → flow-install pipeline (and the scheduler's timer
// population behind it) at flow counts no per-client goroutine swarm
// could reach.
type LoadConfig struct {
	// ServiceKey is the catalog service every registered service runs
	// (default nginx — the paper's single-service-type-per-run setup).
	ServiceKey string
	// Flows is the number of distinct synthetic client flows (default
	// 20000). Each flow gets its own CGNAT source address, its own
	// FlowMemory entry, and its own pair of switch flows with idle
	// timers.
	Flows int
	// Rate is the mean arrival rate in flows-per-second of the Poisson
	// process (default 5000/s, so a default run outlives SwitchFlowIdle
	// and the revisit phase reaches the memory-hit regime). Open loop:
	// arrival instants are drawn from the exponential inter-arrival
	// distribution and never slowed by the system under test.
	Rate float64
	// Revisits is the mean number of extra arrivals per flow after its
	// first (default 1.0). Revisits land after the cold phase, when
	// early switch flows have idled out but the FlowMemory still holds
	// the mapping — the memory-hit regime.
	Revisits float64
	// Services spreads the flows over this many registered services
	// (default 8), assigned per flow by a Zipf draw over service rank.
	Services int
	// ZipfS is the Zipf exponent of the service popularity distribution
	// (default 1.1; larger = more skew toward service 0).
	ZipfS float64
	// SwitchFlowIdle / MemoryIdle override the controller timeouts
	// (defaults 2s / 5min) — together with Rate they set how many idle
	// timers stay pending, which is the timer-wheel's workload.
	SwitchFlowIdle time.Duration
	MemoryIdle     time.Duration
	// Seed drives the arrival process and the service assignment.
	Seed int64
	// Shards splits the run across this many cores (default 1 =
	// sequential). The partition is by service: each shard replays the
	// identical arrival schedule on its own clock and testbed replica
	// but injects only the flows of the services assigned to it (a
	// deterministic balanced assignment over the Zipf popularity
	// weights — see shardServices). Per-shard results merge exactly:
	// every deterministic field of the LoadResult is byte-identical to
	// the sequential run (see Fingerprint).
	//
	// Services — not flows — are the finest partition that preserves
	// the run exactly, because the controller's candidate-snapshot
	// cache is keyed per service: a dispatch's virtual cost depends on
	// whether an earlier arrival of the same service warmed the cache,
	// so all of a service's arrivals must replay on one clock. Distinct
	// services never exchange virtual time (RunLoad pins the Docker API
	// jitter, the one cross-service coupling), so the partition has no
	// cross-shard edges and the conservative engine runs in its
	// infinite-lookahead degenerate mode: no barriers at all.
	Shards int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.ServiceKey == "" {
		c.ServiceKey = "nginx"
	}
	if c.Flows <= 0 {
		c.Flows = 20000
	}
	if c.Rate <= 0 {
		c.Rate = 5000
	}
	if c.Revisits < 0 {
		c.Revisits = 0
	} else if c.Revisits == 0 {
		c.Revisits = 1
	}
	if c.Services <= 0 {
		c.Services = 8
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.SwitchFlowIdle <= 0 {
		c.SwitchFlowIdle = 2 * time.Second
	}
	if c.MemoryIdle <= 0 {
		c.MemoryIdle = 5 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	return c
}

// LoadResult is the outcome of one open-loop run. Everything except
// Wall is deterministic for a given config.
type LoadResult struct {
	Config LoadConfig
	// Arrivals is the number of packets injected:
	// Flows × (1 + Revisits).
	Arrivals int
	// Punts counts arrivals that reached the controller (no switch flow
	// matched) and were answered with a PacketOut; Dispatch holds their
	// punt-to-release latencies in a streaming histogram, so the
	// latency-recording memory is a fixed ~29 KiB however many arrivals
	// the run injects (quantiles carry the histogram's documented ≤1/64
	// relative bin error; exact Series remain the backend for the
	// paper-figure experiments).
	Punts    int
	Dispatch *metrics.Hist
	// VirtualDuration is the simulated span of the arrival process.
	VirtualDuration time.Duration
	// Wall is the host time the injection loop took — throughput
	// reporting only, never part of deterministic output.
	Wall time.Duration
	// Stats is the controller's accounting after the run has settled.
	Stats core.Stats
	// ServiceArrivals is the per-service arrival count (the realized
	// Zipf popularity).
	ServiceArrivals []int
	// DroppedReplies counts reply segments (RSTs to synthetic flow
	// addresses) absorbed by the injection host — the expected fate of
	// every reply, since synthetic flows have no TCP state.
	DroppedReplies int64
	// PeakHeap is the largest live-heap size (runtime.MemStats.HeapAlloc)
	// sampled during the injection loop — the scale regression signal.
	// Host- and GC-dependent: reported on stderr, never part of the
	// deterministic output.
	PeakHeap uint64
}

// loadFlowBase is the first synthetic client address: the CGNAT block
// 100.64.0.0/10, disjoint from every real testbed host so flow sources
// can never collide with clients, infrastructure, or service addresses.
var loadFlowBase = netem.ParseIP("100.64.0.0")

// loadFlowMask is the CGNAT block's /10 network mask: one range route
// covers every synthetic source the engine can ever mint.
var loadFlowMask = netem.ParseIP("255.192.0.0")

// loadInjectPort is the switch port synthetic flow addresses route to.
// Routing the flows matters: the main switch default-routes unknown
// destinations to the cloud uplink and the cloud router default-routes
// them back, so a reply to an unrouted synthetic address would
// ping-pong on that link forever. The whole block is routed by a single
// range entry — a per-flow host route would cost a map entry and a
// microflow-cache-invalidating epoch bump per debut, which at millions
// of flows is exactly the kind of measurement overhead this engine
// exists to avoid.
const loadInjectPort = 1

// loadHeapSampleEvery is the injection-loop interval between
// runtime.MemStats peak-heap samples. ReadMemStats stops the world, so
// it must stay far off the per-arrival path.
const loadHeapSampleEvery = 1 << 16

// RunLoad drives the open-loop Poisson/Zipf arrival process against a
// pre-deployed testbed. Per-flow state is two flat arrays (service
// assignment and arrival counts) — no goroutine, connection, or timer
// per client on the generator side; the single generator goroutine
// walks the arrival schedule and injects bare segments directly into
// the ingress switch. Each first arrival punts, dispatches, and
// installs a redirect pair whose idle timers (plus the FlowMemory
// expiry) are exactly the pending-timer population the hierarchical
// timing wheel exists to serve.
//
// With Shards > 1 the run is split across cores (see LoadConfig.Shards
// and mergeLoadResults); every deterministic field of the result is
// identical to the sequential run.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Shards > 1 {
		return runLoadSharded(cfg)
	}
	res := newLoadResult(cfg)
	clk := vclock.New()
	var runErr error
	wallStart := time.Now()
	clk.Run(func() {
		runErr = runLoadShard(clk, cfg, 0, 1, res)
	})
	if runErr != nil {
		return nil, runErr
	}
	res.Wall = time.Since(wallStart)
	return res, nil
}

func newLoadResult(cfg LoadConfig) *LoadResult {
	return &LoadResult{
		Config:          cfg,
		Dispatch:        metrics.NewHist("punt-dispatch"),
		ServiceArrivals: make([]int, cfg.Services),
	}
}

// shardServices deterministically assigns services to shards, balancing
// the expected arrival load: a longest-processing-time greedy over the
// Zipf popularity weights (services arrive in rank order, which is
// decreasing-weight order). The assignment is a pure function of the
// config, so every shard — and the sequential reference run — computes
// the identical partition.
func shardServices(services int, zipfS float64, shards int) []int {
	owner := make([]int, services)
	if shards <= 1 {
		return owner
	}
	cdf := zipfCDF(services, zipfS)
	load := make([]float64, shards)
	for si := 0; si < services; si++ {
		w := cdf[si]
		if si > 0 {
			w -= cdf[si-1]
		}
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		owner[si] = best
		load[best] += w
	}
	return owner
}

// runLoadShard is one shard's share of a load run: a full testbed
// replica on its own clock, replaying the whole arrival schedule but
// injecting only the flows of the services this shard owns (shard 0 of
// 1 is the sequential run). The shared rng stream is consumed
// identically on every shard — gap, revisit, and service draws included
// — so arrival instants and service assignments are the sequential ones
// regardless of the partition; only the injections are filtered.
// Services are mutually independent in this workload (per-flow CGNAT
// sources, switch entries, and FlowMemory rows; a per-service candidate
// cache; constant control-channel and pinned Docker API latencies), so
// each shard's counters and latencies are exactly the sequential run's
// restricted to its services, and summing them reproduces the whole.
func runLoadShard(clk vclock.Clock, cfg LoadConfig, shard, shards int, res *LoadResult) error {
	tb, err := New(clk, Options{
		WithDocker:     true,
		Clients:        2,
		SwitchFlowIdle: cfg.SwitchFlowIdle,
		MemoryIdle:     cfg.MemoryIdle,
		Seed:           cfg.Seed,
		PinAPIJitter:   true,
	})
	if err != nil {
		return err
	}
	svc, err := catalog.ByKey(cfg.ServiceKey)
	if err != nil {
		return err
	}
	handles, err := tb.RegisterMany(svc, cfg.Services)
	if err != nil {
		return err
	}
	// Pre-deploy every service: the experiment measures the
	// transparent-access control plane at scale, not container
	// start-up.
	for _, h := range handles {
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			return err
		}
		if _, err := tb.Controller.PreDeploy(h.Addr, "edge-docker"); err != nil {
			return err
		}
	}

	sw := tb.Switch
	inPort := sw.Port(loadInjectPort)
	rng := vclock.NewRand(cfg.Seed + 97)
	// O(1) per-draw service assignment: the CDF-aligned alias table
	// (binary-search inversion as the fallback) consumes one uniform
	// per draw, same stream and same rank as the old CDF scan.
	smp := newZipfSampler(zipfCDF(cfg.Services, cfg.ZipfS))
	// One range route covers the whole CGNAT flow block.
	sw.AddRouteRange(loadFlowBase, loadFlowMask, loadInjectPort)

	// Compact per-flow state: the service each flow talks to
	// (assigned on first arrival), nothing else. Every shard tracks all
	// flows — assignments must come out of the shared stream in schedule
	// order.
	svcOf := make([]int32, cfg.Flows)
	for i := range svcOf {
		svcOf[i] = -1
	}
	owner := shardServices(cfg.Services, cfg.ZipfS, shards)

	start := clk.Now()
	var mu sync.Mutex
	punts := 0
	// Arrival instants ride inside the packet: the punt clone
	// preserves Seq/Ack, so the hook measures exactly the punted
	// packet's hold time — no per-flow stamp to go stale when an
	// arrival is forwarded in-switch instead.
	sw.SetPacketOutHook(func(pkt *netem.Packet, _ int) {
		sent := time.Duration(uint64(pkt.Seq)<<32 | uint64(pkt.Ack))
		lat := clk.Now().Sub(start) - sent
		mu.Lock()
		punts++
		res.Dispatch.Record(lat)
		mu.Unlock()
	})

	var ms runtime.MemStats
	sampleHeap := func() {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > res.PeakHeap {
			res.PeakHeap = ms.HeapAlloc
		}
	}

	total := cfg.Flows + int(float64(cfg.Flows)*cfg.Revisits+0.5)
	wallStart := time.Now()
	next := start
	for k := 0; k < total; k++ {
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.Rate)
		next = next.Add(gap)
		// Cold phase first (every flow's debut, in order), then
		// uniformly random revisits.
		flow := k
		if flow >= cfg.Flows {
			flow = rng.Intn(cfg.Flows)
		}
		si := svcOf[flow]
		if si < 0 {
			si = int32(smp.pick(rng.Float64()))
			svcOf[flow] = si
		}
		if owner[si] != shard {
			continue
		}
		if d := next.Sub(clk.Now()); d > 0 {
			clk.Sleep(d)
		}
		res.ServiceArrivals[si]++
		ns := uint64(clk.Now().Sub(start))
		pkt := netem.NewPacket()
		pkt.Src = netem.HostPort{IP: loadFlowBase + netem.IP(flow), Port: 40000}
		pkt.Dst = handles[si].Addr
		pkt.ConnID = uint64(flow) + 1
		pkt.Seq = uint32(ns >> 32)
		pkt.Ack = uint32(ns)
		sw.HandlePacket(pkt, inPort)
		if k%loadHeapSampleEvery == 0 {
			sampleHeap()
		}
	}
	res.Arrivals = total
	// Align on the schedule's final arrival instant — a shard whose last
	// owned arrival came earlier must still settle and snapshot at the
	// same global virtual time as every other.
	if d := next.Sub(clk.Now()); d > 0 {
		clk.Sleep(d)
	}
	res.VirtualDuration = clk.Since(start)
	res.Wall = time.Since(wallStart)
	sampleHeap()

	// Settle: let held punts, packet-outs, and reply RSTs drain
	// before snapshotting.
	clk.Sleep(2 * time.Second)
	// One final sample after the drain: short runs (under the sampling
	// interval) would otherwise report only what the k=0 sample saw,
	// before the run allocated anything.
	sampleHeap()
	sw.SetPacketOutHook(nil)
	mu.Lock()
	res.Punts = punts
	mu.Unlock()
	res.Stats = tb.Controller.Stats()
	res.DroppedReplies = tb.Client(0).Dropped()
	return nil
}

// runLoadSharded fans one run out across cfg.Shards replicas under a
// ShardGroup and merges the per-shard results. The service partition
// has no cross-shard edges, so the group runs in its infinite-lookahead
// mode: shards execute fully concurrently, barrier-free, and the merge
// below is the only synchronization point.
func runLoadSharded(cfg LoadConfig) (*LoadResult, error) {
	n := cfg.Shards
	parts := make([]*LoadResult, n)
	errs := make([]error, n)
	g := vclock.NewShardGroup(n)
	wallStart := time.Now()
	g.Run(func(shard int) {
		res := newLoadResult(cfg)
		errs[shard] = runLoadShard(g.Shard(shard), cfg, shard, n, res)
		parts[shard] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := mergeLoadResults(parts)
	res.Wall = time.Since(wallStart)
	return res, nil
}

// mergeLoadResults folds per-shard results into the whole-run result in
// shard order. Counters sum (each shard counted only its own flows),
// histograms merge exactly (Hist.Merge is order-independent), schedule
// facts (Arrivals, VirtualDuration) are asserted equal across shards,
// and host-dependent fields take the maximum (PeakHeap) — Wall is
// overwritten by the caller with the whole fan-out's span.
func mergeLoadResults(parts []*LoadResult) *LoadResult {
	res := parts[0]
	for _, p := range parts[1:] {
		if p.Arrivals != res.Arrivals || p.VirtualDuration != res.VirtualDuration {
			panic(fmt.Sprintf("testbed: shard replay diverged: arrivals %d/%d, span %v/%v",
				p.Arrivals, res.Arrivals, p.VirtualDuration, res.VirtualDuration))
		}
		res.Punts += p.Punts
		res.Dispatch.Merge(p.Dispatch)
		res.Stats = res.Stats.Add(p.Stats)
		res.DroppedReplies += p.DroppedReplies
		for i, a := range p.ServiceArrivals {
			res.ServiceArrivals[i] += a
		}
		if p.PeakHeap > res.PeakHeap {
			res.PeakHeap = p.PeakHeap
		}
	}
	return res
}

// Fingerprint hashes every deterministic field of the result: the
// shard-invariance and determinism gates compare runs by this one
// value. Host-dependent fields (Wall, PeakHeap) are excluded, as is one
// controller counter that is deterministic per run but not
// partition-invariant: FlowRemovedMsgs counts idle evictions whose
// reverse-path instants ride reply RSTs through shared bandwidth-
// limited links, so an eviction landing within a sub-microsecond
// queueing shift of the settle boundary can fall on either side of the
// snapshot. It feeds no figure or printed load metric.
func (r *LoadResult) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	w(int64(r.Arrivals))
	w(int64(r.Punts))
	w(r.Dispatch.Count())
	w(int64(r.Dispatch.Min()))
	w(int64(r.Dispatch.Median()))
	w(int64(r.Dispatch.Percentile(99)))
	w(int64(r.Dispatch.Max()))
	w(int64(r.Dispatch.Mean()))
	w(int64(r.VirtualDuration))
	w(r.Stats.PacketIns)
	w(r.Stats.MemoryHits)
	w(r.Stats.ScheduleCalls)
	w(r.Stats.FlowsInstalled)
	w(r.Stats.CloudForwards)
	w(r.Stats.CandidateHits)
	w(r.Stats.CandidateMisses)
	w(r.DroppedReplies)
	for _, n := range r.ServiceArrivals {
		w(int64(n))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
