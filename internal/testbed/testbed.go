// Package testbed assembles the emulated Carinthian Computing Continuum
// (C³) evaluation environment of Fig. 8: 20 Raspberry Pi clients, the
// OVS switch and SDN controller, the Edge Gateway Server running both a
// Docker "cluster" and a Kubernetes cluster over one shared containerd,
// the upstream registries, and the cloud origins of every registered
// service. All experiments, examples, and benchmarks build on it.
package testbed

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/docker"
	"github.com/c3lab/transparentedge/internal/faas"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/kube"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Options configure the testbed build.
type Options struct {
	// Clients is the number of Raspberry Pi client hosts (default 20).
	Clients int
	// WithDocker / WithKube select the EGS cluster types (default both).
	WithDocker bool
	WithKube   bool
	// KubeNodes is the Kubernetes node count (default 1: the EGS).
	KubeNodes int
	// WithFarEdge adds a second, farther Docker edge cluster — the
	// "another edge" of the without-waiting scenario (Fig. 3).
	WithFarEdge bool
	// WithFaas adds a serverless (WebAssembly) runtime on the EGS — the
	// paper's future-work side-by-side operation.
	WithFaas bool
	// TwoZones adds a second gNB (ingress switch) with its own clients
	// and its own near edge cluster, managed by the same controller:
	// the *distributed* on-demand deployment setting, where the optimal
	// edge depends on which gNB a client is behind.
	TwoZones bool
	// ZoneBClients is the client count behind the second gNB
	// (default 5).
	ZoneBClients int
	// MobileClients adds that many mobile clients (requires TwoZones):
	// hosts that start behind the primary gNB but can re-home to the
	// second one and back with Testbed.RehomeClient — the handover
	// workload. Each mobile client has a home port on the primary
	// switch and a reserved port on gnb2.
	MobileClients int
	// UsePrivateRegistry pulls from a registry on the local network
	// instead of Docker Hub / GCR (the Fig. 13 variant).
	UsePrivateRegistry bool
	// GlobalScheduler names the controller's Global Scheduler
	// (default: proximity).
	GlobalScheduler string
	// Wait is the waiting policy for on-demand deployment.
	Wait core.WaitPolicy
	// MaxWait bounds holding time under WaitBounded.
	MaxWait time.Duration
	// SwitchFlowIdle / MemoryIdle override the controller timeouts.
	SwitchFlowIdle time.Duration
	MemoryIdle     time.Duration
	// ProbeInterval overrides the controller's readiness polling period.
	ProbeInterval time.Duration
	// CandidateTTL overrides the controller's candidate-snapshot cache
	// TTL (zero keeps the default; negative disables the cache).
	CandidateTTL time.Duration
	// PinAPIJitter pins the Docker daemon's API latency to its mean
	// (jitter fraction zero). The load experiment sets it: jitter draws
	// come from the engine's single rng in cross-service call order, the
	// one source of virtual time a service-partitioned run cannot
	// replay; with the draw value unused, per-call latency is identical
	// no matter how the run is sharded.
	PinAPIJitter bool
	// DisableFlowMemory runs the controller without its FlowMemory
	// (ablation).
	DisableFlowMemory bool
	// ScaleDownIdle / RemoveOnIdle enable automatic teardown.
	ScaleDownIdle bool
	RemoveOnIdle  bool
	// ProactiveDeploy brings services up at registration time (Fig. 1).
	ProactiveDeploy bool
	// MigrateOnHandover lets the controller follow mobile clients with
	// their services: after a handover, deploy at the new zone's optimal
	// edge when it differs (live sessions stay on their old instance).
	MigrateOnHandover bool
	// LocalSchedulers maps cluster name → custom Local Scheduler.
	LocalSchedulers map[string]string
	// KubeSchedulers registers custom Local Schedulers (by name) inside
	// the Kubernetes cluster.
	KubeSchedulers map[string]kube.NodePicker
	// OnDeploy taps the controller's per-phase deployment timings.
	OnDeploy func(core.DeployTrace)
	// Faults, when set, wraps every edge cluster and the image registry
	// in a seeded fault-injection plan (the cloud origin stays
	// fault-free: it is the guaranteed fallback).
	Faults *faultinject.Config
	// NetChaos, when set, configures seeded network and control-channel
	// chaos: client access-link flaps, cloud-router crash windows,
	// switch restarts, and OpenFlow channel loss. The schedule is armed
	// by ApplyNetChaos — callers invoke it after service registration so
	// fault offsets line up with trace-replay time.
	NetChaos *faultinject.NetworkConfig
	// ResyncInterval enables the controller's periodic flow-table
	// anti-entropy audit (zero disables it).
	ResyncInterval time.Duration
	// HoldTimeout bounds how long a packet-in may be held awaiting
	// deployment before the request degrades to the cloud path (zero
	// holds indefinitely).
	HoldTimeout time.Duration
	// RetryMax / BreakerThreshold / BreakerCooldown / HealthProbeInterval
	// pass through to the controller's resilience knobs (zero keeps the
	// controller defaults; HealthProbeInterval zero disables the prober).
	RetryMax            int
	BreakerThreshold    int
	BreakerCooldown     time.Duration
	HealthProbeInterval time.Duration
	// DeployTimeout overrides the controller's end-to-end deployment
	// deadline.
	DeployTimeout time.Duration
	// NoFastPath disables the datapath fast path (microflow cache,
	// compiled delivery, segment trains) for A/B verification; outputs
	// must be byte-identical either way.
	NoFastPath bool
	// Seed drives all deterministic jitter.
	Seed int64
}

// DefaultNoFastPath is the process-wide default for Options.NoFastPath,
// set by edgesim's -no-fastpath flag so every testbed an experiment
// builds (including those inside parallel replications) inherits it.
var DefaultNoFastPath bool

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 20
	}
	if !o.WithDocker && !o.WithKube {
		o.WithDocker, o.WithKube = true, true
	}
	if o.KubeNodes <= 0 {
		o.KubeNodes = 1
	}
	if o.ZoneBClients <= 0 {
		o.ZoneBClients = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if DefaultNoFastPath {
		o.NoFastPath = true
	}
	return o
}

// ServiceHandle pairs a registered edge service with its catalog entry.
type ServiceHandle struct {
	Svc     *core.Service
	Addr    netem.HostPort
	Catalog catalog.Service
}

// Testbed is the assembled evaluation environment.
type Testbed struct {
	Opts       Options
	Clock      vclock.Clock
	Net        *netem.Network
	Switch     *openflow.Switch
	Controller *core.Controller
	// Faults is the active fault-injection plan (nil without Faults
	// options).
	Faults *faultinject.Plan
	// NetPlan is the armed network chaos plan (nil until ApplyNetChaos
	// runs with NetChaos options set).
	NetPlan *faultinject.NetworkPlan

	Docker  *cluster.DockerCluster
	Kube    *cluster.KubeCluster
	FarEdge *cluster.DockerCluster
	Faas    *faas.Cluster
	ZoneB   *cluster.DockerCluster // near edge of the second gNB
	SwitchB *openflow.Switch       // the second gNB
	Cloud   *cluster.StaticCluster

	EGS         *netem.Host
	Store       *containerd.Store // the EGS's shared containerd store
	DockerRT    *containerd.Runtime
	KubeRTs     []*containerd.Runtime
	FarEdgeRT   *containerd.Runtime
	ZoneBRT     *containerd.Runtime
	Hub, GCR    *registry.Registry
	Private     *registry.Registry
	clients     []*netem.Host
	clientLinks []*netem.Link
	clientsB    []*netem.Host
	mobiles     []*netem.Host
	// mobilePortA / mobilePortB are each mobile client's home port on
	// the primary switch and reserved port on gnb2; trunkA / trunkB are
	// the inter-gNB trunk ports (zero without TwoZones).
	mobilePortA, mobilePortB []int
	trunkA, trunkB           int
	cloudRouter              *netem.Router
	cloudPort   int
	nextOrigin  int
	services    []*ServiceHandle
}

// ZoneBClient returns client host i behind the second gNB.
func (tb *Testbed) ZoneBClient(i int) *netem.Host { return tb.clientsB[i%len(tb.clientsB)] }

// New builds the testbed. It must run on a clock goroutine
// (inside clk.Run or clk.Go) because construction performs emulated
// control-plane operations.
func New(clk vclock.Clock, opts Options) (*Testbed, error) {
	opts = opts.withDefaults()
	tb := &Testbed{Opts: opts, Clock: clk}
	n := netem.NewNetwork(clk, opts.Seed)
	if opts.NoFastPath {
		n.SetFastPath(false)
	}
	tb.Net = n

	// Registries.
	tb.Hub = registry.New(clk, opts.Seed+1, registry.DockerHub())
	tb.GCR = registry.New(clk, opts.Seed+2, registry.GCR())
	tb.Private = registry.New(clk, opts.Seed+3, registry.Private())
	catalog.PushAll(tb.Hub, tb.GCR)
	catalog.PushAllTo(tb.Private)
	catalog.PushWasm(tb.Hub)
	catalog.PushWasm(tb.Private)

	// The fault plan must exist before the clusters are built:
	// defaultRegistry routes their pulls through it.
	if opts.Faults != nil {
		tb.Faults = faultinject.NewPlan(clk, *opts.Faults)
	}

	// Switch port plan: clients, EGS, far edge, controller, cloud, one
	// port per extra Kubernetes node, a trunk to the second gNB, and a
	// home port per mobile client. Mobile ports go AFTER the trunk so
	// every pre-existing port index is unchanged by enabling mobility.
	if opts.MobileClients > 0 && !opts.TwoZones {
		return nil, fmt.Errorf("testbed: MobileClients requires TwoZones (the re-home target is the second gNB)")
	}
	ports := opts.Clients + 4 + opts.KubeNodes - 1
	if opts.TwoZones {
		ports++
	}
	ports += opts.MobileClients
	sw := openflow.NewSwitch(n, "ovs", ports)
	tb.Switch = sw

	// Clients (Raspberry Pis): 1 Gbps links through the Aruba switch.
	tb.clients, tb.clientLinks = wireAccessClients(n, sw, "pi", opts.Clients, 1,
		trace.ClientAddr,
		func(ip netem.IP, port int) { sw.AddRoute(ip, port) })

	// EGS: 10 Gbps uplink, hosting Docker and Kubernetes over one
	// shared containerd store.
	egsPort := opts.Clients + 1
	tb.EGS = n.NewHost("egs", netem.ParseIP("10.0.0.2"))
	n.Connect(tb.EGS.NIC(), sw.Port(egsPort), netem.LinkConfig{
		Latency:   200 * time.Microsecond,
		Bandwidth: netem.GbpsToBytes(10),
	})
	sw.AddRoute(tb.EGS.IP(), egsPort)

	ctTiming := containerd.DefaultTiming()
	tb.Store = containerd.NewStore(clk, opts.Seed+10, ctTiming)
	resolver := containerd.AppResolver(catalog.CombinedResolver{})

	var clusters []cluster.Cluster
	dockerTiming := docker.DefaultTiming()
	if opts.PinAPIJitter {
		dockerTiming.JitterFrac = 0
	}
	if opts.WithDocker {
		tb.DockerRT = containerd.NewRuntimeWithStore(clk, opts.Seed+11, tb.EGS, ctTiming, tb.Store)
		tb.DockerRT.SetPortBase(20000)
		engine := docker.NewEngine(clk, opts.Seed+12, tb.DockerRT, resolver, dockerTiming)
		tb.Docker = cluster.NewDockerCluster("edge-docker", engine, tb.defaultRegistry(),
			cluster.Location{Tier: 0, Latency: time.Millisecond})
		clusters = append(clusters, tb.Docker)
	}
	if opts.WithKube {
		var nodes []kube.NodeConfig
		// Node 0 is the EGS itself (shared store); extra nodes get their
		// own hosts and stores.
		rt0 := containerd.NewRuntimeWithStore(clk, opts.Seed+13, tb.EGS, ctTiming, tb.Store)
		rt0.SetPortBase(30000)
		tb.KubeRTs = append(tb.KubeRTs, rt0)
		nodes = append(nodes, kube.NodeConfig{Name: "egs", Runtime: rt0})
		// Extra worker nodes (an extension beyond the paper's single-node
		// EGS cluster) attach to their own switch ports.
		for i := 1; i < opts.KubeNodes; i++ {
			host := n.NewHost(fmt.Sprintf("k8s-node%d", i), netem.ParseIP(fmt.Sprintf("10.0.0.%d", 10+i)))
			port := opts.Clients + 4 + i
			n.Connect(host.NIC(), sw.Port(port), netem.LinkConfig{
				Latency:   500 * time.Microsecond,
				Bandwidth: netem.GbpsToBytes(1),
			})
			sw.AddRoute(host.IP(), port)
			rt := containerd.NewRuntime(clk, opts.Seed+14+int64(i), host, ctTiming)
			rt.SetPortBase(30000)
			tb.KubeRTs = append(tb.KubeRTs, rt)
			nodes = append(nodes, kube.NodeConfig{Name: host.Name(), Runtime: rt})
		}
		kc, err := kube.NewCluster(clk, kube.Config{
			Name:            "edge-k8s",
			Timing:          kube.DefaultTiming(),
			Registry:        tb.defaultRegistry(),
			Resolver:        resolver,
			Nodes:           nodes,
			ExtraSchedulers: opts.KubeSchedulers,
			Seed:            opts.Seed + 20,
		})
		if err != nil {
			return nil, err
		}
		tb.Kube = cluster.NewKubeCluster("edge-k8s", kc, tb.KubeRTs, tb.defaultRegistry(),
			cluster.Location{Tier: 0, Latency: 1200 * time.Microsecond})
		clusters = append(clusters, tb.Kube)
	}

	// Serverless runtime on the EGS (future-work extension). It sits at
	// the same tier as the container clusters but slightly "closer"
	// so the proximity scheduler prefers it when enabled.
	if opts.WithFaas {
		rt := faas.NewRuntime(clk, opts.Seed+25, tb.EGS, faas.DefaultTiming())
		tb.Faas = faas.NewCluster("edge-faas", rt, tb.defaultRegistry(), catalog.CombinedResolver{},
			cluster.Location{Tier: 0, Latency: 900 * time.Microsecond})
		clusters = append(clusters, tb.Faas)
	}

	// Far edge: a second Docker cluster farther away (Fig. 3).
	farPort := opts.Clients + 2
	if opts.WithFarEdge {
		host := n.NewHost("far-edge", netem.ParseIP("10.0.1.2"))
		n.Connect(host.NIC(), sw.Port(farPort), netem.LinkConfig{
			Latency:   8 * time.Millisecond,
			Bandwidth: netem.GbpsToBytes(1),
		})
		sw.AddRoute(host.IP(), farPort)
		tb.FarEdgeRT = containerd.NewRuntime(clk, opts.Seed+30, host, ctTiming)
		tb.FarEdgeRT.SetPortBase(20000)
		engine := docker.NewEngine(clk, opts.Seed+31, tb.FarEdgeRT, resolver, dockerTiming)
		tb.FarEdge = cluster.NewDockerCluster("edge-far", engine, tb.defaultRegistry(),
			cluster.Location{Tier: 1, Latency: 8 * time.Millisecond})
		clusters = append(clusters, tb.FarEdge)
	}

	// Controller host.
	ctrlPort := opts.Clients + 3
	ctrlHost := n.NewHost("sdn-controller", netem.ParseIP("10.0.254.1"))
	n.Connect(ctrlHost.NIC(), sw.Port(ctrlPort), netem.LinkConfig{
		Latency:   200 * time.Microsecond,
		Bandwidth: netem.GbpsToBytes(10),
	})
	sw.AddRoute(ctrlHost.IP(), ctrlPort)

	// Cloud uplink: everything unknown heads for the WAN.
	tb.cloudPort = opts.Clients + 4
	sw.SetDefaultRoute(tb.cloudPort)
	tb.Cloud = cluster.NewStaticCluster("cloud", cluster.Location{Tier: 9, Latency: 25 * time.Millisecond})
	clusters = append(clusters, tb.Cloud)

	// The cloud side is a router fanning out to per-service origins.
	tb.cloudRouter = netem.NewRouter(n, "wan", 256)
	n.Connect(tb.cloudRouter.Port(0), sw.Port(tb.cloudPort), netem.LinkConfig{
		Latency:   12 * time.Millisecond, // ≈25 ms RTT to the cloud
		Bandwidth: netem.GbpsToBytes(1),
	})
	tb.cloudRouter.SetDefault(tb.cloudRouter.Port(0))

	// Second zone: its own gNB, clients, and near edge, reached through
	// a trunk link — all managed by the one controller.
	var extraSwitches []*openflow.Switch
	zoneLatency := map[string]map[string]time.Duration{}
	if opts.TwoZones {
		// gnb2 ports: zone-B clients, the zone-B edge, the trunk, and one
		// reserved re-home port per mobile client (again after the trunk,
		// leaving the established indices alone).
		gnb2 := openflow.NewSwitch(n, "gnb2", opts.ZoneBClients+2+opts.MobileClients)
		tb.SwitchB = gnb2
		trunkA := opts.Clients + 4 + opts.KubeNodes // first port after the fixed plan
		trunkB := opts.ZoneBClients + 2
		tb.trunkA, tb.trunkB = trunkA, trunkB
		n.Connect(sw.Port(trunkA), gnb2.Port(trunkB), netem.LinkConfig{
			Latency:   5 * time.Millisecond,
			Bandwidth: netem.GbpsToBytes(10),
		})
		gnb2.SetDefaultRoute(trunkB) // EGS, cloud, controller: via the trunk

		zoneBBase := netem.ParseIP("192.168.2.0")
		tb.clientsB, _ = wireAccessClients(n, gnb2, "pib", opts.ZoneBClients, 1,
			func(i int) netem.IP { return zoneBBase + netem.IP(10+i) },
			func(ip netem.IP, port int) {
				gnb2.AddRoute(ip, port)
				sw.AddRoute(ip, trunkA)
			})
		edgeB := n.NewHost("edge-zoneb", netem.ParseIP("10.0.2.2"))
		edgeBPort := opts.ZoneBClients + 1
		n.Connect(edgeB.NIC(), gnb2.Port(edgeBPort), netem.LinkConfig{
			Latency:   200 * time.Microsecond,
			Bandwidth: netem.GbpsToBytes(10),
		})
		gnb2.AddRoute(edgeB.IP(), edgeBPort)
		sw.AddRoute(edgeB.IP(), trunkA)
		tb.ZoneBRT = containerd.NewRuntime(clk, opts.Seed+60, edgeB, ctTiming)
		tb.ZoneBRT.SetPortBase(20000)
		engineB := docker.NewEngine(clk, opts.Seed+61, tb.ZoneBRT, resolver, docker.DefaultTiming())
		// Base location: as seen from the primary gNB (far); the zone
		// override below makes it near for zone-B clients.
		tb.ZoneB = cluster.NewDockerCluster("edge-zoneb", engineB, tb.defaultRegistry(),
			cluster.Location{Tier: 0, Latency: 11 * time.Millisecond})
		clusters = append(clusters, tb.ZoneB)
		extraSwitches = append(extraSwitches, gnb2)

		// Per-zone proximity: each gNB has its own optimal edge.
		zoneLatency["gnb2"] = map[string]time.Duration{
			"edge-zoneb":  time.Millisecond,
			"edge-docker": 11 * time.Millisecond,
			"edge-k8s":    11200 * time.Microsecond,
			"edge-far":    18 * time.Millisecond,
			"cloud":       30 * time.Millisecond,
		}

		// Mobile clients: home on the primary gNB (ports after the
		// trunk), with a reserved attachment port each on gnb2. gnb2
		// reaches them through its default (trunk) route until they
		// re-home.
		if opts.MobileClients > 0 {
			mobBase := netem.ParseIP("192.168.3.0")
			tb.mobiles, _ = wireAccessClients(n, sw, "mob", opts.MobileClients, trunkA+1,
				func(i int) netem.IP { return mobBase + netem.IP(10+i) },
				func(ip netem.IP, port int) { sw.AddRoute(ip, port) })
			for i := 0; i < opts.MobileClients; i++ {
				tb.mobilePortA = append(tb.mobilePortA, trunkA+1+i)
				tb.mobilePortB = append(tb.mobilePortB, trunkB+1+i)
			}
		}
	}

	// The controller sees the clusters through the fault plan; the cloud
	// origin stays unwrapped — it is the fallback that must always work.
	if tb.Faults != nil {
		for i := range clusters {
			if clusters[i] != cluster.Cluster(tb.Cloud) {
				clusters[i] = tb.Faults.WrapCluster(clusters[i])
			}
		}
	}

	ctrl, err := core.New(clk, core.Config{
		Host:            ctrlHost,
		Switch:          sw,
		ExtraSwitches:   extraSwitches,
		ZoneLatency:     zoneLatency,
		Clusters:        clusters,
		GlobalScheduler: opts.GlobalScheduler,
		SchedulerConfig: core.SchedulerConfig{
			Wait:    opts.Wait,
			MaxWait: opts.MaxWait,
		},
		LocalSchedulers:     opts.LocalSchedulers,
		SwitchFlowIdle:      opts.SwitchFlowIdle,
		MemoryIdle:          opts.MemoryIdle,
		ProbeInterval:       opts.ProbeInterval,
		CandidateTTL:        opts.CandidateTTL,
		DeployTimeout:       opts.DeployTimeout,
		RetryMax:            opts.RetryMax,
		BreakerThreshold:    opts.BreakerThreshold,
		BreakerCooldown:     opts.BreakerCooldown,
		HealthProbeInterval: opts.HealthProbeInterval,
		ResyncInterval:      opts.ResyncInterval,
		HoldTimeout:         opts.HoldTimeout,
		ScaleDownIdle:       opts.ScaleDownIdle,
		RemoveOnIdle:        opts.RemoveOnIdle,
		DisableFlowMemory:   opts.DisableFlowMemory,
		ProactiveDeploy:     opts.ProactiveDeploy,
		MigrateOnHandover:   opts.MigrateOnHandover,
		OnDeploy:            opts.OnDeploy,
		Seed:                opts.Seed + 40,
	})
	if err != nil {
		return nil, err
	}
	tb.Controller = ctrl
	ctrl.Start()
	return tb, nil
}

// wireAccessClients is the one access-side topology builder: the
// primary gNB's Raspberry-Pi swarm, the second zone's clients, and
// RunLoad's injection hosts all wire through it. It connects count
// hosts named prefix%02d to consecutive switch ports starting at
// basePort over identical 1 Gbps / 500 µs access links, addresses them
// via addrFor, and announces each address through route.
func wireAccessClients(n *netem.Network, sw *openflow.Switch, prefix string, count, basePort int,
	addrFor func(i int) netem.IP, route func(ip netem.IP, port int)) ([]*netem.Host, []*netem.Link) {
	hosts := make([]*netem.Host, 0, count)
	links := make([]*netem.Link, 0, count)
	for i := 0; i < count; i++ {
		port := basePort + i
		host := n.NewHost(fmt.Sprintf("%s%02d", prefix, i), addrFor(i))
		link := n.Connect(host.NIC(), sw.Port(port), netem.LinkConfig{
			Latency:   500 * time.Microsecond,
			Bandwidth: netem.GbpsToBytes(1),
		})
		route(host.IP(), port)
		hosts = append(hosts, host)
		links = append(links, link)
	}
	return hosts, links
}

// defaultRegistry returns the image source clusters pull from: either
// the private registry on the local network, or a federation of Docker
// Hub and GCR routed by reference (ResNet lives on "gcr.io/...").
func (tb *Testbed) defaultRegistry() registry.Remote {
	var rem registry.Remote
	if tb.Opts.UsePrivateRegistry {
		rem = tb.Private
	} else {
		rem = &registry.Federation{
			Default: tb.Hub,
			Routes:  map[string]registry.Remote{"gcr.io/": tb.GCR},
		}
	}
	if tb.Faults != nil {
		rem = tb.Faults.WrapRemote(rem)
	}
	return rem
}

// ApplyNetChaos arms the Options.NetChaos schedule relative to the
// current virtual instant: flaps the first FlapLinks client access
// links, schedules the cloud-router crash windows and main-switch
// restarts, and installs the control-channel fault model on every
// managed switch. It is a no-op without NetChaos options, and is
// deliberately separate from New so callers can register services
// first — chaos offsets then align with trace-replay time.
func (tb *Testbed) ApplyNetChaos() {
	if tb.Opts.NetChaos == nil || tb.NetPlan != nil {
		return
	}
	plan := faultinject.NewNetworkPlan(tb.Clock, *tb.Opts.NetChaos)
	tb.NetPlan = plan
	flaps := tb.Opts.NetChaos.FlapLinks
	if flaps <= 0 {
		flaps = 3
	}
	if flaps > len(tb.clientLinks) {
		flaps = len(tb.clientLinks)
	}
	for i := 0; i < flaps; i++ {
		plan.FlapLink(tb.clients[i].Name(), tb.clientLinks[i])
	}
	plan.CrashRouter(tb.cloudRouter)
	plan.ApplyChannel(tb.Switch)
	if tb.SwitchB != nil {
		plan.ApplyChannel(tb.SwitchB)
	}
	plan.RestartSwitch(tb.Switch)
}

// Client returns client host i.
func (tb *Testbed) Client(i int) *netem.Host { return tb.clients[i%len(tb.clients)] }

// Services lists the registered service handles.
func (tb *Testbed) Services() []*ServiceHandle { return tb.services }
