package testbed

import (
	"strings"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/kube"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestDeployFailureFallsBackToCloud registers a service whose image
// exists nowhere: the deployment fails and the controller must still
// answer the client from the cloud origin.
func TestDeployFailureFallsBackToCloud(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 30})
		// A service with an unknown image: annotation succeeds, pull fails.
		definition := `spec:
  template:
    spec:
      containers:
      - name: web
        image: ghost/missing:latest
        ports:
        - containerPort: 80
`
		svc, err := tb.Controller.RegisterService(trace.ServiceAddr(0), definition)
		if err != nil {
			t.Fatal(err)
		}
		// The origin still exists in the cloud (run an asm-like origin
		// at the registered address).
		asm := mustService(t, "asm")
		if err := tb.startOrigin(asm, svc.Addr); err != nil {
			t.Fatal(err)
		}
		tb.Cloud.SetInstance(svc.Name, svc.Addr)

		client := tb.Client(0)
		conn, err := client.DialTimeout(svc.Addr, 30*time.Second)
		if err != nil {
			t.Fatalf("request not answered after deploy failure: %v", err)
		}
		conn.Send([]byte("GET /"))
		resp, err := conn.Recv()
		if err != nil || !strings.HasPrefix(string(resp), "asmttpd") {
			t.Errorf("cloud fallback response = %q, %v", resp, err)
		}
		stats := tb.Controller.Stats()
		if stats.DeployFailures == 0 {
			t.Error("deploy failure not counted")
		}
	})
}

// TestInstanceCrashMidConnection stops the serving container while a
// client connection is open: in-flight requests are reset, and a fresh
// request triggers redeployment.
func TestInstanceCrashMidConnection(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, MemoryIdle: time.Hour, Seed: 31})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		// Open a connection, then kill the instance.
		conn, err := tb.Client(0).Dial(h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Docker.ScaleDown(h.Svc.Name); err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("GET /"))
		if _, err := conn.RecvTimeout(30 * time.Second); err == nil {
			t.Error("request answered by a stopped instance")
		}
		// A new request still succeeds: the memorized mapping points at
		// the dead instance, the dial fails fast (RST), and the client
		// retry path goes back through the controller after flows age
		// out. Here we drop the stale memory explicitly, as the
		// controller's scale-down path does.
		tb.Controller.FlowMemory().ForgetService(h.Svc.Name, cluster.Instance{})
		clk.Sleep(15 * time.Second) // switch flows idle out
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("recovery request: %v", err)
		}
		if res.Total >= time.Second {
			t.Errorf("recovery took %v", res.Total)
		}
	})
}

// TestLossyAccessLinkStillWorks runs the first request over a client
// link with 5% loss: SYN retransmission and per-message retries must
// carry it through.
func TestLossyAccessLinkStillWorks(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 32})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")

		// A fresh client behind a lossy link, attached via the WAN
		// router (the topology's extension point).
		lossy := tb.Net.NewHost("lossy-client", netem.ParseIP("192.168.1.99"))
		port := tb.cloudRouter.Port(200)
		tb.Net.Connect(lossy.NIC(), port, netem.LinkConfig{
			Latency:   time.Millisecond,
			Bandwidth: netem.GbpsToBytes(1),
			LossRate:  0.05,
		})
		tb.cloudRouter.AddRoute(lossy.IP(), port)
		tb.Switch.AddRoute(lossy.IP(), tb.cloudPort)

		conn, err := lossy.DialTimeout(h.Addr, time.Minute)
		if err != nil {
			t.Fatalf("dial over lossy link: %v", err)
		}
		conn.Send([]byte("GET /"))
		resp, err := conn.RecvTimeout(time.Minute)
		if err != nil || len(resp) == 0 {
			t.Errorf("lossy response = %q, %v", resp, err)
		}
	})
}

// TestRegisterServiceValidation exercises registration error paths.
func TestRegisterServiceValidation(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 33})
		nginx := mustService(t, "nginx")
		if _, err := tb.Controller.RegisterService(trace.ServiceAddr(0), nginx.Definition); err != nil {
			t.Fatal(err)
		}
		// Duplicate address.
		if _, err := tb.Controller.RegisterService(trace.ServiceAddr(0), nginx.Definition); err == nil {
			t.Error("duplicate registration accepted")
		}
		// Broken definition.
		if _, err := tb.Controller.RegisterService(trace.ServiceAddr(1), "spec: {}"); err == nil {
			t.Error("empty definition accepted")
		}
		// Lookups.
		if _, ok := tb.Controller.ServiceByAddr(trace.ServiceAddr(0)); !ok {
			t.Error("registered service not found by address")
		}
		if _, ok := tb.Controller.ServiceByName("edge-203-0-113-1-80"); !ok {
			t.Error("registered service not found by name")
		}
		if _, ok := tb.Controller.ServiceByAddr(trace.ServiceAddr(9)); ok {
			t.Error("phantom service found")
		}
	})
}

// TestCustomLocalSchedulerViaController wires a custom Kubernetes Local
// Scheduler end to end: the controller configuration names it for the
// edge-k8s cluster, the annotation engine writes it into schedulerName,
// and the custom scheduler binds the pod.
func TestCustomLocalSchedulerViaController(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{
			WithKube:        true,
			KubeNodes:       2,
			LocalSchedulers: map[string]string{"edge-k8s": "binpack-scheduler"},
			KubeSchedulers:  map[string]kube.NodePicker{"binpack-scheduler": kube.BinPack{}},
			Seed:            34,
		})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-k8s")
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatalf("request via custom local scheduler: %v", err)
		}
		if res.Total > 6*time.Second {
			t.Errorf("request = %v", res.Total)
		}
		pods := tb.Kube.Kube().API().List(kube.KindPod, nil)
		if len(pods) != 1 {
			t.Fatalf("pods = %d", len(pods))
		}
		p := pods[0].(*kube.Pod)
		if p.Spec.SchedulerName != "binpack-scheduler" {
			t.Errorf("pod schedulerName = %q; annotation engine dropped it", p.Spec.SchedulerName)
		}
		if p.Spec.NodeName == "" {
			t.Error("pod not bound by the custom scheduler")
		}
	})
}

// TestPrivateRegistryOption verifies the UsePrivateRegistry testbed
// variant pulls everything from the local registry.
func TestPrivateRegistryOption(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, UsePrivateRegistry: true, Seed: 35})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		start := clk.Now()
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			t.Fatal(err)
		}
		privateTime := clk.Since(start)
		// LAN pull of 135 MiB lands in the ≈1.5–2.5 s band.
		if privateTime > 3*time.Second {
			t.Errorf("private pull = %v; WAN profile leaked in", privateTime)
		}
	})
}

// TestSharedContainerdStoreBetweenClusters verifies the paper's setup
// detail: Docker and Kubernetes share one containerd on the EGS, so a
// pull by either warms the other.
func TestSharedContainerdStoreBetweenClusters(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, WithKube: true, Seed: 36})
		h, _ := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			t.Fatal(err)
		}
		// The kube side must now see the image without pulling.
		if !tb.Kube.HasImages(h.Svc.Annotated.Spec) {
			t.Error("kube cluster does not see the shared containerd store")
		}
		start := clk.Now()
		if err := tb.PrePull(h, "edge-k8s"); err != nil {
			t.Fatal(err)
		}
		if d := clk.Since(start); d > 50*time.Millisecond {
			t.Errorf("second pull took %v; cache not shared", d)
		}
	})
}

// TestRemoveOnIdleDeletesServiceObjects verifies the optional Remove
// phase after idle scale-down.
func TestRemoveOnIdleDeletesServiceObjects(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{
			WithDocker:     true,
			SwitchFlowIdle: 2 * time.Second,
			MemoryIdle:     8 * time.Second,
			ScaleDownIdle:  true,
			RemoveOnIdle:   true,
			Seed:           37,
		})
		h, _ := tb.RegisterCatalogService(mustService(t, "asm"), trace.ServiceAddr(0))
		tb.PrePull(h, "edge-docker")
		if _, err := tb.Request(0, h); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(time.Minute)
		if tb.Docker.Created(h.Svc.Name) {
			t.Error("service objects survive RemoveOnIdle")
		}
		st := tb.Controller.Stats()
		if st.Removes != 1 {
			t.Errorf("removes = %d, want 1", st.Removes)
		}
		// Even the containers are gone, but the image stays cached; the
		// next request re-runs Create + Scale Up only.
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total >= time.Second {
			t.Errorf("post-remove redeploy = %v", res.Total)
		}
		if tb.Controller.Stats().Creates != 2 {
			t.Errorf("creates = %d, want 2 (re-created after remove)", tb.Controller.Stats().Creates)
		}
	})
}

// TestPullPhaseDirectOnRuntime exercises Pull against a federation with
// the GCR route, the path ResNet takes.
func TestPullPhaseDirectOnRuntime(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 38})
		resnet := mustService(t, "resnet")
		h, err := tb.RegisterCatalogService(resnet, trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.PrePull(h, "edge-docker"); err != nil {
			t.Fatalf("pull via GCR federation route: %v", err)
		}
		if !tb.Docker.HasImages(h.Svc.Annotated.Spec) {
			t.Error("resnet image missing after federation pull")
		}
	})
}

// TestConcurrentMixedServices drives all four services from many
// clients at once — the stress shape of the full trace.
func TestConcurrentMixedServices(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, Seed: 39})
		var handles []*ServiceHandle
		for i, key := range []string{"asm", "nginx", "resnet", "nginxpy"} {
			h, err := tb.RegisterCatalogService(mustService(t, key), trace.ServiceAddr(i))
			if err != nil {
				t.Fatal(err)
			}
			tb.PrePull(h, "edge-docker")
			handles = append(handles, h)
		}
		var g vclock.Group
		errs := make([]error, 40)
		for i := 0; i < 40; i++ {
			i := i
			g.Go(clk, func() {
				_, errs[i] = tb.Request(i%20, handles[i%4])
			})
		}
		g.Wait(clk)
		for i, err := range errs {
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}
		if got := tb.Controller.Stats().ScaleUps; got != 4 {
			t.Errorf("scale ups = %d, want 4 (one per service)", got)
		}
	})
}

// TestProactiveDeployAtRegistration verifies the Fig. 1 proactive path:
// with ProactiveDeploy, the instance is already running when the first
// request arrives, so even the first client sees warm-path latency.
func TestProactiveDeployAtRegistration(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		tb := build(t, clk, Options{WithDocker: true, ProactiveDeploy: true, Seed: 70})
		h, err := tb.RegisterCatalogService(mustService(t, "nginx"), trace.ServiceAddr(0))
		if err != nil {
			t.Fatal(err)
		}
		// Give the background deployment (incl. pull) time to finish.
		deadline := clk.Now().Add(time.Minute)
		for len(tb.Docker.Instances(h.Svc.Name)) == 0 {
			if clk.Now().After(deadline) {
				t.Fatal("proactive deployment never happened")
			}
			clk.Sleep(200 * time.Millisecond)
		}
		res, err := tb.Request(0, h)
		if err != nil {
			t.Fatal(err)
		}
		// First request ≈ dispatch-only: no deployment in its path.
		if res.Total > 100*time.Millisecond {
			t.Errorf("first request with proactive deploy = %v, want dispatch-only", res.Total)
		}
		if tb.Controller.Stats().DeploysWaiting != 0 {
			t.Error("first request still waited for a deployment")
		}
	})
}

// TestRegistryDownDeployFails simulates the upstream registry lacking
// the image entirely (e.g. registry outage at first deploy).
func TestRegistryDownDeployFails(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := netem.NewNetwork(clk, 1)
		_ = n
		// Covered at the cluster level: pulling from an empty registry.
		empty := registry.New(clk, 1, registry.DockerHub())
		if _, err := empty.FetchManifest(catalog.ImageNginx); err == nil {
			t.Error("manifest fetch from empty registry succeeded")
		}
	})
}
