package testbed

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/timecurl"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Request sends one measured request from a client to a registered
// service, shaped by the service's catalog entry (method, payload).
func (tb *Testbed) Request(clientIdx int, h *ServiceHandle) (timecurl.Result, error) {
	return timecurl.Do(tb.Clock, tb.Client(clientIdx), timecurl.Request{
		Target:      h.Addr,
		Method:      h.Catalog.HTTPMethod,
		PayloadSize: h.Catalog.RequestPayload,
	})
}

// PrePull runs the Pull phase on the given cluster for a service.
func (tb *Testbed) PrePull(h *ServiceHandle, clusterName string) error {
	for _, cl := range tb.allClusters() {
		if cl.Name() == clusterName {
			return cl.Pull(h.Svc.Annotated.Spec)
		}
	}
	return fmt.Errorf("testbed: unknown cluster %q", clusterName)
}

// PreCreate runs the Create phase on the given cluster for a service.
func (tb *Testbed) PreCreate(h *ServiceHandle, clusterName string) error {
	for _, cl := range tb.allClusters() {
		if cl.Name() == clusterName {
			return cl.Create(h.Svc.Annotated.Spec)
		}
	}
	return fmt.Errorf("testbed: unknown cluster %q", clusterName)
}

func (tb *Testbed) allClusters() []cluster.Cluster {
	var out []cluster.Cluster
	if tb.Docker != nil {
		out = append(out, tb.Docker)
	}
	if tb.Kube != nil {
		out = append(out, tb.Kube)
	}
	if tb.FarEdge != nil {
		out = append(out, tb.FarEdge)
	}
	if tb.Faas != nil {
		out = append(out, tb.Faas)
	}
	if tb.ZoneB != nil {
		out = append(out, tb.ZoneB)
	}
	out = append(out, tb.Cloud)
	return out
}

// RequestFromZoneB sends one measured request from a client behind the
// second gNB.
func (tb *Testbed) RequestFromZoneB(clientIdx int, h *ServiceHandle) (timecurl.Result, error) {
	return timecurl.Do(tb.Clock, tb.ZoneBClient(clientIdx), timecurl.Request{
		Target:      h.Addr,
		Method:      h.Catalog.HTTPMethod,
		PayloadSize: h.Catalog.RequestPayload,
	})
}

// ReplayResult is the outcome of a first-request replay.
type ReplayResult struct {
	// Totals is the client-observed time_total of each service's first
	// request, in service order.
	Totals *metrics.Series
	// Errors counts failed requests.
	Errors int
	// DeployTimes records when each deployment completed, for the
	// Fig. 10 view of actual deployments.
	DeployTimes []time.Duration
}

// ReplayFirstRequests fires the first request of every registered
// service at its trace first-occurrence time and measures time_total —
// the measurement behind Figs. 11 and 12 ("we scaled up 42 instances
// for each test, see Fig. 10").
func (tb *Testbed) ReplayFirstRequests(tr *trace.Trace, handles []*ServiceHandle) *ReplayResult {
	res := &ReplayResult{Totals: metrics.NewSeries("time_total")}
	start := tb.Clock.Now()
	first := tr.FirstOccurrences()
	var g vclock.Group
	var mu sync.Mutex
	results := make([]time.Duration, len(handles))
	errs := make([]error, len(handles))
	for i, h := range handles {
		i, h := i, h
		at := first[i%len(first)]
		client := clientOfFirstRequest(tr, i)
		g.Go(tb.Clock, func() {
			tb.Clock.Sleep(at)
			r, err := tb.Request(client, h)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = r.Total
			mu.Lock()
			res.DeployTimes = append(res.DeployTimes, tb.Clock.Since(start))
			mu.Unlock()
		})
	}
	g.Wait(tb.Clock)
	for i := range handles {
		if errs[i] != nil {
			res.Errors++
			continue
		}
		res.Totals.Add(results[i])
	}
	return res
}

// clientOfFirstRequest finds which client issues service i's first
// request in the trace.
func clientOfFirstRequest(tr *trace.Trace, service int) int {
	for _, r := range tr.Requests {
		if r.Service == service%len(tr.Counts) {
			return r.Client
		}
	}
	return 0
}

// ReplayTrace replays the full request trace (all 1708 requests) and
// returns per-request totals plus the number of failed requests — under
// fault injection, a non-zero error count means clients saw blackholed
// flows.
func (tb *Testbed) ReplayTrace(tr *trace.Trace, handles []*ServiceHandle) (*metrics.Series, int) {
	totals := metrics.NewSeries("time_total")
	var g vclock.Group
	results := make([]time.Duration, len(tr.Requests))
	ok := make([]bool, len(tr.Requests))
	for i, req := range tr.Requests {
		i, req := i, req
		g.Go(tb.Clock, func() {
			tb.Clock.Sleep(req.At)
			h := handles[req.Service%len(handles)]
			r, err := tb.Request(req.Client, h)
			if err != nil {
				return
			}
			results[i] = r.Total
			ok[i] = true
		})
	}
	g.Wait(tb.Clock)
	errors := 0
	for i := range results {
		if ok[i] {
			totals.Add(results[i])
		} else {
			errors++
		}
	}
	return totals, errors
}
