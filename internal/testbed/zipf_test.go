package testbed

import (
	"math"
	"testing"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// zipfPickLinear is the reference implementation (the pre-alias linear
// scan): first rank whose CDF exceeds the draw.
func zipfPickLinear(cdf []float64, u float64) int {
	for r, c := range cdf {
		if u < c {
			return r
		}
	}
	return len(cdf) - 1
}

// TestZipfSamplersAgree cross-checks all three samplers — linear scan,
// binary search, and the alias table — draw for draw on the same rng
// stream: the O(1) path must keep the exact service assignment the scan
// produced, not merely the same distribution.
func TestZipfSamplersAgree(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{1, 1.1}, {2, 0.9}, {8, 1.1}, {8, 2.0}, {64, 1.1}, {500, 1.3}, {1000, 0.8}} {
		cdf := zipfCDF(tc.n, tc.s)
		alias := newAliasSampler(cdf)
		if alias == nil {
			t.Fatalf("n=%d s=%.1f: alias table did not build", tc.n, tc.s)
		}
		rng := vclock.NewRand(int64(tc.n))
		for i := 0; i < 20000; i++ {
			u := rng.Float64()
			want := zipfPickLinear(cdf, u)
			if got := zipfPick(cdf, u); got != want {
				t.Fatalf("n=%d s=%.1f u=%v: binary %d, linear %d", tc.n, tc.s, u, got, want)
			}
			if got := alias.pick(u); got != want {
				t.Fatalf("n=%d s=%.1f u=%v: alias %d, linear %d", tc.n, tc.s, u, got, want)
			}
		}
		// Probe the CDF boundaries themselves and their float neighbors,
		// where an off-by-one in either sampler would hide.
		for _, c := range cdf {
			for _, u := range []float64{math.Nextafter(c, 0), c, math.Nextafter(c, 1)} {
				if u < 0 || u >= 1 {
					continue
				}
				want := zipfPickLinear(cdf, u)
				if got := zipfPick(cdf, u); got != want {
					t.Fatalf("boundary u=%v: binary %d, linear %d", u, got, want)
				}
				if got := alias.pick(u); got != want {
					t.Fatalf("boundary u=%v: alias %d, linear %d", u, got, want)
				}
			}
		}
	}
}

// TestZipfSamplerFallback forces the binary-search fallback with a
// distribution too skewed to align an alias table, and checks the
// fallback still matches the reference draw for draw.
func TestZipfSamplerFallback(t *testing.T) {
	cdf := []float64{1 - 1e-9, 1 - 5e-10, 1}
	if a := newAliasSampler(cdf); a != nil {
		t.Fatal("alias table built past the cell cap")
	}
	smp := newZipfSampler(cdf)
	if _, ok := smp.(searchSampler); !ok {
		t.Fatalf("fallback sampler is %T, want searchSampler", smp)
	}
	rng := vclock.NewRand(11)
	for i := 0; i < 1000; i++ {
		u := rng.Float64()
		if got, want := smp.pick(u), zipfPickLinear(cdf, u); got != want {
			t.Fatalf("u=%v: fallback %d, linear %d", u, got, want)
		}
	}
	for _, u := range []float64{0, 1 - 1e-9, 1 - 4e-10, math.Nextafter(1, 0)} {
		if got, want := smp.pick(u), zipfPickLinear(cdf, u); got != want {
			t.Fatalf("boundary u=%v: fallback %d, linear %d", u, got, want)
		}
	}
}

// TestZipfSamplerDefault checks the load engine's default configuration
// takes the O(1) alias path.
func TestZipfSamplerDefault(t *testing.T) {
	cfg := LoadConfig{}.withDefaults()
	if _, ok := newZipfSampler(zipfCDF(cfg.Services, cfg.ZipfS)).(*aliasSampler); !ok {
		t.Fatal("default load config did not get the alias sampler")
	}
}

// BenchmarkZipfAlias is the per-arrival service draw at load-engine
// scale: one uniform draw through the alias table. Gated at 0 allocs/op
// in CI (make bench-load-guard).
func BenchmarkZipfAlias(b *testing.B) {
	cdf := zipfCDF(64, 1.1)
	alias := newAliasSampler(cdf)
	if alias == nil {
		b.Fatal("alias table did not build")
	}
	rng := vclock.NewRand(1)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += alias.pick(rng.Float64())
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}
