package testbed

import (
	"time"

	"github.com/c3lab/transparentedge/internal/catalog"
	"github.com/c3lab/transparentedge/internal/core"
	"github.com/c3lab/transparentedge/internal/faultinject"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/trace"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// DefaultFaultConfig is the evaluated fault scenario: 10 % of image
// pulls and scale-ups fail with transient errors, and the near edge
// suffers one 30 s control-plane outage early in the replay. The
// transparent-access promise requires that clients never notice any
// of it.
func DefaultFaultConfig(seed int64) faultinject.Config {
	return faultinject.Config{
		Seed:            seed,
		PullFailRate:    0.10,
		ScaleUpFailRate: 0.10,
		Outages: []faultinject.Outage{
			{Cluster: "edge-docker", Start: 60 * time.Second, End: 90 * time.Second},
		},
	}
}

// FaultReplayResult is the outcome of one trace replay under an active
// fault plan.
type FaultReplayResult struct {
	// Totals is the client-observed time_total of every completed
	// request.
	Totals *metrics.Series
	// Requests is the replayed request count; Errors how many of them
	// failed (a non-zero value means clients saw blackholed flows).
	Requests int
	Errors   int
	// Stats is the controller's view: retries, failovers, breaker
	// activity, health evictions.
	Stats core.Stats
	// Injected counts the faults the plan actually fired.
	Injected faultinject.Stats
}

// RunFaultReplay replays the request trace on a two-edge testbed
// (near Docker edge + far edge, so failover has somewhere to go) with
// the given fault plan active on every edge cluster and the registry.
// Nothing is pre-pulled: the injected pull faults must hit the live
// dispatch path. A zero-valued fault config yields the fault-free
// baseline on the identical topology.
func RunFaultReplay(serviceKey string, cfg trace.Config, faults faultinject.Config, seed int64) (*FaultReplayResult, error) {
	svc, err := catalog.ByKey(serviceKey)
	if err != nil {
		return nil, err
	}
	var res *FaultReplayResult
	var runErr error
	clk := vclock.New()
	clk.Run(func() {
		tb, err := New(clk, Options{
			WithDocker:          true,
			WithFarEdge:         true,
			Faults:              &faults,
			HealthProbeInterval: 10 * time.Second,
			Seed:                seed,
		})
		if err != nil {
			runErr = err
			return
		}
		handles, err := tb.RegisterMany(svc, cfg.HotServices)
		if err != nil {
			runErr = err
			return
		}
		tr := trace.Generate(cfg)
		totals, errors := tb.ReplayTrace(tr, handles)
		res = &FaultReplayResult{
			Totals:   totals,
			Requests: len(tr.Requests),
			Errors:   errors,
			Stats:    tb.Controller.Stats(),
			Injected: tb.Faults.Stats(),
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
