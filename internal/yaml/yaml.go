// Package yaml implements the subset of YAML used by Kubernetes
// Deployment and Service definition files: block mappings and sequences
// nested by indentation, plain/quoted scalars, comments, and
// multi-document streams. Values parse into map[string]any, []any,
// string, int64, float64, bool, and nil.
//
// The SDN controller stores every edge-service definition in this format
// (the paper: "We use the established and well-defined Kubernetes
// Deployment definition file format") and rewrites it through the
// annotation engine, so fidelity of the round trip matters more than
// breadth of the spec.
package yaml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Unmarshal parses the first document in data.
func Unmarshal(data string) (any, error) {
	docs, err := UnmarshalAll(data)
	if err != nil {
		return nil, err
	}
	if len(docs) == 0 {
		return nil, nil
	}
	return docs[0], nil
}

// UnmarshalAll parses a multi-document stream separated by "---".
func UnmarshalAll(data string) ([]any, error) {
	var docs []any
	for _, chunk := range splitDocuments(data) {
		lines, err := scan(chunk)
		if err != nil {
			return nil, err
		}
		if len(lines) == 0 {
			continue
		}
		p := &parser{lines: lines}
		v, err := p.parseBlock(lines[0].indent)
		if err != nil {
			return nil, err
		}
		if p.pos != len(p.lines) {
			return nil, fmt.Errorf("yaml: line %d: unexpected content %q", p.lines[p.pos].num, p.lines[p.pos].content)
		}
		docs = append(docs, v)
	}
	return docs, nil
}

// splitDocuments splits on "---" separator lines.
func splitDocuments(data string) []string {
	var docs []string
	var cur []string
	for _, ln := range strings.Split(data, "\n") {
		if strings.TrimSpace(ln) == "---" {
			docs = append(docs, strings.Join(cur, "\n"))
			cur = cur[:0]
			continue
		}
		cur = append(cur, ln)
	}
	docs = append(docs, strings.Join(cur, "\n"))
	return docs
}

type line struct {
	indent  int
	content string
	num     int
}

// scan strips comments and blank lines and records indentation.
func scan(data string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(data, "\n") {
		content := stripComment(raw)
		trimmed := strings.TrimLeft(content, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed for indentation", i+1)
		}
		out = append(out, line{
			indent:  len(content) - len(trimmed),
			content: strings.TrimRight(trimmed, " "),
			num:     i + 1,
		})
	}
	return out, nil
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if inSingle || inDouble {
				continue
			}
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() (line, bool) {
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses the node starting at the current position, whose
// lines are indented exactly `indent`.
func (p *parser) parseBlock(indent int) (any, error) {
	ln, ok := p.peek()
	if !ok || ln.indent < indent {
		return nil, fmt.Errorf("yaml: expected block at indent %d", indent)
	}
	if strings.HasPrefix(ln.content, "- ") || ln.content == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent || !(strings.HasPrefix(ln.content, "- ") || ln.content == "-") {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.content, "-"), " ")
		if rest == "" {
			// Item body is the nested block on following lines.
			p.pos++
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				seq = append(seq, nil)
				continue
			}
			item, err := p.parseBlock(next.indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		if !looksLikeMapping(rest) && !strings.HasPrefix(rest, "- ") && rest != "-" {
			// Plain scalar item.
			p.pos++
			seq = append(seq, parseScalar(rest))
			continue
		}
		// Inline item: reinterpret "- rest" as "rest" indented two
		// deeper, so "- key: value" starts a mapping whose further keys
		// sit at indent+2.
		p.lines[p.pos] = line{indent: indent + 2, content: rest, num: ln.num}
		item, err := p.parseBlock(indent + 2)
		if err != nil {
			return nil, err
		}
		seq = append(seq, item)
	}
	return seq, nil
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent {
			break
		}
		if strings.HasPrefix(ln.content, "- ") || ln.content == "-" {
			break
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			m[key] = parseScalar(rest)
			continue
		}
		next, ok := p.peek()
		if !ok || next.indent <= indent {
			// "key:" with nothing nested — null value, except sequences
			// that k8s style often writes at the same indent as the key.
			if ok && next.indent == indent && (strings.HasPrefix(next.content, "- ") || next.content == "-") {
				v, err := p.parseSequence(indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
				continue
			}
			m[key] = nil
			continue
		}
		v, err := p.parseBlock(next.indent)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("yaml: empty mapping")
	}
	return m, nil
}

// looksLikeMapping reports whether an inline sequence-item body starts a
// mapping ("key: value" or "key:") rather than being a scalar.
func looksLikeMapping(s string) bool {
	if s == "" {
		return false
	}
	if s[0] == '"' || s[0] == '\'' {
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			return false
		}
		return strings.HasPrefix(s[2+end:], ":")
	}
	return strings.Contains(s, ": ") || strings.HasSuffix(s, ":")
}

// splitKey splits "key: value" / "key:"; keys may be quoted.
func splitKey(ln line) (key, rest string, err error) {
	content := ln.content
	if strings.HasPrefix(content, "\"") || strings.HasPrefix(content, "'") {
		quote := content[0]
		end := strings.IndexByte(content[1:], quote)
		if end < 0 {
			return "", "", fmt.Errorf("yaml: line %d: unterminated quoted key", ln.num)
		}
		key = content[1 : 1+end]
		content = content[2+end:]
		if !strings.HasPrefix(content, ":") {
			return "", "", fmt.Errorf("yaml: line %d: missing ':' after quoted key", ln.num)
		}
		return key, strings.TrimSpace(content[1:]), nil
	}
	idx := strings.Index(content, ":")
	if idx < 0 {
		return "", "", fmt.Errorf("yaml: line %d: expected mapping key in %q", ln.num, content)
	}
	if idx+1 < len(content) && content[idx+1] != ' ' {
		// a colon not followed by space may be part of the value (e.g.
		// image refs); find a ": " or trailing ":" instead.
		sep := strings.Index(content, ": ")
		if sep < 0 {
			if strings.HasSuffix(content, ":") {
				return strings.TrimSpace(content[:len(content)-1]), "", nil
			}
			return "", "", fmt.Errorf("yaml: line %d: expected mapping key in %q", ln.num, content)
		}
		idx = sep
	}
	return strings.TrimSpace(content[:idx]), strings.TrimSpace(content[idx+1:]), nil
}

// parseScalar interprets one inline value.
func parseScalar(s string) any {
	switch {
	case s == "{}":
		return map[string]any{}
	case s == "[]":
		return []any{}
	case s == "null" || s == "~":
		return nil
	case s == "true":
		return true
	case s == "false":
		return false
	}
	if len(s) >= 2 {
		if s[0] == '"' && s[len(s)-1] == '"' {
			return strings.ReplaceAll(s[1:len(s)-1], `\"`, `"`)
		}
		if s[0] == '\'' && s[len(s)-1] == '\'' {
			return s[1 : len(s)-1]
		}
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// Marshal renders v as a YAML document. Mapping keys are emitted in
// sorted order for deterministic output.
func Marshal(v any) string {
	var b strings.Builder
	writeValue(&b, v, 0, false)
	return b.String()
}

// MarshalAll renders multiple documents separated by "---".
func MarshalAll(docs ...any) string {
	parts := make([]string, len(docs))
	for i, d := range docs {
		parts[i] = Marshal(d)
	}
	return strings.Join(parts, "---\n")
}

func writeValue(b *strings.Builder, v any, indent int, inSeq bool) {
	switch val := v.(type) {
	case map[string]any:
		if len(val) == 0 {
			b.WriteString(" {}\n")
			return
		}
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 || !inSeq {
				b.WriteString(strings.Repeat(" ", indent))
			} else {
				b.WriteString(" ")
			}
			b.WriteString(encodeKey(k))
			b.WriteString(":")
			writeChild(b, val[k], indent)
		}
	case []any:
		if len(val) == 0 {
			b.WriteString(" []\n")
			return
		}
		for _, item := range val {
			b.WriteString(strings.Repeat(" ", indent))
			b.WriteString("-")
			switch it := item.(type) {
			case map[string]any:
				writeValue(b, item, indent+2, true)
			case []any:
				if len(it) == 0 {
					b.WriteString(" []\n")
					continue
				}
				// A nested sequence goes on the following lines.
				b.WriteString("\n")
				writeValue(b, item, indent+2, false)
			default:
				b.WriteString(" ")
				b.WriteString(encodeScalar(item))
				b.WriteString("\n")
			}
		}
	default:
		b.WriteString(encodeScalar(v))
		b.WriteString("\n")
	}
}

func writeChild(b *strings.Builder, v any, indent int) {
	switch val := v.(type) {
	case map[string]any:
		if len(val) == 0 {
			b.WriteString(" {}\n")
			return
		}
		b.WriteString("\n")
		writeValue(b, val, indent+2, false)
	case []any:
		if len(val) == 0 {
			b.WriteString(" []\n")
			return
		}
		b.WriteString("\n")
		writeValue(b, val, indent, false)
	default:
		b.WriteString(" ")
		b.WriteString(encodeScalar(v))
		b.WriteString("\n")
	}
}

func encodeKey(k string) string {
	if k == "" || strings.ContainsAny(k, ":#'\" ") {
		return `"` + k + `"`
	}
	return k
}

func encodeScalar(v any) string {
	switch val := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(val)
	case int:
		return strconv.Itoa(val)
	case int64:
		return strconv.FormatInt(val, 10)
	case float64:
		return strconv.FormatFloat(val, 'g', -1, 64)
	case string:
		return encodeString(val)
	default:
		return fmt.Sprintf("%v", val)
	}
}

// encodeString quotes strings that would otherwise parse as another type
// or break the line grammar.
func encodeString(s string) string {
	if s == "" {
		return `""`
	}
	needsQuote := false
	switch s {
	case "null", "~", "true", "false", "{}", "[]":
		needsQuote = true
	}
	if _, err := strconv.ParseInt(s, 10, 64); err == nil {
		needsQuote = true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		needsQuote = true
	}
	if strings.ContainsAny(s, "#\n'\"") || strings.Contains(s, ": ") ||
		strings.HasPrefix(s, "- ") || strings.HasPrefix(s, " ") || strings.HasSuffix(s, ":") ||
		strings.HasSuffix(s, " ") {
		needsQuote = true
	}
	if needsQuote {
		return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
	}
	return s
}
