package yaml

import "testing"

// BenchmarkUnmarshalDeployment parses the canonical deployment manifest.
func BenchmarkUnmarshalDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(nginxDeployment); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalDeployment renders the parsed manifest back to text.
func BenchmarkMarshalDeployment(b *testing.B) {
	v, err := Unmarshal(nginxDeployment)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := Marshal(v); len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}
