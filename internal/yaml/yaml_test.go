package yaml

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const nginxDeployment = `apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx
  labels:
    app: nginx
spec:
  replicas: 0
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
`

func TestUnmarshalDeployment(t *testing.T) {
	v, err := Unmarshal(nginxDeployment)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("top level is %T", v)
	}
	if m["kind"] != "Deployment" || m["apiVersion"] != "apps/v1" {
		t.Errorf("header = %v / %v", m["kind"], m["apiVersion"])
	}
	spec := m["spec"].(map[string]any)
	if spec["replicas"] != int64(0) {
		t.Errorf("replicas = %v (%T)", spec["replicas"], spec["replicas"])
	}
	containers := spec["template"].(map[string]any)["spec"].(map[string]any)["containers"].([]any)
	if len(containers) != 1 {
		t.Fatalf("containers = %d", len(containers))
	}
	c := containers[0].(map[string]any)
	if c["image"] != "nginx:1.23.2" {
		t.Errorf("image = %v (colon in value must not split the key)", c["image"])
	}
	ports := c["ports"].([]any)
	if ports[0].(map[string]any)["containerPort"] != int64(80) {
		t.Errorf("containerPort = %v", ports[0])
	}
}

func TestUnmarshalScalars(t *testing.T) {
	v, err := Unmarshal(`a: 1
b: -7
c: 2.5
d: true
e: false
f: null
g: ~
h: hello world
i: "quoted: string"
j: 'single # quoted'
k: {}
l: []
m: "42"
`)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	want := map[string]any{
		"a": int64(1), "b": int64(-7), "c": 2.5, "d": true, "e": false,
		"f": nil, "g": nil, "h": "hello world",
		"i": "quoted: string", "j": "single # quoted",
		"k": map[string]any{}, "l": []any{}, "m": "42",
	}
	if !reflect.DeepEqual(m, want) {
		t.Errorf("got %#v\nwant %#v", m, want)
	}
}

func TestUnmarshalComments(t *testing.T) {
	v, err := Unmarshal(`# full line comment
name: web # trailing comment
image: "nginx#tagged" # hash inside quotes survives
`)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["name"] != "web" {
		t.Errorf("name = %q", m["name"])
	}
	if m["image"] != "nginx#tagged" {
		t.Errorf("image = %q", m["image"])
	}
}

func TestUnmarshalMultiDocument(t *testing.T) {
	docs, err := UnmarshalAll(`kind: Deployment
name: a
---
kind: Service
name: b
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].(map[string]any)["kind"] != "Deployment" || docs[1].(map[string]any)["kind"] != "Service" {
		t.Errorf("docs = %v", docs)
	}
}

func TestUnmarshalTopLevelSequence(t *testing.T) {
	v, err := Unmarshal(`- a
- 2
- name: x
  port: 80
`)
	if err != nil {
		t.Fatal(err)
	}
	seq := v.([]any)
	if len(seq) != 3 || seq[0] != "a" || seq[1] != int64(2) {
		t.Fatalf("seq = %#v", seq)
	}
	if seq[2].(map[string]any)["port"] != int64(80) {
		t.Errorf("inline map item = %#v", seq[2])
	}
}

func TestUnmarshalSequenceOfNestedBlocks(t *testing.T) {
	v, err := Unmarshal(`items:
-
  name: first
- name: second
`)
	if err != nil {
		t.Fatal(err)
	}
	items := v.(map[string]any)["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %#v", items)
	}
	if items[0].(map[string]any)["name"] != "first" || items[1].(map[string]any)["name"] != "second" {
		t.Errorf("items = %#v", items)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":    "a:\n\tb: 1\n",
		"duplicate key": "a: 1\na: 2\n",
		"not a mapping": "just words without colon\n",
		"unterminated":  `"broken: 1` + "\n",
		"missing colon": `"key" 1` + "\n",
	}
	for name, doc := range cases {
		if _, err := Unmarshal(doc); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}

func TestUnmarshalEmpty(t *testing.T) {
	v, err := Unmarshal("")
	if err != nil || v != nil {
		t.Errorf("empty doc = %v, %v", v, err)
	}
	v, err = Unmarshal("# only a comment\n")
	if err != nil || v != nil {
		t.Errorf("comment-only doc = %v, %v", v, err)
	}
}

func TestMarshalRoundTripDeployment(t *testing.T) {
	v, err := Unmarshal(nginxDeployment)
	if err != nil {
		t.Fatal(err)
	}
	out := Marshal(v)
	v2, err := Unmarshal(out)
	if err != nil {
		t.Fatalf("re-parse of marshalled output: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(v, v2) {
		t.Errorf("round trip changed value:\n%s", out)
	}
}

func TestMarshalQuotesAmbiguousStrings(t *testing.T) {
	in := map[string]any{
		"a": "42",
		"b": "true",
		"c": "null",
		"d": "has: colon",
		"e": "",
		"f": "- leading dash",
	}
	out := Marshal(in)
	v, err := Unmarshal(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !reflect.DeepEqual(v, in) {
		t.Errorf("ambiguous strings mangled:\n%s\ngot %#v", out, v)
	}
}

func TestMarshalAllSeparator(t *testing.T) {
	out := MarshalAll(map[string]any{"a": int64(1)}, map[string]any{"b": int64(2)})
	if !strings.Contains(out, "---\n") {
		t.Errorf("missing separator:\n%s", out)
	}
	docs, err := UnmarshalAll(out)
	if err != nil || len(docs) != 2 {
		t.Errorf("round trip: %v, %d docs", err, len(docs))
	}
}

func TestMarshalDeterministic(t *testing.T) {
	m := map[string]any{"z": int64(1), "a": int64(2), "m": int64(3)}
	first := Marshal(m)
	for i := 0; i < 10; i++ {
		if Marshal(m) != first {
			t.Fatal("marshal output not deterministic")
		}
	}
	if strings.Index(first, "a:") > strings.Index(first, "z:") {
		t.Error("keys not sorted")
	}
}

// genValue builds a random YAML-representable value of bounded depth.
func genValue(rnd func(int) int, depth int) any {
	if depth <= 0 {
		return genScalar(rnd)
	}
	switch rnd(4) {
	case 0:
		n := rnd(4)
		m := map[string]any{}
		for i := 0; i < n+1; i++ {
			m[genKey(rnd, i)] = genValue(rnd, depth-1)
		}
		return m
	case 1:
		n := rnd(4)
		s := make([]any, 0, n)
		for i := 0; i < n; i++ {
			s = append(s, genValue(rnd, depth-1))
		}
		if len(s) == 0 {
			return []any{}
		}
		return s
	default:
		return genScalar(rnd)
	}
}

func genKey(rnd func(int) int, i int) string {
	words := []string{"name", "image", "spec", "metadata", "labels", "app", "replicas", "ports"}
	return words[rnd(len(words))] + string(rune('a'+i))
}

func genScalar(rnd func(int) int) any {
	switch rnd(6) {
	case 0:
		return int64(rnd(10000) - 5000)
	case 1:
		return rnd(2) == 0
	case 2:
		return nil
	case 3:
		words := []string{"nginx:1.23.2", "hello world", "x", "true-ish", "0.0.0.0:80", "a#b", "with: colon", ""}
		return words[rnd(len(words))]
	default:
		return "svc-" + string(rune('a'+rnd(26)))
	}
}

// Property: Marshal then Unmarshal is the identity on supported values.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		state := uint64(seed)
		rnd := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		v := genValue(rnd, 3)
		m, ok := v.(map[string]any)
		if !ok || len(m) == 0 {
			return true // top level must be a non-empty mapping or sequence
		}
		out := Marshal(m)
		back, err := Unmarshal(out)
		if err != nil {
			t.Logf("parse error %v on:\n%s", err, out)
			return false
		}
		if !reflect.DeepEqual(back, v) {
			t.Logf("mismatch:\n%s\nwant %#v\ngot  %#v", out, v, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
