// Package timecurl reproduces the paper's measurement tool: curl's
// time_total, "everything from when Curl starts establishing a TCP
// connection until it gets a response for the HTTP request". Every
// figure except the pull times reports this client-side view.
package timecurl

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Request describes one HTTP-like exchange.
type Request struct {
	// Target is the (registered) service address the client talks to.
	Target netem.HostPort
	// Method and Path shape the request line; informational.
	Method string
	Path   string
	// PayloadSize is the request body size in bytes (ResNet: 83 KiB).
	PayloadSize int
	// Timeout bounds the whole exchange; zero means 75 s (curl's
	// default connect timeout magnitude).
	Timeout time.Duration
}

// Result is the timing breakdown of one exchange.
type Result struct {
	// Connect is the time until the TCP handshake completed
	// (curl: time_connect).
	Connect time.Duration
	// Total is the time until the full response arrived
	// (curl: time_total).
	Total time.Duration
	// ResponseBytes is the response size.
	ResponseBytes int
	// Response holds the response body.
	Response []byte
}

// Do runs one measured request from the client host. It mirrors
// timecurl.sh: start the clock, connect, send, await the response.
func Do(clk vclock.Clock, client *netem.Host, req Request) (Result, error) {
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = 75 * time.Second
	}
	method := req.Method
	if method == "" {
		method = "GET"
	}
	path := req.Path
	if path == "" {
		path = "/"
	}

	start := clk.Now()
	conn, err := client.DialTimeout(req.Target, timeout)
	if err != nil {
		return Result{}, fmt.Errorf("timecurl: connect %s: %w", req.Target, err)
	}
	defer conn.Close()
	res := Result{Connect: clk.Since(start)}

	header := fmt.Sprintf("%s %s HTTP/1.1\r\nHost: %s\r\n\r\n", method, path, req.Target)
	body := make([]byte, len(header)+req.PayloadSize)
	copy(body, header)
	if err := conn.Send(body); err != nil {
		return Result{}, fmt.Errorf("timecurl: send: %w", err)
	}
	remaining := timeout - clk.Since(start)
	if remaining <= 0 {
		return Result{}, netem.ErrTimeout
	}
	resp, err := conn.RecvTimeout(remaining)
	if err != nil {
		return Result{}, fmt.Errorf("timecurl: response: %w", err)
	}
	res.Total = clk.Since(start)
	res.ResponseBytes = len(resp)
	res.Response = resp
	return res, nil
}
