package timecurl

import (
	"errors"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func setup(clk *vclock.Virtual, serverDelay time.Duration) (*netem.Host, netem.HostPort) {
	n := netem.NewNetwork(clk, 1)
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	server := n.NewHost("server", netem.ParseIP("10.0.0.2"))
	n.Connect(client.NIC(), server.NIC(), netem.LinkConfig{Latency: 5 * time.Millisecond})
	ln, _ := server.Listen(80)
	clk.Go(func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			clk.Go(func() {
				for {
					req, err := c.Recv()
					if err != nil {
						return
					}
					clk.Sleep(serverDelay)
					c.Send(append([]byte("resp:"), req[:20]...))
				}
			})
		}
	})
	return client, server.Addr(80)
}

func TestDoMeasuresConnectAndTotal(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		client, addr := setup(clk, 10*time.Millisecond)
		res, err := Do(clk, client, Request{Target: addr})
		if err != nil {
			t.Fatal(err)
		}
		// Connect = SYN + SYN-ACK = 2 × 5ms.
		if res.Connect < 10*time.Millisecond || res.Connect > 15*time.Millisecond {
			t.Errorf("Connect = %v, want ≈10ms", res.Connect)
		}
		// Total = connect + request + server delay + response ≈ 30ms.
		if res.Total < 30*time.Millisecond || res.Total > 45*time.Millisecond {
			t.Errorf("Total = %v, want ≈30ms", res.Total)
		}
		if res.Total < res.Connect {
			t.Error("Total < Connect")
		}
		if res.ResponseBytes == 0 || len(res.Response) != res.ResponseBytes {
			t.Error("response accounting wrong")
		}
	})
}

func TestDoRefusedPort(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		client, addr := setup(clk, 0)
		closed := netem.HostPort{IP: addr.IP, Port: 81}
		if _, err := Do(clk, client, Request{Target: closed}); !errors.Is(err, netem.ErrRefused) {
			t.Errorf("err = %v, want ErrRefused", err)
		}
	})
}

func TestDoTimeout(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		client, addr := setup(clk, time.Hour) // server never answers in time
		start := clk.Now()
		_, err := Do(clk, client, Request{Target: addr, Timeout: 2 * time.Second})
		if err == nil {
			t.Fatal("no error despite silent server")
		}
		if d := clk.Since(start); d < 2*time.Second || d > 3*time.Second {
			t.Errorf("gave up after %v, want ≈2s", d)
		}
	})
}

func TestDoPayloadSizeAffectsTotal(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := netem.NewNetwork(clk, 1)
		client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
		server := n.NewHost("server", netem.ParseIP("10.0.0.2"))
		// 1 MB/s: an 83 KiB payload takes ≈85ms to serialize.
		n.Connect(client.NIC(), server.NIC(), netem.LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6})
		ln, _ := server.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					if _, err := c.Recv(); err == nil {
						c.Send([]byte("ok"))
					}
				})
			}
		})
		small, err := Do(clk, client, Request{Target: server.Addr(80)})
		if err != nil {
			t.Fatal(err)
		}
		large, err := Do(clk, client, Request{Target: server.Addr(80), Method: "POST", PayloadSize: 83 * 1024})
		if err != nil {
			t.Fatal(err)
		}
		if large.Total < small.Total+50*time.Millisecond {
			t.Errorf("POST 83KiB (%v) not slower than GET (%v)", large.Total, small.Total)
		}
	})
}
