// Package registry models container image registries: layered images,
// manifests, and the network cost of pulling them.
//
// Fig. 13 of the paper measures pull times from Docker Hub and Google
// Container Registry against a private registry on the local network.
// The model reproduces the effects that figure depends on: per-pull
// authentication, a manifest round trip, per-layer request/verification
// overhead (in bounded parallel waves), and aggregate download
// bandwidth. Layer deduplication happens in the containerd image store,
// which only asks the registry for layers it is missing.
package registry

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Digest identifies a layer's content.
type Digest string

// Layer is one content-addressed image layer.
type Layer struct {
	Digest Digest
	// Size is the compressed transfer size in bytes.
	Size int64
}

// Image is a named manifest: an ordered list of layers.
type Image struct {
	// Ref is the image reference, e.g. "nginx:1.23.2".
	Ref    string
	Layers []Layer
}

// TotalSize sums the transfer sizes of all layers.
func (im Image) TotalSize() int64 {
	var total int64
	for _, l := range im.Layers {
		total += l.Size
	}
	return total
}

// LayerDigest derives a deterministic content digest for synthetic
// layers. Layers shared between images (same base) must be constructed
// with the same digest so deduplication applies, exactly as on real
// registries.
func LayerDigest(name string, index int) Digest {
	return Digest(fmt.Sprintf("sha256:%s-%02d", name, index))
}

// Profile captures the network characteristics of one registry.
type Profile struct {
	// Name labels the profile in results ("Docker Hub", "private", ...).
	Name string
	// AuthTime is the token handshake cost paid once per pull.
	AuthTime time.Duration
	// RTT is one request round trip (manifest fetch, layer request).
	RTT time.Duration
	// Bandwidth is the aggregate download rate in bytes per second.
	Bandwidth float64
	// PerLayerOverhead is the fixed per-layer request + verification
	// cost, paid per parallel wave.
	PerLayerOverhead time.Duration
	// MaxParallelLayers bounds concurrent layer downloads
	// (containerd defaults to 3).
	MaxParallelLayers int
	// JitterFrac scales the uniform jitter applied to each cost.
	JitterFrac float64
}

// MiB is a byte-size convenience for profile and image construction.
const MiB = 1 << 20

// KiB is a byte-size convenience for profile and image construction.
const KiB = 1 << 10

// DockerHub models pulling over the WAN from Docker Hub.
func DockerHub() Profile {
	return Profile{
		Name:              "Docker Hub",
		AuthTime:          700 * time.Millisecond,
		RTT:               120 * time.Millisecond,
		Bandwidth:         75 * MiB,
		PerLayerOverhead:  180 * time.Millisecond,
		MaxParallelLayers: 3,
		JitterFrac:        0.10,
	}
}

// GCR models pulling from Google Container Registry (the ResNet image).
func GCR() Profile {
	return Profile{
		Name:              "GCR",
		AuthTime:          650 * time.Millisecond,
		RTT:               110 * time.Millisecond,
		Bandwidth:         85 * MiB,
		PerLayerOverhead:  170 * time.Millisecond,
		MaxParallelLayers: 3,
		JitterFrac:        0.10,
	}
}

// Private models a registry on the same local network as the edge
// cluster; the paper reports pulls improve by about 1.5–2 s.
func Private() Profile {
	return Profile{
		Name:              "private",
		AuthTime:          60 * time.Millisecond,
		RTT:               2 * time.Millisecond,
		Bandwidth:         110 * MiB,
		PerLayerOverhead:  25 * time.Millisecond,
		MaxParallelLayers: 3,
		JitterFrac:        0.05,
	}
}

// Registry is one image registry instance.
type Registry struct {
	clk     vclock.Clock
	rng     *vclock.Rand
	profile Profile

	mu     sync.Mutex
	images map[string]Image
}

// New returns an empty registry with the given network profile.
func New(clk vclock.Clock, seed int64, profile Profile) *Registry {
	return &Registry{
		clk:     clk,
		rng:     vclock.NewRand(seed),
		profile: profile,
		images:  make(map[string]Image),
	}
}

// Profile returns the registry's network profile.
func (r *Registry) Profile() Profile { return r.profile }

// Push publishes an image (instantaneous: publishing cost is not part of
// any evaluated path).
func (r *Registry) Push(im Image) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.images[im.Ref] = im
}

// Has reports whether ref is published.
func (r *Registry) Has(ref string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.images[ref]
	return ok
}

// jitter applies the profile's jitter to d.
func (r *Registry) jitter(d time.Duration) time.Duration {
	return r.rng.Jitter(d, r.profile.JitterFrac)
}

// FetchManifest performs authentication plus the manifest round trip and
// returns the image description. The call blocks for the modelled time.
func (r *Registry) FetchManifest(ref string) (Image, error) {
	r.mu.Lock()
	im, ok := r.images[ref]
	r.mu.Unlock()
	r.clk.Sleep(r.jitter(r.profile.AuthTime + r.profile.RTT))
	if !ok {
		return Image{}, fmt.Errorf("registry %s: manifest for %q not found", r.profile.Name, ref)
	}
	return im, nil
}

// DownloadLayers blocks for the time needed to transfer the given layers:
// per-layer request overhead in MaxParallelLayers-wide waves plus the
// aggregate bandwidth cost of the total bytes.
func (r *Registry) DownloadLayers(layers []Layer) time.Duration {
	if len(layers) == 0 {
		return 0
	}
	parallel := r.profile.MaxParallelLayers
	if parallel <= 0 {
		parallel = 1
	}
	waves := (len(layers) + parallel - 1) / parallel
	fixed := time.Duration(waves) * (r.profile.PerLayerOverhead + r.profile.RTT)

	var bytes int64
	for _, l := range layers {
		bytes += l.Size
	}
	var transfer time.Duration
	if r.profile.Bandwidth > 0 {
		transfer = time.Duration(float64(bytes) / r.profile.Bandwidth * float64(time.Second))
	}
	d := r.jitter(fixed + transfer)
	r.clk.Sleep(d)
	return d
}

// EstimatePull returns the modelled median pull duration for the given
// layers without blocking — used by schedulers that weigh deployment
// cost against redirecting farther away.
func (r *Registry) EstimatePull(layers []Layer) time.Duration {
	if len(layers) == 0 {
		return r.profile.AuthTime + r.profile.RTT
	}
	parallel := r.profile.MaxParallelLayers
	if parallel <= 0 {
		parallel = 1
	}
	waves := (len(layers) + parallel - 1) / parallel
	var bytes int64
	for _, l := range layers {
		bytes += l.Size
	}
	var transfer time.Duration
	if r.profile.Bandwidth > 0 {
		transfer = time.Duration(float64(bytes) / r.profile.Bandwidth * float64(time.Second))
	}
	return r.profile.AuthTime + r.profile.RTT +
		time.Duration(waves)*(r.profile.PerLayerOverhead+r.profile.RTT) + transfer
}
