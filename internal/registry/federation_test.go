package registry

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestFederationRoutesByPrefix(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		hub := New(clk, 1, DockerHub())
		gcr := New(clk, 2, GCR())
		hub.Push(testImage("nginx:1.23.2", MiB))
		gcr.Push(testImage("gcr.io/tensorflow-serving/resnet", MiB))
		fed := &Federation{Default: hub, Routes: map[string]Remote{"gcr.io/": gcr}}

		if fed.Name() != "federation" {
			t.Errorf("Name = %q", fed.Name())
		}
		if _, err := fed.FetchManifest("nginx:1.23.2"); err != nil {
			t.Errorf("default route: %v", err)
		}
		if _, err := fed.FetchManifest("gcr.io/tensorflow-serving/resnet"); err != nil {
			t.Errorf("gcr route: %v", err)
		}
		// An image only on GCR must NOT resolve through the default.
		if _, err := fed.FetchManifest("gcr.io/only-here"); err == nil {
			t.Error("missing gcr image resolved via wrong route")
		}
		// Layer downloads follow the same routing.
		im, _ := gcr.FetchManifest("gcr.io/tensorflow-serving/resnet")
		if d := fed.DownloadLayersFor("gcr.io/tensorflow-serving/resnet", im.Layers); d <= 0 {
			t.Error("routed layer download took no time")
		}
	})
}

func TestFederationLongestPrefixWins(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		a := New(clk, 1, Private())
		b := New(clk, 2, Private())
		c := New(clk, 3, Private())
		a.Push(testImage("reg.example/team/app", KiB))
		b.Push(testImage("reg.example/team/app", KiB))
		c.Push(testImage("reg.example/team/app", KiB))
		fed := &Federation{
			Default: a,
			Routes: map[string]Remote{
				"reg.example/":      b,
				"reg.example/team/": c,
			},
		}
		if got := fed.route("reg.example/team/app"); got != Remote(c) {
			t.Errorf("route = %v, want the longest prefix", got.Name())
		}
		if got := fed.route("reg.example/other"); got != Remote(b) {
			t.Error("shorter prefix not used")
		}
		if got := fed.route("docker.io/x"); got != Remote(a) {
			t.Error("default not used")
		}
	})
}

func TestEstimatePullEmptyLayers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		r := New(clk, 1, Private())
		est := r.EstimatePull(nil)
		p := r.Profile()
		if est != p.AuthTime+p.RTT {
			t.Errorf("empty estimate = %v, want auth+rtt", est)
		}
	})
}

func TestProfileZeroParallelTreatedAsOne(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		p := Private()
		p.MaxParallelLayers = 0
		p.JitterFrac = 0
		r := New(clk, 1, p)
		layers := []Layer{{Digest: "a", Size: MiB}, {Digest: "b", Size: MiB}}
		// Two layers, one at a time: two waves of fixed overhead.
		want := 2*(p.PerLayerOverhead+p.RTT) + time.Duration(float64(2*MiB)/p.Bandwidth*float64(time.Second))
		start := clk.Now()
		r.DownloadLayers(layers)
		if got := clk.Since(start); got != want {
			t.Errorf("serial download = %v, want %v", got, want)
		}
	})
}
