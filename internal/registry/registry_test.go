package registry

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func testImage(name string, layerSizes ...int64) Image {
	im := Image{Ref: name}
	for i, s := range layerSizes {
		im.Layers = append(im.Layers, Layer{Digest: LayerDigest(name, i), Size: s})
	}
	return im
}

func TestImageTotalSize(t *testing.T) {
	im := testImage("a", 100, 200, 300)
	if im.TotalSize() != 600 {
		t.Errorf("TotalSize = %d, want 600", im.TotalSize())
	}
	if (Image{}).TotalSize() != 0 {
		t.Error("empty image has nonzero size")
	}
}

func TestLayerDigestStableAndDistinct(t *testing.T) {
	if LayerDigest("nginx", 0) != LayerDigest("nginx", 0) {
		t.Error("digest not stable")
	}
	if LayerDigest("nginx", 0) == LayerDigest("nginx", 1) {
		t.Error("different indices collide")
	}
	if LayerDigest("nginx", 0) == LayerDigest("python", 0) {
		t.Error("different names collide")
	}
	if !strings.HasPrefix(string(LayerDigest("x", 0)), "sha256:") {
		t.Error("digest missing sha256 prefix")
	}
}

func TestPushAndResolve(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		r := New(clk, 1, Private())
		im := testImage("nginx:1.23.2", 10*MiB)
		r.Push(im)
		if !r.Has("nginx:1.23.2") {
			t.Error("Has = false after Push")
		}
		got, err := r.FetchManifest("nginx:1.23.2")
		if err != nil {
			t.Fatal(err)
		}
		if got.Ref != im.Ref || len(got.Layers) != 1 {
			t.Errorf("manifest = %+v", got)
		}
	})
}

func TestFetchManifestMissing(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		r := New(clk, 1, Private())
		if _, err := r.FetchManifest("nope"); err == nil {
			t.Error("missing manifest resolved")
		}
	})
}

func TestManifestFetchCostsAuthPlusRTT(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		p := DockerHub()
		p.JitterFrac = 0
		r := New(clk, 1, p)
		r.Push(testImage("a", MiB))
		start := clk.Now()
		r.FetchManifest("a")
		if d := clk.Since(start); d != p.AuthTime+p.RTT {
			t.Errorf("manifest fetch took %v, want %v", d, p.AuthTime+p.RTT)
		}
	})
}

func TestDownloadTimeScalesWithSize(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		p := DockerHub()
		p.JitterFrac = 0
		r := New(clk, 1, p)
		small := testImage("small", 1*MiB)
		large := testImage("large", 300*MiB)
		start := clk.Now()
		r.DownloadLayers(small.Layers)
		smallTime := clk.Since(start)
		start = clk.Now()
		r.DownloadLayers(large.Layers)
		largeTime := clk.Since(start)
		if largeTime <= smallTime {
			t.Errorf("300MiB (%v) not slower than 1MiB (%v)", largeTime, smallTime)
		}
		// 300 MiB at 75 MiB/s ≈ 4s of pure transfer.
		if largeTime < 3500*time.Millisecond || largeTime > 5*time.Second {
			t.Errorf("300MiB download = %v, want ≈4.3s", largeTime)
		}
	})
}

func TestLayerCountCostsWaves(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		p := DockerHub()
		p.JitterFrac = 0
		r := New(clk, 1, p)
		// Same bytes split into 1 vs 9 layers: 9 layers need 3 waves.
		one := []Layer{{Digest: "sha256:x", Size: 90 * MiB}}
		var nine []Layer
		for i := 0; i < 9; i++ {
			nine = append(nine, Layer{Digest: LayerDigest("n", i), Size: 10 * MiB})
		}
		start := clk.Now()
		r.DownloadLayers(one)
		oneTime := clk.Since(start)
		start = clk.Now()
		r.DownloadLayers(nine)
		nineTime := clk.Since(start)
		wave := p.PerLayerOverhead + p.RTT
		if got, want := nineTime-oneTime, 2*wave; got != want {
			t.Errorf("9-layer penalty = %v, want %v (2 extra waves)", got, want)
		}
	})
}

func TestDownloadNothingIsFree(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		r := New(clk, 1, DockerHub())
		start := clk.Now()
		if d := r.DownloadLayers(nil); d != 0 {
			t.Errorf("empty download reported %v", d)
		}
		if clk.Since(start) != 0 {
			t.Error("empty download advanced time")
		}
	})
}

func TestPrivateRegistryFaster(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		nginx := testImage("nginx", 30*MiB, 25*MiB, 25*MiB, 25*MiB, 20*MiB, 10*MiB)

		pull := func(p Profile) time.Duration {
			p.JitterFrac = 0
			r := New(clk, 1, p)
			r.Push(nginx)
			start := clk.Now()
			if _, err := r.FetchManifest(nginx.Ref); err != nil {
				t.Fatal(err)
			}
			r.DownloadLayers(nginx.Layers)
			return clk.Since(start)
		}
		hub := pull(DockerHub())
		private := pull(Private())
		saved := hub - private
		// Paper: pulls from the private registry improve by ≈1.5–2s.
		if saved < 1200*time.Millisecond || saved > 3*time.Second {
			t.Errorf("private registry saves %v (hub %v, private %v), want ≈1.5–2s", saved, hub, private)
		}
	})
}

func TestEstimateMatchesBlockingPull(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		p := GCR()
		p.JitterFrac = 0
		r := New(clk, 1, p)
		im := testImage("resnet", 100*MiB, 100*MiB, 108*MiB)
		r.Push(im)
		est := r.EstimatePull(im.Layers)
		start := clk.Now()
		r.FetchManifest(im.Ref)
		r.DownloadLayers(im.Layers)
		actual := clk.Since(start)
		if est != actual {
			t.Errorf("estimate %v != actual %v with zero jitter", est, actual)
		}
	})
}

// Property: download time is monotone in both byte size and layer count.
func TestDownloadMonotonicityProperty(t *testing.T) {
	f := func(sizeA, sizeB uint32, layersA, layersB uint8) bool {
		la, lb := int(layersA%12)+1, int(layersB%12)+1
		sa, sb := int64(sizeA%1000)*MiB/10, int64(sizeB%1000)*MiB/10
		p := DockerHub()
		p.JitterFrac = 0
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			r := New(clk, 1, p)
			mk := func(n int, total int64) []Layer {
				var ls []Layer
				for i := 0; i < n; i++ {
					ls = append(ls, Layer{Digest: LayerDigest("p", i), Size: total / int64(n)})
				}
				return ls
			}
			da := r.EstimatePull(mk(la, sa))
			db := r.EstimatePull(mk(lb, sb))
			if sa <= sb && la <= lb && da > db {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
