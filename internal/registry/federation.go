package registry

import (
	"sort"
	"strings"
	"time"
)

// Remote is the pull-side view of an image source: what containerd
// needs to fetch a manifest and its layers.
type Remote interface {
	// Name labels the source in results.
	Name() string
	// FetchManifest resolves a reference (auth + manifest round trip).
	FetchManifest(ref string) (Image, error)
	// DownloadLayersFor transfers the given layers of ref, blocking for
	// the modelled time, which it also returns. The reference selects
	// the backing registry in federated setups.
	DownloadLayersFor(ref string, layers []Layer) time.Duration
}

// Name implements Remote.
func (r *Registry) Name() string { return r.profile.Name }

// DownloadLayersFor implements Remote; a single registry ignores the
// reference.
func (r *Registry) DownloadLayersFor(ref string, layers []Layer) time.Duration {
	return r.DownloadLayers(layers)
}

// Federation routes pulls to different registries by reference prefix —
// the evaluation pulls Nginx from Docker Hub but ResNet from
// "gcr.io/...", exactly as a containerd resolver does.
type Federation struct {
	// Default serves references matching no route.
	Default Remote
	// Routes maps reference prefixes (e.g. "gcr.io/") to registries.
	Routes map[string]Remote
}

// Name implements Remote.
func (f *Federation) Name() string { return "federation" }

// route picks the registry for a reference: longest matching prefix.
func (f *Federation) route(ref string) Remote {
	var best Remote
	bestLen := -1
	prefixes := make([]string, 0, len(f.Routes))
	for p := range f.Routes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		if strings.HasPrefix(ref, p) && len(p) > bestLen {
			best, bestLen = f.Routes[p], len(p)
		}
	}
	if best == nil {
		return f.Default
	}
	return best
}

// FetchManifest implements Remote.
func (f *Federation) FetchManifest(ref string) (Image, error) {
	return f.route(ref).FetchManifest(ref)
}

// DownloadLayersFor implements Remote, routing by the reference.
func (f *Federation) DownloadLayersFor(ref string, layers []Layer) time.Duration {
	return f.route(ref).DownloadLayersFor(ref, layers)
}
