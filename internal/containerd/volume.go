package containerd

import "sync"

// Volume emulates a host-path volume shared between containers. The
// Nginx+Py service of the evaluation uses one: the Python sidecar writes
// index.html once per second and the Nginx container serves it.
type Volume struct {
	// Name identifies the volume in specs and inspection output.
	Name string

	mu    sync.Mutex
	files map[string][]byte
}

// NewVolume returns an empty named volume.
func NewVolume(name string) *Volume {
	return &Volume{Name: name, files: make(map[string][]byte)}
}

// Write stores the contents of one file.
func (v *Volume) Write(path string, data []byte) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.files[path] = append([]byte(nil), data...)
}

// Read returns a copy of one file's contents.
func (v *Volume) Read(path string) ([]byte, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	data, ok := v.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Files returns the stored file names.
func (v *Volume) Files() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.files))
	for name := range v.files {
		out = append(out, name)
	}
	return out
}
