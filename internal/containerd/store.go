package containerd

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Store is the content-addressed image store of one runtime: layers are
// refcounted across images, so removing an image keeps layers other
// images still use, and re-pulling an image only fetches layers that are
// actually missing — the behaviour the paper's Delete phase discussion
// relies on.
type Store struct {
	clk    vclock.Clock
	rng    *vclock.Rand
	timing Timing

	mu     sync.Mutex
	layers map[registry.Digest]*layerEntry
	images map[string]registry.Image
	pulls  map[string]*inflightPull
}

type layerEntry struct {
	size int64
	refs int
}

type inflightPull struct {
	done *vclock.Gate
	err  error
}

// NewStore returns an empty image store.
func NewStore(clk vclock.Clock, seed int64, timing Timing) *Store {
	return &Store{
		clk:    clk,
		rng:    vclock.NewRand(seed),
		timing: timing,
		layers: make(map[registry.Digest]*layerEntry),
		images: make(map[string]registry.Image),
		pulls:  make(map[string]*inflightPull),
	}
}

// HasImage reports whether ref is fully present.
func (s *Store) HasImage(ref string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.images[ref]
	return ok
}

// Images lists the cached image references.
func (s *Store) Images() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.images))
	for ref := range s.images {
		out = append(out, ref)
	}
	return out
}

// Image returns the cached manifest for ref.
func (s *Store) Image(ref string) (registry.Image, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	im, ok := s.images[ref]
	return im, ok
}

// CachedBytes returns the total size of stored layers.
func (s *Store) CachedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, e := range s.layers {
		total += e.size
	}
	return total
}

// missingLayers returns the layers of im not yet in the store.
func (s *Store) missingLayers(im registry.Image) []registry.Layer {
	s.mu.Lock()
	defer s.mu.Unlock()
	var missing []registry.Layer
	for _, l := range im.Layers {
		if _, ok := s.layers[l.Digest]; !ok {
			missing = append(missing, l)
		}
	}
	return missing
}

// Pull fetches ref from reg, downloading only missing layers, and
// registers the image. Concurrent pulls of the same ref coalesce into
// one download — essential when a deployment burst hits a cold cache.
// It returns the time this caller waited.
func (s *Store) Pull(reg registry.Remote, ref string) (time.Duration, error) {
	start := s.clk.Now()
	s.mu.Lock()
	if _, cached := s.images[ref]; cached {
		s.mu.Unlock()
		return 0, nil
	}
	if fl := s.pulls[ref]; fl != nil {
		s.mu.Unlock()
		fl.done.Wait(s.clk)
		return s.clk.Since(start), fl.err
	}
	fl := &inflightPull{done: vclock.NewGate()}
	s.pulls[ref] = fl
	s.mu.Unlock()

	fl.err = s.doPull(reg, ref)

	s.mu.Lock()
	delete(s.pulls, ref)
	s.mu.Unlock()
	fl.done.Open()
	return s.clk.Since(start), fl.err
}

func (s *Store) doPull(reg registry.Remote, ref string) error {
	im, err := reg.FetchManifest(ref)
	if err != nil {
		return err
	}
	missing := s.missingLayers(im)
	reg.DownloadLayersFor(ref, missing)
	// Unpack the downloaded bytes into the snapshotter.
	if s.timing.ExtractBandwidth > 0 {
		var bytes int64
		for _, l := range missing {
			bytes += l.Size
		}
		extract := time.Duration(float64(bytes) / s.timing.ExtractBandwidth * float64(time.Second))
		s.clk.Sleep(s.rng.Jitter(extract, s.timing.JitterFrac))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, cached := s.images[ref]; cached {
		return nil
	}
	for _, l := range im.Layers {
		e := s.layers[l.Digest]
		if e == nil {
			e = &layerEntry{size: l.Size}
			s.layers[l.Digest] = e
		}
		e.refs++
	}
	s.images[ref] = im
	return nil
}

// RemoveImage deletes ref from the store. Layers shared with other
// images survive; unreferenced layers are deleted.
func (s *Store) RemoveImage(ref string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	im, ok := s.images[ref]
	if !ok {
		return fmt.Errorf("containerd: image %q not in store", ref)
	}
	for _, l := range im.Layers {
		e := s.layers[l.Digest]
		if e == nil {
			continue
		}
		e.refs--
		if e.refs <= 0 {
			delete(s.layers, l.Digest)
		}
	}
	delete(s.images, ref)
	return nil
}

// HasLayer reports whether a layer digest is present (test hook for the
// dedup invariants).
func (s *Store) HasLayer(d registry.Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.layers[d]
	return ok
}
