// Package containerd models the container runtime shared by the Docker
// engine and the Kubernetes kubelet in the evaluation testbed (both run
// on the same Edge Gateway Server and the same containerd in the paper).
//
// It provides a refcounted, layer-deduplicating image store with
// coalesced pulls, and the container lifecycle whose startup cost is
// dominated by network-namespace creation (Mohan et al., HotCloud'19 —
// reference [23] of the paper: ≈90% of container startup time).
package containerd

import "time"

// Timing holds the runtime cost model. All values are medians; each
// operation applies JitterFrac of uniform jitter.
type Timing struct {
	// SnapshotPerLayer is the per-layer cost of preparing the overlay
	// snapshot during container creation.
	SnapshotPerLayer time.Duration
	// CreateBase is the fixed cost of creating a container (config,
	// spec validation, snapshot commit).
	CreateBase time.Duration
	// NetNSSetup is the network-namespace creation cost paid on start —
	// the dominant share of container startup.
	NetNSSetup time.Duration
	// ExecStart is the cost of launching the container process after
	// the sandbox exists.
	ExecStart time.Duration
	// StopCost is the cost of stopping the process (SIGTERM path).
	StopCost time.Duration
	// RemoveCost is the cost of deleting container state and snapshot.
	RemoveCost time.Duration
	// ExtractBandwidth is the unpack rate of pulled layers in bytes/s.
	ExtractBandwidth float64
	// JitterFrac scales the uniform jitter on every operation.
	JitterFrac float64
}

// DefaultTiming returns the cost model calibrated against the paper's
// EGS (AMD Threadripper 2920X): Docker scale-up of a trivial container
// lands below one second including readiness detection.
func DefaultTiming() Timing {
	return Timing{
		SnapshotPerLayer: 4 * time.Millisecond,
		CreateBase:       60 * time.Millisecond,
		NetNSSetup:       320 * time.Millisecond,
		ExecStart:        35 * time.Millisecond,
		StopCost:         30 * time.Millisecond,
		RemoveCost:       25 * time.Millisecond,
		ExtractBandwidth: 250 << 20, // 250 MiB/s
		JitterFrac:       0.08,
	}
}
