package containerd

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// env bundles one runtime on a two-host network (runtime host + client).
type env struct {
	clk    *vclock.Virtual
	net    *netem.Network
	rt     *Runtime
	client *netem.Host
	reg    *registry.Registry
}

func newEnv() *env {
	clk := vclock.New()
	n := netem.NewNetwork(clk, 1)
	server := n.NewHost("egs", netem.ParseIP("10.0.0.2"))
	client := n.NewHost("client", netem.ParseIP("10.0.0.3"))
	n.Connect(server.NIC(), client.NIC(), netem.LinkConfig{Latency: time.Millisecond})
	return &env{
		clk:    clk,
		net:    n,
		rt:     NewRuntime(clk, 2, server, DefaultTiming()),
		client: client,
		reg:    registry.New(clk, 3, registry.Private()),
	}
}

func imageOf(ref string, layerSizes ...int64) registry.Image {
	im := registry.Image{Ref: ref}
	for i, s := range layerSizes {
		im.Layers = append(im.Layers, registry.Layer{Digest: registry.LayerDigest(ref, i), Size: s})
	}
	return im
}

func echoHandler() Handler {
	return HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
		return append([]byte("ok:"), req...)
	})
}

func (e *env) pulled(ref string, layerSizes ...int64) {
	e.reg.Push(imageOf(ref, layerSizes...))
	if _, err := e.rt.Pull(e.reg, ref); err != nil {
		panic(err)
	}
}

func TestPullRegistersImage(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.reg.Push(imageOf("nginx", 10*registry.MiB, 5*registry.MiB))
		d, err := e.rt.Pull(e.reg, "nginx")
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Error("pull reported zero duration")
		}
		if !e.rt.Store().HasImage("nginx") {
			t.Error("image missing after pull")
		}
		// Second pull is a cache hit.
		d2, err := e.rt.Pull(e.reg, "nginx")
		if err != nil || d2 != 0 {
			t.Errorf("cached pull = %v, %v; want 0, nil", d2, err)
		}
	})
}

func TestPullMissingImageFails(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		if _, err := e.rt.Pull(e.reg, "ghost"); err == nil {
			t.Error("pull of unpublished image succeeded")
		}
	})
}

func TestConcurrentPullsCoalesce(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.reg.Push(imageOf("big", 200*registry.MiB))
		var g vclock.Group
		errs := make([]error, 8)
		for i := 0; i < 8; i++ {
			i := i
			g.Go(e.clk, func() {
				_, errs[i] = e.rt.Pull(e.reg, "big")
			})
		}
		g.Wait(e.clk)
		for i, err := range errs {
			if err != nil {
				t.Errorf("pull %d: %v", i, err)
			}
		}
		if !e.rt.Store().HasImage("big") {
			t.Fatal("image missing")
		}
		// Coalescing means the store downloaded the bytes exactly once:
		// cached bytes equal one copy of the image.
		if got := e.rt.Store().CachedBytes(); got != 200*registry.MiB {
			t.Errorf("cached bytes = %d, want one copy", got)
		}
	})
}

func TestLayerDedupAcrossImages(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		shared := registry.Layer{Digest: "sha256:base", Size: 100 * registry.MiB}
		a := registry.Image{Ref: "a", Layers: []registry.Layer{shared, {Digest: "sha256:a1", Size: 10 * registry.MiB}}}
		b := registry.Image{Ref: "b", Layers: []registry.Layer{shared, {Digest: "sha256:b1", Size: 20 * registry.MiB}}}
		e.reg.Push(a)
		e.reg.Push(b)
		dA, _ := e.rt.Pull(e.reg, "a")
		dB, _ := e.rt.Pull(e.reg, "b")
		if dB >= dA {
			t.Errorf("pull of b (%v) not faster than a (%v) despite shared 100MiB base", dB, dA)
		}
		if got, want := e.rt.Store().CachedBytes(), int64(130*registry.MiB); got != want {
			t.Errorf("cached bytes = %d, want %d (base stored once)", got, want)
		}
		// Removing a keeps the shared base (b still references it).
		if err := e.rt.Store().RemoveImage("a"); err != nil {
			t.Fatal(err)
		}
		if !e.rt.Store().HasLayer("sha256:base") {
			t.Error("shared base deleted while still referenced")
		}
		if e.rt.Store().HasLayer("sha256:a1") {
			t.Error("unreferenced layer survived removal")
		}
		// Removing b releases everything.
		if err := e.rt.Store().RemoveImage("b"); err != nil {
			t.Fatal(err)
		}
		if e.rt.Store().CachedBytes() != 0 {
			t.Error("layers leaked after removing all images")
		}
	})
}

func TestRemoveMissingImageFails(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		if err := e.rt.Store().RemoveImage("ghost"); err == nil {
			t.Error("removing unknown image succeeded")
		}
	})
}

func TestCreateRequiresPulledImage(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		_, err := e.rt.Create(Spec{Name: "c1", Image: "ghost"})
		if err == nil {
			t.Error("create without image succeeded")
		}
	})
}

func TestCreateRequiresHandlerForPort(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("nginx", registry.MiB)
		if _, err := e.rt.Create(Spec{Name: "c1", Image: "nginx", Port: 80}); err == nil {
			t.Error("create with port but no handler succeeded")
		}
	})
}

func TestCreateDuplicateNameFails(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("nginx", registry.MiB)
		spec := Spec{Name: "c1", Image: "nginx"}
		if _, err := e.rt.Create(spec); err != nil {
			t.Fatal(err)
		}
		if _, err := e.rt.Create(spec); err == nil {
			t.Error("duplicate create succeeded")
		}
	})
}

func TestStartupLifecycleAndServing(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("nginx", 100*registry.MiB)
		c, err := e.rt.Create(Spec{
			Name:       "web",
			Image:      "nginx",
			Port:       80,
			ReadyDelay: 40 * time.Millisecond,
			Handler:    echoHandler(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if c.State() != StateCreated {
			t.Errorf("state after create = %v", c.State())
		}
		start := e.clk.Now()
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if c.State() != StateRunning {
			t.Errorf("state after start = %v", c.State())
		}
		if !c.WaitReady(5 * time.Second) {
			t.Fatal("container never became ready")
		}
		startup := e.clk.Since(start)
		// NetNS (320ms) dominates: Mohan et al.'s ≈90% claim means
		// startup sits near 400ms for a trivial app.
		if startup < 300*time.Millisecond || startup > 600*time.Millisecond {
			t.Errorf("startup = %v, want ≈0.4s dominated by netns setup", startup)
		}

		conn, err := e.client.Dial(c.Addr())
		if err != nil {
			t.Fatalf("dial ready container: %v", err)
		}
		conn.Send([]byte("ping"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "ok:ping" {
			t.Errorf("resp = %q, %v", resp, err)
		}
	})
}

func TestPortClosedUntilReady(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("slow", registry.MiB)
		c, _ := e.rt.Create(Spec{
			Name:       "slow",
			Image:      "slow",
			Port:       80,
			ReadyDelay: 2 * time.Second,
			Handler:    echoHandler(),
		})
		c.Start()
		// Immediately after start the app is still initializing: the SDN
		// controller's port probe must see a refused connection.
		if _, err := e.client.Dial(c.Addr()); err == nil {
			t.Error("dial succeeded before app ready")
		}
		c.WaitReady(10 * time.Second)
		if _, err := e.client.Dial(c.Addr()); err != nil {
			t.Errorf("dial after ready: %v", err)
		}
	})
}

func TestStartInvalidStates(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("img", registry.MiB)
		c, _ := e.rt.Create(Spec{Name: "c", Image: "img"})
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err == nil {
			t.Error("double start succeeded")
		}
		c.Remove()
		if err := c.Start(); err == nil {
			t.Error("start after remove succeeded")
		}
	})
}

func TestStopClosesPortAndAbortsInFlight(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("img", registry.MiB)
		c, _ := e.rt.Create(Spec{
			Name:  "c",
			Image: "img",
			Port:  80,
			Handler: HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
				clk.Sleep(5 * time.Second) // slow request
				return []byte("late")
			}),
		})
		c.Start()
		c.WaitReady(time.Second)
		conn, err := e.client.Dial(c.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("x"))
		e.clk.Sleep(100 * time.Millisecond)
		if err := c.Stop(); err != nil {
			t.Fatal(err)
		}
		if err := c.Stop(); err != nil {
			t.Errorf("idempotent stop: %v", err)
		}
		if e.rt.Host().Listening(c.HostPort()) {
			t.Error("port still open after stop")
		}
		if _, err := conn.RecvTimeout(30 * time.Second); err == nil {
			t.Error("in-flight request answered after stop")
		}
		if _, err := e.client.Dial(c.Addr()); err == nil {
			t.Error("new dial succeeded after stop")
		}
	})
}

func TestRestartAfterStop(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("img", registry.MiB)
		c, _ := e.rt.Create(Spec{Name: "c", Image: "img", Port: 80, Handler: echoHandler()})
		c.Start()
		c.WaitReady(time.Second)
		c.Stop()
		if err := c.Start(); err != nil {
			t.Fatalf("restart: %v", err)
		}
		if !c.WaitReady(time.Second) {
			t.Fatal("not ready after restart")
		}
		if _, err := e.client.Dial(c.Addr()); err != nil {
			t.Errorf("dial after restart: %v", err)
		}
	})
}

func TestRemoveForgetsContainer(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("img", registry.MiB)
		c, _ := e.rt.Create(Spec{Name: "c", Image: "img"})
		if err := c.Remove(); err != nil {
			t.Fatal(err)
		}
		if err := c.Remove(); err != nil {
			t.Errorf("idempotent remove: %v", err)
		}
		if e.rt.Get("c") != nil {
			t.Error("runtime still lists removed container")
		}
		// Name is reusable.
		if _, err := e.rt.Create(Spec{Name: "c", Image: "img"}); err != nil {
			t.Errorf("recreate after remove: %v", err)
		}
	})
}

func TestBackgroundRunsUntilStop(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("py", registry.MiB)
		vol := NewVolume("www")
		ticks := 0
		c, _ := e.rt.Create(Spec{
			Name:  "writer",
			Image: "py",
			Background: func(clk vclock.Clock, stop *vclock.Gate) {
				for !stop.IsOpen() {
					ticks++
					vol.Write("index.html", []byte(clk.Now().String()))
					if stop.WaitTimeout(clk, time.Second) {
						return
					}
				}
			},
			Mounts: []*Volume{vol},
		})
		c.Start()
		e.clk.Sleep(5500 * time.Millisecond)
		c.Stop()
		after := ticks
		e.clk.Sleep(3 * time.Second)
		if ticks != after {
			t.Errorf("background kept running after stop (%d → %d)", after, ticks)
		}
		if after < 5 {
			t.Errorf("background ticked %d times in 5.5s, want ≥5", after)
		}
		if _, ok := vol.Read("index.html"); !ok {
			t.Error("volume missing written file")
		}
	})
}

func TestListBySelector(t *testing.T) {
	e := newEnv()
	e.clk.Run(func() {
		e.pulled("img", registry.MiB)
		e.rt.Create(Spec{Name: "a", Image: "img", Labels: map[string]string{"edge.service": "svc1", "tier": "web"}})
		e.rt.Create(Spec{Name: "b", Image: "img", Labels: map[string]string{"edge.service": "svc2"}})
		e.rt.Create(Spec{Name: "c", Image: "img"})
		if got := len(e.rt.List(map[string]string{"edge.service": "svc1"})); got != 1 {
			t.Errorf("selector match = %d, want 1", got)
		}
		if got := len(e.rt.List(nil)); got != 3 {
			t.Errorf("nil selector = %d, want 3", got)
		}
		if got := len(e.rt.List(map[string]string{"edge.service": "zzz"})); got != 0 {
			t.Errorf("no-match selector = %d, want 0", got)
		}
	})
}

func TestVolumeReadWrite(t *testing.T) {
	v := NewVolume("data")
	if _, ok := v.Read("x"); ok {
		t.Error("read of missing file succeeded")
	}
	v.Write("x", []byte("1"))
	got, ok := v.Read("x")
	if !ok || string(got) != "1" {
		t.Errorf("Read = %q, %v", got, ok)
	}
	got[0] = 'z' // caller's copy must not alias the stored file
	if again, _ := v.Read("x"); string(again) != "1" {
		t.Error("Read returned aliased data")
	}
	if len(v.Files()) != 1 {
		t.Errorf("Files = %v", v.Files())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateCreated: "created",
		StateRunning: "running",
		StateStopped: "stopped",
		StateRemoved: "removed",
		State(99):    "state(99)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

// Property: the store's cached byte count always equals the sum of
// distinct live layers after any pull/remove sequence.
func TestStoreRefcountProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			reg := registry.New(clk, 1, registry.Private())
			st := NewStore(clk, 2, DefaultTiming())
			// Three images with overlapping layers.
			base := registry.Layer{Digest: "sha256:base", Size: 50}
			imgs := []registry.Image{
				{Ref: "i0", Layers: []registry.Layer{base, {Digest: "sha256:l0", Size: 10}}},
				{Ref: "i1", Layers: []registry.Layer{base, {Digest: "sha256:l1", Size: 20}}},
				{Ref: "i2", Layers: []registry.Layer{{Digest: "sha256:l2", Size: 30}}},
			}
			for _, im := range imgs {
				reg.Push(im)
			}
			for _, op := range ops {
				im := imgs[int(op)%3]
				if op&0x80 != 0 && st.HasImage(im.Ref) {
					st.RemoveImage(im.Ref)
				} else if !st.HasImage(im.Ref) {
					st.Pull(reg, im.Ref)
				}
			}
			// Recompute expected bytes from live images.
			live := make(map[registry.Digest]int64)
			for _, im := range imgs {
				if st.HasImage(im.Ref) {
					for _, l := range im.Layers {
						live[l.Digest] = l.Size
					}
				}
			}
			var want int64
			for _, s := range live {
				want += s
			}
			if st.CachedBytes() != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
