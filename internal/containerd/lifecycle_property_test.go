package containerd

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestLifecycleStateMachineProperty drives one container with random
// operation sequences and checks every transition against the legal
// state machine: Created → Running ↔ Stopped → Removed.
func TestLifecycleStateMachineProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		if len(ops) > 24 {
			ops = ops[:24]
		}
		ok := true
		e := newEnv()
		e.clk.Run(func() {
			e.pulled("img", registry.MiB)
			c, err := e.rt.Create(Spec{
				Name:       "c",
				Image:      "img",
				Port:       80,
				ReadyDelay: 5 * time.Millisecond,
				Handler:    echoHandler(),
			})
			if err != nil {
				ok = false
				return
			}
			state := StateCreated
			for _, op := range ops {
				switch op % 3 {
				case 0: // Start
					err := c.Start()
					legal := state == StateCreated || state == StateStopped
					if (err == nil) != legal {
						ok = false
						return
					}
					if legal {
						state = StateRunning
					}
				case 1: // Stop
					err := c.Stop()
					// Stop succeeds from Running and is a no-op from
					// Stopped; it fails from Created/Removed.
					legal := state == StateRunning || state == StateStopped
					if (err == nil) != legal {
						ok = false
						return
					}
					if state == StateRunning {
						state = StateStopped
					}
				case 2: // Remove (always succeeds, idempotent)
					if err := c.Remove(); err != nil {
						ok = false
						return
					}
					state = StateRemoved
				}
				if state != StateRemoved && c.State() != state {
					ok = false
					return
				}
				if state == StateRemoved {
					// After removal the runtime must not know the name.
					if e.rt.Get("c") != nil {
						ok = false
					}
					return
				}
				// Port invariant: the host port is open only while
				// running and ready.
				if state != StateRunning && e.rt.Host().Listening(c.HostPort()) {
					ok = false
					return
				}
				e.clk.Sleep(10 * time.Millisecond)
				if state == StateRunning && !c.Ready() {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPullIdempotentProperty: pulling any subset sequence of catalog-like
// images in any order yields the same store contents.
func TestPullIdempotentProperty(t *testing.T) {
	f := func(order []uint8) bool {
		if len(order) > 20 {
			order = order[:20]
		}
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			reg := registry.New(clk, 1, registry.Private())
			imgs := []registry.Image{
				{Ref: "a", Layers: []registry.Layer{{Digest: "sha256:base", Size: 10}, {Digest: "sha256:a", Size: 1}}},
				{Ref: "b", Layers: []registry.Layer{{Digest: "sha256:base", Size: 10}, {Digest: "sha256:b", Size: 2}}},
				{Ref: "c", Layers: []registry.Layer{{Digest: "sha256:c", Size: 3}}},
			}
			for _, im := range imgs {
				reg.Push(im)
			}
			st := NewStore(clk, 2, DefaultTiming())
			pulled := map[string]bool{}
			for _, o := range order {
				ref := imgs[int(o)%3].Ref
				if _, err := st.Pull(reg, ref); err != nil {
					ok = false
					return
				}
				pulled[ref] = true
			}
			var want int64
			seen := map[registry.Digest]bool{}
			for _, im := range imgs {
				if !pulled[im.Ref] {
					continue
				}
				for _, l := range im.Layers {
					if !seen[l.Digest] {
						seen[l.Digest] = true
						want += l.Size
					}
				}
			}
			if st.CachedBytes() != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
