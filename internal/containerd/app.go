package containerd

import (
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// AppInstance is the per-container behaviour of one application
// instance: the request handler and an optional background process.
type AppInstance struct {
	Handler    Handler
	Background func(clk vclock.Clock, stop *vclock.Gate)
}

// AppModel describes how containers of a given image behave. The
// catalog package defines one per evaluated edge service; the Docker
// engine and the kubelet resolve images through it when building
// container specs.
type AppModel struct {
	// Port is the container port the app serves; 0 for sidecars.
	Port uint16
	// ReadyDelay is the median app initialization time after exec.
	ReadyDelay time.Duration
	// ReadySigma is the log-normal shape of ReadyDelay.
	ReadySigma float64
	// Instantiate builds the per-instance behaviour; vols maps volume
	// names available to the pod/container group.
	Instantiate func(vols map[string]*Volume) AppInstance
}

// AppResolver maps image references to application models.
type AppResolver interface {
	Resolve(image string) (AppModel, error)
}

// instantiate is a nil-safe helper for building the app instance.
func (m AppModel) instantiate(vols map[string]*Volume) AppInstance {
	if m.Instantiate == nil {
		return AppInstance{Handler: HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
			return []byte("ok")
		})}
	}
	return m.Instantiate(vols)
}

// BuildSpec assembles a containerd Spec from an app model.
func (m AppModel) BuildSpec(name, image string, labels map[string]string, vols map[string]*Volume) Spec {
	inst := m.instantiate(vols)
	var mounts []*Volume
	for _, v := range vols {
		mounts = append(mounts, v)
	}
	return Spec{
		Name:       name,
		Image:      image,
		Port:       m.Port,
		ReadyDelay: m.ReadyDelay,
		ReadySigma: m.ReadySigma,
		Handler:    inst.Handler,
		Background: inst.Background,
		Labels:     labels,
		Mounts:     mounts,
	}
}
