package containerd

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Runtime is one containerd instance bound to a host: it owns the image
// store, creates containers, and maps their ports onto the host.
type Runtime struct {
	clk    vclock.Clock
	rng    *vclock.Rand
	host   *netem.Host
	timing Timing
	store  *Store

	mu         sync.Mutex
	containers map[string]*Container
	nextPort   uint16
}

// NewRuntime returns a runtime on host with an empty image store.
func NewRuntime(clk vclock.Clock, seed int64, host *netem.Host, timing Timing) *Runtime {
	return NewRuntimeWithStore(clk, seed, host, timing, NewStore(clk, seed+1, timing))
}

// NewRuntimeWithStore returns a runtime sharing an existing image store.
// The evaluation's EGS runs Docker and Kubernetes over the same
// containerd, so a pull by one is a cache hit for the other.
func NewRuntimeWithStore(clk vclock.Clock, seed int64, host *netem.Host, timing Timing, store *Store) *Runtime {
	return &Runtime{
		clk:        clk,
		rng:        vclock.NewRand(seed),
		host:       host,
		timing:     timing,
		store:      store,
		containers: make(map[string]*Container),
		nextPort:   30000,
	}
}

// SetPortBase moves the dynamic host-port allocator; two runtimes
// sharing one host must use disjoint ranges.
func (r *Runtime) SetPortBase(base uint16) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextPort = base
}

// Clock returns the runtime's time source.
func (r *Runtime) Clock() vclock.Clock { return r.clk }

// Host returns the host the runtime serves ports on.
func (r *Runtime) Host() *netem.Host { return r.host }

// Store returns the runtime's image store.
func (r *Runtime) Store() *Store { return r.store }

// Timing returns the runtime's cost model.
func (r *Runtime) Timing() Timing { return r.timing }

// Pull fetches ref from reg into the image store (Pull phase of the
// deployment process). It returns the time this caller waited.
func (r *Runtime) Pull(reg registry.Remote, ref string) (time.Duration, error) {
	return r.store.Pull(reg, ref)
}

// Create builds a container from spec (Create phase). The image must be
// present in the store; the paper's dispatcher runs the Pull phase
// first. The per-layer snapshot cost makes creation of many-layer
// images slightly more expensive, matching the ≈100 ms create overhead
// in Fig. 12.
func (r *Runtime) Create(spec Spec) (*Container, error) {
	im, ok := r.store.Image(spec.Image)
	if !ok {
		return nil, fmt.Errorf("containerd: image %q not pulled", spec.Image)
	}
	if spec.Port != 0 && spec.Handler == nil {
		return nil, fmt.Errorf("containerd: container %q exposes port %d without a handler", spec.Name, spec.Port)
	}
	r.mu.Lock()
	if _, dup := r.containers[spec.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("containerd: container %q already exists", spec.Name)
	}
	hostPort := spec.HostPort
	if spec.Port != 0 && hostPort == 0 {
		hostPort = r.nextPort
		r.nextPort++
	}
	c := &Container{
		rt:       r,
		spec:     spec,
		state:    StateCreated,
		hostPort: hostPort,
		ready:    vclock.NewGate(),
		stop:     vclock.NewGate(),
	}
	r.containers[spec.Name] = c
	r.mu.Unlock()

	cost := r.timing.CreateBase + time.Duration(len(im.Layers))*r.timing.SnapshotPerLayer
	r.clk.Sleep(r.rng.Jitter(cost, r.timing.JitterFrac))
	return c, nil
}

// Get returns the container with the given name, or nil.
func (r *Runtime) Get(name string) *Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.containers[name]
}

// List returns containers whose labels include all entries of selector.
// A nil selector matches everything.
func (r *Runtime) List(selector map[string]string) []*Container {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Container
	for _, c := range r.containers {
		if matchesLabels(c.spec.Labels, selector) {
			out = append(out, c)
		}
	}
	return out
}

// matchesLabels reports whether labels contains every selector entry.
func matchesLabels(labels, selector map[string]string) bool {
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// forget removes a container from the runtime's index after Remove.
func (r *Runtime) forget(c *Container) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.containers[c.spec.Name] == c {
		delete(r.containers, c.spec.Name)
	}
}
