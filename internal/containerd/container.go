package containerd

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Handler emulates the application inside a container: it receives one
// request payload and produces the response, sleeping on clk for any
// modelled processing time (e.g. ResNet inference).
type Handler interface {
	Serve(clk vclock.Clock, req []byte) []byte
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(clk vclock.Clock, req []byte) []byte

// Serve implements Handler.
func (f HandlerFunc) Serve(clk vclock.Clock, req []byte) []byte { return f(clk, req) }

// Spec describes a container to create. It is the runtime-level
// equivalent of one container entry in a pod/service definition.
type Spec struct {
	// Name must be unique within the runtime.
	Name string
	// Image is the image reference; it must be present in the store.
	Image string
	// Port is the container port served by Handler; 0 means the app
	// exposes no port (e.g. the Python sidecar).
	Port uint16
	// HostPort maps Port onto the host; 0 allocates one dynamically.
	HostPort uint16
	// ReadyDelay is the median app initialization time after exec
	// (nginx config parse, TensorFlow model load, ...).
	ReadyDelay time.Duration
	// ReadySigma is the log-normal shape of ReadyDelay.
	ReadySigma float64
	// Handler serves requests once ready; required when Port != 0.
	Handler Handler
	// Background, if set, runs for the life of the container (the
	// env-writer sidecar uses this to update the shared volume).
	Background func(clk vclock.Clock, stop *vclock.Gate)
	// Labels are free-form metadata; the SDN controller labels edge
	// services to address and query them distinctly.
	Labels map[string]string
	// Env is the container environment (consumed by Background/Handler
	// through closures; kept for inspection).
	Env map[string]string
	// Mounts lists shared volumes for inspection.
	Mounts []*Volume
}

// State is a container lifecycle state.
type State int

// Container lifecycle states.
const (
	StateCreated State = iota
	StateRunning
	StateStopped
	StateRemoved
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateStopped:
		return "stopped"
	case StateRemoved:
		return "removed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Container is one container instance owned by a Runtime.
type Container struct {
	rt   *Runtime
	spec Spec

	mu        sync.Mutex
	state     State
	hostPort  uint16
	listener  *netem.Listener
	ready     *vclock.Gate
	stop      *vclock.Gate
	startedAt time.Time
}

// Spec returns the container's creation spec.
func (c *Container) Spec() Spec { return c.spec }

// Name returns the container name.
func (c *Container) Name() string { return c.spec.Name }

// State returns the current lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// HostPort returns the host port mapped to the container port (0 if the
// container exposes none or is not started).
func (c *Container) HostPort() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hostPort
}

// Addr returns the reachable endpoint of the container's service port.
func (c *Container) Addr() netem.HostPort {
	return netem.HostPort{IP: c.rt.host.IP(), Port: c.HostPort()}
}

func (c *Container) readyGate() *vclock.Gate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ready
}

// Ready reports whether the app finished initializing (port open).
func (c *Container) Ready() bool { return c.readyGate().IsOpen() }

// WaitReady blocks until the app is ready or d elapses.
func (c *Container) WaitReady(d time.Duration) bool {
	return c.readyGate().WaitTimeout(c.rt.clk, d)
}

// Start launches the container: network namespace setup, process exec,
// then asynchronous app initialization that eventually opens the port.
// Start returns once the process is launched, like `docker start`.
func (c *Container) Start() error {
	c.mu.Lock()
	if c.state != StateCreated && c.state != StateStopped {
		st := c.state
		c.mu.Unlock()
		return fmt.Errorf("containerd: cannot start container %q in state %s", c.spec.Name, st)
	}
	c.mu.Unlock()

	t := c.rt.timing
	c.rt.clk.Sleep(c.rt.rng.Jitter(t.NetNSSetup, t.JitterFrac))
	c.rt.clk.Sleep(c.rt.rng.Jitter(t.ExecStart, t.JitterFrac))

	c.mu.Lock()
	if c.state == StateRemoved {
		c.mu.Unlock()
		return fmt.Errorf("containerd: container %q removed during start", c.spec.Name)
	}
	c.state = StateRunning
	c.startedAt = c.rt.clk.Now()
	if c.ready.IsOpen() { // restart after Stop: fresh gates
		c.ready = vclock.NewGate()
	}
	c.stop = vclock.NewGate()
	stop := c.stop
	ready := c.ready
	c.mu.Unlock()

	if c.spec.Background != nil {
		c.rt.clk.Go(func() { c.spec.Background(c.rt.clk, stop) })
	}

	// App initialization happens inside the container, asynchronously.
	delay := c.spec.ReadyDelay
	if delay > 0 && c.spec.ReadySigma > 0 {
		delay = c.rt.rng.LogNormal(delay, c.spec.ReadySigma)
	}
	c.rt.clk.AfterFunc(delay, func() { c.finishInit(stop, ready) })
	return nil
}

// finishInit opens the service port and marks the container ready.
func (c *Container) finishInit(stop, ready *vclock.Gate) {
	c.mu.Lock()
	if c.state != StateRunning || c.stop != stop {
		c.mu.Unlock()
		return
	}
	if c.spec.Port != 0 {
		ln, err := c.rt.host.Listen(c.hostPort)
		if err != nil {
			c.mu.Unlock()
			return
		}
		c.listener = ln
		c.mu.Unlock()
		c.rt.clk.Go(func() { c.serveLoop(ln, stop) })
	} else {
		c.mu.Unlock()
	}
	ready.Open()
}

// serveLoop accepts connections and serves requests until stopped.
func (c *Container) serveLoop(ln *netem.Listener, stop *vclock.Gate) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		c.rt.clk.Go(func() {
			defer conn.Close()
			for {
				req, err := conn.Recv()
				if err != nil {
					return
				}
				if stop.IsOpen() {
					conn.Abort()
					return
				}
				resp := c.spec.Handler.Serve(c.rt.clk, req)
				if stop.IsOpen() { // process killed while handling
					conn.Abort()
					return
				}
				if err := conn.Send(resp); err != nil {
					return
				}
			}
		})
	}
}

// Stop terminates the container process and closes its port.
func (c *Container) Stop() error {
	c.mu.Lock()
	if c.state != StateRunning {
		st := c.state
		c.mu.Unlock()
		if st == StateStopped {
			return nil
		}
		return fmt.Errorf("containerd: cannot stop container %q in state %s", c.spec.Name, st)
	}
	c.state = StateStopped
	ln := c.listener
	c.listener = nil
	stop := c.stop
	c.mu.Unlock()

	stop.Open()
	if ln != nil {
		ln.Close()
	}
	c.rt.clk.Sleep(c.rt.rng.Jitter(c.rt.timing.StopCost, c.rt.timing.JitterFrac))
	return nil
}

// Remove deletes the container. Running containers are stopped first.
func (c *Container) Remove() error {
	if c.State() == StateRunning {
		if err := c.Stop(); err != nil {
			return err
		}
	}
	c.mu.Lock()
	if c.state == StateRemoved {
		c.mu.Unlock()
		return nil
	}
	c.state = StateRemoved
	c.mu.Unlock()
	c.rt.clk.Sleep(c.rt.rng.Jitter(c.rt.timing.RemoveCost, c.rt.timing.JitterFrac))
	c.rt.forget(c)
	return nil
}
