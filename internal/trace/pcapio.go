package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/pcap"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// WritePcap renders the workload as a classic .pcap capture starting at
// start: one full TCP conversation per request, plus the noise traffic
// (below-threshold services, non-port-80 conversations) that the paper's
// filter has to discard. Packets are written in timestamp order.
func (t *Trace) WritePcap(w io.Writer, start time.Time) error {
	rng := vclock.NewRand(t.Config.Seed + 1)
	type stamped struct {
		ts    time.Time
		frame []byte
	}
	var frames []stamped

	emitConversation := func(at time.Time, client netem.HostPort, server netem.HostPort, reqLen, respLen int) {
		steps := []struct {
			dt  time.Duration
			seg pcap.TCPSegment
		}{
			{0, pcap.TCPSegment{Src: client, Dst: server, SYN: true}},
			{1 * time.Millisecond, pcap.TCPSegment{Src: server, Dst: client, SYN: true, ACK: true}},
			{2 * time.Millisecond, pcap.TCPSegment{Src: client, Dst: server, ACK: true}},
			{2500 * time.Microsecond, pcap.TCPSegment{Src: client, Dst: server, PSH: true, ACK: true, Payload: make([]byte, reqLen)}},
			{5 * time.Millisecond, pcap.TCPSegment{Src: server, Dst: client, PSH: true, ACK: true, Payload: make([]byte, respLen)}},
			{6 * time.Millisecond, pcap.TCPSegment{Src: client, Dst: server, FIN: true, ACK: true}},
		}
		for _, s := range steps {
			seg := s.seg
			frames = append(frames, stamped{ts: at.Add(s.dt), frame: pcap.EncodeTCP(&seg)})
		}
	}

	ephemeral := make(map[netem.IP]uint16)
	nextPort := func(ip netem.IP) uint16 {
		p, ok := ephemeral[ip]
		if !ok {
			p = 40000
		}
		ephemeral[ip] = p + 1
		return p
	}

	// Hot-service requests.
	for _, r := range t.Requests {
		clientIP := ClientAddr(r.Client)
		client := netem.HostPort{IP: clientIP, Port: nextPort(clientIP)}
		emitConversation(start.Add(r.At), client, ServiceAddr(r.Service), 100+rng.Intn(200), 500+rng.Intn(4000))
	}
	// Below-threshold noise services on port 80.
	for s := 0; s < t.Config.NoiseServices; s++ {
		server := netem.HostPort{IP: noiseServiceBase + netem.IP(s) + 1, Port: 80}
		for k := 0; k < t.Config.NoiseRequestsEach; k++ {
			clientIP := ClientAddr(rng.Intn(t.Config.Clients))
			client := netem.HostPort{IP: clientIP, Port: nextPort(clientIP)}
			at := start.Add(time.Duration(rng.Float64() * float64(t.Config.Duration)))
			emitConversation(at, client, server, 100, 1000)
		}
	}
	// Non-HTTP conversations the port filter must drop.
	for k := 0; k < t.Config.NonHTTPConversations; k++ {
		server := netem.HostPort{IP: hotServiceBase + netem.IP(rng.Intn(t.Config.HotServices)) + 1, Port: 443}
		clientIP := ClientAddr(rng.Intn(t.Config.Clients))
		client := netem.HostPort{IP: clientIP, Port: nextPort(clientIP)}
		at := start.Add(time.Duration(rng.Float64() * float64(t.Config.Duration)))
		emitConversation(at, client, server, 200, 2000)
	}

	sort.SliceStable(frames, func(i, j int) bool { return frames[i].ts.Before(frames[j].ts) })
	pw := pcap.NewWriter(w)
	for _, f := range frames {
		if err := pw.WritePacket(f.ts, f.frame); err != nil {
			return err
		}
	}
	return nil
}

// FromPcap recovers a workload from a capture by applying the paper's
// methodology: extract TCP conversations, keep port 80, keep servers
// with at least minRequests requests. Services are indexed by descending
// request count. Client indices are recovered from the client address
// block; foreign clients map to index 0.
func FromPcap(r io.Reader, duration time.Duration, minRequests int) (*Trace, error) {
	convs, err := pcap.ExtractConversations(pcap.NewReader(r))
	if err != nil {
		return nil, err
	}
	if len(convs) == 0 {
		return nil, fmt.Errorf("trace: capture contains no conversations")
	}
	captureStart := convs[0].Start
	services := pcap.ServiceRequests(pcap.FilterServerPort(convs, 80), minRequests)

	tr := &Trace{
		Config: Config{
			Duration:      duration,
			HotServices:   len(services),
			MinPerService: minRequests,
		},
		Counts: make([]int, len(services)),
	}
	for idx, svc := range services {
		tr.Counts[idx] = len(svc.Requests)
		for _, conv := range svc.Requests {
			client := 0
			if conv.Client.IP > clientBase && conv.Client.IP <= clientBase+255 {
				client = int(conv.Client.IP - clientBase - 10)
			}
			tr.Requests = append(tr.Requests, Request{
				At:      conv.Start.Sub(captureStart),
				Service: idx,
				Client:  client,
			})
		}
	}
	sort.Slice(tr.Requests, func(i, j int) bool {
		if tr.Requests[i].At != tr.Requests[j].At {
			return tr.Requests[i].At < tr.Requests[j].At
		}
		return tr.Requests[i].Service < tr.Requests[j].Service
	})
	tr.Config.TotalRequests = len(tr.Requests)
	return tr, nil
}
