package trace

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

func TestDefaultBigFlowsTotals(t *testing.T) {
	tr := Generate(DefaultBigFlows())
	if got := len(tr.Counts); got != 42 {
		t.Errorf("services = %d, want 42", got)
	}
	if got := tr.TotalRequests(); got != 1708 {
		t.Errorf("total requests = %d, want 1708", got)
	}
	for i, c := range tr.Counts {
		if c < 20 {
			t.Errorf("service %d has %d requests, below the 20 minimum", i, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(DefaultBigFlows()), Generate(DefaultBigFlows())
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ across runs")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateSortedWithinDuration(t *testing.T) {
	tr := Generate(DefaultBigFlows())
	var prev time.Duration
	for i, r := range tr.Requests {
		if r.At < prev {
			t.Fatalf("request %d out of order", i)
		}
		prev = r.At
		if r.At < 0 || r.At >= tr.Config.Duration {
			t.Fatalf("request %d at %v outside capture", i, r.At)
		}
		if r.Client < 0 || r.Client >= tr.Config.Clients {
			t.Fatalf("request %d client %d out of range", i, r.Client)
		}
	}
}

func TestPopularityIsSkewed(t *testing.T) {
	tr := Generate(DefaultBigFlows())
	if tr.Counts[0] <= tr.Counts[len(tr.Counts)-1] {
		t.Errorf("no popularity skew: first=%d last=%d", tr.Counts[0], tr.Counts[len(tr.Counts)-1])
	}
	if tr.Counts[0] < 2*tr.Counts[len(tr.Counts)-1] {
		t.Errorf("skew too flat: first=%d last=%d", tr.Counts[0], tr.Counts[len(tr.Counts)-1])
	}
}

func TestDeploymentBurstAtStart(t *testing.T) {
	tr := Generate(DefaultBigFlows())
	first := tr.FirstOccurrences()
	inWindow := 0
	for _, at := range first {
		if at < 30*time.Second {
			inWindow++
		}
	}
	// Fig. 10: the bulk of the 42 deployments happen early.
	if inWindow < len(first)/2 {
		t.Errorf("only %d/%d deployments in the first 30s; arrivals not front-loaded", inWindow, len(first))
	}
	if burst := tr.MaxDeploymentsPerSecond(); burst < 2 || burst > 20 {
		t.Errorf("max deployments/s = %d, want a visible burst (paper: up to 8)", burst)
	}
}

func TestHistogramsConserveMass(t *testing.T) {
	tr := Generate(DefaultBigFlows())
	sum := 0
	for _, n := range tr.RequestsPerSecond() {
		sum += n
	}
	if sum != tr.TotalRequests() {
		t.Errorf("requests histogram sums to %d, want %d", sum, tr.TotalRequests())
	}
	sum = 0
	for _, n := range tr.DeploymentsPerSecond() {
		sum += n
	}
	if sum != len(tr.Counts) {
		t.Errorf("deployments histogram sums to %d, want %d", sum, len(tr.Counts))
	}
}

func TestServiceAddrRoundTrip(t *testing.T) {
	for i := 0; i < 42; i++ {
		idx, ok := ServiceIndex(ServiceAddr(i))
		if !ok || idx != i {
			t.Fatalf("ServiceIndex(ServiceAddr(%d)) = %d,%v", i, idx, ok)
		}
	}
	if _, ok := ServiceIndex(netem.ParseHostPort("10.0.0.1:80")); ok {
		t.Error("foreign IP accepted")
	}
	if _, ok := ServiceIndex(netem.HostPort{IP: ServiceAddr(0).IP, Port: 443}); ok {
		t.Error("foreign port accepted")
	}
}

func TestInfeasibleConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for infeasible config")
		}
	}()
	Generate(Config{HotServices: 10, TotalRequests: 50, MinPerService: 20, Duration: time.Minute})
}

func TestPcapRoundTripRecoversWorkload(t *testing.T) {
	cfg := DefaultBigFlows()
	tr := Generate(cfg)
	var buf bytes.Buffer
	start := time.Unix(1700000000, 0)
	if err := tr.WritePcap(&buf, start); err != nil {
		t.Fatal(err)
	}
	back, err := FromPcap(bytes.NewReader(buf.Bytes()), cfg.Duration, cfg.MinPerService)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's filter must recover exactly the hot services and drop
	// the noise: 42 services, 1708 requests.
	if got := len(back.Counts); got != cfg.HotServices {
		t.Errorf("recovered %d services, want %d", got, cfg.HotServices)
	}
	if got := back.TotalRequests(); got != cfg.TotalRequests {
		t.Errorf("recovered %d requests, want %d", got, cfg.TotalRequests)
	}
	// Count multiset must match (indices may be permuted by count sort).
	wantCounts := append([]int(nil), tr.Counts...)
	gotCounts := append([]int(nil), back.Counts...)
	sortInts(wantCounts)
	sortInts(gotCounts)
	for i := range wantCounts {
		if wantCounts[i] != gotCounts[i] {
			t.Fatalf("count multiset differs at %d: %d vs %d", i, gotCounts[i], wantCounts[i])
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Property: for any feasible config, totals are exact and every service
// meets the minimum.
func TestGenerateTotalsProperty(t *testing.T) {
	f := func(services, perService uint8, extra uint16, seed int64) bool {
		n := int(services%40) + 1
		min := int(perService%10) + 1
		total := n*min + int(extra%500)
		cfg := Config{
			Duration:      time.Minute,
			HotServices:   n,
			TotalRequests: total,
			MinPerService: min,
			Clients:       5,
			ZipfS:         1.0,
			Seed:          seed,
		}
		tr := Generate(cfg)
		if tr.TotalRequests() != total || len(tr.Counts) != n {
			return false
		}
		sum := 0
		for _, c := range tr.Counts {
			if c < min {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
