// Package trace synthesizes and analyzes the evaluation workload.
//
// The paper replays the public five-minute bigFlows.pcap capture,
// extracts TCP conversations to port 80, and keeps destination addresses
// with at least 20 requests — yielding 42 edge services receiving 1708
// requests. That capture is not available offline, so Generate produces
// a statistically equivalent synthetic workload (heavy-tailed popularity,
// front-loaded arrivals causing the burst of deployments Fig. 10 shows),
// and WritePcap/FromPcap round-trip it through a real .pcap file so the
// paper's extraction methodology is exercised verbatim.
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Config parameterizes workload synthesis.
type Config struct {
	// Duration is the capture length (paper: five minutes).
	Duration time.Duration
	// HotServices is the number of edge services kept by the ≥20-requests
	// filter (paper: 42).
	HotServices int
	// TotalRequests is the number of requests across hot services
	// (paper: 1708).
	TotalRequests int
	// MinPerService is the minimum requests per hot service (paper: 20).
	MinPerService int
	// NoiseServices receive fewer than MinPerService requests each and
	// must be dropped by the filter.
	NoiseServices int
	// NoiseRequestsEach is the request count per noise service.
	NoiseRequestsEach int
	// NonHTTPConversations adds port-443 conversations the port filter
	// must drop.
	NonHTTPConversations int
	// Clients is the number of client hosts (paper: 20 Raspberry Pis).
	Clients int
	// ZipfS is the popularity skew exponent across hot services.
	ZipfS float64
	// FrontLoadFrac is the fraction of arrivals drawn from the early
	// FrontLoadWindow instead of the whole capture, reproducing the
	// deployment burst at the start of the trace.
	FrontLoadFrac float64
	// FrontLoadWindow is the length of the early arrival window.
	FrontLoadWindow time.Duration
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultBigFlows returns the configuration matching the paper's
// filtered workload: 42 services, 1708 requests, five minutes.
func DefaultBigFlows() Config {
	return Config{
		Duration:             5 * time.Minute,
		HotServices:          42,
		TotalRequests:        1708,
		MinPerService:        20,
		NoiseServices:        25,
		NoiseRequestsEach:    4,
		NonHTTPConversations: 120,
		Clients:              20,
		ZipfS:                1.1,
		FrontLoadFrac:        0.12,
		FrontLoadWindow:      25 * time.Second,
		Seed:                 7,
	}
}

// Request is one client request in the workload.
type Request struct {
	// At is the offset from the start of the capture.
	At time.Duration
	// Service indexes the hot service (0-based, most popular first).
	Service int
	// Client indexes the requesting client host.
	Client int
}

// Trace is a generated or recovered workload.
type Trace struct {
	Config Config
	// Requests holds the hot-service requests sorted by arrival time.
	Requests []Request
	// Counts holds requests per hot service (index = service).
	Counts []int
}

// hotServiceBase is the address block for hot edge services
// (TEST-NET-3, "public" addresses in the capture).
var hotServiceBase = netem.ParseIP("203.0.113.0")

// noiseServiceBase is the address block for below-threshold services.
var noiseServiceBase = netem.ParseIP("198.51.100.0")

// clientBase is the address block for client hosts.
var clientBase = netem.ParseIP("192.168.1.0")

// ServiceAddr returns the registered public endpoint of hot service i.
func ServiceAddr(i int) netem.HostPort {
	return netem.HostPort{IP: hotServiceBase + netem.IP(i) + 1, Port: 80}
}

// ServiceIndex inverts ServiceAddr; ok is false for foreign addresses.
func ServiceIndex(hp netem.HostPort) (int, bool) {
	if hp.Port != 80 || hp.IP <= hotServiceBase || hp.IP > hotServiceBase+255 {
		return 0, false
	}
	return int(hp.IP - hotServiceBase - 1), true
}

// ClientAddr returns the address of client host i.
func ClientAddr(i int) netem.IP { return clientBase + netem.IP(i) + 10 }

// Generate synthesizes a workload from cfg. The result is deterministic
// in cfg.Seed and always satisfies the exact totals in cfg.
func Generate(cfg Config) *Trace {
	if cfg.HotServices <= 0 || cfg.TotalRequests < cfg.HotServices*cfg.MinPerService {
		panic(fmt.Sprintf("trace: infeasible config: %d services × %d min > %d total",
			cfg.HotServices, cfg.MinPerService, cfg.TotalRequests))
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	rng := vclock.NewRand(cfg.Seed)
	counts := popularityCounts(cfg, rng)

	var reqs []Request
	for svc, n := range counts {
		for k := 0; k < n; k++ {
			reqs = append(reqs, Request{
				At:      arrivalTime(cfg, rng),
				Service: svc,
				Client:  rng.Intn(cfg.Clients),
			})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].At != reqs[j].At {
			return reqs[i].At < reqs[j].At
		}
		return reqs[i].Service < reqs[j].Service
	})
	return &Trace{Config: cfg, Requests: reqs, Counts: counts}
}

// popularityCounts assigns per-service request counts: a guaranteed
// minimum plus a Zipf-distributed surplus, summing exactly to the total.
func popularityCounts(cfg Config, rng *vclock.Rand) []int {
	n := cfg.HotServices
	counts := make([]int, n)
	surplus := cfg.TotalRequests - n*cfg.MinPerService
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
		sum += weights[i]
	}
	assigned := 0
	for i := range counts {
		extra := int(math.Floor(float64(surplus) * weights[i] / sum))
		counts[i] = cfg.MinPerService + extra
		assigned += extra
	}
	// Distribute rounding remainder over the most popular services.
	for i := 0; assigned < surplus; i = (i + 1) % n {
		counts[i]++
		assigned++
	}
	_ = rng
	return counts
}

// arrivalTime draws one arrival offset: front-loaded with probability
// FrontLoadFrac, otherwise uniform over the capture.
func arrivalTime(cfg Config, rng *vclock.Rand) time.Duration {
	window := cfg.Duration
	if cfg.FrontLoadFrac > 0 && rng.Float64() < cfg.FrontLoadFrac {
		window = cfg.FrontLoadWindow
		if window <= 0 || window > cfg.Duration {
			window = cfg.Duration
		}
	}
	return time.Duration(rng.Float64() * float64(window))
}

// FirstOccurrences returns, per hot service, when its first request
// arrives — the moment the SDN controller must deploy it (Fig. 10).
func (t *Trace) FirstOccurrences() []time.Duration {
	first := make([]time.Duration, len(t.Counts))
	seen := make([]bool, len(t.Counts))
	for _, r := range t.Requests {
		if !seen[r.Service] {
			seen[r.Service] = true
			first[r.Service] = r.At
		}
	}
	return first
}

// RequestsPerSecond bins request arrivals into one-second buckets over
// the capture duration (the Fig. 9 series).
func (t *Trace) RequestsPerSecond() []int {
	bins := make([]int, int(t.Config.Duration/time.Second)+1)
	for _, r := range t.Requests {
		b := int(r.At / time.Second)
		if b >= 0 && b < len(bins) {
			bins[b]++
		}
	}
	return bins
}

// DeploymentsPerSecond bins first occurrences into one-second buckets
// (the Fig. 10 series).
func (t *Trace) DeploymentsPerSecond() []int {
	bins := make([]int, int(t.Config.Duration/time.Second)+1)
	for i, at := range t.FirstOccurrences() {
		if t.Counts[i] == 0 {
			continue
		}
		b := int(at / time.Second)
		if b >= 0 && b < len(bins) {
			bins[b]++
		}
	}
	return bins
}

// TotalRequests returns the number of hot-service requests.
func (t *Trace) TotalRequests() int { return len(t.Requests) }

// MaxDeploymentsPerSecond returns the busiest deployment second — the
// burst headline of Fig. 10 ("up to eight deployments per second").
func (t *Trace) MaxDeploymentsPerSecond() int {
	max := 0
	for _, n := range t.DeploymentsPerSecond() {
		if n > max {
			max = n
		}
	}
	return max
}
