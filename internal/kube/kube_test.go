package kube

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// mapResolver resolves images from a static table.
type mapResolver map[string]containerd.AppModel

func (m mapResolver) Resolve(image string) (containerd.AppModel, error) {
	model, ok := m[image]
	if !ok {
		return containerd.AppModel{}, fmt.Errorf("unknown image %q", image)
	}
	return model, nil
}

// kubeEnv is a cluster on a small emulated network.
type kubeEnv struct {
	clk     *vclock.Virtual
	cluster *Cluster
	client  *netem.Host
	reg     *registry.Registry
}

func echoModel(port uint16, readyDelay time.Duration) containerd.AppModel {
	return containerd.AppModel{
		Port:       port,
		ReadyDelay: readyDelay,
		Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
			return containerd.AppInstance{
				Handler: containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
					return append([]byte("echo:"), req...)
				}),
			}
		},
	}
}

// newKubeEnv builds a cluster with the given number of nodes and a
// pre-pulled "web" image.
func newKubeEnv(t *testing.T, clk *vclock.Virtual, nodes int) *kubeEnv {
	t.Helper()
	n := netem.NewNetwork(clk, 1)
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	router := netem.NewRouter(n, "router", nodes+1)
	n.Connect(client.NIC(), router.Port(0), netem.LinkConfig{Latency: time.Millisecond})
	router.AddRoute(client.IP(), router.Port(0))

	reg := registry.New(clk, 7, registry.Private())
	reg.Push(registry.Image{Ref: "web", Layers: []registry.Layer{{Digest: "sha256:web", Size: 10 * registry.MiB}}})
	reg.Push(registry.Image{Ref: "sidecar", Layers: []registry.Layer{{Digest: "sha256:side", Size: registry.MiB}}})

	resolver := mapResolver{
		"web":     echoModel(80, 40*time.Millisecond),
		"sidecar": {ReadyDelay: 10 * time.Millisecond},
	}

	var nodeCfgs []NodeConfig
	for i := 0; i < nodes; i++ {
		host := n.NewHost(fmt.Sprintf("node%d", i), netem.ParseIP(fmt.Sprintf("10.0.0.%d", i+2)))
		n.Connect(host.NIC(), router.Port(i+1), netem.LinkConfig{Latency: time.Millisecond})
		router.AddRoute(host.IP(), router.Port(i+1))
		rt := containerd.NewRuntime(clk, int64(20+i), host, containerd.DefaultTiming())
		if _, err := rt.Pull(reg, "web"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Pull(reg, "sidecar"); err != nil {
			t.Fatal(err)
		}
		nodeCfgs = append(nodeCfgs, NodeConfig{Name: fmt.Sprintf("node%d", i), Runtime: rt})
	}

	cluster, err := NewCluster(clk, Config{
		Name:     "edge-k8s",
		Timing:   DefaultTiming(),
		Registry: reg,
		Resolver: resolver,
		Nodes:    nodeCfgs,
		ExtraSchedulers: map[string]NodePicker{
			"binpack-scheduler": BinPack{},
		},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &kubeEnv{clk: clk, cluster: cluster, client: client, reg: reg}
}

func webDeployment(name string, replicas int) *Deployment {
	labels := map[string]string{"app": name, "edge.service": name}
	return &Deployment{
		ObjectMeta: ObjectMeta{Name: name, Labels: copyMap(labels)},
		Spec: DeploymentSpec{
			Replicas: replicas,
			Selector: copyMap(labels),
			Template: PodTemplate{
				Labels:     copyMap(labels),
				Containers: []ContainerSpec{{Name: "web", Image: "web", Port: 80}},
			},
		},
	}
}

func webService(name string) *Service {
	labels := map[string]string{"app": name, "edge.service": name}
	return &Service{
		ObjectMeta: ObjectMeta{Name: name, Labels: copyMap(labels)},
		Spec: ServiceSpec{
			Selector: copyMap(labels),
			Ports:    []ServicePort{{Port: 80, TargetPort: 80, Protocol: "TCP"}},
		},
	}
}

func TestAPICreateGetUpdateDelete(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		d := webDeployment("svc", 0)
		if err := api.Create(d); err != nil {
			t.Fatal(err)
		}
		if d.ResourceVersion == 0 {
			t.Error("create did not assign resource version")
		}
		if err := api.Create(webDeployment("svc", 0)); err == nil {
			t.Error("duplicate create succeeded")
		}
		got, ok := api.Get(KindDeployment, "svc")
		if !ok {
			t.Fatal("Get failed")
		}
		// Mutating the returned copy must not affect the store.
		got.(*Deployment).Spec.Replicas = 99
		again, _ := api.Get(KindDeployment, "svc")
		if again.(*Deployment).Spec.Replicas != 0 {
			t.Error("Get returned aliased object")
		}
		d.Spec.Replicas = 2
		rvBefore := d.ResourceVersion
		if err := api.Update(d); err != nil {
			t.Fatal(err)
		}
		if d.ResourceVersion <= rvBefore {
			t.Error("update did not bump resource version")
		}
		if err := api.Delete(KindDeployment, "svc"); err != nil {
			t.Fatal(err)
		}
		if err := api.Delete(KindDeployment, "svc"); err == nil {
			t.Error("double delete succeeded")
		}
		if err := api.Update(d); err == nil {
			t.Error("update of deleted object succeeded")
		}
	})
}

func TestAPIWatchReplayAndLiveEvents(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		api.Create(webDeployment("a", 0))
		w := api.Watch(KindDeployment)
		ev, ok := w.RecvTimeout(time.Second)
		if !ok || ev.Type != Added || ev.Object.Meta().Name != "a" {
			t.Fatalf("replay event = %+v, %v", ev, ok)
		}
		api.Create(webDeployment("b", 0))
		ev, ok = w.RecvTimeout(time.Second)
		if !ok || ev.Type != Added || ev.Object.Meta().Name != "b" {
			t.Fatalf("live event = %+v, %v", ev, ok)
		}
		api.Delete(KindDeployment, "a")
		ev, ok = w.RecvTimeout(time.Second)
		if !ok || ev.Type != Deleted || ev.Object.Meta().Name != "a" {
			t.Fatalf("delete event = %+v, %v", ev, ok)
		}
		w.Stop()
		if _, ok := w.RecvTimeout(time.Second); ok {
			t.Error("event after Stop")
		}
	})
}

func TestAPIListSelector(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		api.Create(webDeployment("a", 0))
		api.Create(webDeployment("b", 0))
		all := api.List(KindDeployment, nil)
		if len(all) != 2 || all[0].Meta().Name != "a" {
			t.Errorf("List = %v", all)
		}
		sel := api.List(KindDeployment, map[string]string{"app": "a"})
		if len(sel) != 1 || sel[0].Meta().Name != "a" {
			t.Errorf("selector list = %v", sel)
		}
	})
}

func TestDeploymentCreatesReplicaSetNoPodsAtZero(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		if err := env.cluster.CreateDeployment(webDeployment("svc", 0)); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(2 * time.Second)
		if _, ok := env.cluster.API().Get(KindReplicaSet, "svc-rs"); !ok {
			t.Error("replica set not created")
		}
		if pods := env.cluster.API().List(KindPod, nil); len(pods) != 0 {
			t.Errorf("scale-to-zero deployment has %d pods", len(pods))
		}
	})
}

func TestScaleUpProducesReadyEndpointWithinKubeBudget(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 0))
		env.cluster.CreateService(webService("svc"))
		clk.Sleep(2 * time.Second) // let create settle (paper's Create phase)

		start := clk.Now()
		if err := env.cluster.Scale("svc", 1); err != nil {
			t.Fatal(err)
		}
		addr, ok := env.cluster.WaitReadyEndpoint("svc", 100*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatal("no ready endpoint after scale up")
		}
		elapsed := clk.Since(start)
		// The orchestrator pipeline should land around the paper's ≈3s.
		if elapsed < 1200*time.Millisecond || elapsed > 5*time.Second {
			t.Errorf("k8s scale-up took %v, want ≈2–4s", elapsed)
		}
		conn, err := env.client.Dial(addr)
		if err != nil {
			t.Fatalf("dial endpoint: %v", err)
		}
		conn.Send([]byte("hi"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "echo:hi" {
			t.Errorf("resp = %q, %v", resp, err)
		}
	})
}

func TestScaleDownRemovesPodsAndClosesPort(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 1))
		env.cluster.CreateService(webService("svc"))
		addr, ok := env.cluster.WaitReadyEndpoint("svc", 100*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatal("no endpoint")
		}
		env.cluster.Scale("svc", 0)
		clk.Sleep(5 * time.Second)
		if pods := env.cluster.API().List(KindPod, nil); len(pods) != 0 {
			t.Errorf("%d pods survive scale-down", len(pods))
		}
		if eps := env.cluster.ReadyEndpoints("svc"); len(eps) != 0 {
			t.Errorf("endpoints after scale-down: %v", eps)
		}
		if _, err := env.client.Dial(addr); err == nil {
			t.Error("old endpoint still accepts connections")
		}
	})
}

func TestScaleSpreadAcrossNodes(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 2)
		env.cluster.CreateDeployment(webDeployment("svc", 4))
		env.cluster.CreateService(webService("svc"))
		deadline := clk.Now().Add(time.Minute)
		for {
			if len(env.cluster.ReadyEndpoints("svc")) == 4 {
				break
			}
			if clk.Now().After(deadline) {
				t.Fatalf("only %d/4 endpoints ready", len(env.cluster.ReadyEndpoints("svc")))
			}
			clk.Sleep(200 * time.Millisecond)
		}
		perNode := map[string]int{}
		for _, obj := range env.cluster.API().List(KindPod, nil) {
			perNode[obj.(*Pod).Spec.NodeName]++
		}
		if perNode["node0"] != 2 || perNode["node1"] != 2 {
			t.Errorf("LeastLoaded spread = %v, want 2/2", perNode)
		}
	})
}

func TestCustomSchedulerBinPack(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 2)
		d := webDeployment("svc", 3)
		d.Spec.Template.SchedulerName = "binpack-scheduler"
		env.cluster.CreateDeployment(d)
		env.cluster.CreateService(webService("svc"))
		deadline := clk.Now().Add(time.Minute)
		for len(env.cluster.ReadyEndpoints("svc")) < 3 {
			if clk.Now().After(deadline) {
				t.Fatal("pods never ready under custom scheduler")
			}
			clk.Sleep(200 * time.Millisecond)
		}
		perNode := map[string]int{}
		for _, obj := range env.cluster.API().List(KindPod, nil) {
			perNode[obj.(*Pod).Spec.NodeName]++
		}
		// BinPack packs everything onto one node.
		for _, n := range perNode {
			if n != 0 && n != 3 {
				t.Errorf("binpack spread = %v, want all on one node", perNode)
			}
		}
	})
}

func TestUnknownSchedulerLeavesPodsPending(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		d := webDeployment("svc", 1)
		d.Spec.Template.SchedulerName = "no-such-scheduler"
		env.cluster.CreateDeployment(d)
		clk.Sleep(10 * time.Second)
		pods := env.cluster.API().List(KindPod, nil)
		if len(pods) != 1 {
			t.Fatalf("pods = %d", len(pods))
		}
		p := pods[0].(*Pod)
		if p.Spec.NodeName != "" || p.Status.Phase != PodPending {
			t.Errorf("pod = %+v, want pending and unbound", p.Status)
		}
	})
}

func TestDeleteDeploymentReapsEverything(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 2))
		env.cluster.CreateService(webService("svc"))
		deadline := clk.Now().Add(time.Minute)
		for len(env.cluster.ReadyEndpoints("svc")) < 2 {
			if clk.Now().After(deadline) {
				t.Fatal("pods never ready")
			}
			clk.Sleep(200 * time.Millisecond)
		}
		env.cluster.DeleteDeployment("svc")
		clk.Sleep(5 * time.Second)
		if _, ok := env.cluster.API().Get(KindReplicaSet, "svc-rs"); ok {
			t.Error("replica set survives deployment deletion")
		}
		if pods := env.cluster.API().List(KindPod, nil); len(pods) != 0 {
			t.Errorf("%d pods survive deployment deletion", len(pods))
		}
	})
}

func TestMultiContainerPodReadyWhenAllReady(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		d := webDeployment("combo", 1)
		d.Spec.Template.Containers = []ContainerSpec{
			{Name: "web", Image: "web", Port: 80},
			{Name: "side", Image: "sidecar"},
		}
		d.Spec.Template.Volumes = []string{"shared"}
		env.cluster.CreateDeployment(d)
		env.cluster.CreateService(webService("combo"))
		addr, ok := env.cluster.WaitReadyEndpoint("combo", 100*time.Millisecond, 30*time.Second)
		if !ok {
			t.Fatal("multi-container pod never ready")
		}
		if _, err := env.client.Dial(addr); err != nil {
			t.Errorf("dial: %v", err)
		}
	})
}

func TestFailedImageMarksPodFailed(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		d := webDeployment("bad", 1)
		d.Spec.Template.Containers = []ContainerSpec{{Name: "x", Image: "ghost", Port: 80}}
		env.cluster.CreateDeployment(d)
		deadline := clk.Now().Add(30 * time.Second)
		for {
			pods := env.cluster.API().List(KindPod, nil)
			if len(pods) > 0 && pods[0].(*Pod).Status.Phase == PodFailed {
				return
			}
			if clk.Now().After(deadline) {
				t.Fatal("pod with unknown image never failed")
			}
			clk.Sleep(500 * time.Millisecond)
		}
	})
}

func TestNodeCapacityLimitsScheduling(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := netem.NewNetwork(clk, 1)
		host := n.NewHost("node0", netem.ParseIP("10.0.0.2"))
		rt := containerd.NewRuntime(clk, 2, host, containerd.DefaultTiming())
		reg := registry.New(clk, 3, registry.Private())
		reg.Push(registry.Image{Ref: "web", Layers: []registry.Layer{{Digest: "sha256:w", Size: registry.MiB}}})
		rt.Pull(reg, "web")
		cluster, err := NewCluster(clk, Config{
			Name:     "tiny",
			Timing:   DefaultTiming(),
			Registry: reg,
			Resolver: mapResolver{"web": echoModel(80, time.Millisecond)},
			Nodes:    []NodeConfig{{Name: "node0", Runtime: rt, Capacity: 1}},
			Seed:     1,
		})
		if err != nil {
			t.Fatal(err)
		}
		cluster.CreateDeployment(webDeployment("svc", 2))
		clk.Sleep(15 * time.Second)
		bound := 0
		for _, obj := range cluster.API().List(KindPod, nil) {
			if obj.(*Pod).Spec.NodeName != "" {
				bound++
			}
		}
		if bound != 1 {
			t.Errorf("bound pods = %d, want 1 (capacity)", bound)
		}
	})
}

func TestValidateSelectorRejectsMismatch(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		d := webDeployment("svc", 0)
		d.Spec.Template.Labels = map[string]string{"app": "other"}
		if err := env.cluster.CreateDeployment(d); err == nil {
			t.Error("mismatched selector accepted")
		}
		d2 := webDeployment("svc2", 0)
		d2.Spec.Selector = nil
		if err := env.cluster.CreateDeployment(d2); err == nil {
			t.Error("empty selector accepted")
		}
	})
}

func TestClusterHelpers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		if env.cluster.Name() != "edge-k8s" {
			t.Errorf("Name = %q", env.cluster.Name())
		}
		if env.cluster.HasDeployment("svc") {
			t.Error("phantom deployment")
		}
		if err := env.cluster.Scale("svc", 1); err == nil {
			t.Error("scaling a missing deployment succeeded")
		}
		env.cluster.CreateDeployment(webDeployment("svc", 0))
		if !env.cluster.HasDeployment("svc") {
			t.Error("HasDeployment = false after create")
		}
		if r, ok := env.cluster.Replicas("svc"); !ok || r != 0 {
			t.Errorf("Replicas = %d, %v", r, ok)
		}
		// Scale to the same value is a no-op.
		if err := env.cluster.Scale("svc", 0); err != nil {
			t.Errorf("no-op scale: %v", err)
		}
	})
}

func TestEventTypeString(t *testing.T) {
	for ev, want := range map[EventType]string{Added: "ADDED", Modified: "MODIFIED", Deleted: "DELETED", EventType(9): "UNKNOWN"} {
		if ev.String() != want {
			t.Errorf("%d = %q", int(ev), ev.String())
		}
	}
}
