package kube

import (
	"fmt"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// kubelet runs the pods bound to one node on that node's containerd.
type kubelet struct {
	api      *API
	clk      vclock.Clock
	rng      *vclock.Rand
	nodeName string
	runtime  *containerd.Runtime
	registry registry.Remote
	resolver containerd.AppResolver

	mu      sync.Mutex
	workers map[string]*podWorker
}

// podWorker tracks one pod's containers on the node.
type podWorker struct {
	podName    string
	cancelled  bool
	released   bool // node slot already given back
	containers []*containerd.Container
	volumes    map[string]*containerd.Volume
}

func startKubelet(api *API, seed int64, nodeName string, rt *containerd.Runtime, reg registry.Remote, resolver containerd.AppResolver) *kubelet {
	k := &kubelet{
		api:      api,
		clk:      api.clk,
		rng:      vclock.NewRand(seed),
		nodeName: nodeName,
		runtime:  rt,
		registry: reg,
		resolver: resolver,
		workers:  make(map[string]*podWorker),
	}
	w := api.Watch(KindPod)
	api.clk.Go(func() {
		for {
			ev, ok := w.Recv()
			if !ok {
				return
			}
			k.handle(ev)
		}
	})
	return k
}

func (k *kubelet) handle(ev Event) {
	p := ev.Object.(*Pod)
	if ev.Type == Deleted {
		k.mu.Lock()
		worker := k.workers[p.Name]
		delete(k.workers, p.Name)
		k.mu.Unlock()
		if worker != nil {
			k.teardown(worker)
		}
		return
	}
	if p.Spec.NodeName != k.nodeName {
		return
	}
	k.mu.Lock()
	if _, running := k.workers[p.Name]; running {
		k.mu.Unlock()
		return
	}
	worker := &podWorker{podName: p.Name}
	k.workers[p.Name] = worker
	k.mu.Unlock()
	k.clk.Go(func() { k.runPod(p, worker) })
}

// runPod performs pod setup: sandbox, images, containers, readiness.
func (k *kubelet) runPod(p *Pod, worker *podWorker) {
	t := k.api.timing
	k.clk.Sleep(k.rng.Jitter(t.KubeletReact, t.JitterFrac))
	if k.gone(worker) {
		return
	}
	// Pod sandbox: pause container, cgroups, network namespace.
	k.clk.Sleep(k.rng.Jitter(t.SandboxSetup, t.JitterFrac))
	if k.gone(worker) {
		return
	}

	// Per-pod volumes shared between its containers.
	worker.volumes = make(map[string]*containerd.Volume, len(p.Spec.Volumes))
	for _, name := range p.Spec.Volumes {
		worker.volumes[name] = containerd.NewVolume(p.Name + "/" + name)
	}

	var servePort uint16
	for _, cs := range p.Spec.Containers {
		ctr, err := k.startContainer(p, cs, worker)
		if err != nil {
			k.failPod(p, worker, err)
			return
		}
		k.mu.Lock()
		worker.containers = append(worker.containers, ctr)
		cancelled := worker.cancelled
		k.mu.Unlock()
		if cancelled { // pod deleted mid-setup
			k.teardown(worker)
			return
		}
		if hp := ctr.HostPort(); hp != 0 && servePort == 0 {
			servePort = hp
		}
	}

	// Pod is running; record where it can be reached.
	if !k.updatePodStatus(p.Name, func(cur *Pod) {
		cur.Status.Phase = PodRunning
		cur.Status.HostIP = k.runtime.Host().IP()
		cur.Status.HostPort = servePort
	}) {
		k.teardown(worker)
		return
	}
	k.probeReadiness(p.Name, worker)
}

// gone reports whether the pod was deleted while the worker slept.
func (k *kubelet) gone(worker *podWorker) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return worker.cancelled || k.workers[worker.podName] != worker
}

// startContainer ensures the image, creates, and starts one container.
func (k *kubelet) startContainer(p *Pod, cs ContainerSpec, worker *podWorker) (*containerd.Container, error) {
	if !k.runtime.Store().HasImage(cs.Image) {
		// ImagePullPolicy IfNotPresent: the Pull phase normally ran
		// before Scale Up, but the kubelet covers cold paths itself.
		if _, err := k.runtime.Pull(k.registry, cs.Image); err != nil {
			return nil, fmt.Errorf("kubelet %s: pull %s: %w", k.nodeName, cs.Image, err)
		}
	}
	model, err := k.resolver.Resolve(cs.Image)
	if err != nil {
		return nil, fmt.Errorf("kubelet %s: resolve %s: %w", k.nodeName, cs.Image, err)
	}
	spec := model.BuildSpec(p.Name+"."+cs.Name, cs.Image, map[string]string{
		"kube.pod":       p.Name,
		"kube.container": cs.Name,
	}, worker.volumes)
	if cs.Port != 0 {
		spec.Port = cs.Port
	}
	ctr, err := k.runtime.Create(spec)
	if err != nil {
		return nil, err
	}
	if err := ctr.Start(); err != nil {
		return nil, err
	}
	return ctr, nil
}

// probeReadiness polls container readiness like the kubelet's probe
// workers: a uniform start splay of one period, then periodic checks.
func (k *kubelet) probeReadiness(podName string, worker *podWorker) {
	t := k.api.timing
	splay := time.Duration(k.rng.Float64() * float64(t.ProbePeriod))
	k.clk.Sleep(splay)
	for {
		if k.gone(worker) {
			return
		}
		k.mu.Lock()
		containers := append([]*containerd.Container(nil), worker.containers...)
		k.mu.Unlock()
		allReady := true
		for _, ctr := range containers {
			ready := ctr.Ready()
			if ctr.Spec().Port == 0 {
				// Sidecars without a port count as ready once running.
				ready = ctr.State() == containerd.StateRunning
			}
			if !ready {
				allReady = false
				break
			}
		}
		if allReady {
			k.updatePodStatus(podName, func(cur *Pod) { cur.Status.Ready = true })
			return
		}
		k.clk.Sleep(t.ProbePeriod)
	}
}

// updatePodStatus applies fn to the live pod object; it reports false if
// the pod no longer exists.
func (k *kubelet) updatePodStatus(podName string, fn func(*Pod)) bool {
	ok, err := k.api.Mutate(KindPod, podName, func(obj Object) bool {
		fn(obj.(*Pod))
		return true
	})
	return ok && err == nil
}

// failPod marks the pod failed and tears down whatever started.
func (k *kubelet) failPod(p *Pod, worker *podWorker, err error) {
	k.updatePodStatus(p.Name, func(cur *Pod) {
		cur.Status.Phase = PodFailed
		cur.Status.Ready = false
		if cur.Annotations == nil {
			cur.Annotations = map[string]string{}
		}
		cur.Annotations["kube.failure"] = err.Error()
	})
	k.teardown(worker)
}

// teardown stops and removes the pod's containers and frees the node slot.
func (k *kubelet) teardown(worker *podWorker) {
	k.mu.Lock()
	worker.cancelled = true
	if k.workers[worker.podName] == worker {
		delete(k.workers, worker.podName)
	}
	containers := worker.containers
	worker.containers = nil
	released := worker.released
	worker.released = true
	k.mu.Unlock()
	for _, ctr := range containers {
		ctr.Remove()
	}
	if !released {
		releaseNodeSlot(k.api, k.nodeName)
	}
}
