// Package kube emulates the Kubernetes control plane the paper deploys
// edge services to: an API server with watches, the
// Deployment→ReplicaSet→Pod controller chain, a pluggable scheduler,
// per-node kubelets driving the shared containerd runtime, and an
// endpoints controller.
//
// The point of modelling the full pipeline rather than a single "start
// pod" delay is that the paper's headline contrast — Docker scales up in
// under a second while Kubernetes needs around three — *is* the
// accumulated latency of these control loops. Here that overhead emerges
// from watch propagation, work-queue delays, scheduling cycles, kubelet
// sync, and readiness-probe quantization, each individually calibrated.
package kube

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
)

// Kind names for the stored object types.
const (
	KindDeployment = "Deployment"
	KindReplicaSet = "ReplicaSet"
	KindPod        = "Pod"
	KindService    = "Service"
	KindEndpoints  = "Endpoints"
	KindNode       = "Node"
)

// ObjectMeta is the shared metadata of every API object.
type ObjectMeta struct {
	Name            string
	Labels          map[string]string
	Annotations     map[string]string
	ResourceVersion uint64
	CreatedAt       time.Time
	// OwnerName links derived objects to their parent (RS→Deployment,
	// Pod→RS).
	OwnerName string
}

func (m *ObjectMeta) copyMeta() ObjectMeta {
	out := *m
	out.Labels = copyMap(m.Labels)
	out.Annotations = copyMap(m.Annotations)
	return out
}

func copyMap(in map[string]string) map[string]string {
	if in == nil {
		return nil
	}
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Object is implemented by every stored API type.
type Object interface {
	Kind() string
	Meta() *ObjectMeta
	DeepCopy() Object
}

// ContainerSpec is one container in a pod template. Application
// behaviour (handler, readiness) is resolved from the image by the
// kubelet through the catalog's AppResolver, like a real node resolves
// an image to a runnable entrypoint.
type ContainerSpec struct {
	Name  string
	Image string
	// Port is the container port to expose; 0 for sidecars.
	Port uint16
}

// PodTemplate describes the pods a Deployment/ReplicaSet stamps out.
type PodTemplate struct {
	Labels     map[string]string
	Containers []ContainerSpec
	// Volumes lists shared-volume names instantiated per pod.
	Volumes []string
	// SchedulerName selects which scheduler binds the pods; empty means
	// the default scheduler.
	SchedulerName string
}

func (t PodTemplate) deepCopy() PodTemplate {
	out := t
	out.Labels = copyMap(t.Labels)
	out.Containers = append([]ContainerSpec(nil), t.Containers...)
	out.Volumes = append([]string(nil), t.Volumes...)
	return out
}

// Deployment is the declarative unit the SDN controller creates per
// edge service (Create phase) and scales (Scale Up/Down phases).
type Deployment struct {
	ObjectMeta
	Spec   DeploymentSpec
	Status DeploymentStatus
}

// DeploymentSpec holds the desired state.
type DeploymentSpec struct {
	Replicas int
	Selector map[string]string
	Template PodTemplate
}

// DeploymentStatus holds the observed state.
type DeploymentStatus struct {
	Replicas      int
	ReadyReplicas int
}

// Kind implements Object.
func (d *Deployment) Kind() string { return KindDeployment }

// Meta implements Object.
func (d *Deployment) Meta() *ObjectMeta { return &d.ObjectMeta }

// DeepCopy implements Object.
func (d *Deployment) DeepCopy() Object {
	out := *d
	out.ObjectMeta = d.copyMeta()
	out.Spec.Selector = copyMap(d.Spec.Selector)
	out.Spec.Template = d.Spec.Template.deepCopy()
	return &out
}

// ReplicaSet is the intermediate controller object between Deployments
// and Pods.
type ReplicaSet struct {
	ObjectMeta
	Spec   ReplicaSetSpec
	Status ReplicaSetStatus
}

// ReplicaSetSpec holds the desired pod count and template.
type ReplicaSetSpec struct {
	Replicas int
	Selector map[string]string
	Template PodTemplate
}

// ReplicaSetStatus holds observed counts.
type ReplicaSetStatus struct {
	Replicas      int
	ReadyReplicas int
}

// Kind implements Object.
func (r *ReplicaSet) Kind() string { return KindReplicaSet }

// Meta implements Object.
func (r *ReplicaSet) Meta() *ObjectMeta { return &r.ObjectMeta }

// DeepCopy implements Object.
func (r *ReplicaSet) DeepCopy() Object {
	out := *r
	out.ObjectMeta = r.copyMeta()
	out.Spec.Selector = copyMap(r.Spec.Selector)
	out.Spec.Template = r.Spec.Template.deepCopy()
	return &out
}

// PodPhase is the pod lifecycle phase.
type PodPhase string

// Pod phases (subset).
const (
	PodPending PodPhase = "Pending"
	PodRunning PodPhase = "Running"
	PodFailed  PodPhase = "Failed"
)

// Pod is one scheduled instance.
type Pod struct {
	ObjectMeta
	Spec   PodSpec
	Status PodStatus
}

// PodSpec holds the containers and binding.
type PodSpec struct {
	Containers    []ContainerSpec
	Volumes       []string
	SchedulerName string
	// NodeName is set by the scheduler when the pod is bound.
	NodeName string
}

// PodStatus holds the observed state.
type PodStatus struct {
	Phase PodPhase
	// Ready means all containers passed their readiness probe.
	Ready bool
	// HostIP is the address of the bound node.
	HostIP netem.IP
	// HostPort is the host port of the pod's serving container (the
	// NodePort-equivalent endpoint clients are redirected to).
	HostPort uint16
}

// Kind implements Object.
func (p *Pod) Kind() string { return KindPod }

// Meta implements Object.
func (p *Pod) Meta() *ObjectMeta { return &p.ObjectMeta }

// DeepCopy implements Object.
func (p *Pod) DeepCopy() Object {
	out := *p
	out.ObjectMeta = p.copyMeta()
	out.Spec.Containers = append([]ContainerSpec(nil), p.Spec.Containers...)
	out.Spec.Volumes = append([]string(nil), p.Spec.Volumes...)
	return &out
}

// Addr returns the pod's reachable service endpoint.
func (p *Pod) Addr() netem.HostPort {
	return netem.HostPort{IP: p.Status.HostIP, Port: p.Status.HostPort}
}

// ServicePort maps a service port to the container target port.
type ServicePort struct {
	Port       uint16
	TargetPort uint16
	Protocol   string
}

// Service is the stable addressing object generated by the controller's
// annotation engine for every edge service.
type Service struct {
	ObjectMeta
	Spec ServiceSpec
}

// ServiceSpec selects the backing pods.
type ServiceSpec struct {
	Selector map[string]string
	Ports    []ServicePort
}

// Kind implements Object.
func (s *Service) Kind() string { return KindService }

// Meta implements Object.
func (s *Service) Meta() *ObjectMeta { return &s.ObjectMeta }

// DeepCopy implements Object.
func (s *Service) DeepCopy() Object {
	out := *s
	out.ObjectMeta = s.copyMeta()
	out.Spec.Selector = copyMap(s.Spec.Selector)
	out.Spec.Ports = append([]ServicePort(nil), s.Spec.Ports...)
	return &out
}

// Endpoints lists the ready addresses behind a Service. In place of a
// kube-proxy NodePort hop, endpoints carry the pods' host-mapped ports
// directly (see DESIGN.md substitution table).
type Endpoints struct {
	ObjectMeta
	Addresses []netem.HostPort
}

// Kind implements Object.
func (e *Endpoints) Kind() string { return KindEndpoints }

// Meta implements Object.
func (e *Endpoints) Meta() *ObjectMeta { return &e.ObjectMeta }

// DeepCopy implements Object.
func (e *Endpoints) DeepCopy() Object {
	out := *e
	out.ObjectMeta = e.copyMeta()
	out.Addresses = append([]netem.HostPort(nil), e.Addresses...)
	return &out
}

// Node is one worker in the cluster.
type Node struct {
	ObjectMeta
	Spec   NodeSpec
	Status NodeStatus
}

// NodeSpec holds static node facts.
type NodeSpec struct {
	IP netem.IP
	// Capacity is the maximum number of pods.
	Capacity int
}

// NodeStatus holds observed node state.
type NodeStatus struct {
	Ready bool
	Pods  int
}

// Kind implements Object.
func (n *Node) Kind() string { return KindNode }

// Meta implements Object.
func (n *Node) Meta() *ObjectMeta { return &n.ObjectMeta }

// DeepCopy implements Object.
func (n *Node) DeepCopy() Object {
	out := *n
	out.ObjectMeta = n.copyMeta()
	return &out
}

// matchesSelector reports whether labels satisfy selector (nil selector
// matches nothing, mirroring Kubernetes semantics for services).
func matchesSelector(labels, selector map[string]string) bool {
	if len(selector) == 0 {
		return false
	}
	for k, v := range selector {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// validateSelector ensures the template labels satisfy the selector, the
// invariant Kubernetes enforces at admission.
func validateSelector(selector, templateLabels map[string]string) error {
	if len(selector) == 0 {
		return fmt.Errorf("kube: empty selector")
	}
	if !matchesSelector(templateLabels, selector) {
		return fmt.Errorf("kube: template labels %v do not satisfy selector %v", templateLabels, selector)
	}
	return nil
}
