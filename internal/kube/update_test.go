package kube

import (
	"sync"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestTemplateChangeRecreatesPods updates a deployment's pod template:
// the Recreate strategy must replace the running pods with ones built
// from the new template.
func TestTemplateChangeRecreatesPods(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 1))
		env.cluster.CreateService(webService("svc"))
		waitEndpoints(t, clk, env, "svc", 1, time.Minute)

		// Switch the container image (web → sidecar has no port; use a
		// second web-like image instead: change the container name).
		found, err := env.cluster.API().Mutate(KindDeployment, "svc", func(obj Object) bool {
			d := obj.(*Deployment)
			d.Spec.Template.Containers[0].Name = "web-v2"
			return true
		})
		if err != nil || !found {
			t.Fatalf("mutate: %v %v", found, err)
		}
		waitCondition(t, clk, time.Minute, func() bool {
			pods := env.cluster.API().List(KindPod, nil)
			if len(pods) != 1 {
				return false
			}
			p := pods[0].(*Pod)
			return p.Status.Ready && p.Spec.Containers[0].Name == "web-v2"
		})
	})
}

// TestDeploymentStatusPropagation checks the status chain: pod ready →
// ReplicaSet status → Deployment status.
func TestDeploymentStatusPropagation(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 2))
		env.cluster.CreateService(webService("svc"))
		waitCondition(t, clk, time.Minute, func() bool {
			obj, ok := env.cluster.API().Get(KindDeployment, "svc")
			if !ok {
				return false
			}
			d := obj.(*Deployment)
			return d.Status.Replicas == 2 && d.Status.ReadyReplicas == 2
		})
		// Scale down: the status follows.
		env.cluster.Scale("svc", 1)
		waitCondition(t, clk, time.Minute, func() bool {
			obj, _ := env.cluster.API().Get(KindDeployment, "svc")
			d := obj.(*Deployment)
			return d.Status.Replicas == 1 && d.Status.ReadyReplicas == 1
		})
	})
}

// TestUpdateConflictDetection exercises the optimistic-concurrency path
// of the API server directly.
func TestUpdateConflictDetection(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		d := webDeployment("svc", 0)
		api.Create(d)
		stale := d.DeepCopy().(*Deployment)
		d.Spec.Replicas = 1
		if err := api.Update(d); err != nil {
			t.Fatal(err)
		}
		stale.Spec.Replicas = 5
		if err := api.Update(stale); err == nil {
			t.Fatal("stale update accepted")
		}
		// The winning write survived.
		cur, _ := api.Get(KindDeployment, "svc")
		if cur.(*Deployment).Spec.Replicas != 1 {
			t.Errorf("replicas = %d, want 1", cur.(*Deployment).Spec.Replicas)
		}
	})
}

// TestMutateRetriesUnderContention hammers one object from many
// goroutines; Mutate must linearize all increments.
func TestMutateRetriesUnderContention(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		api.Create(&Node{ObjectMeta: ObjectMeta{Name: "n"}, Spec: NodeSpec{Capacity: 1000}})
		var g vclock.Group
		const writers, each = 8, 10
		for w := 0; w < writers; w++ {
			g.Go(clk, func() {
				for i := 0; i < each; i++ {
					api.Mutate(KindNode, "n", func(obj Object) bool {
						obj.(*Node).Status.Pods++
						return true
					})
				}
			})
		}
		g.Wait(clk)
		obj, _ := api.Get(KindNode, "n")
		if got := obj.(*Node).Status.Pods; got != writers*each {
			t.Errorf("pods = %d, want %d (lost updates)", got, writers*each)
		}
	})
}

// TestWatchStopDuringDeliveries stops a watch while events are in
// flight; no panic, no goroutine wedge.
func TestWatchStopDuringDeliveries(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		api := NewAPI(clk, 1, DefaultTiming())
		w := api.Watch(KindDeployment)
		var g vclock.Group
		g.Go(clk, func() {
			for i := 0; i < 20; i++ {
				api.Create(webDeployment(string(rune('a'+i)), 0))
			}
		})
		// Stop mid-stream: in-flight deliveries hit a closed mailbox and
		// are dropped silently.
		clk.Sleep(30 * time.Millisecond)
		w.Stop()
		g.Wait(clk)
		clk.Sleep(time.Second)
		if _, ok := w.RecvTimeout(time.Second); ok {
			t.Error("event delivered after Stop")
		}
	})
}

// TestKeyQueueCoalesces checks the controller work queue's dedup
// invariant: N adds of the same key while queued yield one Get.
func TestKeyQueueCoalesces(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		q := newKeyQueue(clk)
		for i := 0; i < 100; i++ {
			q.Add("same")
		}
		q.Add("other")
		if got := q.Get(); got != "same" {
			t.Errorf("Get = %q", got)
		}
		if got := q.Get(); got != "other" {
			t.Errorf("Get = %q (duplicates not coalesced)", got)
		}
		// Re-adding after Get enqueues again.
		q.Add("same")
		if got := q.Get(); got != "same" {
			t.Errorf("Get = %q", got)
		}
	})
}

// TestKeyQueueBlocksUntilAdd verifies the blocking Get.
func TestKeyQueueBlocksUntilAdd(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		q := newKeyQueue(clk)
		var got string
		var mu sync.Mutex
		var g vclock.Group
		g.Go(clk, func() {
			k := q.Get()
			mu.Lock()
			got = k
			mu.Unlock()
		})
		clk.Sleep(time.Second)
		mu.Lock()
		if got != "" {
			t.Error("Get returned before Add")
		}
		mu.Unlock()
		q.Add("x")
		g.Wait(clk)
		if got != "x" {
			t.Errorf("got = %q", got)
		}
	})
}
