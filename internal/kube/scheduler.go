package kube

import (
	"fmt"
	"sort"
	"sync"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// DefaultSchedulerName is the scheduler that binds pods whose spec does
// not name one — the Local Scheduler role in the paper's terminology
// when no custom scheduler is configured for the edge cluster.
const DefaultSchedulerName = "default-scheduler"

// NodePicker chooses a node for one pod — the pluggable heart of a
// Kubernetes scheduler. Custom Local Schedulers (the paper cites
// matching-based schedulers as examples) implement this.
type NodePicker interface {
	// Pick returns the chosen node name. nodes only contains nodes with
	// free capacity.
	Pick(nodes []*Node, pod *Pod) (string, error)
}

// LeastLoaded picks the node with the fewest pods (ties by name),
// approximating the default scheduler's spreading behaviour.
type LeastLoaded struct{}

// Pick implements NodePicker.
func (LeastLoaded) Pick(nodes []*Node, pod *Pod) (string, error) {
	if len(nodes) == 0 {
		return "", fmt.Errorf("kube: no schedulable nodes")
	}
	best := nodes[0]
	for _, n := range nodes[1:] {
		if n.Status.Pods < best.Status.Pods ||
			(n.Status.Pods == best.Status.Pods && n.Name < best.Name) {
			best = n
		}
	}
	return best.Name, nil
}

// BinPack fills the fullest node first — a custom Local Scheduler used
// by the ablation benches to show the plug-in mechanism end to end.
type BinPack struct{}

// Pick implements NodePicker.
func (BinPack) Pick(nodes []*Node, pod *Pod) (string, error) {
	if len(nodes) == 0 {
		return "", fmt.Errorf("kube: no schedulable nodes")
	}
	best := nodes[0]
	for _, n := range nodes[1:] {
		if n.Status.Pods > best.Status.Pods ||
			(n.Status.Pods == best.Status.Pods && n.Name < best.Name) {
			best = n
		}
	}
	return best.Name, nil
}

// scheduler binds pending pods addressed to its name on a fixed cycle.
type scheduler struct {
	api    *API
	clk    vclock.Clock
	rng    *vclock.Rand
	name   string
	picker NodePicker

	mu    sync.Mutex
	queue map[string]bool // pod names awaiting binding
}

func startScheduler(api *API, seed int64, name string, picker NodePicker) {
	s := &scheduler{
		api:    api,
		clk:    api.clk,
		rng:    vclock.NewRand(seed),
		name:   name,
		picker: picker,
		queue:  make(map[string]bool),
	}
	w := api.Watch(KindPod)
	api.clk.Go(func() {
		for {
			ev, ok := w.Recv()
			if !ok {
				return
			}
			p := ev.Object.(*Pod)
			if ev.Type == Deleted {
				s.mu.Lock()
				delete(s.queue, p.Name)
				s.mu.Unlock()
				continue
			}
			if p.Spec.NodeName == "" && s.owns(p) {
				s.mu.Lock()
				s.queue[p.Name] = true
				s.mu.Unlock()
			}
		}
	})
	s.scheduleCycle()
}

// owns reports whether this scheduler is responsible for the pod.
func (s *scheduler) owns(p *Pod) bool {
	want := p.Spec.SchedulerName
	if want == "" {
		want = DefaultSchedulerName
	}
	return want == s.name
}

// scheduleCycle arms the periodic scheduling loop.
func (s *scheduler) scheduleCycle() {
	period := s.rng.Jitter(s.api.timing.SchedulerCycle, s.api.timing.JitterFrac)
	s.clk.AfterFunc(period, func() {
		s.runCycle()
		s.scheduleCycle()
	})
}

func (s *scheduler) runCycle() {
	s.mu.Lock()
	if len(s.queue) == 0 {
		s.mu.Unlock()
		return
	}
	names := make([]string, 0, len(s.queue))
	for name := range s.queue {
		names = append(names, name)
	}
	s.queue = make(map[string]bool)
	s.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		s.bind(name)
	}
}

func (s *scheduler) bind(podName string) {
	obj, ok := s.api.Get(KindPod, podName)
	if !ok {
		return
	}
	p := obj.(*Pod)
	if p.Spec.NodeName != "" || !s.owns(p) {
		return
	}
	var free []*Node
	for _, nObj := range s.api.List(KindNode, nil) {
		n := nObj.(*Node)
		if n.Status.Ready && n.Status.Pods < n.Spec.Capacity {
			free = append(free, n)
		}
	}
	nodeName, err := s.picker.Pick(free, p)
	if err != nil {
		// Leave the pod pending; retry next cycle.
		s.mu.Lock()
		s.queue[podName] = true
		s.mu.Unlock()
		return
	}
	bound := false
	s.api.Mutate(KindPod, podName, func(obj Object) bool {
		live := obj.(*Pod)
		if live.Spec.NodeName != "" {
			return false
		}
		live.Spec.NodeName = nodeName
		bound = true
		return true
	})
	if bound {
		s.api.Mutate(KindNode, nodeName, func(obj Object) bool {
			obj.(*Node).Status.Pods++
			return true
		})
	}
}

// releaseNodeSlot decrements a node's pod count when a pod dies; called
// by the kubelet during teardown.
func releaseNodeSlot(api *API, nodeName string) {
	api.Mutate(KindNode, nodeName, func(obj Object) bool {
		n := obj.(*Node)
		if n.Status.Pods == 0 {
			return false
		}
		n.Status.Pods--
		return true
	})
}
