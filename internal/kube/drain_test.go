package kube

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func waitCondition(t *testing.T, clk *vclock.Virtual, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for !cond() {
		if clk.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		clk.Sleep(200 * time.Millisecond)
	}
}

func waitEndpoints(t *testing.T, clk *vclock.Virtual, env *kubeEnv, svc string, want int, timeout time.Duration) {
	t.Helper()
	deadline := clk.Now().Add(timeout)
	for len(env.cluster.ReadyEndpoints(svc)) != want {
		if clk.Now().After(deadline) {
			t.Fatalf("endpoints = %d, want %d", len(env.cluster.ReadyEndpoints(svc)), want)
		}
		clk.Sleep(200 * time.Millisecond)
	}
}

func TestDrainNodeMovesPods(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 2)
		env.cluster.CreateDeployment(webDeployment("svc", 2))
		env.cluster.CreateService(webService("svc"))
		waitEndpoints(t, clk, env, "svc", 2, time.Minute)

		// LeastLoaded spread one pod per node; drain node0.
		if err := env.cluster.DrainNode("node0"); err != nil {
			t.Fatal(err)
		}
		// Replacement pods land on node1 only. Wait until the eviction
		// has propagated (the endpoint count is transiently stale for a
		// watch latency after the drain).
		waitCondition(t, clk, time.Minute, func() bool {
			return len(env.cluster.PodsOnNode("node0")) == 0 &&
				len(env.cluster.PodsOnNode("node1")) == 2 &&
				len(env.cluster.ReadyEndpoints("svc")) == 2
		})

		// Uncordon and drain the other node: pods flow back.
		if err := env.cluster.UncordonNode("node0"); err != nil {
			t.Fatal(err)
		}
		if err := env.cluster.DrainNode("node1"); err != nil {
			t.Fatal(err)
		}
		waitCondition(t, clk, time.Minute, func() bool {
			return len(env.cluster.PodsOnNode("node1")) == 0 &&
				len(env.cluster.PodsOnNode("node0")) == 2 &&
				len(env.cluster.ReadyEndpoints("svc")) == 2
		})
	})
}

func TestDrainLastNodeLeavesPodsPending(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		env.cluster.CreateDeployment(webDeployment("svc", 1))
		env.cluster.CreateService(webService("svc"))
		waitEndpoints(t, clk, env, "svc", 1, time.Minute)
		if err := env.cluster.DrainNode("node0"); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(15 * time.Second)
		// The replacement pod exists but cannot be scheduled anywhere.
		pods := env.cluster.API().List(KindPod, nil)
		if len(pods) != 1 {
			t.Fatalf("pods = %d, want 1 replacement", len(pods))
		}
		if p := pods[0].(*Pod); p.Spec.NodeName != "" {
			t.Errorf("pod bound to %q despite full cordon", p.Spec.NodeName)
		}
		if eps := env.cluster.ReadyEndpoints("svc"); len(eps) != 0 {
			t.Errorf("endpoints = %v on a fully drained cluster", eps)
		}
		// Uncordon: the pending pod gets scheduled and serves again.
		env.cluster.UncordonNode("node0")
		waitEndpoints(t, clk, env, "svc", 1, time.Minute)
	})
}

func TestCordonUnknownNode(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newKubeEnv(t, clk, 1)
		if err := env.cluster.CordonNode("ghost"); err == nil {
			t.Error("cordon of unknown node succeeded")
		}
	})
}
