package kube

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// NodeConfig describes one worker node of the cluster.
type NodeConfig struct {
	Name string
	// Runtime is the node's containerd instance (bound to its host).
	Runtime *containerd.Runtime
	// Capacity is the pod capacity; zero means 100.
	Capacity int
}

// Config assembles a cluster.
type Config struct {
	Name string
	// Timing is the control-plane cost model.
	Timing Timing
	// Registry is where kubelets pull images from.
	Registry registry.Remote
	// Resolver maps image references to app behaviour.
	Resolver containerd.AppResolver
	// Nodes lists the worker nodes; at least one is required.
	Nodes []NodeConfig
	// ExtraSchedulers registers custom Local Schedulers by name, in
	// addition to the always-present default scheduler.
	ExtraSchedulers map[string]NodePicker
	// Seed feeds the deterministic jitter of all components.
	Seed int64
}

// Cluster is a running control plane plus its nodes.
type Cluster struct {
	name string
	api  *API
	clk  vclock.Clock
}

// NewCluster builds and starts a cluster: API server, controllers,
// schedulers, and one kubelet per node.
func NewCluster(clk vclock.Clock, cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("kube: cluster %q needs at least one node", cfg.Name)
	}
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("kube: cluster %q needs an app resolver", cfg.Name)
	}
	api := NewAPI(clk, cfg.Seed, cfg.Timing)
	c := &Cluster{name: cfg.Name, api: api, clk: clk}

	for i, nc := range cfg.Nodes {
		cap := nc.Capacity
		if cap <= 0 {
			cap = 100
		}
		node := &Node{
			ObjectMeta: ObjectMeta{Name: nc.Name},
			Spec:       NodeSpec{IP: nc.Runtime.Host().IP(), Capacity: cap},
			Status:     NodeStatus{Ready: true},
		}
		if err := api.Create(node); err != nil {
			return nil, err
		}
		startKubelet(api, cfg.Seed+100+int64(i), nc.Name, nc.Runtime, cfg.Registry, cfg.Resolver)
	}

	startDeploymentController(api, cfg.Seed+1)
	startReplicaSetController(api, cfg.Seed+2)
	startEndpointsController(api, cfg.Seed+3)
	startScheduler(api, cfg.Seed+4, DefaultSchedulerName, LeastLoaded{})
	i := int64(0)
	for name, picker := range cfg.ExtraSchedulers {
		startScheduler(api, cfg.Seed+10+i, name, picker)
		i++
	}
	return c, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// API returns the cluster's API server (the kubectl equivalent).
func (c *Cluster) API() *API { return c.api }

// CreateDeployment submits a Deployment object.
func (c *Cluster) CreateDeployment(d *Deployment) error {
	if err := validateSelector(d.Spec.Selector, d.Spec.Template.Labels); err != nil {
		return err
	}
	return c.api.Create(d)
}

// CreateService submits a Service object.
func (c *Cluster) CreateService(s *Service) error {
	return c.api.Create(s)
}

// Scale sets the replica count of a deployment (Scale Up / Scale Down
// phases).
func (c *Cluster) Scale(deployment string, replicas int) error {
	found, err := c.api.Mutate(KindDeployment, deployment, func(obj Object) bool {
		d := obj.(*Deployment)
		if d.Spec.Replicas == replicas {
			return false
		}
		d.Spec.Replicas = replicas
		return true
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("kube: deployment %q not found", deployment)
	}
	return nil
}

// HasDeployment reports whether the deployment object exists (the
// dispatcher's "created?" check).
func (c *Cluster) HasDeployment(name string) bool {
	_, ok := c.api.Get(KindDeployment, name)
	return ok
}

// Replicas returns the desired replica count of a deployment.
func (c *Cluster) Replicas(name string) (int, bool) {
	obj, ok := c.api.Get(KindDeployment, name)
	if !ok {
		return 0, false
	}
	return obj.(*Deployment).Spec.Replicas, true
}

// ReadyEndpoints returns the ready addresses behind a service.
func (c *Cluster) ReadyEndpoints(service string) []netem.HostPort {
	obj, ok := c.api.Get(KindEndpoints, service)
	if !ok {
		return nil
	}
	return append([]netem.HostPort(nil), obj.(*Endpoints).Addresses...)
}

// WaitReadyEndpoint polls until the service has a ready endpoint or the
// deadline passes, returning the first address. poll controls the
// querying client's period (the SDN controller uses its own).
func (c *Cluster) WaitReadyEndpoint(service string, poll, timeout time.Duration) (netem.HostPort, bool) {
	deadline := c.clk.Now().Add(timeout)
	for {
		if eps := c.ReadyEndpoints(service); len(eps) > 0 {
			return eps[0], true
		}
		if c.clk.Now().After(deadline) {
			return netem.HostPort{}, false
		}
		c.clk.Sleep(poll)
	}
}

// CordonNode marks a node unschedulable (kubectl cordon).
func (c *Cluster) CordonNode(name string) error {
	return c.setNodeReady(name, false)
}

// UncordonNode marks a node schedulable again (kubectl uncordon).
func (c *Cluster) UncordonNode(name string) error {
	return c.setNodeReady(name, true)
}

func (c *Cluster) setNodeReady(name string, ready bool) error {
	found, err := c.api.Mutate(KindNode, name, func(obj Object) bool {
		n := obj.(*Node)
		if n.Status.Ready == ready {
			return false
		}
		n.Status.Ready = ready
		return true
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("kube: node %q not found", name)
	}
	return nil
}

// PodsOnNode lists the pods currently bound to a node.
func (c *Cluster) PodsOnNode(name string) []*Pod {
	var out []*Pod
	for _, obj := range c.api.List(KindPod, nil) {
		p := obj.(*Pod)
		if p.Spec.NodeName == name {
			out = append(out, p)
		}
	}
	return out
}

// DrainNode cordons the node and evicts its pods (kubectl drain); the
// owning ReplicaSets recreate the pods on the remaining nodes.
func (c *Cluster) DrainNode(name string) error {
	if err := c.CordonNode(name); err != nil {
		return err
	}
	for _, p := range c.PodsOnNode(name) {
		if err := c.api.Delete(KindPod, p.Name); err != nil {
			return err
		}
	}
	return nil
}

// DeleteDeployment removes a deployment; the controller chain reaps the
// ReplicaSet and Pods (Remove phase).
func (c *Cluster) DeleteDeployment(name string) error {
	return c.api.Delete(KindDeployment, name)
}

// DeleteService removes a service and its endpoints.
func (c *Cluster) DeleteService(name string) error {
	return c.api.Delete(KindService, name)
}
