package kube

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// mergeWatches funnels several watches into one mailbox so a controller
// can process heterogeneous events in arrival order.
func mergeWatches(clk vclock.Clock, watches ...*Watch) *vclock.Mailbox[Event] {
	out := vclock.NewMailbox[Event](clk)
	for _, w := range watches {
		w := w
		clk.Go(func() {
			for {
				ev, ok := w.Recv()
				if !ok {
					return
				}
				out.Send(ev)
			}
		})
	}
	return out
}

// keyQueue is a deduplicating work queue, the coalescing mechanism of
// real controllers: a key added many times while queued is reconciled
// once. Without it, a deployment burst (Fig. 10: up to eight per
// second) would serialize one reconcile per watch event.
type keyQueue struct {
	clk   vclock.Clock
	mu    sync.Mutex
	cond  *vclock.Cond
	set   map[string]bool
	order []string
}

func newKeyQueue(clk vclock.Clock) *keyQueue {
	q := &keyQueue{clk: clk, set: make(map[string]bool)}
	q.cond = vclock.NewCond(clk, &q.mu)
	return q
}

// Add enqueues key unless it is already pending.
func (q *keyQueue) Add(key string) {
	q.mu.Lock()
	if !q.set[key] {
		q.set[key] = true
		q.order = append(q.order, key)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// Get blocks until a key is pending and removes it.
func (q *keyQueue) Get() string {
	q.mu.Lock()
	for len(q.order) == 0 {
		q.cond.Wait()
	}
	key := q.order[0]
	q.order = q.order[1:]
	delete(q.set, key)
	q.mu.Unlock()
	return key
}

// runWorker processes keys forever on a clock goroutine.
func (q *keyQueue) runWorker(reconcile func(key string)) {
	q.clk.Go(func() {
		for {
			reconcile(q.Get())
		}
	})
}

// controllerBase bundles what every control loop needs.
type controllerBase struct {
	api *API
	clk vclock.Clock
	rng *vclock.Rand
}

func (c *controllerBase) work() {
	c.clk.Sleep(c.rng.Jitter(c.api.timing.ControllerWork, c.api.timing.JitterFrac))
}

// rsNameFor derives the ReplicaSet name owned by a deployment.
func rsNameFor(deployment string) string { return deployment + "-rs" }

// deploymentController reconciles Deployments into ReplicaSets and
// aggregates status back up.
type deploymentController struct {
	controllerBase
}

func startDeploymentController(api *API, seed int64) {
	c := &deploymentController{controllerBase{api: api, clk: api.clk, rng: vclock.NewRand(seed)}}
	queue := newKeyQueue(api.clk)
	events := mergeWatches(api.clk, api.Watch(KindDeployment), api.Watch(KindReplicaSet))
	api.clk.Go(func() {
		for {
			ev, ok := events.Recv()
			if !ok {
				return
			}
			switch obj := ev.Object.(type) {
			case *Deployment:
				queue.Add(obj.Name)
			case *ReplicaSet:
				if obj.OwnerName != "" {
					queue.Add(obj.OwnerName)
				}
			}
		}
	})
	queue.runWorker(c.reconcile)
}

func (c *deploymentController) reconcile(name string) {
	obj, ok := c.api.Get(KindDeployment, name)
	if !ok {
		// Deployment gone: reap the owned ReplicaSet.
		c.work()
		c.api.Delete(KindReplicaSet, rsNameFor(name))
		return
	}
	d := obj.(*Deployment)
	c.work()

	rsName := rsNameFor(d.Name)
	cur, exists := c.api.Get(KindReplicaSet, rsName)
	if !exists {
		rs := &ReplicaSet{
			ObjectMeta: ObjectMeta{
				Name:      rsName,
				Labels:    copyMap(d.Spec.Template.Labels),
				OwnerName: d.Name,
			},
			Spec: ReplicaSetSpec{
				Replicas: d.Spec.Replicas,
				Selector: copyMap(d.Spec.Selector),
				Template: d.Spec.Template.deepCopy(),
			},
		}
		c.api.Create(rs)
		return
	}
	rs := cur.(*ReplicaSet)
	if !templatesEqual(rs.Spec.Template, d.Spec.Template) {
		// Template change: Recreate strategy — delete the ReplicaSet
		// (its pods are reaped) and stamp out a fresh one on the next
		// reconcile. Edge services are stateless scale-from-zero
		// workloads, so Recreate matches their operational model.
		c.api.Delete(KindReplicaSet, rsName)
		c.reconcile(name)
		return
	}
	if rs.Spec.Replicas != d.Spec.Replicas {
		c.api.Mutate(KindReplicaSet, rsName, func(obj Object) bool {
			live := obj.(*ReplicaSet)
			if live.Spec.Replicas == d.Spec.Replicas {
				return false
			}
			live.Spec.Replicas = d.Spec.Replicas
			return true
		})
		return
	}
	// Surface observed counts on the deployment.
	c.api.Mutate(KindDeployment, d.Name, func(obj Object) bool {
		live := obj.(*Deployment)
		if live.Status.Replicas == rs.Status.Replicas && live.Status.ReadyReplicas == rs.Status.ReadyReplicas {
			return false
		}
		live.Status.Replicas = rs.Status.Replicas
		live.Status.ReadyReplicas = rs.Status.ReadyReplicas
		return true
	})
}

// templatesEqual compares the fields that force pod replacement.
func templatesEqual(a, b PodTemplate) bool {
	if len(a.Containers) != len(b.Containers) || a.SchedulerName != b.SchedulerName {
		return false
	}
	for i := range a.Containers {
		if a.Containers[i] != b.Containers[i] {
			return false
		}
	}
	if len(a.Labels) != len(b.Labels) {
		return false
	}
	for k, v := range a.Labels {
		if b.Labels[k] != v {
			return false
		}
	}
	return true
}

// replicaSetController stamps out and reaps Pods for ReplicaSets.
type replicaSetController struct {
	controllerBase
}

func startReplicaSetController(api *API, seed int64) {
	c := &replicaSetController{controllerBase{api: api, clk: api.clk, rng: vclock.NewRand(seed)}}
	queue := newKeyQueue(api.clk)
	events := mergeWatches(api.clk, api.Watch(KindReplicaSet), api.Watch(KindPod))
	api.clk.Go(func() {
		for {
			ev, ok := events.Recv()
			if !ok {
				return
			}
			switch obj := ev.Object.(type) {
			case *ReplicaSet:
				queue.Add(obj.Name)
			case *Pod:
				if obj.OwnerName != "" {
					queue.Add(obj.OwnerName)
				}
			}
		}
	})
	queue.runWorker(c.reconcile)
}

func (c *replicaSetController) ownedPods(rsName string) []*Pod {
	var out []*Pod
	for _, obj := range c.api.List(KindPod, nil) {
		p := obj.(*Pod)
		if p.OwnerName == rsName && p.Status.Phase != PodFailed {
			out = append(out, p)
		}
	}
	return out
}

func (c *replicaSetController) reconcile(rsName string) {
	obj, ok := c.api.Get(KindReplicaSet, rsName)
	if !ok {
		// ReplicaSet gone: reap the owned pods.
		c.work()
		for _, p := range c.ownedPods(rsName) {
			c.api.Delete(KindPod, p.Name)
		}
		return
	}
	rs := obj.(*ReplicaSet)
	c.work()
	pods := c.ownedPods(rs.Name)

	switch {
	case len(pods) < rs.Spec.Replicas:
		for i := len(pods); i < rs.Spec.Replicas; i++ {
			c.api.Create(c.newPod(rs, pods))
			pods = c.ownedPods(rs.Name)
		}
	case len(pods) > rs.Spec.Replicas:
		doomed := victims(pods, len(pods)-rs.Spec.Replicas)
		for _, p := range doomed {
			c.api.Delete(KindPod, p.Name)
		}
		pods = c.ownedPods(rs.Name)
	}

	ready := 0
	for _, p := range pods {
		if p.Status.Ready {
			ready++
		}
	}
	count := len(pods)
	c.api.Mutate(KindReplicaSet, rs.Name, func(obj Object) bool {
		live := obj.(*ReplicaSet)
		if live.Status.Replicas == count && live.Status.ReadyReplicas == ready {
			return false
		}
		live.Status.Replicas = count
		live.Status.ReadyReplicas = ready
		return true
	})
}

// newPod builds the next pod for rs, choosing a free ordinal suffix.
func (c *replicaSetController) newPod(rs *ReplicaSet, existing []*Pod) *Pod {
	used := make(map[string]bool, len(existing))
	for _, p := range existing {
		used[p.Name] = true
	}
	var name string
	for i := 0; ; i++ {
		name = fmt.Sprintf("%s-%d", rs.Name, i)
		if !used[name] {
			break
		}
	}
	return &Pod{
		ObjectMeta: ObjectMeta{
			Name:      name,
			Labels:    copyMap(rs.Spec.Template.Labels),
			OwnerName: rs.Name,
		},
		Spec: PodSpec{
			Containers:    append([]ContainerSpec(nil), rs.Spec.Template.Containers...),
			Volumes:       append([]string(nil), rs.Spec.Template.Volumes...),
			SchedulerName: rs.Spec.Template.SchedulerName,
		},
		Status: PodStatus{Phase: PodPending},
	}
}

// victims picks n pods to delete on scale-down: not-ready first, then
// youngest.
func victims(pods []*Pod, n int) []*Pod {
	sorted := append([]*Pod(nil), pods...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Status.Ready != sorted[j].Status.Ready {
			return !sorted[i].Status.Ready
		}
		return sorted[i].CreatedAt.After(sorted[j].CreatedAt)
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// endpointsController maintains one Endpoints object per Service listing
// the ready backing pods.
type endpointsController struct {
	controllerBase
}

func startEndpointsController(api *API, seed int64) {
	c := &endpointsController{controllerBase{api: api, clk: api.clk, rng: vclock.NewRand(seed)}}
	queue := newKeyQueue(api.clk)
	events := mergeWatches(api.clk, api.Watch(KindService), api.Watch(KindPod))
	api.clk.Go(func() {
		for {
			ev, ok := events.Recv()
			if !ok {
				return
			}
			switch obj := ev.Object.(type) {
			case *Service:
				queue.Add(obj.Name)
			case *Pod:
				// Any pod change may affect any service selecting it.
				for _, svcObj := range c.api.List(KindService, nil) {
					svc := svcObj.(*Service)
					if matchesSelector(obj.Labels, svc.Spec.Selector) || ev.Type == Deleted {
						queue.Add(svc.Name)
					}
				}
			}
		}
	})
	queue.runWorker(c.reconcile)
}

func (c *endpointsController) reconcile(svcName string) {
	obj, ok := c.api.Get(KindService, svcName)
	if !ok {
		c.api.Delete(KindEndpoints, svcName)
		return
	}
	svc := obj.(*Service)
	c.work()

	var addrs []netem.HostPort
	for _, podObj := range c.api.List(KindPod, svc.Spec.Selector) {
		p := podObj.(*Pod)
		if p.Status.Ready && !p.Addr().IsZero() {
			addrs = append(addrs, p.Addr())
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		return strings.Compare(addrs[i].String(), addrs[j].String()) < 0
	})

	cur, exists := c.api.Get(KindEndpoints, svc.Name)
	if !exists {
		c.api.Create(&Endpoints{
			ObjectMeta: ObjectMeta{Name: svc.Name, OwnerName: svc.Name},
			Addresses:  addrs,
		})
		return
	}
	c.api.Mutate(KindEndpoints, cur.Meta().Name, func(obj Object) bool {
		live := obj.(*Endpoints)
		if addrsEqual(live.Addresses, addrs) {
			return false
		}
		live.Addresses = addrs
		return true
	})
}

func addrsEqual(a, b []netem.HostPort) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
