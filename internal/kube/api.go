package kube

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Timing is the control-plane cost model. Every constant is a median;
// jitter is applied uniformly. The defaults are calibrated so that a
// scale-up of a trivial service through the full pipeline lands around
// the paper's "about three seconds".
type Timing struct {
	// APILatency is the cost of one API request (create/update/get).
	APILatency time.Duration
	// WatchLatency is the propagation delay of one watch event.
	WatchLatency time.Duration
	// ControllerWork is the work-queue + reconcile cost per object in
	// the deployment/replicaset/endpoints controllers.
	ControllerWork time.Duration
	// SchedulerCycle is the scheduling loop period; an unscheduled pod
	// waits on average half of it, plus binding work.
	SchedulerCycle time.Duration
	// KubeletReact is the kubelet's bookkeeping delay before it begins
	// pod setup after seeing a bound pod.
	KubeletReact time.Duration
	// SandboxSetup is the pod sandbox (pause container + cgroups)
	// creation cost, paid once per pod before containers start.
	SandboxSetup time.Duration
	// ProbePeriod is the readiness probe interval; probe workers start
	// with a uniform splay of one period.
	ProbePeriod time.Duration
	// JitterFrac scales uniform jitter on all of the above.
	JitterFrac float64
}

// DefaultTiming returns the calibrated control-plane cost model.
func DefaultTiming() Timing {
	return Timing{
		APILatency:     3 * time.Millisecond,
		WatchLatency:   25 * time.Millisecond,
		ControllerWork: 20 * time.Millisecond,
		SchedulerCycle: 250 * time.Millisecond,
		KubeletReact:   330 * time.Millisecond,
		SandboxSetup:   700 * time.Millisecond,
		ProbePeriod:    time.Second,
		JitterFrac:     0.10,
	}
}

// EventType classifies watch events.
type EventType int

// Watch event types.
const (
	Added EventType = iota
	Modified
	Deleted
)

// String renders the event type.
func (t EventType) String() string {
	switch t {
	case Added:
		return "ADDED"
	case Modified:
		return "MODIFIED"
	case Deleted:
		return "DELETED"
	}
	return "UNKNOWN"
}

// Event is one watch notification.
type Event struct {
	Type   EventType
	Object Object
}

// Watch is a subscription to one object kind.
type Watch struct {
	api    *API
	kind   string
	events *vclock.Mailbox[Event]
}

// Recv blocks for the next event; ok is false after Stop.
func (w *Watch) Recv() (Event, bool) { return w.events.Recv() }

// RecvTimeout is Recv with a deadline.
func (w *Watch) RecvTimeout(d time.Duration) (Event, bool) { return w.events.RecvTimeout(d) }

// Stop cancels the subscription and discards queued events.
func (w *Watch) Stop() {
	w.api.mu.Lock()
	ws := w.api.watchers[w.kind]
	for i, other := range ws {
		if other == w {
			w.api.watchers[w.kind] = append(ws[:i:i], ws[i+1:]...)
			break
		}
	}
	w.api.mu.Unlock()
	w.events.Close()
	for {
		if _, ok := w.events.TryRecv(); !ok {
			return
		}
	}
}

// API is the emulated API server: a versioned object store with watch
// fan-out and per-request latency.
type API struct {
	clk    vclock.Clock
	rng    *vclock.Rand
	timing Timing

	mu       sync.Mutex
	objects  map[string]map[string]Object
	rv       uint64
	watchers map[string][]*Watch
}

// NewAPI returns an empty API server.
func NewAPI(clk vclock.Clock, seed int64, timing Timing) *API {
	return &API{
		clk:      clk,
		rng:      vclock.NewRand(seed),
		timing:   timing,
		objects:  make(map[string]map[string]Object),
		watchers: make(map[string][]*Watch),
	}
}

// Clock exposes the API server's time source.
func (a *API) Clock() vclock.Clock { return a.clk }

// Timing exposes the control-plane cost model.
func (a *API) Timing() Timing { return a.timing }

func (a *API) requestLatency() {
	a.clk.Sleep(a.rng.Jitter(a.timing.APILatency, a.timing.JitterFrac))
}

// Create stores a new object. It fails if the name is taken.
func (a *API) Create(obj Object) error {
	a.requestLatency()
	a.mu.Lock()
	kind := obj.Kind()
	byName := a.objects[kind]
	if byName == nil {
		byName = make(map[string]Object)
		a.objects[kind] = byName
	}
	name := obj.Meta().Name
	if name == "" {
		a.mu.Unlock()
		return fmt.Errorf("kube: %s without a name", kind)
	}
	if _, dup := byName[name]; dup {
		a.mu.Unlock()
		return fmt.Errorf("kube: %s %q already exists", kind, name)
	}
	a.rv++
	stored := obj.DeepCopy()
	stored.Meta().ResourceVersion = a.rv
	stored.Meta().CreatedAt = a.clk.Now()
	byName[name] = stored
	a.notifyLocked(Event{Type: Added, Object: stored.DeepCopy()})
	a.mu.Unlock()
	// Reflect the server-assigned fields back to the caller's copy.
	obj.Meta().ResourceVersion = stored.Meta().ResourceVersion
	obj.Meta().CreatedAt = stored.Meta().CreatedAt
	return nil
}

// ErrConflict is returned by Update when the caller's copy is stale
// (optimistic concurrency, as in the real API server).
var ErrConflict = errors.New("kube: resource version conflict")

// Update replaces an existing object. It fails with ErrConflict when the
// stored object changed since the caller read it.
func (a *API) Update(obj Object) error {
	a.requestLatency()
	a.mu.Lock()
	defer a.mu.Unlock()
	kind := obj.Kind()
	name := obj.Meta().Name
	stored, ok := a.objects[kind][name]
	if !ok {
		return fmt.Errorf("kube: %s %q not found", kind, name)
	}
	if obj.Meta().ResourceVersion != stored.Meta().ResourceVersion {
		return fmt.Errorf("kube: update of %s %q: %w", kind, name, ErrConflict)
	}
	a.rv++
	stored = obj.DeepCopy()
	stored.Meta().ResourceVersion = a.rv
	a.objects[kind][name] = stored
	a.notifyLocked(Event{Type: Modified, Object: stored.DeepCopy()})
	obj.Meta().ResourceVersion = a.rv
	return nil
}

// Mutate applies fn to the live object and writes it back, retrying on
// ErrConflict. fn returns false to skip the write. Mutate returns false
// if the object does not exist.
func (a *API) Mutate(kind, name string, fn func(Object) bool) (bool, error) {
	for {
		obj, ok := a.Get(kind, name)
		if !ok {
			return false, nil
		}
		if !fn(obj) {
			return true, nil
		}
		err := a.Update(obj)
		if err == nil {
			return true, nil
		}
		if !errors.Is(err, ErrConflict) {
			return true, err
		}
	}
}

// Get returns a deep copy of the named object.
func (a *API) Get(kind, name string) (Object, bool) {
	a.requestLatency()
	a.mu.Lock()
	defer a.mu.Unlock()
	obj, ok := a.objects[kind][name]
	if !ok {
		return nil, false
	}
	return obj.DeepCopy(), true
}

// List returns deep copies of all objects of kind whose labels match
// selector (nil selector matches all), sorted by name.
func (a *API) List(kind string, selector map[string]string) []Object {
	a.requestLatency()
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Object
	for _, obj := range a.objects[kind] {
		if selector == nil || matchesSelector(obj.Meta().Labels, selector) {
			out = append(out, obj.DeepCopy())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta().Name < out[j].Meta().Name })
	return out
}

// Delete removes the named object.
func (a *API) Delete(kind, name string) error {
	a.requestLatency()
	a.mu.Lock()
	defer a.mu.Unlock()
	obj, ok := a.objects[kind][name]
	if !ok {
		return fmt.Errorf("kube: %s %q not found", kind, name)
	}
	delete(a.objects[kind], name)
	a.rv++
	a.notifyLocked(Event{Type: Deleted, Object: obj.DeepCopy()})
	return nil
}

// Watch subscribes to kind. The current objects are replayed as Added
// events (the informer list+watch pattern), then live events follow.
func (a *API) Watch(kind string) *Watch {
	w := &Watch{api: a, kind: kind, events: vclock.NewMailbox[Event](a.clk)}
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.objects[kind]))
	for name := range a.objects[kind] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ev := Event{Type: Added, Object: a.objects[kind][name].DeepCopy()}
		a.deliverLocked(w, ev)
	}
	a.watchers[kind] = append(a.watchers[kind], w)
	return w
}

// notifyLocked fans an event out to all subscribers of its kind.
func (a *API) notifyLocked(ev Event) {
	for _, w := range a.watchers[ev.Object.Kind()] {
		a.deliverLocked(w, ev)
	}
}

// deliverLocked schedules delayed delivery of one event, preserving
// per-watcher ordering because all deliveries use the same latency and
// the clock fires same-instant events FIFO.
func (a *API) deliverLocked(w *Watch, ev Event) {
	a.clk.AfterFunc(a.timing.WatchLatency, func() {
		defer func() {
			// The watcher may race Stop with an in-flight delivery;
			// sending to a closed mailbox is acceptable to drop.
			recover()
		}()
		w.events.Send(ev)
	})
}
