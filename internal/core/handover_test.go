package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// handoverRig wires TWO gNB switches to one controller: clusters and
// the controller hang off gnb1, gnb2 reaches everything over a trunk.
// Handover tests move a (virtual) client between the two.
type handoverRig struct {
	ctrl       *Controller
	gnb1, gnb2 *openflow.Switch
	svc        *Service
}

// start=false leaves the controller's event loops (packet-in, switch
// watchers) off: handover and reconciliation are direct calls, so tests
// that need a deterministic mid-handover switch restart can keep the
// restart watcher from racing the handover's own bundle exchanges.
func newHandoverRig(t *testing.T, clk vclock.Clock, start bool, mut func(*Config), stubs ...*stubCluster) *handoverRig {
	t.Helper()
	n := netem.NewNetwork(clk, 1)
	gnb1 := openflow.NewSwitch(n, "gnb1", len(stubs)+2)
	gnb2 := openflow.NewSwitch(n, "gnb2", 1)
	for i, st := range stubs {
		host := n.NewHost(st.name, netem.ParseIP(fmt.Sprintf("10.0.%d.2", i)))
		n.Connect(host.NIC(), gnb1.Port(i+1), netem.LinkConfig{Latency: 200 * time.Microsecond})
		gnb1.AddRoute(host.IP(), i+1)
		st.clk = clk
		st.host = host
		st.port = 20000
	}
	ctrlHost := n.NewHost("ctrl", netem.ParseIP("10.0.254.1"))
	ctrlPort := len(stubs) + 1
	n.Connect(ctrlHost.NIC(), gnb1.Port(ctrlPort), netem.LinkConfig{Latency: 200 * time.Microsecond})
	gnb1.AddRoute(ctrlHost.IP(), ctrlPort)
	trunkPort := len(stubs) + 2
	n.Connect(gnb1.Port(trunkPort), gnb2.Port(1), netem.LinkConfig{Latency: 2 * time.Millisecond})
	gnb2.SetDefaultRoute(1)

	clusters := make([]cluster.Cluster, len(stubs))
	for i, st := range stubs {
		clusters[i] = st
	}
	cfg := Config{
		Host:          ctrlHost,
		Switch:        gnb1,
		ExtraSwitches: []*openflow.Switch{gnb2},
		Clusters:      clusters,
		ProbeInterval: 10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	ctrl, err := New(clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		ctrl.Start()
	}
	svc, err := ctrl.RegisterService(netem.ParseHostPort("203.0.113.1:80"), leanNginx)
	if err != nil {
		t.Fatal(err)
	}
	return &handoverRig{ctrl: ctrl, gnb1: gnb1, gnb2: gnb2, svc: svc}
}

// attach puts a client behind gnb1 with a served, memorized flow — the
// state an ordinary dispatched request leaves behind.
func (rig *handoverRig) attach(client netem.IP, inst cluster.Instance) {
	rig.ctrl.fm.Remember(client, rig.svc.Addr, rig.svc.Name, inst)
	rig.ctrl.clients.track(client, ClientLocation{
		Switch: rig.gnb1.DeviceName(), InPort: 9, LastSeen: rig.ctrl.clk.Now(),
	})
	rig.ctrl.installRedirect(rig.gnb1, client, rig.svc, inst)
}

// redirectCount counts per-client rewrite rules on a switch.
func redirectCount(sw *openflow.Switch) int {
	n := 0
	for _, f := range sw.FlowTable() {
		if f.Priority == redirectPriority {
			n++
		}
	}
	return n
}

func TestHandoverMakeBeforeBreak(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}}
		rig := newHandoverRig(t, clk, true, nil, near)
		inst, err := rig.ctrl.PreDeploy(rig.svc.Addr, "near")
		if err != nil {
			t.Fatal(err)
		}
		client := netem.ParseIP("192.168.1.10")
		rig.attach(client, inst)
		if n := redirectCount(rig.gnb1); n != 2 {
			t.Fatalf("gnb1 redirect flows = %d before handover, want 2", n)
		}

		rep := rig.ctrl.Handover(client, rig.gnb2, 3)
		if rep.From != "gnb1" || rep.To != "gnb2" || rep.ReSteered != 1 || rep.ContinuityBreak {
			t.Fatalf("report = %+v", rep)
		}
		if n := redirectCount(rig.gnb2); n != 2 {
			t.Errorf("gnb2 redirect flows = %d, want 2 (make)", n)
		}
		if n := redirectCount(rig.gnb1); n != 0 {
			t.Errorf("gnb1 redirect flows = %d, want 0 (break)", n)
		}
		if loc, ok := rig.ctrl.ClientLocation(client); !ok || loc.Switch != "gnb2" || loc.InPort != 3 {
			t.Errorf("client location = %+v, %v, want gnb2 port 3", loc, ok)
		}
		s := rig.ctrl.Stats()
		if s.Handovers != 1 || s.ReSteeredFlows != 1 || s.ContinuityBreaks != 0 {
			t.Errorf("Stats = Handovers %d ReSteered %d Breaks %d, want 1/1/0",
				s.Handovers, s.ReSteeredFlows, s.ContinuityBreaks)
		}
		if c := rig.ctrl.HandoverLatency().Count(); c != 1 {
			t.Errorf("HandoverLatency samples = %d, want 1", c)
		}
		// The controller's desired state agrees with both switches: the
		// handover left no orphans and no missing flows anywhere.
		if d := rig.ctrl.AuditDiff(rig.gnb1); d != 0 {
			t.Errorf("AuditDiff(gnb1) = %d, want 0", d)
		}
		if d := rig.ctrl.AuditDiff(rig.gnb2); d != 0 {
			t.Errorf("AuditDiff(gnb2) = %d, want 0", d)
		}

		// Same-switch handover is a no-op that only refreshes the port.
		rep = rig.ctrl.Handover(client, rig.gnb2, 5)
		if rep.ReSteered != 0 || rig.ctrl.Stats().Handovers != 1 {
			t.Errorf("same-switch handover counted: %+v", rep)
		}
		if loc, _ := rig.ctrl.ClientLocation(client); loc.InPort != 5 {
			t.Errorf("in-port not refreshed: %+v", loc)
		}
	})
}

// TestHandoverMidRestartReconciles is the orphan-flow coverage: the old
// switch restarts (wiping its table) just before the break step runs.
// The strict-delete finds nothing, which is counted as exactly one
// continuity break, and reconciliation afterwards converges AuditDiff
// to zero on both switches without counting a second break. The rig's
// event loops stay off so the restart watcher cannot heal the table
// between the restart and the break (outside tests that race is
// welcome; here the empty-table case must happen deterministically).
func TestHandoverMidRestartReconciles(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}}
		rig := newHandoverRig(t, clk, false, nil, near)
		inst, err := rig.ctrl.PreDeploy(rig.svc.Addr, "near")
		if err != nil {
			t.Fatal(err)
		}
		client := netem.ParseIP("192.168.1.10")
		rig.attach(client, inst)

		// The switch dies mid-handover: its table is empty when the
		// handover's break step strict-deletes.
		rig.gnb1.Restart()
		rep := rig.ctrl.Handover(client, rig.gnb2, 3)
		if !rep.ContinuityBreak {
			t.Fatal("restart-wiped delete not reported as a continuity break")
		}
		if s := rig.ctrl.Stats(); s.ContinuityBreaks != 1 {
			t.Fatalf("ContinuityBreaks = %d, want 1", s.ContinuityBreaks)
		}

		// Reconcile and audit: both switches must match desired state
		// exactly — the lost punt rules come back, no orphans remain.
		rig.ctrl.ResyncNow()
		if d := rig.ctrl.AuditDiff(rig.gnb1); d != 0 {
			t.Errorf("AuditDiff(gnb1) = %d after resync, want 0", d)
		}
		if d := rig.ctrl.AuditDiff(rig.gnb2); d != 0 {
			t.Errorf("AuditDiff(gnb2) = %d after resync, want 0", d)
		}

		// Moving back deletes the (present) flows on gnb2: reconciliation
		// and the return trip must not double-count the break.
		rep = rig.ctrl.Handover(client, rig.gnb1, 9)
		if rep.ContinuityBreak {
			t.Error("return handover reported a break against a healthy switch")
		}
		if s := rig.ctrl.Stats(); s.Handovers != 2 || s.ContinuityBreaks != 1 {
			t.Errorf("Handovers=%d ContinuityBreaks=%d, want 2/1", s.Handovers, s.ContinuityBreaks)
		}
	})
}

// TestHandoverMigratesService: with MigrateOnHandover, a handover into
// a zone whose optimal edge differs deploys the service there in the
// background — and a handover back does not re-migrate (the old zone's
// edge still runs it).
func TestHandoverMigratesService(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		edgeA := &stubCluster{name: "edge-a", loc: cluster.Location{Latency: time.Millisecond}}
		edgeB := &stubCluster{name: "edge-b", loc: cluster.Location{Latency: 10 * time.Millisecond}}
		rig := newHandoverRig(t, clk, true, func(cfg *Config) {
			cfg.MigrateOnHandover = true
			// Seen from gnb2 the proximity order flips: edge-b is local.
			cfg.ZoneLatency = map[string]map[string]time.Duration{
				"gnb2": {"edge-a": 10 * time.Millisecond, "edge-b": time.Millisecond},
			}
			cfg.CandidateTTL = -1 // no stale snapshots across handovers
		}, edgeA, edgeB)
		inst, err := rig.ctrl.PreDeploy(rig.svc.Addr, "edge-a")
		if err != nil {
			t.Fatal(err)
		}
		client := netem.ParseIP("192.168.1.10")
		rig.attach(client, inst)

		rep := rig.ctrl.Handover(client, rig.gnb2, 3)
		if rep.Migrated != 1 {
			t.Fatalf("Migrated = %d, want 1", rep.Migrated)
		}
		clk.Sleep(5 * time.Second) // background deploy completes
		if len(edgeB.Instances(rig.svc.Name)) != 1 {
			t.Error("service did not come up at edge-b")
		}
		// The session's flows still point at the OLD instance: migration
		// must not cut over live sessions.
		if got, ok := rig.ctrl.fm.Lookup(client, rig.svc.Addr); !ok || got != inst {
			t.Errorf("memorized instance = %+v, %v — migration touched a live session", got, ok)
		}
		if s := rig.ctrl.Stats(); s.MigratedInstances != 1 {
			t.Errorf("MigratedInstances = %d, want 1", s.MigratedInstances)
		}

		// Back to gnb1: edge-a still runs the service, nothing to migrate.
		rep = rig.ctrl.Handover(client, rig.gnb1, 9)
		if rep.Migrated != 0 {
			t.Errorf("return handover migrated %d, want 0", rep.Migrated)
		}
		if s := rig.ctrl.Stats(); s.MigratedInstances != 1 {
			t.Errorf("MigratedInstances = %d after return, want 1", s.MigratedInstances)
		}
	})
}
