package core

import (
	"fmt"
	"sort"

	"github.com/c3lab/transparentedge/internal/openflow"
)

// This file implements the controller's anti-entropy reconciliation:
// the switch's flow table is treated as a cache of the controller's
// desired state (punt rules for every registered service, redirect
// pairs for every memorized flow whose client sits behind the switch),
// and a periodic audit repairs divergence in both directions. Lost
// flow-mods leave the switch missing rules the controller believes in
// — the audit re-installs them. Lost FlowRemoved messages (or explicit
// forgets that raced a fault window) leave the switch holding rules no
// memory justifies — the audit deletes the orphans. Switch restarts
// wipe the whole table at once — the event watcher rebuilds it with
// one reliable ResyncFrom instead of per-rule repair.
//
// Detection rides the fallible channel (the flow-stats snapshot), but
// the repairs themselves go down as one barriered ApplyBundle — the
// OpenFlow BUNDLE commit idiom — so a repair never itself needs
// repairing and repair traffic does not perturb the per-message loss
// streams of the fault model. Convergence therefore needs only that
// the fault window ends: after the last fault, one audit makes the
// table equal to the desired state.

// flowIdent identifies one desired or installed flow for set
// comparison: priority, match, and the rendered action list. Timeouts
// and cookies are derived from the same spec constructors on both
// sides, so they never diverge independently.
func flowIdent(spec openflow.FlowSpec) string {
	return fmt.Sprintf("%d|%s|%v", spec.Priority, spec.Match, spec.Actions)
}

// desiredFlows computes the complete flow table switch sw should hold,
// in deterministic order: punt rules for every registered service
// (cookie order), then redirect pairs for every memorized flow whose
// client last entered through sw (flow-key order). With the FlowMemory
// disabled, redirects are not derivable and only punt rules are
// reconciled.
func (c *Controller) desiredFlows(sw *openflow.Switch) []openflow.FlowSpec {
	tables := c.svc.Load()
	svcs := make([]*Service, 0, len(tables.byCookie))
	for _, svc := range tables.byCookie {
		svcs = append(svcs, svc)
	}
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].cookie < svcs[j].cookie })
	specs := make([]openflow.FlowSpec, 0, len(svcs))
	for _, svc := range svcs {
		specs = append(specs, openflow.FlowSpec{
			Priority: puntPriority,
			Match:    openflow.Match{DstIP: svc.Addr.IP, DstPort: svc.Addr.Port},
			Actions:  []openflow.Action{openflow.OutputController{}},
			Cookie:   svc.cookie,
		})
	}
	if c.cfg.DisableFlowMemory {
		return specs
	}
	entries := c.fm.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Client != entries[j].Client {
			return entries[i].Client < entries[j].Client
		}
		if entries[i].Service.IP != entries[j].Service.IP {
			return entries[i].Service.IP < entries[j].Service.IP
		}
		return entries[i].Service.Port < entries[j].Service.Port
	})
	swName := sw.DeviceName()
	for _, e := range entries {
		loc, ok := c.clients.location(e.Client)
		if !ok || loc.Switch != swName {
			continue
		}
		svc, ok := tables.services[e.Service]
		if !ok {
			continue
		}
		specs = append(specs, c.redirectSpecs(e.Client, svc, e.Instance)...)
	}
	return specs
}

// auditSwitch runs one reconciliation pass against sw: orphans are
// deleted first (this also clears stale-action entries for a match the
// memory now maps elsewhere), then missing rules are re-installed.
//
// The live table is snapshotted before the desired state. Any flow
// installed concurrently between the two snapshots therefore shows up
// in desired but not in the snapshot and is installed a second time —
// a benign duplicate (identical match, priority, and actions) that
// classification treats as one rule — never as a false orphan: a
// flow's memory entry exists before the flow is installed, so every
// flow in the early snapshot has its justification visible to the late
// snapshot, and everything the audit deletes is genuinely unjustified.
func (c *Controller) auditSwitch(sw *openflow.Switch) {
	c.stats.resyncRuns.Add(1)
	actual := sw.FlowTable()
	desired := c.desiredFlows(sw)
	have := make(map[string]struct{}, len(actual))
	for _, spec := range actual {
		have[flowIdent(spec)] = struct{}{}
	}
	want := make(map[string]struct{}, len(desired))
	for _, spec := range desired {
		want[flowIdent(spec)] = struct{}{}
	}
	var deletes, installs []openflow.FlowSpec
	for _, spec := range actual {
		if _, ok := want[flowIdent(spec)]; ok {
			continue
		}
		if c.cfg.DisableFlowMemory && spec.Priority != puntPriority {
			// Redirects are not derivable without the memory: leave them
			// to their idle timeouts.
			continue
		}
		deletes = append(deletes, spec)
	}
	for _, spec := range desired {
		if _, ok := have[flowIdent(spec)]; ok {
			continue
		}
		installs = append(installs, spec)
	}
	if len(deletes) == 0 && len(installs) == 0 {
		return
	}
	deleted := sw.ApplyBundle(deletes, installs)
	c.stats.orphanFlows.Add(int64(deleted))
	c.stats.reinstalledFlows.Add(int64(len(installs)))
}

// AuditDiff reports how many flows differ between sw's live table and
// the controller's desired state — the symmetric set difference, with
// identical duplicates collapsing — without repairing anything. Tests
// use it to assert post-chaos convergence.
func (c *Controller) AuditDiff(sw *openflow.Switch) int {
	actual := sw.FlowTable()
	desired := c.desiredFlows(sw)
	have := make(map[string]struct{}, len(actual))
	for _, spec := range actual {
		have[flowIdent(spec)] = struct{}{}
	}
	want := make(map[string]struct{}, len(desired))
	for _, spec := range desired {
		want[flowIdent(spec)] = struct{}{}
	}
	diff := 0
	for id := range have {
		if _, ok := want[id]; !ok {
			diff++
		}
	}
	for id := range want {
		if _, ok := have[id]; !ok {
			diff++
		}
	}
	return diff
}

// ResyncNow audits every managed switch once, immediately.
func (c *Controller) ResyncNow() {
	for _, sw := range c.switches {
		c.auditSwitch(sw)
	}
}

// resyncLoop is the periodic anti-entropy driver.
func (c *Controller) resyncLoop() {
	for {
		c.clk.Sleep(c.cfg.ResyncInterval)
		c.ResyncNow()
	}
}

// watchSwitch reacts to switch lifecycle events: a restart wiped the
// flow table, so the whole desired state is pushed back in one
// reliable resync instead of waiting for per-rule audits.
func (c *Controller) watchSwitch(sw *openflow.Switch) {
	events := sw.Events()
	for {
		ev, ok := events.Recv()
		if !ok {
			return
		}
		if ev.Restarted {
			c.resyncFromScratch(sw)
		}
	}
}

// resyncFromScratch rebuilds a restarted switch's entire table.
func (c *Controller) resyncFromScratch(sw *openflow.Switch) {
	c.stats.resyncRuns.Add(1)
	specs := c.desiredFlows(sw)
	sw.ResyncFrom(specs)
	c.stats.reinstalledFlows.Add(int64(len(specs)))
}
