package core

import (
	"sort"

	"github.com/c3lab/transparentedge/internal/cluster"
)

// healthProbeLoop periodically re-checks every instance the FlowMemory
// references. Installed redirect flows outlive the instance behind
// them: if a container crashes or is scaled down externally, clients
// with warm switch flows or FlowMemory entries keep being rewritten
// toward a dead port. The prober evicts such instances from the memory
// and drops their deployment records so the very next packet-in goes
// through the full dispatch pipeline and redeploys.
func (c *Controller) healthProbeLoop() {
	for {
		c.clk.Sleep(c.cfg.HealthProbeInterval)
		c.healthProbe()
	}
}

// healthProbe runs one probing round.
func (c *Controller) healthProbe() {
	entries := c.fm.Entries()
	if len(entries) == 0 {
		return
	}
	// Probe each distinct instance once, in a stable order.
	byInst := make(map[cluster.Instance][]Entry)
	for _, e := range entries {
		if e.Instance.Cluster == "origin" || e.Instance.Addr == e.Service {
			continue // the cloud origin is not ours to health-check
		}
		byInst[e.Instance] = append(byInst[e.Instance], e)
	}
	insts := make([]cluster.Instance, 0, len(byInst))
	for inst := range byInst {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool {
		if insts[i].Cluster != insts[j].Cluster {
			return insts[i].Cluster < insts[j].Cluster
		}
		return insts[i].Addr.String() < insts[j].Addr.String()
	})
	for _, inst := range insts {
		if c.probePort(inst.Addr) {
			continue
		}
		c.stats.healthEvictions.Add(1)
		for _, e := range byInst[inst] {
			c.fm.Forget(e.Client, e.Service)
		}
		// Drop the deployment record: the cached result points at a dead
		// instance, and keeping it would blackhole the redeploy path.
		svcName := byInst[inst][0].SvcName
		c.mu.Lock()
		delete(c.deployments, deployKey{service: svcName, cluster: inst.Cluster})
		c.mu.Unlock()
		// Cached candidate snapshots may still reflect the dead instance.
		c.cands.bump()
	}
}
