package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestFlowMemoryCountInvariantProperty drives the FlowMemory with random
// operation sequences and checks its per-service counters against a
// reference model after every step.
func TestFlowMemoryCountInvariantProperty(t *testing.T) {
	type op struct {
		Kind    uint8 // remember / forget / forgetService / touch / sleep
		Client  uint8
		Service uint8
	}
	f := func(ops []op) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			fm := NewFlowMemory(clk, 5*time.Second)
			type key struct {
				client  netem.IP
				service netem.HostPort
			}
			// Reference model without timers: we never sleep past the
			// idle timeout, so expiry cannot fire mid-sequence.
			model := make(map[key]string)
			svcAddr := func(s uint8) netem.HostPort {
				return netem.HostPort{IP: netem.ParseIP("203.0.113.1"), Port: 80 + uint16(s%4)}
			}
			svcName := func(s uint8) string { return "svc-" + string(rune('a'+s%4)) }
			clientIP := func(c uint8) netem.IP { return netem.ParseIP("192.168.1.1") + netem.IP(c%6) }
			inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000")}

			for _, o := range ops {
				k := key{client: clientIP(o.Client), service: svcAddr(o.Service)}
				switch o.Kind % 5 {
				case 0:
					fm.Remember(k.client, k.service, svcName(o.Service), inst)
					model[k] = svcName(o.Service)
				case 1:
					fm.Forget(k.client, k.service)
					delete(model, k)
				case 2:
					name := svcName(o.Service)
					fm.ForgetService(name, cluster.Instance{Addr: netem.ParseHostPort("9.9.9.9:9")})
					for mk, mv := range model {
						if mv == name {
							delete(model, mk)
						}
					}
				case 3:
					fm.Touch(k.client, k.service)
				case 4:
					clk.Sleep(100 * time.Millisecond)
				}
				if fm.Len() != len(model) {
					ok = false
					return
				}
				counts := map[string]int{}
				for _, name := range model {
					counts[name]++
				}
				for name, want := range counts {
					if fm.ServiceFlows(name) != want {
						ok = false
						return
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFlowMemoryIdleHookFiresExactlyOnceProperty: regardless of how many
// entries a service accumulates, its idle hook fires exactly once after
// all of them expire together.
func TestFlowMemoryIdleHookFiresExactlyOnceProperty(t *testing.T) {
	f := func(nClients uint8) bool {
		n := int(nClients%10) + 1
		clk := vclock.New()
		fired := 0
		clk.Run(func() {
			fm := NewFlowMemory(clk, time.Second)
			fm.OnServiceIdle = func(string) { fired++ }
			svc := netem.ParseHostPort("203.0.113.1:80")
			inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000")}
			for i := 0; i < n; i++ {
				fm.Remember(netem.ParseIP("192.168.1.1")+netem.IP(i), svc, "svc", inst)
			}
			clk.Sleep(10 * time.Second)
		})
		return fired == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
