package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// stubCluster is a controllable edge cluster for resilience tests: a
// configurable number of upcoming Pull/Create/ScaleUp calls fail, pulls
// can be slowed down, and ScaleUp opens a real listener on the stub's
// host so the controller's port probing works end to end.
type stubCluster struct {
	clk  vclock.Clock
	name string
	loc  cluster.Location
	host *netem.Host
	port uint16

	mu          sync.Mutex
	failPulls   int
	failCreates int
	failScales  int
	pullDelay   time.Duration
	neverReady  bool // ScaleUp succeeds but no port ever opens
	pullCalls   int
	createCalls int
	scaleCalls  int
	pulled      bool
	created     bool
	listener    *netem.Listener
	insts       []cluster.Instance
}

func (s *stubCluster) Name() string                    { return s.name }
func (s *stubCluster) Kind() cluster.Kind              { return cluster.Docker }
func (s *stubCluster) Location() cluster.Location      { return s.loc }
func (s *stubCluster) CanHost(cluster.Spec) bool       { return true }
func (s *stubCluster) DeleteImages(cluster.Spec) error { return nil }

func (s *stubCluster) HasImages(cluster.Spec) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pulled
}

func (s *stubCluster) Pull(cluster.Spec) error {
	s.mu.Lock()
	delay := s.pullDelay
	s.mu.Unlock()
	if delay > 0 {
		s.clk.Sleep(delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pullCalls++
	if s.failPulls > 0 {
		s.failPulls--
		return fmt.Errorf("stub %s: pull failed", s.name)
	}
	s.pulled = true
	return nil
}

func (s *stubCluster) Created(string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created
}

func (s *stubCluster) Create(cluster.Spec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.createCalls++
	if s.failCreates > 0 {
		s.failCreates--
		return fmt.Errorf("stub %s: create failed", s.name)
	}
	s.created = true
	return nil
}

func (s *stubCluster) ScaleUp(string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scaleCalls++
	if s.failScales > 0 {
		s.failScales--
		return fmt.Errorf("stub %s: scale-up failed", s.name)
	}
	if s.neverReady {
		return nil
	}
	if s.listener == nil {
		ln, err := s.host.Listen(s.port)
		if err != nil {
			return err
		}
		s.listener = ln
	}
	s.insts = []cluster.Instance{{Addr: s.host.Addr(s.port), Cluster: s.name}}
	return nil
}

func (s *stubCluster) ScaleDown(string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopLocked()
	return nil
}

func (s *stubCluster) Remove(string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopLocked()
	s.created = false
	return nil
}

func (s *stubCluster) stopLocked() {
	if s.listener != nil {
		s.listener.Close()
		s.listener = nil
	}
	s.insts = nil
}

// kill simulates the instance dying behind the controller's back
// (container crash / external scale-down).
func (s *stubCluster) kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stopLocked()
}

func (s *stubCluster) Instances(string) []cluster.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]cluster.Instance(nil), s.insts...)
}

func (s *stubCluster) calls() (pulls, creates, scales int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pullCalls, s.createCalls, s.scaleCalls
}

// resilienceRig wires stub clusters, a switch, and a controller into a
// minimal emulated network where port probing is real.
type resilienceRig struct {
	ctrl *Controller
	sw   *openflow.Switch
	svc  *Service
}

func newResilienceRig(t *testing.T, clk vclock.Clock, mut func(*Config), stubs ...*stubCluster) *resilienceRig {
	t.Helper()
	n := netem.NewNetwork(clk, 1)
	sw := openflow.NewSwitch(n, "ovs", len(stubs)+2)
	for i, st := range stubs {
		host := n.NewHost(st.name, netem.ParseIP(fmt.Sprintf("10.0.%d.2", i)))
		n.Connect(host.NIC(), sw.Port(i+1), netem.LinkConfig{Latency: 200 * time.Microsecond})
		sw.AddRoute(host.IP(), i+1)
		st.clk = clk
		st.host = host
		st.port = 20000
	}
	ctrlHost := n.NewHost("ctrl", netem.ParseIP("10.0.254.1"))
	ctrlPort := len(stubs) + 1
	n.Connect(ctrlHost.NIC(), sw.Port(ctrlPort), netem.LinkConfig{Latency: 200 * time.Microsecond})
	sw.AddRoute(ctrlHost.IP(), ctrlPort)

	clusters := make([]cluster.Cluster, len(stubs))
	for i, st := range stubs {
		clusters[i] = st
	}
	cfg := Config{
		Host:          ctrlHost,
		Switch:        sw,
		Clusters:      clusters,
		ProbeInterval: 10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	ctrl, err := New(clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Start()
	svcAddr := netem.ParseHostPort("203.0.113.1:80")
	svc, err := ctrl.RegisterService(svcAddr, leanNginx)
	if err != nil {
		t.Fatal(err)
	}
	return &resilienceRig{ctrl: ctrl, sw: sw, svc: svc}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			failPulls: 1, failScales: 1}
		rig := newResilienceRig(t, clk, nil, near)
		inst, err := rig.ctrl.PreDeploy(rig.svc.Addr, "near")
		if err != nil {
			t.Fatalf("deploy did not recover: %v", err)
		}
		if inst.Cluster != "near" {
			t.Errorf("instance on %s, want near", inst.Cluster)
		}
		pulls, _, scales := near.calls()
		if pulls != 2 || scales != 2 {
			t.Errorf("pulls=%d scales=%d, want 2 each (one failure + one retry)", pulls, scales)
		}
		if s := rig.ctrl.Stats(); s.Retries != 2 || s.DeployFailures != 0 {
			t.Errorf("Stats = %+v, want Retries=2", s)
		}
	})
}

func TestRetryGivesUpAfterMax(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			failPulls: 100}
		rig := newResilienceRig(t, clk, nil, near)
		if _, err := rig.ctrl.PreDeploy(rig.svc.Addr, "near"); err == nil {
			t.Fatal("deploy succeeded against a permanently failing pull")
		}
		pulls, _, _ := near.calls()
		if pulls != 3 { // initial attempt + RetryMax(2) retries
			t.Errorf("pulls = %d, want 3", pulls)
		}
		if s := rig.ctrl.Stats(); s.Retries != 2 {
			t.Errorf("Retries = %d, want 2", s.Retries)
		}
	})
}

func TestFailoverToNextBestCluster(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			failPulls: 100}
		far := &stubCluster{name: "far", loc: cluster.Location{Latency: 8 * time.Millisecond}}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.RetryMax = -1 // isolate failover from retry
		}, near, far)
		inst, ok := rig.ctrl.dispatch(rig.sw, rig.svc, netem.ParseIP("192.168.1.10"))
		if !ok {
			t.Fatal("dispatch fell through to the cloud despite a healthy fallback")
		}
		if inst.Cluster != "far" {
			t.Errorf("served from %s, want failover to far", inst.Cluster)
		}
		s := rig.ctrl.Stats()
		if s.Failovers != 1 || s.DeployFailures != 1 {
			t.Errorf("Stats = %+v, want Failovers=1 DeployFailures=1", s)
		}
	})
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			failPulls: 2}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.RetryMax = -1
			cfg.BreakerThreshold = 2
			cfg.BreakerCooldown = 30 * time.Second
		}, near)
		client := netem.ParseIP("192.168.1.10")

		// Two consecutive failures trip the breaker.
		for i := 0; i < 2; i++ {
			if _, ok := rig.ctrl.dispatch(rig.sw, rig.svc, client); ok {
				t.Fatalf("dispatch %d succeeded, want failure", i)
			}
		}
		if s := rig.ctrl.Stats(); s.BreakerTrips != 1 {
			t.Fatalf("BreakerTrips = %d, want 1", s.BreakerTrips)
		}
		// While open, the cluster is not even a candidate: the request
		// forwards to the cloud without touching the cluster.
		pullsBefore, _, _ := near.calls()
		inst, ok := rig.ctrl.dispatch(rig.sw, rig.svc, client)
		if !ok || inst.Cluster != "origin" {
			t.Fatalf("dispatch during open breaker = %+v, %v; want cloud forward", inst, ok)
		}
		if pulls, _, _ := near.calls(); pulls != pullsBefore {
			t.Error("open breaker still sent traffic to the cluster")
		}
		// After the cooldown the half-open probe succeeds (failures are
		// exhausted) and closes the breaker.
		clk.Sleep(31 * time.Second)
		inst, ok = rig.ctrl.dispatch(rig.sw, rig.svc, client)
		if !ok || inst.Cluster != "near" {
			t.Fatalf("post-cooldown dispatch = %+v, %v; want near", inst, ok)
		}
		if s := rig.ctrl.Stats(); s.BreakerRecoveries != 1 {
			t.Errorf("BreakerRecoveries = %d, want 1", s.BreakerRecoveries)
		}
	})
}

func TestDeployTimeoutCoversAllPhases(t *testing.T) {
	// Regression: DeployTimeout "bounds one on-demand deployment end to
	// end", so a slow pull must eat into the readiness-wait budget
	// instead of resetting it.
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			pullDelay: 30 * time.Second, neverReady: true}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.DeployTimeout = 20 * time.Second
		}, near)
		start := clk.Now()
		_, err := rig.ctrl.PreDeploy(rig.svc.Addr, "near")
		if err == nil {
			t.Fatal("deploy succeeded without a ready instance")
		}
		if !strings.Contains(err.Error(), "not ready within") {
			t.Fatalf("unexpected error: %v", err)
		}
		// The 30 s pull already exceeded the 20 s budget: waitReady must
		// notice immediately instead of waiting its own fresh 20 s.
		if elapsed := clk.Since(start); elapsed > 31*time.Second {
			t.Errorf("deployment held the request for %v; deadline did not cover the pull phase", elapsed)
		}
	})
}

func TestHealthProberEvictsDeadInstance(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.HealthProbeInterval = 5 * time.Second
			cfg.MemoryIdle = time.Hour
		}, near)
		client := netem.ParseIP("192.168.1.10")
		inst, ok := rig.ctrl.dispatch(rig.sw, rig.svc, client)
		if !ok || inst.Cluster != "near" {
			t.Fatalf("dispatch = %+v, %v", inst, ok)
		}
		rig.ctrl.FlowMemory().Remember(client, rig.svc.Addr, rig.svc.Name, inst)

		// Healthy instance: several prober rounds change nothing.
		clk.Sleep(12 * time.Second)
		if s := rig.ctrl.Stats(); s.HealthEvictions != 0 {
			t.Fatalf("healthy instance evicted: %+v", s)
		}

		near.kill()
		clk.Sleep(6 * time.Second)
		if s := rig.ctrl.Stats(); s.HealthEvictions != 1 {
			t.Fatalf("HealthEvictions = %d, want 1", s.HealthEvictions)
		}
		if rig.ctrl.FlowMemory().Len() != 0 {
			t.Error("dead instance still memorized")
		}
		// The deployment record is gone too: the next dispatch redeploys
		// instead of blackholing into the stale cached instance.
		_, _, scalesBefore := near.calls()
		inst, ok = rig.ctrl.dispatch(rig.sw, rig.svc, client)
		if !ok || inst.Cluster != "near" {
			t.Fatalf("redeploy dispatch = %+v, %v", inst, ok)
		}
		if _, _, scales := near.calls(); scales != scalesBefore+1 {
			t.Errorf("scale-ups %d → %d, want a fresh deployment", scalesBefore, scales)
		}
	})
}

func TestScaleDownFailureKeepsDeployment(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &failingScaleDown{}
		near.stubCluster = stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.ScaleDownIdle = true
			cfg.MemoryIdle = 5 * time.Second
		}, &near.stubCluster)
		// Swap the failing wrapper in as the cluster (same underlying stub).
		rig.ctrl.cfg.Clusters = []cluster.Cluster{near}

		client := netem.ParseIP("192.168.1.10")
		inst, ok := rig.ctrl.dispatch(rig.sw, rig.svc, client)
		if !ok {
			t.Fatal("dispatch failed")
		}
		rig.ctrl.FlowMemory().Remember(client, rig.svc.Addr, rig.svc.Name, inst)
		clk.Sleep(10 * time.Second) // idle expiry fires onServiceIdle

		s := rig.ctrl.Stats()
		if s.ScaleDownFailures != 1 || s.ScaleDowns != 0 {
			t.Fatalf("Stats = %+v, want one counted scale-down failure", s)
		}
		// The record survives and is no longer marked scaled down, so
		// controller state matches the still-running instance.
		rig.ctrl.mu.Lock()
		st, exists := rig.ctrl.deployments[deployKey{service: rig.svc.Name, cluster: "near"}]
		rig.ctrl.mu.Unlock()
		if !exists {
			t.Fatal("deployment record dropped despite failed scale-down")
		}
		if st.scaledDown {
			t.Error("deployment still marked scaled down after failure")
		}
	})
}

// failingScaleDown rejects every scale-down request.
type failingScaleDown struct {
	stubCluster
}

func (f *failingScaleDown) ScaleDown(string) error {
	return fmt.Errorf("stub: scale-down rejected")
}

func TestHandleFlowRemovedRefreshesBothRuleDirections(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.MemoryIdle = 10 * time.Second
		}, near)
		client := netem.ParseIP("192.168.1.10")
		inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000"), Cluster: "near"}
		fm := rig.ctrl.FlowMemory()
		fm.Remember(client, rig.svc.Addr, rig.svc.Name, inst)

		// Reverse rule: the instance's flow back to the client expired.
		// The client is in Match.DstIP, not SrcIP.
		clk.Sleep(6 * time.Second)
		rig.ctrl.handleFlowRemoved(openflow.FlowRemoved{
			Match: openflow.Match{
				SrcIP:   inst.Addr.IP,
				SrcPort: inst.Addr.Port,
				DstIP:   client,
			},
			Cookie:      rig.svc.cookie,
			IdleTimeout: true,
		})
		clk.Sleep(6 * time.Second) // 12 s since Remember, 6 s since touch
		if _, ok := fm.Lookup(client, rig.svc.Addr); !ok {
			t.Fatal("reverse-rule removal did not refresh the memorized flow")
		}

		// Forward rule: client in Match.SrcIP.
		clk.Sleep(6 * time.Second)
		rig.ctrl.handleFlowRemoved(openflow.FlowRemoved{
			Match: openflow.Match{
				SrcIP:   client,
				DstIP:   rig.svc.Addr.IP,
				DstPort: rig.svc.Addr.Port,
			},
			Cookie:      rig.svc.cookie,
			IdleTimeout: true,
		})
		clk.Sleep(6 * time.Second)
		if _, ok := fm.Lookup(client, rig.svc.Addr); !ok {
			t.Fatal("forward-rule removal did not refresh the memorized flow")
		}
		if s := rig.ctrl.Stats(); s.FlowRemovedMsgs != 2 {
			t.Errorf("FlowRemovedMsgs = %d, want 2", s.FlowRemovedMsgs)
		}
		// Hard-timeout removals do not refresh.
		clk.Sleep(6 * time.Second)
		rig.ctrl.handleFlowRemoved(openflow.FlowRemoved{
			Match:       openflow.Match{SrcIP: client, DstIP: rig.svc.Addr.IP, DstPort: rig.svc.Addr.Port},
			Cookie:      rig.svc.cookie,
			IdleTimeout: false,
		})
		clk.Sleep(6 * time.Second)
		if _, ok := fm.Lookup(client, rig.svc.Addr); ok {
			t.Error("hard-timeout removal kept the flow alive")
		}
	})
}

func TestPendingDedupUnderConcurrentPacketIns(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			pullDelay: 2 * time.Second}
		rig := newResilienceRig(t, clk, nil, near)
		client := netem.ParseHostPort("192.168.1.10:43000")

		// Two SYNs of the same flow arrive while the deployment holds the
		// first: the retransmission must not dispatch a second time.
		mkPin := func() openflow.PacketIn {
			return openflow.PacketIn{
				Pkt:    &netem.Packet{Src: client, Dst: rig.svc.Addr, Flags: netem.FlagSYN},
				InPort: 1,
			}
		}
		var g vclock.Group
		g.Go(clk, func() { rig.ctrl.handlePacketIn(rig.sw, mkPin()) })
		g.Go(clk, func() {
			clk.Sleep(500 * time.Millisecond) // mid-deployment retransmission
			rig.ctrl.handlePacketIn(rig.sw, mkPin())
		})
		g.Wait(clk)

		s := rig.ctrl.Stats()
		if s.PacketIns != 2 {
			t.Errorf("PacketIns = %d, want 2", s.PacketIns)
		}
		if s.ScheduleCalls != 1 {
			t.Errorf("ScheduleCalls = %d, want 1 (dedup)", s.ScheduleCalls)
		}
		if _, _, scales := near.calls(); scales != 1 {
			t.Errorf("scale-ups = %d, want 1", scales)
		}
	})
}
