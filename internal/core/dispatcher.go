package core

import (
	"fmt"
	"strconv"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// handlePacketIn is the dispatching algorithm of Fig. 7: flow memory
// first, then candidate gathering, the Global Scheduler's FAST/BEST
// decision, on-demand deployment of whichever choices need it, flow
// installation, and finally the release of the held packet. sw is the
// ingress switch the packet entered through.
//
// The prologue is deliberately lock-light: the packet-in count is one
// atomic add, the service lookup reads an immutable snapshot, and
// client tracking plus SYN-retransmit dedup share a single shard lock
// (trackAndClaim) — so the memorized-flow fast path takes at most one
// shard lock besides the FlowMemory's own.
func (c *Controller) handlePacketIn(sw *openflow.Switch, pin openflow.PacketIn) {
	// The switch cloned the punted packet for the controller; release it
	// exactly once when handling completes. Every exit path is covered:
	// PacketOut clones synchronously before returning, so nothing
	// retains pin.Pkt past this frame.
	defer pin.Pkt.Release()
	c.stats.packetIns.Add(1)
	svc, ok := c.ServiceByAddr(pin.Pkt.Dst)
	if !ok {
		// Not a registered service: behave like a plain switch.
		sw.PacketOut(pin.Pkt, pin.InPort, []openflow.Action{openflow.OutputNormal{}})
		return
	}
	client := pin.Pkt.Src.IP
	key := flowKey{client: client, service: svc.Addr}

	// Track the client's ingress location and deduplicate concurrent
	// packet-ins (e.g. SYN retransmissions while a deployment holds the
	// first request) in one shard critical section.
	if c.clients.trackAndClaim(key, ClientLocation{
		Switch:   sw.DeviceName(),
		InPort:   pin.InPort,
		LastSeen: c.clk.Now(),
	}) {
		return // a packet-in for this flow is already being handled
	}
	defer c.clients.release(key)

	// Fast path: memorized flow — reinstall without calling the
	// Scheduler.
	if !c.cfg.DisableFlowMemory {
		if inst, ok := c.fm.Lookup(client, svc.Addr); ok {
			c.stats.memoryHits.Add(1)
			c.installRedirect(sw, client, svc, inst)
			sw.PacketOut(pin.Pkt, pin.InPort, nil)
			return
		}
	}

	inst, ok := c.dispatchBounded(sw, svc, client)
	if !ok {
		// Deployment failed everywhere: let the cloud origin serve.
		c.stats.degradedToCloud.Add(1)
		inst = cluster.Instance{Addr: svc.Addr, Cluster: "origin"}
	}
	if !c.cfg.DisableFlowMemory {
		c.fm.Remember(client, svc.Addr, svc.Name, inst)
	}
	c.installRedirect(sw, client, svc, inst)
	sw.PacketOut(pin.Pkt, pin.InPort, nil)
}

// dispatchBounded runs dispatch, bounding the time the held packet may
// wait when HoldTimeout is set. On timeout the request degrades to the
// cloud origin — the client gets an answer instead of an indefinitely
// held packet during a partition — while the dispatch keeps running in
// the background; once it lands on an edge instance, the degraded
// memory entry is dropped so the next packet-in re-dispatches there.
func (c *Controller) dispatchBounded(sw *openflow.Switch, svc *Service, client netem.IP) (cluster.Instance, bool) {
	if c.cfg.HoldTimeout <= 0 {
		return c.dispatch(sw, svc, client)
	}
	var inst cluster.Instance
	var ok bool
	done := vclock.NewGate()
	c.clk.Go(func() {
		inst, ok = c.dispatch(sw, svc, client)
		done.Open()
	})
	if done.WaitTimeout(c.clk, c.cfg.HoldTimeout) {
		return inst, ok
	}
	c.stats.degradedToCloud.Add(1)
	c.clk.Go(func() {
		done.Wait(c.clk)
		if ok && inst.Addr != svc.Addr {
			c.fm.Forget(client, svc.Addr)
		}
	})
	return cluster.Instance{Addr: svc.Addr, Cluster: "origin"}, true
}

// dispatch gathers candidates, consults the Global Scheduler, and
// performs whatever deployments the FAST/BEST decision requires. It
// returns the instance that serves the current request. Proximity is
// evaluated from the client's ingress zone (the switch the packet
// entered through), so clients behind different gNBs get different
// optimal edges.
//
// Candidate gathering is memoized per (service, zone) for a short TTL:
// under a packet-in storm the cluster answers are identical, so one
// snapshot serves every miss in the window instead of four virtual
// calls per cluster per request. Any deployment, scale-down, breaker
// transition, health eviction, or registration invalidates the cache.
func (c *Controller) dispatch(sw *openflow.Switch, svc *Service, client netem.IP) (cluster.Instance, bool) {
	c.stats.scheduleCalls.Add(1)
	candidates := c.candidatesFor(svc, sw.DeviceName())
	decision := c.sched.Schedule(svc, client, candidates)

	// BEST ≠ FAST: deploy the optimal edge in the background and switch
	// future requests over once it is running (Fig. 3).
	if decision.Best != nil && decision.Best != decision.Fast {
		c.stats.deploysNoWait.Add(1)
		best := decision.Best
		c.clk.Go(func() {
			inst, err := c.deploy(svc, best)
			if err != nil {
				c.stats.deployFailures.Add(1)
				return
			}
			// Future requests go to the optimal location: drop stale
			// memory so the next packet-in re-schedules. Active switch
			// flows drain via their (low) idle timeout.
			c.fm.ForgetService(svc.Name, inst)
		})
	}

	switch {
	case decision.FastInstance != nil:
		return *decision.FastInstance, true
	case decision.Fast != nil:
		// On-demand deployment with waiting: the client's request stays
		// on hold until the new instance answers its port.
		c.stats.deploysWaiting.Add(1)
		inst, err := c.deploy(svc, decision.Fast)
		if err == nil {
			return inst, true
		}
		c.stats.deployFailures.Add(1)
		// The FAST choice failed even after per-phase retries: fail over
		// to the next-best candidates from the scheduler's ranked list
		// before surrendering to the cloud.
		for _, fb := range decision.Fallbacks {
			if fb == decision.Fast || !c.breakerAllows(fb.Name()) {
				continue
			}
			c.stats.failovers.Add(1)
			inst, err = c.deploy(svc, fb)
			if err == nil {
				return inst, true
			}
			c.stats.deployFailures.Add(1)
		}
		return cluster.Instance{}, false
	default:
		// Forward toward the cloud.
		c.stats.cloudForwards.Add(1)
		return cluster.Instance{Addr: svc.Addr, Cluster: "origin"}, true
	}
}

// candidatesFor gathers the scheduler candidates of one service as seen
// from one ingress zone, serving from the per-(service, zone) snapshot
// cache when it is fresh. Both dispatch and the handover manager's
// migration check go through here, so they agree on what the clusters
// look like.
func (c *Controller) candidatesFor(svc *Service, zoneName string) []Candidate {
	now := c.clk.Now()
	candidates, cached := c.cands.get(svc.Name, zoneName, now)
	if cached {
		c.stats.candidateHits.Add(1)
		return candidates
	}
	c.stats.candidateMisses.Add(1)
	zone := c.cfg.ZoneLatency[zoneName]
	candidates = make([]Candidate, 0, len(c.cfg.Clusters))
	for _, cl := range c.cfg.Clusters {
		if !c.breakerAllows(cl.Name()) {
			// Circuit open: the cluster keeps failing deployments, skip it
			// until the cooldown admits a half-open probe.
			continue
		}
		spec := c.specFor(svc, cl)
		latency := cl.Location().Latency
		if override, ok := zone[cl.Name()]; ok {
			latency = override
		}
		candidates = append(candidates, Candidate{
			Cluster:   cl,
			Latency:   latency,
			Instances: cl.Instances(svc.Name),
			Created:   cl.Created(svc.Name),
			HasImages: cl.HasImages(spec),
			CanHost:   cl.CanHost(spec),
		})
	}
	c.cands.put(svc.Name, zoneName, now, candidates)
	return candidates
}

// specFor derives the per-cluster spec: the annotation engine sets the
// schedulerName configured for that particular edge cluster.
func (c *Controller) specFor(svc *Service, cl cluster.Cluster) cluster.Spec {
	spec := svc.Annotated.Spec
	if name, ok := c.cfg.LocalSchedulers[cl.Name()]; ok {
		spec.SchedulerName = name
	}
	return spec
}

// deploy runs the deployment phases (Fig. 4) for one service on one
// cluster, coalescing concurrent requests, and waits until an instance
// is ready (its port answers). A cached deployment whose instance has
// meanwhile disappeared (crash, external scale-down) is detected and
// redeployed.
func (c *Controller) deploy(svc *Service, cl cluster.Cluster) (cluster.Instance, error) {
	key := deployKey{service: svc.Name, cluster: cl.Name()}
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		st, exists := c.deployments[key]
		if !exists {
			st = &deployState{done: vclock.NewGate(), deployedByUs: true}
			c.deployments[key] = st
			c.mu.Unlock()
			st.inst, st.err = c.runPhases(svc, cl)
			c.breakerRecord(cl.Name(), st.err == nil)
			if st.err != nil {
				// Unregister the failed attempt so a later request retries.
				c.mu.Lock()
				delete(c.deployments, key)
				c.mu.Unlock()
			}
			// Either way the cluster's observable state changed (new
			// instance, or consumed capacity/failure): cached candidate
			// snapshots are stale.
			c.cands.bump()
			st.done.Open()
			return st.inst, st.err
		}
		c.mu.Unlock()
		st.done.Wait(c.clk)
		if st.err != nil {
			return st.inst, st.err
		}
		// Validate the cached result against the live cluster state.
		if insts := cl.Instances(svc.Name); len(insts) > 0 {
			return insts[0], nil
		}
		if attempt >= 2 {
			return cluster.Instance{}, fmt.Errorf("core: %s on %s keeps disappearing after deployment", svc.Name, cl.Name())
		}
		// Stale: the instance died behind our back. Drop the record and
		// redeploy.
		c.mu.Lock()
		if c.deployments[key] == st {
			delete(c.deployments, key)
		}
		c.mu.Unlock()
		c.cands.bump()
	}
}

// runPhases executes Pull → Create → Scale Up → wait-for-port,
// reporting per-phase durations through the OnDeploy hook. The
// DeployTimeout deadline starts here and bounds the deployment end to
// end — phases, their retries, and the readiness wait all share it.
// Each phase retries transient failures with capped exponential backoff
// and deterministic jitter.
func (c *Controller) runPhases(svc *Service, cl cluster.Cluster) (inst cluster.Instance, err error) {
	tr := DeployTrace{Service: svc.Name, Cluster: cl.Name()}
	start := c.clk.Now()
	deadline := start.Add(c.cfg.DeployTimeout)
	defer func() {
		tr.Total = c.clk.Since(start)
		tr.Err = err
		if c.cfg.OnDeploy != nil {
			c.cfg.OnDeploy(tr)
		}
	}()

	retryKey := svc.Name + "/" + cl.Name()
	spec := c.specFor(svc, cl)
	if !cl.HasImages(spec) {
		t0 := c.clk.Now()
		if err = c.retryPhase(deadline, retryKey+"/pull", func() error { return cl.Pull(spec) }); err != nil {
			return cluster.Instance{}, err
		}
		tr.Pull = c.clk.Since(t0)
		c.stats.pulls.Add(1)
	}
	if !cl.Created(svc.Name) {
		t0 := c.clk.Now()
		if err = c.retryPhase(deadline, retryKey+"/create", func() error { return cl.Create(spec) }); err != nil {
			return cluster.Instance{}, err
		}
		tr.Create = c.clk.Since(t0)
		c.stats.creates.Add(1)
	}
	t0 := c.clk.Now()
	if err = c.retryPhase(deadline, retryKey+"/scaleup", func() error { return cl.ScaleUp(svc.Name) }); err != nil {
		return cluster.Instance{}, err
	}
	tr.ScaleUp = c.clk.Since(t0)
	c.stats.scaleUps.Add(1)
	t0 = c.clk.Now()
	inst, err = c.waitReady(svc, cl, deadline)
	tr.Wait = c.clk.Since(t0)
	return inst, err
}

// retryPhase runs one deployment phase, retrying transient failures up
// to RetryMax times with capped exponential backoff. Retries stop when
// the next attempt could not even start before the deployment deadline.
// The jitter hash prefix over (seed, key) is computed once, outside the
// retry loop, so a retry storm costs no allocations per attempt.
func (c *Controller) retryPhase(deadline time.Time, key string, fn func() error) error {
	var prefix uint64
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.RetryMax {
			return err
		}
		if attempt == 0 {
			prefix = c.backoffPrefix(key)
		}
		delay := c.backoff(prefix, attempt)
		if c.clk.Now().Add(delay).After(deadline) {
			return err
		}
		c.stats.retries.Add(1)
		c.clk.Sleep(delay)
	}
}

// backoffPrefix hashes "seed/key/" with FNV-1a — the attempt-invariant
// part of the jitter hash. backoff folds the attempt number into this
// prefix, producing exactly the hash a full FNV-1a pass over
// "seed/key/attempt" would, without constructing either the string or a
// hasher per attempt.
func (c *Controller) backoffPrefix(key string) uint64 {
	var buf [20]byte
	h := uint64(fnvOffset64)
	for _, b := range strconv.AppendInt(buf[:0], c.cfg.Seed, 10) {
		h = fnvByte(h, b)
	}
	h = fnvByte(h, '/')
	h = fnvString(h, key)
	return fnvByte(h, '/')
}

// backoff computes the delay before retry number attempt: exponential
// from RetryBaseDelay, capped at RetryMaxDelay, jittered into
// [d/2, d) by a hash of (seed, key, attempt) — deterministic for a
// given seed, yet decorrelated across services, clusters, and phases
// regardless of goroutine interleaving. prefix is backoffPrefix(key).
func (c *Controller) backoff(prefix uint64, attempt int) time.Duration {
	d := c.cfg.RetryBaseDelay << uint(attempt)
	if d <= 0 || d > c.cfg.RetryMaxDelay {
		d = c.cfg.RetryMaxDelay
	}
	var buf [20]byte
	h := prefix
	for _, b := range strconv.AppendInt(buf[:0], int64(attempt), 10) {
		h = fnvByte(h, b)
	}
	frac := float64(h%1024) / 1024
	return d/2 + time.Duration(frac*float64(d/2))
}

// waitReady polls the cluster for an instance and then verifies its
// port is open — "before setting up the flows, the controller
// continuously tests if the respective port is open" (§VI). The
// deadline is the whole deployment's: time spent pulling and creating
// counts against it.
func (c *Controller) waitReady(svc *Service, cl cluster.Cluster, deadline time.Time) (cluster.Instance, error) {
	for {
		for _, inst := range cl.Instances(svc.Name) {
			if c.probePort(inst.Addr) {
				return inst, nil
			}
		}
		if c.clk.Now().After(deadline) {
			return cluster.Instance{}, fmt.Errorf("core: %s on %s not ready within %v", svc.Name, cl.Name(), c.cfg.DeployTimeout)
		}
		c.clk.Sleep(c.cfg.ProbeInterval)
	}
}

// probePort checks whether the instance accepts TCP connections.
func (c *Controller) probePort(addr netem.HostPort) bool {
	conn, err := c.cfg.Host.DialTimeout(addr, c.cfg.ProbeInterval*5)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// redirectSpecs builds the flow entries that realize (client, service,
// instance): a rewrite pair for an edge instance, or a plain forward
// rule when the instance is the cloud origin itself. Both the live
// install path and the reconciler's desired-state computation derive
// from this one function, so they can never disagree on what a
// mapping's flows look like.
func (c *Controller) redirectSpecs(client netem.IP, svc *Service, inst cluster.Instance) []openflow.FlowSpec {
	if inst.Addr == svc.Addr {
		// Served by the origin: skip the controller for future packets.
		return []openflow.FlowSpec{{
			Priority:    redirectPriority,
			Match:       openflow.Match{SrcIP: client, DstIP: svc.Addr.IP, DstPort: svc.Addr.Port},
			Actions:     []openflow.Action{openflow.OutputNormal{}},
			IdleTimeout: c.cfg.SwitchFlowIdle,
			Cookie:      svc.cookie,
		}}
	}
	return []openflow.FlowSpec{
		// Forward: client → registered address, rewritten to the instance.
		{
			Priority: redirectPriority,
			Match:    openflow.Match{SrcIP: client, DstIP: svc.Addr.IP, DstPort: svc.Addr.Port},
			Actions: []openflow.Action{
				openflow.SetDstIP{IP: inst.Addr.IP},
				openflow.SetDstPort{Port: inst.Addr.Port},
				openflow.OutputNormal{},
			},
			IdleTimeout: c.cfg.SwitchFlowIdle,
			Cookie:      svc.cookie,
		},
		// Reverse: instance → client, rewritten back to the registered
		// address so the exchange still looks like a cloud access.
		{
			Priority: redirectPriority,
			Match:    openflow.Match{SrcIP: inst.Addr.IP, SrcPort: inst.Addr.Port, DstIP: client},
			Actions: []openflow.Action{
				openflow.SetSrcIP{IP: svc.Addr.IP},
				openflow.SetSrcPort{Port: svc.Addr.Port},
				openflow.OutputNormal{},
			},
			IdleTimeout: c.cfg.SwitchFlowIdle,
			Cookie:      svc.cookie,
		},
	}
}

// installRedirect programs the ingress switch for (client, service,
// instance).
func (c *Controller) installRedirect(sw *openflow.Switch, client netem.IP, svc *Service, inst cluster.Instance) {
	c.stats.flowsInstalled.Add(1)
	for _, spec := range c.redirectSpecs(client, svc, inst) {
		sw.InstallFlow(spec)
	}
}

// PreDeploy proactively deploys a service on a named cluster (the
// "deployed proactively" arrow of Fig. 1); it blocks until ready.
func (c *Controller) PreDeploy(svcAddr netem.HostPort, clusterName string) (cluster.Instance, error) {
	svc, ok := c.ServiceByAddr(svcAddr)
	if !ok {
		return cluster.Instance{}, fmt.Errorf("core: service %s not registered", svcAddr)
	}
	for _, cl := range c.cfg.Clusters {
		if cl.Name() == clusterName {
			return c.deploy(svc, cl)
		}
	}
	return cluster.Instance{}, fmt.Errorf("core: unknown cluster %q", clusterName)
}
