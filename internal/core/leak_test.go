package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestHeldPacketsReleasedOnDeployAbort audits the held-packet
// lifecycle on the abort paths: every deployment here fails, so each
// punted packet rides dispatch → failure → cloud fallback → PacketOut,
// with duplicate packet-ins for in-flight flows exercising the dedup
// early-return. The pool population must come back to its starting
// level — each held packet released exactly once, no matter which exit
// the handler took.
func TestHeldPacketsReleasedOnDeployAbort(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			pullDelay: time.Second, failPulls: 100, failCreates: 100, failScales: 100}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.RetryMax = 1
		}, near)
		before := netem.LivePackets()

		mkPin := func(client int) openflow.PacketIn {
			pkt := netem.NewPacket()
			pkt.Src = netem.ParseHostPort(fmt.Sprintf("192.168.1.%d:43000", 10+client))
			pkt.Dst = rig.svc.Addr
			pkt.Flags = netem.FlagSYN
			return openflow.PacketIn{Pkt: pkt, InPort: 1}
		}
		var g vclock.Group
		for i := 0; i < 8; i++ {
			i := i
			g.Go(clk, func() { rig.ctrl.handlePacketIn(rig.sw, mkPin(i%4)) })
			g.Go(clk, func() {
				// Mid-deployment retransmission of the same flow: the dedup
				// path must release its copy too.
				clk.Sleep(200 * time.Millisecond)
				rig.ctrl.handlePacketIn(rig.sw, mkPin(i%4))
			})
		}
		g.Wait(clk)
		clk.Sleep(5 * time.Second) // drain re-injected clones

		if leaked := netem.LivePackets() - before; leaked != 0 {
			t.Errorf("%d packets leaked across deploy-abort handling", leaked)
		}
		s := rig.ctrl.Stats()
		if s.DeployFailures == 0 {
			t.Error("no deployment ever failed; the abort path was not exercised")
		}
		if s.DegradedToCloud == 0 {
			t.Error("failed deployments never degraded to the cloud path")
		}
		if s.PacketIns < 16 {
			t.Errorf("PacketIns = %d, want 16", s.PacketIns)
		}
	})
}

// TestHoldTimeoutDegradesAndForgets exercises the partition-aware
// hold: a deployment slower than HoldTimeout must not pin the request
// — the handler falls back to the cloud path (releasing the held
// packet), and once the late deployment lands, the degraded
// client→origin mapping is forgotten so the next packet-in gets the
// edge instance.
func TestHoldTimeoutDegradesAndForgets(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond},
			pullDelay: 5 * time.Second}
		rig := newResilienceRig(t, clk, func(cfg *Config) {
			cfg.HoldTimeout = time.Second
			cfg.MemoryIdle = time.Hour
		}, near)
		client := netem.ParseHostPort("192.168.1.10:43000")
		before := netem.LivePackets()

		pkt := netem.NewPacket()
		pkt.Src = client
		pkt.Dst = rig.svc.Addr
		pkt.Flags = netem.FlagSYN
		start := clk.Now()
		rig.ctrl.handlePacketIn(rig.sw, openflow.PacketIn{Pkt: pkt, InPort: 1})

		if elapsed := clk.Since(start); elapsed >= 5*time.Second {
			t.Errorf("handler held the packet %v; HoldTimeout did not bound it", elapsed)
		}
		if s := rig.ctrl.Stats(); s.DegradedToCloud != 1 {
			t.Errorf("DegradedToCloud = %d, want 1", s.DegradedToCloud)
		}
		if leaked := netem.LivePackets() - before; leaked != 0 {
			t.Errorf("%d packets leaked on the degrade path", leaked)
		}

		// The degraded mapping points at the origin; the late-success
		// monitor must drop it once the edge instance is up.
		if inst, ok := rig.ctrl.FlowMemory().Lookup(client.IP, rig.svc.Addr); !ok || inst.Cluster != "origin" {
			t.Fatalf("memorized instance = %+v, %v; want the origin fallback", inst, ok)
		}
		clk.Sleep(10 * time.Second)
		if inst, ok := rig.ctrl.FlowMemory().Lookup(client.IP, rig.svc.Addr); ok {
			t.Errorf("degraded mapping still memorized after late deploy success: %+v", inst)
		}
	})
}
