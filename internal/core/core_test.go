package core

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestFlowMemoryLookupAndExpiry(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		fm := NewFlowMemory(clk, 5*time.Second)
		client := netem.ParseIP("192.168.1.10")
		svc := netem.ParseHostPort("203.0.113.1:80")
		inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000"), Cluster: "edge-docker"}

		if _, ok := fm.Lookup(client, svc); ok {
			t.Error("lookup hit on empty memory")
		}
		fm.Remember(client, svc, "edge-1", inst)
		got, ok := fm.Lookup(client, svc)
		if !ok || got != inst {
			t.Fatalf("Lookup = %+v, %v", got, ok)
		}
		if fm.Len() != 1 || fm.ServiceFlows("edge-1") != 1 {
			t.Errorf("Len=%d ServiceFlows=%d", fm.Len(), fm.ServiceFlows("edge-1"))
		}
		// Touch keeps it alive past the idle timeout.
		for i := 0; i < 3; i++ {
			clk.Sleep(4 * time.Second)
			fm.Touch(client, svc)
		}
		if _, ok := fm.Lookup(client, svc); !ok {
			t.Error("touched entry expired")
		}
		// Silence expires it.
		clk.Sleep(6 * time.Second)
		if _, ok := fm.Lookup(client, svc); ok {
			t.Error("idle entry survived")
		}
	})
}

func TestFlowMemoryServiceIdleHook(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		fm := NewFlowMemory(clk, 2*time.Second)
		var idled []string
		fm.OnServiceIdle = func(s string) { idled = append(idled, s) }
		svc := netem.ParseHostPort("203.0.113.1:80")
		inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000")}
		fm.Remember(netem.ParseIP("192.168.1.10"), svc, "edge-1", inst)
		fm.Remember(netem.ParseIP("192.168.1.11"), svc, "edge-1", inst)
		clk.Sleep(5 * time.Second)
		// Both entries expired; the hook fires exactly once, when the
		// last one goes.
		if len(idled) != 1 || idled[0] != "edge-1" {
			t.Errorf("idle hook calls = %v, want exactly one for edge-1", idled)
		}
	})
}

func TestFlowMemoryForget(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		fm := NewFlowMemory(clk, time.Minute)
		svc := netem.ParseHostPort("203.0.113.1:80")
		near := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000"), Cluster: "near"}
		far := cluster.Instance{Addr: netem.ParseHostPort("10.0.1.2:20000"), Cluster: "far"}
		c1, c2 := netem.ParseIP("192.168.1.10"), netem.ParseIP("192.168.1.11")
		fm.Remember(c1, svc, "edge-1", far)
		fm.Remember(c2, svc, "edge-1", near)
		// Switch future requests over to the near instance: drop every
		// mapping not already pointing there.
		fm.ForgetService("edge-1", near)
		if _, ok := fm.Lookup(c1, svc); ok {
			t.Error("stale mapping to far instance survived")
		}
		if got, ok := fm.Lookup(c2, svc); !ok || got != near {
			t.Error("mapping to the kept instance dropped")
		}
		fm.Forget(c2, svc)
		if fm.Len() != 0 {
			t.Errorf("Len = %d after Forget", fm.Len())
		}
	})
}

func TestFlowMemoryRememberReplaces(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		fm := NewFlowMemory(clk, time.Minute)
		svc := netem.ParseHostPort("203.0.113.1:80")
		client := netem.ParseIP("192.168.1.10")
		a := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:1"), Cluster: "a"}
		b := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:2"), Cluster: "b"}
		fm.Remember(client, svc, "edge-1", a)
		fm.Remember(client, svc, "edge-1", b)
		if got, _ := fm.Lookup(client, svc); got != b {
			t.Errorf("Lookup = %+v, want replacement", got)
		}
		if fm.Len() != 1 {
			t.Errorf("Len = %d, want 1", fm.Len())
		}
	})
}

func TestFlowMemoryRememberRetags(t *testing.T) {
	// Re-remembering an existing flow under a different service name
	// must re-tag the entry: the per-service counts driving idle
	// scale-down follow the rename instead of drifting (the old name
	// keeping a phantom count, the new name missing one).
	clk := vclock.New()
	clk.Run(func() {
		fm := NewFlowMemory(clk, 2*time.Second)
		var idled []string
		fm.OnServiceIdle = func(s string) { idled = append(idled, s) }
		svc := netem.ParseHostPort("203.0.113.1:80")
		client := netem.ParseIP("192.168.1.10")
		a := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:1"), Cluster: "a"}
		b := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:2"), Cluster: "b"}
		fm.Remember(client, svc, "edge-old", a)
		fm.Remember(client, svc, "edge-new", b)
		if n := fm.ServiceFlows("edge-old"); n != 0 {
			t.Errorf("ServiceFlows(edge-old) = %d, want 0 after re-tag", n)
		}
		if n := fm.ServiceFlows("edge-new"); n != 1 {
			t.Errorf("ServiceFlows(edge-new) = %d, want 1 after re-tag", n)
		}
		if fm.Len() != 1 {
			t.Errorf("Len = %d, want 1", fm.Len())
		}
		// Dropping the old name's count by re-tagging is not an idle
		// expiry: the scale-down hook stays silent, like explicit Forget.
		if len(idled) != 0 {
			t.Errorf("idle hooks %v fired on re-tag", idled)
		}
		// Idle expiry reports the current (new) name.
		clk.Sleep(5 * time.Second)
		if len(idled) != 1 || idled[0] != "edge-new" {
			t.Errorf("idle hooks after expiry = %v, want [edge-new]", idled)
		}
	})
}

// fakeCluster is a minimal Cluster for scheduler unit tests.
type fakeCluster struct {
	cluster.StaticCluster
	name string
	loc  cluster.Location
	inst []cluster.Instance
}

func (f *fakeCluster) Name() string                        { return f.name }
func (f *fakeCluster) Location() cluster.Location          { return f.loc }
func (f *fakeCluster) Instances(string) []cluster.Instance { return f.inst }

func fake(name string, latency time.Duration, insts ...cluster.Instance) *fakeCluster {
	return &fakeCluster{name: name, loc: cluster.Location{Latency: latency}, inst: insts}
}

func candidates(cls ...*fakeCluster) []Candidate {
	out := make([]Candidate, len(cls))
	for i, c := range cls {
		out[i] = Candidate{Cluster: c, Latency: c.loc.Latency, Instances: c.inst, CanHost: true}
	}
	return out
}

// cloudCandidate models the always-running origin: instances but not
// deployable.
func cloudCandidate(insts ...cluster.Instance) Candidate {
	return Candidate{
		Cluster:   fake("cloud", 25*time.Millisecond, insts...),
		Latency:   25 * time.Millisecond,
		Instances: insts,
		CanHost:   false,
	}
}

func instanceAt(addr string, cl string) cluster.Instance {
	return cluster.Instance{Addr: netem.ParseHostPort(addr), Cluster: cl}
}

func TestProximitySchedulerWaits(t *testing.T) {
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitAlways}}
	near := fake("near", time.Millisecond)
	far := fake("far", 10*time.Millisecond)
	d := s.Schedule(&Service{Name: "svc"}, 0, candidates(far, near))
	if d.Fast != near || d.FastInstance != nil || d.Best != nil {
		t.Errorf("decision = %+v, want wait at the nearest edge", d)
	}
}

func TestProximitySchedulerIgnoresCloudInstances(t *testing.T) {
	// The cloud origin always has a running instance; it must never be
	// the FAST choice while a deployable edge exists.
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitAlways}}
	near := fake("near", time.Millisecond)
	cands := append(candidates(near), cloudCandidate(instanceAt("203.0.113.1:80", "cloud")))
	d := s.Schedule(&Service{Name: "svc"}, 0, cands)
	if d.Fast != near || d.FastInstance != nil {
		t.Errorf("decision = %+v, want wait at the edge, not cloud", d)
	}
}

func TestProximitySchedulerSkipsNonHostingClusters(t *testing.T) {
	// A nearer cluster that cannot host the service (e.g. a serverless
	// runtime offered a container service) is skipped for BEST.
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitAlways}}
	wasm := fake("wasm", 900*time.Microsecond)
	docker := fake("docker", time.Millisecond)
	cands := []Candidate{
		{Cluster: wasm, CanHost: false},
		{Cluster: docker, CanHost: true},
	}
	d := s.Schedule(&Service{Name: "svc"}, 0, cands)
	if d.Fast != docker {
		t.Errorf("decision = %+v, want the hosting cluster", d)
	}
}

func TestProximitySchedulerUsesRunningInstance(t *testing.T) {
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitAlways}}
	inst := instanceAt("10.0.0.2:20000", "near")
	near := fake("near", time.Millisecond, inst)
	far := fake("far", 10*time.Millisecond)
	d := s.Schedule(&Service{Name: "svc"}, 0, candidates(near, far))
	if d.Fast != near || d.FastInstance == nil || *d.FastInstance != inst || d.Best != nil {
		t.Errorf("decision = %+v, want immediate redirect, nothing to deploy", d)
	}
}

func TestProximitySchedulerNoWaitViaFartherInstance(t *testing.T) {
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitAlways}}
	farInst := instanceAt("10.0.1.2:20000", "far")
	near := fake("near", time.Millisecond)
	far := fake("far", 10*time.Millisecond, farInst)
	d := s.Schedule(&Service{Name: "svc"}, 0, candidates(near, far))
	if d.Fast != far || d.FastInstance == nil || d.Best != near {
		t.Errorf("decision = %+v, want FAST=far instance, BEST=near deploy", d)
	}
}

func TestProximitySchedulerNeverWaitFallsBackToCloud(t *testing.T) {
	s := &ProximityScheduler{Config: SchedulerConfig{Wait: WaitNever}}
	near := fake("near", time.Millisecond)
	d := s.Schedule(&Service{Name: "svc"}, 0, candidates(near))
	if d.Fast != nil || d.Best != near {
		t.Errorf("decision = %+v, want cloud + background deploy", d)
	}
}

func TestProximitySchedulerBoundedWait(t *testing.T) {
	near := fake("near", time.Millisecond)
	mk := func(est time.Duration) Decision {
		s := &ProximityScheduler{Config: SchedulerConfig{
			Wait:    WaitBounded,
			MaxWait: time.Second,
			EstimateDeploy: func(*Service, cluster.Cluster) time.Duration {
				return est
			},
		}}
		return s.Schedule(&Service{Name: "svc"}, 0, candidates(near))
	}
	if d := mk(500 * time.Millisecond); d.Fast != near {
		t.Errorf("fast deploy not awaited: %+v", d)
	}
	if d := mk(5 * time.Second); d.Fast != nil || d.Best != near {
		t.Errorf("slow deploy awaited: %+v", d)
	}
}

func TestCloudOnlyScheduler(t *testing.T) {
	s := CloudOnlyScheduler{}
	near := fake("near", time.Millisecond, instanceAt("10.0.0.2:1", "near"))
	d := s.Schedule(&Service{Name: "svc"}, 0, candidates(near))
	if d.Fast != nil || d.Best != nil || d.FastInstance != nil {
		t.Errorf("cloud-only decision = %+v", d)
	}
}

func TestSchedulerRegistry(t *testing.T) {
	names := SchedulerNames()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found[SchedulerProximity] || !found[SchedulerCloudOnly] {
		t.Errorf("registered schedulers = %v", names)
	}
	if _, err := LoadScheduler("no-such", SchedulerConfig{}); err == nil {
		t.Error("unknown scheduler loaded")
	}
	s, err := LoadScheduler(SchedulerProximity, SchedulerConfig{})
	if err != nil || s == nil {
		t.Errorf("LoadScheduler: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		RegisterScheduler(SchedulerProximity, nil)
	}()
}
