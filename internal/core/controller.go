package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Flow priorities: per-client redirect rules must shadow the punt rule.
const (
	puntPriority     = 10
	redirectPriority = 20
)

// Config assembles a Controller.
type Config struct {
	// Host is the controller's network attachment, used for port
	// probing of new instances.
	Host *netem.Host
	// Switch is the primary ingress switch (gNB) the controller
	// programs.
	Switch *openflow.Switch
	// ExtraSwitches are additional ingress switches (further gNBs) —
	// "the network (i.e., an SDN switch) intercepts any request":
	// the controller manages all of them, installs punt rules
	// everywhere, and programs redirects on whichever switch a request
	// entered through.
	ExtraSwitches []*openflow.Switch
	// ZoneLatency overrides cluster proximity per ingress zone:
	// switch name → cluster name → latency from that gNB. Clusters
	// without an entry keep their Location latency. This is what makes
	// the deployment *distributed*: clients behind different gNBs get
	// different optimal edges.
	ZoneLatency map[string]map[string]time.Duration
	// Clusters lists the managed edge clusters plus the cloud.
	Clusters []cluster.Cluster
	// GlobalScheduler names the registered Global Scheduler
	// implementation to load (default: proximity).
	GlobalScheduler string
	// SchedulerConfig parameterizes the Global Scheduler.
	SchedulerConfig SchedulerConfig
	// LocalSchedulers maps cluster name → custom Local Scheduler name;
	// the annotation engine writes it into schedulerName.
	LocalSchedulers map[string]string
	// ProbeInterval is the polling period for instance readiness
	// ("the controller continuously tests if the respective port is
	// open").
	ProbeInterval time.Duration
	// DeployTimeout bounds one on-demand deployment end to end: the
	// clock starts before the Pull phase and covers retries and the
	// readiness wait.
	DeployTimeout time.Duration
	// RetryMax is the number of retries after the first failed attempt
	// of one deployment phase (default 2; negative disables retries).
	RetryMax int
	// RetryBaseDelay is the backoff before the first retry; it doubles
	// per attempt up to RetryMaxDelay, with deterministic jitter.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the exponential backoff.
	RetryMaxDelay time.Duration
	// BreakerThreshold trips a cluster's circuit breaker after that many
	// consecutive deployment failures (default 3; negative disables the
	// breaker). A tripped cluster is skipped during candidate gathering
	// until BreakerCooldown passes, then one half-open probe deployment
	// decides between recovery and another cooldown.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open.
	BreakerCooldown time.Duration
	// HealthProbeInterval is the cadence of the background instance
	// health prober, which re-checks the port of every instance the
	// FlowMemory references and evicts dead ones so the next packet-in
	// redeploys instead of blackholing into stale redirect flows.
	// Zero disables the prober.
	HealthProbeInterval time.Duration
	// CandidateTTL bounds how long a gathered per-(service, zone)
	// candidate snapshot may serve dispatch misses before the clusters
	// are interrogated again. Any deployment completion, scale-down,
	// breaker transition, health eviction, or registration invalidates
	// all snapshots immediately regardless of the TTL. Zero selects the
	// default (100 ms); negative disables the cache.
	CandidateTTL time.Duration
	// SwitchFlowIdle is the (low) idle timeout of installed switch
	// flows.
	SwitchFlowIdle time.Duration
	// MemoryIdle is the (higher) idle timeout of memorized flows.
	MemoryIdle time.Duration
	// OnDeploy, when set, receives per-phase timings of every
	// deployment the controller performs — the instrumentation behind
	// the Fig. 12/14/15 measurements.
	OnDeploy func(DeployTrace)
	// ScaleDownIdle scales a service down when its last memorized flow
	// expires.
	ScaleDownIdle bool
	// RemoveOnIdle additionally removes the service objects (Remove
	// phase) after scale-down.
	RemoveOnIdle bool
	// ResyncInterval is the anti-entropy reconciliation period: every
	// interval the controller audits each switch's flow table against
	// its FlowMemory-derived desired state, re-installing missing rules
	// and deleting orphans. Zero disables the loop (the default — the
	// loop only matters when the control channel can lose messages).
	ResyncInterval time.Duration
	// HoldTimeout bounds how long a packet-in's held packet may wait on
	// scheduling and deployment before the request degrades to the
	// cloud origin (partition-aware request handling). Zero holds
	// indefinitely, the paper's baseline behaviour.
	HoldTimeout time.Duration
	// DisableFlowMemory turns the FlowMemory off (ablation): every
	// packet-in goes through the full dispatch pipeline.
	DisableFlowMemory bool
	// ProactiveDeploy deploys every service to its optimal edge at
	// registration time — the "deployed proactively" arrow of Fig. 1.
	// The first request then finds a running instance immediately.
	ProactiveDeploy bool
	// MigrateOnHandover lets the handover manager follow the client with
	// the service: when a handover lands a client in a zone whose
	// scheduler-ranked optimal edge differs from where its instance
	// runs, the service is deployed there in the background. Existing
	// sessions keep their re-steered flows to the old instance; the old
	// deployment drains through the normal idle scale-down path.
	MigrateOnHandover bool
	// Seed feeds deterministic jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	out := c
	if out.GlobalScheduler == "" {
		out.GlobalScheduler = SchedulerProximity
	}
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 100 * time.Millisecond
	}
	if out.DeployTimeout <= 0 {
		out.DeployTimeout = 2 * time.Minute
	}
	if out.SwitchFlowIdle <= 0 {
		out.SwitchFlowIdle = 10 * time.Second
	}
	if out.MemoryIdle <= 0 {
		out.MemoryIdle = 60 * time.Second
	}
	if out.RetryMax == 0 {
		out.RetryMax = 2
	} else if out.RetryMax < 0 {
		out.RetryMax = 0
	}
	if out.RetryBaseDelay <= 0 {
		out.RetryBaseDelay = 50 * time.Millisecond
	}
	if out.RetryMaxDelay <= 0 {
		out.RetryMaxDelay = 2 * time.Second
	}
	if out.BreakerThreshold == 0 {
		out.BreakerThreshold = 3
	} else if out.BreakerThreshold < 0 {
		out.BreakerThreshold = 0 // disabled
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 30 * time.Second
	}
	if out.CandidateTTL == 0 {
		out.CandidateTTL = 100 * time.Millisecond
	} else if out.CandidateTTL < 0 {
		out.CandidateTTL = 0 // disabled
	}
	return out
}

// Service is one registered edge service: its public address, its
// (annotated) definition, and bookkeeping.
type Service struct {
	// Name is the worldwide-unique name assigned at registration.
	Name string
	// Addr is the registered public address (IP + port) clients use.
	Addr netem.HostPort
	// Definition is the developer-provided YAML.
	Definition string
	// Annotated holds the completed definitions and the derived spec.
	Annotated *Annotated
	// cookie tags this service's switch flows.
	cookie uint64
}

// DeployTrace reports the duration of each deployment phase (Fig. 4)
// of one on-demand deployment.
type DeployTrace struct {
	Service string
	Cluster string
	// Pull is the image pull time; zero when cached.
	Pull time.Duration
	// Create is the Create-phase duration; zero when already created.
	Create time.Duration
	// ScaleUp is the duration of the scale-up request.
	ScaleUp time.Duration
	// Wait is the time from the accepted scale-up until the instance's
	// port answered (Figs. 14/15).
	Wait time.Duration
	// Total is the end-to-end deployment duration.
	Total time.Duration
	// Err reports a failed deployment.
	Err error
}

// Stats counts controller activity; all fields are monotonic.
type Stats struct {
	PacketIns      int64
	MemoryHits     int64
	ScheduleCalls  int64
	DeploysWaiting int64
	DeploysNoWait  int64
	CloudForwards  int64
	DeployFailures int64
	Pulls          int64
	Creates        int64
	ScaleUps       int64
	ScaleDowns     int64
	// ScaleDownFailures counts idle scale-downs the cluster rejected;
	// the deployment record is kept so controller state stays consistent
	// with the still-running instance.
	ScaleDownFailures int64
	Removes           int64
	FlowsInstalled    int64
	FlowRemovedMsgs   int64
	// Retries counts repeated deployment-phase attempts after transient
	// failures (capped exponential backoff).
	Retries int64
	// Failovers counts deployments redirected to the next-best candidate
	// after the FAST choice failed.
	Failovers int64
	// BreakerTrips / BreakerRecoveries count per-cluster circuit-breaker
	// transitions to open and back to closed.
	BreakerTrips      int64
	BreakerRecoveries int64
	// HealthEvictions counts instances the background health prober
	// found dead and evicted from the FlowMemory.
	HealthEvictions int64
	// CandidateHits / CandidateMisses count dispatches served from the
	// per-(service, zone) candidate snapshot cache vs full gathers.
	CandidateHits   int64
	CandidateMisses int64
	// ResyncRuns counts reconciliation audits (periodic anti-entropy
	// passes plus full resyncs after switch restarts).
	ResyncRuns int64
	// ReinstalledFlows counts flows the reconciler re-installed because
	// a switch was missing them (lost flow-mods, restarts).
	ReinstalledFlows int64
	// OrphanFlowsRemoved counts switch flows the reconciler deleted
	// because no FlowMemory state justified them.
	OrphanFlowsRemoved int64
	// DegradedToCloud counts held requests that gave up waiting on a
	// deployment (HoldTimeout) or exhausted every candidate and were
	// answered by the cloud origin instead.
	DegradedToCloud int64
	// Handovers counts attach-point changes the handover manager
	// processed (Controller.Handover with an actual switch change).
	Handovers int64
	// ReSteeredFlows counts memorized client↔service mappings whose
	// rewrite flows were re-installed at the new gNB during handovers.
	ReSteeredFlows int64
	// MigratedInstances counts service migrations triggered because the
	// new gNB's optimal edge differed from where the client's instance
	// was running.
	MigratedInstances int64
	// ContinuityBreaks counts handovers whose strict-delete at the old
	// gNB found fewer flows than expected — the old switch's state did
	// not match the controller's, so the make-before-break guarantee was
	// not fully upheld for that client.
	ContinuityBreaks int64
	// ChannelDrops sums control-channel messages lost to injected
	// faults across all managed switches.
	ChannelDrops int64
}

// Add returns the field-wise sum of two snapshots. Every counter is
// monotonic and per-event, so summing per-shard controller snapshots
// yields the whole-run accounting — the reflection walk keeps the merge
// complete as fields are added (and trips loudly if a non-counter field
// ever lands here).
func (s Stats) Add(o Stats) Stats {
	sv, ov := reflect.ValueOf(&s).Elem(), reflect.ValueOf(&o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		if f.Kind() != reflect.Int64 {
			panic(fmt.Sprintf("core: Stats field %s is not an int64 counter", sv.Type().Field(i).Name))
		}
		f.SetInt(f.Int() + ov.Field(i).Int())
	}
	return s
}

// svcTables is the read-mostly service registry. Lookups on the
// packet-in hot path load an immutable snapshot through an atomic
// pointer — zero locks, zero contention; registration (rare) builds a
// fresh copy under regMu and swaps the pointer.
type svcTables struct {
	services map[netem.HostPort]*Service
	byCookie map[uint64]*Service
	byName   map[string]*Service
}

// Controller is the SDN controller: the paper's contribution.
type Controller struct {
	cfg   Config
	clk   vclock.Clock
	sched GlobalScheduler
	fm    *FlowMemory

	switches []*openflow.Switch
	conns    []switchConn

	// svc is the copy-on-write service registry (see svcTables).
	svc atomic.Pointer[svcTables]
	// regMu serializes registrations and cookie assignment.
	regMu      sync.Mutex
	nextCookie uint64

	// clients shards client tracking and packet-in dedup by client
	// address: concurrent packet-ins from distinct clients take
	// distinct shard locks.
	clients *clientTable

	// cands caches gathered dispatch candidates per (service, zone).
	cands *candCache

	// stats is the atomic counter bank (see statCounters).
	stats statCounters

	// mu guards the deployment records and the start flag — cold-path
	// state only; the packet-in fast path never takes it.
	mu          sync.Mutex
	deployments map[deployKey]*deployState
	started     bool

	// brMu guards the per-cluster circuit breakers.
	brMu     sync.Mutex
	breakers map[string]*breakerState

	// hoMu guards handoverLat (Hist is not safe for concurrent use).
	hoMu sync.Mutex
	// handoverLat is the control-plane latency of each handover: from
	// entering Handover to the old gNB's flows strict-deleted.
	handoverLat *metrics.Hist
}

// switchConn pairs one managed switch with its control channels.
type switchConn struct {
	sw        *openflow.Switch
	packetIns *vclock.Mailbox[openflow.PacketIn]
	removals  *vclock.Mailbox[openflow.FlowRemoved]
}

// ClientLocation is the Dispatcher's record of where a client was last
// seen — "this component also tracks the clients' current location"
// (§IV-B).
type ClientLocation struct {
	// Switch names the ingress switch (gNB) the client is behind.
	Switch string
	// InPort is the switch port the client's traffic entered on.
	InPort int
	// LastSeen is when the client last caused a packet-in.
	LastSeen time.Time
}

type deployKey struct {
	service string
	cluster string
}

type deployState struct {
	done *vclock.Gate
	inst cluster.Instance
	err  error
	// deployedByUs marks deployments this controller triggered, the
	// ones idle scale-down may undo.
	deployedByUs bool
	// scaledDown marks instances we took down again; a new deployment
	// re-runs the Scale Up phase.
	scaledDown bool
}

// New builds a controller. The switch is connected immediately; call
// Start to begin processing.
func New(clk vclock.Clock, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Host == nil || cfg.Switch == nil {
		return nil, fmt.Errorf("core: controller needs a host and a switch")
	}
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("core: controller needs at least one cluster")
	}
	sched, err := LoadScheduler(cfg.GlobalScheduler, cfg.SchedulerConfig)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:         cfg,
		clk:         clk,
		sched:       sched,
		fm:          NewFlowMemory(clk, cfg.MemoryIdle),
		clients:     newClientTable(),
		cands:       newCandCache(cfg.CandidateTTL),
		deployments: make(map[deployKey]*deployState),
		breakers:    make(map[string]*breakerState),
		handoverLat: metrics.NewHist("handover"),
	}
	c.svc.Store(&svcTables{
		services: make(map[netem.HostPort]*Service),
		byCookie: make(map[uint64]*Service),
		byName:   make(map[string]*Service),
	})
	c.switches = append([]*openflow.Switch{cfg.Switch}, cfg.ExtraSwitches...)
	for _, sw := range c.switches {
		pins, rems := sw.Connect()
		c.conns = append(c.conns, switchConn{sw: sw, packetIns: pins, removals: rems})
	}
	if cfg.ScaleDownIdle {
		c.fm.OnServiceIdle = c.onServiceIdle
	}
	return c, nil
}

// ClientLocation returns where a client was last seen, if ever.
func (c *Controller) ClientLocation(ip netem.IP) (ClientLocation, bool) {
	return c.clients.location(ip)
}

// FlowMemory exposes the controller's flow memory (for inspection).
func (c *Controller) FlowMemory() *FlowMemory { return c.fm }

// Stats returns a snapshot of the controller counters, folding in the
// control-channel fault counters of every managed switch.
func (c *Controller) Stats() Stats {
	s := c.stats.snapshot()
	for _, sw := range c.switches {
		s.ChannelDrops += sw.ChannelStats().Total()
	}
	return s
}

// RegisterService registers a service by its public address and lean
// YAML definition: the definition is annotated, the derived spec
// stored, and the intercept (punt) rule installed in the switch.
// The service tables are copy-on-write: registration clones them and
// swaps one atomic pointer, so packet-in lookups never block on it.
func (c *Controller) RegisterService(addr netem.HostPort, definition string) (*Service, error) {
	annotated, err := Annotate(definition, AnnotateOptions{
		UniqueName:  UniqueNameFor(addr),
		ServicePort: addr.Port,
	})
	if err != nil {
		return nil, err
	}
	c.regMu.Lock()
	old := c.svc.Load()
	if _, dup := old.services[addr]; dup {
		c.regMu.Unlock()
		return nil, fmt.Errorf("core: service %s already registered", addr)
	}
	c.nextCookie++
	svc := &Service{
		Name:       annotated.Spec.Name,
		Addr:       addr,
		Definition: definition,
		Annotated:  annotated,
		cookie:     c.nextCookie,
	}
	next := &svcTables{
		services: make(map[netem.HostPort]*Service, len(old.services)+1),
		byCookie: make(map[uint64]*Service, len(old.byCookie)+1),
		byName:   make(map[string]*Service, len(old.byName)+1),
	}
	for k, v := range old.services {
		next.services[k] = v
	}
	for k, v := range old.byCookie {
		next.byCookie[k] = v
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.services[addr] = svc
	next.byCookie[svc.cookie] = svc
	next.byName[svc.Name] = svc
	c.svc.Store(next)
	c.regMu.Unlock()
	c.cands.bump()

	// Intercept requests for the registered address (Fig. 2) on every
	// managed ingress switch.
	for _, sw := range c.switches {
		sw.InstallFlow(openflow.FlowSpec{
			Priority: puntPriority,
			Match:    openflow.Match{DstIP: addr.IP, DstPort: addr.Port},
			Actions:  []openflow.Action{openflow.OutputController{}},
			Cookie:   svc.cookie,
		})
	}
	if c.cfg.ProactiveDeploy {
		// Proactive deployment (Fig. 1): bring the service up at the
		// nearest hosting cluster in the background.
		spec := svc.Annotated.Spec
		var best cluster.Cluster
		for _, cl := range c.cfg.Clusters {
			if !cl.CanHost(c.specForCluster(spec, cl)) {
				continue
			}
			if best == nil || cl.Location().Latency < best.Location().Latency {
				best = cl
			}
		}
		if best != nil {
			target := best
			c.clk.Go(func() {
				if _, err := c.deploy(svc, target); err != nil {
					c.stats.deployFailures.Add(1)
				}
			})
		}
	}
	return svc, nil
}

// specForCluster applies the per-cluster Local Scheduler to a spec.
func (c *Controller) specForCluster(spec cluster.Spec, cl cluster.Cluster) cluster.Spec {
	if name, ok := c.cfg.LocalSchedulers[cl.Name()]; ok {
		spec.SchedulerName = name
	}
	return spec
}

// ServiceByAddr returns the service registered at addr.
func (c *Controller) ServiceByAddr(addr netem.HostPort) (*Service, bool) {
	svc, ok := c.svc.Load().services[addr]
	return svc, ok
}

// ServiceByName returns the service with the given unique name.
func (c *Controller) ServiceByName(name string) (*Service, bool) {
	svc, ok := c.svc.Load().byName[name]
	return svc, ok
}

// Start launches the packet-in and flow-removed processing loops.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	for _, conn := range c.conns {
		conn := conn
		c.clk.Go(func() {
			for {
				pin, ok := conn.packetIns.Recv()
				if !ok {
					return
				}
				c.clk.Go(func() { c.handlePacketIn(conn.sw, pin) })
			}
		})
		c.clk.Go(func() {
			for {
				msg, ok := conn.removals.Recv()
				if !ok {
					return
				}
				c.handleFlowRemoved(msg)
			}
		})
		sw := conn.sw
		c.clk.Go(func() { c.watchSwitch(sw) })
	}
	if c.cfg.HealthProbeInterval > 0 {
		c.clk.Go(c.healthProbeLoop)
	}
	if c.cfg.ResyncInterval > 0 {
		c.clk.Go(c.resyncLoop)
	}
}

// handleFlowRemoved refreshes the flow memory when switch flows expire:
// the removal implies traffic existed until a moment ago, so the
// memorized mapping stays warm a while longer.
func (c *Controller) handleFlowRemoved(msg openflow.FlowRemoved) {
	c.stats.flowRemovedMsgs.Add(1)
	svc, ok := c.svc.Load().byCookie[msg.Cookie]
	if !ok || !msg.IdleTimeout {
		return
	}
	var client netem.IP
	if msg.Match.DstIP == svc.Addr.IP && msg.Match.DstPort == svc.Addr.Port {
		client = msg.Match.SrcIP // forward rule
	} else {
		client = msg.Match.DstIP // reverse rule
	}
	c.fm.Touch(client, svc.Addr)
}

// onServiceIdle is the scale-down hook: the last memorized flow of the
// service expired.
func (c *Controller) onServiceIdle(svcName string) {
	if _, ok := c.svc.Load().byName[svcName]; !ok {
		return
	}
	c.mu.Lock()
	var targets []struct {
		cl    cluster.Cluster
		state *deployState
	}
	for _, cl := range c.cfg.Clusters {
		key := deployKey{service: svcName, cluster: cl.Name()}
		if st, ok := c.deployments[key]; ok && st.deployedByUs && !st.scaledDown && st.done.IsOpen() && st.err == nil {
			st.scaledDown = true
			targets = append(targets, struct {
				cl    cluster.Cluster
				state *deployState
			}{cl, st})
		}
	}
	c.mu.Unlock()

	for _, t := range targets {
		if err := t.cl.ScaleDown(svcName); err != nil {
			// The instance is still up: keep the deployment record so
			// controller state matches the cluster, and let a later idle
			// expiry try again.
			c.stats.scaleDownFailures.Add(1)
			c.mu.Lock()
			t.state.scaledDown = false
			c.mu.Unlock()
			continue
		}
		c.stats.scaleDowns.Add(1)
		if c.cfg.RemoveOnIdle {
			if err := t.cl.Remove(svcName); err == nil {
				c.stats.removes.Add(1)
			}
		}
		// Forget the deployment so the next request redeploys.
		c.mu.Lock()
		delete(c.deployments, deployKey{service: svcName, cluster: t.cl.Name()})
		c.mu.Unlock()
		c.cands.bump()
	}
}
