package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// BenchmarkPacketInThroughput measures the controller's warm packet-in
// path — the one that dominates at scale: memorized flow, redirect
// re-install, packet release — under real concurrency. Many clients
// behind several ingress switches fire packet-ins in parallel
// (b.RunParallel spreads them over GOMAXPROCS goroutines), so the
// benchmark directly exposes control-plane lock contention: before the
// sharding refactor every operation serialized on one controller
// mutex; now distinct clients proceed on distinct shards.
//
// The benchmark uses the real clock (throughput is wall-clock work, not
// simulated time), zero control-channel latency, and a short switch
// flow idle timeout so the flow tables self-prune instead of growing
// with b.N.
func BenchmarkPacketInThroughput(b *testing.B) {
	const (
		nSwitches = 4
		nClients  = 4096 // total, striped across switches
	)
	clk := vclock.NewReal()
	n := netem.NewNetwork(clk, 1)

	sws := make([]*openflow.Switch, nSwitches)
	for i := range sws {
		sws[i] = openflow.NewSwitch(n, fmt.Sprintf("gnb%d", i), 4)
		sws[i].CtrlLatency = 0
	}

	stub := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}, clk: clk, port: 20000}
	stub.host = n.NewHost("near", netem.ParseIP("10.0.0.2"))
	n.Connect(stub.host.NIC(), sws[0].Port(1), netem.LinkConfig{Latency: 50 * time.Microsecond})

	ctrlHost := n.NewHost("ctrl", netem.ParseIP("10.0.254.1"))
	n.Connect(ctrlHost.NIC(), sws[0].Port(2), netem.LinkConfig{Latency: 50 * time.Microsecond})

	ctrl, err := New(clk, Config{
		Host:           ctrlHost,
		Switch:         sws[0],
		ExtraSwitches:  sws[1:],
		Clusters:       []cluster.Cluster{stub},
		SwitchFlowIdle: 20 * time.Millisecond,
		MemoryIdle:     time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctrl.Start() // drain flow-removed messages from the self-pruning tables
	svc, err := ctrl.RegisterService(netem.ParseHostPort("203.0.113.1:80"), leanNginx)
	if err != nil {
		b.Fatal(err)
	}

	// Pre-warm the FlowMemory: every client already has a memorized
	// instance, so each packet-in takes the fast path. The instance
	// address is unroutable on the switches — the released packet is
	// accounted by the redirect flow, then dropped, keeping the
	// benchmark about the control plane rather than data delivery.
	inst := cluster.Instance{Addr: netem.ParseHostPort("10.9.9.9:20000"), Cluster: "near"}
	clients := make([]netem.IP, nClients)
	for i := range clients {
		clients[i] = netem.ParseIP(fmt.Sprintf("192.%d.%d.%d", 168+i/65536, (i/256)%256, i%256))
		ctrl.fm.Remember(clients[i], svc.Addr, svc.Name, inst)
	}

	var gids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine walks its own stripe of the client space so
		// concurrent packet-ins come from distinct clients, as in a real
		// packet-in storm.
		gid := int(gids.Add(1))
		i := gid * 7919 // a prime stride decorrelates the stripes
		for pb.Next() {
			client := clients[i%nClients]
			sw := sws[i%nSwitches]
			i++
			ctrl.handlePacketIn(sw, openflow.PacketIn{
				Pkt:    &netem.Packet{Src: netem.HostPort{IP: client, Port: 43000}, Dst: svc.Addr, Flags: netem.FlagSYN},
				InPort: 2,
			})
		}
	})
	b.StopTimer()
	s := ctrl.Stats()
	// Released packets occasionally punt back: if the goroutine is
	// descheduled longer than SwitchFlowIdle between InstallFlow and
	// PacketOut, the fresh redirect idles out before the held packet
	// traverses it — the same FlowMod-vs-PacketOut race a slow OpenFlow
	// controller sees in production. The packet is not lost (it re-enters
	// the control plane and is re-dispatched or deduplicated), so the
	// warm-path check tolerates a hit deficit bounded by the punt count.
	var punted int64
	for _, sw := range sws {
		p, _, _ := sw.Counters()
		punted += p
	}
	if s.PacketIns-s.MemoryHits > punted {
		b.Fatalf("benchmark left the warm path: %d hits of %d packet-ins (%d punts)", s.MemoryHits, s.PacketIns, punted)
	}
}

// BenchmarkFlowMemoryScale measures FlowMemory operations with a large
// resident population (hundreds of thousands of memorized flows across
// many services), mixing the operations the controller performs:
// lookups (hits), touches via lookups, and re-remembers. Before the
// sharding refactor every operation took one global mutex and every
// entry held its own expiry timer; now operations spread over 64 shards
// and each shard keeps a single armed sweep timer regardless of entry
// count.
func BenchmarkFlowMemoryScale(b *testing.B) {
	const (
		nEntries  = 200_000
		nServices = 64
	)
	clk := vclock.NewReal()
	fm := NewFlowMemory(clk, time.Hour)
	inst := cluster.Instance{Addr: netem.ParseHostPort("10.0.0.2:20000"), Cluster: "edge"}
	keys := make([]netem.IP, nEntries)
	svcs := make([]netem.HostPort, nEntries)
	names := make([]string, nServices)
	for i := range names {
		names[i] = fmt.Sprintf("svc-%d", i)
	}
	for i := range keys {
		keys[i] = netem.IP(0x0a000000 + uint32(i))
		svcs[i] = netem.HostPort{IP: netem.IP(0xcb007100 + uint32(i%nServices)), Port: 80}
		fm.Remember(keys[i], svcs[i], names[i%nServices], inst)
	}
	if fm.Len() != nEntries {
		b.Fatalf("Len = %d, want %d", fm.Len(), nEntries)
	}

	var gids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gid := int(gids.Add(1))
		i := gid * 7919
		for pb.Next() {
			k := i % nEntries
			switch i % 8 {
			case 7:
				// Occasional re-remember (instance moved).
				fm.Remember(keys[k], svcs[k], names[k%nServices], inst)
			default:
				if _, ok := fm.Lookup(keys[k], svcs[k]); !ok {
					b.Error("resident entry missing")
					return
				}
			}
			i++
		}
	})
}
