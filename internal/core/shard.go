package core

import (
	"sync"

	"github.com/c3lab/transparentedge/internal/netem"
)

// numShards partitions the controller's per-client state. Packet-ins
// from distinct clients hash to distinct shards with high probability,
// so they proceed without contending on a shared lock. A power of two
// keeps the index computation a mask.
const numShards = 64

// FNV-1a constants (64-bit).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvByte folds one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

// fnvUint32 folds a big-endian uint32 into an FNV-1a state.
func fnvUint32(h uint64, v uint32) uint64 {
	h = fnvByte(h, byte(v>>24))
	h = fnvByte(h, byte(v>>16))
	h = fnvByte(h, byte(v>>8))
	return fnvByte(h, byte(v))
}

// fnvString folds a string into an FNV-1a state.
func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// hashFlowKey hashes a (client, service) flow key for shard selection.
func hashFlowKey(k flowKey) uint64 {
	h := fnvUint32(fnvOffset64, uint32(k.client))
	h = fnvUint32(h, uint32(k.service.IP))
	h = fnvByte(h, byte(k.service.Port>>8))
	return fnvByte(h, byte(k.service.Port))
}

// hashIP hashes a client address for shard selection.
func hashIP(ip netem.IP) uint64 { return fnvUint32(fnvOffset64, uint32(ip)) }

// clientShard is one partition of the Dispatcher's per-client state:
// the last-seen client locations and the in-flight packet-in dedup set.
// Both live in the same shard so the top of handlePacketIn takes exactly
// one lock: track the client's location and claim the flow key together.
type clientShard struct {
	mu      sync.Mutex
	clients map[netem.IP]ClientLocation
	pending map[flowKey]bool
}

// clientTable shards client tracking and pending-dedup by client
// address. A flow key's shard is its client's shard, so a location
// update and a pending claim for one packet-in share a critical section.
type clientTable struct {
	shards [numShards]clientShard
}

func newClientTable() *clientTable {
	t := &clientTable{}
	for i := range t.shards {
		t.shards[i].clients = make(map[netem.IP]ClientLocation)
		t.shards[i].pending = make(map[flowKey]bool)
	}
	return t
}

func (t *clientTable) shardFor(ip netem.IP) *clientShard {
	return &t.shards[hashIP(ip)&(numShards-1)]
}

// trackAndClaim records the client's ingress location and claims the
// flow key for dispatch in one shard critical section. It reports
// whether the key was already claimed (a concurrent packet-in — e.g. a
// SYN retransmission — is being dispatched; the caller must drop the
// duplicate and let the original held packet be released).
func (t *clientTable) trackAndClaim(key flowKey, loc ClientLocation) (dup bool) {
	s := t.shardFor(key.client)
	s.mu.Lock()
	s.clients[key.client] = loc
	if s.pending[key] {
		s.mu.Unlock()
		return true
	}
	s.pending[key] = true
	s.mu.Unlock()
	return false
}

// release drops the pending claim taken by trackAndClaim.
func (t *clientTable) release(key flowKey) {
	s := t.shardFor(key.client)
	s.mu.Lock()
	delete(s.pending, key)
	s.mu.Unlock()
}

// track records the client's location without claiming a flow key.
func (t *clientTable) track(ip netem.IP, loc ClientLocation) {
	s := t.shardFor(ip)
	s.mu.Lock()
	s.clients[ip] = loc
	s.mu.Unlock()
}

// location returns the client's last-seen location.
func (t *clientTable) location(ip netem.IP) (ClientLocation, bool) {
	s := t.shardFor(ip)
	s.mu.Lock()
	loc, ok := s.clients[ip]
	s.mu.Unlock()
	return loc, ok
}
