package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// TestConcurrentPacketInStress drives the sharded control plane with
// genuinely parallel packet-ins (real clock, many goroutines — run with
// -race): memory hits, dispatch misses, SYN-retransmit dedup, and
// flow-removed refreshes interleave across many clients behind two
// ingress switches, with a service registration landing mid-storm.
// Afterwards the stats must be internally consistent, no pending claim
// may leak, and every non-duplicate packet-in must have released its
// held packet through a redirect flow.
func TestConcurrentPacketInStress(t *testing.T) {
	clk := vclock.NewReal()
	n := netem.NewNetwork(clk, 1)

	const (
		clientsPerSwitch = 24
		rounds           = 4
	)

	// gnb1 hosts the clusters and the controller; gnb2 is a second
	// ingress switch whose instance-bound traffic crosses a trunk link.
	sw1 := openflow.NewSwitch(n, "gnb1", 8)
	sw2 := openflow.NewSwitch(n, "gnb2", 4)
	sw1.CtrlLatency = 0
	sw2.CtrlLatency = 0

	link := netem.LinkConfig{Latency: 50 * time.Microsecond}
	near := &stubCluster{name: "near", loc: cluster.Location{Latency: time.Millisecond}, clk: clk, port: 20000}
	near.host = n.NewHost("near", netem.ParseIP("10.0.0.2"))
	n.Connect(near.host.NIC(), sw1.Port(1), link)
	sw1.AddRoute(near.host.IP(), 1)

	far := &stubCluster{name: "far", loc: cluster.Location{Latency: 8 * time.Millisecond}, clk: clk, port: 20000}
	far.host = n.NewHost("far", netem.ParseIP("10.0.1.2"))
	n.Connect(far.host.NIC(), sw1.Port(2), link)
	sw1.AddRoute(far.host.IP(), 2)

	ctrlHost := n.NewHost("ctrl", netem.ParseIP("10.0.254.1"))
	n.Connect(ctrlHost.NIC(), sw1.Port(3), link)
	sw1.AddRoute(ctrlHost.IP(), 3)

	// Trunk gnb2 → gnb1 for instance-bound traffic. Neither switch has a
	// default route, so unroutable packets drop instead of looping.
	n.Connect(sw1.Port(4), sw2.Port(1), netem.LinkConfig{Latency: 100 * time.Microsecond})
	sw2.AddRoute(near.host.IP(), 1)
	sw2.AddRoute(far.host.IP(), 1)

	ctrl, err := New(clk, Config{
		Host:           ctrlHost,
		Switch:         sw1,
		ExtraSwitches:  []*openflow.Switch{sw2},
		Clusters:       []cluster.Cluster{near, far},
		ProbeInterval:  time.Millisecond,
		SwitchFlowIdle: time.Hour, // keep flow counters stable for the final audit
		MemoryIdle:     time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := ctrl.RegisterService(netem.ParseHostPort("203.0.113.1:80"), leanNginx)
	if err != nil {
		t.Fatal(err)
	}
	unregistered := netem.ParseHostPort("198.51.100.9:80")

	mkPin := func(client netem.IP, dst netem.HostPort) openflow.PacketIn {
		return openflow.PacketIn{
			Pkt:    &netem.Packet{Src: netem.HostPort{IP: client, Port: 43000}, Dst: dst, Flags: netem.FlagSYN},
			InPort: 2,
		}
	}

	var wg sync.WaitGroup
	var total, registered int64
	var countMu sync.Mutex
	for si, sw := range []*openflow.Switch{sw1, sw2} {
		for i := 0; i < clientsPerSwitch; i++ {
			client := netem.ParseIP(fmt.Sprintf("192.168.%d.%d", si+1, i+10))
			sw := sw
			wg.Add(1)
			go func() {
				defer wg.Done()
				sent, reg := int64(0), int64(0)
				for r := 0; r < rounds; r++ {
					switch r {
					case 1:
						// SYN retransmission: a concurrent duplicate of the
						// same flow, racing the original.
						var dup sync.WaitGroup
						dup.Add(1)
						go func() {
							defer dup.Done()
							ctrl.handlePacketIn(sw, mkPin(client, svc.Addr))
						}()
						ctrl.handlePacketIn(sw, mkPin(client, svc.Addr))
						dup.Wait()
						sent, reg = sent+2, reg+2
					case 2:
						// Flow-removed refresh racing other packet-ins.
						ctrl.handleFlowRemoved(openflow.FlowRemoved{
							Match:       openflow.Match{SrcIP: client, DstIP: svc.Addr.IP, DstPort: svc.Addr.Port},
							Cookie:      svc.cookie,
							IdleTimeout: true,
						})
						ctrl.handlePacketIn(sw, mkPin(client, unregistered))
						sent++
					default:
						ctrl.handlePacketIn(sw, mkPin(client, svc.Addr))
						sent, reg = sent+1, reg+1
					}
				}
				countMu.Lock()
				total += sent
				registered += reg
				countMu.Unlock()
			}()
		}
	}

	// A registration lands mid-storm: the copy-on-write service tables
	// and the punt-rule installs race the packet-in fast path.
	regErr := make(chan error, 1)
	go func() {
		_, err := ctrl.RegisterService(netem.ParseHostPort("203.0.113.2:80"), leanNginx)
		regErr <- err
	}()
	// Concurrent readers of the shared state.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ctrl.Stats()
				_ = ctrl.FlowMemory().Len()
				_, _ = ctrl.ClientLocation(netem.ParseIP("192.168.1.10"))
			}
		}
	}()

	wg.Wait()
	close(stop)
	readers.Wait()
	if err := <-regErr; err != nil {
		t.Fatalf("mid-storm registration: %v", err)
	}

	s := ctrl.Stats()
	if s.PacketIns != total {
		t.Errorf("PacketIns = %d, want %d", s.PacketIns, total)
	}
	// Every packet-in for the registered service either hit the memory,
	// dispatched, or was deduplicated against an in-flight twin.
	dups := registered - s.MemoryHits - s.ScheduleCalls
	if dups < 0 {
		t.Errorf("MemoryHits=%d + ScheduleCalls=%d exceed %d registered packet-ins", s.MemoryHits, s.ScheduleCalls, registered)
	}
	if s.FlowsInstalled != s.MemoryHits+s.ScheduleCalls {
		t.Errorf("FlowsInstalled = %d, want MemoryHits+ScheduleCalls = %d", s.FlowsInstalled, s.MemoryHits+s.ScheduleCalls)
	}
	if s.CandidateHits+s.CandidateMisses != s.ScheduleCalls {
		t.Errorf("CandidateHits+CandidateMisses = %d, want ScheduleCalls = %d", s.CandidateHits+s.CandidateMisses, s.ScheduleCalls)
	}
	// Zero lost held packets: each non-duplicate packet-in released its
	// packet via PacketOut, which traversed the freshly installed
	// forward redirect flow of its ingress switch.
	var released int64
	for _, sw := range []*openflow.Switch{sw1, sw2} {
		for _, f := range sw.Flows() {
			if f.Priority == redirectPriority && f.Match.DstIP == svc.Addr.IP && f.Match.DstPort == svc.Addr.Port {
				released += f.Packets
			}
		}
	}
	if released != s.FlowsInstalled {
		t.Errorf("released packets = %d, want %d (one per installed redirect)", released, s.FlowsInstalled)
	}
	// No pending claim may survive the storm.
	for i := range ctrl.clients.shards {
		sh := &ctrl.clients.shards[i]
		sh.mu.Lock()
		n := len(sh.pending)
		sh.mu.Unlock()
		if n != 0 {
			t.Errorf("shard %d leaks %d pending claims", i, n)
		}
	}
	// FlowMemory bookkeeping: one entry per distinct client, counts in
	// sync with the entries.
	fm := ctrl.FlowMemory()
	if got, want := fm.Len(), 2*clientsPerSwitch; got != want {
		t.Errorf("FlowMemory.Len = %d, want %d", got, want)
	}
	if got := fm.ServiceFlows(svc.Name); got != fm.Len() {
		t.Errorf("ServiceFlows = %d, want %d (all entries belong to one service)", got, fm.Len())
	}
}
