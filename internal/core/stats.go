package core

import "sync/atomic"

// statCounters is the controller's internal, contention-free counter
// bank. Every field mirrors one field of the public Stats snapshot;
// the hot path bumps them with single atomic adds instead of taking a
// shared lock, so concurrent packet-ins from distinct clients never
// serialize on bookkeeping.
type statCounters struct {
	packetIns         atomic.Int64
	memoryHits        atomic.Int64
	scheduleCalls     atomic.Int64
	deploysWaiting    atomic.Int64
	deploysNoWait     atomic.Int64
	cloudForwards     atomic.Int64
	deployFailures    atomic.Int64
	pulls             atomic.Int64
	creates           atomic.Int64
	scaleUps          atomic.Int64
	scaleDowns        atomic.Int64
	scaleDownFailures atomic.Int64
	removes           atomic.Int64
	flowsInstalled    atomic.Int64
	flowRemovedMsgs   atomic.Int64
	retries           atomic.Int64
	failovers         atomic.Int64
	breakerTrips      atomic.Int64
	breakerRecoveries atomic.Int64
	healthEvictions   atomic.Int64
	candidateHits     atomic.Int64
	candidateMisses   atomic.Int64
	resyncRuns        atomic.Int64
	reinstalledFlows  atomic.Int64
	orphanFlows       atomic.Int64
	degradedToCloud   atomic.Int64
	handovers         atomic.Int64
	reSteeredFlows    atomic.Int64
	migratedInstances atomic.Int64
	continuityBreaks  atomic.Int64
}

// snapshot assembles the public Stats view from the atomic counters.
func (sc *statCounters) snapshot() Stats {
	return Stats{
		PacketIns:          sc.packetIns.Load(),
		MemoryHits:         sc.memoryHits.Load(),
		ScheduleCalls:      sc.scheduleCalls.Load(),
		DeploysWaiting:     sc.deploysWaiting.Load(),
		DeploysNoWait:      sc.deploysNoWait.Load(),
		CloudForwards:      sc.cloudForwards.Load(),
		DeployFailures:     sc.deployFailures.Load(),
		Pulls:              sc.pulls.Load(),
		Creates:            sc.creates.Load(),
		ScaleUps:           sc.scaleUps.Load(),
		ScaleDowns:         sc.scaleDowns.Load(),
		ScaleDownFailures:  sc.scaleDownFailures.Load(),
		Removes:            sc.removes.Load(),
		FlowsInstalled:     sc.flowsInstalled.Load(),
		FlowRemovedMsgs:    sc.flowRemovedMsgs.Load(),
		Retries:            sc.retries.Load(),
		Failovers:          sc.failovers.Load(),
		BreakerTrips:       sc.breakerTrips.Load(),
		BreakerRecoveries:  sc.breakerRecoveries.Load(),
		HealthEvictions:    sc.healthEvictions.Load(),
		CandidateHits:      sc.candidateHits.Load(),
		CandidateMisses:    sc.candidateMisses.Load(),
		ResyncRuns:         sc.resyncRuns.Load(),
		ReinstalledFlows:   sc.reinstalledFlows.Load(),
		OrphanFlowsRemoved: sc.orphanFlows.Load(),
		DegradedToCloud:    sc.degradedToCloud.Load(),
		Handovers:          sc.handovers.Load(),
		ReSteeredFlows:     sc.reSteeredFlows.Load(),
		MigratedInstances:  sc.migratedInstances.Load(),
		ContinuityBreaks:   sc.continuityBreaks.Load(),
	}
}
