package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// candCache memoizes the Dispatcher's candidate gathering per
// (service, ingress zone) for a short TTL. Without it, every packet-in
// that misses the FlowMemory interrogates every cluster
// (Instances/Created/HasImages/CanHost) — four virtual calls per
// cluster per request, all touching per-cluster locks. Under a
// packet-in storm for the same service the answers are identical, so
// one gathered snapshot serves every miss in the window.
//
// Freshness has two guards:
//
//   - a TTL in simulation time, so an idle cache cannot serve
//     arbitrarily old cluster state; and
//   - a global epoch, bumped by every controller action that changes
//     what a gather would see (deployment completion or failure,
//     scale-down, breaker transition, health eviction, registration).
//     Any bump invalidates every snapshot at once — invalidation is
//     deliberately coarse: correctness never depends on the cache,
//     only the miss path's cost does.
type candCache struct {
	ttl   time.Duration
	epoch atomic.Uint64

	shards [numShards]candShard
}

type candKey struct {
	service string
	zone    string
}

type candShard struct {
	mu sync.Mutex
	m  map[candKey]*candEntry
}

type candEntry struct {
	epoch      uint64
	expires    time.Time
	candidates []Candidate
}

// newCandCache returns a cache with the given TTL; a non-positive TTL
// disables caching entirely (every get misses).
func newCandCache(ttl time.Duration) *candCache {
	c := &candCache{ttl: ttl}
	for i := range c.shards {
		c.shards[i].m = make(map[candKey]*candEntry)
	}
	return c
}

func (c *candCache) shardFor(k candKey) *candShard {
	h := fnvString(fnvOffset64, k.service)
	h = fnvByte(h, '/')
	h = fnvString(h, k.zone)
	return &c.shards[h&(numShards-1)]
}

// bump invalidates every cached snapshot: cluster state changed.
func (c *candCache) bump() { c.epoch.Add(1) }

// get returns the cached candidate snapshot for (service, zone) if it
// is both within its TTL and from the current epoch. The returned slice
// is shared and must be treated as read-only (the schedulers copy
// before sorting).
func (c *candCache) get(service, zone string, now time.Time) ([]Candidate, bool) {
	if c.ttl <= 0 {
		return nil, false
	}
	key := candKey{service: service, zone: zone}
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok || e.epoch != c.epoch.Load() || !now.Before(e.expires) {
		s.mu.Unlock()
		return nil, false
	}
	cands := e.candidates
	s.mu.Unlock()
	return cands, true
}

// put stores a freshly gathered snapshot. The epoch is re-read at store
// time: a concurrent bump between gather and put leaves the entry
// already stale, which is the safe direction.
func (c *candCache) put(service, zone string, now time.Time, cands []Candidate) {
	if c.ttl <= 0 {
		return
	}
	key := candKey{service: service, zone: zone}
	s := c.shardFor(key)
	s.mu.Lock()
	s.m[key] = &candEntry{
		epoch:      c.epoch.Load(),
		expires:    now.Add(c.ttl),
		candidates: cands,
	}
	s.mu.Unlock()
}
