package core

import "time"

// breakerState is one cluster's circuit breaker. The breaker watches
// whole-deployment outcomes: BreakerThreshold consecutive failures trip
// it, a tripped cluster is skipped during candidate gathering until
// BreakerCooldown passes, and the first deployment after the cooldown
// is the half-open probe — success closes the breaker, failure re-opens
// it for another cooldown.
type breakerState struct {
	consecFails int
	tripped     bool
	openUntil   time.Time
}

// breakerAllows reports whether the cluster may receive deployments
// right now. An expired cooldown admits the half-open probe.
func (c *Controller) breakerAllows(clusterName string) bool {
	if c.cfg.BreakerThreshold <= 0 {
		return true
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	st, ok := c.breakers[clusterName]
	if !ok || !st.tripped {
		return true
	}
	return !c.clk.Now().Before(st.openUntil)
}

// breakerRecord feeds one deployment outcome into the cluster's breaker.
// Trips and recoveries change which clusters candidate gathering may
// use, so both invalidate the candidate snapshot cache.
func (c *Controller) breakerRecord(clusterName string, success bool) {
	if c.cfg.BreakerThreshold <= 0 {
		return
	}
	c.brMu.Lock()
	defer c.brMu.Unlock()
	st, ok := c.breakers[clusterName]
	if !ok {
		st = &breakerState{}
		c.breakers[clusterName] = st
	}
	if success {
		if st.tripped {
			st.tripped = false
			c.stats.breakerRecoveries.Add(1)
			c.cands.bump()
		}
		st.consecFails = 0
		return
	}
	st.consecFails++
	switch {
	case st.tripped:
		// Failed half-open probe: another cooldown.
		st.openUntil = c.clk.Now().Add(c.cfg.BreakerCooldown)
	case st.consecFails >= c.cfg.BreakerThreshold:
		st.tripped = true
		st.openUntil = c.clk.Now().Add(c.cfg.BreakerCooldown)
		c.stats.breakerTrips.Add(1)
		c.cands.bump()
	}
}
