// Package core implements the paper's contribution: the SDN controller
// for transparent access to edge services with distributed on-demand
// deployment. It contains the FlowMemory, the Dispatcher (Fig. 7), the
// pluggable Global/Local Scheduler mechanism, the service-definition
// annotation engine (§V), port-readiness probing, and idle scale-down.
package core

import (
	"fmt"
	"strings"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/yaml"
)

// EdgeServiceLabel is the label the controller adds to every deployment
// "to be able to address and query edge services in the cluster
// distinctly" (§V).
const EdgeServiceLabel = "edge.service"

// AnnotateOptions configure the annotation engine.
type AnnotateOptions struct {
	// UniqueName is the worldwide-unique service name to assign; it is
	// mandatory ("something developers may easily forget").
	UniqueName string
	// ServicePort is the exposed port of the generated Service; it
	// defaults to the first container port.
	ServicePort uint16
	// SchedulerName is the custom Local Scheduler configured for the
	// target edge cluster; empty leaves the cluster default.
	SchedulerName string
}

// Annotated is the output of the annotation engine.
type Annotated struct {
	// DeploymentYAML is the completed Kubernetes Deployment definition.
	DeploymentYAML string
	// ServiceYAML is the (generated or passed-through) Service
	// definition.
	ServiceYAML string
	// Spec is the cluster-agnostic spec derived from the definitions —
	// the same definition drives Docker and Kubernetes clusters.
	Spec cluster.Spec
}

// UniqueNameFor derives the worldwide-unique service name from the
// registered public address.
func UniqueNameFor(addr netem.HostPort) string {
	return "edge-" + strings.ReplaceAll(addr.IP.String(), ".", "-") + fmt.Sprintf("-%d", addr.Port)
}

// Annotate completes a developer-provided service definition: it sets
// the unique name, adds the required matchLabels plus the edge.service
// label, forces replicas to zero ("scale to zero"), sets the
// schedulerName when a Local Scheduler is configured, and generates the
// Kubernetes Service definition unless the developer already included
// one. Only the image name is mandatory in the input.
func Annotate(definition string, opts AnnotateOptions) (*Annotated, error) {
	if opts.UniqueName == "" {
		return nil, fmt.Errorf("core: annotation requires a unique service name")
	}
	docs, err := yaml.UnmarshalAll(definition)
	if err != nil {
		return nil, fmt.Errorf("core: service definition: %w", err)
	}
	var deployment map[string]any
	var serviceDoc map[string]any
	for _, doc := range docs {
		m, ok := doc.(map[string]any)
		if !ok {
			continue
		}
		switch m["kind"] {
		case "Service":
			serviceDoc = m
		default:
			// A Deployment, possibly with kind omitted in a lean file.
			if deployment == nil {
				deployment = m
			}
		}
	}
	if deployment == nil {
		return nil, fmt.Errorf("core: service definition contains no Deployment")
	}

	name := opts.UniqueName
	labels := map[string]any{
		"app":            name,
		EdgeServiceLabel: name,
	}

	// Header and metadata.
	setDefault(deployment, "apiVersion", "apps/v1")
	deployment["kind"] = "Deployment"
	meta := ensureMap(deployment, "metadata")
	meta["name"] = name
	mergeLabels(ensureMap(meta, "labels"), labels)

	spec := ensureMap(deployment, "spec")
	// Scale to zero by default.
	spec["replicas"] = int64(0)
	mergeLabels(ensureMap(ensureMap(spec, "selector"), "matchLabels"), labels)

	template := ensureMap(spec, "template")
	mergeLabels(ensureMap(ensureMap(template, "metadata"), "labels"), labels)
	podSpec := ensureMap(template, "spec")
	if opts.SchedulerName != "" {
		podSpec["schedulerName"] = opts.SchedulerName
	}

	// Containers: image is the one mandatory field.
	containersAny, ok := podSpec["containers"].([]any)
	if !ok || len(containersAny) == 0 {
		return nil, fmt.Errorf("core: service %s: definition has no containers", name)
	}
	var defs []cluster.ContainerDef
	for i, c := range containersAny {
		cm, ok := c.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("core: service %s: container %d is not a mapping", name, i)
		}
		image, _ := cm["image"].(string)
		if image == "" {
			return nil, fmt.Errorf("core: service %s: container %d is missing the mandatory image", name, i)
		}
		cname, _ := cm["name"].(string)
		if cname == "" {
			cname = fmt.Sprintf("c%d", i)
			cm["name"] = cname
		}
		var port uint16
		if ports, ok := cm["ports"].([]any); ok && len(ports) > 0 {
			if pm, ok := ports[0].(map[string]any); ok {
				if cp, ok := pm["containerPort"].(int64); ok && cp > 0 && cp < 65536 {
					port = uint16(cp)
				}
			}
		}
		defs = append(defs, cluster.ContainerDef{Name: cname, Image: image, Port: port})
	}

	// Volumes.
	var volumes []string
	if vs, ok := podSpec["volumes"].([]any); ok {
		for _, v := range vs {
			if vm, ok := v.(map[string]any); ok {
				if vn, _ := vm["name"].(string); vn != "" {
					volumes = append(volumes, vn)
				}
			}
		}
	}

	var targetPort uint16
	for _, d := range defs {
		if d.Port != 0 {
			targetPort = d.Port
			break
		}
	}
	if targetPort == 0 {
		return nil, fmt.Errorf("core: service %s: no container exposes a port", name)
	}
	servicePort := opts.ServicePort
	if servicePort == 0 {
		servicePort = targetPort
	}

	// Generate the Service definition unless the developer included one.
	if serviceDoc == nil {
		serviceDoc = map[string]any{
			"apiVersion": "v1",
			"kind":       "Service",
			"metadata": map[string]any{
				"name":   name,
				"labels": copyAnyMap(labels),
			},
			"spec": map[string]any{
				"selector": copyAnyMap(labels),
				"ports": []any{map[string]any{
					"port":       int64(servicePort),
					"targetPort": int64(targetPort),
					"protocol":   "TCP",
				}},
			},
		}
	} else {
		smeta := ensureMap(serviceDoc, "metadata")
		smeta["name"] = name
		mergeLabels(ensureMap(smeta, "labels"), labels)
		mergeLabels(ensureMap(ensureMap(serviceDoc, "spec"), "selector"), labels)
	}

	stringLabels := map[string]string{"app": name, EdgeServiceLabel: name}
	out := &Annotated{
		DeploymentYAML: yaml.Marshal(deployment),
		ServiceYAML:    yaml.Marshal(serviceDoc),
		Spec: cluster.Spec{
			Name:          name,
			Labels:        stringLabels,
			Containers:    defs,
			Volumes:       volumes,
			SchedulerName: opts.SchedulerName,
			ServicePort:   servicePort,
		},
	}
	if err := out.Spec.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ensureMap returns m[key] as a mapping, creating it when absent.
func ensureMap(m map[string]any, key string) map[string]any {
	if child, ok := m[key].(map[string]any); ok {
		return child
	}
	child := map[string]any{}
	m[key] = child
	return child
}

func setDefault(m map[string]any, key string, val any) {
	if _, ok := m[key]; !ok {
		m[key] = val
	}
}

func mergeLabels(dst map[string]any, labels map[string]any) {
	for k, v := range labels {
		dst[k] = v
	}
}

func copyAnyMap(in map[string]any) map[string]any {
	out := make(map[string]any, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
