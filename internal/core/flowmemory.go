package core

import (
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// FlowMemory mirrors the redirect flows the controller installed in the
// switches. It lets the controller keep the switch-side idle timeouts
// low: when a flow expires in the switch but the same client asks for
// the same service again, the mapping is re-installed from memory
// without calling the Scheduler. Memorized flows carry their own,
// longer idle timeout whose expiry additionally drives automatic
// scale-down of idle services (§V).
type FlowMemory struct {
	clk vclock.Clock
	// Idle is the memory-side idle timeout.
	Idle time.Duration
	// OnServiceIdle, if set, fires when the last memorized flow of a
	// service expires — the scale-down hook.
	OnServiceIdle func(service string)

	mu      sync.Mutex
	entries map[flowKey]*memEntry
	// perService counts live entries per service name.
	perService map[string]int
}

type flowKey struct {
	client  netem.IP
	service netem.HostPort
}

type memEntry struct {
	instance cluster.Instance
	lastUsed time.Time
	removed  bool
	svcName  string
}

// NewFlowMemory returns an empty memory with the given idle timeout.
func NewFlowMemory(clk vclock.Clock, idle time.Duration) *FlowMemory {
	return &FlowMemory{
		clk:        clk,
		Idle:       idle,
		entries:    make(map[flowKey]*memEntry),
		perService: make(map[string]int),
	}
}

// Lookup returns the memorized instance for (client, service) and
// refreshes its idle timer.
func (fm *FlowMemory) Lookup(client netem.IP, service netem.HostPort) (cluster.Instance, bool) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	e, ok := fm.entries[flowKey{client, service}]
	if !ok || e.removed {
		return cluster.Instance{}, false
	}
	e.lastUsed = fm.clk.Now()
	return e.instance, true
}

// Remember stores (or replaces) the mapping for (client, service).
func (fm *FlowMemory) Remember(client netem.IP, service netem.HostPort, svcName string, inst cluster.Instance) {
	key := flowKey{client, service}
	fm.mu.Lock()
	if old, ok := fm.entries[key]; ok && !old.removed {
		old.instance = inst
		old.lastUsed = fm.clk.Now()
		fm.mu.Unlock()
		return
	}
	e := &memEntry{instance: inst, lastUsed: fm.clk.Now(), svcName: svcName}
	fm.entries[key] = e
	fm.perService[svcName]++
	fm.mu.Unlock()
	if fm.Idle > 0 {
		fm.scheduleExpiry(key, e, fm.Idle)
	}
}

// Touch refreshes the idle timer of (client, service); the controller
// calls it when the switch reports a removed flow, since flow removal
// implies traffic existed until a moment ago.
func (fm *FlowMemory) Touch(client netem.IP, service netem.HostPort) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if e, ok := fm.entries[flowKey{client, service}]; ok && !e.removed {
		e.lastUsed = fm.clk.Now()
	}
}

// Forget removes the mapping immediately (used when redirecting future
// requests to a better instance).
func (fm *FlowMemory) Forget(client netem.IP, service netem.HostPort) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.dropLocked(flowKey{client, service})
}

// ForgetService drops every mapping of one service that does not point
// at keep (pass an empty instance to drop all).
func (fm *FlowMemory) ForgetService(svcName string, keep cluster.Instance) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	for key, e := range fm.entries {
		if e.svcName == svcName && !e.removed && e.instance != keep {
			fm.dropLocked(key)
		}
	}
}

// dropLocked removes one entry; callers hold fm.mu. The service-idle
// hook never fires from explicit removal, only from idle expiry.
func (fm *FlowMemory) dropLocked(key flowKey) {
	e, ok := fm.entries[key]
	if !ok || e.removed {
		return
	}
	e.removed = true
	delete(fm.entries, key)
	fm.perService[e.svcName]--
	if fm.perService[e.svcName] <= 0 {
		delete(fm.perService, e.svcName)
	}
}

// scheduleExpiry arms the idle timer for one entry, re-arming while the
// entry keeps being touched.
func (fm *FlowMemory) scheduleExpiry(key flowKey, e *memEntry, wait time.Duration) {
	fm.clk.AfterFunc(wait, func() {
		fm.mu.Lock()
		if e.removed {
			fm.mu.Unlock()
			return
		}
		silent := fm.clk.Since(e.lastUsed)
		if silent < fm.Idle {
			fm.mu.Unlock()
			fm.scheduleExpiry(key, e, fm.Idle-silent)
			return
		}
		fm.dropLocked(key)
		idle := fm.perService[e.svcName] == 0
		hook := fm.OnServiceIdle
		fm.mu.Unlock()
		if idle && hook != nil {
			hook(e.svcName)
		}
	})
}

// Entry is one memorized flow, as exposed to the health prober.
type Entry struct {
	Client   netem.IP
	Service  netem.HostPort
	SvcName  string
	Instance cluster.Instance
}

// Entries snapshots all memorized flows.
func (fm *FlowMemory) Entries() []Entry {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	out := make([]Entry, 0, len(fm.entries))
	for key, e := range fm.entries {
		out = append(out, Entry{
			Client:   key.client,
			Service:  key.service,
			SvcName:  e.svcName,
			Instance: e.instance,
		})
	}
	return out
}

// Len reports the number of memorized flows.
func (fm *FlowMemory) Len() int {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return len(fm.entries)
}

// ServiceFlows reports the number of memorized flows for one service.
func (fm *FlowMemory) ServiceFlows(svcName string) int {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return fm.perService[svcName]
}
