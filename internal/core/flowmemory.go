package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// FlowMemory mirrors the redirect flows the controller installed in the
// switches. It lets the controller keep the switch-side idle timeouts
// low: when a flow expires in the switch but the same client asks for
// the same service again, the mapping is re-installed from memory
// without calling the Scheduler. Memorized flows carry their own,
// longer idle timeout whose expiry additionally drives automatic
// scale-down of idle services (§V).
//
// The memory is sharded by flow key so concurrent packet-ins from
// distinct clients never contend on one lock, and idle expiry is a
// coarse per-shard sweep — one armed timer per shard at the earliest
// pending deadline — instead of one timer per memorized flow. At
// millions of entries that is 64 timers instead of millions, while the
// observable expiry instants are identical: a sweep fires exactly at
// the earliest lastUsed+Idle of its shard and re-arms for the next.
type FlowMemory struct {
	clk vclock.Clock
	// Idle is the memory-side idle timeout.
	Idle time.Duration
	// OnServiceIdle, if set, fires when the last memorized flow of a
	// service expires — the scale-down hook.
	OnServiceIdle func(service string)

	// seq orders entries by arrival so expiry side effects (the
	// service-idle hooks) fire in a deterministic order within a sweep,
	// matching the per-entry-timer ordering this design replaced.
	seq atomic.Uint64

	shards [numShards]fmShard
	counts [numShards]fmCountShard
}

type flowKey struct {
	client  netem.IP
	service netem.HostPort
}

type memEntry struct {
	instance cluster.Instance
	lastUsed time.Time
	removed  bool
	svcName  string
	seq      uint64
}

// fmShard is one partition of the memorized flows with its own sweep
// timer state.
type fmShard struct {
	mu      sync.Mutex
	entries map[flowKey]*memEntry
	// sweepArmed reports whether an expiry sweep is scheduled; sweepAt
	// is its deadline (the earliest lastUsed+Idle at arm time).
	sweepArmed bool
}

// fmCountShard is one partition of the per-service live-entry counts,
// sharded by service-name hash independently of the flow shards.
type fmCountShard struct {
	mu     sync.Mutex
	counts map[string]int
}

// NewFlowMemory returns an empty memory with the given idle timeout.
func NewFlowMemory(clk vclock.Clock, idle time.Duration) *FlowMemory {
	fm := &FlowMemory{clk: clk, Idle: idle}
	for i := range fm.shards {
		fm.shards[i].entries = make(map[flowKey]*memEntry)
	}
	for i := range fm.counts {
		fm.counts[i].counts = make(map[string]int)
	}
	return fm
}

func (fm *FlowMemory) shardFor(key flowKey) *fmShard {
	return &fm.shards[hashFlowKey(key)&(numShards-1)]
}

func (fm *FlowMemory) countShardFor(svcName string) *fmCountShard {
	return &fm.counts[fnvString(fnvOffset64, svcName)&(numShards-1)]
}

// addCount increments a service's live-entry count.
func (fm *FlowMemory) addCount(svcName string) {
	cs := fm.countShardFor(svcName)
	cs.mu.Lock()
	cs.counts[svcName]++
	cs.mu.Unlock()
}

// dropCount decrements a service's live-entry count and reports whether
// it reached zero (the last memorized flow of the service is gone).
func (fm *FlowMemory) dropCount(svcName string) (idle bool) {
	cs := fm.countShardFor(svcName)
	cs.mu.Lock()
	cs.counts[svcName]--
	if cs.counts[svcName] <= 0 {
		delete(cs.counts, svcName)
		idle = true
	}
	cs.mu.Unlock()
	return idle
}

// Lookup returns the memorized instance for (client, service) and
// refreshes its idle timer.
func (fm *FlowMemory) Lookup(client netem.IP, service netem.HostPort) (cluster.Instance, bool) {
	key := flowKey{client, service}
	s := fm.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok || e.removed {
		return cluster.Instance{}, false
	}
	e.lastUsed = fm.clk.Now()
	return e.instance, true
}

// Remember stores (or replaces) the mapping for (client, service).
// Replacing an entry registered under a different service name re-tags
// it, so the per-service counts driving idle scale-down stay exact.
func (fm *FlowMemory) Remember(client netem.IP, service netem.HostPort, svcName string, inst cluster.Instance) {
	key := flowKey{client, service}
	s := fm.shardFor(key)
	// Count first, insert second: a concurrent sweep or ForgetService
	// can then never observe an entry whose count is missing, so the
	// per-service count can underflow neither to a spurious zero (a
	// lost-entry idle hook) nor below the live-entry total.
	fm.addCount(svcName)
	s.mu.Lock()
	if old, ok := s.entries[key]; ok && !old.removed {
		old.instance = inst
		old.lastUsed = fm.clk.Now()
		oldName := old.svcName
		old.svcName = svcName
		s.mu.Unlock()
		fm.dropCount(oldName)
		return
	}
	e := &memEntry{
		instance: inst,
		lastUsed: fm.clk.Now(),
		svcName:  svcName,
		seq:      fm.seq.Add(1),
	}
	s.entries[key] = e
	if fm.Idle > 0 && !s.sweepArmed {
		// Arm the shard sweep for this entry's deadline. An armed sweep
		// is always at or before every live deadline (deadlines only
		// move later via touches), so it never needs re-arming here.
		s.sweepArmed = true
		fm.clk.AfterFunc(fm.Idle, func() { fm.sweep(s) })
	}
	s.mu.Unlock()
}

// sweep drops every expired entry of one shard, fires the service-idle
// hooks of services whose last entry went, and re-arms the shard timer
// for the earliest remaining deadline.
func (fm *FlowMemory) sweep(s *fmShard) {
	s.mu.Lock()
	s.sweepArmed = false
	now := fm.clk.Now()
	var expired []*memEntry
	var expiredKeys []flowKey
	earliest := time.Time{}
	for key, e := range s.entries {
		if now.Sub(e.lastUsed) >= fm.Idle {
			expired = append(expired, e)
			expiredKeys = append(expiredKeys, key)
			continue
		}
		deadline := e.lastUsed.Add(fm.Idle)
		if earliest.IsZero() || deadline.Before(earliest) {
			earliest = deadline
		}
	}
	// Arrival order makes the drop (and hence hook) order deterministic
	// regardless of map iteration.
	sort.Sort(&entryOrder{entries: expired, keys: expiredKeys})
	var idled []string
	for i, e := range expired {
		e.removed = true
		delete(s.entries, expiredKeys[i])
		if fm.dropCount(e.svcName) {
			idled = append(idled, e.svcName)
		}
	}
	if len(s.entries) > 0 {
		s.sweepArmed = true
		fm.clk.AfterFunc(earliest.Sub(now), func() { fm.sweep(s) })
	}
	hook := fm.OnServiceIdle
	s.mu.Unlock()
	if hook != nil {
		for _, name := range idled {
			hook(name)
		}
	}
}

// entryOrder sorts parallel expired-entry slices by arrival sequence.
type entryOrder struct {
	entries []*memEntry
	keys    []flowKey
}

func (o *entryOrder) Len() int           { return len(o.entries) }
func (o *entryOrder) Less(i, j int) bool { return o.entries[i].seq < o.entries[j].seq }
func (o *entryOrder) Swap(i, j int) {
	o.entries[i], o.entries[j] = o.entries[j], o.entries[i]
	o.keys[i], o.keys[j] = o.keys[j], o.keys[i]
}

// Touch refreshes the idle timer of (client, service); the controller
// calls it when the switch reports a removed flow, since flow removal
// implies traffic existed until a moment ago.
func (fm *FlowMemory) Touch(client netem.IP, service netem.HostPort) {
	key := flowKey{client, service}
	s := fm.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok && !e.removed {
		e.lastUsed = fm.clk.Now()
	}
	s.mu.Unlock()
}

// Forget removes the mapping immediately (used when redirecting future
// requests to a better instance). The service-idle hook never fires
// from explicit removal, only from idle expiry.
func (fm *FlowMemory) Forget(client netem.IP, service netem.HostPort) {
	key := flowKey{client, service}
	s := fm.shardFor(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok || e.removed {
		s.mu.Unlock()
		return
	}
	e.removed = true
	delete(s.entries, key)
	s.mu.Unlock()
	fm.dropCount(e.svcName)
}

// ForgetService drops every mapping of one service that does not point
// at keep (pass an empty instance to drop all).
func (fm *FlowMemory) ForgetService(svcName string, keep cluster.Instance) {
	for i := range fm.shards {
		s := &fm.shards[i]
		var dropped []*memEntry
		s.mu.Lock()
		for key, e := range s.entries {
			if e.svcName == svcName && !e.removed && e.instance != keep {
				e.removed = true
				delete(s.entries, key)
				dropped = append(dropped, e)
			}
		}
		s.mu.Unlock()
		for _, e := range dropped {
			fm.dropCount(e.svcName)
		}
	}
}

// Entry is one memorized flow, as exposed to the health prober.
type Entry struct {
	Client   netem.IP
	Service  netem.HostPort
	SvcName  string
	Instance cluster.Instance
}

// Entries snapshots all memorized flows.
func (fm *FlowMemory) Entries() []Entry {
	var out []Entry
	for i := range fm.shards {
		s := &fm.shards[i]
		s.mu.Lock()
		for key, e := range s.entries {
			out = append(out, Entry{
				Client:   key.client,
				Service:  key.service,
				SvcName:  e.svcName,
				Instance: e.instance,
			})
		}
		s.mu.Unlock()
	}
	return out
}

// EntriesFor snapshots the memorized flows of one client, ordered by
// service address. The handover manager re-steers from this list, and
// the fixed order is what keeps flow installation — and hence the whole
// run — deterministic regardless of shard iteration.
func (fm *FlowMemory) EntriesFor(client netem.IP) []Entry {
	var out []Entry
	for i := range fm.shards {
		s := &fm.shards[i]
		s.mu.Lock()
		for key, e := range s.entries {
			if key.client != client || e.removed {
				continue
			}
			out = append(out, Entry{
				Client:   key.client,
				Service:  key.service,
				SvcName:  e.svcName,
				Instance: e.instance,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service.IP != out[j].Service.IP {
			return out[i].Service.IP < out[j].Service.IP
		}
		return out[i].Service.Port < out[j].Service.Port
	})
	return out
}

// Len reports the number of memorized flows.
func (fm *FlowMemory) Len() int {
	n := 0
	for i := range fm.shards {
		s := &fm.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// ServiceFlows reports the number of memorized flows for one service.
func (fm *FlowMemory) ServiceFlows(svcName string) int {
	cs := fm.countShardFor(svcName)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.counts[svcName]
}
