package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/cluster"
	"github.com/c3lab/transparentedge/internal/netem"
)

// Candidate is the dispatcher's view of one cluster for one service:
// the Dispatcher "gathers a list of existing and running instances of
// the requested service" and hands it to the Scheduler (Fig. 7).
type Candidate struct {
	Cluster cluster.Cluster
	// Latency is the effective proximity of the cluster from the
	// client's ingress zone: the cluster's base Location latency, or
	// the per-zone override the Dispatcher applied from the client's
	// tracked location.
	Latency time.Duration
	// Instances are the ready instances in this cluster.
	Instances []cluster.Instance
	// Created reports whether the service objects already exist here.
	Created bool
	// HasImages reports whether the images are cached here.
	HasImages bool
	// CanHost reports whether the cluster could deploy this service at
	// all (a serverless runtime rejects container services; the cloud
	// deploys nothing).
	CanHost bool
}

// Decision is the Global Scheduler's verdict (§IV-B): FAST serves the
// current request, BEST is where future requests should go. BEST is nil
// when equal to FAST; a nil FAST forwards the request toward the cloud.
type Decision struct {
	// Fast is the cluster serving the current request; nil means
	// "forward toward the cloud".
	Fast cluster.Cluster
	// FastInstance, when non-nil, is an already-running instance in
	// Fast, so the request needs no deployment at all.
	FastInstance *cluster.Instance
	// Best, when non-nil and different from Fast, is deployed in the
	// background — on-demand deployment *without* waiting.
	Best cluster.Cluster
	// Fallbacks ranks the remaining deployable clusters (best first,
	// excluding Fast) for the dispatcher's failover: when deploying on
	// Fast fails, the next-best candidate is tried before the request
	// surrenders to the cloud.
	Fallbacks []cluster.Cluster
}

// GlobalScheduler chooses the edge cluster (the paper's Global
// Scheduler). Implementations are registered by name and loaded from
// the controller configuration.
//
// The candidates slice may be a cached snapshot shared by concurrent
// packet-ins (the dispatcher's candidate cache): implementations must
// treat it as read-only and copy before sorting or mutating.
type GlobalScheduler interface {
	Schedule(service *Service, client netem.IP, candidates []Candidate) Decision
}

// schedulerRegistry implements the "dynamically loaded" scheduler
// configuration: implementations self-register by name and the
// controller instantiates the configured one at start-up.
var (
	schedulerMu       sync.Mutex
	schedulerRegistry = map[string]func(SchedulerConfig) GlobalScheduler{}
)

// RegisterScheduler makes a Global Scheduler implementation loadable by
// name. It panics on duplicates, like database/sql drivers.
func RegisterScheduler(name string, factory func(SchedulerConfig) GlobalScheduler) {
	schedulerMu.Lock()
	defer schedulerMu.Unlock()
	if _, dup := schedulerRegistry[name]; dup {
		panic(fmt.Sprintf("core: scheduler %q registered twice", name))
	}
	schedulerRegistry[name] = factory
}

// LoadScheduler instantiates a registered Global Scheduler.
func LoadScheduler(name string, cfg SchedulerConfig) (GlobalScheduler, error) {
	schedulerMu.Lock()
	factory, ok := schedulerRegistry[name]
	schedulerMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown global scheduler %q", name)
	}
	return factory(cfg), nil
}

// SchedulerNames lists the registered Global Scheduler names, sorted.
func SchedulerNames() []string {
	schedulerMu.Lock()
	defer schedulerMu.Unlock()
	names := make([]string, 0, len(schedulerRegistry))
	for n := range schedulerRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WaitPolicy controls when the FAST choice may hold the client's
// request for an on-demand deployment.
type WaitPolicy int

// Wait policies.
const (
	// WaitAlways holds the request whenever no instance runs anywhere
	// (on-demand deployment with waiting).
	WaitAlways WaitPolicy = iota
	// WaitNever always serves the first request from a running instance
	// or the cloud while deploying in the background.
	WaitNever
	// WaitBounded holds the request only when the estimated deployment
	// time is below MaxWait.
	WaitBounded
)

// SchedulerConfig parameterizes the built-in Global Schedulers.
type SchedulerConfig struct {
	Wait WaitPolicy
	// MaxWait bounds the acceptable hold time under WaitBounded.
	MaxWait time.Duration
	// EstimateDeploy estimates the deployment duration for a service on
	// a cluster (used by WaitBounded); nil assumes instant.
	EstimateDeploy func(service *Service, c cluster.Cluster) time.Duration
}

// Built-in scheduler names.
const (
	SchedulerProximity = "proximity"
	SchedulerCloudOnly = "cloud-only"
	SchedulerHybrid    = "hybrid"
)

func init() {
	RegisterScheduler(SchedulerProximity, func(cfg SchedulerConfig) GlobalScheduler {
		return &ProximityScheduler{Config: cfg}
	})
	RegisterScheduler(SchedulerCloudOnly, func(cfg SchedulerConfig) GlobalScheduler {
		return &CloudOnlyScheduler{}
	})
	RegisterScheduler(SchedulerHybrid, func(cfg SchedulerConfig) GlobalScheduler {
		return &HybridScheduler{Config: cfg}
	})
}

// ProximityScheduler is the default Global Scheduler: the optimal edge
// is the lowest-latency deployable cluster; FAST is a running instance
// when one exists (preferring the optimal edge), otherwise the policy
// decides between holding the request (waiting) and the cloud.
type ProximityScheduler struct {
	Config SchedulerConfig
}

// Schedule implements GlobalScheduler.
func (p *ProximityScheduler) Schedule(service *Service, client netem.IP, candidates []Candidate) Decision {
	sorted := append([]Candidate(nil), candidates...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Latency < sorted[j].Latency
	})

	// The optimal edge: nearest cluster able to host this service.
	var best *Candidate
	for i := range sorted {
		if sorted[i].CanHost {
			best = &sorted[i]
			break
		}
	}
	// Nearest running *edge* instance. The cloud origin always exists
	// but is the explicit fallback ("If FAST is empty, the request is
	// forwarded toward the cloud"), not a FAST candidate — and it is
	// recognizable by CanHost being false while still having instances.
	var running *Candidate
	for i := range sorted {
		if sorted[i].CanHost && len(sorted[i].Instances) > 0 {
			running = &sorted[i]
			break
		}
	}

	switch {
	case best == nil && running == nil:
		return Decision{} // nothing anywhere: toward the cloud
	case best == nil:
		inst := running.Instances[0]
		return Decision{Fast: running.Cluster, FastInstance: &inst}
	case running != nil && running.Cluster == best.Cluster:
		// Optimal edge already serves: FAST = BEST, nothing to deploy.
		inst := running.Instances[0]
		return Decision{Fast: best.Cluster, FastInstance: &inst}
	case running != nil:
		// A farther instance serves the first request while the optimal
		// edge deploys in the background (deployment without waiting).
		inst := running.Instances[0]
		return Decision{Fast: running.Cluster, FastInstance: &inst, Best: best.Cluster}
	}

	// No instance anywhere: wait or fall back to the cloud.
	wait := true
	switch p.Config.Wait {
	case WaitNever:
		wait = false
	case WaitBounded:
		if p.Config.EstimateDeploy != nil &&
			p.Config.EstimateDeploy(service, best.Cluster) > p.Config.MaxWait {
			wait = false
		}
	}
	if wait {
		return Decision{Fast: best.Cluster, Fallbacks: fallbacksAfter(sorted, best.Cluster)}
	}
	// Serve from the cloud, deploy at the optimal edge in parallel.
	return Decision{Best: best.Cluster}
}

// fallbacksAfter lists the deployable clusters of a latency-sorted
// candidate slice, best first, excluding the primary choice.
func fallbacksAfter(sorted []Candidate, primary cluster.Cluster) []cluster.Cluster {
	out := make([]cluster.Cluster, 0, len(sorted))
	for i := range sorted {
		if sorted[i].CanHost && sorted[i].Cluster != primary {
			out = append(out, sorted[i].Cluster)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// CloudOnlyScheduler is the baseline without edge computing: every
// request is forwarded toward the cloud and nothing is deployed.
type CloudOnlyScheduler struct{}

// Schedule implements GlobalScheduler.
func (CloudOnlyScheduler) Schedule(*Service, netem.IP, []Candidate) Decision {
	return Decision{}
}

// HybridScheduler implements the combination proposed in the paper's
// discussion (§VII): "First, we launch an edge service via Docker to
// respond faster to the initial request. Then, we deploy the same
// service to Kubernetes for future requests" — fast initial response
// plus automated cluster management.
type HybridScheduler struct {
	Config SchedulerConfig
}

// Schedule implements GlobalScheduler.
func (h *HybridScheduler) Schedule(service *Service, client netem.IP, candidates []Candidate) Decision {
	var dockerC, kubeC, running *Candidate
	for i := range candidates {
		c := &candidates[i]
		if !c.CanHost {
			continue
		}
		switch c.Cluster.Kind() {
		case cluster.Docker:
			if dockerC == nil || c.Latency < dockerC.Latency {
				dockerC = c
			}
		case cluster.Kubernetes:
			if kubeC == nil || c.Latency < kubeC.Latency {
				kubeC = c
			}
		}
		if len(c.Instances) > 0 {
			if running == nil || c.Latency < running.Latency {
				running = c
			}
		}
	}
	switch {
	case running != nil && kubeC != nil && running.Cluster != kubeC.Cluster && len(kubeC.Instances) == 0:
		// Docker (or another edge) answers now; Kubernetes takes over
		// for future requests once its instance runs.
		inst := running.Instances[0]
		return Decision{Fast: running.Cluster, FastInstance: &inst, Best: kubeC.Cluster}
	case running != nil:
		inst := running.Instances[0]
		return Decision{Fast: running.Cluster, FastInstance: &inst}
	case dockerC != nil && kubeC != nil:
		// Nothing runs yet: hold the request for the fast Docker launch
		// and deploy to Kubernetes in the background.
		return Decision{Fast: dockerC.Cluster, Best: kubeC.Cluster,
			Fallbacks: fallbacksAfter(byLatency(candidates), dockerC.Cluster)}
	case dockerC != nil:
		return Decision{Fast: dockerC.Cluster, Fallbacks: fallbacksAfter(byLatency(candidates), dockerC.Cluster)}
	case kubeC != nil:
		return Decision{Fast: kubeC.Cluster, Fallbacks: fallbacksAfter(byLatency(candidates), kubeC.Cluster)}
	default:
		return Decision{}
	}
}

// byLatency returns a latency-sorted copy of candidates.
func byLatency(candidates []Candidate) []Candidate {
	sorted := append([]Candidate(nil), candidates...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Latency < sorted[j].Latency
	})
	return sorted
}
