package core

import (
	"time"

	"github.com/c3lab/transparentedge/internal/metrics"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/openflow"
)

// This file is the controller half of client mobility: when a client's
// attachment point changes (the netem half is Network.Rehome), the
// handover manager re-steers the client's rewrite flows from the old
// gNB's switch to the new one, make-before-break:
//
//  1. make — install the full redirect set at the NEW switch first, in
//     one ApplyBundle (bundles bypass control-channel fault injection,
//     so a repair never races a lossy channel);
//  2. retag — move the client's tracked location to the new switch, so
//     the reconciler's desired state and future packet-ins follow it;
//  3. break — strict-delete the same set from the OLD switch, again as
//     a bundle.
//
// The ordering is what keeps sessions alive: from the instant the
// client's traffic arrives at the new gNB, the rewrite rules are
// already there, and until the break step the old switch still serves
// any packet in flight through it. A window where BOTH switches hold
// the rules is harmless — the rules rewrite, they do not duplicate.
// The reverse window (neither switch holding them) never opens, except
// when the old switch's table disagrees with the controller's view
// (e.g. it restarted mid-handover); the strict-delete detects exactly
// that, and the handover is counted as a continuity break.

// HandoverReport summarizes one processed handover.
type HandoverReport struct {
	// Client is the moving client.
	Client netem.IP
	// From and To name the old and new ingress switches; From is empty
	// when the client had no tracked location (first attach).
	From, To string
	// ReSteered is the number of client↔service mappings whose flows
	// moved to the new switch.
	ReSteered int
	// Migrated is the number of service migrations triggered (only with
	// Config.MigrateOnHandover).
	Migrated int
	// ContinuityBreak reports that the old switch held fewer flows than
	// the controller expected to delete.
	ContinuityBreak bool
	// Latency is the control-plane duration of the handover.
	Latency time.Duration
}

// Handover processes an attach-point change: client is now behind
// switch to, entering on inPort. It re-steers every memorized mapping
// of the client to the new switch (make-before-break, see the file
// comment), updates the tracked client location, and — with
// MigrateOnHandover — checks whether the service should follow the
// client to the new zone's optimal edge.
//
// Calling Handover for the switch the client is already behind is a
// no-op (the in-port is refreshed); a client with no tracked location
// is simply attached, with nothing to break.
func (c *Controller) Handover(client netem.IP, to *openflow.Switch, inPort int) HandoverReport {
	start := c.clk.Now()
	rep := HandoverReport{Client: client, To: to.DeviceName()}

	var from *openflow.Switch
	if loc, known := c.clients.location(client); known {
		if loc.Switch == to.DeviceName() {
			// Same attachment point: refresh the in-port and stop.
			c.clients.track(client, ClientLocation{
				Switch: loc.Switch, InPort: inPort, LastSeen: c.clk.Now(),
			})
			rep.From = loc.Switch
			return rep
		}
		rep.From = loc.Switch
		for _, sw := range c.switches {
			if sw.DeviceName() == loc.Switch {
				from = sw
				break
			}
		}
	}

	// The client's live mappings, in deterministic service order, with
	// the exact specs the dispatcher would install for them.
	entries := c.fm.EntriesFor(client)
	tables := c.svc.Load()
	var specs []openflow.FlowSpec
	mappings := 0
	for _, e := range entries {
		svc, ok := tables.byName[e.SvcName]
		if !ok {
			continue
		}
		specs = append(specs, c.redirectSpecs(client, svc, e.Instance)...)
		mappings++
	}

	// Make: the new switch carries the full redirect set before the
	// client's location — and with it the reconciler's desired state —
	// moves over.
	if len(specs) > 0 {
		to.ApplyBundle(nil, specs)
		c.stats.flowsInstalled.Add(int64(mappings))
	}

	// Retag: future packet-ins, resyncs, and migrations see the client
	// behind the new gNB.
	c.clients.track(client, ClientLocation{
		Switch: to.DeviceName(), InPort: inPort, LastSeen: c.clk.Now(),
	})

	// Break: strict-delete the set from the old switch. A shortfall
	// means the old switch's table had already diverged from the
	// controller's view — the make-before-break invariant did not hold
	// for this client, so count one continuity break (the reconciler
	// will converge the tables; it never re-counts).
	if from != nil && len(specs) > 0 {
		if deleted := from.ApplyBundle(specs, nil); deleted < len(specs) {
			rep.ContinuityBreak = true
			c.stats.continuityBreaks.Add(1)
		}
	}

	rep.ReSteered = mappings
	c.stats.handovers.Add(1)
	c.stats.reSteeredFlows.Add(int64(mappings))

	if c.cfg.MigrateOnHandover {
		rep.Migrated = c.migrateAfterHandover(client, to, entries, tables)
	}

	rep.Latency = c.clk.Since(start)
	c.hoMu.Lock()
	c.handoverLat.Record(rep.Latency)
	c.hoMu.Unlock()
	return rep
}

// HandoverLatency exposes the handover control-plane latency histogram.
// Read it only when no handovers are in flight (Hist is not safe for
// concurrent use).
func (c *Controller) HandoverLatency() *metrics.Hist {
	c.hoMu.Lock()
	defer c.hoMu.Unlock()
	return c.handoverLat
}

// migrateAfterHandover follows the client with the service: for each
// distinct service the client holds a mapping to, ask the scheduler how
// the clusters rank from the NEW zone; when the ranked choice is a
// cluster other than the one the client's instance runs on (and the
// service is not already up there), deploy it there in the background.
//
// Existing sessions are deliberately left on the old instance: their
// re-steered flows and FlowMemory entries stay untouched, because the
// new instance has no transport state for them — cutting them over
// would reset the very sessions the handover preserved. New flows find
// the migrated instance through the normal dispatch path, and the old
// deployment drains through idle scale-down once its last flow expires.
func (c *Controller) migrateAfterHandover(client netem.IP, to *openflow.Switch, entries []Entry, tables *svcTables) int {
	migrated := 0
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if seen[e.SvcName] {
			continue
		}
		seen[e.SvcName] = true
		svc, ok := tables.byName[e.SvcName]
		if !ok {
			continue
		}
		c.stats.scheduleCalls.Add(1)
		candidates := c.candidatesFor(svc, to.DeviceName())
		decision := c.sched.Schedule(svc, client, candidates)
		target := decision.Best
		if target == nil && decision.FastInstance == nil {
			target = decision.Fast
		}
		if target == nil || target.Name() == e.Instance.Cluster {
			continue
		}
		already := false
		for _, cand := range candidates {
			if cand.Cluster == target && len(cand.Instances) > 0 {
				already = true
				break
			}
		}
		if already {
			continue
		}
		c.stats.migratedInstances.Add(1)
		migrated++
		c.clk.Go(func() {
			if _, err := c.deploy(svc, target); err != nil {
				c.stats.deployFailures.Add(1)
			}
		})
	}
	return migrated
}
