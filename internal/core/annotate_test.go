package core

import (
	"strings"
	"testing"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/yaml"
)

const leanNginx = `apiVersion: apps/v1
kind: Deployment
spec:
  template:
    spec:
      containers:
      - name: nginx
        image: nginx:1.23.2
        ports:
        - containerPort: 80
`

func TestUniqueNameFor(t *testing.T) {
	got := UniqueNameFor(netem.ParseHostPort("203.0.113.1:80"))
	if got != "edge-203-0-113-1-80" {
		t.Errorf("UniqueNameFor = %q", got)
	}
	if UniqueNameFor(netem.ParseHostPort("203.0.113.1:80")) == UniqueNameFor(netem.ParseHostPort("203.0.113.1:81")) {
		t.Error("different ports collide")
	}
}

func TestAnnotateSetsAllRequiredFields(t *testing.T) {
	a, err := Annotate(leanNginx, AnnotateOptions{UniqueName: "edge-svc-1", ServicePort: 80, SchedulerName: "my-sched"})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := yaml.Unmarshal(a.DeploymentYAML)
	if err != nil {
		t.Fatalf("annotated deployment does not parse: %v\n%s", err, a.DeploymentYAML)
	}
	d := doc.(map[string]any)
	meta := d["metadata"].(map[string]any)
	if meta["name"] != "edge-svc-1" {
		t.Errorf("name = %v", meta["name"])
	}
	labels := meta["labels"].(map[string]any)
	if labels[EdgeServiceLabel] != "edge-svc-1" {
		t.Errorf("edge.service label = %v", labels[EdgeServiceLabel])
	}
	spec := d["spec"].(map[string]any)
	if spec["replicas"] != int64(0) {
		t.Errorf("replicas = %v, want scale-to-zero", spec["replicas"])
	}
	match := spec["selector"].(map[string]any)["matchLabels"].(map[string]any)
	if match["app"] != "edge-svc-1" || match[EdgeServiceLabel] != "edge-svc-1" {
		t.Errorf("matchLabels = %v", match)
	}
	tmpl := spec["template"].(map[string]any)
	tmplLabels := tmpl["metadata"].(map[string]any)["labels"].(map[string]any)
	if tmplLabels["app"] != "edge-svc-1" {
		t.Errorf("template labels = %v", tmplLabels)
	}
	if tmpl["spec"].(map[string]any)["schedulerName"] != "my-sched" {
		t.Errorf("schedulerName missing: %v", tmpl["spec"])
	}
}

func TestAnnotateGeneratesService(t *testing.T) {
	a, err := Annotate(leanNginx, AnnotateOptions{UniqueName: "edge-svc-1", ServicePort: 80})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := yaml.Unmarshal(a.ServiceYAML)
	if err != nil {
		t.Fatalf("generated service does not parse: %v\n%s", err, a.ServiceYAML)
	}
	s := doc.(map[string]any)
	if s["kind"] != "Service" {
		t.Errorf("kind = %v", s["kind"])
	}
	spec := s["spec"].(map[string]any)
	ports := spec["ports"].([]any)[0].(map[string]any)
	if ports["port"] != int64(80) || ports["targetPort"] != int64(80) || ports["protocol"] != "TCP" {
		t.Errorf("ports = %v", ports)
	}
	sel := spec["selector"].(map[string]any)
	if sel[EdgeServiceLabel] != "edge-svc-1" {
		t.Errorf("selector = %v", sel)
	}
}

func TestAnnotateKeepsDeveloperService(t *testing.T) {
	withService := leanNginx + `---
apiVersion: v1
kind: Service
spec:
  ports:
  - port: 8080
    targetPort: 80
`
	a, err := Annotate(withService, AnnotateOptions{UniqueName: "edge-x", ServicePort: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.ServiceYAML, "8080") {
		t.Errorf("developer's service port lost:\n%s", a.ServiceYAML)
	}
	if !strings.Contains(a.ServiceYAML, "edge-x") {
		t.Errorf("developer's service not renamed:\n%s", a.ServiceYAML)
	}
}

func TestAnnotateSpecDerivation(t *testing.T) {
	multi := `spec:
  template:
    spec:
      volumes:
      - name: www
      containers:
      - image: nginx:1.23.2
        ports:
        - containerPort: 80
      - name: app
        image: josefhammer/env-writer-py
`
	a, err := Annotate(multi, AnnotateOptions{UniqueName: "edge-combo", ServicePort: 80})
	if err != nil {
		t.Fatal(err)
	}
	spec := a.Spec
	if spec.Name != "edge-combo" || len(spec.Containers) != 2 {
		t.Fatalf("spec = %+v", spec)
	}
	// The unnamed container gets a generated name.
	if spec.Containers[0].Name == "" || spec.Containers[0].Image != "nginx:1.23.2" || spec.Containers[0].Port != 80 {
		t.Errorf("container 0 = %+v", spec.Containers[0])
	}
	if spec.Containers[1].Port != 0 {
		t.Errorf("sidecar has port %d", spec.Containers[1].Port)
	}
	if len(spec.Volumes) != 1 || spec.Volumes[0] != "www" {
		t.Errorf("volumes = %v", spec.Volumes)
	}
	if spec.ServicePort != 80 {
		t.Errorf("service port = %d", spec.ServicePort)
	}
}

func TestAnnotateErrors(t *testing.T) {
	cases := map[string]struct {
		def  string
		opts AnnotateOptions
	}{
		"no unique name": {leanNginx, AnnotateOptions{}},
		"no containers": {`spec:
  template:
    spec:
      containers: []
`, AnnotateOptions{UniqueName: "x"}},
		"missing image": {`spec:
  template:
    spec:
      containers:
      - name: web
`, AnnotateOptions{UniqueName: "x"}},
		"no port anywhere": {`spec:
  template:
    spec:
      containers:
      - image: something
`, AnnotateOptions{UniqueName: "x"}},
		"not yaml":      {"\tbroken", AnnotateOptions{UniqueName: "x"}},
		"no deployment": {"", AnnotateOptions{UniqueName: "x"}},
	}
	for name, tc := range cases {
		if _, err := Annotate(tc.def, tc.opts); err == nil {
			t.Errorf("%s: annotation succeeded", name)
		}
	}
}

func TestAnnotateIdempotentOnItsOwnOutput(t *testing.T) {
	a, err := Annotate(leanNginx, AnnotateOptions{UniqueName: "edge-a", ServicePort: 80})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Annotate(a.DeploymentYAML, AnnotateOptions{UniqueName: "edge-a", ServicePort: 80})
	if err != nil {
		t.Fatalf("re-annotation failed: %v", err)
	}
	if b.Spec.Name != a.Spec.Name || len(b.Spec.Containers) != len(a.Spec.Containers) {
		t.Errorf("re-annotation diverged: %+v vs %+v", b.Spec, a.Spec)
	}
}
