package openflow

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

func puntSpec(addr netem.HostPort, cookie uint64) FlowSpec {
	return FlowSpec{
		Priority: 10,
		Match:    Match{DstIP: addr.IP, DstPort: addr.Port},
		Actions:  []Action{OutputController{}},
		Cookie:   cookie,
	}
}

// TestChannelFaultsDropFlowMods drives InstallFlow through a loss-1.0
// channel: no entry may land, the drop counter must tally every loss,
// and clearing the fault model must restore reliable delivery.
func TestChannelFaultsDropFlowMods(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		e.sw.SetChannelFaults(&ChannelFaults{Seed: 1, FlowModLoss: 1.0})
		for i := 0; i < 4; i++ {
			e.sw.InstallFlow(puntSpec(netem.ParseHostPort(fmt.Sprintf("203.0.113.%d:80", i+1)), uint64(i)))
		}
		if got := len(e.sw.FlowTable()); got != 0 {
			t.Errorf("%d entries landed through a loss-1.0 channel", got)
		}
		if st := e.sw.ChannelStats(); st.FlowModDrops != 4 {
			t.Errorf("FlowModDrops = %d, want 4", st.FlowModDrops)
		}
		e.sw.SetChannelFaults(nil)
		e.sw.InstallFlow(puntSpec(netem.ParseHostPort("203.0.113.9:80"), 9))
		if got := len(e.sw.FlowTable()); got != 1 {
			t.Errorf("table has %d entries after clearing faults, want 1", got)
		}
		// Counters survive clearing the fault window.
		if st := e.sw.ChannelStats(); st.Total() != 4 {
			t.Errorf("ChannelStats.Total = %d after clearing, want 4", st.Total())
		}
	})
}

// TestChannelFaultsAreSeededAndKeyed verifies determinism: the same
// seed gives the same per-message verdicts regardless of call
// interleaving (streams are keyed per message identity), and a
// different seed gives a different verdict pattern.
func TestChannelFaultsAreSeededAndKeyed(t *testing.T) {
	verdicts := func(seed int64, order []int) string {
		f := &ChannelFaults{Seed: seed, FlowModLoss: 0.5}
		out := make([]byte, 8)
		for _, i := range order {
			key := fmt.Sprintf("mod/%d", i)
			if f.drop(key, f.FlowModLoss) {
				out[i] = 'D'
			} else {
				out[i] = '.'
			}
		}
		return string(out)
	}
	fwd := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rev := []int{7, 6, 5, 4, 3, 2, 1, 0}
	if a, b := verdicts(3, fwd), verdicts(3, rev); a != b {
		t.Errorf("verdicts depend on call order: %q vs %q", a, b)
	}
	if a, b := verdicts(3, fwd), verdicts(4, fwd); a == b {
		t.Errorf("seeds 3 and 4 produced identical verdicts %q", a)
	}
}

// TestRestartWipesAndNotifies reboots a connected switch: the table
// must be empty afterwards, and the controller side must get a
// Restarted event it can answer with ResyncFrom, which rebuilds the
// table reliably even under a fully lossy channel.
func TestRestartWipesAndNotifies(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		e.sw.Connect()
		specs := []FlowSpec{
			puntSpec(netem.ParseHostPort("203.0.113.1:80"), 1),
			puntSpec(netem.ParseHostPort("203.0.113.2:80"), 2),
		}
		for _, s := range specs {
			e.sw.InstallFlow(s)
		}
		if got := len(e.sw.FlowTable()); got != 2 {
			t.Fatalf("table has %d entries before restart, want 2", got)
		}

		events := e.sw.Events()
		e.sw.Restart()
		if got := len(e.sw.Flows()); got != 0 {
			t.Errorf("table has %d entries after restart, want 0", got)
		}
		ev, ok := events.Recv()
		if !ok || !ev.Restarted {
			t.Fatalf("event = %+v, %v; want a Restarted notification", ev, ok)
		}

		// Recovery must not depend on a working unreliable channel.
		e.sw.SetChannelFaults(&ChannelFaults{Seed: 1, FlowModLoss: 1.0})
		e.sw.ResyncFrom(specs)
		if got := len(e.sw.FlowTable()); got != 2 {
			t.Errorf("ResyncFrom rebuilt %d entries, want 2", got)
		}
	})
}

// TestApplyBundleRepairsExactly feeds ApplyBundle an orphan to delete
// and a missing rule to install, under a fully lossy channel: bundles
// are the reliable repair path, so both must take effect, and the
// delete count must reflect only entries that were actually live.
func TestApplyBundleRepairsExactly(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		orphan := puntSpec(netem.ParseHostPort("203.0.113.1:80"), 1)
		missing := puntSpec(netem.ParseHostPort("203.0.113.2:80"), 2)
		e.sw.InstallFlow(orphan)
		e.sw.SetChannelFaults(&ChannelFaults{Seed: 1, FlowModLoss: 1.0})

		ghost := puntSpec(netem.ParseHostPort("203.0.113.3:80"), 3) // never installed
		deleted := e.sw.ApplyBundle([]FlowSpec{orphan, ghost}, []FlowSpec{missing})
		if deleted != 1 {
			t.Errorf("deleted = %d, want 1 (the ghost was never live)", deleted)
		}
		table := e.sw.FlowTable()
		if len(table) != 1 || table[0].Match != missing.Match {
			t.Errorf("table after bundle = %+v, want exactly the missing rule", table)
		}
		// The barrier round trip is itself fallible; the bundle is not.
		if e.sw.Barrier() {
			t.Error("barrier survived a loss-1.0 channel")
		}
		e.sw.SetChannelFaults(nil)
		if !e.sw.Barrier() {
			t.Error("barrier failed on a clean channel")
		}
	})
}

// TestDeleteExactRemovesOneOfDuplicates installs the same spec twice
// (the benign-duplicate case reconciliation can produce) and checks
// DELETE_STRICT removes exactly one live entry per call.
func TestDeleteExactRemovesOneOfDuplicates(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		spec := puntSpec(netem.ParseHostPort("203.0.113.1:80"), 1)
		e.sw.InstallFlow(spec)
		e.sw.InstallFlow(spec)
		if !e.sw.DeleteExact(spec.Match, spec.Priority) {
			t.Fatal("first DeleteExact found nothing")
		}
		if got := len(e.sw.FlowTable()); got != 1 {
			t.Fatalf("table has %d entries after one strict delete, want 1", got)
		}
		if !e.sw.DeleteExact(spec.Match, spec.Priority) {
			t.Fatal("second DeleteExact found nothing")
		}
		if e.sw.DeleteExact(spec.Match, spec.Priority) {
			t.Error("third DeleteExact deleted from an empty table")
		}
	})
}

// TestPacketInLossDropsThePunt sends traffic at a punt rule through a
// packet-in-lossy channel: the controller mailbox must stay empty and
// the punted copy must not leak from the pool.
func TestPacketInLossDropsThePunt(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		pktIns, _ := e.sw.Connect()
		addr := e.cloud.Addr(80)
		e.sw.InstallFlow(puntSpec(addr, 1))
		e.sw.SetChannelFaults(&ChannelFaults{Seed: 1, PacketInLoss: 1.0})

		before := netem.LivePackets()
		// Fire-and-forget SYNs: DialTimeout would retry, so send raw.
		pkt := netem.NewPacket()
		pkt.Src = netem.ParseHostPort("192.168.1.10:50000")
		pkt.Dst = addr
		pkt.Flags = netem.FlagSYN
		e.sw.HandlePacket(pkt, e.sw.Port(1))
		clk.Sleep(100 * time.Millisecond)

		if st := e.sw.ChannelStats(); st.PacketInDrops != 1 {
			t.Errorf("PacketInDrops = %d, want 1", st.PacketInDrops)
		}
		if n := pktIns.Len(); n != 0 {
			t.Errorf("%d packet-ins reached the controller through a loss-1.0 channel", n)
		}
		if leaked := netem.LivePackets() - before; leaked != 0 {
			t.Errorf("%d packets leaked on the packet-in drop path", leaked)
		}
	})
}
