package openflow

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// sinkDev terminates a switch port and records every delivery, standing
// in for the hosts behind it.
type sinkDev struct {
	name string
	got  []string
}

func (d *sinkDev) DeviceName() string { return d.name }

func (d *sinkDev) HandlePacket(pkt *netem.Packet, _ *netem.Port) {
	d.got = append(d.got, fmt.Sprintf("%s %v>%v", d.name, pkt.Src, pkt.Dst))
	pkt.Release()
}

// microEnv is a bare switch with sink devices on every port, driven by
// hand-built packets so each classification is directly observable.
type microEnv struct {
	clk   *vclock.Virtual
	sw    *Switch
	sinks []*sinkDev
}

func newMicroEnv(clk *vclock.Virtual, ports int) *microEnv {
	n := netem.NewNetwork(clk, 1)
	e := &microEnv{clk: clk, sw: NewSwitch(n, "sw", ports)}
	e.sw.CtrlLatency = 0
	for i := 1; i <= ports; i++ {
		d := &sinkDev{name: fmt.Sprintf("p%d", i)}
		e.sinks = append(e.sinks, d)
		n.Connect(&netem.Port{Dev: d}, e.sw.Port(i), netem.LinkConfig{})
	}
	return e
}

// inject runs one packet through the switch pipeline and drains the
// resulting delivery events.
func (e *microEnv) inject(src, dst string, inPort int) {
	pkt := netem.NewPacket()
	pkt.Src = netem.ParseHostPort(src)
	pkt.Dst = netem.ParseHostPort(dst)
	e.sw.HandlePacket(pkt, e.sw.Port(inPort))
	e.clk.Sleep(time.Microsecond)
}

// TestMicroflowInvalidation walks the cache through its whole
// lifecycle: miss, hit, invalidation by InstallFlow, hit on the cached
// flow entry, invalidation by DeleteFlows, invalidation by idle
// eviction, and a cached punt-to-controller classification.
func TestMicroflowInvalidation(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newMicroEnv(clk, 3)
		client := netem.ParseIP("192.168.1.10")
		cloud := netem.ParseIP("203.0.113.1")
		edge := netem.ParseIP("10.0.0.2")
		e.sw.AddRoute(client, 1)
		e.sw.AddRoute(edge, 3)
		e.sw.SetDefaultRoute(2)

		expectStats := func(step string, hits, misses int64) {
			t.Helper()
			h, m := e.sw.MicroStats()
			if h != hits || m != misses {
				t.Fatalf("%s: MicroStats = %d hits / %d misses, want %d / %d", step, h, m, hits, misses)
			}
		}
		expectSink := func(step string, sink, n int) {
			t.Helper()
			if got := len(e.sinks[sink-1].got); got != n {
				t.Fatalf("%s: port %d saw %d packets, want %d", step, sink, got, n)
			}
		}

		// Cold start: NORMAL classification is cached on first sight.
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectStats("first packet", 0, 1)
		expectSink("first packet", 2, 1)
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectStats("repeat packet", 1, 1)
		expectSink("repeat packet", 2, 2)

		// InstallFlow bumps the epoch: the stale NORMAL entry must not
		// shadow the new redirect flow.
		e.sw.InstallFlow(FlowSpec{
			Priority: 10,
			Cookie:   7,
			Match:    Match{DstIP: cloud, DstPort: 80},
			Actions:  []Action{SetDstIP{IP: edge}, Output{Port: 3}},
		})
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectStats("after install", 1, 2)
		expectSink("after install", 3, 1)
		if got := e.sinks[2].got[0]; got != "p3 192.168.1.10:40000>10.0.0.2:80" {
			t.Fatalf("redirect delivered %q", got)
		}

		// The cached flow entry serves the next packet in one probe.
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectStats("cached flow", 2, 2)
		expectSink("cached flow", 3, 2)

		// DeleteFlows bumps the epoch: classification reverts to NORMAL.
		if n := e.sw.DeleteFlows(7); n != 1 {
			t.Fatalf("DeleteFlows removed %d entries, want 1", n)
		}
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectStats("after delete", 2, 3)
		expectSink("after delete", 2, 3)

		// Idle eviction must invalidate the cached classification too.
		e.sw.InstallFlow(FlowSpec{
			Priority:    10,
			Cookie:      8,
			Match:       Match{DstIP: cloud, DstPort: 80},
			Actions:     []Action{SetDstIP{IP: edge}, Output{Port: 3}},
			IdleTimeout: 50 * time.Millisecond,
		})
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectSink("before idle eviction", 3, 3)
		clk.Sleep(200 * time.Millisecond) // let the idle timer evict
		e.inject("192.168.1.10:40000", "203.0.113.1:80", 1)
		expectSink("after idle eviction", 2, 4)

		// Punt-to-controller classifications are cacheable as well: the
		// cached entry replays the punt, it never short-circuits it.
		packetIns, _ := e.sw.Connect()
		e.sw.InstallFlow(FlowSpec{
			Priority: 20,
			Cookie:   9,
			Match:    Match{DstIP: cloud, DstPort: 443},
			Actions:  []Action{OutputController{}},
		})
		e.inject("192.168.1.10:40001", "203.0.113.1:443", 1)
		e.inject("192.168.1.10:40001", "203.0.113.1:443", 1)
		for i := 0; i < 2; i++ {
			pin, ok := packetIns.RecvTimeout(time.Second)
			if !ok {
				t.Fatalf("packet-in %d never arrived", i)
			}
			if pin.InPort != 1 {
				t.Fatalf("packet-in %d from port %d, want 1", i, pin.InPort)
			}
			pin.Pkt.Release()
		}
		punted, _, _ := e.sw.Counters()
		if punted != 2 {
			t.Fatalf("punted = %d, want 2", punted)
		}
		h, m := e.sw.MicroStats()
		if h != 3 || m != 6 {
			t.Fatalf("final MicroStats = %d hits / %d misses, want 3 / 6", h, m)
		}
	})
}

// TestMicroflowDifferential drives an identical pseudo-random packet
// and table-mutation schedule through a cached and an uncached switch
// and demands byte-identical delivery traces, flow counters, and
// switch counters. The microflow cache must be invisible.
func TestMicroflowDifferential(t *testing.T) {
	ips := []string{"192.168.1.10", "192.168.1.11", "10.0.0.2", "203.0.113.1"}
	run := func(micro bool) (trace []string, flows []FlowStats, punted, dropped, normal int64, hits int64) {
		clk := vclock.New()
		clk.Run(func() {
			e := newMicroEnv(clk, 3)
			e.sw.SetMicroflow(micro)
			e.sw.AddRoute(netem.ParseIP(ips[0]), 1)
			e.sw.AddRoute(netem.ParseIP(ips[1]), 1)
			e.sw.AddRoute(netem.ParseIP(ips[2]), 3)
			e.sw.SetDefaultRoute(2)

			rng := rand.New(rand.NewSource(42))
			randPkt := func() (string, string, int) {
				src := fmt.Sprintf("%s:%d", ips[rng.Intn(len(ips))], 40000+rng.Intn(3))
				dst := fmt.Sprintf("%s:%d", ips[rng.Intn(len(ips))], 80+rng.Intn(3))
				return src, dst, 1 + rng.Intn(3)
			}
			specs := []FlowSpec{
				{Priority: 10, Cookie: 1, Match: Match{DstIP: netem.ParseIP(ips[3]), DstPort: 80},
					Actions: []Action{SetDstIP{IP: netem.ParseIP(ips[2])}, Output{Port: 3}}},
				{Priority: 20, Cookie: 2, Match: Match{InPort: 2, DstPort: 81},
					Actions: []Action{Drop{}}},
				{Priority: 5, Cookie: 3, Match: Match{SrcIP: netem.ParseIP(ips[1])},
					Actions: []Action{SetSrcIP{IP: netem.ParseIP(ips[3])}, SetSrcPort{Port: 9999}, OutputNormal{}}},
				{Priority: 30, Cookie: 4, Match: Match{DstIP: netem.ParseIP(ips[2]), DstPort: 82},
					Actions: []Action{OutputController{}}}, // unconnected: counts as punt, packet dropped
			}
			for i := 0; i < 400; i++ {
				switch i {
				case 50:
					e.sw.InstallFlow(specs[0])
				case 120:
					e.sw.InstallFlow(specs[1])
					e.sw.InstallFlow(specs[2])
				case 200:
					e.sw.DeleteFlows(1)
				case 300:
					e.sw.InstallFlow(specs[3])
					e.sw.DeleteFlows(2)
				}
				src, dst, inPort := randPkt()
				e.inject(src, dst, inPort)
			}
			for _, d := range e.sinks {
				trace = append(trace, d.got...)
			}
			flows = e.sw.Flows()
			punted, dropped, normal = e.sw.Counters()
			hits, _ = e.sw.MicroStats()
		})
		return
	}

	cTrace, cFlows, cPunt, cDrop, cNorm, cHits := run(true)
	uTrace, uFlows, uPunt, uDrop, uNorm, uHits := run(false)

	if cHits == 0 {
		t.Fatal("cached run recorded no microflow hits; cache never engaged")
	}
	if uHits != 0 {
		t.Fatalf("uncached run recorded %d microflow hits", uHits)
	}
	if len(cTrace) != len(uTrace) {
		t.Fatalf("trace lengths differ: cached %d, uncached %d", len(cTrace), len(uTrace))
	}
	for i := range cTrace {
		if cTrace[i] != uTrace[i] {
			t.Fatalf("trace diverges at %d: cached %q, uncached %q", i, cTrace[i], uTrace[i])
		}
	}
	if fmt.Sprint(cFlows) != fmt.Sprint(uFlows) {
		t.Fatalf("flow stats diverge:\ncached   %v\nuncached %v", cFlows, uFlows)
	}
	if cPunt != uPunt || cDrop != uDrop || cNorm != uNorm {
		t.Fatalf("counters diverge: cached %d/%d/%d, uncached %d/%d/%d",
			cPunt, cDrop, cNorm, uPunt, uDrop, uNorm)
	}
}
