package openflow

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// ofEnv wires client—switch—server plus an edge host on a third port.
type ofEnv struct {
	clk    *vclock.Virtual
	net    *netem.Network
	sw     *Switch
	client *netem.Host
	cloud  *netem.Host
	edge   *netem.Host
}

func newOFEnv(clk *vclock.Virtual) *ofEnv {
	n := netem.NewNetwork(clk, 1)
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	cloud := n.NewHost("cloud", netem.ParseIP("203.0.113.1"))
	edge := n.NewHost("edge", netem.ParseIP("10.0.0.2"))
	sw := NewSwitch(n, "gnb", 3)
	n.Connect(client.NIC(), sw.Port(1), netem.LinkConfig{Latency: time.Millisecond})
	n.Connect(cloud.NIC(), sw.Port(2), netem.LinkConfig{Latency: 20 * time.Millisecond})
	n.Connect(edge.NIC(), sw.Port(3), netem.LinkConfig{Latency: time.Millisecond})
	sw.AddRoute(client.IP(), 1)
	sw.AddRoute(edge.IP(), 3)
	sw.SetDefaultRoute(2) // unknown destinations head for the cloud
	return &ofEnv{clk: clk, net: n, sw: sw, client: client, cloud: cloud, edge: edge}
}

func TestMatchCovers(t *testing.T) {
	pkt := &netem.Packet{
		Src: netem.ParseHostPort("192.168.1.10:50000"),
		Dst: netem.ParseHostPort("203.0.113.1:80"),
	}
	cases := []struct {
		m    Match
		in   int
		want bool
	}{
		{Match{}, 1, true},
		{Match{DstIP: pkt.Dst.IP, DstPort: 80}, 1, true},
		{Match{DstIP: pkt.Dst.IP, DstPort: 443}, 1, false},
		{Match{InPort: 1}, 1, true},
		{Match{InPort: 2}, 1, false},
		{Match{SrcIP: pkt.Src.IP, SrcPort: 50000}, 1, true},
		{Match{SrcIP: netem.ParseIP("9.9.9.9")}, 1, false},
	}
	for i, tc := range cases {
		if got := tc.m.Covers(pkt, tc.in); got != tc.want {
			t.Errorf("case %d: Covers = %v, want %v", i, got, tc.want)
		}
	}
}

func TestNormalForwardingWithoutFlows(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		ln, _ := e.cloud.Listen(80)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if msg, err := c.Recv(); err == nil {
				c.Send(append([]byte("cloud:"), msg...))
			}
		})
		conn, err := e.client.Dial(e.cloud.Addr(80))
		if err != nil {
			t.Fatalf("dial through switch: %v", err)
		}
		conn.Send([]byte("x"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "cloud:x" {
			t.Errorf("resp = %q, %v", resp, err)
		}
		_, _, normal := e.sw.Counters()
		if normal == 0 {
			t.Error("no packets used NORMAL forwarding")
		}
	})
}

func TestTransparentRedirectRewrite(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		// The edge instance listens on a mapped port.
		ln, _ := e.edge.Listen(30080)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if msg, err := c.Recv(); err == nil {
				c.Send(append([]byte("edge:"), msg...))
			}
		})
		cloudAddr := e.cloud.Addr(80)
		edgeAddr := e.edge.Addr(30080)
		// Forward flow: client→registered address rewritten to the edge.
		e.sw.InstallFlow(FlowSpec{
			Priority: 20,
			Match:    Match{SrcIP: e.client.IP(), DstIP: cloudAddr.IP, DstPort: cloudAddr.Port},
			Actions:  []Action{SetDstIP{edgeAddr.IP}, SetDstPort{edgeAddr.Port}, Output{3}},
			Cookie:   7,
		})
		// Reverse flow: edge→client rewritten back to the cloud address.
		e.sw.InstallFlow(FlowSpec{
			Priority: 20,
			Match:    Match{SrcIP: edgeAddr.IP, SrcPort: edgeAddr.Port, DstIP: e.client.IP()},
			Actions:  []Action{SetSrcIP{cloudAddr.IP}, SetSrcPort{cloudAddr.Port}, Output{1}},
			Cookie:   7,
		})
		conn, err := e.client.Dial(cloudAddr)
		if err != nil {
			t.Fatalf("transparent dial failed: %v", err)
		}
		// Transparency: the client still believes it talks to the cloud.
		if conn.RemoteAddr() != cloudAddr {
			t.Errorf("client sees %v, want %v", conn.RemoteAddr(), cloudAddr)
		}
		conn.Send([]byte("x"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "edge:x" {
			t.Fatalf("resp = %q, %v (edge must serve the request)", resp, err)
		}
		// The flow counters must show traffic on both directions.
		for _, f := range e.sw.Flows() {
			if f.Packets == 0 {
				t.Errorf("flow %v saw no packets", f.Match)
			}
		}
	})
}

func TestPriorityWins(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		got := make(chan int, 1)
		// Low priority: drop everything to the cloud IP.
		e.sw.InstallFlow(FlowSpec{Priority: 1, Match: Match{DstIP: e.cloud.IP()}, Actions: []Action{Drop{}}})
		// High priority: forward to port 2.
		e.sw.InstallFlow(FlowSpec{Priority: 10, Match: Match{DstIP: e.cloud.IP()}, Actions: []Action{Output{2}}})
		ln, _ := e.cloud.Listen(80)
		clk.Go(func() {
			if _, err := ln.Accept(); err == nil {
				got <- 1
			}
		})
		if _, err := e.client.Dial(e.cloud.Addr(80)); err != nil {
			t.Fatalf("high-priority output flow not used: %v", err)
		}
	})
}

func TestPacketInAndPacketOutWithHold(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		packetIns, _ := e.sw.Connect()
		cloudAddr := e.cloud.Addr(80)
		// Intercept rule for the registered service.
		e.sw.InstallFlow(FlowSpec{
			Priority: 10,
			Match:    Match{DstIP: cloudAddr.IP, DstPort: 80},
			Actions:  []Action{OutputController{}},
		})
		ln, _ := e.edge.Listen(30080)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if msg, err := c.Recv(); err == nil {
				c.Send(append([]byte("edge:"), msg...))
			}
		})
		// Emulated controller: hold the SYN for 700ms (deployment with
		// waiting), install redirect flows, then release the packet.
		clk.Go(func() {
			pin, ok := packetIns.Recv()
			if !ok {
				return
			}
			clk.Sleep(700 * time.Millisecond) // deployment time
			edgeAddr := e.edge.Addr(30080)
			e.sw.InstallFlow(FlowSpec{
				Priority: 20,
				Match:    Match{SrcIP: pin.Pkt.Src.IP, SrcPort: pin.Pkt.Src.Port, DstIP: cloudAddr.IP, DstPort: 80},
				Actions:  []Action{SetDstIP{edgeAddr.IP}, SetDstPort{edgeAddr.Port}, Output{3}},
			})
			e.sw.InstallFlow(FlowSpec{
				Priority: 20,
				Match:    Match{SrcIP: edgeAddr.IP, SrcPort: edgeAddr.Port, DstIP: pin.Pkt.Src.IP, DstPort: pin.Pkt.Src.Port},
				Actions:  []Action{SetSrcIP{cloudAddr.IP}, SetSrcPort{80}, Output{1}},
			})
			e.sw.PacketOut(pin.Pkt, pin.InPort, nil) // OFPP_TABLE
		})
		start := clk.Now()
		conn, err := e.client.Dial(cloudAddr)
		if err != nil {
			t.Fatalf("held dial failed: %v", err)
		}
		elapsed := clk.Since(start)
		if elapsed < 700*time.Millisecond {
			t.Errorf("handshake completed in %v; the hold did not happen", elapsed)
		}
		conn.Send([]byte("q"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "edge:q" {
			t.Errorf("resp = %q, %v", resp, err)
		}
		punted, _, _ := e.sw.Counters()
		if punted == 0 {
			t.Error("no packet-in recorded")
		}
	})
}

func TestIdleTimeoutEvictsAndNotifies(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		_, removals := e.sw.Connect()
		e.sw.InstallFlow(FlowSpec{
			Priority:    20,
			Match:       Match{DstIP: e.cloud.IP(), DstPort: 80},
			Actions:     []Action{Output{2}},
			IdleTimeout: 2 * time.Second,
			Cookie:      42,
		})
		if len(e.sw.Flows()) != 1 {
			t.Fatal("flow not installed")
		}
		msg, ok := removals.RecvTimeout(10 * time.Second)
		if !ok {
			t.Fatal("no FlowRemoved after idle timeout")
		}
		if msg.Cookie != 42 || !msg.IdleTimeout {
			t.Errorf("FlowRemoved = %+v", msg)
		}
		if len(e.sw.Flows()) != 0 {
			t.Error("flow still installed after eviction")
		}
	})
}

func TestIdleTimeoutRefreshedByTraffic(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		_, removals := e.sw.Connect()
		e.sw.InstallFlow(FlowSpec{
			Priority:    20,
			Match:       Match{DstIP: e.cloud.IP()},
			Actions:     []Action{Output{2}},
			IdleTimeout: 3 * time.Second,
			Cookie:      1,
		})
		ln, _ := e.cloud.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		})
		// Touch the flow every 2s: it must survive 10s.
		for i := 0; i < 5; i++ {
			clk.Sleep(2 * time.Second)
			if conn, err := e.client.Dial(e.cloud.Addr(80)); err == nil {
				conn.Close()
			}
		}
		if _, ok := removals.TryRecv(); ok {
			t.Error("active flow evicted")
		}
		// Now go silent: eviction follows.
		if _, ok := removals.RecvTimeout(10 * time.Second); !ok {
			t.Error("idle flow not evicted after traffic stopped")
		}
	})
}

func TestHardTimeoutEvicts(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		_, removals := e.sw.Connect()
		e.sw.InstallFlow(FlowSpec{
			Priority:    20,
			Match:       Match{DstIP: e.cloud.IP()},
			Actions:     []Action{Output{2}},
			HardTimeout: time.Second,
			Cookie:      9,
		})
		msg, ok := removals.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatal("no FlowRemoved after hard timeout")
		}
		if msg.IdleTimeout {
			t.Error("hard eviction flagged as idle")
		}
	})
}

func TestDeleteFlowsByCookie(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		e.sw.InstallFlow(FlowSpec{Priority: 1, Match: Match{DstPort: 80}, Actions: []Action{Drop{}}, Cookie: 5})
		e.sw.InstallFlow(FlowSpec{Priority: 1, Match: Match{DstPort: 81}, Actions: []Action{Drop{}}, Cookie: 5})
		e.sw.InstallFlow(FlowSpec{Priority: 1, Match: Match{DstPort: 82}, Actions: []Action{Drop{}}, Cookie: 6})
		if got := e.sw.DeleteFlows(5); got != 2 {
			t.Errorf("DeleteFlows removed %d, want 2", got)
		}
		flows := e.sw.Flows()
		if len(flows) != 1 || flows[0].Cookie != 6 {
			t.Errorf("remaining flows = %v", flows)
		}
	})
}

func TestUnconnectedControllerDropsPuntedPackets(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		e.sw.InstallFlow(FlowSpec{
			Priority: 10,
			Match:    Match{DstIP: e.cloud.IP()},
			Actions:  []Action{OutputController{}},
		})
		// Dial fails: punted packets go nowhere without a controller.
		if _, err := e.client.DialTimeout(e.cloud.Addr(80), 3*time.Second); err == nil {
			t.Error("dial succeeded though packets were punted into the void")
		}
	})
}

func TestEmptyActionListDrops(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newOFEnv(clk)
		e.sw.InstallFlow(FlowSpec{Priority: 10, Match: Match{DstIP: e.cloud.IP()}, Actions: nil})
		if _, err := e.client.DialTimeout(e.cloud.Addr(80), 2*time.Second); err == nil {
			t.Error("dial succeeded despite drop-by-default")
		}
		_, dropped, _ := e.sw.Counters()
		if dropped == 0 {
			t.Error("no drops counted")
		}
	})
}

// Property: a wildcard-reduced match always covers at least the packets
// its fully specified version covers.
func TestMatchWildcardWideningProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, inPort uint8, wildMask uint8) bool {
		pkt := &netem.Packet{
			Src: netem.HostPort{IP: netem.IP(srcIP), Port: srcPort},
			Dst: netem.HostPort{IP: netem.IP(dstIP), Port: dstPort},
		}
		in := int(inPort%4) + 1
		full := Match{InPort: in, SrcIP: pkt.Src.IP, DstIP: pkt.Dst.IP, SrcPort: pkt.Src.Port, DstPort: pkt.Dst.Port}
		wide := full
		if wildMask&1 != 0 {
			wide.InPort = 0
		}
		if wildMask&2 != 0 {
			wide.SrcIP = 0
		}
		if wildMask&4 != 0 {
			wide.DstIP = 0
		}
		if wildMask&8 != 0 {
			wide.SrcPort = 0
		}
		if wildMask&16 != 0 {
			wide.DstPort = 0
		}
		if full.Covers(pkt, in) && !wide.Covers(pkt, in) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRangeRoute pins the NORMAL-forwarding precedence with a prefix
// route installed: exact host routes beat the range, the range beats
// the default, non-matching addresses still take the default, and
// installing or updating a range bumps the forwarding epoch (the
// microflow cache and compiled paths must notice).
func TestRangeRoute(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		env := newOFEnv(clk)
		sw := env.sw
		base, mask := netem.ParseIP("100.64.0.0"), netem.ParseIP("255.192.0.0")
		before := sw.PathEpoch()
		sw.AddRouteRange(base, mask, 3)
		if sw.PathEpoch() == before {
			t.Fatal("AddRouteRange did not bump the forwarding epoch")
		}
		sw.mu.Lock()
		defer sw.mu.Unlock()
		if got := sw.normalRouteLocked(base + 12345); got != 3 {
			t.Fatalf("in-range address routed to %d, want range port 3", got)
		}
		if got := sw.normalRouteLocked(netem.ParseIP("100.127.255.255")); got != 3 {
			t.Fatalf("last in-range address routed to %d, want 3", got)
		}
		if got := sw.normalRouteLocked(netem.ParseIP("100.128.0.0")); got != 2 {
			t.Fatalf("out-of-range address routed to %d, want default 2", got)
		}
		if got := sw.normalRouteLocked(env.client.IP()); got != 1 {
			t.Fatalf("exact host route returned %d, want 1", got)
		}
		// An exact route inside the block wins over the range.
		sw.routes[base+7] = 2
		if got := sw.normalRouteLocked(base + 7); got != 2 {
			t.Fatalf("exact route inside range returned %d, want 2", got)
		}
		// Re-adding the same block updates in place instead of stacking.
		n := len(sw.ranges)
		sw.mu.Unlock()
		sw.AddRouteRange(base, mask, 1)
		sw.mu.Lock()
		if len(sw.ranges) != n {
			t.Fatalf("duplicate range stacked: %d entries, want %d", len(sw.ranges), n)
		}
		if got := sw.normalRouteLocked(base + 12345); got != 1 {
			t.Fatalf("updated range routed to %d, want 1", got)
		}
	})
}
