// Package openflow implements the OpenFlow-subset software switch the
// transparent-access approach programs: priority flow tables matching on
// the TCP 5-tuple, set-field rewrite actions, output actions, idle and
// hard timeouts with FlowRemoved notifications, packet-in punting to the
// controller, and packet-out re-injection.
//
// The switch is a netem.Device, so rewrites genuinely happen on the
// packets of live connections — the client keeps talking to the
// registered cloud address while an edge instance answers (Fig. 2 of
// the paper).
package openflow

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Match selects packets on the TCP 5-tuple; zero fields are wildcards.
// InPort 0 is a wildcard (ports are numbered from 1).
type Match struct {
	InPort  int
	SrcIP   netem.IP
	DstIP   netem.IP
	SrcPort uint16
	DstPort uint16
}

// matchSig identifies which fields of a Match are set (non-wildcard).
// The table keeps flows indexed by their exact Match, grouped by
// signature: classifying a packet probes one index key per distinct
// signature present — tuple-space search, as in Open vSwitch — instead
// of scanning the whole table.
type matchSig uint8

const (
	sigInPort matchSig = 1 << iota
	sigSrcIP
	sigDstIP
	sigSrcPort
	sigDstPort
)

// signature returns the set-field mask of m.
func (m Match) signature() matchSig {
	var s matchSig
	if m.InPort != 0 {
		s |= sigInPort
	}
	if m.SrcIP != 0 {
		s |= sigSrcIP
	}
	if m.DstIP != 0 {
		s |= sigDstIP
	}
	if m.SrcPort != 0 {
		s |= sigSrcPort
	}
	if m.DstPort != 0 {
		s |= sigDstPort
	}
	return s
}

// project builds the Match a flow of this signature must carry to cover
// pkt: packet fields where the signature sets them, wildcards elsewhere.
// A flow covers the packet iff its Match equals the projection — so an
// exact-match map lookup replicates Covers for the whole tuple class.
func (sig matchSig) project(pkt *netem.Packet, inPort int) Match {
	var m Match
	if sig&sigInPort != 0 {
		m.InPort = inPort
	}
	if sig&sigSrcIP != 0 {
		m.SrcIP = pkt.Src.IP
	}
	if sig&sigDstIP != 0 {
		m.DstIP = pkt.Dst.IP
	}
	if sig&sigSrcPort != 0 {
		m.SrcPort = pkt.Src.Port
	}
	if sig&sigDstPort != 0 {
		m.DstPort = pkt.Dst.Port
	}
	return m
}

// Covers reports whether the match selects pkt arriving on inPort.
func (m Match) Covers(pkt *netem.Packet, inPort int) bool {
	if m.InPort != 0 && m.InPort != inPort {
		return false
	}
	if m.SrcIP != 0 && m.SrcIP != pkt.Src.IP {
		return false
	}
	if m.DstIP != 0 && m.DstIP != pkt.Dst.IP {
		return false
	}
	if m.SrcPort != 0 && m.SrcPort != pkt.Src.Port {
		return false
	}
	if m.DstPort != 0 && m.DstPort != pkt.Dst.Port {
		return false
	}
	return true
}

// String renders the match compactly for diagnostics.
func (m Match) String() string {
	return fmt.Sprintf("in=%d %s:%d>%s:%d", m.InPort, wild(m.SrcIP.String(), m.SrcIP == 0), m.SrcPort, wild(m.DstIP.String(), m.DstIP == 0), m.DstPort)
}

func wild(s string, isWild bool) string {
	if isWild {
		return "*"
	}
	return s
}

// Action is one instruction applied to a matching packet.
type Action interface {
	isAction()
}

// SetDstIP rewrites the destination address.
type SetDstIP struct{ IP netem.IP }

// SetDstPort rewrites the destination port.
type SetDstPort struct{ Port uint16 }

// SetSrcIP rewrites the source address.
type SetSrcIP struct{ IP netem.IP }

// SetSrcPort rewrites the source port.
type SetSrcPort struct{ Port uint16 }

// Output forwards the packet out of a specific port.
type Output struct{ Port int }

// OutputNormal forwards via the switch's L3 routing table — the
// behaviour of unregistered traffic.
type OutputNormal struct{}

// OutputController punts the packet to the SDN controller (packet-in).
type OutputController struct{}

// Drop discards the packet.
type Drop struct{}

func (SetDstIP) isAction()         {}
func (SetDstPort) isAction()       {}
func (SetSrcIP) isAction()         {}
func (SetSrcPort) isAction()       {}
func (Output) isAction()           {}
func (OutputNormal) isAction()     {}
func (OutputController) isAction() {}
func (Drop) isAction()             {}

// FlowSpec describes one flow entry to install.
type FlowSpec struct {
	Priority int
	Match    Match
	Actions  []Action
	// IdleTimeout evicts the entry after inactivity; 0 disables.
	IdleTimeout time.Duration
	// HardTimeout evicts the entry unconditionally; 0 disables.
	HardTimeout time.Duration
	// Cookie is opaque controller metadata echoed in FlowRemoved.
	Cookie uint64
}

type flowEntry struct {
	FlowSpec
	seq      uint64
	lastUsed time.Time
	packets  int64
	bytes    int64
	removed  bool
}

// FlowRemoved notifies the controller of an evicted entry.
type FlowRemoved struct {
	Match  Match
	Cookie uint64
	// IdleTimeout is true for idle eviction, false for hard eviction or
	// explicit deletion.
	IdleTimeout bool
}

// PacketIn carries a punted packet to the controller. The switch keeps
// no buffer: the controller owns the packet and can hold it while it
// deploys a service, then re-inject it with PacketOut — the
// "on-demand deployment with waiting" mechanism.
type PacketIn struct {
	Pkt    *netem.Packet
	InPort int
}

// FlowStats is a snapshot of one entry's counters.
type FlowStats struct {
	Priority int
	Match    Match
	Cookie   uint64
	Packets  int64
	Bytes    int64
}

// Switch is one OpenFlow switch instance.
type Switch struct {
	name string
	clk  vclock.Clock
	// CtrlLatency is the control-channel one-way delay.
	CtrlLatency time.Duration

	mu        sync.Mutex
	ports     []*netem.Port
	routes    map[netem.IP]int
	ranges    []rangeRoute
	defRoute  int
	table     []*flowEntry
	seq       uint64
	packetIns *vclock.Mailbox[PacketIn]
	removals  *vclock.Mailbox[FlowRemoved]
	connected bool

	// removedCount tracks lazily evicted entries still occupying table
	// slots, for amortized compaction (see compactLocked).
	removedCount int
	// index groups live flows by their exact Match; sigCount tracks how
	// many live flows carry each field signature. Together they make
	// packet classification O(#signatures) map probes (tuple-space
	// search) instead of a linear table scan.
	index    map[Match][]*flowEntry
	sigCount map[matchSig]int

	// micro is the exact-match microflow cache in front of the
	// tuple-space classifier: one probe memoizes the winning entry (or
	// the resolved NORMAL route) for a (5-tuple, inPort) flow. Entries
	// carry the epoch they were resolved at; any table or route
	// mutation bumps epoch, lazily invalidating the whole cache.
	micro       map[microKey]microEntry
	microOn     bool
	microHits   int64
	microMisses int64
	// epoch versions the forwarding state for the microflow cache and
	// for compiled delivery (netem.PathDevice). Written under mu, read
	// lock-free by plan validation.
	epoch atomic.Uint64

	// counters
	punted  int64
	dropped int64
	normal  int64

	// faults, when non-nil, injects loss/delay into the control channel
	// (see channel.go). Atomic so the datapath checks it without mu.
	faults atomic.Pointer[ChannelFaults]
	// onPacketOut, when set, observes every controller PacketOut at the
	// moment it re-enters the pipeline (after control-channel latency
	// and loss). Nil-gated and atomic so the clean path pays one load.
	// The load engine uses it to measure punt→packet-out dispatch
	// latency; the observer must not retain or mutate the packet.
	onPacketOut atomic.Pointer[func(pkt *netem.Packet, inPort int)]
	// events carries lifecycle notifications (restarts) to the
	// controller.
	events *vclock.Mailbox[SwitchEvent]
	// control-channel fault counters (see ChannelStats).
	pktInDrops   atomic.Int64
	flowModDrops atomic.Int64
	flowRemDrops atomic.Int64
	pktOutDrops  atomic.Int64
	ctrlDelayed  atomic.Int64
}

// microKey is the exact-match cache key: ingress port plus the full
// address 4-tuple.
type microKey struct {
	inPort   int
	src, dst netem.HostPort
}

// microEntry memoizes one classification result. entry == nil means the
// packet missed the table and takes NORMAL forwarding out of port
// (port < 1 means no route: drop).
type microEntry struct {
	epoch uint64
	entry *flowEntry
	port  int
}

// microCap bounds the cache; overflowing resets it (epoch-invalidated
// entries are never swept individually).
const microCap = 8192

// NewSwitch creates a switch with n ports (numbered 1..n) on net's clock.
func NewSwitch(net *netem.Network, name string, n int) *Switch {
	s := &Switch{
		name:        name,
		clk:         net.Clock,
		CtrlLatency: 2 * time.Millisecond,
		routes:      make(map[netem.IP]int),
		defRoute:    -1,
		index:       make(map[Match][]*flowEntry),
		sigCount:    make(map[matchSig]int),
		micro:       make(map[microKey]microEntry),
		microOn:     true,
		packetIns:   vclock.NewMailbox[PacketIn](net.Clock),
		removals:    vclock.NewMailbox[FlowRemoved](net.Clock),
		events:      vclock.NewMailbox[SwitchEvent](net.Clock),
	}
	for i := 1; i <= n; i++ {
		s.ports = append(s.ports, &netem.Port{Dev: s, ID: i})
	}
	return s
}

// DeviceName implements netem.Device.
func (s *Switch) DeviceName() string { return s.name }

// BindShardClock implements netem.ShardClockBinder: the switch's flow
// timers and control-channel mailboxes move to the shard's clock. Call
// it before any traffic or controller connection; the controller
// receiving from these mailboxes must live on the same shard — the
// control channel is an intra-shard primitive.
func (s *Switch) BindShardClock(clk vclock.Clock) {
	s.clk = clk
	s.packetIns.Init(clk)
	s.removals.Init(clk)
	s.events.Init(clk)
}

// Port returns the port numbered i (1-based).
func (s *Switch) Port(i int) *netem.Port {
	return s.ports[i-1]
}

// AddRoute sets the NORMAL-forwarding route for a host address.
func (s *Switch) AddRoute(ip netem.IP, port int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[ip] = port
	s.epoch.Add(1)
}

// rangeRoute is one NORMAL-forwarding prefix route: addresses matching
// base under mask egress on port. Checked after the exact host routes,
// before the default.
type rangeRoute struct {
	base, mask netem.IP
	port       int
}

// AddRouteRange sets a NORMAL-forwarding route for a whole address
// block (base/mask), consulted when no exact host route matches. One
// entry covers an arbitrarily large population — the load engine routes
// its entire CGNAT client block with a single range instead of one host
// route (and one forwarding-epoch bump, which would invalidate the
// microflow cache) per flow.
func (s *Switch) AddRouteRange(base, mask netem.IP, port int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.ranges {
		if r.base == base&mask && r.mask == mask {
			s.ranges[i].port = port
			s.epoch.Add(1)
			return
		}
	}
	s.ranges = append(s.ranges, rangeRoute{base: base & mask, mask: mask, port: port})
	s.epoch.Add(1)
}

// SetDefaultRoute sets the NORMAL route for unknown destinations
// (toward the cloud).
func (s *Switch) SetDefaultRoute(port int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defRoute = port
	s.epoch.Add(1)
}

// PathEpoch implements netem.PathDevice: the forwarding-state version
// compiled delivery validates against.
func (s *Switch) PathEpoch() uint64 { return s.epoch.Load() }

// SetMicroflow enables or disables the microflow cache (enabled by
// default); disabling clears it. Differential tests use this to compare
// cached and uncached classification.
func (s *Switch) SetMicroflow(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.microOn = on
	clear(s.micro)
}

// MicroStats reports microflow cache hits and misses.
func (s *Switch) MicroStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.microHits, s.microMisses
}

// Connect attaches the controller; punted packets and flow removals are
// delivered on the returned mailboxes after the control-channel latency.
func (s *Switch) Connect() (*vclock.Mailbox[PacketIn], *vclock.Mailbox[FlowRemoved]) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.connected = true
	return s.packetIns, s.removals
}

// HandlePacket implements netem.Device: the flow table pipeline.
func (s *Switch) HandlePacket(pkt *netem.Packet, in *netem.Port) {
	inPort := 0
	if in != nil {
		inPort = in.ID
	}
	s.process(pkt, inPort)
}

// process looks up the table and applies the winning entry's actions,
// falling back to NORMAL forwarding on a miss. A microflow-cache hit
// skips the tuple-space search: the whole classification is one map
// probe.
func (s *Switch) process(pkt *netem.Packet, inPort int) {
	s.mu.Lock()
	var best *flowEntry
	normalPort := -1
	key := microKey{inPort: inPort, src: pkt.Src, dst: pkt.Dst}
	epoch := s.epoch.Load()
	if me, ok := s.micro[key]; s.microOn && ok && me.epoch == epoch {
		best, normalPort = me.entry, me.port
		s.microHits++
	} else {
		for sig := range s.sigCount {
			for _, e := range s.index[sig.project(pkt, inPort)] {
				if e.removed {
					continue
				}
				if best == nil || e.Priority > best.Priority ||
					(e.Priority == best.Priority && e.seq < best.seq) {
					best = e
				}
			}
		}
		if best == nil {
			normalPort = s.normalRouteLocked(pkt.Dst.IP)
		}
		if s.microOn {
			s.microMisses++
			if len(s.micro) >= microCap {
				clear(s.micro)
			}
			s.micro[key] = microEntry{epoch: epoch, entry: best, port: normalPort}
		}
	}
	if pkt.Recording() {
		s.recordHopLocked(pkt, best, epoch)
	}
	if best == nil {
		s.normal++
		s.mu.Unlock()
		if normalPort < 1 {
			s.drop(pkt)
			return
		}
		s.send(pkt, normalPort)
		return
	}
	best.lastUsed = s.clk.Now()
	best.packets++
	best.bytes += int64(pkt.WireSize())
	actions := best.Actions
	s.mu.Unlock()
	s.apply(pkt, inPort, actions)
}

// normalRouteLocked resolves the NORMAL egress for a destination;
// callers hold s.mu. The result is < 1 when no route exists.
func (s *Switch) normalRouteLocked(ip netem.IP) int {
	if port, ok := s.routes[ip]; ok {
		return port
	}
	for _, r := range s.ranges {
		if ip&r.mask == r.base {
			return r.port
		}
	}
	return s.defRoute
}

// drop counts and recycles an undeliverable packet.
func (s *Switch) drop(pkt *netem.Packet) {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
	pkt.Release()
}

// recordHopLocked appends this switch to pkt's flight-plan recording,
// or aborts it when the decision is not replayable (punt, drop). The
// recorded field mask is the union of the fields any installed flow
// matches on, plus the destination address the NORMAL route examines —
// packets differing only in unexamined fields would classify
// identically, so they may share the compiled path. Callers hold s.mu.
func (s *Switch) recordHopLocked(pkt *netem.Packet, e *flowEntry, epoch uint64) {
	mask := netem.FieldDstIP
	for sig := range s.sigCount {
		if sig&sigSrcIP != 0 {
			mask |= netem.FieldSrcIP
		}
		if sig&sigSrcPort != 0 {
			mask |= netem.FieldSrcPort
		}
		if sig&sigDstIP != 0 {
			mask |= netem.FieldDstIP
		}
		if sig&sigDstPort != 0 {
			mask |= netem.FieldDstPort
		}
		// sigInPort needs no key bit: a plan replays one concrete path,
		// which fixes the ingress port.
	}
	if e == nil {
		pkt.RecordHop(s, epoch, netem.Rewrite{}, mask, 0, s.touchNormal)
		return
	}
	rw, ok := compileActions(e.Actions)
	if !ok {
		pkt.AbortRecording()
		return
	}
	pkt.RecordHop(s, epoch, rw, mask, 0, func(p *netem.Packet, at time.Time) {
		s.touchFlow(e, p, at)
	})
}

// touchFlow replays per-entry accounting for a compiled traversal; at
// is the packet's arrival instant at the switch.
func (s *Switch) touchFlow(e *flowEntry, pkt *netem.Packet, at time.Time) {
	s.mu.Lock()
	if !e.removed {
		e.lastUsed = at
		e.packets++
		e.bytes += int64(pkt.WireSize())
	}
	s.mu.Unlock()
}

// touchNormal replays the NORMAL-forwarding counter for a compiled
// traversal.
func (s *Switch) touchNormal(_ *netem.Packet, _ time.Time) {
	s.mu.Lock()
	s.normal++
	s.mu.Unlock()
}

// compileActions folds an action list into a single rewrite, reporting
// whether the list is replayable: rewrites followed by a forwarding
// output. Punts, drops, and output-less lists are not.
func compileActions(actions []Action) (netem.Rewrite, bool) {
	var rw netem.Rewrite
	for _, a := range actions {
		switch act := a.(type) {
		case SetDstIP:
			rw.Fields |= netem.FieldDstIP
			rw.Dst.IP = act.IP
		case SetDstPort:
			rw.Fields |= netem.FieldDstPort
			rw.Dst.Port = act.Port
		case SetSrcIP:
			rw.Fields |= netem.FieldSrcIP
			rw.Src.IP = act.IP
		case SetSrcPort:
			rw.Fields |= netem.FieldSrcPort
			rw.Src.Port = act.Port
		case Output:
			return rw, true
		case OutputNormal:
			return rw, true
		default:
			return netem.Rewrite{}, false
		}
	}
	return netem.Rewrite{}, false
}

// apply executes an action list on pkt.
func (s *Switch) apply(pkt *netem.Packet, inPort int, actions []Action) {
	for _, a := range actions {
		switch act := a.(type) {
		case SetDstIP:
			pkt.Dst.IP = act.IP
		case SetDstPort:
			pkt.Dst.Port = act.Port
		case SetSrcIP:
			pkt.Src.IP = act.IP
		case SetSrcPort:
			pkt.Src.Port = act.Port
		case Output:
			s.send(pkt, act.Port)
			return
		case OutputNormal:
			s.forwardNormal(pkt)
			return
		case OutputController:
			s.puntToController(pkt, inPort)
			return
		case Drop:
			s.mu.Lock()
			s.dropped++
			s.mu.Unlock()
			pkt.Release()
			return
		}
	}
	// An action list without an output terminates in a drop, per spec.
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
	pkt.Release()
}

func (s *Switch) send(pkt *netem.Packet, port int) {
	if port < 1 || port > len(s.ports) {
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		pkt.Release()
		return
	}
	s.ports[port-1].Send(pkt)
}

func (s *Switch) forwardNormal(pkt *netem.Packet) {
	s.mu.Lock()
	port := s.normalRouteLocked(pkt.Dst.IP)
	s.mu.Unlock()
	if port < 1 {
		s.drop(pkt)
		return
	}
	s.send(pkt, port)
}

func (s *Switch) puntToController(pkt *netem.Packet, inPort int) {
	s.mu.Lock()
	connected := s.connected
	s.punted++
	s.mu.Unlock()
	defer pkt.Release()
	if !connected {
		return
	}
	delay := s.CtrlLatency
	if f := s.faults.Load(); f != nil {
		key := "pktin/" + pkt.Src.String() + ">" + pkt.Dst.String()
		if f.drop(key, f.PacketInLoss) {
			s.pktInDrops.Add(1)
			return
		}
		if extra := f.delay(key); extra > 0 {
			s.ctrlDelayed.Add(1)
			delay += extra
		}
	}
	// The controller holds the punted copy while it deploys, so it gets
	// its own clone; the controller releases it when done with it.
	cp := pkt.Clone()
	s.clk.Post(delay, func() {
		s.packetIns.Send(PacketIn{Pkt: cp, InPort: inPort})
	})
}

// InstallFlow adds a flow entry (FlowMod ADD). The call models the
// control-channel latency before the entry becomes active. Under
// channel faults the message may be silently lost: the switch never
// installs the entry and the caller is not told — reconciliation is
// what repairs the divergence.
func (s *Switch) InstallFlow(spec FlowSpec) {
	delay := s.CtrlLatency
	if f := s.faults.Load(); f != nil {
		key := "mod/" + spec.Match.String()
		if f.drop(key, f.FlowModLoss) {
			s.flowModDrops.Add(1)
			s.clk.Sleep(delay)
			return
		}
		if extra := f.delay(key); extra > 0 {
			s.ctrlDelayed.Add(1)
			delay += extra
		}
	}
	s.clk.Sleep(delay)
	s.mu.Lock()
	e := s.installLocked(spec)
	s.mu.Unlock()
	s.armTimers(e)
}

// installLocked appends one entry to the table and classifier index.
// Callers hold s.mu and arm the entry's timers after unlocking.
func (s *Switch) installLocked(spec FlowSpec) *flowEntry {
	s.seq++
	e := &flowEntry{FlowSpec: spec, seq: s.seq, lastUsed: s.clk.Now()}
	s.table = append(s.table, e)
	s.index[spec.Match] = append(s.index[spec.Match], e)
	s.sigCount[spec.Match.signature()]++
	s.epoch.Add(1)
	return e
}

// armTimers starts an entry's idle and hard eviction timers.
func (s *Switch) armTimers(e *flowEntry) {
	if e.IdleTimeout > 0 {
		s.scheduleIdleCheck(e, e.IdleTimeout)
	}
	if e.HardTimeout > 0 {
		s.clk.Post(e.HardTimeout, func() {
			s.evict(e, false)
		})
	}
}

// scheduleIdleCheck arms the idle-eviction timer after wait, re-arming
// lazily when the entry has seen traffic within its idle timeout.
func (s *Switch) scheduleIdleCheck(e *flowEntry, wait time.Duration) {
	s.clk.Post(wait, func() {
		s.mu.Lock()
		if e.removed {
			s.mu.Unlock()
			return
		}
		silent := s.clk.Since(e.lastUsed)
		s.mu.Unlock()
		if silent >= e.IdleTimeout {
			s.evict(e, true)
			return
		}
		s.scheduleIdleCheck(e, e.IdleTimeout-silent)
	})
}

// evict removes an entry and notifies the controller.
func (s *Switch) evict(e *flowEntry, idle bool) {
	s.mu.Lock()
	if e.removed {
		s.mu.Unlock()
		return
	}
	e.removed = true
	s.removedCount++
	s.dropIndexLocked(e)
	s.compactLocked()
	s.epoch.Add(1)
	connected := s.connected
	s.mu.Unlock()
	if connected {
		delay := s.CtrlLatency
		if f := s.faults.Load(); f != nil {
			key := "rem/" + e.Match.String()
			if f.drop(key, f.FlowRemovedLoss) {
				s.flowRemDrops.Add(1)
				return
			}
			if extra := f.delay(key); extra > 0 {
				s.ctrlDelayed.Add(1)
				delay += extra
			}
		}
		msg := FlowRemoved{Match: e.Match, Cookie: e.Cookie, IdleTimeout: idle}
		s.clk.Post(delay, func() {
			s.removals.Send(msg)
		})
	}
}

// DeleteFlows removes all entries with the given cookie (FlowMod
// DELETE); no FlowRemoved is generated for explicit deletion.
func (s *Switch) DeleteFlows(cookie uint64) int {
	delay := s.CtrlLatency
	if f := s.faults.Load(); f != nil {
		key := fmt.Sprintf("del/%d", cookie)
		if f.drop(key, f.FlowModLoss) {
			s.flowModDrops.Add(1)
			s.clk.Sleep(delay)
			return 0
		}
		if extra := f.delay(key); extra > 0 {
			s.ctrlDelayed.Add(1)
			delay += extra
		}
	}
	s.clk.Sleep(delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.table[:0]
	removed := 0
	for _, e := range s.table {
		if e.removed {
			continue // lazily evicted leftover, drop it for good
		}
		if e.Cookie == cookie {
			e.removed = true
			s.dropIndexLocked(e)
			removed++
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(s.table); i++ {
		s.table[i] = nil
	}
	s.table = kept
	s.removedCount = 0
	s.epoch.Add(1)
	return removed
}

// dropIndexLocked unlinks an evicted entry from the classifier index.
// The per-Match bucket is tiny (re-installs of one flow), so the swap
// removal is O(1) in practice; selection among bucket entries compares
// priority and sequence, so bucket order is irrelevant.
func (s *Switch) dropIndexLocked(e *flowEntry) {
	idx := s.index[e.Match]
	for i, cur := range idx {
		if cur == e {
			idx[i] = idx[len(idx)-1]
			idx[len(idx)-1] = nil
			idx = idx[:len(idx)-1]
			break
		}
	}
	if len(idx) == 0 {
		delete(s.index, e.Match)
	} else {
		s.index[e.Match] = idx
	}
	sig := e.Match.signature()
	if s.sigCount[sig]--; s.sigCount[sig] == 0 {
		delete(s.sigCount, sig)
	}
}

// compactLocked rebuilds the table in place once evicted entries
// outnumber live ones. Eviction itself only marks the entry, so a flow
// churn (install + idle-evict per warm packet-in) costs amortized O(1)
// instead of one full-table copy per evicted flow. Lookups already skip
// removed entries, so compaction is invisible except for cost.
func (s *Switch) compactLocked() {
	if s.removedCount*2 <= len(s.table) {
		return
	}
	kept := s.table[:0]
	for _, e := range s.table {
		if !e.removed {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(s.table); i++ {
		s.table[i] = nil
	}
	s.table = kept
	s.removedCount = 0
}

// DeleteExact removes the single live entry with exactly this match
// and priority (FlowMod DELETE_STRICT); no FlowRemoved is generated.
// It reports whether an entry was removed. Subject to flow-mod loss.
func (s *Switch) DeleteExact(m Match, priority int) bool {
	delay := s.CtrlLatency
	if f := s.faults.Load(); f != nil {
		key := "del/" + m.String()
		if f.drop(key, f.FlowModLoss) {
			s.flowModDrops.Add(1)
			s.clk.Sleep(delay)
			return false
		}
		if extra := f.delay(key); extra > 0 {
			s.ctrlDelayed.Add(1)
			delay += extra
		}
	}
	s.clk.Sleep(delay)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteExactLocked(m, priority)
}

// deleteExactLocked removes the first live entry with the exact match
// and priority. Callers hold s.mu.
func (s *Switch) deleteExactLocked(m Match, priority int) bool {
	for _, e := range s.index[m] {
		if !e.removed && e.Priority == priority {
			e.removed = true
			s.removedCount++
			s.dropIndexLocked(e)
			s.compactLocked()
			s.epoch.Add(1)
			return true
		}
	}
	return false
}

// ApplyBundle applies a reconciliation repair set — orphan deletions
// followed by missing installs — as one barriered, acknowledged
// exchange: the OpenFlow BUNDLE commit idiom. Like ResyncFrom it is
// not subject to channel faults; reconcilers repair with it precisely
// so that repairs never themselves need repairing, and so that repair
// traffic does not perturb the fault model's per-message loss streams.
// It returns how many deletes removed a live entry.
func (s *Switch) ApplyBundle(deletes, installs []FlowSpec) int {
	s.clk.Sleep(2 * s.CtrlLatency) // bundle transfer + commit round trip
	s.mu.Lock()
	deleted := 0
	for _, spec := range deletes {
		if s.deleteExactLocked(spec.Match, spec.Priority) {
			deleted++
		}
	}
	entries := make([]*flowEntry, 0, len(installs))
	for _, spec := range installs {
		entries = append(entries, s.installLocked(spec))
	}
	s.mu.Unlock()
	for _, e := range entries {
		s.armTimers(e)
	}
	return deleted
}

// Barrier models an OFPT_BARRIER round trip: it returns once all
// preceding control messages have been processed, or false when the
// barrier itself was lost to channel faults.
func (s *Switch) Barrier() bool {
	s.clk.Sleep(2 * s.CtrlLatency)
	if f := s.faults.Load(); f != nil && f.drop("barrier", f.FlowModLoss) {
		s.flowModDrops.Add(1)
		return false
	}
	return true
}

// Restart models a switch reboot: the flow table, classifier index,
// and microflow cache are lost; static configuration (routes, port
// wiring, controller connection) survives. The controller learns of
// the reboot on the event mailbox after the channel latency and is
// expected to ResyncFrom its desired state.
func (s *Switch) Restart() {
	s.mu.Lock()
	s.wipeTableLocked()
	connected := s.connected
	s.mu.Unlock()
	if connected {
		at := s.clk.Now()
		s.clk.Post(s.CtrlLatency, func() {
			s.events.Send(SwitchEvent{Restarted: true, At: at})
		})
	}
}

// wipeTableLocked drops every flow entry. Entries are marked removed
// so in-flight idle/hard timers and compiled touch callbacks no-op.
// Callers hold s.mu.
func (s *Switch) wipeTableLocked() {
	for i, e := range s.table {
		e.removed = true
		s.table[i] = nil
	}
	s.table = s.table[:0]
	s.removedCount = 0
	clear(s.index)
	clear(s.sigCount)
	clear(s.micro)
	s.epoch.Add(1)
}

// ResyncFrom replaces the whole flow table with specs in one reliable
// barriered exchange — the recovery primitive the controller uses
// after a restart. Unlike InstallFlow it is not subject to channel
// faults: the real-world analogue is a bundled, acknowledged,
// retried-until-applied sync.
func (s *Switch) ResyncFrom(specs []FlowSpec) {
	s.clk.Sleep(s.CtrlLatency)
	s.mu.Lock()
	s.wipeTableLocked()
	entries := make([]*flowEntry, 0, len(specs))
	for _, spec := range specs {
		entries = append(entries, s.installLocked(spec))
	}
	s.mu.Unlock()
	for _, e := range entries {
		s.armTimers(e)
	}
}

// FlowTable reads back the live table as FlowSpecs (a flow-stats
// round trip), sorted by priority descending then match string. The
// reconciler audits this snapshot against its desired state.
func (s *Switch) FlowTable() []FlowSpec {
	s.clk.Sleep(2 * s.CtrlLatency)
	s.mu.Lock()
	out := make([]FlowSpec, 0, len(s.table))
	for _, e := range s.table {
		if e.removed {
			continue
		}
		out = append(out, e.FlowSpec)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Match.String() < out[j].Match.String()
	})
	return out
}

// PacketOut re-injects a packet held by the controller, applying the
// given actions (typically after installing the redirect flows).
func (s *Switch) PacketOut(pkt *netem.Packet, inPort int, actions []Action) {
	delay := s.CtrlLatency
	if f := s.faults.Load(); f != nil {
		key := "out/" + pkt.Src.String() + ">" + pkt.Dst.String()
		if f.drop(key, f.PacketOutLoss) {
			s.pktOutDrops.Add(1)
			s.clk.Sleep(delay)
			return
		}
		if extra := f.delay(key); extra > 0 {
			s.ctrlDelayed.Add(1)
			delay += extra
		}
	}
	s.clk.Sleep(delay)
	if h := s.onPacketOut.Load(); h != nil {
		(*h)(pkt, inPort)
	}
	if len(actions) == 0 {
		// OFPP_TABLE: run the packet through the pipeline again.
		s.process(pkt.Clone(), inPort)
		return
	}
	s.apply(pkt.Clone(), inPort, actions)
}

// SetPacketOutHook installs (or, with nil, clears) the packet-out
// observer. See the onPacketOut field comment for the contract.
func (s *Switch) SetPacketOutHook(h func(pkt *netem.Packet, inPort int)) {
	if h == nil {
		s.onPacketOut.Store(nil)
		return
	}
	s.onPacketOut.Store(&h)
}

// Flows returns a snapshot of the table sorted by priority then install
// order.
func (s *Switch) Flows() []FlowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FlowStats, 0, len(s.table))
	for _, e := range s.table {
		if e.removed {
			continue
		}
		out = append(out, FlowStats{
			Priority: e.Priority,
			Match:    e.Match,
			Cookie:   e.Cookie,
			Packets:  e.packets,
			Bytes:    e.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Match.String() < out[j].Match.String()
	})
	return out
}

// Counters reports punted, dropped, and NORMAL-forwarded packet counts.
func (s *Switch) Counters() (punted, dropped, normal int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.punted, s.dropped, s.normal
}
