package openflow

import (
	"fmt"
	"testing"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// BenchmarkTableLookup measures the flow-table pipeline with a table of
// per-client redirect pairs, the shape a loaded gNB carries.
func BenchmarkTableLookup(b *testing.B) {
	for _, tableSize := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("flows=%d", tableSize), func(b *testing.B) {
			clk := vclock.New()
			clk.Run(func() {
				n := netem.NewNetwork(clk, 1)
				sw := NewSwitch(n, "sw", 2)
				sw.CtrlLatency = 0
				sink := &recorder{name: "sink"}
				n.Connect(&netem.Port{Dev: sink}, sw.Port(1), netem.LinkConfig{})
				for i := 0; i < tableSize; i++ {
					sw.InstallFlow(FlowSpec{
						Priority: 20,
						Match: Match{
							SrcIP:   netem.ParseIP("192.168.1.1") + netem.IP(i),
							DstIP:   netem.ParseIP("203.0.113.1"),
							DstPort: 80,
						},
						Actions: []Action{SetDstIP{netem.ParseIP("10.0.0.2")}, SetDstPort{20000}, Output{1}},
					})
				}
				pkt := &netem.Packet{
					Src: netem.HostPort{IP: netem.ParseIP("192.168.1.1") + netem.IP(tableSize/2), Port: 50000},
					Dst: netem.ParseHostPort("203.0.113.1:80"),
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sw.HandlePacket(pkt.Clone(), nil)
				}
			})
		})
	}
}
