package openflow

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// recorder is a netem.Device that remembers delivered packets.
type recorder struct {
	name string
	got  []*netem.Packet
}

func (r *recorder) DeviceName() string { return r.name }
func (r *recorder) HandlePacket(pkt *netem.Packet, in *netem.Port) {
	r.got = append(r.got, pkt)
}

// TestHighestPriorityWinsProperty builds random flow tables and checks
// the switch's table lookup against a brute-force reference model.
func TestHighestPriorityWinsProperty(t *testing.T) {
	type flowDesc struct {
		Priority uint8
		DstPort  uint16
		WildDst  bool
		OutPort  uint8
	}
	f := func(flows []flowDesc, pktPort uint16) bool {
		if len(flows) > 16 {
			flows = flows[:16]
		}
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			n := netem.NewNetwork(clk, 1)
			sw := NewSwitch(n, "sw", 4)
			sw.CtrlLatency = 0
			sinks := make([]*recorder, 4)
			for i := range sinks {
				sinks[i] = &recorder{name: string(rune('a' + i))}
				// Attach each sink behind a zero-latency link.
				n.Connect(&netem.Port{Dev: sinks[i]}, sw.Port(i+1), netem.LinkConfig{})
			}
			type ref struct {
				prio int
				out  int
				seq  int
			}
			var refs []ref
			for i, fd := range flows {
				out := int(fd.OutPort%4) + 1
				match := Match{DstPort: fd.DstPort}
				if fd.WildDst {
					match.DstPort = 0
				}
				sw.InstallFlow(FlowSpec{
					Priority: int(fd.Priority),
					Match:    match,
					Actions:  []Action{Output{out}},
				})
				if match.DstPort == 0 || match.DstPort == pktPort {
					refs = append(refs, ref{prio: int(fd.Priority), out: out, seq: i})
				}
			}
			pkt := &netem.Packet{
				Src: netem.ParseHostPort("10.0.0.1:1"),
				Dst: netem.HostPort{IP: netem.ParseIP("10.0.0.9"), Port: pktPort},
			}
			sw.HandlePacket(pkt, nil)
			clk.Sleep(time.Second) // drain deliveries

			// Reference: highest priority wins; ties go to the earliest
			// installed entry.
			wantOut := -1
			bestPrio, bestSeq := -1, 1<<30
			for _, r := range refs {
				if r.prio > bestPrio || (r.prio == bestPrio && r.seq < bestSeq) {
					bestPrio, bestSeq, wantOut = r.prio, r.seq, r.out
				}
			}
			gotOut := -1
			total := 0
			for i, sink := range sinks {
				total += len(sink.got)
				if len(sink.got) > 0 {
					gotOut = i + 1
				}
			}
			if wantOut == -1 {
				// No flow matched: NORMAL with no routes drops.
				if total != 0 {
					ok = false
				}
				return
			}
			if total != 1 || gotOut != wantOut {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestRewriteComposesProperty checks that chained set-field actions
// compose left to right, for arbitrary rewrite values.
func TestRewriteComposesProperty(t *testing.T) {
	f := func(dstIP1, dstIP2 uint32, port1, port2 uint16) bool {
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			n := netem.NewNetwork(clk, 1)
			sw := NewSwitch(n, "sw", 1)
			sw.CtrlLatency = 0
			sink := &recorder{name: "sink"}
			n.Connect(&netem.Port{Dev: sink}, sw.Port(1), netem.LinkConfig{})
			sw.InstallFlow(FlowSpec{
				Priority: 1,
				Match:    Match{},
				Actions: []Action{
					SetDstIP{netem.IP(dstIP1)},
					SetDstPort{port1},
					SetDstIP{netem.IP(dstIP2)}, // later rewrite wins
					SetSrcPort{port2},
					Output{1},
				},
			})
			sw.HandlePacket(&netem.Packet{
				Src: netem.ParseHostPort("10.0.0.1:9"),
				Dst: netem.ParseHostPort("10.0.0.2:80"),
			}, nil)
			clk.Sleep(time.Second)
			if len(sink.got) != 1 {
				ok = false
				return
			}
			got := sink.got[0]
			if got.Dst.IP != netem.IP(dstIP2) || got.Dst.Port != port1 || got.Src.Port != port2 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
