package openflow

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// ChannelFaults is a seeded fault model for one switch's control
// channel: packet-in, flow-mod, flow-removed, and packet-out messages
// are independently lost or delayed. Loss and delay draws come from a
// per-message-key RNG stream (keyed by the flow or match the message
// concerns), so the outcome for any given message is a pure function of
// the seed and that message's position in its own stream — goroutine
// interleaving between unrelated flows cannot perturb the draws, which
// keeps chaos runs reproducible.
//
// A nil *ChannelFaults (the default) means a perfect channel; the
// switch's fast paths check a single atomic pointer, so the model costs
// nothing when disabled.
type ChannelFaults struct {
	// Seed derives every per-key RNG stream.
	Seed int64
	// PacketInLoss drops punted packets on their way to the controller.
	PacketInLoss float64
	// FlowModLoss drops flow-mod messages (install and delete): the
	// switch never sees them, the controller believes they applied.
	FlowModLoss float64
	// FlowRemovedLoss drops eviction notifications, leaving the
	// controller's FlowMemory believing a flow still exists.
	FlowRemovedLoss float64
	// PacketOutLoss drops re-injected held packets.
	PacketOutLoss float64
	// ReorderRate delays a message by ExtraDelay with this probability,
	// letting later messages overtake it.
	ReorderRate float64
	// ExtraDelay is the added control-channel delay for reordered
	// messages.
	ExtraDelay time.Duration

	mu   sync.Mutex
	rngs map[string]*vclock.Rand
}

// rng returns the deterministic stream for one message key, creating it
// on first use from the plan seed and the key.
func (f *ChannelFaults) rng(key string) *vclock.Rand {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rngs == nil {
		f.rngs = make(map[string]*vclock.Rand)
	}
	r, ok := f.rngs[key]
	if !ok {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", f.Seed, key)
		r = vclock.NewRand(int64(h.Sum64() >> 1))
		f.rngs[key] = r
	}
	return r
}

// drop draws the loss decision for one message.
func (f *ChannelFaults) drop(key string, p float64) bool {
	if p <= 0 {
		return false
	}
	return f.rng(key).Float64() < p
}

// delay draws the reorder decision for one message: ExtraDelay when the
// message is reordered, zero otherwise.
func (f *ChannelFaults) delay(key string) time.Duration {
	if f.ReorderRate <= 0 || f.ExtraDelay <= 0 {
		return 0
	}
	if f.rng(key).Float64() < f.ReorderRate {
		return f.ExtraDelay
	}
	return 0
}

// ChannelStats counts control-channel faults a switch has suffered.
// The counters live on the switch (not the fault plan), so they survive
// the fault window being cleared.
type ChannelStats struct {
	PacketInDrops    int64
	FlowModDrops     int64
	FlowRemovedDrops int64
	PacketOutDrops   int64
	Delayed          int64
}

// Total sums every dropped-message counter.
func (c ChannelStats) Total() int64 {
	return c.PacketInDrops + c.FlowModDrops + c.FlowRemovedDrops + c.PacketOutDrops
}

// SwitchEvent notifies the controller of a datapath lifecycle change.
type SwitchEvent struct {
	// Restarted reports the switch rebooted and lost its flow table.
	Restarted bool
	// At is the virtual instant of the event (before channel latency).
	At time.Time
}

// SetChannelFaults installs (or, with nil, removes) the control-channel
// fault model. Safe to call mid-run from a clock callback.
func (s *Switch) SetChannelFaults(f *ChannelFaults) {
	s.faults.Store(f)
}

// ChannelStats reports cumulative control-channel fault counters.
func (s *Switch) ChannelStats() ChannelStats {
	return ChannelStats{
		PacketInDrops:    s.pktInDrops.Load(),
		FlowModDrops:     s.flowModDrops.Load(),
		FlowRemovedDrops: s.flowRemDrops.Load(),
		PacketOutDrops:   s.pktOutDrops.Load(),
		Delayed:          s.ctrlDelayed.Load(),
	}
}

// Events returns the lifecycle event mailbox. The controller watches it
// to learn about switch restarts.
func (s *Switch) Events() *vclock.Mailbox[SwitchEvent] {
	return s.events
}
