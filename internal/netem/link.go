package netem

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Device is anything packets can be delivered to: a host NIC, a switch,
// a router. HandlePacket runs on a clock goroutine and owns the packet:
// it forwards it (ownership passes on) or keeps/releases it.
type Device interface {
	DeviceName() string
	// HandlePacket processes a packet arriving on in. in is nil for
	// locally originated packets (loopback delivery).
	HandlePacket(pkt *Packet, in *Port)
}

// Port is one attachment point of a device. A port is connected to at
// most one link.
type Port struct {
	Dev  Device
	ID   int
	link *Link
	peer *Port
}

// Peer returns the port at the other end of this port's link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Send transmits pkt out of this port onto the attached link, taking
// ownership of pkt. Packets sent on an unconnected port are dropped.
func (p *Port) Send(pkt *Packet) {
	if p.link == nil {
		pkt.Release()
		return
	}
	p.link.transmit(pkt, p)
}

// LinkConfig describes one direction-symmetric link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the transmission rate in bytes per second; zero means
	// infinitely fast (no serialization delay).
	Bandwidth float64
	// LossRate drops each packet independently with this probability.
	LossRate float64
}

// GbpsToBytes converts gigabits per second to the bytes-per-second unit
// LinkConfig.Bandwidth uses.
func GbpsToBytes(gbps float64) float64 { return gbps * 1e9 / 8 }

// Link joins two ports with latency, per-direction serialization, and
// optional random loss.
type Link struct {
	clk vclock.Clock
	rng *vclock.Rand
	net *Network
	cfg LinkConfig
	a   *Port
	b   *Port

	// Per-direction clocks for sharded execution: a transmission runs on
	// the sending device's shard clock. Both default to clk; BindShards
	// rebinds them. xAB/xBA are set when the endpoints live on different
	// shards — delivery then crosses via the group's record exchange
	// instead of a local Post2.
	clkA, clkB vclock.Clock
	xAB, xBA   *shardBoundary

	// down marks the link administratively/physically dead: every packet
	// offered while set is dropped. Atomic so the fast-path validator can
	// check it without taking mu.
	down atomic.Bool

	mu sync.Mutex
	// nextFree tracks, per transmit direction, when the transmitter
	// finishes serializing the previous packet.
	nextFreeA time.Time // for packets leaving a
	nextFreeB time.Time // for packets leaving b

	// stats: sent counts every packet offered to the direction
	// (pre-loss); drop counts the subset the link lost. downDrops is the
	// subset of drops caused by the link being down.
	sentA, sentB int64
	dropA, dropB int64
	downDrops    int64
}

// SetDown marks the link down (true) or up (false). While down, every
// packet offered to either direction is dropped. In-flight packets that
// already left the transmitter still arrive: SetDown cuts the cable, it
// does not vaporize propagating signals.
func (l *Link) SetDown(down bool) { l.down.Store(down) }

// IsDown reports whether the link is currently down.
func (l *Link) IsDown() bool { return l.down.Load() }

// deliverPacket hands an arriving packet to the receiving device. It is
// a top-level Post2 callback so scheduling a delivery allocates nothing.
func deliverPacket(a, b any) {
	to := b.(*Port)
	to.Dev.HandlePacket(a.(*Packet), to)
}

// transmit models serialization + propagation and schedules delivery of
// pkt at the peer device. The link owns pkt from here: the receiver gets
// this very packet (senders that retransmit pass clones), or the pool
// gets it back if the link drops it.
func (l *Link) transmit(pkt *Packet, from *Port) {
	if l.net != nil && l.net.captureActive() {
		l.net.capturePacket(pkt)
	}
	if pkt.rec != nil {
		pkt.recordLink(l, from == l.a)
	}
	clk, x := l.clk, (*shardBoundary)(nil)
	l.mu.Lock()
	var nextFree *time.Time
	var to *Port
	if from == l.a {
		nextFree, to = &l.nextFreeA, l.b
		l.sentA++
		if l.clkA != nil {
			clk, x = l.clkA, l.xAB
		}
	} else {
		nextFree, to = &l.nextFreeB, l.a
		l.sentB++
		if l.clkB != nil {
			clk, x = l.clkB, l.xBA
		}
	}
	if l.down.Load() {
		if from == l.a {
			l.dropA++
		} else {
			l.dropB++
		}
		l.downDrops++
		l.mu.Unlock()
		pkt.Release()
		return
	}
	if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
		if from == l.a {
			l.dropA++
		} else {
			l.dropB++
		}
		l.mu.Unlock()
		pkt.Release()
		return
	}
	now := clk.Now()
	start := now
	if nextFree.After(start) {
		start = *nextFree
	}
	txTime := time.Duration(0)
	if l.cfg.Bandwidth > 0 {
		txTime = time.Duration(float64(pkt.WireSize()) / l.cfg.Bandwidth * float64(time.Second))
	}
	end := start.Add(txTime)
	*nextFree = end
	deliverAt := end.Add(l.cfg.Latency)
	l.mu.Unlock()

	if x != nil {
		// Boundary link: the packet changes shards. Ownership transfers
		// with the record — the receiving shard's clock fires the same
		// deliverPacket callback once the window containing deliverAt
		// opens. The delay is ≥ the link latency ≥ the group lookahead,
		// which is exactly the conservative safety condition.
		x.g.Send2(x.from, x.to, deliverAt.Sub(now), deliverPacket, pkt, to)
		return
	}
	clk.Post2(deliverAt.Sub(now), deliverPacket, pkt, to)
}

// LinkStats reports per-direction link counters. Sent counts every
// packet offered to the link (before the loss decision), Dropped the
// packets the link lost, and Delivered = Sent − Dropped the packets that
// reached the far device.
type LinkStats struct {
	SentAB, DroppedAB, DeliveredAB int64 // packets leaving port a
	SentBA, DroppedBA, DeliveredBA int64 // packets leaving port b
	// DownDrops is the subset of drops (both directions) caused by the
	// link being down rather than random loss.
	DownDrops int64
}

// Stats reports packets offered, dropped, and delivered in each
// direction (a→b, b→a).
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStats{
		SentAB: l.sentA, DroppedAB: l.dropA, DeliveredAB: l.sentA - l.dropA,
		SentBA: l.sentB, DroppedBA: l.dropB, DeliveredBA: l.sentB - l.dropB,
		DownDrops: l.downDrops,
	}
}
