package netem

import (
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Device is anything packets can be delivered to: a host NIC, a switch,
// a router. HandlePacket runs on a clock goroutine and owns the packet.
type Device interface {
	DeviceName() string
	// HandlePacket processes a packet arriving on in. in is nil for
	// locally originated packets (loopback delivery).
	HandlePacket(pkt *Packet, in *Port)
}

// Port is one attachment point of a device. A port is connected to at
// most one link.
type Port struct {
	Dev  Device
	ID   int
	link *Link
	peer *Port
}

// Peer returns the port at the other end of this port's link, or nil.
func (p *Port) Peer() *Port { return p.peer }

// Send transmits pkt out of this port onto the attached link. Packets
// sent on an unconnected port are dropped.
func (p *Port) Send(pkt *Packet) {
	if p.link == nil {
		return
	}
	p.link.transmit(pkt, p)
}

// LinkConfig describes one direction-symmetric link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the transmission rate in bytes per second; zero means
	// infinitely fast (no serialization delay).
	Bandwidth float64
	// LossRate drops each packet independently with this probability.
	LossRate float64
}

// GbpsToBytes converts gigabits per second to the bytes-per-second unit
// LinkConfig.Bandwidth uses.
func GbpsToBytes(gbps float64) float64 { return gbps * 1e9 / 8 }

// Link joins two ports with latency, per-direction serialization, and
// optional random loss.
type Link struct {
	clk vclock.Clock
	rng *vclock.Rand
	net *Network
	cfg LinkConfig
	a   *Port
	b   *Port

	mu sync.Mutex
	// nextFree tracks, per transmit direction, when the transmitter
	// finishes serializing the previous packet.
	nextFreeA time.Time // for packets leaving a
	nextFreeB time.Time // for packets leaving b

	// stats
	sentA, sentB int64
	dropA, dropB int64
}

// transmit models serialization + propagation and schedules delivery of
// a copy of pkt at the peer device.
func (l *Link) transmit(pkt *Packet, from *Port) {
	if l.net != nil {
		l.net.capturePacket(pkt)
	}
	l.mu.Lock()
	var nextFree *time.Time
	var to *Port
	if from == l.a {
		nextFree, to = &l.nextFreeA, l.b
		l.sentA++
	} else {
		nextFree, to = &l.nextFreeB, l.a
		l.sentB++
	}
	if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
		if from == l.a {
			l.dropA++
		} else {
			l.dropB++
		}
		l.mu.Unlock()
		return
	}
	now := l.clk.Now()
	start := now
	if nextFree.After(start) {
		start = *nextFree
	}
	txTime := time.Duration(0)
	if l.cfg.Bandwidth > 0 {
		txTime = time.Duration(float64(pkt.WireSize()) / l.cfg.Bandwidth * float64(time.Second))
	}
	end := start.Add(txTime)
	*nextFree = end
	deliverAt := end.Add(l.cfg.Latency)
	l.mu.Unlock()

	cp := pkt.Clone()
	l.clk.AfterFunc(deliverAt.Sub(now), func() {
		to.Dev.HandlePacket(cp, to)
	})
}

// Stats reports packets sent and dropped in each direction (a→b, b→a).
func (l *Link) Stats() (sentA, dropA, sentB, dropB int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sentA, l.dropA, l.sentB, l.dropB
}
