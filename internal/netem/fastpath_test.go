package netem

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// fpEnv is the compiled-delivery test topology: client — r1 — r2 — srv
// over three latency-only links, the shortest chain where a plan
// collapses more than one heap event.
type fpEnv struct {
	clk    *vclock.Virtual
	net    *Network
	client *Host
	srv    *Host
	r1, r2 *Router
}

func newFPEnv(clk *vclock.Virtual, fastpath bool, cfg LinkConfig) *fpEnv {
	n := NewNetwork(clk, 1)
	n.SetFastPath(fastpath)
	e := &fpEnv{clk: clk, net: n}
	e.client = n.NewHost("client", ParseIP("10.0.0.1"))
	e.srv = n.NewHost("srv", ParseIP("10.0.1.1"))
	e.r1 = NewRouter(n, "r1", 2)
	e.r2 = NewRouter(n, "r2", 2)
	n.Connect(e.client.NIC(), e.r1.Port(0), cfg)
	n.Connect(e.r1.Port(1), e.r2.Port(0), cfg)
	n.Connect(e.r2.Port(1), e.srv.NIC(), cfg)
	for _, r := range []*Router{e.r1, e.r2} {
		r.AddRoute(e.srv.IP(), r.Port(1))
		r.AddRoute(e.client.IP(), r.Port(0))
	}
	return e
}

// echoTrace runs a scripted exchange and returns the virtual-time
// stamped message trace observed at both ends. Fast path on and off
// must produce identical traces — that is the subsystem's contract.
func echoTrace(t *testing.T, fastpath bool, cfg LinkConfig, rounds, burst int) []string {
	t.Helper()
	var trace []string
	clk := vclock.New()
	clk.Run(func() {
		e := newFPEnv(clk, fastpath, cfg)
		ln, err := e.srv.Listen(80)
		if err != nil {
			t.Errorf("listen: %v", err)
			return
		}
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			for {
				msg, err := c.Recv()
				if err != nil {
					return
				}
				trace = append(trace, fmt.Sprintf("srv %v %q", clk.Now().Sub(vclock.Epoch), msg))
				c.Send(append([]byte("re:"), msg...))
			}
		})
		c, err := e.client.Dial(e.srv.Addr(80))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for r := 0; r < rounds; r++ {
			// A burst of same-instant sends forms a segment train on the
			// fast path; the baseline transmits each inline.
			for i := 0; i < burst; i++ {
				c.Send([]byte(fmt.Sprintf("r%d.%d", r, i)))
			}
			for i := 0; i < burst; i++ {
				msg, err := c.Recv()
				if err != nil {
					t.Errorf("recv round %d: %v", r, err)
					return
				}
				trace = append(trace, fmt.Sprintf("cli %v %q", clk.Now().Sub(vclock.Epoch), msg))
			}
		}
		if fastpath {
			if e.client.planCount.Load() == 0 {
				t.Error("fast path run compiled no flight plans")
			}
		} else if e.client.planCount.Load() != 0 {
			t.Error("disabled fast path still compiled flight plans")
		}
		c.Close()
	})
	return trace
}

func diffTraces(t *testing.T, on, off []string) {
	t.Helper()
	if len(on) != len(off) {
		t.Fatalf("trace lengths differ: fastpath %d, baseline %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Fatalf("traces diverge at %d:\nfastpath %s\nbaseline %s", i, on[i], off[i])
		}
	}
}

// TestFastPathTimelineEquality demands that compiled delivery and
// segment trains leave every message's content, order, and virtual
// arrival time exactly as the per-hop baseline produces them.
func TestFastPathTimelineEquality(t *testing.T) {
	cfg := LinkConfig{Latency: 3 * time.Millisecond}
	on := echoTrace(t, true, cfg, 5, 8)
	off := echoTrace(t, false, cfg, 5, 8)
	if len(on) == 0 {
		t.Fatal("empty trace")
	}
	diffTraces(t, on, off)
}

// TestFastPathRateLimitedEquality repeats the equality check on
// bandwidth-limited links, where serialization delay and the link's
// busy-until reservation must advance identically in both modes.
func TestFastPathRateLimitedEquality(t *testing.T) {
	cfg := LinkConfig{Latency: time.Millisecond, Bandwidth: GbpsToBytes(0.1)}
	on := echoTrace(t, true, cfg, 4, 6)
	off := echoTrace(t, false, cfg, 4, 6)
	diffTraces(t, on, off)
}

// TestFastPathLossyLinkNoCompile checks the abort rule: paths crossing
// a lossy link must never compile (the per-hop RNG draw order is part
// of reproducibility), and the traffic itself must still flow.
func TestFastPathLossyLinkNoCompile(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newFPEnv(clk, true, LinkConfig{Latency: time.Millisecond, LossRate: 0.05})
		ln, _ := e.srv.Listen(80)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			for {
				msg, err := c.Recv()
				if err != nil {
					return
				}
				c.Send(msg)
			}
		})
		c, err := e.client.Dial(e.srv.Addr(80))
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		for i := 0; i < 20; i++ {
			c.Send([]byte("x"))
			if _, err := c.Recv(); err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
		}
		if e.client.planCount.Load() != 0 || e.srv.planCount.Load() != 0 {
			t.Errorf("lossy path compiled plans: client %d, srv %d",
				e.client.planCount.Load(), e.srv.planCount.Load())
		}
		c.Close()
	})
}

// TestFastPathLinkDownInvalidation cuts a mid-path link under a
// compiled flow and checks that the plan aborts to baseline transmit —
// packets must be offered to the dead link and dropped there, never
// delivered through it — and that the recovered timeline (retransmits
// and all) matches the per-hop baseline exactly.
func TestFastPathLinkDownInvalidation(t *testing.T) {
	run := func(fastpath bool) ([]string, int64) {
		var trace []string
		var downDrops int64
		clk := vclock.New()
		clk.Run(func() {
			n := NewNetwork(clk, 1)
			n.SetFastPath(fastpath)
			client := n.NewHost("client", ParseIP("10.0.0.1"))
			srv := n.NewHost("srv", ParseIP("10.0.1.1"))
			r1 := NewRouter(n, "r1", 2)
			r2 := NewRouter(n, "r2", 2)
			cfg := LinkConfig{Latency: time.Millisecond}
			n.Connect(client.NIC(), r1.Port(0), cfg)
			mid := n.Connect(r1.Port(1), r2.Port(0), cfg)
			n.Connect(r2.Port(1), srv.NIC(), cfg)
			for _, r := range []*Router{r1, r2} {
				r.AddRoute(srv.IP(), r.Port(1))
				r.AddRoute(client.IP(), r.Port(0))
			}
			ln, _ := srv.Listen(80)
			clk.Go(func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					trace = append(trace, fmt.Sprintf("srv %v %q", clk.Now().Sub(vclock.Epoch), msg))
					c.Send(msg)
				}
			})
			c, err := client.Dial(srv.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				c.Send([]byte(fmt.Sprintf("warm%d", i)))
				msg, err := c.Recv()
				if err != nil {
					t.Errorf("warm recv %d: %v", i, err)
					return
				}
				trace = append(trace, fmt.Sprintf("cli %v %q", clk.Now().Sub(vclock.Epoch), msg))
			}
			if fastpath && client.planCount.Load() == 0 {
				t.Error("no flight plan compiled before the cut")
			}
			// Let the final warm-round ACK drain before the cut: a packet
			// mid-path when the cable is cut is delivered by a compiled
			// plan (committed at origin) but dropped per-hop, so cutting
			// under in-flight traffic would compare different scenarios.
			clk.Sleep(100 * time.Millisecond)
			// Cut the mid link. The first transmission and the first
			// retransmit (RTO 500ms) hit the dead link; the link comes back
			// at 1.2s, so the second retransmit (1.5s, doubled RTO) lands.
			mid.SetDown(true)
			clk.Post(1200*time.Millisecond, func() { mid.SetDown(false) })
			c.Send([]byte("dark"))
			msg, err := c.Recv()
			if err != nil {
				t.Errorf("recv across the cut: %v", err)
				return
			}
			trace = append(trace, fmt.Sprintf("cli %v %q", clk.Now().Sub(vclock.Epoch), msg))
			for i := 0; i < 2; i++ {
				c.Send([]byte(fmt.Sprintf("after%d", i)))
				msg, err := c.Recv()
				if err != nil {
					t.Errorf("post-recovery recv %d: %v", i, err)
					return
				}
				trace = append(trace, fmt.Sprintf("cli %v %q", clk.Now().Sub(vclock.Epoch), msg))
			}
			downDrops = mid.Stats().DownDrops
			c.Close()
		})
		return trace, downDrops
	}
	on, onDrops := run(true)
	off, offDrops := run(false)
	if len(on) == 0 {
		t.Fatal("empty trace")
	}
	diffTraces(t, on, off)
	if onDrops == 0 {
		t.Fatal("compiled run never offered a packet to the dead link — plan sailed through it")
	}
	if onDrops != offDrops {
		t.Fatalf("down-drop counts diverge: fastpath %d, baseline %d", onDrops, offDrops)
	}
}

// TestFastPathRouteChangeInvalidation reroutes a flow mid-stream
// through a diamond topology and checks that compiled plans follow the
// routing change — and that the rerouted timeline still matches the
// baseline exactly.
func TestFastPathRouteChangeInvalidation(t *testing.T) {
	run := func(fastpath bool) ([]string, []time.Duration) {
		var trace []string
		var srvAt []time.Duration
		clk := vclock.New()
		clk.Run(func() {
			n := NewNetwork(clk, 1)
			n.SetFastPath(fastpath)
			client := n.NewHost("client", ParseIP("10.0.0.1"))
			srv := n.NewHost("srv", ParseIP("10.0.1.1"))
			r1 := NewRouter(n, "r1", 3) // port0 client, port1 slow branch, port2 fast branch
			slow := NewRouter(n, "slow", 2)
			fast := NewRouter(n, "fast", 2)
			rj := NewRouter(n, "rj", 3) // join: port0 slow, port1 fast, port2 srv
			n.Connect(client.NIC(), r1.Port(0), LinkConfig{Latency: time.Millisecond})
			n.Connect(r1.Port(1), slow.Port(0), LinkConfig{Latency: 20 * time.Millisecond})
			n.Connect(r1.Port(2), fast.Port(0), LinkConfig{Latency: 2 * time.Millisecond})
			n.Connect(slow.Port(1), rj.Port(0), LinkConfig{Latency: time.Millisecond})
			n.Connect(fast.Port(1), rj.Port(1), LinkConfig{Latency: time.Millisecond})
			n.Connect(rj.Port(2), srv.NIC(), LinkConfig{Latency: time.Millisecond})
			r1.AddRoute(srv.IP(), r1.Port(1)) // start on the slow branch
			r1.AddRoute(client.IP(), r1.Port(0))
			slow.AddRoute(srv.IP(), slow.Port(1))
			slow.AddRoute(client.IP(), slow.Port(0))
			fast.AddRoute(srv.IP(), fast.Port(1))
			fast.AddRoute(client.IP(), fast.Port(0))
			rj.AddRoute(srv.IP(), rj.Port(2))
			rj.AddRoute(client.IP(), rj.Port(0)) // replies retrace the slow branch

			ln, _ := srv.Listen(80)
			clk.Go(func() {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					trace = append(trace, fmt.Sprintf("srv %v %q", clk.Now().Sub(vclock.Epoch), msg))
					srvAt = append(srvAt, clk.Now().Sub(vclock.Epoch))
					c.Send(msg)
				}
			})
			c, err := client.Dial(srv.Addr(80))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				c.Send([]byte(fmt.Sprintf("slow%d", i)))
				c.Recv()
			}
			// Reroute mid-flow: epoch bump must invalidate the compiled
			// plan; the next packets take the fast branch.
			r1.AddRoute(srv.IP(), r1.Port(2))
			for i := 0; i < 3; i++ {
				c.Send([]byte(fmt.Sprintf("fast%d", i)))
				c.Recv()
			}
			c.Close()
		})
		return trace, srvAt
	}
	on, onAt := run(true)
	off, _ := run(false)
	if len(on) != 6 {
		t.Fatalf("server saw %d messages, want 6", len(on))
	}
	diffTraces(t, on, off)

	// Sanity: the reroute must actually be visible in the timing — a
	// fast-branch round trip is shorter than a slow-branch one, so the
	// arrival gap shrinks after the route change.
	slowGap := onAt[2] - onAt[1]
	fastGap := onAt[5] - onAt[4]
	if fastGap >= slowGap {
		t.Fatalf("reroute not visible: slow-branch gap %v, fast-branch gap %v", slowGap, fastGap)
	}
}
