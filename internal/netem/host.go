package netem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Transport errors returned by Dial, Recv, and friends.
var (
	// ErrRefused means the remote host answered with RST: no listener on
	// that port (the service instance is not ready yet).
	ErrRefused = errors.New("netem: connection refused")
	// ErrTimeout means handshake or delivery retries were exhausted.
	ErrTimeout = errors.New("netem: connection timed out")
	// ErrReset means the peer aborted an established connection.
	ErrReset = errors.New("netem: connection reset by peer")
	// ErrClosed means the connection or listener was closed locally, or
	// the peer finished sending.
	ErrClosed = errors.New("netem: closed")
)

// Host is an end system with one NIC, a TCP-like transport, and
// port listeners.
type Host struct {
	net  *Network
	name string
	ip   IP
	nic  *Port
	// clk is the clock this host's transport runs on: the network clock,
	// or the shard clock after BindShards. Set before traffic flows and
	// read-only afterwards.
	clk vclock.Clock

	mu        sync.Mutex
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16
	dropped   int64 // packets for foreign addresses or dead connections

	// Compiled flight plans for paths originating here (fastpath.go).
	// planCount mirrors len(plans) so the no-plans case skips the lock.
	planMu    sync.Mutex
	plans     map[planKey]*flightPlan
	planMasks []FieldMask
	planCount atomic.Int64
}

type connKey struct {
	local  uint16
	remote HostPort
}

func newHost(n *Network, name string, ip IP) *Host {
	h := &Host{
		net:       n,
		name:      name,
		ip:        ip,
		clk:       n.Clock,
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  49152,
	}
	h.nic = &Port{Dev: h, ID: 0}
	return h
}

// DeviceName implements Device.
func (h *Host) DeviceName() string { return h.name }

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// IP returns the host's primary address.
func (h *Host) IP() IP { return h.ip }

// NIC returns the host's single network attachment point.
func (h *Host) NIC() *Port { return h.nic }

// Addr returns the full endpoint for a port on this host.
func (h *Host) Addr(port uint16) HostPort { return HostPort{IP: h.ip, Port: port} }

// deliverLoopback is the Post2 callback for loopback traffic.
func deliverLoopback(a, b any) {
	b.(*Host).HandlePacket(a.(*Packet), nil)
}

// send emits a locally originated packet, taking ownership of pkt and
// short-circuiting loopback traffic destined to this host itself.
func (h *Host) send(pkt *Packet) {
	if pkt.Dst.IP == h.ip {
		h.clk.Post2(50*time.Microsecond, deliverLoopback, pkt, h)
		return
	}
	if h.net.FastPathEnabled() {
		if h.tryCompiledSend(pkt) {
			return
		}
		h.attachRecorder(pkt)
	}
	h.nic.Send(pkt)
}

// HandlePacket implements Device: demultiplex to a connection or
// listener, or answer strays with RST. The host owns pkt and recycles it
// once demultiplexing is done — connection state keeps only the payload
// slice, never the packet itself.
func (h *Host) HandlePacket(pkt *Packet, in *Port) {
	defer pkt.Release()
	if r := pkt.rec; r != nil {
		// The packet completed its path: compile the recording into a
		// plan for the origin host (only if it actually arrived at the
		// host owning its destination address).
		pkt.rec = nil
		if pkt.Dst.IP == h.ip {
			h.finalizeRecording(r)
		} else {
			r.recycle()
		}
	}
	if pkt.Dst.IP != h.ip {
		h.mu.Lock()
		h.dropped++
		h.mu.Unlock()
		return
	}
	key := connKey{local: pkt.Dst.Port, remote: pkt.Src}
	h.mu.Lock()
	c := h.conns[key]
	if c != nil {
		// A fresh SYN on a tuple whose old connection is defunct is a
		// new connection attempt (ephemeral-port reuse after close);
		// retire the stale state and fall through to the listener.
		if pkt.Flags.Has(FlagSYN) && !pkt.Flags.Has(FlagACK) && c.defunct() {
			delete(h.conns, key)
		} else {
			h.mu.Unlock()
			c.handle(pkt)
			return
		}
	}
	if pkt.Flags.Has(FlagSYN) && !pkt.Flags.Has(FlagACK) {
		ln := h.listeners[pkt.Dst.Port]
		if ln != nil && !ln.closed {
			c = h.newServerConnLocked(pkt)
			h.mu.Unlock()
			c.sendSynAck()
			ln.backlog.Send(c)
			return
		}
		h.mu.Unlock()
		h.replyRST(pkt)
		return
	}
	h.dropped++
	h.mu.Unlock()
	if !pkt.Flags.Has(FlagRST) {
		h.replyRST(pkt)
	}
}

// replyRST answers pkt with a reset, src/dst swapped.
func (h *Host) replyRST(pkt *Packet) {
	rst := NewPacket()
	rst.Src, rst.Dst = pkt.Dst, pkt.Src
	rst.Flags = FlagRST
	rst.ConnID = pkt.ConnID
	h.send(rst)
}

// Dropped reports packets discarded because no connection or listener
// claimed them.
func (h *Host) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// allocEphemeralLocked picks an unused local port ≥ 49152.
func (h *Host) allocEphemeralLocked(remote HostPort) uint16 {
	for tries := 0; tries < 65536; tries++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort < 49152 {
			h.nextPort = 49152
		}
		if _, used := h.conns[connKey{local: p, remote: remote}]; !used {
			if _, listening := h.listeners[p]; !listening {
				return p
			}
		}
	}
	panic("netem: ephemeral ports exhausted")
}

// Listen opens a listener on port. It fails if the port is in use.
func (h *Host) Listen(port uint16) (*Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ln, ok := h.listeners[port]; ok && !ln.closed {
		return nil, fmt.Errorf("netem: %s port %d already listening", h.name, port)
	}
	ln := &Listener{
		host:    h,
		port:    port,
		backlog: vclock.NewMailbox[*Conn](h.clk),
	}
	h.listeners[port] = ln
	return ln, nil
}

// Listening reports whether a live listener is bound to port.
func (h *Host) Listening(port uint16) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ln, ok := h.listeners[port]
	return ok && !ln.closed
}

// Dial opens a connection to remote, blocking until the handshake
// completes. It returns ErrRefused if the remote answers RST and
// ErrTimeout if SYN retries are exhausted.
func (h *Host) Dial(remote HostPort) (*Conn, error) {
	return h.DialTimeout(remote, 0)
}

// DialTimeout is Dial with an overall handshake deadline; zero means the
// transport's own retry budget applies.
func (h *Host) DialTimeout(remote HostPort, timeout time.Duration) (*Conn, error) {
	h.mu.Lock()
	local := h.allocEphemeralLocked(remote)
	c := newConn(h, HostPort{IP: h.ip, Port: local}, remote, true)
	h.conns[connKey{local: local, remote: remote}] = c
	h.mu.Unlock()

	c.startHandshake()
	if timeout > 0 {
		if !c.established.WaitTimeout(h.clk, timeout) {
			c.fail(ErrTimeout)
			return nil, ErrTimeout
		}
	} else {
		c.established.Wait(h.clk)
	}
	c.mu.Lock()
	err := c.failErr
	c.mu.Unlock()
	if err != nil {
		h.removeConn(c)
		return nil, err
	}
	return c, nil
}

func (h *Host) removeConn(c *Conn) {
	h.mu.Lock()
	key := connKey{local: c.local.Port, remote: c.remote}
	if h.conns[key] == c {
		delete(h.conns, key)
	}
	h.mu.Unlock()
}

func (h *Host) newServerConnLocked(syn *Packet) *Conn {
	c := newConn(h, syn.Dst, syn.Src, false)
	c.connID = syn.ConnID
	c.state = stateEstablished
	c.established.Open()
	h.conns[connKey{local: syn.Dst.Port, remote: syn.Src}] = c
	return c
}

// Listener accepts inbound connections on one port.
type Listener struct {
	host    *Host
	port    uint16
	backlog *vclock.Mailbox[*Conn]
	closed  bool
}

// Port returns the bound port.
func (ln *Listener) Port() uint16 { return ln.port }

// Addr returns the full listening endpoint.
func (ln *Listener) Addr() HostPort { return ln.host.Addr(ln.port) }

// Accept blocks until an inbound connection arrives. It returns
// ErrClosed after Close.
func (ln *Listener) Accept() (*Conn, error) {
	c, ok := ln.backlog.Recv()
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// AcceptTimeout is Accept with a deadline; ErrTimeout on expiry.
func (ln *Listener) AcceptTimeout(d time.Duration) (*Conn, error) {
	c, ok := ln.backlog.RecvTimeout(d)
	if !ok {
		ln.host.mu.Lock()
		closed := ln.closed
		ln.host.mu.Unlock()
		if closed {
			return nil, ErrClosed
		}
		return nil, ErrTimeout
	}
	return c, nil
}

// Close stops accepting; subsequent SYNs to the port are refused.
// Established connections are unaffected.
func (ln *Listener) Close() {
	ln.host.mu.Lock()
	if ln.closed {
		ln.host.mu.Unlock()
		return
	}
	ln.closed = true
	if ln.host.listeners[ln.port] == ln {
		delete(ln.host.listeners, ln.port)
	}
	ln.host.mu.Unlock()
	ln.backlog.Close()
}
