package netem

import (
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Transport tuning. The SYN schedule mirrors conventional TCP initial
// retransmission behaviour (1s, 2s, 4s, ...), which matters for the
// on-demand-deployment experiments: a held first request must survive
// multi-second deployment times.
var (
	synRetryBase = 1 * time.Second
	synRetries   = 6
	dataRTO      = 500 * time.Millisecond
	dataRetries  = 6
)

type connState int

const (
	stateSynSent connState = iota
	stateEstablished
	stateClosed
	stateFailed
)

// Conn is one reliable, message-oriented connection. Each Send transfers
// one application message; the receiver gets messages in order via Recv.
// Reliability is per message: positive acks, retransmission with
// exponential backoff, duplicate suppression, and in-order delivery.
type Conn struct {
	host   *Host
	local  HostPort
	remote HostPort
	client bool
	connID uint64

	established *vclock.Gate

	mu       sync.Mutex
	state    connState
	failErr  error
	synTries int
	synTimer *vclock.Timer

	sendSeq  uint32 // next message sequence to assign (1-based)
	unacked  map[uint32]*pendingMsg
	recvNext uint32 // next in-order message expected
	recvBuf  map[uint32][]byte
	inbox    *vclock.Mailbox[[]byte]

	localClosed bool
	peerClosed  bool
}

type pendingMsg struct {
	pkt   *Packet
	tries int
	timer *vclock.Timer
}

func newConn(h *Host, local, remote HostPort, client bool) *Conn {
	return &Conn{
		host:        h,
		local:       local,
		remote:      remote,
		client:      client,
		connID:      h.net.nextConnID(),
		established: vclock.NewGate(),
		sendSeq:     1,
		recvNext:    1,
		unacked:     make(map[uint32]*pendingMsg),
		recvBuf:     make(map[uint32][]byte),
		inbox:       vclock.NewMailbox[[]byte](h.net.Clock),
	}
}

// LocalAddr returns this side's endpoint.
func (c *Conn) LocalAddr() HostPort { return c.local }

// RemoteAddr returns the peer endpoint as seen by this side. Under
// transparent redirection the client's view is the registered cloud
// address even when an edge instance answers.
func (c *Conn) RemoteAddr() HostPort { return c.remote }

// startHandshake sends the first SYN and arms the retry schedule.
func (c *Conn) startHandshake() {
	c.mu.Lock()
	c.synTries = 1
	c.mu.Unlock()
	c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagSYN, ConnID: c.connID})
	c.armSynTimer(synRetryBase)
}

func (c *Conn) armSynTimer(backoff time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != stateSynSent {
		return
	}
	c.synTimer = c.host.net.Clock.AfterFunc(backoff, func() {
		c.mu.Lock()
		if c.state != stateSynSent {
			c.mu.Unlock()
			return
		}
		if c.synTries >= synRetries {
			c.mu.Unlock()
			c.fail(ErrTimeout)
			return
		}
		c.synTries++
		c.mu.Unlock()
		c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagSYN, ConnID: c.connID})
		c.armSynTimer(backoff * 2)
	})
}

func (c *Conn) sendSynAck() {
	c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagSYN | FlagACK, ConnID: c.connID})
}

// transmit hands a packet to the host's NIC.
func (c *Conn) transmit(pkt *Packet) { c.host.send(pkt) }

// handle processes one inbound packet addressed to this connection.
func (c *Conn) handle(pkt *Packet) {
	switch {
	case pkt.Flags.Has(FlagRST):
		c.mu.Lock()
		inHandshake := c.state == stateSynSent
		c.mu.Unlock()
		if inHandshake {
			c.fail(ErrRefused)
		} else {
			c.fail(ErrReset)
		}

	case pkt.Flags.Has(FlagSYN | FlagACK):
		c.mu.Lock()
		if c.state == stateSynSent {
			c.state = stateEstablished
			if c.synTimer != nil {
				c.synTimer.Stop()
			}
		}
		c.mu.Unlock()
		c.established.Open()
		// Ack completes the handshake; duplicates are harmless.
		c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagACK, ConnID: c.connID})

	case pkt.Flags.Has(FlagSYN):
		// Duplicate SYN from a client whose SYN-ACK was lost or delayed.
		if !c.client {
			c.sendSynAck()
		}

	case pkt.Flags.Has(FlagFIN):
		c.mu.Lock()
		already := c.peerClosed
		c.peerClosed = true
		c.mu.Unlock()
		if !already {
			c.inbox.Close()
		}

	case pkt.Flags.Has(FlagPSH):
		c.handleData(pkt)

	case pkt.Flags.Has(FlagACK):
		c.handleAck(pkt)
	}
}

func (c *Conn) handleData(pkt *Packet) {
	// Always ack, even duplicates: the ack may have been lost.
	c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagACK, Ack: pkt.Seq, ConnID: c.connID})

	c.mu.Lock()
	if c.peerClosed || c.state == stateFailed || pkt.Seq < c.recvNext {
		c.mu.Unlock()
		return
	}
	if _, dup := c.recvBuf[pkt.Seq]; dup {
		c.mu.Unlock()
		return
	}
	c.recvBuf[pkt.Seq] = pkt.Payload
	var ready [][]byte
	for {
		payload, ok := c.recvBuf[c.recvNext]
		if !ok {
			break
		}
		delete(c.recvBuf, c.recvNext)
		c.recvNext++
		ready = append(ready, payload)
	}
	c.mu.Unlock()
	for _, payload := range ready {
		c.inbox.Send(payload)
	}
}

func (c *Conn) handleAck(pkt *Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.unacked[pkt.Ack]
	if !ok {
		return
	}
	delete(c.unacked, pkt.Ack)
	if p.timer != nil {
		p.timer.Stop()
	}
}

// Send transmits one application message reliably. It returns
// immediately; delivery failures surface on a later Send/Recv as
// ErrTimeout via connection failure.
func (c *Conn) Send(payload []byte) error {
	c.mu.Lock()
	switch {
	case c.state == stateFailed:
		err := c.failErr
		c.mu.Unlock()
		return err
	case c.localClosed || c.state == stateClosed:
		c.mu.Unlock()
		return ErrClosed
	case c.state == stateSynSent:
		c.mu.Unlock()
		return ErrClosed
	}
	seq := c.sendSeq
	c.sendSeq++
	pkt := &Packet{Src: c.local, Dst: c.remote, Flags: FlagPSH, Seq: seq, Payload: payload, ConnID: c.connID}
	p := &pendingMsg{pkt: pkt, tries: 1}
	c.unacked[seq] = p
	c.mu.Unlock()

	c.transmit(pkt)
	c.armDataTimer(p, dataRTO)
	return nil
}

func (c *Conn) armDataTimer(p *pendingMsg, backoff time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, pending := c.unacked[p.pkt.Seq]; !pending || c.state == stateFailed {
		return
	}
	p.timer = c.host.net.Clock.AfterFunc(backoff, func() {
		c.mu.Lock()
		if _, pending := c.unacked[p.pkt.Seq]; !pending || c.state == stateFailed {
			c.mu.Unlock()
			return
		}
		if p.tries >= dataRetries {
			c.mu.Unlock()
			c.fail(ErrTimeout)
			return
		}
		p.tries++
		c.mu.Unlock()
		c.transmit(p.pkt)
		c.armDataTimer(p, backoff*2)
	})
}

// Recv returns the next in-order message. It returns ErrClosed once the
// peer has finished sending, and the failure error if the connection
// broke.
func (c *Conn) Recv() ([]byte, error) {
	payload, ok := c.inbox.Recv()
	if !ok {
		return nil, c.closeReason()
	}
	return payload, nil
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	payload, ok := c.inbox.RecvTimeout(d)
	if !ok {
		c.mu.Lock()
		broken := c.state == stateFailed || c.peerClosed
		c.mu.Unlock()
		if broken {
			return nil, c.closeReason()
		}
		return nil, ErrTimeout
	}
	return payload, nil
}

func (c *Conn) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateFailed {
		return c.failErr
	}
	return ErrClosed
}

// Close sends FIN (best effort) and releases connection state.
func (c *Conn) Close() {
	c.mu.Lock()
	if c.localClosed || c.state == stateFailed {
		c.mu.Unlock()
		return
	}
	c.localClosed = true
	sendFin := c.state == stateEstablished
	c.state = stateClosed
	for _, p := range c.unacked {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	c.mu.Unlock()
	if sendFin {
		c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagFIN, ConnID: c.connID})
	}
	c.host.removeConn(c)
}

// Abort resets the connection immediately, notifying the peer with RST.
func (c *Conn) Abort() {
	c.transmit(&Packet{Src: c.local, Dst: c.remote, Flags: FlagRST, ConnID: c.connID})
	c.fail(ErrReset)
}

// fail transitions to the failed state and wakes all waiters.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.state == stateFailed {
		c.mu.Unlock()
		return
	}
	c.state = stateFailed
	c.failErr = err
	if c.synTimer != nil {
		c.synTimer.Stop()
	}
	for _, p := range c.unacked {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	c.mu.Unlock()
	c.established.Open()
	c.inbox.Close()
	c.host.removeConn(c)
}

// Err returns the connection's failure error, or nil.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// defunct reports whether the connection can never carry new traffic:
// failed, locally closed, or the peer has finished sending. Hosts use
// it to recognize tuple reuse by fresh SYNs.
func (c *Conn) defunct() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state == stateFailed || c.state == stateClosed || c.localClosed || c.peerClosed
}
