package netem

import (
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Transport tuning. The SYN schedule mirrors conventional TCP initial
// retransmission behaviour (1s, 2s, 4s, ...), which matters for the
// on-demand-deployment experiments: a held first request must survive
// multi-second deployment times.
var (
	synRetryBase = 1 * time.Second
	synRetries   = 6
	dataRTO      = 500 * time.Millisecond
	dataRetries  = 6
)

type connState int

const (
	stateSynSent connState = iota
	stateEstablished
	stateClosed
	stateFailed
)

// Conn is one reliable, message-oriented connection. Each Send transfers
// one application message; the receiver gets messages in order via Recv.
// Reliability is per message: positive acks, retransmission with
// exponential backoff, duplicate suppression, and in-order delivery.
type Conn struct {
	host   *Host
	local  HostPort
	remote HostPort
	client bool
	connID uint64

	established vclock.Gate

	mu         sync.Mutex
	state      connState
	failErr    error
	synTries   int
	synBackoff time.Duration
	synTimer   vclock.Pending

	sendSeq uint32 // next message sequence to assign (1-based)
	// unacked holds in-flight messages in send order. It is a slice, not
	// a map: connections rarely have more than a couple outstanding, and
	// a slice keeps iteration order deterministic and setup free.
	unacked  []*pendingMsg
	ubuf     [2]*pendingMsg
	recvNext uint32 // next in-order message expected
	// recvBuf holds out-of-order arrivals; it is allocated lazily since
	// in-order delivery (the overwhelmingly common case) never needs it.
	recvBuf map[uint32][]byte
	inbox   vclock.Mailbox[[]byte]

	localClosed bool
	peerClosed  bool

	// Segment trains: when an application issues several Sends within
	// the same virtual instant (bulk transfers), the first segment is
	// transmitted inline and the rest queue here, flushed — in order,
	// at the same instant — by one pooled train event instead of one
	// scheduling round per segment. Retransmission state is untouched:
	// every queued segment keeps its own pendingMsg and RTO timer.
	train      []*Packet
	trainArmed bool
	lastSendAt time.Time
}

// pendingMsg tracks one unacknowledged message. It owns pkt (each
// transmission sends a clone) until the ack or the connection's death
// releases it; callbacks identify it by seq so a recycled packet is
// never read. Records recycle through pmsgPool, but only when the armed
// retransmission timer was stopped before firing — a record whose timer
// callback may still be in flight is left to the GC so the callback can
// never observe a reused record under the same connection and sequence.
type pendingMsg struct {
	pkt     *Packet
	seq     uint32
	tries   int
	backoff time.Duration
	timer   vclock.Pending
}

var pmsgPool = sync.Pool{New: func() any { return new(pendingMsg) }}

func newConn(h *Host, local, remote HostPort, client bool) *Conn {
	c := &Conn{
		host:     h,
		local:    local,
		remote:   remote,
		client:   client,
		connID:   h.net.nextConnID(),
		sendSeq:  1,
		recvNext: 1,
	}
	c.inbox.Init(h.clk)
	return c
}

// findUnackedLocked returns the index and record of the in-flight
// message with the given sequence, or -1, nil. Callers hold c.mu.
func (c *Conn) findUnackedLocked(seq uint32) (int, *pendingMsg) {
	for i, p := range c.unacked {
		if p.seq == seq {
			return i, p
		}
	}
	return -1, nil
}

// dropUnackedLocked removes the record at index i, preserving order.
// Callers hold c.mu.
func (c *Conn) dropUnackedLocked(i int) {
	copy(c.unacked[i:], c.unacked[i+1:])
	c.unacked[len(c.unacked)-1] = nil
	c.unacked = c.unacked[:len(c.unacked)-1]
}

// retirePendingLocked releases p's packet and recycles the record when
// its timer was provably stopped before firing. Callers hold c.mu and
// have already removed p from c.unacked.
func retirePendingLocked(p *pendingMsg) {
	stopped := p.timer.Stop()
	if p.pkt != nil {
		p.pkt.Release()
		p.pkt = nil
	}
	if stopped {
		*p = pendingMsg{}
		pmsgPool.Put(p)
	}
}

// LocalAddr returns this side's endpoint.
func (c *Conn) LocalAddr() HostPort { return c.local }

// RemoteAddr returns the peer endpoint as seen by this side. Under
// transparent redirection the client's view is the registered cloud
// address even when an edge instance answers.
func (c *Conn) RemoteAddr() HostPort { return c.remote }

// newControlPacket builds a pooled control segment addressed to the peer.
func (c *Conn) newControlPacket(flags TCPFlags) *Packet {
	pkt := NewPacket()
	pkt.Src, pkt.Dst = c.local, c.remote
	pkt.Flags = flags
	pkt.ConnID = c.connID
	return pkt
}

// startHandshake sends the first SYN and arms the retry schedule.
func (c *Conn) startHandshake() {
	c.mu.Lock()
	c.synTries = 1
	c.mu.Unlock()
	c.transmit(c.newControlPacket(FlagSYN))
	c.armSynTimer(synRetryBase)
}

// retrySyn is the Post2 callback of the SYN retransmission timer.
func retrySyn(a, _ any) {
	c := a.(*Conn)
	c.mu.Lock()
	if c.state != stateSynSent {
		c.mu.Unlock()
		return
	}
	if c.synTries >= synRetries {
		c.mu.Unlock()
		c.fail(ErrTimeout)
		return
	}
	c.synTries++
	backoff := c.synBackoff * 2
	c.mu.Unlock()
	c.transmit(c.newControlPacket(FlagSYN))
	c.armSynTimer(backoff)
}

func (c *Conn) armSynTimer(backoff time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != stateSynSent {
		return
	}
	c.synBackoff = backoff
	c.synTimer = c.host.clk.Post2(backoff, retrySyn, c, nil)
}

func (c *Conn) sendSynAck() {
	c.transmit(c.newControlPacket(FlagSYN | FlagACK))
}

// transmit hands a packet to the host's NIC, passing ownership.
func (c *Conn) transmit(pkt *Packet) { c.host.send(pkt) }

// handle processes one inbound packet addressed to this connection. The
// caller retains ownership of pkt; handle only keeps the payload slice.
func (c *Conn) handle(pkt *Packet) {
	switch {
	case pkt.Flags.Has(FlagRST):
		c.mu.Lock()
		inHandshake := c.state == stateSynSent
		c.mu.Unlock()
		if inHandshake {
			c.fail(ErrRefused)
		} else {
			c.fail(ErrReset)
		}

	case pkt.Flags.Has(FlagSYN | FlagACK):
		c.mu.Lock()
		if c.state == stateSynSent {
			c.state = stateEstablished
			c.synTimer.Stop()
		}
		c.mu.Unlock()
		c.established.Open()
		// Ack completes the handshake; duplicates are harmless.
		c.transmit(c.newControlPacket(FlagACK))

	case pkt.Flags.Has(FlagSYN):
		// Duplicate SYN from a client whose SYN-ACK was lost or delayed.
		if !c.client {
			c.sendSynAck()
		}

	case pkt.Flags.Has(FlagFIN):
		c.mu.Lock()
		already := c.peerClosed
		c.peerClosed = true
		c.mu.Unlock()
		if !already {
			c.inbox.Close()
		}

	case pkt.Flags.Has(FlagPSH):
		c.handleData(pkt)

	case pkt.Flags.Has(FlagACK):
		c.handleAck(pkt)
	}
}

func (c *Conn) handleData(pkt *Packet) {
	// Always ack, even duplicates: the ack may have been lost.
	ack := c.newControlPacket(FlagACK)
	ack.Ack = pkt.Seq
	c.transmit(ack)

	c.mu.Lock()
	if c.peerClosed || c.state == stateFailed || pkt.Seq < c.recvNext {
		c.mu.Unlock()
		return
	}
	if pkt.Seq == c.recvNext {
		// In-order fast path: deliver directly, then drain whatever the
		// arrival unblocked. recvBuf is untouched (and stays nil) unless
		// packets actually arrived out of order.
		first := pkt.Payload
		c.recvNext++
		var ready [][]byte
		for len(c.recvBuf) > 0 {
			payload, ok := c.recvBuf[c.recvNext]
			if !ok {
				break
			}
			delete(c.recvBuf, c.recvNext)
			c.recvNext++
			ready = append(ready, payload)
		}
		c.mu.Unlock()
		c.inbox.Send(first)
		for _, payload := range ready {
			c.inbox.Send(payload)
		}
		return
	}
	if _, dup := c.recvBuf[pkt.Seq]; dup {
		c.mu.Unlock()
		return
	}
	if c.recvBuf == nil {
		c.recvBuf = make(map[uint32][]byte)
	}
	c.recvBuf[pkt.Seq] = pkt.Payload
	c.mu.Unlock()
}

func (c *Conn) handleAck(pkt *Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, p := c.findUnackedLocked(pkt.Ack)
	if p == nil {
		return
	}
	c.dropUnackedLocked(i)
	retirePendingLocked(p)
}

// Send transmits one application message reliably. It returns
// immediately; delivery failures surface on a later Send/Recv as
// ErrTimeout via connection failure.
func (c *Conn) Send(payload []byte) error {
	c.mu.Lock()
	switch {
	case c.state == stateFailed:
		err := c.failErr
		c.mu.Unlock()
		return err
	case c.localClosed || c.state == stateClosed:
		c.mu.Unlock()
		return ErrClosed
	case c.state == stateSynSent:
		c.mu.Unlock()
		return ErrClosed
	}
	seq := c.sendSeq
	c.sendSeq++
	pkt := NewPacket()
	pkt.Src, pkt.Dst = c.local, c.remote
	pkt.Flags = FlagPSH
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.ConnID = c.connID
	p := pmsgPool.Get().(*pendingMsg)
	p.pkt, p.seq, p.tries, p.backoff = pkt, seq, 1, dataRTO
	if c.unacked == nil {
		c.unacked = c.ubuf[:0]
	}
	c.unacked = append(c.unacked, p)
	// Arm the retransmission timer while p is still private to this
	// critical section, so a record visible in unacked always carries a
	// live timer handle (the recycling rule depends on Stop's answer).
	p.timer = c.host.clk.Post2(dataRTO, retryData, c, p)
	clone := pkt.Clone()
	if c.host.net.FastPathEnabled() {
		now := c.host.clk.Now()
		if c.lastSendAt.Equal(now) {
			// Back-to-back segment within the same virtual instant:
			// join the train. One flush event transmits the whole
			// train, in order, at this same instant.
			c.train = append(c.train, clone)
			if !c.trainArmed {
				c.trainArmed = true
				c.host.clk.Post2(0, flushTrain, c, nil)
			}
			c.mu.Unlock()
			return nil
		}
		c.lastSendAt = now
	}
	c.mu.Unlock()

	c.transmit(clone)
	return nil
}

// flushTrain is the Post2 callback transmitting a queued segment train.
// It fires within the same virtual instant the segments were queued.
func flushTrain(a, _ any) {
	a.(*Conn).flushTrainNow()
}

func (c *Conn) flushTrainNow() {
	c.mu.Lock()
	segs := c.train
	c.train = nil
	c.trainArmed = false
	c.mu.Unlock()
	for _, pkt := range segs {
		c.transmit(pkt)
	}
}

// retryData is the Post2 callback of a data retransmission timer. It
// checks liveness by sequence number and identity under the connection
// lock before touching the pending message's packet, so a message acked
// (and its record recycled) between firing and locking is never read.
func retryData(a, b any) {
	c := a.(*Conn)
	p := b.(*pendingMsg)
	c.mu.Lock()
	if _, cur := c.findUnackedLocked(p.seq); cur != p || c.state == stateFailed {
		c.mu.Unlock()
		return
	}
	if p.tries >= dataRetries {
		c.mu.Unlock()
		c.fail(ErrTimeout)
		return
	}
	p.tries++
	p.backoff *= 2
	resend := p.pkt.Clone()
	p.timer = c.host.clk.Post2(p.backoff, retryData, c, p)
	c.mu.Unlock()
	c.transmit(resend)
}

// Recv returns the next in-order message. It returns ErrClosed once the
// peer has finished sending, and the failure error if the connection
// broke.
func (c *Conn) Recv() ([]byte, error) {
	payload, ok := c.inbox.Recv()
	if !ok {
		return nil, c.closeReason()
	}
	return payload, nil
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(d time.Duration) ([]byte, error) {
	payload, ok := c.inbox.RecvTimeout(d)
	if !ok {
		c.mu.Lock()
		broken := c.state == stateFailed || c.peerClosed
		c.mu.Unlock()
		if broken {
			return nil, c.closeReason()
		}
		return nil, ErrTimeout
	}
	return payload, nil
}

func (c *Conn) closeReason() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateFailed {
		return c.failErr
	}
	return ErrClosed
}

// releaseUnackedLocked stops retransmission timers and recycles the
// packets (and, where safe, the records) of all pending messages.
// Callers hold c.mu.
func (c *Conn) releaseUnackedLocked() {
	for i, p := range c.unacked {
		c.unacked[i] = nil
		retirePendingLocked(p)
	}
	c.unacked = c.unacked[:0]
}

// Close sends FIN (best effort) and releases connection state.
func (c *Conn) Close() {
	// Any same-instant train must leave before the FIN: on the baseline
	// path those segments were transmitted inside Send already.
	c.flushTrainNow()
	c.mu.Lock()
	if c.localClosed || c.state == stateFailed {
		c.mu.Unlock()
		return
	}
	c.localClosed = true
	sendFin := c.state == stateEstablished
	c.state = stateClosed
	c.releaseUnackedLocked()
	c.mu.Unlock()
	if sendFin {
		c.transmit(c.newControlPacket(FlagFIN))
	}
	c.host.removeConn(c)
}

// Abort resets the connection immediately, notifying the peer with RST.
func (c *Conn) Abort() {
	c.flushTrainNow()
	c.transmit(c.newControlPacket(FlagRST))
	c.fail(ErrReset)
}

// fail transitions to the failed state and wakes all waiters.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.state == stateFailed {
		c.mu.Unlock()
		return
	}
	c.state = stateFailed
	c.failErr = err
	c.synTimer.Stop()
	c.releaseUnackedLocked()
	c.mu.Unlock()
	c.established.Open()
	c.inbox.Close()
	c.host.removeConn(c)
}

// Err returns the connection's failure error, or nil.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// defunct reports whether the connection can never carry new traffic:
// failed, locally closed, or the peer has finished sending. Hosts use
// it to recognize tuple reuse by fresh SYNs.
func (c *Conn) defunct() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state == stateFailed || c.state == stateClosed || c.localClosed || c.peerClosed
}
