package netem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// shardPair builds the partitioned echo topology a --- r --- b with a
// 1ms edge link on a's side and a 2ms link on b's side, on the given
// clock. The fast path is forced off so the sequential baseline takes
// the same hop-by-hop path a partitioned run must.
func shardPair(clk vclock.Clock) (*Network, *Host, *Host, *Router) {
	n := NewNetwork(clk, 1)
	a := n.NewHost("a", ParseIP("10.0.0.1"))
	b := n.NewHost("b", ParseIP("10.0.0.2"))
	r := NewRouter(n, "r", 2)
	n.Connect(a.NIC(), r.Port(0), LinkConfig{Latency: time.Millisecond})
	n.Connect(b.NIC(), r.Port(1), LinkConfig{Latency: 2 * time.Millisecond})
	r.AddRoute(a.IP(), r.Port(0))
	r.AddRoute(b.IP(), r.Port(1))
	n.fastpathOff.Store(true)
	return n, a, b, r
}

// shardEchoTrace is the per-side event log of one echo exchange: each
// entry is label@virtual-offset, so two runs match only if every step
// lands at the identical virtual instant.
type shardEchoTrace struct {
	mu             sync.Mutex
	client, server []string
}

func (tr *shardEchoTrace) clientAdd(clk vclock.Clock, label string) {
	tr.mu.Lock()
	tr.client = append(tr.client, fmt.Sprintf("%s@%v", label, clk.Now().Sub(vclock.Epoch)))
	tr.mu.Unlock()
}

func (tr *shardEchoTrace) serverAdd(clk vclock.Clock, label string) {
	tr.mu.Lock()
	tr.server = append(tr.server, fmt.Sprintf("%s@%v", label, clk.Now().Sub(vclock.Epoch)))
	tr.mu.Unlock()
}

// runShardEchoClient drives host a: three sequential request/response
// exchanges, each timestamped on a's clock.
func runShardEchoClient(t *testing.T, tr *shardEchoTrace, clk vclock.Clock, a, b *Host) {
	c, err := a.Dial(b.Addr(80))
	if err != nil {
		t.Errorf("Dial: %v", err)
		return
	}
	tr.clientAdd(clk, "dialed")
	for i := 0; i < 3; i++ {
		if err := c.Send([]byte(fmt.Sprintf("ping-%d", i))); err != nil {
			t.Errorf("Send: %v", err)
			return
		}
		resp, err := c.Recv()
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		tr.clientAdd(clk, fmt.Sprintf("echo:%s", resp))
	}
}

// runShardEchoServer drives host b: accept one connection and echo
// three messages, each timestamped on b's clock.
func runShardEchoServer(t *testing.T, tr *shardEchoTrace, clk vclock.Clock, ln *Listener) {
	c, err := ln.Accept()
	if err != nil {
		t.Errorf("Accept: %v", err)
		return
	}
	tr.serverAdd(clk, "accepted")
	for i := 0; i < 3; i++ {
		msg, err := c.Recv()
		if err != nil {
			t.Errorf("server Recv: %v", err)
			return
		}
		tr.serverAdd(clk, fmt.Sprintf("got:%s", msg))
		if err := c.Send(append([]byte("re:"), msg...)); err != nil {
			t.Errorf("server Send: %v", err)
			return
		}
	}
}

// TestBindShardsPartitionedEcho is the netem-level determinism gate for
// the windowed engine: the same echo exchange run (a) on one clock and
// (b) partitioned across two shards with the 2ms link as the boundary
// must produce byte-identical per-side traces — every packet crosses
// the shard boundary through the record exchange, yet lands at the
// exact instant the single-clock run delivers it.
func TestBindShardsPartitionedEcho(t *testing.T) {
	sequential := func() *shardEchoTrace {
		tr := &shardEchoTrace{}
		clk := vclock.New()
		clk.Run(func() {
			_, a, b, _ := shardPair(clk)
			ln, err := b.Listen(80)
			if err != nil {
				t.Fatal(err)
			}
			clk.Go(func() { runShardEchoServer(t, tr, clk, ln) })
			runShardEchoClient(t, tr, clk, a, b)
		})
		return tr
	}

	sharded := func() *shardEchoTrace {
		tr := &shardEchoTrace{}
		g := vclock.NewShardGroup(2)
		n, a, b, r := shardPair(g.Shard(0))
		la := n.BindShards(g, map[Device]int{b: 1})
		// Listen after BindShards: the listener's backlog mailbox captures
		// the host's clock at creation.
		ln, err := b.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		if la != 2*time.Millisecond {
			t.Fatalf("lookahead = %v, want 2ms (the boundary link)", la)
		}
		if got := g.Lookahead(); got != 2*time.Millisecond {
			t.Fatalf("group lookahead = %v, want 2ms", got)
		}
		_ = r
		g.Run(func(shard int) {
			clk := g.Shard(shard)
			if shard == 1 {
				runShardEchoServer(t, tr, clk, ln)
				// Keep the shard's clock alive while the client drains the
				// final echo: a stopped shard abandons its pending
				// transmissions.
				clk.Sleep(time.Second)
				return
			}
			runShardEchoClient(t, tr, clk, a, b)
			clk.Sleep(time.Second)
		})
		return tr
	}

	want, got := sequential(), sharded()
	if fmt.Sprint(want.client) != fmt.Sprint(got.client) {
		t.Errorf("client trace diverged:\nseq:     %v\nsharded: %v", want.client, got.client)
	}
	if fmt.Sprint(want.server) != fmt.Sprint(got.server) {
		t.Errorf("server trace diverged:\nseq:     %v\nsharded: %v", want.server, got.server)
	}
	if len(got.client) != 4 || len(got.server) != 4 {
		t.Errorf("trace lengths %d/%d, want 4/4", len(got.client), len(got.server))
	}
}

// TestBindShardsGuards checks the topology-build panics: a lossy link
// in a multi-shard partition (loss draws would couple shards through
// the shared rng) and a zero-latency boundary link (no safe window).
func TestBindShardsGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}

	mustPanic("lossy link", func() {
		g := vclock.NewShardGroup(2)
		n := NewNetwork(g.Shard(0), 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), b.NIC(), LinkConfig{Latency: time.Millisecond, LossRate: 0.1})
		n.BindShards(g, map[Device]int{b: 1})
	})

	mustPanic("zero-latency boundary", func() {
		g := vclock.NewShardGroup(2)
		n := NewNetwork(g.Shard(0), 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), b.NIC(), LinkConfig{})
		n.BindShards(g, map[Device]int{b: 1})
	})

	mustPanic("shard out of range", func() {
		g := vclock.NewShardGroup(2)
		n := NewNetwork(g.Shard(0), 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), b.NIC(), LinkConfig{Latency: time.Millisecond})
		n.BindShards(g, map[Device]int{b: 5})
	})
}

// TestBindShardsSingleShardKeepsLookaheadInfinite checks the degenerate
// partition: every device on shard 0 means no boundary links, a zero
// lookahead return, and the group left in infinite-lookahead mode.
func TestBindShardsSingleShardKeepsLookaheadInfinite(t *testing.T) {
	g := vclock.NewShardGroup(2)
	n := NewNetwork(g.Shard(0), 1)
	a := n.NewHost("a", ParseIP("10.0.0.1"))
	b := n.NewHost("b", ParseIP("10.0.0.2"))
	n.Connect(a.NIC(), b.NIC(), LinkConfig{Latency: time.Millisecond})
	if la := n.BindShards(g, nil); la != 0 {
		t.Fatalf("lookahead = %v, want 0 (no boundary links)", la)
	}
	if g.Lookahead() >= 0 {
		t.Fatalf("group lookahead = %v, want infinite", g.Lookahead())
	}
}
