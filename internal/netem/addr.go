// Package netem emulates the network layer of the C³ testbed: hosts,
// links with latency and bandwidth, switches, and a lightweight reliable
// transport with TCP-like handshake semantics.
//
// Every packet travels through Device pipelines connected by Links, so an
// OpenFlow switch placed on the path genuinely intercepts and rewrites
// the traffic — exactly the mechanism the transparent-access approach
// relies on. Time comes exclusively from a vclock.Clock.
package netem

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order.
type IP uint32

// ParseIP parses dotted-quad notation. It panics on malformed input —
// addresses in the emulation are compile-time constants or generated.
func ParseIP(s string) IP {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		panic(fmt.Sprintf("netem: malformed IP %q", s))
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			panic(fmt.Sprintf("netem: malformed IP %q", s))
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip)
}

// String renders the address in dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the four address bytes, most significant first.
func (ip IP) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// IPFromOctets assembles an address from four bytes, most significant first.
func IPFromOctets(o [4]byte) IP {
	return IP(uint32(o[0])<<24 | uint32(o[1])<<16 | uint32(o[2])<<8 | uint32(o[3]))
}

// HostPort is a transport endpoint: an IPv4 address and a TCP port.
type HostPort struct {
	IP   IP
	Port uint16
}

// String renders "a.b.c.d:port".
func (hp HostPort) String() string {
	return fmt.Sprintf("%s:%d", hp.IP, hp.Port)
}

// ParseHostPort parses "a.b.c.d:port", panicking on malformed input.
func ParseHostPort(s string) HostPort {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		panic(fmt.Sprintf("netem: malformed host:port %q", s))
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 0 || port > 65535 {
		panic(fmt.Sprintf("netem: malformed port in %q", s))
	}
	return HostPort{IP: ParseIP(s[:i]), Port: uint16(port)}
}

// IsZero reports whether hp is the zero endpoint.
func (hp HostPort) IsZero() bool { return hp.IP == 0 && hp.Port == 0 }
