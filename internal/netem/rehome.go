package netem

import "fmt"

// This file implements host re-homing: atomically moving a host's
// access link from one attachment point to another, the netem half of a
// 5G handover. The mobility subsystem moves a live client between gNB
// switches with Rehome; the SDN controller then re-steers its rewrite
// flows (core.Controller.Handover).
//
// Re-homing reuses the "cut the cable" semantics of Link.SetDown:
// packets already serialized onto the old link still arrive, packets
// offered from the cut on are dropped and counted, and the transport's
// retransmission recovers anything lost in the gap — which is exactly
// what keeps TCP sessions alive across the move. Invalidation is
// complete without any new mechanism: the origin host's own compiled
// plans are cleared outright, plans on other hosts that traverse the
// old link fail flight-plan validation (validFrom checks IsDown), and
// switch-side state — microflow caches, plans through the switches —
// is invalidated by the route updates the caller makes (AddRoute bumps
// the switch's path epoch).

// clearPlans drops every compiled flight plan of the host. Called when
// the host's attachment point changes: all of its plans start at the
// old access link.
func (h *Host) clearPlans() {
	h.planMu.Lock()
	if len(h.plans) > 0 {
		clear(h.plans)
		h.planMasks = h.planMasks[:0]
		h.planCount.Store(0)
	}
	h.planMu.Unlock()
}

// Rehome atomically moves host h's access link: the current link is
// severed (marked down, so in-flight packets still arrive but nothing
// new crosses), both ports are detached, and a fresh link is created
// between the host's NIC and newPeer with cfg. The old Link stays in
// the network's accounting — its Stats (including DownDrops for
// packets lost in the handover gap) remain readable.
//
// Under a sharded clock (after BindShards) the new link is bound with
// the same device→shard assignment as the original topology; a re-home
// that would create a cross-shard link faster than the group's
// lookahead panics, as it would in BindShards itself.
//
// Rehome panics when h has no access link or newPeer is already
// connected — both are orchestration bugs, not runtime conditions.
func (n *Network) Rehome(h *Host, newPeer *Port, cfg LinkConfig) *Link {
	nic := h.nic
	old := nic.link
	if old == nil {
		panic(fmt.Sprintf("netem: Rehome: host %q has no access link", h.name))
	}
	if newPeer.link != nil {
		panic(fmt.Sprintf("netem: Rehome: target port %d on %q already connected",
			newPeer.ID, newPeer.Dev.DeviceName()))
	}
	// Cut the old cable. Down-before-detach means any concurrently
	// walking compiled plan that reaches the link drops the packet
	// (counted as a down-drop) instead of delivering through a link
	// that no longer exists.
	old.SetDown(true)
	far := nic.peer
	nic.link, nic.peer = nil, nil
	far.link, far.peer = nil, nil
	// Every compiled plan originating here starts at the severed link.
	h.clearPlans()
	l := n.Connect(nic, newPeer, cfg)
	n.mu.Lock()
	bind := n.bindNewLink
	n.mu.Unlock()
	if bind != nil {
		bind(l)
	}
	return l
}
