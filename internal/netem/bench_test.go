package netem

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// BenchmarkRequestResponse measures one complete emulated exchange:
// handshake, request, response, close.
func BenchmarkRequestResponse(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		srv := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), srv.NIC(), LinkConfig{Latency: time.Millisecond})
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := a.Dial(srv.Addr(80))
			if err != nil {
				b.Fatal(err)
			}
			c.Send([]byte("x"))
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkPacketSwitchingFanIn measures link throughput with many
// concurrent senders.
func BenchmarkPacketSwitchingFanIn(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		r := NewRouter(n, "r", 11)
		srv := n.NewHost("srv", ParseIP("10.0.0.100"))
		n.Connect(srv.NIC(), r.Port(10), LinkConfig{})
		r.AddRoute(srv.IP(), r.Port(10))
		var hosts []*Host
		for i := 0; i < 10; i++ {
			h := n.NewHost(string(rune('a'+i)), ParseIP("10.0.0.1")+IP(i))
			n.Connect(h.NIC(), r.Port(i), LinkConfig{})
			r.AddRoute(h.IP(), r.Port(i))
			hosts = append(hosts, h)
		}
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var g vclock.Group
			for _, h := range hosts {
				h := h
				g.Go(clk, func() {
					c, err := h.Dial(srv.Addr(80))
					if err != nil {
						return
					}
					c.Send([]byte("x"))
					c.Recv()
					c.Close()
				})
			}
			g.Wait(clk)
		}
	})
}

// hopDevice bounces every received packet straight back out its own
// port, counting deliveries. It exercises the raw packet path — pooled
// packets, inline link events — with no transport on top.
type hopDevice struct {
	port  *Port
	count int64
}

func (d *hopDevice) DeviceName() string { return "hop" }

func (d *hopDevice) HandlePacket(pkt *Packet, in *Port) {
	d.count++
	pkt.Src, pkt.Dst = pkt.Dst, pkt.Src
	d.port.Send(pkt)
}

// BenchmarkPacketHop measures one link traversal on the raw packet hot
// path: two devices ping-ponging a single pooled packet over a link.
// Steady state must allocate nothing — the packet, the delivery event,
// and the park/unpark machinery are all recycled.
func BenchmarkPacketHop(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		da, db := &hopDevice{}, &hopDevice{}
		da.port = &Port{Dev: da}
		db.port = &Port{Dev: db}
		n.Connect(da.port, db.port, LinkConfig{Latency: 10 * time.Microsecond})

		pkt := NewPacket()
		pkt.Src = HostPort{IP: ParseIP("10.0.0.1"), Port: 1}
		pkt.Dst = HostPort{IP: ParseIP("10.0.0.2"), Port: 2}

		b.ReportAllocs()
		b.ResetTimer()
		da.port.Send(pkt)
		target := da.count + db.count + int64(b.N)
		for da.count+db.count < target {
			clk.Sleep(10 * time.Microsecond)
		}
	})
}
