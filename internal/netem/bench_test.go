package netem

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// BenchmarkRequestResponse measures one complete emulated exchange:
// handshake, request, response, close.
func BenchmarkRequestResponse(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		srv := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), srv.NIC(), LinkConfig{Latency: time.Millisecond})
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := a.Dial(srv.Addr(80))
			if err != nil {
				b.Fatal(err)
			}
			c.Send([]byte("x"))
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkPacketSwitchingFanIn measures link throughput with many
// concurrent senders.
func BenchmarkPacketSwitchingFanIn(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		r := NewRouter(n, "r", 11)
		srv := n.NewHost("srv", ParseIP("10.0.0.100"))
		n.Connect(srv.NIC(), r.Port(10), LinkConfig{})
		r.AddRoute(srv.IP(), r.Port(10))
		var hosts []*Host
		for i := 0; i < 10; i++ {
			h := n.NewHost(string(rune('a'+i)), ParseIP("10.0.0.1")+IP(i))
			n.Connect(h.NIC(), r.Port(i), LinkConfig{})
			r.AddRoute(h.IP(), r.Port(i))
			hosts = append(hosts, h)
		}
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var g vclock.Group
			for _, h := range hosts {
				h := h
				g.Go(clk, func() {
					c, err := h.Dial(srv.Addr(80))
					if err != nil {
						return
					}
					c.Send([]byte("x"))
					c.Recv()
					c.Close()
				})
			}
			g.Wait(clk)
		}
	})
}

// benchBulkTransfer builds the cloud-traversal bulk topology of the
// paper: client — RAN — core — transport — peering — cloud edge —
// server, a five-router chain of rate-less links with propagation
// delay. The workload mirrors the ResNet request of Table I: one
// 83 KiB POST in MSS-sized application segments, answered by a short
// response.
func benchBulkTransfer(b *testing.B, fastpath bool) {
	const (
		mss       = 1448
		postBytes = 83 * 1024
		nRouters  = 5
	)
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		n.SetFastPath(fastpath)
		client := n.NewHost("client", ParseIP("10.0.0.1"))
		srv := n.NewHost("srv", ParseIP("10.0.1.1"))
		var routers []*Router
		for i := 0; i < nRouters; i++ {
			routers = append(routers, NewRouter(n, "r"+string(rune('1'+i)), 2))
		}
		n.Connect(client.NIC(), routers[0].Port(0), LinkConfig{Latency: 500 * time.Microsecond})
		for i := 0; i < nRouters-1; i++ {
			n.Connect(routers[i].Port(1), routers[i+1].Port(0), LinkConfig{Latency: 2 * time.Millisecond})
		}
		n.Connect(routers[nRouters-1].Port(1), srv.NIC(), LinkConfig{Latency: 500 * time.Microsecond})
		for _, r := range routers {
			r.AddRoute(srv.IP(), r.Port(1))
			r.AddRoute(client.IP(), r.Port(0))
		}

		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					got := 0
					for got < postBytes {
						msg, err := c.Recv()
						if err != nil {
							return
						}
						got += len(msg)
					}
					c.Send([]byte("ok"))
				})
			}
		})

		segment := make([]byte, mss)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := client.Dial(srv.Addr(80))
			if err != nil {
				b.Fatal(err)
			}
			for sent := 0; sent < postBytes; sent += mss {
				chunk := segment
				if rest := postBytes - sent; rest < mss {
					chunk = segment[:rest]
				}
				c.Send(chunk)
			}
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkBulkTransfer measures one multi-hop 83 KiB POST
// (ResNet-shaped, Table I) with the datapath fast path on: segment
// trains batch the same-instant sends and compiled flight plans deliver
// each segment with a single composite event.
func BenchmarkBulkTransfer(b *testing.B) { benchBulkTransfer(b, true) }

// BenchmarkBulkTransferNoFastPath is the A/B baseline for
// BenchmarkBulkTransfer with per-hop scheduling; the ratio between the
// two is the fast path's bulk-transfer gain.
func BenchmarkBulkTransferNoFastPath(b *testing.B) { benchBulkTransfer(b, false) }

// hopDevice bounces every received packet straight back out its own
// port, counting deliveries. It exercises the raw packet path — pooled
// packets, inline link events — with no transport on top.
type hopDevice struct {
	port  *Port
	count int64
}

func (d *hopDevice) DeviceName() string { return "hop" }

func (d *hopDevice) HandlePacket(pkt *Packet, in *Port) {
	d.count++
	pkt.Src, pkt.Dst = pkt.Dst, pkt.Src
	d.port.Send(pkt)
}

// BenchmarkPacketHop measures one link traversal on the raw packet hot
// path: two devices ping-ponging a single pooled packet over a link.
// Steady state must allocate nothing — the packet, the delivery event,
// and the park/unpark machinery are all recycled.
func BenchmarkPacketHop(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		da, db := &hopDevice{}, &hopDevice{}
		da.port = &Port{Dev: da}
		db.port = &Port{Dev: db}
		n.Connect(da.port, db.port, LinkConfig{Latency: 10 * time.Microsecond})

		pkt := NewPacket()
		pkt.Src = HostPort{IP: ParseIP("10.0.0.1"), Port: 1}
		pkt.Dst = HostPort{IP: ParseIP("10.0.0.2"), Port: 2}

		b.ReportAllocs()
		b.ResetTimer()
		da.port.Send(pkt)
		target := da.count + db.count + int64(b.N)
		for da.count+db.count < target {
			clk.Sleep(10 * time.Microsecond)
		}
	})
}
