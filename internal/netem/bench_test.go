package netem

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// BenchmarkRequestResponse measures one complete emulated exchange:
// handshake, request, response, close.
func BenchmarkRequestResponse(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		srv := n.NewHost("b", ParseIP("10.0.0.2"))
		n.Connect(a.NIC(), srv.NIC(), LinkConfig{Latency: time.Millisecond})
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := a.Dial(srv.Addr(80))
			if err != nil {
				b.Fatal(err)
			}
			c.Send([]byte("x"))
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	})
}

// BenchmarkPacketSwitchingFanIn measures link throughput with many
// concurrent senders.
func BenchmarkPacketSwitchingFanIn(b *testing.B) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		r := NewRouter(n, "r", 11)
		srv := n.NewHost("srv", ParseIP("10.0.0.100"))
		n.Connect(srv.NIC(), r.Port(10), LinkConfig{})
		r.AddRoute(srv.IP(), r.Port(10))
		var hosts []*Host
		for i := 0; i < 10; i++ {
			h := n.NewHost(string(rune('a'+i)), ParseIP("10.0.0.1")+IP(i))
			n.Connect(h.NIC(), r.Port(i), LinkConfig{})
			r.AddRoute(h.IP(), r.Port(i))
			hosts = append(hosts, h)
		}
		ln, _ := srv.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var g vclock.Group
			for _, h := range hosts {
				h := h
				g.Go(clk, func() {
					c, err := h.Dial(srv.Addr(80))
					if err != nil {
						return
					}
					c.Send([]byte("x"))
					c.Recv()
					c.Close()
				})
			}
			g.Wait(clk)
		}
	})
}
