package netem

import (
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestEphemeralPortsAdvance(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				c.Close()
			}
		})
		seen := map[uint16]bool{}
		for i := 0; i < 50; i++ {
			c, err := a.Dial(b.Addr(80))
			if err != nil {
				t.Fatalf("dial %d: %v", i, err)
			}
			p := c.LocalAddr().Port
			if p < 49152 {
				t.Fatalf("ephemeral port %d below range", p)
			}
			if seen[p] {
				t.Fatalf("port %d reused while distinct conns may coexist", p)
			}
			seen[p] = true
			c.Close()
		}
	})
}

// TestTupleReuseAfterClose reproduces ephemeral-port wraparound: a new
// SYN on a 5-tuple whose previous connection was closed must establish
// a fresh connection rather than hitting the defunct server-side state.
func TestTupleReuseAfterClose(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		clk.Go(func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						req, err := c.Recv()
						if err != nil {
							return
						}
						c.Send(req)
					}
				})
			}
		})
		c1, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		port := c1.LocalAddr().Port
		c1.Send([]byte("one"))
		if _, err := c1.Recv(); err != nil {
			t.Fatal(err)
		}
		c1.Close()
		clk.Sleep(100 * time.Millisecond)

		// Force the exact same ephemeral port (wraparound simulation).
		a.mu.Lock()
		a.nextPort = port
		a.mu.Unlock()
		c2, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatalf("dial on reused tuple: %v", err)
		}
		if c2.LocalAddr().Port != port {
			t.Fatalf("test setup: got port %d, want %d", c2.LocalAddr().Port, port)
		}
		c2.Send([]byte("two"))
		resp, err := c2.RecvTimeout(10 * time.Second)
		if err != nil || string(resp) != "two" {
			t.Fatalf("reused tuple resp = %q, %v", resp, err)
		}
	})
}

func TestListenerReopenAfterClose(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, _, b := pair(t, clk, LinkConfig{})
		ln, err := b.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		ln.Close()
		ln2, err := b.Listen(80)
		if err != nil {
			t.Fatalf("re-listen after close: %v", err)
		}
		if ln2.Port() != 80 || ln2.Addr() != b.Addr(80) {
			t.Errorf("listener addr = %v", ln2.Addr())
		}
	})
}

func TestAcceptAfterCloseReturnsClosed(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, _, b := pair(t, clk, LinkConfig{})
		ln, _ := b.Listen(80)
		done := vclock.NewGate()
		var acceptErr error
		clk.Go(func() {
			_, acceptErr = ln.Accept()
			done.Open()
		})
		clk.Sleep(time.Second)
		ln.Close()
		done.Wait(clk)
		if acceptErr != ErrClosed {
			t.Errorf("Accept after close = %v, want ErrClosed", acceptErr)
		}
	})
}

func TestRouterForwardDelay(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		r := NewRouter(n, "r", 2)
		r.ForwardDelay = 10 * time.Millisecond
		n.Connect(a.NIC(), r.Port(0), LinkConfig{})
		n.Connect(b.NIC(), r.Port(1), LinkConfig{})
		r.AddRoute(a.IP(), r.Port(0))
		r.AddRoute(b.IP(), r.Port(1))
		ln, _ := b.Listen(80)
		clk.Go(func() { ln.Accept() })
		start := clk.Now()
		if _, err := a.Dial(b.Addr(80)); err != nil {
			t.Fatal(err)
		}
		// Handshake crosses the router twice: ≥20ms of forward delay.
		if d := clk.Since(start); d < 20*time.Millisecond {
			t.Errorf("handshake = %v, want ≥20ms with 10ms forward delay", d)
		}
	})
}

func TestHostDroppedCounter(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		// Deliver a packet for a foreign address.
		a.HandlePacket(&Packet{
			Src: ParseHostPort("10.0.0.9:1"),
			Dst: ParseHostPort("10.0.0.99:80"),
		}, nil)
		if a.Dropped() != 1 {
			t.Errorf("dropped = %d, want 1", a.Dropped())
		}
	})
}

func TestSendAfterPeerFinThenClose(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		serverConn := vclock.NewMailbox[*Conn](clk)
		clk.Go(func() {
			c, err := ln.Accept()
			if err == nil {
				serverConn.Send(c)
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		sc, _ := serverConn.Recv()
		c.Close()
		clk.Sleep(100 * time.Millisecond)
		// The server can still send after receiving FIN (half-close),
		// but the client has released its state: data is RST'd away and
		// the server's connection eventually fails, not the test.
		sc.Send([]byte("late"))
		clk.Sleep(10 * time.Second)
		if err := sc.Err(); err == nil {
			t.Log("server send after client close tolerated (half-close)")
		}
	})
}

func TestConnAddrAccessors(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{})
		ln, _ := b.Listen(80)
		got := vclock.NewMailbox[*Conn](clk)
		clk.Go(func() {
			c, err := ln.Accept()
			if err == nil {
				got.Send(c)
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		sc, _ := got.Recv()
		if c.RemoteAddr() != b.Addr(80) {
			t.Errorf("client remote = %v", c.RemoteAddr())
		}
		if c.LocalAddr().IP != a.IP() {
			t.Errorf("client local = %v", c.LocalAddr())
		}
		if sc.LocalAddr() != b.Addr(80) || sc.RemoteAddr() != c.LocalAddr() {
			t.Errorf("server view = %v ↔ %v", sc.LocalAddr(), sc.RemoteAddr())
		}
	})
}
