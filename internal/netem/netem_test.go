package netem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

func TestParseIPRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"} {
		if got := ParseIP(s).String(); got != s {
			t.Errorf("ParseIP(%q).String() = %q", s, got)
		}
	}
}

func TestParseIPMalformedPanics(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "-1.0.0.0"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ParseIP(%q) did not panic", s)
				}
			}()
			ParseIP(s)
		}()
	}
}

func TestIPOctetsRoundTrip(t *testing.T) {
	ip := ParseIP("10.20.30.40")
	if got := IPFromOctets(ip.Octets()); got != ip {
		t.Errorf("octet round trip: %s != %s", got, ip)
	}
}

func TestParseHostPort(t *testing.T) {
	hp := ParseHostPort("10.0.0.1:8080")
	if hp.IP != ParseIP("10.0.0.1") || hp.Port != 8080 {
		t.Errorf("ParseHostPort = %v", hp)
	}
	if hp.String() != "10.0.0.1:8080" {
		t.Errorf("String = %q", hp.String())
	}
	if hp.IsZero() {
		t.Error("non-zero endpoint reported zero")
	}
	if !(HostPort{}).IsZero() {
		t.Error("zero endpoint not reported zero")
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("flags = %q", got)
	}
	if got := TCPFlags(0).String(); got != "-" {
		t.Errorf("empty flags = %q", got)
	}
}

func TestTCPFlagsStringAllocs(t *testing.T) {
	// String builds into a fixed-size stack buffer; the only allocation
	// allowed is the final string copy.
	for _, f := range []TCPFlags{0, FlagSYN, FlagSYN | FlagACK, FlagFIN | FlagACK | FlagRST} {
		f := f
		if n := testing.AllocsPerRun(100, func() { _ = f.String() }); n > 1 {
			t.Errorf("%q: %v allocs/op, want <= 1", f.String(), n)
		}
	}
}

// pair builds a two-host topology connected through a router:
// a --- r --- b, with the given per-link config.
func pair(t *testing.T, clk vclock.Clock, cfg LinkConfig) (*Network, *Host, *Host) {
	t.Helper()
	n := NewNetwork(clk, 1)
	a := n.NewHost("a", ParseIP("10.0.0.1"))
	b := n.NewHost("b", ParseIP("10.0.0.2"))
	r := NewRouter(n, "r", 2)
	n.Connect(a.NIC(), r.Port(0), cfg)
	n.Connect(b.NIC(), r.Port(1), cfg)
	r.AddRoute(a.IP(), r.Port(0))
	r.AddRoute(b.IP(), r.Port(1))
	return n, a, b
}

func TestDialAndEcho(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, err := b.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			msg, err := c.Recv()
			if err != nil {
				t.Errorf("server Recv: %v", err)
				return
			}
			if err := c.Send(append([]byte("echo:"), msg...)); err != nil {
				t.Errorf("server Send: %v", err)
			}
		})
		start := clk.Now()
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if err := c.Send([]byte("hello")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		resp, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if string(resp) != "echo:hello" {
			t.Errorf("resp = %q", resp)
		}
		// Handshake 2ms (SYN+SYNACK) + request 2ms (data+resp): 4 one-way
		// hops of 2ms each through the router = 8ms total round trips.
		if d := clk.Since(start); d < 6*time.Millisecond || d > 20*time.Millisecond {
			t.Errorf("request took %v, want ≈8ms", d)
		}
	})
}

func TestDialRefusedNoListener(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		start := clk.Now()
		_, err := a.Dial(b.Addr(81))
		if !errors.Is(err, ErrRefused) {
			t.Fatalf("err = %v, want ErrRefused", err)
		}
		if d := clk.Since(start); d > 10*time.Millisecond {
			t.Errorf("refusal took %v; should be one RTT", d)
		}
	})
}

func TestDialAfterListenerClose(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		ln.Close()
		ln.Close() // idempotent
		if _, err := a.Dial(b.Addr(80)); !errors.Is(err, ErrRefused) {
			t.Fatalf("err = %v, want ErrRefused", err)
		}
		if b.Listening(80) {
			t.Error("port still listening after Close")
		}
	})
}

func TestListenDuplicatePort(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, _, b := pair(t, clk, LinkConfig{})
		if _, err := b.Listen(80); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Listen(80); err == nil {
			t.Error("duplicate Listen succeeded")
		}
	})
}

func TestAcceptTimeout(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, _, b := pair(t, clk, LinkConfig{})
		ln, _ := b.Listen(80)
		if _, err := ln.AcceptTimeout(time.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		ln.Close()
		if _, err := ln.AcceptTimeout(time.Second); !errors.Is(err, ErrClosed) {
			t.Errorf("err after close = %v, want ErrClosed", err)
		}
	})
}

func TestLatencyAffectsHandshake(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: 25 * time.Millisecond})
		ln, _ := b.Listen(80)
		clk.Go(func() { ln.Accept() })
		start := clk.Now()
		if _, err := a.Dial(b.Addr(80)); err != nil {
			t.Fatal(err)
		}
		// SYN: 2 hops × 25ms; SYN-ACK: 2 hops × 25ms = 100ms.
		if d := clk.Since(start); d < 100*time.Millisecond || d > 120*time.Millisecond {
			t.Errorf("handshake took %v, want ≈100ms", d)
		}
	})
}

func TestBandwidthDelaysLargePayload(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		// 1 MB/s links, 100 KB payload → ≈100ms per link hop.
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond, Bandwidth: 1e6})
		ln, _ := b.Listen(80)
		received := vclock.NewGate()
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := c.Recv(); err == nil {
				received.Open()
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		start := clk.Now()
		if err := c.Send(make([]byte, 100_000)); err != nil {
			t.Fatal(err)
		}
		received.Wait(clk)
		d := clk.Since(start)
		// Two serializing hops ≈ 200ms + latency.
		if d < 190*time.Millisecond || d > 400*time.Millisecond {
			t.Errorf("100KB over 1MB/s took %v, want ≈200ms", d)
		}
	})
}

func TestSerializationQueueing(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Bandwidth: 1e6})
		ln, _ := b.Listen(80)
		got := vclock.NewMailbox[int](clk)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			for i := 0; i < 3; i++ {
				if _, err := c.Recv(); err != nil {
					return
				}
				got.Send(i)
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		start := clk.Now()
		for i := 0; i < 3; i++ {
			c.Send(make([]byte, 50_000)) // 50ms each on the first hop
		}
		for i := 0; i < 3; i++ {
			got.Recv()
		}
		// Three back-to-back 50KB messages over 1MB/s: the third finishes
		// its first hop at 150ms, second hop adds ≈50ms → ≥200ms total.
		if d := clk.Since(start); d < 200*time.Millisecond {
			t.Errorf("3×50KB took %v, want ≥200ms (serialization must queue)", d)
		}
	})
}

func TestMessagesDeliveredInOrder(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		done := vclock.NewGate()
		var fail string
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				fail = "accept failed"
				done.Open()
				return
			}
			for i := 0; i < 50; i++ {
				msg, err := c.Recv()
				if err != nil {
					fail = fmt.Sprintf("recv %d: %v", i, err)
					done.Open()
					return
				}
				if want := fmt.Sprintf("msg-%02d", i); string(msg) != want {
					fail = fmt.Sprintf("got %q want %q", msg, want)
					done.Open()
					return
				}
			}
			done.Open()
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			c.Send([]byte(fmt.Sprintf("msg-%02d", i)))
		}
		done.Wait(clk)
		if fail != "" {
			t.Error(fail)
		}
	})
}

func TestLossyLinkStillDelivers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond, LossRate: 0.2})
		ln, _ := b.Listen(80)
		done := vclock.NewGate()
		count := 0
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				done.Open()
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := c.Recv(); err != nil {
					break
				}
				count++
			}
			done.Open()
		})
		c, err := a.DialTimeout(b.Addr(80), time.Minute)
		if err != nil {
			t.Fatalf("Dial over lossy link: %v", err)
		}
		for i := 0; i < 20; i++ {
			c.Send([]byte{byte(i)})
		}
		done.Wait(clk)
		if count != 20 {
			t.Errorf("delivered %d/20 messages over 20%% lossy link", count)
		}
	})
}

func TestDialTimeoutExpires(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		// Host with an unconnected NIC: SYNs vanish.
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		start := clk.Now()
		_, err := a.DialTimeout(HostPort{IP: ParseIP("10.9.9.9"), Port: 80}, 3*time.Second)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if d := clk.Since(start); d != 3*time.Second {
			t.Errorf("timeout after %v, want 3s", d)
		}
	})
}

func TestDialExhaustsSynRetries(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		start := clk.Now()
		_, err := a.Dial(HostPort{IP: ParseIP("10.9.9.9"), Port: 80})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		// 1+2+4+8+16+32 = 63s of SYN backoff.
		if d := clk.Since(start); d != 63*time.Second {
			t.Errorf("gave up after %v, want 63s", d)
		}
	})
}

func TestAbortResetsPeer(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		serverErr := vclock.NewMailbox[error](clk)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				serverErr.Send(err)
				return
			}
			_, err = c.Recv()
			serverErr.Send(err)
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		c.Abort()
		err, _ = serverErr.Recv()
		if !errors.Is(err, ErrReset) {
			t.Errorf("server saw %v, want ErrReset", err)
		}
	})
}

func TestCloseDeliversErrClosed(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		result := vclock.NewMailbox[error](clk)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				result.Send(err)
				return
			}
			_, err = c.Recv()
			result.Send(err)
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
		err, _ = result.Recv()
		if !errors.Is(err, ErrClosed) {
			t.Errorf("server Recv after client Close = %v, want ErrClosed", err)
		}
		if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after Close = %v, want ErrClosed", err)
		}
	})
}

func TestRecvTimeout(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		_, a, b := pair(t, clk, LinkConfig{Latency: time.Millisecond})
		ln, _ := b.Listen(80)
		clk.Go(func() { ln.Accept() })
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecvTimeout(time.Second); !errors.Is(err, ErrTimeout) {
			t.Errorf("RecvTimeout = %v, want ErrTimeout", err)
		}
	})
}

func TestLoopbackDelivery(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		ln, _ := a.Listen(80)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			msg, err := c.Recv()
			if err == nil {
				c.Send(msg)
			}
		})
		c, err := a.Dial(a.Addr(80))
		if err != nil {
			t.Fatalf("loopback Dial: %v", err)
		}
		c.Send([]byte("self"))
		msg, err := c.Recv()
		if err != nil || string(msg) != "self" {
			t.Errorf("loopback echo = %q, %v", msg, err)
		}
	})
}

func TestRouterDefaultRouteAndDrops(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		r := NewRouter(n, "r", 2)
		n.Connect(a.NIC(), r.Port(0), LinkConfig{})
		n.Connect(b.NIC(), r.Port(1), LinkConfig{})
		r.AddRoute(a.IP(), r.Port(0))
		r.SetDefault(r.Port(1)) // everything else goes to b
		ln, _ := b.Listen(80)
		clk.Go(func() { ln.Accept() })
		if _, err := a.Dial(b.Addr(80)); err != nil {
			t.Fatalf("Dial via default route: %v", err)
		}
		// A destination that routes back out of the ingress port drops.
		pkt := &Packet{Src: a.Addr(1), Dst: HostPort{IP: a.IP(), Port: 9}}
		r.HandlePacket(pkt, r.Port(0))
		if r.Dropped() != 1 {
			t.Errorf("dropped = %d, want 1", r.Dropped())
		}
	})
}

func TestDuplicateHostPanics(t *testing.T) {
	clk := vclock.New()
	n := NewNetwork(clk, 1)
	n.NewHost("a", ParseIP("10.0.0.1"))
	for _, tc := range []struct{ name, ip string }{
		{"a", "10.0.0.2"}, // duplicate name
		{"b", "10.0.0.1"}, // duplicate IP
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHost(%s,%s) did not panic", tc.name, tc.ip)
				}
			}()
			n.NewHost(tc.name, ParseIP(tc.ip))
		}()
	}
}

func TestHostLookups(t *testing.T) {
	clk := vclock.New()
	n := NewNetwork(clk, 1)
	a := n.NewHost("a", ParseIP("10.0.0.1"))
	if n.Host("a") != a || n.HostByIP(a.IP()) != a {
		t.Error("lookup mismatch")
	}
	if n.Host("zzz") != nil || n.HostByIP(ParseIP("9.9.9.9")) != nil {
		t.Error("missing host lookup returned non-nil")
	}
}

func TestLinkStats(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		l := n.Connect(a.NIC(), b.NIC(), LinkConfig{})
		ln, _ := b.Listen(80)
		clk.Go(func() { ln.Accept() })
		if _, err := a.Dial(b.Addr(80)); err != nil {
			t.Fatal(err)
		}
		st := l.Stats()
		if st.SentAB == 0 || st.SentBA == 0 {
			t.Errorf("stats: sentAB=%d sentBA=%d, want >0 both ways", st.SentAB, st.SentBA)
		}
		if st.DroppedAB != 0 || st.DroppedBA != 0 {
			t.Errorf("loss-free link dropped packets: %d/%d", st.DroppedAB, st.DroppedBA)
		}
		if st.DeliveredAB != st.SentAB || st.DeliveredBA != st.SentBA {
			t.Errorf("loss-free link: delivered %d/%d != sent %d/%d",
				st.DeliveredAB, st.DeliveredBA, st.SentAB, st.SentBA)
		}
	})
}

// TestLinkStatsLossy pins the stats contract on a lossy link: Sent counts
// every packet offered (pre-loss) and Delivered = Sent − Dropped.
func TestLinkStatsLossy(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 7)
		a := n.NewHost("a", ParseIP("10.0.0.1"))
		b := n.NewHost("b", ParseIP("10.0.0.2"))
		l := n.Connect(a.NIC(), b.NIC(), LinkConfig{Latency: time.Millisecond, LossRate: 0.3})
		ln, _ := b.Listen(80)
		clk.Go(func() {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		})
		c, err := a.Dial(b.Addr(80))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			c.Send([]byte("payload"))
		}
		clk.Sleep(30 * time.Second)
		st := l.Stats()
		if st.DroppedAB == 0 && st.DroppedBA == 0 {
			t.Errorf("lossy link dropped nothing over %d+%d packets", st.SentAB, st.SentBA)
		}
		if st.DeliveredAB != st.SentAB-st.DroppedAB {
			t.Errorf("a→b delivered=%d, want sent−dropped=%d", st.DeliveredAB, st.SentAB-st.DroppedAB)
		}
		if st.DeliveredBA != st.SentBA-st.DroppedBA {
			t.Errorf("b→a delivered=%d, want sent−dropped=%d", st.DeliveredBA, st.SentBA-st.DroppedBA)
		}
		if st.DeliveredAB <= 0 || st.DeliveredBA <= 0 {
			t.Errorf("delivered counts not positive: %d/%d", st.DeliveredAB, st.DeliveredBA)
		}
	})
}

func TestConnectTwicePanics(t *testing.T) {
	clk := vclock.New()
	n := NewNetwork(clk, 1)
	a := n.NewHost("a", ParseIP("10.0.0.1"))
	b := n.NewHost("b", ParseIP("10.0.0.2"))
	n.Connect(a.NIC(), b.NIC(), LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Error("double Connect did not panic")
		}
	}()
	c := n.NewHost("c", ParseIP("10.0.0.3"))
	n.Connect(a.NIC(), c.NIC(), LinkConfig{})
}

// Property: any sequence of messages sent over a lossy link arrives
// complete and in order.
func TestReliableDeliveryProperty(t *testing.T) {
	f := func(msgs [][]byte, lossSeed int64) bool {
		if len(msgs) > 30 {
			msgs = msgs[:30]
		}
		clk := vclock.New()
		ok := true
		clk.Run(func() {
			n := NewNetwork(clk, lossSeed)
			a := n.NewHost("a", ParseIP("10.0.0.1"))
			b := n.NewHost("b", ParseIP("10.0.0.2"))
			n.Connect(a.NIC(), b.NIC(), LinkConfig{Latency: time.Millisecond, LossRate: 0.15})
			ln, _ := b.Listen(80)
			done := vclock.NewGate()
			var got [][]byte
			clk.Go(func() {
				c, err := ln.Accept()
				if err != nil {
					done.Open()
					return
				}
				for range msgs {
					m, err := c.Recv()
					if err != nil {
						break
					}
					got = append(got, m)
				}
				done.Open()
			})
			c, err := a.DialTimeout(b.Addr(80), 2*time.Minute)
			if err != nil {
				ok = false
				return
			}
			for _, m := range msgs {
				c.Send(m)
			}
			done.Wait(clk)
			if len(got) != len(msgs) {
				ok = false
				return
			}
			for i := range msgs {
				if !bytes.Equal(got[i], msgs[i]) {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
