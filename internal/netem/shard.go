package netem

import (
	"fmt"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// shardBoundary tags one direction of a link whose endpoints live on
// different shards: deliveries cross through the group's record
// exchange instead of a local Post2.
type shardBoundary struct {
	g        *vclock.ShardGroup
	from, to int
}

// ShardClockBinder is implemented by devices that can be rebound to a
// shard's clock. Host and Router implement it here; openflow.Switch
// implements it in its own package. A device assigned to a non-zero
// shard must implement it — otherwise its timers would silently keep
// firing on the network's (shard-0) clock.
type ShardClockBinder interface {
	BindShardClock(clk vclock.Clock)
}

// BindShardClock implements ShardClockBinder for hosts: the transport
// (connections, listeners, retransmission timers) runs on the shard's
// clock after Network.BindShards.
func (h *Host) BindShardClock(clk vclock.Clock) { h.clk = clk }

// BindShards partitions the topology across the clocks of a ShardGroup:
// shardOf assigns each device to a shard (devices it does not mention
// stay on shard 0, whose clock is the network's own). Links pick up
// per-direction clocks — a transmission runs on the sender's shard —
// and links whose endpoints straddle shards become boundary links whose
// deliveries cross through the group's canonical record exchange.
//
// The returned duration is the partition's lookahead: the minimum
// latency over all boundary links. BindShards installs it on the group,
// so after it returns the group is ready to Run.
//
// Constraints, all enforced by panic because they are topology-build
// bugs, not runtime conditions:
//
//   - every boundary link needs positive latency (a zero-latency
//     cross-shard edge admits no safe window);
//   - no link may have a loss rate when more than one shard is in use
//     (loss draws consume the network's shared rng, which would make the
//     draw order — and thus the run — depend on shard scheduling);
//   - a device assigned to a non-zero shard must implement
//     ShardClockBinder;
//   - no packet capture may be installed (the tap timestamps with the
//     network clock and serializes all shards through one callback).
//
// Call BindShards after the topology is wired but before any listener
// or connection exists: those capture the host's clock at creation, so
// ones made earlier would keep waiting on the pre-bind clock.
// Mailbox-coupled devices (an OpenFlow switch and its controller) must
// share a shard: mailboxes are intra-shard primitives. BindShards also
// disables the datapath fast path — compiled flight plans tunnel
// packets across the whole path on the origin host's clock, which is
// exactly the cross-clock shortcut a partitioned run must not take.
func (n *Network) BindShards(g *vclock.ShardGroup, shardOf map[Device]int) time.Duration {
	if n.captureActive() {
		panic("netem: BindShards with a packet capture installed")
	}
	shard := func(d Device) int {
		s := shardOf[d]
		if s < 0 || s >= g.Shards() {
			panic(fmt.Sprintf("netem: device %q assigned to shard %d of %d", d.DeviceName(), s, g.Shards()))
		}
		return s
	}
	multi := false
	for _, s := range shardOf {
		if s != 0 {
			multi = true
		}
	}

	bound := make(map[Device]bool)
	bind := func(d Device) {
		if bound[d] {
			return
		}
		bound[d] = true
		s := shard(d)
		if b, ok := d.(ShardClockBinder); ok {
			b.BindShardClock(g.Shard(s))
			return
		}
		if s != 0 {
			panic(fmt.Sprintf("netem: device %q on shard %d does not implement ShardClockBinder", d.DeviceName(), s))
		}
	}

	// sealed flips once the initial bind completes: links bound later
	// (host re-homing) may not shrink the group's installed lookahead.
	lookahead := time.Duration(0)
	sealed := false
	bindLink := func(l *Link) {
		if multi && l.cfg.LossRate > 0 {
			panic("netem: BindShards with a lossy link: loss draws would couple shards through the shared rng")
		}
		bind(l.a.Dev)
		bind(l.b.Dev)
		sa, sb := shard(l.a.Dev), shard(l.b.Dev)
		l.clkA, l.clkB = g.Shard(sa), g.Shard(sb)
		if sa == sb {
			return
		}
		if l.cfg.Latency <= 0 {
			panic(fmt.Sprintf("netem: zero-latency link between %q and %q crosses shards %d/%d",
				l.a.Dev.DeviceName(), l.b.Dev.DeviceName(), sa, sb))
		}
		if sealed && l.cfg.Latency < lookahead {
			panic(fmt.Sprintf("netem: re-homed link between %q and %q has latency %v below the group lookahead %v",
				l.a.Dev.DeviceName(), l.b.Dev.DeviceName(), l.cfg.Latency, lookahead))
		}
		l.xAB = &shardBoundary{g: g, from: sa, to: sb}
		l.xBA = &shardBoundary{g: g, from: sb, to: sa}
		if !sealed && (lookahead == 0 || l.cfg.Latency < lookahead) {
			lookahead = l.cfg.Latency
		}
	}
	n.mu.Lock()
	links := append([]*Link(nil), n.links...)
	n.mu.Unlock()
	for _, l := range links {
		bindLink(l)
	}
	// Hosts with no link (loopback-only) still need their shard clock.
	n.mu.Lock()
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	n.mu.Unlock()
	for _, h := range hosts {
		bind(h)
	}

	n.fastpathOff.Store(true)
	if lookahead > 0 {
		g.SetLookahead(lookahead)
	}
	sealed = true
	n.mu.Lock()
	n.bindNewLink = bindLink
	n.mu.Unlock()
	return lookahead
}
