package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// CaptureFunc receives a copy of every packet entering a link, with the
// clock time of transmission — the emulator's tcpdump tap.
type CaptureFunc func(ts time.Time, pkt *Packet)

// Network owns the devices and links of one emulated topology.
type Network struct {
	Clock vclock.Clock

	mu      sync.Mutex
	rng     *vclock.Rand
	hosts   map[string]*Host
	byIP    map[IP]*Host
	links   []*Link
	nextCID uint64
	// capture holds the installed tap behind an atomic pointer so the
	// per-packet fast path is one load, no lock, and no packet Clone
	// when no tap is registered.
	capture atomic.Pointer[CaptureFunc]
	// fastpathOff disables compiled delivery and segment trains; the
	// zero value means the fast path is on. See SetFastPath.
	fastpathOff atomic.Bool
	// bindNewLink, set by BindShards, applies the partition's
	// device→shard clock assignment to links created after the bind
	// (host re-homing); nil in unsharded runs. Guarded by mu.
	bindNewLink func(*Link)
}

// NewNetwork returns an empty topology driven by clk. seed feeds the
// deterministic randomness used for loss and jitter.
func NewNetwork(clk vclock.Clock, seed int64) *Network {
	return &Network{
		Clock: clk,
		rng:   vclock.NewRand(seed),
		hosts: make(map[string]*Host),
		byIP:  make(map[IP]*Host),
	}
}

// NewHost creates a host with one NIC and the given primary address.
// Host names and addresses must be unique within the network.
func (n *Network) NewHost(name string, ip IP) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		panic(fmt.Sprintf("netem: duplicate host %q", name))
	}
	if _, dup := n.byIP[ip]; dup {
		panic(fmt.Sprintf("netem: duplicate IP %s", ip))
	}
	h := newHost(n, name, ip)
	n.hosts[name] = h
	n.byIP[ip] = h
	return h
}

// Host returns the host with the given name, or nil.
func (n *Network) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// HostByIP returns the host owning ip, or nil.
func (n *Network) HostByIP(ip IP) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.byIP[ip]
}

// Connect wires two ports together with the given link characteristics.
// Each port can be part of only one link.
func (n *Network) Connect(a, b *Port, cfg LinkConfig) *Link {
	if a.link != nil || b.link != nil {
		panic("netem: port already connected")
	}
	l := &Link{clk: n.Clock, rng: n.rng, net: n, cfg: cfg, a: a, b: b}
	a.link, a.peer = l, b
	b.link, b.peer = l, a
	n.mu.Lock()
	n.links = append(n.links, l)
	n.mu.Unlock()
	return l
}

// SetCapture installs a packet tap on every link (pass nil to remove).
// The function is called synchronously from transmit paths and must be
// fast and thread-safe. The tap owns the copies it receives and may
// retain them; it must not mutate or Release packets it did not copy.
func (n *Network) SetCapture(fn CaptureFunc) {
	if fn == nil {
		n.capture.Store(nil)
		return
	}
	n.capture.Store(&fn)
}

// captureActive reports whether a tap is installed.
func (n *Network) captureActive() bool { return n.capture.Load() != nil }

// capturePacket taps one transmitted packet.
func (n *Network) capturePacket(pkt *Packet) {
	if fn := n.capture.Load(); fn != nil {
		(*fn)(n.Clock.Now(), pkt.Clone())
	}
}

// nextConnID issues a unique connection tag for capture/debugging.
func (n *Network) nextConnID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextCID++
	return n.nextCID
}
