package netem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TCPFlags carries the subset of TCP control bits the emulation models.
type TCPFlags uint8

// TCP control bits.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

// flagNames orders the render of String; the bit order matches the
// constant declarations above.
var flagNames = [...]string{"SYN", "ACK", "FIN", "RST", "PSH"}

// String renders the flags like "SYN|ACK". It builds the result in a
// fixed-size stack buffer — one allocation (the returned string), never
// an intermediate slice — because capture and trace paths format every
// packet.
func (t TCPFlags) String() string {
	if t == 0 {
		return "-"
	}
	var buf [len(flagNames)*4 - 1]byte
	b := buf[:0]
	for i, name := range flagNames {
		if t&(1<<i) == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, '|')
		}
		b = append(b, name...)
	}
	return string(b)
}

// headerOverhead is the modelled per-packet wire overhead
// (Ethernet 14 + IPv4 20 + TCP 32 with options).
const headerOverhead = 66

// Packet is one TCP segment travelling through the emulated network.
//
// Packets carry explicit ownership: Port.Send and Host-level transmit
// take ownership of the packet they are handed, and a Device owns every
// packet HandlePacket delivers to it — it either forwards the packet
// (passing ownership on) or is responsible for it afterwards. Owners may
// rewrite the address fields in place. A sender that needs to keep a
// packet (retransmit queues, capture taps) must transmit a Clone.
type Packet struct {
	Src, Dst HostPort
	Flags    TCPFlags
	// Seq numbers messages within a connection (not bytes); the reliable
	// transport delivers messages to the application in Seq order.
	Seq uint32
	// Ack acknowledges a message Seq when FlagACK is set on a bare ack.
	Ack     uint32
	Payload []byte
	// ConnID tags all segments of one originating connection attempt.
	// It is debugging/capture metadata only: forwarding and demux use
	// the address fields, which rewrites may change.
	ConnID uint64
	// rec, when non-nil, accumulates this packet's path as a flight
	// plan (see fastpath.go). It belongs to this packet alone: clones
	// never inherit it, and the pool never recycles a live recording.
	rec *flightRec
}

// pktPool recycles Packet structs so the steady-state forwarding path
// allocates nothing. Payload backing arrays are never pooled: they are
// shared, immutable-once-sent, and may outlive the packet (the receiver
// keeps the slice).
var pktPool = sync.Pool{New: func() any { return new(Packet) }}

// livePackets counts packets taken from the pool and not yet released.
// Chaos invariant checks compare it before and after a run to prove the
// system does not accumulate held packets.
var livePackets atomic.Int64

// LivePackets reports the number of pooled packets currently checked
// out (allocated or cloned and not yet released). Holders that rely on
// the GC fallback instead of calling Release keep the count elevated,
// which is exactly what the leak checks are looking for.
func LivePackets() int64 { return livePackets.Load() }

// NewPacket returns a zeroed packet from the pool. The caller owns it.
func NewPacket() *Packet {
	p := pktPool.Get().(*Packet)
	*p = Packet{}
	livePackets.Add(1)
	return p
}

// Release returns a packet to the pool. Only the packet's owner may call
// it, and must not touch the packet afterwards. Releasing is optional —
// an unreleased packet just falls to the garbage collector — so holders
// of indefinitely retained copies (captures, controller-held packets)
// can simply keep them.
func (p *Packet) Release() {
	if p.rec != nil {
		p.rec.recycle()
		p.rec = nil
	}
	livePackets.Add(-1)
	pktPool.Put(p)
}

// WireSize is the modelled size in bytes used for serialization delay.
func (p *Packet) WireSize() int { return headerOverhead + len(p.Payload) }

// Clone returns a deep copy from the packet pool; the payload slice is
// shared (treated as immutable once sent).
func (p *Packet) Clone() *Packet {
	q := pktPool.Get().(*Packet)
	*q = *p
	q.rec = nil
	livePackets.Add(1)
	return q
}

// String renders a compact single-line description for logs and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s>%s %s seq=%d ack=%d len=%d", p.Src, p.Dst, p.Flags, p.Seq, p.Ack, len(p.Payload))
}
