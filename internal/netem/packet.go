package netem

import (
	"fmt"
	"strings"
)

// TCPFlags carries the subset of TCP control bits the emulation models.
type TCPFlags uint8

// TCP control bits.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

// String renders the flags like "SYN|ACK".
func (t TCPFlags) String() string {
	var parts []string
	for _, e := range []struct {
		f TCPFlags
		s string
	}{{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}} {
		if t.Has(e.f) {
			parts = append(parts, e.s)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// headerOverhead is the modelled per-packet wire overhead
// (Ethernet 14 + IPv4 20 + TCP 32 with options).
const headerOverhead = 66

// Packet is one TCP segment travelling through the emulated network.
// Devices may rewrite the address fields in place on a copy they own;
// links always hand each receiver its own copy.
type Packet struct {
	Src, Dst HostPort
	Flags    TCPFlags
	// Seq numbers messages within a connection (not bytes); the reliable
	// transport delivers messages to the application in Seq order.
	Seq uint32
	// Ack acknowledges a message Seq when FlagACK is set on a bare ack.
	Ack     uint32
	Payload []byte
	// ConnID tags all segments of one originating connection attempt.
	// It is debugging/capture metadata only: forwarding and demux use
	// the address fields, which rewrites may change.
	ConnID uint64
}

// WireSize is the modelled size in bytes used for serialization delay.
func (p *Packet) WireSize() int { return headerOverhead + len(p.Payload) }

// Clone returns a deep copy; the payload slice is shared (treated as
// immutable once sent).
func (p *Packet) Clone() *Packet {
	q := *p
	return &q
}

// String renders a compact single-line description for logs and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("%s>%s %s seq=%d ack=%d len=%d", p.Src, p.Dst, p.Flags, p.Seq, p.Ack, len(p.Payload))
}
