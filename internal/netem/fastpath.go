package netem

import (
	"sync"
	"time"
)

// This file implements path-compiled delivery: the first packet between
// two endpoints records the hop sequence it traverses (links, forwarding
// devices, rewrites) as a "flight plan"; subsequent packets between the
// same endpoints replay the plan directly instead of being handed from
// device to device.
//
// The replay is exact, not approximate. A compiled walk steps through
// the plan accumulating virtual delay; whenever it reaches a link with a
// serialization rate (Bandwidth > 0) that the packet has not yet arrived
// at, it posts a single resume event for that link's true transmit
// instant. Reserving transmitter time at the true instant means
// cross-traffic sharing the link observes exactly the queue state it
// would have seen in the uncompiled path — the resume events coincide,
// instant for instant and scheduling-order for scheduling-order, with
// the per-hop delivery events the slow path would have created. Maximal
// runs of rate-less hops, which need no reservations, collapse into one
// composite delivery event; that is where N heap events become 1.
//
// Plans are invalidated by epoch: every forwarding device exposes a
// PathEpoch that it bumps on any state change affecting forwarding
// (flow-table mutation, route change). A plan validates all its device
// epochs before applying side effects, and again at every resume
// boundary; on mismatch mid-flight the packet is handed back to the
// normal per-hop path from exactly where it stopped. Paths with lossy
// links are never compiled: the per-link loss draws must consume the
// deterministic rng stream in baseline order. Packet capture likewise
// forces the per-hop path so taps observe every link.

// FieldMask names packet address fields, both as "fields a rewrite
// sets" and as "fields a forwarding decision examined". Plans are keyed
// by the union of fields the path's devices examined, so paths that
// forward on the destination alone are shared across source ports.
type FieldMask uint8

// Address field bits.
const (
	FieldSrcIP FieldMask = 1 << iota
	FieldSrcPort
	FieldDstIP
	FieldDstPort
)

// Rewrite is a compiled set-field action list: the fields in Fields are
// overwritten with the corresponding values from Src/Dst.
type Rewrite struct {
	Fields   FieldMask
	Src, Dst HostPort
}

// Apply overwrites pkt's selected address fields.
func (rw Rewrite) Apply(pkt *Packet) {
	if rw.Fields&FieldSrcIP != 0 {
		pkt.Src.IP = rw.Src.IP
	}
	if rw.Fields&FieldSrcPort != 0 {
		pkt.Src.Port = rw.Src.Port
	}
	if rw.Fields&FieldDstIP != 0 {
		pkt.Dst.IP = rw.Dst.IP
	}
	if rw.Fields&FieldDstPort != 0 {
		pkt.Dst.Port = rw.Dst.Port
	}
}

// PathDevice is a forwarding device that supports compiled delivery. It
// must bump the epoch on every state change that can alter where or how
// a packet is forwarded.
type PathDevice interface {
	PathEpoch() uint64
}

type stepKind uint8

const (
	stepLink stepKind = iota
	stepDevice
)

// planStep is one hop of a flight plan: either a link traversal (with
// direction, so per-direction stats and serialization state update
// correctly) or a forwarding device (epoch to validate, rewrite to
// replay, optional forwarding delay, optional counter callback).
type planStep struct {
	kind  stepKind
	link  *Link
	fromA bool
	dev   PathDevice
	epoch uint64
	rw    Rewrite
	delay time.Duration
	// touch replays the device's per-packet accounting (flow counters,
	// idle-timeout refresh) with the packet's arrival instant at the
	// device.
	touch func(*Packet, time.Time)
}

// from returns the port the packet leaves through on a link step.
func (st *planStep) from() *Port {
	if st.fromA {
		return st.link.a
	}
	return st.link.b
}

// flightPlan is a compiled path from one host to another.
type flightPlan struct {
	key      planKey
	mask     FieldMask
	steps    []planStep
	destPort *Port // ingress port at the destination device
}

// valid reports whether every device hop from step i on is still at the
// epoch it was recorded at and every link hop is still up. Links have
// no epoch — down state is checked directly — so a link that flaps
// down and back up between validations never falsely kills a plan.
func (p *flightPlan) validFrom(i int) bool {
	for j := i; j < len(p.steps); j++ {
		st := &p.steps[j]
		switch st.kind {
		case stepDevice:
			if st.dev.PathEpoch() != st.epoch {
				return false
			}
		case stepLink:
			if st.link.IsDown() {
				return false
			}
		}
	}
	return true
}

// planKey is a (src, dst) endpoint pair projected through the plan's
// field mask: fields the path never examined are zeroed so one plan
// serves every flow the path would treat identically.
type planKey struct {
	src, dst HostPort
}

func projectKey(src, dst HostPort, m FieldMask) planKey {
	var k planKey
	if m&FieldSrcIP != 0 {
		k.src.IP = src.IP
	}
	if m&FieldSrcPort != 0 {
		k.src.Port = src.Port
	}
	if m&FieldDstIP != 0 {
		k.dst.IP = dst.IP
	}
	if m&FieldDstPort != 0 {
		k.dst.Port = dst.Port
	}
	return k
}

// maxPlanSteps bounds a recording; paths that do not terminate at a
// host within the cap (forwarding loops) abort instead of growing.
const maxPlanSteps = 32

// maxPlansPerHost bounds one host's plan table. Ephemeral ports can
// appear in plan keys (when a path examines them), so long-running
// workloads would otherwise accumulate one plan per dead connection;
// overflowing resets the table and lets live flows re-record.
const maxPlansPerHost = 1024

// flightRec accumulates the hops of an in-flight first packet. It rides
// on the packet itself and becomes a plan if and when the packet
// arrives at the host that owns its destination address.
type flightRec struct {
	origin   *Host
	src, dst HostPort // original endpoints, before any rewrites
	mask     FieldMask
	steps    []planStep
}

var recPool = sync.Pool{New: func() any { return new(flightRec) }}

func (r *flightRec) recycle() {
	r.origin = nil
	r.steps = r.steps[:0]
	recPool.Put(r)
}

// Recording reports whether this packet is recording a flight plan.
func (p *Packet) Recording() bool { return p.rec != nil }

// AbortRecording discards the packet's recording; the path cannot be
// compiled (lossy link, punt to controller, non-replayable action).
func (p *Packet) AbortRecording() {
	if p.rec != nil {
		p.rec.recycle()
		p.rec = nil
	}
}

// RecordHop appends a forwarding-device hop to the packet's recording.
// examined is the set of address fields the device's decision depended
// on; rw the rewrite it applied; delay its forwarding delay; touch, if
// non-nil, replays its per-packet accounting on compiled traversals.
func (p *Packet) RecordHop(dev PathDevice, epoch uint64, rw Rewrite, examined FieldMask, delay time.Duration, touch func(*Packet, time.Time)) {
	r := p.rec
	if r == nil {
		return
	}
	if len(r.steps) >= maxPlanSteps {
		p.AbortRecording()
		return
	}
	r.mask |= examined
	r.steps = append(r.steps, planStep{
		kind:  stepDevice,
		dev:   dev,
		epoch: epoch,
		rw:    rw,
		delay: delay,
		touch: touch,
	})
}

// recordLink appends a link traversal, or aborts when the link can drop
// (loss draws must stay on the per-hop path to keep rng order).
func (p *Packet) recordLink(l *Link, fromA bool) {
	r := p.rec
	if l.cfg.LossRate > 0 || len(r.steps) >= maxPlanSteps {
		p.AbortRecording()
		return
	}
	r.steps = append(r.steps, planStep{kind: stepLink, link: l, fromA: fromA})
}

// attachRecorder starts recording pkt's path. Called for locally
// originated packets that found no usable plan.
func (h *Host) attachRecorder(pkt *Packet) {
	r := recPool.Get().(*flightRec)
	r.origin = h
	r.src, r.dst = pkt.Src, pkt.Dst
	// The destination address is always part of the key: delivery
	// itself selects on it even when no device examines anything.
	r.mask = FieldDstIP
	pkt.rec = r
}

// finalizeRecording turns a completed recording into a plan on the
// origin host. h is the host the packet arrived at.
func (h *Host) finalizeRecording(r *flightRec) {
	n := len(r.steps)
	if n == 0 || r.steps[n-1].kind != stepLink {
		r.recycle()
		return
	}
	last := &r.steps[n-1]
	destPort := last.link.b
	if !last.fromA {
		destPort = last.link.a
	}
	plan := &flightPlan{
		key:      projectKey(r.src, r.dst, r.mask),
		mask:     r.mask,
		steps:    append([]planStep(nil), r.steps...),
		destPort: destPort,
	}
	r.origin.installPlan(plan)
	r.recycle()
}

// installPlan stores a compiled plan, replacing any previous plan with
// the same key.
func (h *Host) installPlan(p *flightPlan) {
	h.planMu.Lock()
	if h.plans == nil {
		h.plans = make(map[planKey]*flightPlan)
	}
	if len(h.plans) >= maxPlansPerHost {
		clear(h.plans)
		h.planMasks = h.planMasks[:0]
	}
	if prev, ok := h.plans[p.key]; !ok || prev.mask != p.mask {
		h.addMaskLocked(p.mask)
	}
	h.plans[p.key] = p
	h.planCount.Store(int64(len(h.plans)))
	h.planMu.Unlock()
}

// addMaskLocked registers a mask in the ordered probe list, most
// specific (most bits) first so exact plans win over shared ones.
func (h *Host) addMaskLocked(m FieldMask) {
	for _, have := range h.planMasks {
		if have == m {
			return
		}
	}
	h.planMasks = append(h.planMasks, m)
	for i := len(h.planMasks) - 1; i > 0; i-- {
		a, b := h.planMasks[i-1], h.planMasks[i]
		if popcount(a) > popcount(b) || (popcount(a) == popcount(b) && a >= b) {
			break
		}
		h.planMasks[i-1], h.planMasks[i] = b, a
	}
}

func popcount(m FieldMask) int {
	c := 0
	for m != 0 {
		m &= m - 1
		c++
	}
	return c
}

// dropPlan removes an invalidated plan. Probe masks are left in place:
// they are a tiny bounded set and re-deriving them is not worth the
// bookkeeping.
func (h *Host) dropPlan(p *flightPlan) {
	h.planMu.Lock()
	if h.plans[p.key] == p {
		delete(h.plans, p.key)
		h.planCount.Store(int64(len(h.plans)))
	}
	h.planMu.Unlock()
}

// lookupPlan finds a plan covering (src, dst), probing each recorded
// mask from most to least specific.
func (h *Host) lookupPlan(src, dst HostPort) *flightPlan {
	if h.planCount.Load() == 0 {
		return nil
	}
	h.planMu.Lock()
	for _, m := range h.planMasks {
		if p, ok := h.plans[projectKey(src, dst, m)]; ok {
			h.planMu.Unlock()
			return p
		}
	}
	h.planMu.Unlock()
	return nil
}

// tryCompiledSend delivers pkt via a compiled plan. It returns false —
// leaving pkt untouched — when no valid plan covers the packet or a
// capture tap needs the per-hop path.
func (h *Host) tryCompiledSend(pkt *Packet) bool {
	if h.net.captureActive() {
		return false
	}
	plan := h.lookupPlan(pkt.Src, pkt.Dst)
	if plan == nil {
		return false
	}
	if !plan.validFrom(0) {
		h.dropPlan(plan)
		return false
	}
	h.net.walk(pkt, plan, 0)
	return true
}

// walkState carries a paused walk across its resume event.
type walkState struct {
	net  *Network
	plan *flightPlan
	idx  int
}

var wsPool = sync.Pool{New: func() any { return new(walkState) }}

// resumeWalk is the Post2 callback that continues a walk at a link's
// transmit instant. It revalidates the remaining hops: if the path
// changed (or a capture tap appeared) while the packet was in flight,
// the packet is handed to the normal per-hop path from exactly where it
// stopped.
func resumeWalk(a, b any) {
	pkt := a.(*Packet)
	ws := b.(*walkState)
	net, plan, idx := ws.net, ws.plan, ws.idx
	*ws = walkState{}
	wsPool.Put(ws)
	if net.captureActive() || !plan.validFrom(idx) {
		st := &plan.steps[idx]
		st.link.transmit(pkt, st.from())
		return
	}
	net.walk(pkt, plan, idx)
}

// walk executes plan from step idx. Invariant: the virtual now is the
// instant the packet arrives at the transmitter of the link at idx (or
// at the device at idx). Device epochs from idx on have been validated
// at this instant.
func (n *Network) walk(pkt *Packet, plan *flightPlan, idx int) {
	var t time.Duration // delay accumulated ahead of now
	var now time.Time
	nowSet := false
	for i := idx; i < len(plan.steps); i++ {
		st := &plan.steps[i]
		if st.kind == stepDevice {
			if st.touch != nil {
				if !nowSet {
					now, nowSet = n.Clock.Now(), true
				}
				st.touch(pkt, now.Add(t))
			}
			st.rw.Apply(pkt)
			t += st.delay
			continue
		}
		l := st.link
		if l.cfg.Bandwidth > 0 && t > 0 {
			// The packet reaches this link's transmitter t from now.
			// Serialization state must be reserved at that true instant
			// (cross-traffic arriving meanwhile queues first, exactly as
			// on the per-hop path), so pause and resume there.
			ws := wsPool.Get().(*walkState)
			ws.net, ws.plan, ws.idx = n, plan, i
			n.Clock.Post2(t, resumeWalk, pkt, ws)
			return
		}
		l.mu.Lock()
		nextFree := &l.nextFreeB
		if st.fromA {
			nextFree = &l.nextFreeA
			l.sentA++
		} else {
			l.sentB++
		}
		if l.cfg.Bandwidth > 0 {
			// t == 0: now is this link's transmit instant.
			if !nowSet {
				now, nowSet = n.Clock.Now(), true
			}
			start := now
			if nextFree.After(start) {
				start = *nextFree
			}
			end := start.Add(time.Duration(float64(pkt.WireSize()) / l.cfg.Bandwidth * float64(time.Second)))
			*nextFree = end
			t = end.Sub(now) + l.cfg.Latency
		} else {
			t += l.cfg.Latency
		}
		l.mu.Unlock()
	}
	n.Clock.Post2(t, deliverPacket, pkt, plan.destPort)
}

// SetFastPath enables or disables compiled delivery and the transport's
// segment trains (enabled by default). Disabling is the -no-fastpath
// escape hatch used to A/B-verify that outputs are identical.
func (n *Network) SetFastPath(enabled bool) { n.fastpathOff.Store(!enabled) }

// FastPathEnabled reports whether the datapath fast path is active.
func (n *Network) FastPathEnabled() bool { return !n.fastpathOff.Load() }
