package netem

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// Router is a plain L3 forwarding device with static host routes and an
// optional default route. The evaluation topology uses it for the path
// toward the emulated cloud; the interesting switching happens in the
// OpenFlow switch, which implements Device separately.
type Router struct {
	name string
	clk  vclock.Clock

	mu       sync.Mutex
	ports    []*Port
	routes   map[IP]*Port
	fallback *Port
	// ForwardDelay models lookup/queuing latency per forwarded packet.
	// Set it before traffic flows: compiled paths capture it.
	ForwardDelay time.Duration

	// dropped is atomic: stats reporters read it while clock goroutines
	// forward packets.
	dropped atomic.Int64
	// epoch versions the routing state for compiled delivery; any
	// change that can alter where a packet is forwarded bumps it.
	epoch atomic.Uint64
	// down marks the router crashed: every packet handed to it is
	// dropped until Restart.
	down atomic.Bool
}

// NewRouter returns a router with n ports attached to net's clock.
func NewRouter(n *Network, name string, ports int) *Router {
	r := &Router{
		name:   name,
		clk:    n.Clock,
		routes: make(map[IP]*Port),
	}
	for i := 0; i < ports; i++ {
		r.ports = append(r.ports, &Port{Dev: r, ID: i})
	}
	return r
}

// DeviceName implements Device.
func (r *Router) DeviceName() string { return r.name }

// BindShardClock implements ShardClockBinder: forwarding delays are
// scheduled on the shard's clock after Network.BindShards.
func (r *Router) BindShardClock(clk vclock.Clock) { r.clk = clk }

// Port returns the i-th port.
func (r *Router) Port(i int) *Port { return r.ports[i] }

// PathEpoch implements PathDevice.
func (r *Router) PathEpoch() uint64 { return r.epoch.Load() }

// AddRoute directs traffic for ip out of the given port.
func (r *Router) AddRoute(ip IP, out *Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[ip] = out
	r.epoch.Add(1)
}

// SetDefault directs traffic with no host route out of the given port.
func (r *Router) SetDefault(out *Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = out
	r.epoch.Add(1)
}

// Crash takes the router down: until Restart every packet handed to it
// is dropped. The epoch bump invalidates compiled flight plans that
// would otherwise tunnel packets through the dead device. Static routes
// survive the crash (the modelled failure is power/forwarding-plane
// loss, not configuration loss).
func (r *Router) Crash() {
	if !r.down.Swap(true) {
		r.epoch.Add(1)
	}
}

// Restart brings a crashed router back. The epoch bump forces compiled
// plans recorded against the crashed state to revalidate.
func (r *Router) Restart() {
	if r.down.Swap(false) {
		r.epoch.Add(1)
	}
}

// IsDown reports whether the router is currently crashed.
func (r *Router) IsDown() bool { return r.down.Load() }

// forwardOut is the Post2 callback for delayed forwarding.
func forwardOut(a, b any) { b.(*Port).Send(a.(*Packet)) }

// HandlePacket implements Device: the router owns pkt and forwards it
// out the routed port (ownership passes on) or recycles it on drop.
func (r *Router) HandlePacket(pkt *Packet, in *Port) {
	if r.down.Load() {
		r.dropped.Add(1)
		pkt.Release()
		return
	}
	r.mu.Lock()
	out := r.routes[pkt.Dst.IP]
	if out == nil {
		out = r.fallback
	}
	if out == nil || out == in {
		r.mu.Unlock()
		r.dropped.Add(1)
		pkt.Release()
		return
	}
	delay := r.ForwardDelay
	r.mu.Unlock()
	if pkt.Recording() {
		// Routing examined the destination address only, so the
		// resulting plan is shared across ports and sources.
		pkt.RecordHop(r, r.epoch.Load(), Rewrite{}, FieldDstIP, delay, nil)
	}
	if delay <= 0 {
		out.Send(pkt)
		return
	}
	r.clk.Post2(delay, forwardOut, pkt, out)
}

// Dropped reports packets without a usable route.
func (r *Router) Dropped() int64 {
	return r.dropped.Load()
}
