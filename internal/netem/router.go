package netem

import (
	"sync"
	"time"
)

// Router is a plain L3 forwarding device with static host routes and an
// optional default route. The evaluation topology uses it for the path
// toward the emulated cloud; the interesting switching happens in the
// OpenFlow switch, which implements Device separately.
type Router struct {
	name string

	mu       sync.Mutex
	ports    []*Port
	routes   map[IP]*Port
	fallback *Port
	// ForwardDelay models lookup/queuing latency per forwarded packet.
	ForwardDelay time.Duration
	clockDelay   func(time.Duration, func())
	dropped      int64
}

// NewRouter returns a router with n ports attached to net's clock.
func NewRouter(n *Network, name string, ports int) *Router {
	r := &Router{
		name:   name,
		routes: make(map[IP]*Port),
	}
	clk := n.Clock
	r.clockDelay = func(d time.Duration, fn func()) {
		if d <= 0 {
			fn()
			return
		}
		clk.AfterFunc(d, fn)
	}
	for i := 0; i < ports; i++ {
		r.ports = append(r.ports, &Port{Dev: r, ID: i})
	}
	return r
}

// DeviceName implements Device.
func (r *Router) DeviceName() string { return r.name }

// Port returns the i-th port.
func (r *Router) Port(i int) *Port { return r.ports[i] }

// AddRoute directs traffic for ip out of the given port.
func (r *Router) AddRoute(ip IP, out *Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.routes[ip] = out
}

// SetDefault directs traffic with no host route out of the given port.
func (r *Router) SetDefault(out *Port) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fallback = out
}

// HandlePacket implements Device.
func (r *Router) HandlePacket(pkt *Packet, in *Port) {
	r.mu.Lock()
	out := r.routes[pkt.Dst.IP]
	if out == nil {
		out = r.fallback
	}
	if out == nil || out == in {
		r.dropped++
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.clockDelay(r.ForwardDelay, func() { out.Send(pkt) })
}

// Dropped reports packets without a usable route.
func (r *Router) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
