package netem

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/vclock"
)

// rehomeTopo is a two-attachment-point topology for re-homing tests:
//
//	client — r1 — server
//	          |
//	         r2 (spare port for the client after the move)
//
// r1 and r2 are joined by a 2 ms trunk, like two gNBs sharing a
// backhaul.
type rehomeTopo struct {
	n      *Network
	client *Host
	server *Host
	r1, r2 *Router
	access LinkConfig
}

func buildRehomeTopo(clk vclock.Clock) *rehomeTopo {
	n := NewNetwork(clk, 1)
	tp := &rehomeTopo{
		n:      n,
		client: n.NewHost("client", ParseIP("10.0.0.1")),
		server: n.NewHost("server", ParseIP("10.0.0.100")),
		r1:     NewRouter(n, "r1", 4),
		r2:     NewRouter(n, "r2", 4),
		access: LinkConfig{Latency: 500 * time.Microsecond, Bandwidth: GbpsToBytes(1)},
	}
	n.Connect(tp.client.NIC(), tp.r1.Port(0), tp.access)
	n.Connect(tp.server.NIC(), tp.r1.Port(1), tp.access)
	n.Connect(tp.r1.Port(2), tp.r2.Port(2), LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: GbpsToBytes(10)})
	tp.r1.AddRoute(tp.client.IP(), tp.r1.Port(0))
	tp.r1.AddRoute(tp.server.IP(), tp.r1.Port(1))
	tp.r2.SetDefault(tp.r2.Port(2)) // everything unknown: back over the trunk
	return tp
}

// rehomeToR2 moves the client's access link to r2 and updates routing:
// r2 reaches the client directly, r1 via the trunk.
func (tp *rehomeTopo) rehomeToR2(t *testing.T) {
	link := tp.n.Rehome(tp.client, tp.r2.Port(0), tp.access)
	if link == nil || tp.client.NIC().Peer() != tp.r2.Port(0) {
		t.Error("Rehome did not attach the client to r2")
	}
	tp.r2.AddRoute(tp.client.IP(), tp.r2.Port(0))
	tp.r1.AddRoute(tp.client.IP(), tp.r1.Port(2))
}

const fnvOffset, fnvPrime = uint64(14695981039346656037), uint64(1099511628211)

func fnvSum(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// TestRehomeSessionChecksum is the application-level continuity test: a
// session straddling the re-home must deliver exactly the bytes sent —
// zero lost, zero duplicated, in order — verified by checksumming both
// ends and echo-comparing every message.
func TestRehomeSessionChecksum(t *testing.T) {
	for _, fastpath := range []bool{true, false} {
		name := "fastpath"
		if !fastpath {
			name = "nofastpath"
		}
		t.Run(name, func(t *testing.T) {
			clk := vclock.New()
			var failure string
			clk.Run(func() {
				tp := buildRehomeTopo(clk)
				tp.n.SetFastPath(fastpath)

				ln, err := tp.server.Listen(80)
				if err != nil {
					failure = err.Error()
					return
				}
				var srvSum = fnvOffset
				var srvBytes, srvMsgs int
				clk.Go(func() {
					conn, err := ln.Accept()
					if err != nil {
						return
					}
					for {
						msg, err := conn.Recv()
						if err != nil {
							return
						}
						srvSum = fnvSum(srvSum, msg)
						srvBytes += len(msg)
						srvMsgs++
						if err := conn.Send(msg); err != nil { // echo
							return
						}
					}
				})

				conn, err := tp.client.Dial(HostPort{IP: tp.server.IP(), Port: 80})
				if err != nil {
					failure = "dial: " + err.Error()
					return
				}
				const msgs = 40
				var cliSum = fnvOffset
				var cliBytes int
				for i := 0; i < msgs; i++ {
					if i == msgs/2 {
						// Mid-session handover, with the previous echo
						// possibly still in flight.
						tp.rehomeToR2(t)
					}
					payload := []byte(fmt.Sprintf("msg %03d on the move %0128d", i, i))
					cliSum = fnvSum(cliSum, payload)
					cliBytes += len(payload)
					if err := conn.Send(payload); err != nil {
						failure = fmt.Sprintf("send %d: %v", i, err)
						return
					}
					echo, err := conn.RecvTimeout(30 * time.Second)
					if err != nil {
						failure = fmt.Sprintf("recv %d: %v", i, err)
						return
					}
					if string(echo) != string(payload) {
						failure = fmt.Sprintf("echo %d mismatch: %q", i, echo)
						return
					}
					clk.Sleep(10 * time.Millisecond)
				}
				conn.Close()
				clk.Sleep(time.Second)
				if srvMsgs != msgs || srvBytes != cliBytes || srvSum != cliSum {
					failure = fmt.Sprintf("server saw %d msgs / %d bytes / sum %x, client sent %d / %d / %x",
						srvMsgs, srvBytes, srvSum, msgs, cliBytes, cliSum)
				}
			})
			if failure != "" {
				t.Fatal(failure)
			}
		})
	}
}

// TestRehomeDropsInGap verifies the cut-cable semantics: traffic
// offered to the severed link is dropped and counted, and the client's
// compiled plans are gone.
func TestRehomeDropsInGap(t *testing.T) {
	clk := vclock.New()
	var failure string
	clk.Run(func() {
		tp := buildRehomeTopo(clk)
		ln, err := tp.server.Listen(80)
		if err != nil {
			failure = err.Error()
			return
		}
		clk.Go(func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				clk.Go(func() {
					for {
						msg, err := conn.Recv()
						if err != nil {
							return
						}
						if conn.Send(msg) != nil {
							return
						}
					}
				})
			}
		})
		conn, err := tp.client.Dial(HostPort{IP: tp.server.IP(), Port: 80})
		if err != nil {
			failure = "dial: " + err.Error()
			return
		}
		// Warm traffic compiles plans on the client.
		for i := 0; i < 3; i++ {
			if err := conn.Send([]byte("warm")); err != nil {
				failure = err.Error()
				return
			}
			if _, err := conn.Recv(); err != nil {
				failure = err.Error()
				return
			}
		}
		if tp.client.planCount.Load() == 0 {
			failure = "expected compiled plans before the re-home"
			return
		}
		oldLink := tp.client.NIC().link
		tp.rehomeToR2(t)
		if tp.client.planCount.Load() != 0 {
			failure = "compiled plans survived the re-home"
			return
		}
		if !oldLink.IsDown() {
			failure = "severed link not marked down"
			return
		}
		// The session still works over the new attachment point.
		if err := conn.Send([]byte("after")); err != nil {
			failure = "post-rehome send: " + err.Error()
			return
		}
		if _, err := conn.RecvTimeout(30 * time.Second); err != nil {
			failure = "post-rehome recv: " + err.Error()
			return
		}
		conn.Close()
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

// TestRehomePanics covers the orchestration-bug guards.
func TestRehomePanics(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		n := NewNetwork(clk, 1)
		loner := n.NewHost("loner", ParseIP("10.1.0.1"))
		r := NewRouter(n, "r", 2)
		mustPanic(t, "no access link", func() {
			n.Rehome(loner, r.Port(0), LinkConfig{})
		})
		a := n.NewHost("a", ParseIP("10.1.0.2"))
		b := n.NewHost("b", ParseIP("10.1.0.3"))
		n.Connect(a.NIC(), r.Port(0), LinkConfig{Latency: time.Millisecond})
		n.Connect(b.NIC(), r.Port(1), LinkConfig{Latency: time.Millisecond})
		mustPanic(t, "target connected", func() {
			n.Rehome(a, r.Port(1), LinkConfig{})
		})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	fn()
}

// TestRehomeUnderShards verifies a re-home after BindShards: the new
// access link inherits the partition's device→shard binding, so a host
// moved onto a router living on another shard gets a proper boundary
// link — and the session's bytes survive the move intact.
func TestRehomeUnderShards(t *testing.T) {
	run := func(shards int) (sum uint64, msgs int) {
		sum = fnvOffset
		g := vclock.NewShardGroup(shards)
		n := NewNetwork(g.Shard(0), 1)
		client := n.NewHost("client", ParseIP("10.0.0.1"))
		server := n.NewHost("server", ParseIP("10.0.0.100"))
		r1 := NewRouter(n, "r1", 4)
		r2 := NewRouter(n, "r2", 4)
		access := LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: GbpsToBytes(1)}
		n.Connect(client.NIC(), r1.Port(0), access)
		n.Connect(server.NIC(), r1.Port(1), access)
		n.Connect(r1.Port(2), r2.Port(2), LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: GbpsToBytes(10)})
		r1.AddRoute(client.IP(), r1.Port(0))
		r1.AddRoute(server.IP(), r1.Port(1))
		r2.SetDefault(r2.Port(2))
		assign := map[Device]int{}
		if shards > 1 {
			// r2 lives on its own shard: the re-homed access link
			// becomes a boundary link.
			assign[r2] = 1
		}
		n.BindShards(g, assign)
		ln, err := server.Listen(80)
		if err != nil {
			t.Fatal(err)
		}
		g.Run(func(shard int) {
			clk := g.Shard(shard)
			if shard != 0 {
				// Keep the router's shard alive until the exchange ends.
				clk.Sleep(30 * time.Second)
				return
			}
			clk.Go(func() {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				for {
					m, err := conn.Recv()
					if err != nil {
						return
					}
					sum = fnvSum(sum, m)
					msgs++
					if conn.Send(m) != nil {
						return
					}
				}
			})
			conn, err := client.Dial(HostPort{IP: server.IP(), Port: 80})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			for i := 0; i < 10; i++ {
				if i == 5 {
					n.Rehome(client, r2.Port(0), access)
					r2.AddRoute(client.IP(), r2.Port(0))
					r1.AddRoute(client.IP(), r1.Port(2))
				}
				if err := conn.Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
				if _, err := conn.RecvTimeout(20 * time.Second); err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
			}
			conn.Close()
			clk.Sleep(time.Second)
		})
		return sum, msgs
	}
	sum1, msgs1 := run(1)
	sum2, msgs2 := run(2)
	if msgs1 != 10 || msgs1 != msgs2 || sum1 != sum2 {
		t.Fatalf("sharded re-home diverged: seq (%d msgs, sum %x) vs sharded (%d msgs, sum %x)",
			msgs1, sum1, msgs2, sum2)
	}
}
