package docker

import (
	"fmt"
	"testing"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

type mapResolver map[string]containerd.AppModel

func (m mapResolver) Resolve(image string) (containerd.AppModel, error) {
	model, ok := m[image]
	if !ok {
		return containerd.AppModel{}, fmt.Errorf("unknown image %q", image)
	}
	return model, nil
}

type dockerEnv struct {
	clk    *vclock.Virtual
	engine *Engine
	client *netem.Host
	reg    *registry.Registry
}

func newDockerEnv(clk *vclock.Virtual) *dockerEnv {
	n := netem.NewNetwork(clk, 1)
	egs := n.NewHost("egs", netem.ParseIP("10.0.0.2"))
	client := n.NewHost("client", netem.ParseIP("192.168.1.10"))
	n.Connect(egs.NIC(), client.NIC(), netem.LinkConfig{Latency: time.Millisecond})
	rt := containerd.NewRuntime(clk, 2, egs, containerd.DefaultTiming())
	reg := registry.New(clk, 3, registry.Private())
	reg.Push(registry.Image{Ref: "web", Layers: []registry.Layer{{Digest: "sha256:web", Size: 10 * registry.MiB}}})
	reg.Push(registry.Image{Ref: "writer", Layers: []registry.Layer{{Digest: "sha256:wr", Size: registry.MiB}}})

	resolver := mapResolver{
		"web": {
			Port:       80,
			ReadyDelay: 40 * time.Millisecond,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				shared := vols["www"]
				return containerd.AppInstance{
					Handler: containerd.HandlerFunc(func(clk vclock.Clock, req []byte) []byte {
						if shared != nil {
							if data, ok := shared.Read("index.html"); ok {
								return data
							}
						}
						return append([]byte("echo:"), req...)
					}),
				}
			},
		},
		"writer": {
			ReadyDelay: 10 * time.Millisecond,
			Instantiate: func(vols map[string]*containerd.Volume) containerd.AppInstance {
				shared := vols["www"]
				return containerd.AppInstance{
					Background: func(clk vclock.Clock, stop *vclock.Gate) {
						for !stop.IsOpen() {
							shared.Write("index.html", []byte("written at "+clk.Now().Format(time.RFC3339)))
							if stop.WaitTimeout(clk, time.Second) {
								return
							}
						}
					},
				}
			},
		},
	}
	return &dockerEnv{
		clk:    clk,
		engine: NewEngine(clk, 4, rt, resolver, DefaultTiming()),
		client: client,
		reg:    reg,
	}
}

func TestPullListRemove(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		if _, err := e.engine.ImagePull(e.reg, "web"); err != nil {
			t.Fatal(err)
		}
		if !e.engine.HasImage("web") {
			t.Error("HasImage = false after pull")
		}
		if list := e.engine.ImageList(); len(list) != 1 || list[0] != "web" {
			t.Errorf("ImageList = %v", list)
		}
		if err := e.engine.ImageRemove("web"); err != nil {
			t.Fatal(err)
		}
		if e.engine.HasImage("web") {
			t.Error("image survives removal")
		}
		if _, err := e.engine.ImagePull(e.reg, "ghost"); err == nil {
			t.Error("pull of unknown image succeeded")
		}
	})
}

func TestCreateStartServeUnderOneSecond(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		e.engine.ImagePull(e.reg, "web")
		ctr, err := e.engine.ContainerCreate(CreateOptions{
			Name:   "svc-web",
			Image:  "web",
			Labels: map[string]string{"edge.service": "svc"},
		})
		if err != nil {
			t.Fatal(err)
		}
		start := clk.Now()
		if err := e.engine.ContainerStart("svc-web"); err != nil {
			t.Fatal(err)
		}
		if !ctr.WaitReady(5 * time.Second) {
			t.Fatal("never ready")
		}
		elapsed := clk.Since(start)
		// The paper's headline: Docker scale-up stays below one second.
		if elapsed >= time.Second {
			t.Errorf("docker start-to-ready = %v, want <1s", elapsed)
		}
		conn, err := e.client.Dial(ctr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("hi"))
		resp, err := conn.Recv()
		if err != nil || string(resp) != "echo:hi" {
			t.Errorf("resp = %q, %v", resp, err)
		}
	})
}

func TestCreateUnknownImageOrResolver(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		if _, err := e.engine.ContainerCreate(CreateOptions{Name: "x", Image: "nope"}); err == nil {
			t.Error("create with unknown model succeeded")
		}
		// Known model but image not pulled.
		if _, err := e.engine.ContainerCreate(CreateOptions{Name: "x", Image: "web"}); err == nil {
			t.Error("create without pulled image succeeded")
		}
	})
}

func TestLifecycleErrorsOnMissingContainer(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		if err := e.engine.ContainerStart("ghost"); err == nil {
			t.Error("start missing container succeeded")
		}
		if err := e.engine.ContainerStop("ghost"); err == nil {
			t.Error("stop missing container succeeded")
		}
		if err := e.engine.ContainerRemove("ghost"); err == nil {
			t.Error("remove missing container succeeded")
		}
		if e.engine.ContainerInspect("ghost") != nil {
			t.Error("inspect missing container returned container")
		}
	})
}

func TestSharedVolumeBetweenContainers(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		e.engine.ImagePull(e.reg, "web")
		e.engine.ImagePull(e.reg, "writer")
		labels := map[string]string{"edge.service": "combo"}
		web, err := e.engine.ContainerCreate(CreateOptions{Name: "combo-web", Image: "web", Labels: labels, VolumeNames: []string{"www"}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.engine.ContainerCreate(CreateOptions{Name: "combo-writer", Image: "writer", Labels: labels, VolumeNames: []string{"www"}}); err != nil {
			t.Fatal(err)
		}
		e.engine.ContainerStart("combo-writer")
		e.engine.ContainerStart("combo-web")
		web.WaitReady(5 * time.Second)
		clk.Sleep(2 * time.Second) // give the writer a couple of ticks

		conn, err := e.client.Dial(web.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Send([]byte("GET /"))
		resp, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) == "echo:GET /" {
			t.Error("nginx served fallback; volume content not visible")
		}
		if e.engine.VolumeInspect("www") == nil {
			t.Error("engine lost the named volume")
		}
	})
}

func TestContainerListSelector(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		e.engine.ImagePull(e.reg, "web")
		e.engine.ContainerCreate(CreateOptions{Name: "a", Image: "web", Labels: map[string]string{"edge.service": "s1"}})
		e.engine.ContainerCreate(CreateOptions{Name: "b", Image: "web", Labels: map[string]string{"edge.service": "s2"}})
		got := e.engine.ContainerList(map[string]string{"edge.service": "s1"})
		if len(got) != 1 || got[0].Name() != "a" {
			t.Errorf("ContainerList = %v", got)
		}
		all := e.engine.ContainerList(nil)
		if len(all) != 2 || all[0].Name() != "a" || all[1].Name() != "b" {
			t.Errorf("unsorted or wrong list: %v", all)
		}
	})
}

func TestStopThenRemoveFreesName(t *testing.T) {
	clk := vclock.New()
	clk.Run(func() {
		e := newDockerEnv(clk)
		e.engine.ImagePull(e.reg, "web")
		ctr, _ := e.engine.ContainerCreate(CreateOptions{Name: "x", Image: "web"})
		e.engine.ContainerStart("x")
		ctr.WaitReady(5 * time.Second)
		if err := e.engine.ContainerStop("x"); err != nil {
			t.Fatal(err)
		}
		if err := e.engine.ContainerRemove("x"); err != nil {
			t.Fatal(err)
		}
		if _, err := e.engine.ContainerCreate(CreateOptions{Name: "x", Image: "web"}); err != nil {
			t.Errorf("name not freed: %v", err)
		}
	})
}
