// Package docker emulates a single-node Docker Engine on top of the
// shared containerd runtime — the lightweight alternative the paper
// contrasts with Kubernetes. There is no control-plane pipeline: client
// calls translate directly into runtime operations, which is exactly why
// its scale-up stays under one second.
package docker

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/c3lab/transparentedge/internal/containerd"
	"github.com/c3lab/transparentedge/internal/netem"
	"github.com/c3lab/transparentedge/internal/registry"
	"github.com/c3lab/transparentedge/internal/vclock"
)

// Timing models the Docker daemon's API overhead.
type Timing struct {
	// APILatency is the per-call daemon round trip (docker CLI/SDK →
	// dockerd → containerd).
	APILatency time.Duration
	// JitterFrac scales the uniform jitter on API calls.
	JitterFrac float64
}

// DefaultTiming returns the calibrated daemon overhead.
func DefaultTiming() Timing {
	return Timing{APILatency: 6 * time.Millisecond, JitterFrac: 0.15}
}

// Engine is one Docker daemon.
type Engine struct {
	clk      vclock.Clock
	rng      *vclock.Rand
	rt       *containerd.Runtime
	resolver containerd.AppResolver
	timing   Timing

	mu      sync.Mutex
	volumes map[string]*containerd.Volume
}

// NewEngine returns a daemon driving the given runtime.
func NewEngine(clk vclock.Clock, seed int64, rt *containerd.Runtime, resolver containerd.AppResolver, timing Timing) *Engine {
	return &Engine{
		clk:      clk,
		rng:      vclock.NewRand(seed),
		rt:       rt,
		resolver: resolver,
		timing:   timing,
		volumes:  make(map[string]*containerd.Volume),
	}
}

// Runtime exposes the underlying containerd (both "clusters" in the
// evaluation share one runtime on the EGS).
func (e *Engine) Runtime() *containerd.Runtime { return e.rt }

// Host returns the host the engine publishes ports on.
func (e *Engine) Host() *netem.Host { return e.rt.Host() }

func (e *Engine) apiCall() {
	e.clk.Sleep(e.rng.Jitter(e.timing.APILatency, e.timing.JitterFrac))
}

// ImagePull fetches an image (docker pull).
func (e *Engine) ImagePull(reg registry.Remote, ref string) (time.Duration, error) {
	e.apiCall()
	return e.rt.Pull(reg, ref)
}

// ImageList returns cached image references, sorted.
func (e *Engine) ImageList() []string {
	e.apiCall()
	refs := e.rt.Store().Images()
	sort.Strings(refs)
	return refs
}

// HasImage reports whether ref is cached locally.
func (e *Engine) HasImage(ref string) bool {
	e.apiCall()
	return e.rt.Store().HasImage(ref)
}

// ImageRemove deletes a cached image (docker rmi).
func (e *Engine) ImageRemove(ref string) error {
	e.apiCall()
	return e.rt.Store().RemoveImage(ref)
}

// CreateOptions parameterize ContainerCreate.
type CreateOptions struct {
	Name   string
	Image  string
	Labels map[string]string
	// VolumeNames are engine-managed named volumes mounted into the
	// container; containers naming the same volume (within the same
	// VolumeNamespace) share it — the Nginx+Py service relies on this.
	VolumeNames []string
	// VolumeNamespace scopes the named volumes, so two services can
	// both use a volume called "www" without sharing state. The app
	// model always sees the unscoped name.
	VolumeNamespace string
	// Port overrides the app model's container port; 0 keeps the model.
	Port uint16
}

// ContainerCreate creates a container (docker create). The image must be
// pulled already.
func (e *Engine) ContainerCreate(opts CreateOptions) (*containerd.Container, error) {
	e.apiCall()
	model, err := e.resolver.Resolve(opts.Image)
	if err != nil {
		return nil, fmt.Errorf("docker: %w", err)
	}
	vols := make(map[string]*containerd.Volume, len(opts.VolumeNames))
	e.mu.Lock()
	for _, name := range opts.VolumeNames {
		key := name
		if opts.VolumeNamespace != "" {
			key = opts.VolumeNamespace + "/" + name
		}
		v, ok := e.volumes[key]
		if !ok {
			v = containerd.NewVolume(key)
			e.volumes[key] = v
		}
		vols[name] = v
	}
	e.mu.Unlock()
	spec := model.BuildSpec(opts.Name, opts.Image, opts.Labels, vols)
	if opts.Port != 0 {
		spec.Port = opts.Port
	}
	return e.rt.Create(spec)
}

// ContainerStart starts a created container (docker start).
func (e *Engine) ContainerStart(name string) error {
	e.apiCall()
	c := e.rt.Get(name)
	if c == nil {
		return fmt.Errorf("docker: no such container %q", name)
	}
	return c.Start()
}

// ContainerStop stops a running container (docker stop).
func (e *Engine) ContainerStop(name string) error {
	e.apiCall()
	c := e.rt.Get(name)
	if c == nil {
		return fmt.Errorf("docker: no such container %q", name)
	}
	return c.Stop()
}

// ContainerRemove deletes a container (docker rm -f).
func (e *Engine) ContainerRemove(name string) error {
	e.apiCall()
	c := e.rt.Get(name)
	if c == nil {
		return fmt.Errorf("docker: no such container %q", name)
	}
	return c.Remove()
}

// ContainerInspect returns the live container, or nil (docker inspect).
func (e *Engine) ContainerInspect(name string) *containerd.Container {
	e.apiCall()
	return e.rt.Get(name)
}

// ContainerList returns containers matching all label selector entries,
// sorted by name (docker ps --filter label=...).
func (e *Engine) ContainerList(selector map[string]string) []*containerd.Container {
	e.apiCall()
	out := e.rt.List(selector)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// VolumeInspect returns an engine-managed volume, or nil.
func (e *Engine) VolumeInspect(name string) *containerd.Volume {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.volumes[name]
}
