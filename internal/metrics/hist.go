package metrics

import (
	"math/bits"
	"time"
)

// Hist bucket layout. Values (duration nanoseconds) below histSubBuckets
// are counted exactly, one bucket per nanosecond. Above that the layout
// is log-linear in the HDR-histogram style: each power-of-two octave is
// split into histSubBuckets linear sub-buckets, so a bucket's width is
// at most 1/histSubBuckets of its value and any reported quantile
// overestimates the exact sample by less than histRelErrInv⁻¹ ≈ 1.6 %.
// The layout is fixed at compile time: every Hist has the same buckets,
// which is what makes Merge a plain counter addition.
const (
	histSubBits    = 6
	histSubBuckets = 1 << histSubBits // 64 sub-buckets per octave
	// histBuckets covers the full non-negative int64 range:
	// histSubBuckets exact values plus one octave of histSubBuckets
	// sub-buckets for each exponent histSubBits..62.
	histBuckets = histSubBuckets * (64 - histSubBits)
	// histRelErrInv is the quantile error bound's denominator: a
	// reported quantile q satisfies exact ≤ q < exact·(1+1/histRelErrInv)+1.
	histRelErrInv = histSubBuckets
)

// Hist is a fixed-layout streaming histogram of durations: Record is
// O(1) and allocation-free, memory is constant (one counter array,
// ~29 KiB) no matter how many samples are recorded, and quantiles are
// deterministic with a documented ≤1/64 relative overestimate. Two
// hists always share the same bucket layout, so Merge is exact and
// order-independent — per-replication results combine losslessly.
//
// Hist is the telemetry backend for the load/chaos/scale experiments,
// where sample counts reach the millions; the paper-figure experiments
// keep the exact Series so their tables stay byte-identical to the seed.
// Like Series, Hist is not safe for concurrent use.
type Hist struct {
	Name   string
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// NewHist returns an empty named histogram.
func NewHist(name string) *Hist { return &Hist{Name: name, min: -1} }

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	mant := int(uint64(v)>>(uint(exp)-histSubBits)) & (histSubBuckets - 1)
	return (exp-histSubBits)*histSubBuckets + mant + histSubBuckets
}

// histUpper returns the largest value a bucket holds.
func histUpper(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	b := i - histSubBuckets
	exp := uint(b/histSubBuckets) + histSubBits
	mant := int64(b % histSubBuckets)
	low := int64(1)<<exp + mant<<(exp-histSubBits)
	return low + int64(1)<<(exp-histSubBits) - 1
}

// Record adds one sample. Negative durations clamp to zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
	if h.min < 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Median returns the 50th percentile.
func (h *Hist) Median() time.Duration { return h.Percentile(50) }

// Percentile returns the p-th percentile (nearest-rank, mirroring
// Series.Percentile) or 0 when empty. The returned value is the upper
// bound of the ranked sample's bucket, clamped to the exact observed
// extremes: it never underestimates the exact percentile and
// overestimates by less than 1/64 (1.6 %).
func (h *Hist) Percentile(p float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.min)
	}
	if p >= 100 {
		return time.Duration(h.max)
	}
	rank := int64(p/100*float64(h.count)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i]
		if seen > rank {
			v := histUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Mean returns the exact arithmetic mean (the sum is tracked alongside
// the buckets) or 0 when empty.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the exact smallest sample or 0 when empty.
func (h *Hist) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the exact largest sample or 0 when empty.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Merge folds o's samples into h. Because every Hist shares one fixed
// bucket layout, merging is exact: any merge order of any partition of
// the same samples yields identical counts and quantiles. Used to
// combine per-replication histograms from parallel runs.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
	if h.min < 0 || (o.min >= 0 && o.min < h.min) {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}
