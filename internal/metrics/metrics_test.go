package metrics

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func series(vals ...time.Duration) *Series {
	s := NewSeries("test")
	for _, v := range vals {
		s.Add(v)
	}
	return s
}

func TestMedianOddEven(t *testing.T) {
	if got := series(3, 1, 2).Median(); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	got := series(1, 2, 3, 4).Median()
	if got != 2 && got != 3 {
		t.Errorf("even median = %v, want 2 or 3", got)
	}
}

func TestEmptySeriesSafe(t *testing.T) {
	s := NewSeries("empty")
	if s.Median() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(99) != 0 {
		t.Error("empty series stats non-zero")
	}
	if s.Len() != 0 {
		t.Error("empty Len")
	}
}

func TestPercentileBounds(t *testing.T) {
	s := series(10, 20, 30, 40, 50)
	if s.Percentile(0) != 10 {
		t.Errorf("p0 = %v", s.Percentile(0))
	}
	if s.Percentile(100) != 50 {
		t.Errorf("p100 = %v", s.Percentile(100))
	}
	if s.Percentile(-5) != 10 || s.Percentile(200) != 50 {
		t.Error("out-of-range percentiles not clamped")
	}
}

// TestPercentileCache is the sort-once regression test: after the first
// percentile query, further quantile reads on an unchanged series must
// not allocate (no fresh copy, no re-sort), and Add must invalidate the
// cached order.
func TestPercentileCache(t *testing.T) {
	s := NewSeries("cache")
	for i := 5000; i > 0; i-- {
		s.Add(time.Duration(i))
	}
	if got := s.Percentile(100); got != 5000 { // warm the cache
		t.Fatalf("p100 = %v", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if s.Median() > s.Percentile(95) || s.Percentile(95) > s.Percentile(99) {
			t.Fatal("quantiles out of order")
		}
	})
	if allocs != 0 {
		t.Fatalf("cached percentile reads allocate %.1f allocs/op, want 0", allocs)
	}
	s.Add(9999) // must invalidate
	if got := s.Percentile(100); got != 9999 {
		t.Fatalf("p100 after Add = %v, want 9999 (stale sort cache)", got)
	}
	// The raw sample order stays insertion order despite the sorted cache.
	if got := s.Samples()[0]; got != 5000 {
		t.Fatalf("Samples()[0] = %v, want 5000", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	s := series(10, 20, 30)
	if s.Mean() != 20 || s.Min() != 10 || s.Max() != 30 {
		t.Errorf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
}

func TestSamplesCopy(t *testing.T) {
	s := series(1, 2)
	got := s.Samples()
	got[0] = 99
	if s.Samples()[0] != 1 {
		t.Error("Samples returned aliased slice")
	}
}

func TestFmtMS(t *testing.T) {
	if got := FmtMS(900 * time.Microsecond); got != "0.9 ms" {
		t.Errorf("FmtMS = %q", got)
	}
	if got := FmtMS(542 * time.Millisecond); got != "542 ms" {
		t.Errorf("FmtMS = %q", got)
	}
	if got := FmtMS(3041 * time.Millisecond); got != "3041 ms" {
		t.Errorf("FmtMS = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. 11", "Service", "Docker", "K8s")
	tb.AddRow("Nginx", "542 ms", "3041 ms")
	tb.AddRow("Asm", "538 ms") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Fig. 11") || !strings.Contains(out, "Service") {
		t.Errorf("missing title/header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every row has the same prefix width for col 2.
	idx := strings.Index(lines[1], "Docker")
	if !strings.HasPrefix(lines[3][idx:], "542 ms") {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("CSV quoting wrong: %q", csv)
	}
}

func TestHistogramRendering(t *testing.T) {
	out := Histogram("Fig. 10", []int{8, 3, 0, 1}, time.Second, 0)
	if !strings.Contains(out, "Fig. 10") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Peak bin has the longest bar.
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Errorf("bars not proportional:\n%s", out)
	}
	// Downsampling caps the row count.
	big := make([]int, 300)
	out = Histogram("t", big, time.Second, 30)
	if got := len(strings.Split(strings.TrimRight(out, "\n"), "\n")); got > 32 {
		t.Errorf("downsampled rows = %d", got)
	}
}

// Property: the median lies between min and max and equals the sorted
// middle element (nearest rank).
func TestMedianProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("p")
		vals := make([]time.Duration, len(raw))
		for i, v := range raw {
			vals[i] = time.Duration(v)
			s.Add(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		med := s.Median()
		if med < vals[0] || med > vals[len(vals)-1] {
			return false
		}
		rank := int(0.5*float64(len(vals))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		return med == vals[rank]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
