// Package metrics provides the summary statistics and plain-text table
// rendering used to report every experiment: medians (the paper reports
// medians throughout), percentiles, and fixed-width tables/CSV suitable
// for EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series collects duration samples.
type Series struct {
	Name    string
	samples []time.Duration
	// sorted caches an ascending copy of samples, built by the first
	// percentile query and invalidated by Add: reporting median + p95 +
	// p99 on one settled series costs one sort, not three.
	sorted []time.Duration
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample.
func (s *Series) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = nil
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns a copy of the raw samples.
func (s *Series) Samples() []time.Duration {
	return append([]time.Duration(nil), s.samples...)
}

// Median returns the 50th percentile.
func (s *Series) Median() time.Duration { return s.Percentile(50) }

// sortedSamples returns the cached ascending view, (re)building it only
// when Add has invalidated it.
func (s *Series) sortedSamples() []time.Duration {
	if s.sorted == nil {
		s.sorted = append([]time.Duration(nil), s.samples...)
		sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	}
	return s.sorted
}

// Percentile returns the p-th percentile (nearest-rank) or 0 when empty.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := s.sortedSamples()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean or 0 when empty.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// Min returns the smallest sample or 0 when empty.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	min := s.samples[0]
	for _, d := range s.samples[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

// Max returns the largest sample or 0 when empty.
func (s *Series) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	max := s.samples[0]
	for _, d := range s.samples[1:] {
		if d > max {
			max = d
		}
	}
	return max
}

// FmtMS renders a duration as milliseconds with adaptive precision,
// e.g. "0.9 ms", "542 ms", "3041 ms".
func FmtMS(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms < 10:
		return fmt.Sprintf("%.1f ms", ms)
	default:
		return fmt.Sprintf("%.0f ms", ms)
	}
}

// Table renders fixed-width text tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	write(t.headers)
	for _, row := range t.rows {
		write(row)
	}
	return b.String()
}

// Histogram renders integer bins (e.g. requests per second) as a
// text sparkline table, used for the Fig. 9 / Fig. 10 series.
func Histogram(title string, bins []int, binWidth time.Duration, maxRows int) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	peak := 0
	for _, n := range bins {
		if n > peak {
			peak = n
		}
	}
	if peak == 0 {
		peak = 1
	}
	step := 1
	if maxRows > 0 && len(bins) > maxRows {
		step = (len(bins) + maxRows - 1) / maxRows
	}
	for start := 0; start < len(bins); start += step {
		sum := 0
		for i := start; i < start+step && i < len(bins); i++ {
			sum += bins[i]
		}
		bar := strings.Repeat("#", sum*50/(peak*step)+1)
		if sum == 0 {
			bar = ""
		}
		fmt.Fprintf(&b, "%6s  %4d %s\n", time.Duration(start)*binWidth, sum, bar)
	}
	return b.String()
}
